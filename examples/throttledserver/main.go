// Throttled server: run an OLTP-style request stream against a disk that was
// deliberately built for average-case thermal behaviour (24,534 RPM — the
// 2005 data-rate target, which would overheat under sustained seeking) and
// let the watermark throttling controller keep it inside the 45.22 C
// envelope. Compare against the conservative envelope-design drive.
//
// Run with:
//
//	go run ./examples/throttledserver
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/capacity"
	"repro/internal/disksim"
	"repro/internal/dtm"
	"repro/internal/scaling"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/units"
)

func main() {
	// The 2005-generation single-platter drive.
	geom := thermal.ReferenceDrive
	bpi, tpi := scaling.DefaultTrend().Densities(2005)
	layout, err := capacity.New(capacity.Config{Geometry: geom, BPI: bpi, TPI: tpi, Zones: 50})
	if err != nil {
		log.Fatal(err)
	}

	// Fifteen minutes of 80/s random 4 KB requests (30% writes) with one
	// four-minute spike at 170/s — only the spike pushes the average-case
	// drive into its thermal guard band.
	reqs := workload(layout.TotalSectors())

	fmt.Println("OLTP stream on a 2005 drive: envelope design vs average-case + DTM")

	// Conservative design: the fastest speed whose worst case stays inside
	// the envelope.
	envRPM := units.RPM(15020)
	slow, err := disksim.New(disksim.Config{Layout: layout, RPM: envRPM})
	if err != nil {
		log.Fatal(err)
	}
	comps, err := slow.Simulate(reqs)
	if err != nil {
		log.Fatal(err)
	}
	var slowStats stats.Sample
	for _, c := range comps {
		slowStats.Add(c.Response())
	}
	fmt.Printf("  envelope design @%v:\n", envRPM)
	fmt.Printf("    mean response %.2f ms, p95 %.1f ms (no DTM needed, but the surge\n"+
		"    saturates it too: its raw capacity is ~150 req/s)\n",
		slowStats.Mean(), slowStats.Percentile(95))

	// Average-case design: 24,534 RPM with the thermal watermark controller.
	fast, err := disksim.New(disksim.Config{Layout: layout, RPM: 24534})
	if err != nil {
		log.Fatal(err)
	}
	th, err := thermal.New(geom)
	if err != nil {
		log.Fatal(err)
	}
	// The server has been busy all afternoon: start from the steady state
	// of 40%-duty operation rather than a cold soak.
	warm := th.SteadyState(thermal.Load{RPM: 24534, VCMDuty: 0.62, Ambient: thermal.DefaultAmbient})
	ctl := dtm.Controller{Disk: fast, Thermal: th, Mode: dtm.VCMOnly, Initial: &warm}
	res, err := ctl.Run(reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  average-case design @24534 RPM with throttling:\n")
	fmt.Printf("    mean response %.2f ms, p95 %.1f ms\n", res.MeanResponseMillis, res.P95ResponseMillis)
	fmt.Printf("    hottest internal air %.2f C (envelope %v)\n", float64(res.MaxAirTemp), thermal.Envelope)
	fmt.Printf("    throttle events: %d, total paused %.1f s over %.0f s of workload\n",
		res.ThrottleEvents, res.ThrottledTime.Seconds(), res.Elapsed.Seconds())
}

func workload(total int64) []disksim.Request {
	rng := rand.New(rand.NewSource(42))
	var reqs []disksim.Request
	now := 0.0
	id := int64(0)
	const duration = 900.0 // seconds
	for now < duration {
		rate := 80.0
		// One four-minute surge starting at minute six.
		if now >= 360 && now < 600 {
			rate = 170
		}
		now += rng.ExpFloat64() / rate
		reqs = append(reqs, disksim.Request{
			ID:      id,
			Arrival: time.Duration(now * float64(time.Second)),
			LBN:     rng.Int63n(total - 16),
			Sectors: 8,
			Write:   rng.Float64() < 0.3,
		})
		id++
	}
	return reqs
}
