// Throttled server: run an OLTP-style request stream against a disk that was
// deliberately built for average-case thermal behaviour (24,534 RPM — the
// 2005 data-rate target, which would overheat under sustained seeking) and
// let the watermark throttling controller keep it inside the 45.22 C
// envelope. Compare against the conservative envelope-design drive.
//
// The requests are never materialized: both runs pull them lazily from a
// seeded source on the event engine, and the response summaries come from
// the O(1) streaming accumulators (running mean, P² 95th percentile).
//
// Run with:
//
//	go run ./examples/throttledserver
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/capacity"
	"repro/internal/disksim"
	"repro/internal/dtm"
	"repro/internal/scaling"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/units"
)

func main() {
	// The 2005-generation single-platter drive.
	geom := thermal.ReferenceDrive
	bpi, tpi := scaling.DefaultTrend().Densities(2005)
	layout, err := capacity.New(capacity.Config{Geometry: geom, BPI: bpi, TPI: tpi, Zones: 50})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("OLTP stream on a 2005 drive: envelope design vs average-case + DTM")

	// Conservative design: the fastest speed whose worst case stays inside
	// the envelope.
	envRPM := units.RPM(15020)
	slow, err := disksim.New(disksim.Config{Layout: layout, RPM: envRPM})
	if err != nil {
		log.Fatal(err)
	}
	var slowMean stats.Running
	slowP95 := stats.MustP2(0.95)
	err = slow.RunStream(sim.NewEngine(), workload(layout.TotalSectors()),
		sim.SinkFunc[disksim.Completion](func(c disksim.Completion) {
			slowMean.Add(c.Response())
			slowP95.Add(c.Response())
		}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  envelope design @%v:\n", envRPM)
	fmt.Printf("    mean response %.2f ms, p95 %.1f ms (no DTM needed, but the surge\n"+
		"    saturates it too: its raw capacity is ~150 req/s)\n",
		slowMean.Mean(), slowP95.Value())

	// Average-case design: 24,534 RPM with the thermal watermark controller.
	// SampleEvery adds a once-a-second temperature observation tick on the
	// same event clock the requests are admitted on.
	fast, err := disksim.New(disksim.Config{Layout: layout, RPM: 24534})
	if err != nil {
		log.Fatal(err)
	}
	th, err := thermal.New(geom)
	if err != nil {
		log.Fatal(err)
	}
	// The server has been busy all afternoon: start from the steady state
	// of 40%-duty operation rather than a cold soak.
	warm := th.SteadyState(thermal.Load{RPM: 24534, VCMDuty: 0.62, Ambient: thermal.DefaultAmbient})
	ctl := dtm.Controller{
		Disk: fast, Thermal: th, Mode: dtm.VCMOnly, Initial: &warm,
		SampleEvery: time.Second,
	}
	res, err := ctl.RunStream(sim.NewEngine(), workload(layout.TotalSectors()),
		sim.Discard[disksim.Completion]())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  average-case design @24534 RPM with throttling:\n")
	fmt.Printf("    mean response %.2f ms, p95 %.1f ms\n", res.MeanResponseMillis, res.P95ResponseMillis)
	fmt.Printf("    hottest internal air %.2f C (envelope %v)\n", float64(res.MaxAirTemp), thermal.Envelope)
	fmt.Printf("    throttle events: %d, total paused %.1f s over %.0f s of workload\n",
		res.ThrottleEvents, res.ThrottledTime.Seconds(), res.Elapsed.Seconds())
}

// workload yields fifteen minutes of 80/s random 4 KB requests (30% writes)
// with one four-minute spike at 170/s — only the spike pushes the
// average-case drive into its thermal guard band. Every call returns a
// fresh source replaying the identical seeded sequence.
func workload(total int64) sim.Source[disksim.Request] {
	rng := rand.New(rand.NewSource(42))
	now := 0.0
	id := int64(0)
	const duration = 900.0 // seconds
	return sim.SourceFunc[disksim.Request](func() (disksim.Request, bool) {
		if now >= duration {
			return disksim.Request{}, false
		}
		rate := 80.0
		// One four-minute surge starting at minute six.
		if now >= 360 && now < 600 {
			rate = 170
		}
		now += rng.ExpFloat64() / rate
		r := disksim.Request{
			ID:      id,
			Arrival: time.Duration(now * float64(time.Second)),
			LBN:     rng.Int63n(total - 16),
			Sectors: 8,
			Write:   rng.Float64() < 0.3,
		}
		id++
		return r, true
	})
}
