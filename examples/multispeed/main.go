// Multispeed: a two-speed disk (as shipped by Hitachi in 2004) under a
// day/night workload. The slack-ramping controller watches the thermal slack
// — the gap between the current temperature and the envelope — and boosts
// the spindle from the envelope-design speed to a 60%-faster speed whenever
// the drive is cool enough, dropping back as the envelope nears.
//
// Run with:
//
//	go run ./examples/multispeed
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/capacity"
	"repro/internal/disksim"
	"repro/internal/dtm"
	"repro/internal/scaling"
	"repro/internal/thermal"
)

func main() {
	geom := thermal.ReferenceDrive
	bpi, tpi := scaling.DefaultTrend().Densities(2004)
	layout, err := capacity.New(capacity.Config{Geometry: geom, BPI: bpi, TPI: tpi, Zones: 50})
	if err != nil {
		log.Fatal(err)
	}

	// Alternating quiet and busy phases (seconds-scale "day/night").
	reqs := phasedWorkload(layout.TotalSectors())

	fmt.Println("Two-speed disk with slack ramping (15,020 <-> 24,534 RPM)")

	// Fixed at the envelope-design speed.
	fixed, err := disksim.New(disksim.Config{Layout: layout, RPM: 15020})
	if err != nil {
		log.Fatal(err)
	}
	comps, err := fixed.Simulate(reqs)
	if err != nil {
		log.Fatal(err)
	}
	var sum time.Duration
	for _, c := range comps {
		sum += c.Response()
	}
	fmt.Printf("  fixed 15,020 RPM: mean response %.2f ms\n",
		float64(sum)/float64(len(comps))/float64(time.Millisecond))

	// The same drive with the boost policy.
	disk, err := disksim.New(disksim.Config{Layout: layout, RPM: 15020})
	if err != nil {
		log.Fatal(err)
	}
	th, err := thermal.New(geom)
	if err != nil {
		log.Fatal(err)
	}
	ramp := dtm.SlackRamp{Disk: disk, Thermal: th, BoostRPM: 24534}
	res, err := ramp.Run(reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  slack-ramped:     mean response %.2f ms\n", res.MeanResponseMillis)
	fmt.Printf("    %d speed transitions, %.0f s spent boosted, hottest air %.2f C (envelope %v)\n",
		res.Transitions, res.BoostedTime.Seconds(), float64(res.MaxAirTemp), thermal.Envelope)
}

// phasedWorkload alternates 30 s quiet phases (40 req/s) with 30 s busy
// phases (200 req/s) for ten minutes.
func phasedWorkload(total int64) []disksim.Request {
	rng := rand.New(rand.NewSource(9))
	var reqs []disksim.Request
	now := 0.0
	id := int64(0)
	for now < 600 {
		rate := 40.0
		if int(now/30)%2 == 1 {
			rate = 200
		}
		now += rng.ExpFloat64() / rate
		reqs = append(reqs, disksim.Request{
			ID:      id,
			Arrival: time.Duration(now * float64(time.Second)),
			LBN:     rng.Int63n(total - 16),
			Sectors: 8,
			Write:   rng.Float64() < 0.25,
		})
		id++
	}
	return reqs
}
