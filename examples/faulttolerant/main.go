// Fault-tolerant mirrored volume under thermal stress: the paper's
// reliability argument played forward. A RAID-1 pair of average-case
// (24,534 RPM) drives heat-soaks past the envelope, so the thermal fault
// injector charges off-track retries on every access; one member then dies
// outright mid-trace. The recovery engine fails reads over to the survivor,
// keeps accepting (redundancy-exposed) writes, and replays a rebuild onto a
// hot spare while foreground service continues — quantifying the
// double-failure risk of the rebuild window at the elevated temperature.
//
// Run with:
//
//	go run ./examples/faulttolerant
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/capacity"
	"repro/internal/disksim"
	"repro/internal/dtm"
	"repro/internal/raid"
	"repro/internal/reliability"
	"repro/internal/scaling"
	"repro/internal/thermal"
)

func main() {
	geom := thermal.ReferenceDrive
	bpi, tpi := scaling.DefaultTrend().Densities(2005)
	layout, err := capacity.New(capacity.Config{Geometry: geom, BPI: bpi, TPI: tpi, Zones: 50})
	if err != nil {
		log.Fatal(err)
	}

	// The heat soak: both members sit at the 24,534 RPM worst case — 48.5 C
	// internal air, 3.3 C past the envelope. Off-track retries are live on
	// both; member 0 additionally dies 30 s into the trace.
	th, err := thermal.New(geom)
	if err != nil {
		log.Fatal(err)
	}
	soak := th.SteadyState(thermal.WorstCase(24534)).Air
	mk := func(seed int64, deathAt time.Duration) *disksim.Disk {
		var inj disksim.FaultInjector
		thermalInj := dtm.NewThermalFaults(dtm.OffTrackModel{}, reliability.Default(),
			dtm.BindSteady(soak), seed)
		if deathAt > 0 {
			inj = deadline{thermalInj, deathAt}
		} else {
			inj = thermalInj
		}
		d, err := disksim.New(disksim.Config{Layout: layout, RPM: 24534, Faults: inj})
		if err != nil {
			log.Fatal(err)
		}
		return d
	}
	disks := []*disksim.Disk{mk(1, 30*time.Second), mk(2, 0)}
	vol, err := raid.New(raid.RAID1, disks, raid.DefaultStripeUnit)
	if err != nil {
		log.Fatal(err)
	}
	spare, err := disksim.New(disksim.Config{Layout: layout, RPM: 24534})
	if err != nil {
		log.Fatal(err)
	}

	session, err := raid.NewRecoverySession(vol, raid.RecoveryConfig{
		Reliability:     reliability.Default(),
		Temp:            soak,
		RebuildMBPerSec: 4000, // an aggressive rebuild to fit the demo trace
	}, spare)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := session.Run(workload(vol.Capacity()))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Mirrored pair heat-soaked at %.2f C (envelope %v), member 0 dies at 30 s\n",
		float64(soak), thermal.Envelope)
	fmt.Printf("  served %d requests: %d degraded, %d redundancy-exposed writes\n",
		len(rep.Completions), rep.Degraded, rep.ExposedWrites)
	fmt.Printf("  off-track retries injected: %d on the casualty, %d on the survivor\n",
		disks[0].Retries(), disks[1].Retries())
	for _, e := range rep.Events {
		fmt.Printf("  %10v  %v (disk %d)\n", e.Time.Round(time.Millisecond), e.Kind, e.Disk)
	}
	fmt.Printf("  rebuild window %v: double-failure risk %.2e at %.1f C",
		rep.RebuildWindow.Round(time.Second), rep.RebuildRisk, float64(soak))
	cool := raid.RebuildRisk(reliability.Default(), soak-15, 1, rep.RebuildWindow)
	fmt.Printf(" (%.2fx the risk 15 C cooler)\n", rep.RebuildRisk/cool)
	fmt.Printf("  MTTDL at this temperature: %.0f hours\n", rep.MTTDL.Hours())
}

// deadline wraps a thermal injector with a scripted whole-disk failure — the
// demo needs the death on cue, the retries from the physics.
type deadline struct {
	inner *dtm.ThermalFaults
	at    time.Duration
}

func (d deadline) Access(now time.Duration, r disksim.Request) disksim.AccessFault {
	f := d.inner.Access(now, r)
	if now >= d.at {
		f.DiskFailure = true
	}
	return f
}

// workload is a 70%-read stream at 150/s for two minutes.
func workload(total int64) []raid.Request {
	rng := rand.New(rand.NewSource(23))
	var reqs []raid.Request
	now := 0.0
	id := int64(0)
	for now < 120 {
		now += rng.ExpFloat64() / 150
		reqs = append(reqs, raid.Request{
			ID:      id,
			Arrival: time.Duration(now * float64(time.Second)),
			Block:   rng.Int63n(total - 16),
			Sectors: 8,
			Write:   rng.Float64() < 0.3,
		})
		id++
	}
	return reqs
}
