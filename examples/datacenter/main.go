// Datacenter cooling what-if: a storage planner wants to know what buying
// colder machine-room air is worth in drive performance and capacity over
// the next decade — the paper's Figure 3 question, asked the way an operator
// would.
//
// Run with:
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"

	"repro/internal/scaling"
	"repro/internal/thermal"
	"repro/internal/units"
)

func main() {
	fmt.Println("How many roadmap years does colder ambient air buy?")
	fmt.Printf("(thermal envelope %v, 40%% IDR growth target, 1-platter drives)\n\n", thermal.Envelope)

	type option struct {
		label string
		delta units.Celsius
	}
	options := []option{
		{"baseline machine room (28 C)", 0},
		{"improved airflow (23 C)", -5},
		{"chilled containment (18 C)", -10},
	}

	for _, opt := range options {
		pts, err := scaling.Roadmap(scaling.Config{AmbientDelta: opt.delta})
		if err != nil {
			log.Fatal(err)
		}
		falloff := scaling.FalloffYear(pts)
		best := scaling.BestIDR(pts)
		idx := scaling.ByYearSize(pts)

		fmt.Printf("%s\n", opt.label)
		fmt.Printf("  roadmap holds through %d (falls off %d)\n", falloff-1, falloff)
		fmt.Printf("  best attainable IDR in 2006: %.0f MB/s (target %.0f)\n",
			float64(best[2006]), float64(scaling.TargetIDR(2006)))

		// What platter size must the 2005 flagship use, and at what
		// capacity cost?
		year := 2005
		var pick *scaling.Point
		for _, size := range []units.Inches{2.6, 2.1, 1.6} {
			p := idx[year][size]
			if p.MeetsTarget {
				pick = &p
				break
			}
		}
		if pick != nil {
			fmt.Printf("  largest platter meeting the %d target: %v (%.0f GB per platter pair)\n",
				year, pick.Size, pick.Capacity.GB())
		} else {
			fmt.Printf("  no platter size meets the %d target\n", year)
		}
		fmt.Println()
	}

	fmt.Println("Rule of thumb from the model: every ~5 C of extra cooling buys")
	fmt.Println("roughly one more year on the 40% data-rate roadmap — but the")
	fmt.Println("terabit-era ECC cliff (2010) arrives regardless of airflow.")
}
