// Datacenter thermal what-if: a storage operator runs a mixed-generation
// drive fleet — racks of chassis sharing cooling air — and wants to know
// what a CRAC failure costs, and what dynamic thermal management buys back.
// internal/fleet simulates the whole room: every drive is a mechanical
// disksim model co-advanced with its thermal transient, chassis shards fan
// out over the worker pool, and rack summaries stream out in topology order
// (byte-identical at any worker count). This example compares a calm
// baseline against a mid-run cooling failure, then turns on
// temperature-aware placement plus threshold migration and prices the
// difference in heat, latency, and reliability exposure.
//
// Run with:
//
//	go run ./examples/datacenter
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/fleet"
)

func main() {
	base := fleet.Config{
		// 6 racks x 4 chassis x 8 slots = 192 drives, generations 2002-2005
		// assigned round-robin from the scaling roadmap.
		Topology: fleet.Topology{Racks: 6, ChassisPerRack: 4, SlotsPerChassis: 8},
		Scenario: fleet.Scenario{AirflowCFM: 25, Recirculation: 0.15},
		Workload: fleet.Workload{RequestsPerDrive: 20, Seed: 42},
		Workers:  4,
	}
	failure := &fleet.CoolingFailure{
		Rack: 2, At: 200 * time.Millisecond, Duration: 4 * time.Second, DeltaC: 14,
	}

	fmt.Printf("Fleet: %d drives (%d racks x %d chassis x %d slots), 25 CFM, 15%% recirculation\n\n",
		base.Topology.Drives(), base.Topology.Racks, base.Topology.ChassisPerRack,
		base.Topology.SlotsPerChassis)

	// Scenario 1: calm room, static placement.
	calm := run("calm room, static placement", base, nil)

	// Scenario 2: rack 2's CRAC feed fails for 4 s mid-run.
	hot := base
	hot.Scenario.CoolingFailure = failure
	fmt.Println("\nCooling failure: rack 2 inlet +14 C for 4 s. Rack summaries stream")
	fmt.Println("as each rack's chassis shards complete (topology order):")
	failed := runStreaming("cooling failure, static placement", hot)

	// Scenario 3: same failure, but the hottest streams start on the
	// coolest slots and migration moves work off drives above 31 C.
	managed := hot
	managed.Placement = fleet.PlaceCoolest
	managed.Migration = fleet.Migration{ThresholdC: 31, HysteresisC: 0.5}
	dtm := run("\ncooling failure, coolest placement + 31 C migration", managed, nil)

	fmt.Println("\nWhat management bought during the failure:")
	fmt.Printf("  hottest drive air:   %.2f C -> %.2f C (calm %.2f C)\n",
		failed.HottestAirC, dtm.HottestAirC, calm.HottestAirC)
	fmt.Printf("  p99 drive max temp:  %.2f C -> %.2f C\n", failed.P99DriveMaxC, dtm.P99DriveMaxC)
	fmt.Printf("  effective fleet AFR: %.4f -> %.4f (calm %.4f)\n",
		failed.EffectiveAFR, dtm.EffectiveAFR, calm.EffectiveAFR)
	fmt.Printf("  migrations fired:    %d\n", dtm.Migrations)
	fmt.Printf("  mean latency:        %.2f ms -> %.2f ms\n", failed.MeanLatencyMS, dtm.MeanLatencyMS)

	fmt.Println("\nLesson: the failure's heat lands on whichever drives the workload")
	fmt.Println("happened to sit on; placement and migration decide whether the hot")
	fmt.Println("minutes accrue on the fleet's weakest slots or its coolest ones.")
}

// run executes one scenario and prints its fleet-wide summary line.
func run(label string, cfg fleet.Config, sink fleet.Sink) fleet.Summary {
	sum, err := fleet.Run(context.Background(), cfg, sink)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n", label)
	fmt.Printf("  %d requests, mean %.2f ms, p99 %.1f ms; hottest air %.2f C, "+
		"violations %d, throttles %d, worst MTTDL %.0f h\n",
		sum.Requests, sum.MeanLatencyMS, sum.P99LatencyMS, sum.HottestAirC,
		sum.EnvelopeViolations, sum.ThrottleEvents, sum.WorstMTTDLHours)
	return sum
}

// runStreaming executes one scenario printing every rack summary as it
// completes, the shape the simd fleet job streams over NDJSON.
func runStreaming(label string, cfg fleet.Config) fleet.Summary {
	return run(label, cfg, func(rs fleet.RackSummary) error {
		mark := " "
		if f := cfg.Scenario.CoolingFailure; f != nil && (f.Rack < 0 || f.Rack == rs.Rack) {
			mark = "*"
		}
		fmt.Printf("  %s rack %d: hottest %.2f C, eff. temp %.2f C, AFR %.4f, mean %.2f ms\n",
			mark, rs.Rack, rs.HottestAirC, rs.EffectiveTempC, rs.EffectiveAFR, rs.MeanLatencyMS)
		return nil
	})
}
