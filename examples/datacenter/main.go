// Datacenter cooling what-if: a storage planner wants to know what buying
// colder machine-room air is worth in drive performance and capacity over
// the next decade — the paper's Figure 3 question, asked the way an operator
// would. The felt-performance section replays a seeded OLTP stream against
// each option's envelope-limited drive on the event engine, summarising with
// the O(1) streaming accumulators instead of collecting the trace.
//
// Run with:
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/capacity"
	"repro/internal/disksim"
	"repro/internal/dtm"
	"repro/internal/scaling"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/units"
)

func main() {
	fmt.Println("How many roadmap years does colder ambient air buy?")
	fmt.Printf("(thermal envelope %v, 40%% IDR growth target, 1-platter drives)\n\n", thermal.Envelope)

	type option struct {
		label string
		delta units.Celsius
	}
	options := []option{
		{"baseline machine room (28 C)", 0},
		{"improved airflow (23 C)", -5},
		{"chilled containment (18 C)", -10},
	}

	// One 2005-density layout; only the envelope-limited spindle speed
	// changes with the ambient.
	geom := thermal.ReferenceDrive
	bpi, tpi := scaling.DefaultTrend().Densities(2005)
	layout, err := capacity.New(capacity.Config{Geometry: geom, BPI: bpi, TPI: tpi, Zones: 50})
	if err != nil {
		log.Fatal(err)
	}

	for _, opt := range options {
		pts, err := scaling.Roadmap(scaling.Config{AmbientDelta: opt.delta})
		if err != nil {
			log.Fatal(err)
		}
		falloff := scaling.FalloffYear(pts)
		best := scaling.BestIDR(pts)
		idx := scaling.ByYearSize(pts)

		fmt.Printf("%s\n", opt.label)
		fmt.Printf("  roadmap holds through %d (falls off %d)\n", falloff-1, falloff)
		fmt.Printf("  best attainable IDR in 2006: %.0f MB/s (target %.0f)\n",
			float64(best[2006]), float64(scaling.TargetIDR(2006)))

		// What platter size must the 2005 flagship use, and at what
		// capacity cost?
		year := 2005
		var pick *scaling.Point
		for _, size := range []units.Inches{2.6, 2.1, 1.6} {
			p := idx[year][size]
			if p.MeetsTarget {
				pick = &p
				break
			}
		}
		if pick != nil {
			fmt.Printf("  largest platter meeting the %d target: %v (%.0f GB per platter pair)\n",
				year, pick.Size, pick.Capacity.GB())
		} else {
			fmt.Printf("  no platter size meets the %d target\n", year)
		}

		// What the cooling feels like in service: the fastest spindle the
		// envelope allows at this ambient, fed a streamed OLTP workload.
		slack, err := dtm.Slack([]units.Inches{2.6}, 1, thermal.DefaultAmbient+opt.delta)
		if err != nil {
			log.Fatal(err)
		}
		rpm := slack[0].EnvelopeRPM
		disk, err := disksim.New(disksim.Config{Layout: layout, RPM: rpm})
		if err != nil {
			log.Fatal(err)
		}
		var mean stats.Running
		p95 := stats.MustP2(0.95)
		err = disk.RunStream(sim.NewEngine(), oltpStream(layout.TotalSectors(), 20000),
			sim.SinkFunc[disksim.Completion](func(c disksim.Completion) {
				mean.Add(c.Response())
				p95.Add(c.Response())
			}))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  felt performance at the %.0f RPM envelope limit: mean %.2f ms, p95 %.1f ms\n",
			float64(rpm), mean.Mean(), p95.Value())
		fmt.Println()
	}

	fmt.Println("Rule of thumb from the model: every ~5 C of extra cooling buys")
	fmt.Println("roughly one more year on the 40% data-rate roadmap — but the")
	fmt.Println("terabit-era ECC cliff (2010) arrives regardless of airflow.")
}

// oltpStream lazily yields n seeded random 4 KB requests at 120/s (30%
// writes); every call replays the identical sequence.
func oltpStream(total int64, n int) sim.Source[disksim.Request] {
	rng := rand.New(rand.NewSource(7))
	now := 0.0
	i := 0
	return sim.SourceFunc[disksim.Request](func() (disksim.Request, bool) {
		if i >= n {
			return disksim.Request{}, false
		}
		now += rng.ExpFloat64() / 120
		r := disksim.Request{
			ID:      int64(i),
			Arrival: time.Duration(now * float64(time.Second)),
			LBN:     rng.Int63n(total - 16),
			Sectors: 8,
			Write:   rng.Float64() < 0.3,
		}
		i++
		return r, true
	})
}
