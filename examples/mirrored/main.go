// Mirrored-pair DTM: the paper's section 5.4 closes with the idea of using
// a RAID-1 pair thermally — writes propagate to both disks, while reads are
// steered to one member at a time so the other cools. This example runs a
// read-heavy stream against such a pair of average-case (24,534 RPM) drives
// warm-started near the envelope and shows the steering keeping both members
// under 45.22 C without ever pausing service.
//
// Run with:
//
//	go run ./examples/mirrored
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/capacity"
	"repro/internal/disksim"
	"repro/internal/dtm"
	"repro/internal/reliability"
	"repro/internal/scaling"
	"repro/internal/thermal"
)

func main() {
	geom := thermal.ReferenceDrive
	bpi, tpi := scaling.DefaultTrend().Densities(2005)
	layout, err := capacity.New(capacity.Config{Geometry: geom, BPI: bpi, TPI: tpi, Zones: 50})
	if err != nil {
		log.Fatal(err)
	}

	var disks [2]*disksim.Disk
	var models [2]*thermal.Model
	for i := range disks {
		d, err := disksim.New(disksim.Config{Layout: layout, RPM: 24534})
		if err != nil {
			log.Fatal(err)
		}
		th, err := thermal.New(geom)
		if err != nil {
			log.Fatal(err)
		}
		disks[i], models[i] = d, th
	}

	// Both members have been busy: warm-start near the envelope.
	warm := models[0].SteadyState(thermal.Load{
		RPM: 24534, VCMDuty: 0.6, Ambient: thermal.DefaultAmbient,
	})
	policy := dtm.MirrorPolicy{Disks: disks, Thermal: models, Initial: &warm}

	reqs := workload(layout.TotalSectors())
	res, err := policy.Run(reqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("RAID-1 pair with thermally-steered reads (2 x 24,534 RPM)")
	fmt.Printf("  served %d reads + %d writes over %.0f s\n",
		res.Reads, res.Writes, res.Elapsed.Seconds())
	fmt.Printf("  mean response %.2f ms, p95 %.1f ms\n",
		res.MeanResponseMillis, res.P95ResponseMillis)
	fmt.Printf("  read-steering switches: %d\n", res.Switches)
	fmt.Printf("  hottest member air: %.2f C (envelope %v) — no service pauses needed\n",
		float64(res.MaxAirTemp), thermal.Envelope)

	// What the steering buys in drive life: compare a member alternating
	// active/standby against one pinned active the whole time.
	rel := reliability.Default()
	steered := reliability.NewExposure(rel)
	pinned := reliability.NewExposure(rel)
	// Approximate profiles: steered members average the two roles.
	hotSS := models[0].SteadyState(thermal.Load{RPM: 24534, VCMDuty: 0.9, Ambient: thermal.DefaultAmbient})
	coolSS := models[0].SteadyState(thermal.Load{RPM: 24534, VCMDuty: 0.1, Ambient: thermal.DefaultAmbient})
	steered.Add(hotSS.Air, 12*time.Hour)
	steered.Add(coolSS.Air, 12*time.Hour)
	pinned.Add(hotSS.Air, 24*time.Hour)
	ext, err := steered.LifeExtension(pinned)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  reliability bonus of alternating roles: %.2fx the life of a pinned member\n", ext)
}

// workload is a 90%-read stream at 170/s for four minutes.
func workload(total int64) []disksim.Request {
	rng := rand.New(rand.NewSource(17))
	var reqs []disksim.Request
	now := 0.0
	id := int64(0)
	for now < 240 {
		now += rng.ExpFloat64() / 170
		reqs = append(reqs, disksim.Request{
			ID:      id,
			Arrival: time.Duration(now * float64(time.Second)),
			LBN:     rng.Int63n(total - 16),
			Sectors: 8,
			Write:   rng.Float64() < 0.1,
		})
		id++
	}
	return reqs
}
