// Chassis: the paper's per-drive thermal envelope meets the rack. Six
// drives share one airstream in a storage bay; downstream slots breathe
// preheated air, so placement and airflow determine whether the array as a
// whole respects the 45.22 C envelope (the disk-array thermal-design concern
// the paper cites). This example sizes the airflow, finds the best slot
// ordering for a mixed bay, and reports the warmest inlet the bay tolerates.
//
// Run with:
//
//	go run ./examples/chassis
package main

import (
	"fmt"
	"log"

	"repro/internal/array"
	"repro/internal/thermal"
	"repro/internal/units"
)

func main() {
	// A mixed bay: two fast 15k drives under heavy seeking, four 10k
	// near-line drives mostly idle.
	mk := func(rpm units.RPM, duty float64) array.Slot {
		return array.Slot{Drive: thermal.ReferenceDrive, RPM: rpm, VCMDuty: duty}
	}
	bay := []array.Slot{
		mk(15000, 1), mk(10000, 0.2), mk(10000, 0.2),
		mk(15000, 1), mk(10000, 0.2), mk(10000, 0.2),
	}

	fmt.Println("Six-drive bay, 28 C inlet: does the envelope hold?")
	for _, cfm := range []float64{8, 15, 30} {
		c := array.Chassis{Inlet: thermal.DefaultAmbient, AirflowCFM: cfm}
		states, err := array.Evaluate(c, bay)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4.0f CFM: hottest internal air %.2f C, all within envelope: %v\n",
			cfm, float64(array.HottestAir(states)), array.AllWithinEnvelope(states))
	}

	// Placement matters: search slot orders at the marginal airflow.
	c := array.Chassis{Inlet: thermal.DefaultAmbient, AirflowCFM: 15}
	perm, best, err := array.OptimalOrder(c, bay)
	if err != nil {
		log.Fatal(err)
	}
	base, err := array.Evaluate(c, bay)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAt 15 CFM, reordering the slots (best order %v):\n", perm)
	fmt.Printf("  hottest air: %.2f C as racked vs %.2f C optimally placed\n",
		float64(array.HottestAir(base)), float64(array.HottestAir(best)))

	// What inlet temperature can the optimally-placed bay tolerate?
	ordered := make([]array.Slot, len(perm))
	for i, idx := range perm {
		ordered[i] = bay[idx]
	}
	maxInlet, err := array.MaxInletForEnvelope(c, ordered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  warmest tolerable inlet for the optimal order: %.2f C\n", float64(maxInlet))
	fmt.Println("\nLesson: a drive designed exactly to the envelope needs either")
	fmt.Println("airflow headroom or a cooler inlet the moment it shares a chassis.")
}
