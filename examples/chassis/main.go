// Chassis: the paper's per-drive thermal envelope meets the rack. Drives
// share one cooling airstream in a storage bay, so downstream slots breathe
// preheated air, and stacked chassis re-ingest part of each other's exhaust
// — the disk-array thermal-design concern the paper cites. The single-bay
// steady-state API lives in internal/array (now a thin wrapper over the
// internal/fleet coupling core); the rack-level ladder comes from
// fleet.PreviewFleet. This example sizes the airflow for a mixed bay, finds
// the best slot ordering (exhaustive up to 8 slots, greedy beyond), and
// climbs a recirculating rack to show where the envelope gives out.
//
// Run with:
//
//	go run ./examples/chassis
package main

import (
	"fmt"
	"log"

	"repro/internal/array"
	"repro/internal/fleet"
	"repro/internal/thermal"
	"repro/internal/units"
)

func main() {
	// A mixed bay: two fast 15k drives under heavy seeking, four 10k
	// near-line drives mostly idle.
	mk := func(rpm units.RPM, duty float64) array.Slot {
		return array.Slot{Drive: thermal.ReferenceDrive, RPM: rpm, VCMDuty: duty}
	}
	bay := []array.Slot{
		mk(15000, 1), mk(10000, 0.2), mk(10000, 0.2),
		mk(15000, 1), mk(10000, 0.2), mk(10000, 0.2),
	}

	fmt.Println("Six-drive bay, 28 C inlet: does the envelope hold?")
	for _, cfm := range []float64{8, 15, 30} {
		c := array.Chassis{Inlet: thermal.DefaultAmbient, AirflowCFM: cfm}
		states, err := array.Evaluate(c, bay)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4.0f CFM: hottest internal air %.2f C, all within envelope: %v\n",
			cfm, float64(array.HottestAir(states)), array.AllWithinEnvelope(states))
	}

	// Placement matters: search slot orders at the marginal airflow.
	c := array.Chassis{Inlet: thermal.DefaultAmbient, AirflowCFM: 15}
	perm, best, err := array.OptimalOrder(c, bay)
	if err != nil {
		log.Fatal(err)
	}
	base, err := array.Evaluate(c, bay)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAt 15 CFM, reordering the slots (best order %v):\n", perm)
	fmt.Printf("  hottest air: %.2f C as racked vs %.2f C optimally placed\n",
		float64(array.HottestAir(base)), float64(array.HottestAir(best)))

	// Dense cages go beyond the exhaustive search: a 12-slot bay switches
	// to the greedy biggest-risers-upstream heuristic (no more factorial).
	big := make([]array.Slot, 12)
	for i := range big {
		big[i] = mk(10000, 0.2)
	}
	big[10], big[11] = mk(15000, 1), mk(15000, 1)
	bigPerm, bigBest, err := array.OptimalOrder(array.Chassis{Inlet: thermal.DefaultAmbient, AirflowCFM: 25}, big)
	if err != nil {
		log.Fatal(err)
	}
	bigBase, err := array.Evaluate(array.Chassis{Inlet: thermal.DefaultAmbient, AirflowCFM: 25}, big)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTwelve-slot cage (greedy placement, hot drives %v -> front):\n", bigPerm[:2])
	fmt.Printf("  hottest air: %.2f C as racked vs %.2f C greedily placed\n",
		float64(array.HottestAir(bigBase)), float64(array.HottestAir(bigBest)))

	// What inlet temperature can the optimally-placed six-drive bay take?
	ordered := make([]array.Slot, len(perm))
	for i, idx := range perm {
		ordered[i] = bay[idx]
	}
	maxInlet, err := array.MaxInletForEnvelope(c, ordered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWarmest tolerable inlet for the optimal six-drive order: %.2f C\n", float64(maxInlet))

	// Stack chassis into a rack: with hot-aisle recirculation, the upper
	// chassis breathe the lower ones' exhaust. fleet.PreviewFleet solves
	// the whole ladder at the design point.
	cfg := fleet.Config{
		Topology: fleet.Topology{Racks: 1, ChassisPerRack: 5, SlotsPerChassis: 6},
		Scenario: fleet.Scenario{AirflowCFM: 15, Recirculation: 0.3},
		GenYears: []int{2005},
	}
	preview, err := fleet.PreviewFleet(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nOne rack, five chassis, 30% exhaust recirculation (2005 drives, full duty):")
	for ch := 0; ch < cfg.Topology.ChassisPerRack; ch++ {
		var inlet, hottest units.Celsius
		ok := true
		for _, d := range preview {
			if d.Chassis != ch {
				continue
			}
			if d.Slot == 0 {
				inlet = d.Ambient
			}
			if d.Air > hottest {
				hottest = d.Air
			}
			ok = ok && d.WithinEnvelope
		}
		fmt.Printf("  chassis %d: inlet %.2f C, hottest drive %.2f C, within envelope: %v\n",
			ch, float64(inlet), float64(hottest), ok)
	}

	fmt.Println("\nLesson: a drive designed exactly to the envelope needs airflow")
	fmt.Println("headroom, a cooler inlet, or a better slot the moment it shares a")
	fmt.Println("chassis — and a better rack the moment chassis share a room.")
}
