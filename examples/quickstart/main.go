// Quickstart: model one disk drive end to end — capacity, data rate, seek
// curve and thermal behaviour — using the integrated drive model.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/drive"
	"repro/internal/geometry"
	"repro/internal/thermal"
)

func main() {
	// A 2002-generation enterprise drive: four 2.6" platters at 15,000 RPM
	// with that year's recording densities (the Cheetah 15K.3 class).
	m, err := drive.New(drive.Config{
		Name: "example-15k",
		Geometry: geometry.Drive{
			PlatterDiameter: 2.6,
			Platters:        4,
			FormFactor:      geometry.FormFactor35,
		},
		BPI:   533000,
		TPI:   64000,
		RPM:   15000,
		Zones: 30,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("drive:", m.Config().Name)
	fmt.Println("  capacity:       ", m.Capacity())
	fmt.Println("  max data rate:  ", m.IDR())
	fmt.Println("  cylinders:      ", m.Layout().Cylinders)
	fmt.Println("  zones:          ", len(m.Layout().Zones))
	fmt.Printf("  zone 0 / zone %d sectors per track: %d / %d\n",
		len(m.Layout().Zones)-1,
		m.Layout().Zones[0].SectorsPerTrack,
		m.Layout().Zones[len(m.Layout().Zones)-1].SectorsPerTrack)

	p := m.Seek().Params()
	fmt.Println("  seek track-to-track / average / full-stroke:",
		p.TrackToTrack, "/", p.Average, "/", p.FullStroke)

	// Thermal behaviour at the default 28 C ambient.
	busy := m.SteadyTemperature(1, thermal.DefaultAmbient)
	idle := m.SteadyTemperature(0, thermal.DefaultAmbient)
	fmt.Printf("  steady internal air: %.2f C seeking, %.2f C idle (envelope %v)\n",
		float64(busy), float64(idle), thermal.Envelope)
	fmt.Println("  within envelope while seeking:", m.WithinEnvelope())
	if maxRPM := m.MaxEnvelopeRPM(thermal.DefaultAmbient); maxRPM > 0 {
		fmt.Printf("  max envelope speed for this stack: %v\n", maxRPM)
	} else {
		// Four platters of windage exceed the envelope at any speed under
		// the default ambient; the paper grants such stacks a cooling
		// budget (section 4).
		budget, err := thermal.CoolingBudget(m.Config().Geometry, m.Config().RPM)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  no speed fits the envelope at 28 C; needs a %.1f C cooling budget at %v\n",
			float64(budget), m.Config().RPM)
	}

	// What would this geometry support as a single-platter design?
	single, err := drive.New(drive.Config{
		Name: "example-15k-1p",
		Geometry: geometry.Drive{
			PlatterDiameter: 2.6,
			Platters:        1,
			FormFactor:      geometry.FormFactor35,
		},
		BPI: 533000, TPI: 64000, RPM: 15000, Zones: 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  single-platter variant: %v capacity, max envelope speed %v\n",
		single.Capacity(), single.MaxEnvelopeRPM(thermal.DefaultAmbient))
}
