package repro

import (
	"math/rand"
	"time"

	"repro/internal/capacity"
	"repro/internal/disksim"
	"repro/internal/units"
)

// relErr returns |a-b|/b.
func relErr(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := (a - b) / b
	if d < 0 {
		return -d
	}
	return d
}

// newDisk builds a simulator disk on a layout.
func newDisk(layout *capacity.Layout, rpm units.RPM) (*disksim.Disk, error) {
	return disksim.New(disksim.Config{Layout: layout, RPM: rpm})
}

// syntheticStream is a deterministic random request stream at a given rate.
func syntheticStream(total int64, n int, rate float64) []disksim.Request {
	rng := rand.New(rand.NewSource(1))
	reqs := make([]disksim.Request, n)
	now := 0.0
	for i := range reqs {
		now += rng.ExpFloat64() / rate
		reqs[i] = disksim.Request{
			ID:      int64(i),
			Arrival: time.Duration(now * float64(time.Second)),
			LBN:     rng.Int63n(total - 64),
			Sectors: 8,
			Write:   rng.Float64() < 0.3,
		}
	}
	return reqs
}
