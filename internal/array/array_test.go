package array

import (
	"math"
	"testing"

	"repro/internal/geometry"
	"repro/internal/thermal"
	"repro/internal/units"
)

func refSlot(rpm units.RPM, duty float64) Slot {
	return Slot{
		Drive:   thermal.ReferenceDrive,
		RPM:     rpm,
		VCMDuty: duty,
	}
}

func testChassis() Chassis { return Chassis{Inlet: thermal.DefaultAmbient, AirflowCFM: 25} }

func TestValidate(t *testing.T) {
	if err := (Chassis{AirflowCFM: 0}).Validate(); err == nil {
		t.Error("zero airflow should be rejected")
	}
	if _, err := Evaluate(testChassis(), nil); err == nil {
		t.Error("empty slot list should be rejected")
	}
}

func TestDownstreamRunsHotter(t *testing.T) {
	slots := []Slot{refSlot(15000, 1), refSlot(15000, 1), refSlot(15000, 1)}
	states, err := Evaluate(testChassis(), slots)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(states); i++ {
		if states[i].Ambient <= states[i-1].Ambient {
			t.Errorf("slot %d ambient %v not above upstream %v",
				i, states[i].Ambient, states[i-1].Ambient)
		}
		if states[i].Air <= states[i-1].Air {
			t.Errorf("slot %d air %v not above upstream %v", i, states[i].Air, states[i-1].Air)
		}
	}
	// The first slot sees the inlet exactly.
	if states[0].Ambient != thermal.DefaultAmbient {
		t.Errorf("slot 0 ambient = %v", states[0].Ambient)
	}
}

func TestPreheatMatchesEnergyBalance(t *testing.T) {
	c := testChassis()
	slots := []Slot{refSlot(15000, 1), refSlot(15000, 1)}
	states, err := Evaluate(c, slots)
	if err != nil {
		t.Fatal(err)
	}
	// Slot 1's preheat equals slot 0's dissipation over m*cp.
	want := float64(states[0].Dissipation) / c.heatCapacityRate()
	got := float64(states[1].Ambient - states[0].Ambient)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("preheat %v, want %v", got, want)
	}
}

func TestMoreAirflowCoolsArray(t *testing.T) {
	slots := []Slot{refSlot(15000, 1), refSlot(15000, 1), refSlot(15000, 1), refSlot(15000, 1)}
	weak, err := Evaluate(Chassis{Inlet: 28, AirflowCFM: 8}, slots)
	if err != nil {
		t.Fatal(err)
	}
	strong, err := Evaluate(Chassis{Inlet: 28, AirflowCFM: 50}, slots)
	if err != nil {
		t.Fatal(err)
	}
	if HottestAir(strong) >= HottestAir(weak) {
		t.Errorf("more airflow should cool the hottest slot: %v vs %v",
			HottestAir(strong), HottestAir(weak))
	}
}

func TestEnvelopeAccounting(t *testing.T) {
	// A single reference drive at its envelope speed passes; a full bay of
	// them overheats the downstream slots at modest airflow.
	one, err := Evaluate(testChassis(), []Slot{refSlot(15000, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if !AllWithinEnvelope(one) {
		t.Errorf("a lone envelope-design drive should pass: %v", one[0].Air)
	}
	bay := make([]Slot, 6)
	for i := range bay {
		bay[i] = refSlot(15000, 1)
	}
	states, err := Evaluate(Chassis{Inlet: 28, AirflowCFM: 6}, bay)
	if err != nil {
		t.Fatal(err)
	}
	if AllWithinEnvelope(states) {
		t.Error("six worst-case drives behind 6 CFM should overheat downstream")
	}
}

func TestOptimalOrderBeatsWorst(t *testing.T) {
	// Mixed bay: two fast hot drives, two slow cool ones.
	slots := []Slot{
		refSlot(24534, 1),
		refSlot(10000, 0.3),
		refSlot(24534, 1),
		refSlot(10000, 0.3),
	}
	c := Chassis{Inlet: 28, AirflowCFM: 10}
	perm, best, err := OptimalOrder(c, slots)
	if err != nil {
		t.Fatal(err)
	}
	if len(perm) != len(slots) {
		t.Fatalf("permutation length %d", len(perm))
	}
	seen := map[int]bool{}
	for _, p := range perm {
		seen[p] = true
	}
	if len(seen) != len(slots) {
		t.Fatalf("permutation not a bijection: %v", perm)
	}
	base, err := Evaluate(c, slots)
	if err != nil {
		t.Fatal(err)
	}
	if HottestAir(best) > HottestAir(base) {
		t.Errorf("optimal order (%v C) worse than identity (%v C)",
			HottestAir(best), HottestAir(base))
	}
	// The optimum puts the hot drives upstream of the cool ones? Verify
	// it strictly beats the explicitly bad order (hot drives last).
	bad := []Slot{slots[1], slots[3], slots[0], slots[2]}
	worst, err := Evaluate(c, bad)
	if err != nil {
		t.Fatal(err)
	}
	if HottestAir(best) >= HottestAir(worst) {
		t.Errorf("optimal (%v) should beat hot-drives-downstream (%v)",
			HottestAir(best), HottestAir(worst))
	}
}

func TestOptimalOrderLimits(t *testing.T) {
	if _, _, err := OptimalOrder(testChassis(), nil); err == nil {
		t.Error("empty bay should be rejected")
	}
}

// TestGreedyOrderAboveExhaustiveLimit exercises the heuristic path: bays
// beyond 8 slots no longer error (the old behaviour) — they get the
// biggest-risers-upstream arrangement.
func TestGreedyOrderAboveExhaustiveLimit(t *testing.T) {
	// 12 slots, worst-possible starting order: the hottest drives are
	// downstream, breathing everyone else's exhaust.
	big := make([]Slot, 12)
	for i := range big {
		big[i] = refSlot(10000, 0.2)
	}
	big[10] = refSlot(20000, 1)
	big[11] = refSlot(20000, 1)
	c := Chassis{Inlet: 28, AirflowCFM: 25}

	perm, states, err := OptimalOrder(c, big)
	if err != nil {
		t.Fatal(err)
	}
	if len(perm) != len(big) || len(states) != len(big) {
		t.Fatalf("lengths: perm %d states %d", len(perm), len(states))
	}
	seen := map[int]bool{}
	for _, p := range perm {
		seen[p] = true
	}
	if len(seen) != len(big) {
		t.Fatalf("permutation not a bijection: %v", perm)
	}
	// The hot drives move upstream...
	if !(perm[0] == 10 || perm[0] == 11) || !(perm[1] == 10 || perm[1] == 11) {
		t.Fatalf("hot drives not placed first: %v", perm)
	}
	// ...and the arrangement beats the hot-drives-downstream identity.
	base, err := Evaluate(c, big)
	if err != nil {
		t.Fatal(err)
	}
	if HottestAir(states) >= HottestAir(base) {
		t.Errorf("greedy (%v) should beat hot-drives-downstream (%v)",
			HottestAir(states), HottestAir(base))
	}
	// Determinism: a second call reproduces the permutation exactly.
	again, _, err := OptimalOrder(c, big)
	if err != nil {
		t.Fatal(err)
	}
	for i := range perm {
		if perm[i] != again[i] {
			t.Fatalf("greedy order not deterministic: %v vs %v", perm, again)
		}
	}
}

func TestMaxInletForEnvelope(t *testing.T) {
	slots := []Slot{refSlot(15000, 1), refSlot(15000, 1)}
	c := Chassis{Inlet: 28, AirflowCFM: 20}
	maxInlet, err := MaxInletForEnvelope(c, slots)
	if err != nil {
		t.Fatal(err)
	}
	// Two envelope-design drives sharing air need a cooler-than-28 inlet
	// (the downstream one is preheated).
	if float64(maxInlet) >= 28 {
		t.Errorf("max inlet %v; downstream preheat should demand below 28 C", maxInlet)
	}
	// And the bound is achievable: evaluating at it passes.
	c.Inlet = maxInlet
	states, err := Evaluate(c, slots)
	if err != nil {
		t.Fatal(err)
	}
	if !AllWithinEnvelope(states) {
		t.Error("configuration at the computed max inlet should pass")
	}
	// An impossible bay errors.
	impossible := []Slot{refSlot(60000, 1)}
	if _, err := MaxInletForEnvelope(c, impossible); err == nil {
		t.Error("a 60k RPM drive cannot meet the envelope at any inlet above -30 C")
	}
}

func TestSlotDissipationClampsDuty(t *testing.T) {
	over := Slot{Drive: thermal.ReferenceDrive, RPM: 15000, VCMDuty: 5}
	one := Slot{Drive: thermal.ReferenceDrive, RPM: 15000, VCMDuty: 1}
	if over.dissipation() != one.dissipation() {
		t.Error("duty should clamp to [0,1]")
	}
	bad := Slot{Drive: geometry.Drive{}, RPM: 15000}
	if _, err := Evaluate(testChassis(), []Slot{bad}); err == nil {
		t.Error("invalid drive geometry should be rejected")
	}
}
