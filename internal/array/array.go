// Package array models the thermal environment of a multi-drive chassis:
// the member drives share one cooling airstream, so each slot's effective
// ambient is the inlet temperature plus the heat picked up from every
// upstream drive. This is the disk-array thermal-design concern of Huang &
// Chung that the paper cites ([28]) — and the reason the paper's per-drive
// envelope math must be combined with placement when drives are racked.
//
// The serial-airstream arithmetic now lives in internal/fleet (Airstream),
// where the chassis, rack and room layers compose over it at datacenter
// scale; this package remains the single-chassis steady-state API, a thin
// wrapper over the fleet coupling core.
package array

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fleet"
	"repro/internal/geometry"
	"repro/internal/thermal"
	"repro/internal/units"
)

// Chassis describes the shared cooling path.
type Chassis struct {
	// Inlet is the air temperature entering the chassis.
	Inlet units.Celsius

	// AirflowCFM is the volumetric airflow along the drive bay, in cubic
	// feet per minute. Typical 1U-3U storage chassis move 10-50 CFM
	// through the drive cage.
	AirflowCFM float64
}

// airstream is the fleet coupling core this chassis wraps.
func (c Chassis) airstream() fleet.Airstream {
	return fleet.Airstream{Inlet: c.Inlet, AirflowCFM: c.AirflowCFM}
}

// Validate reports whether the chassis is physical.
func (c Chassis) Validate() error {
	if c.AirflowCFM <= 0 {
		return fmt.Errorf("array: non-positive airflow %.1f CFM", c.AirflowCFM)
	}
	return nil
}

// heatCapacityRate returns the airstream's m*cp in W/K, using air properties
// at the inlet temperature.
func (c Chassis) heatCapacityRate() float64 { return c.airstream().HeatCapacityRate() }

// Slot is one drive position along the airstream (index 0 is nearest the
// inlet).
type Slot struct {
	Drive   geometry.Drive
	RPM     units.RPM
	VCMDuty float64
}

// dissipation returns the slot's total heat output in watts.
func (s Slot) dissipation() units.Watts {
	duty := s.VCMDuty
	if duty < 0 {
		duty = 0
	} else if duty > 1 {
		duty = 1
	}
	return thermal.ViscousDissipation(s.RPM, s.Drive.PlatterDiameter, s.Drive.Platters) +
		thermal.BearingLoss(s.RPM, s.Drive.PlatterDiameter) +
		units.Watts(duty*float64(thermal.VCMPower(s.Drive.PlatterDiameter)))
}

// SlotState is the thermal outcome for one slot.
type SlotState struct {
	// Ambient is the local air temperature the drive's enclosure sees.
	Ambient units.Celsius

	// Air is the drive's internal air temperature at steady state.
	Air units.Celsius

	// Dissipation is the heat the drive adds to the airstream.
	Dissipation units.Watts

	// WithinEnvelope reports Air <= thermal.Envelope.
	WithinEnvelope bool
}

// Evaluate computes every slot's local ambient and internal temperature.
// In the fixed-property model a drive's dissipation is set by its operating
// point alone, so a single upstream-to-downstream pass is exact. The slot
// ambients come from the fleet airstream core, bit-identical to the loop
// this package used before the promotion.
func Evaluate(c Chassis, slots []Slot) ([]SlotState, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(slots) == 0 {
		return nil, fmt.Errorf("array: no slots")
	}
	diss := make([]units.Watts, len(slots))
	for i, s := range slots {
		diss[i] = s.dissipation()
	}
	ambients := c.airstream().Ambients(diss)
	out := make([]SlotState, len(slots))
	for i, s := range slots {
		m, err := thermal.New(s.Drive)
		if err != nil {
			return nil, fmt.Errorf("array: slot %d: %w", i, err)
		}
		st := m.SteadyState(thermal.Load{RPM: s.RPM, VCMDuty: s.VCMDuty, Ambient: ambients[i]})
		out[i] = SlotState{
			Ambient:        ambients[i],
			Air:            st.Air,
			Dissipation:    diss[i],
			WithinEnvelope: st.Air <= thermal.Envelope,
		}
	}
	return out, nil
}

// HottestAir returns the maximum internal air temperature across slots.
func HottestAir(states []SlotState) units.Celsius {
	hot := units.Celsius(math.Inf(-1))
	for _, s := range states {
		if s.Air > hot {
			hot = s.Air
		}
	}
	return hot
}

// AllWithinEnvelope reports whether every slot respects the envelope.
func AllWithinEnvelope(states []SlotState) bool {
	for _, s := range states {
		if !s.WithinEnvelope {
			return false
		}
	}
	return true
}

// exhaustiveLimit is the largest bay OptimalOrder searches exhaustively;
// above it the factorial blows up (9 slots is already 362,880 evaluations)
// and the greedy heuristic takes over.
const exhaustiveLimit = 8

// OptimalOrder arranges the slots to minimise the hottest internal air
// temperature. Bays up to 8 slots are searched exhaustively (the exact
// optimum). Larger bays use a greedy heuristic: slots sorted by their
// standalone temperature rise above the inlet, hottest first, so the
// biggest risers breathe the coolest air — the exchange argument that is
// exact when rise and dissipation order the same way, which holds for
// drives differing in speed, duty or size under this package's power
// model. The returned permutation maps position -> original slot index.
func OptimalOrder(c Chassis, slots []Slot) ([]int, []SlotState, error) {
	n := len(slots)
	if n == 0 {
		return nil, nil, fmt.Errorf("array: no slots")
	}
	if n > exhaustiveLimit {
		return greedyOrder(c, slots)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var bestPerm []int
	var bestStates []SlotState
	bestHot := units.Celsius(math.Inf(1))

	arranged := make([]Slot, n)
	var walk func(k int) error
	walk = func(k int) error {
		if k == n {
			for i, idx := range perm {
				arranged[i] = slots[idx]
			}
			states, err := Evaluate(c, arranged)
			if err != nil {
				return err
			}
			if hot := HottestAir(states); hot < bestHot {
				bestHot = hot
				bestPerm = append([]int(nil), perm...)
				bestStates = append([]SlotState(nil), states...)
			}
			return nil
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if err := walk(k + 1); err != nil {
				return err
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, nil, err
	}
	return bestPerm, bestStates, nil
}

// greedyOrder is the heuristic for bays beyond the exhaustive limit: rank
// each slot by the internal air rise it would have alone at the inlet,
// place the biggest risers upstream, and evaluate that single arrangement.
// Ties keep the original slot order, so the result is deterministic.
func greedyOrder(c Chassis, slots []Slot) ([]int, []SlotState, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	rises := make([]units.Celsius, len(slots))
	for i, s := range slots {
		m, err := thermal.New(s.Drive)
		if err != nil {
			return nil, nil, fmt.Errorf("array: slot %d: %w", i, err)
		}
		st := m.SteadyState(thermal.Load{RPM: s.RPM, VCMDuty: s.VCMDuty, Ambient: c.Inlet})
		rises[i] = st.Air - c.Inlet
	}
	perm := make([]int, len(slots))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return rises[perm[a]] > rises[perm[b]] })
	arranged := make([]Slot, len(slots))
	for i, idx := range perm {
		arranged[i] = slots[idx]
	}
	states, err := Evaluate(c, arranged)
	if err != nil {
		return nil, nil, err
	}
	return perm, states, nil
}

// MaxInletForEnvelope bisects the highest inlet temperature at which every
// slot stays within the envelope — the chassis-level cooling requirement.
func MaxInletForEnvelope(c Chassis, slots []Slot) (units.Celsius, error) {
	feasible := func(inlet units.Celsius) (bool, error) {
		cc := c
		cc.Inlet = inlet
		states, err := Evaluate(cc, slots)
		if err != nil {
			return false, err
		}
		return AllWithinEnvelope(states), nil
	}
	ok, err := feasible(-30)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("array: configuration infeasible even at -30 C inlet")
	}
	lo, hi := -30.0, 60.0
	for i := 0; i < 40 && hi-lo > 0.01; i++ {
		mid := (lo + hi) / 2
		ok, err := feasible(units.Celsius(mid))
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return units.Celsius(lo), nil
}
