package perf

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/capacity"
	"repro/internal/geometry"
	"repro/internal/units"
)

func cheetahLayout(t *testing.T) *capacity.Layout {
	t.Helper()
	l, err := capacity.New(capacity.Config{
		Geometry: geometry.Drive{PlatterDiameter: 2.6, Platters: 4, FormFactor: geometry.FormFactor35},
		BPI:      533000,
		TPI:      64000,
		Zones:    30,
	})
	if err != nil {
		t.Fatalf("layout: %v", err)
	}
	return l
}

func TestIDRCheetah153(t *testing.T) {
	l := cheetahLayout(t)
	got := float64(IDR(l, 15000))
	// Paper's model: 114.4 MB/s; accept 2%.
	if math.Abs(got-114.4)/114.4 > 0.02 {
		t.Errorf("IDR = %.1f MB/s, want ~114.4", got)
	}
}

func TestIDRLinearInRPM(t *testing.T) {
	l := cheetahLayout(t)
	base := float64(IDR(l, 10000))
	double := float64(IDR(l, 20000))
	if math.Abs(double-2*base) > 1e-9 {
		t.Errorf("IDR not linear in RPM: %v vs %v", double, 2*base)
	}
}

func TestRPMForIDRInverts(t *testing.T) {
	l := cheetahLayout(t)
	f := func(raw uint16) bool {
		rpm := units.RPM(5000 + int(raw)%60000)
		idr := IDR(l, rpm)
		back := RPMForIDR(l, idr)
		return math.Abs(float64(back-rpm)) < 1e-6*float64(rpm)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeekParamsForPlatterAnchors(t *testing.T) {
	p := SeekParamsForPlatter(2.6)
	if p.Average != 3600*time.Microsecond {
		t.Errorf("2.6\" average seek = %v, want 3.6ms", p.Average)
	}
	p = SeekParamsForPlatter(3.7)
	if p.FullStroke != 16*time.Millisecond {
		t.Errorf("3.7\" full stroke = %v, want 16ms", p.FullStroke)
	}
}

func TestSeekParamsInterpolateAndClamp(t *testing.T) {
	mid := SeekParamsForPlatter(2.35) // halfway between 2.1 and 2.6
	lo, hi := SeekParamsForPlatter(2.1), SeekParamsForPlatter(2.6)
	if mid.Average <= lo.Average || mid.Average >= hi.Average {
		t.Errorf("interpolated average %v not between %v and %v", mid.Average, lo.Average, hi.Average)
	}
	if got := SeekParamsForPlatter(0.5); got != SeekParamsForPlatter(1.0) {
		t.Error("below-range diameter should clamp")
	}
	if got := SeekParamsForPlatter(5.0); got != SeekParamsForPlatter(3.7) {
		t.Error("above-range diameter should clamp")
	}
}

func TestSeekParamsMonotoneInDiameter(t *testing.T) {
	prev := SeekParamsForPlatter(1.0)
	for d := 1.1; d <= 3.7; d += 0.1 {
		cur := SeekParamsForPlatter(units.Inches(d))
		if cur.Average < prev.Average || cur.FullStroke < prev.FullStroke {
			t.Fatalf("seek times shrank from %.1f\" to %.1f\"", d-0.1, d)
		}
		prev = cur
	}
}

func newModel(t *testing.T) *SeekModel {
	t.Helper()
	m, err := NewSeekModel(SeekParamsForPlatter(2.6), 27720)
	if err != nil {
		t.Fatalf("NewSeekModel: %v", err)
	}
	return m
}

func TestSeekTimeEndpoints(t *testing.T) {
	m := newModel(t)
	if got := m.SeekTime(0); got != 0 {
		t.Errorf("zero seek = %v, want 0", got)
	}
	if got := m.SeekTime(1); got != m.Params().TrackToTrack {
		t.Errorf("track-to-track = %v, want %v", got, m.Params().TrackToTrack)
	}
	full := m.SeekTime(m.Cylinders() - 1)
	if d := math.Abs(float64(full - m.Params().FullStroke)); d > float64(time.Microsecond) {
		t.Errorf("full stroke = %v, want %v", full, m.Params().FullStroke)
	}
	// Average seek at one-third stroke.
	third := m.SeekTime((m.Cylinders() - 1) / 3)
	if d := math.Abs(float64(third - m.Params().Average)); d > float64(10*time.Microsecond) {
		t.Errorf("1/3-stroke seek = %v, want ~%v", third, m.Params().Average)
	}
}

func TestSeekTimeSymmetricAndMonotone(t *testing.T) {
	m := newModel(t)
	if m.SeekTime(-500) != m.SeekTime(500) {
		t.Error("seek time should depend on |distance|")
	}
	prev := time.Duration(-1)
	for d := 0; d < m.Cylinders(); d += 97 {
		cur := m.SeekTime(d)
		if cur < prev {
			t.Fatalf("seek time decreased at distance %d", d)
		}
		prev = cur
	}
}

func TestSeekTimeClampsBeyondStroke(t *testing.T) {
	m := newModel(t)
	if m.SeekTime(10*m.Cylinders()) != m.SeekTime(m.Cylinders()-1) {
		t.Error("seeks beyond the stroke should clamp to full stroke")
	}
}

func TestNewSeekModelErrors(t *testing.T) {
	if _, err := NewSeekModel(SeekParams{}, 100); err == nil {
		t.Error("zero params should be rejected")
	}
	bad := SeekParams{TrackToTrack: 5 * time.Millisecond, Average: time.Millisecond, FullStroke: 10 * time.Millisecond}
	if _, err := NewSeekModel(bad, 100); err == nil {
		t.Error("non-monotone params should be rejected")
	}
	if _, err := NewSeekModel(SeekParamsForPlatter(2.6), 1); err == nil {
		t.Error("single-cylinder drive should be rejected")
	}
}

func TestAverageRotationalLatency(t *testing.T) {
	if got := AverageRotationalLatency(15000); got != 2*time.Millisecond {
		t.Errorf("latency at 15000 RPM = %v, want 2ms", got)
	}
	if got := AverageRotationalLatency(7200); math.Abs(float64(got-4166667*time.Nanosecond)) > 1000 {
		t.Errorf("latency at 7200 RPM = %v, want ~4.167ms", got)
	}
}

func TestTransferTime(t *testing.T) {
	// A full track at 15000 RPM takes one revolution: 4 ms.
	got := TransferTime(900, 900, 15000)
	if math.Abs(float64(got-4*time.Millisecond)) > float64(time.Microsecond) {
		t.Errorf("full-track transfer = %v, want 4ms", got)
	}
	half := TransferTime(450, 900, 15000)
	if math.Abs(float64(half-2*time.Millisecond)) > float64(time.Microsecond) {
		t.Errorf("half-track transfer = %v, want 2ms", half)
	}
	if TransferTime(0, 900, 15000) != 0 || TransferTime(10, 0, 15000) != 0 {
		t.Error("degenerate transfers should be zero")
	}
}

func TestIDRGrowsWithDensity(t *testing.T) {
	l := cheetahLayout(t)
	denser, err := capacity.New(capacity.Config{
		Geometry: l.Config().Geometry,
		BPI:      l.Config().BPI * 1.3,
		TPI:      l.Config().TPI,
		Zones:    30,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := float64(IDR(denser, 15000)) / float64(IDR(l, 15000))
	if r < 1.25 || r > 1.35 {
		t.Errorf("IDR ratio for 1.3x BPI = %.3f, want ~1.3", r)
	}
}
