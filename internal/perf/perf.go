// Package perf implements the paper's performance model (section 3.2): the
// three-parameter seek-time model of Worthington et al. and the internal data
// rate (IDR) computed from the outermost ZBR zone.
package perf

import (
	"fmt"
	"math"
	"time"

	"repro/internal/capacity"
	"repro/internal/units"
)

// SeekParams are the three datasheet parameters the seek model interpolates:
// track-to-track, average, and full-stroke seek times.
type SeekParams struct {
	TrackToTrack time.Duration
	Average      time.Duration
	FullStroke   time.Duration
}

// Validate reports whether the parameters are self-consistent.
func (p SeekParams) Validate() error {
	if p.TrackToTrack <= 0 || p.Average <= 0 || p.FullStroke <= 0 {
		return fmt.Errorf("perf: non-positive seek parameter %+v", p)
	}
	if p.TrackToTrack > p.Average || p.Average > p.FullStroke {
		return fmt.Errorf("perf: seek parameters not monotone %+v", p)
	}
	return nil
}

// seekAnchor ties a platter diameter to datasheet-typical seek parameters.
// The paper interpolates "data from actual devices of different platter
// sizes"; these anchors follow the drives in its Table 1 generation.
type seekAnchor struct {
	diameter units.Inches
	params   SeekParams
}

var seekAnchors = []seekAnchor{
	{1.0, SeekParams{100 * time.Microsecond, 1200 * time.Microsecond, 2400 * time.Microsecond}},
	{1.6, SeekParams{200 * time.Microsecond, 1900 * time.Microsecond, 3800 * time.Microsecond}},
	{2.1, SeekParams{300 * time.Microsecond, 2700 * time.Microsecond, 5400 * time.Microsecond}},
	{2.6, SeekParams{400 * time.Microsecond, 3600 * time.Microsecond, 7200 * time.Microsecond}},
	{3.0, SeekParams{500 * time.Microsecond, 4300 * time.Microsecond, 8800 * time.Microsecond}},
	{3.3, SeekParams{600 * time.Microsecond, 4900 * time.Microsecond, 10200 * time.Microsecond}},
	{3.7, SeekParams{800 * time.Microsecond, 7400 * time.Microsecond, 16000 * time.Microsecond}},
}

// SeekParamsForPlatter returns seek parameters for a platter diameter by
// linear interpolation between the anchor devices (clamped at the ends).
func SeekParamsForPlatter(d units.Inches) SeekParams {
	a := seekAnchors
	if d <= a[0].diameter {
		return a[0].params
	}
	for i := 1; i < len(a); i++ {
		if d <= a[i].diameter {
			lo, hi := a[i-1], a[i]
			f := float64(d-lo.diameter) / float64(hi.diameter-lo.diameter)
			return SeekParams{
				TrackToTrack: lerpDur(lo.params.TrackToTrack, hi.params.TrackToTrack, f),
				Average:      lerpDur(lo.params.Average, hi.params.Average, f),
				FullStroke:   lerpDur(lo.params.FullStroke, hi.params.FullStroke, f),
			}
		}
	}
	return a[len(a)-1].params
}

func lerpDur(a, b time.Duration, f float64) time.Duration {
	return a + time.Duration(float64(b-a)*f)
}

// SeekModel computes seek time for a seek distance in cylinders using the
// piecewise-linear interpolation through the three datasheet points. The
// average seek is pinned at one third of the full stroke, the textbook mean
// distance of a uniformly random seek.
type SeekModel struct {
	params    SeekParams
	cylinders int
}

// NewSeekModel builds a seek model for a drive with the given cylinder count.
func NewSeekModel(p SeekParams, cylinders int) (*SeekModel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cylinders < 2 {
		return nil, fmt.Errorf("perf: %d cylinders; need at least 2", cylinders)
	}
	return &SeekModel{params: p, cylinders: cylinders}, nil
}

// Params returns the model's three datasheet parameters.
func (m *SeekModel) Params() SeekParams { return m.params }

// Cylinders returns the stroke length in cylinders.
func (m *SeekModel) Cylinders() int { return m.cylinders }

// SeekTime returns the time to move the actuator dist cylinders.
// A zero-distance seek takes no time.
func (m *SeekModel) SeekTime(dist int) time.Duration {
	if dist < 0 {
		dist = -dist
	}
	switch {
	case dist == 0:
		return 0
	case dist == 1:
		return m.params.TrackToTrack
	}
	full := float64(m.cylinders - 1)
	avgDist := full / 3
	d := float64(dist)
	if d > full {
		d = full
	}
	tt := float64(m.params.TrackToTrack)
	av := float64(m.params.Average)
	fs := float64(m.params.FullStroke)
	var t float64
	if d <= avgDist {
		t = tt + (av-tt)*(d-1)/(avgDist-1)
	} else {
		t = av + (fs-av)*(d-avgDist)/(full-avgDist)
	}
	return time.Duration(t)
}

// AverageRotationalLatency returns half a revolution at the given speed.
func AverageRotationalLatency(rpm units.RPM) time.Duration {
	if rpm <= 0 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(rpm.PeriodSeconds() / 2 * float64(time.Second))
}

// IDR returns the maximum internal data rate (equation 4 of the paper):
// the outermost zone's track streamed at the rotation rate.
func IDR(l *capacity.Layout, rpm units.RPM) units.MBPerSec {
	ntz0 := float64(l.SectorsPerTrackZone0())
	return units.MBPerSec(rpm.RevPerSec() * ntz0 * units.SectorBytes / units.MB)
}

// RPMForIDR inverts equation 4: the rotational speed needed to reach the
// target IDR with the given layout's outermost zone.
func RPMForIDR(l *capacity.Layout, target units.MBPerSec) units.RPM {
	ntz0 := float64(l.SectorsPerTrackZone0())
	if ntz0 == 0 {
		return 0
	}
	return units.RPM(float64(target) * units.MB / (ntz0 * units.SectorBytes) * 60)
}

// TransferTime returns the media transfer time for n consecutive sectors on a
// track with sectorsPerTrack sectors at the given speed.
func TransferTime(n, sectorsPerTrack int, rpm units.RPM) time.Duration {
	if n <= 0 || sectorsPerTrack <= 0 || rpm <= 0 {
		return 0
	}
	rev := rpm.PeriodSeconds()
	return time.Duration(rev * float64(n) / float64(sectorsPerTrack) * float64(time.Second))
}
