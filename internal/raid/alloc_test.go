package raid

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestInstrumentedServeAllocsNothingSteadyState pins the volume hot path at
// zero steady-state allocations with a live metrics registry attached: once
// the reusable sub-request buffer has grown to the workload's fan-out and
// the member caches are warm, Volume.Serve — mapping, member service,
// slowest-sub join and metric recording — must not allocate.
func TestInstrumentedServeAllocsNothingSteadyState(t *testing.T) {
	for _, level := range []Level{JBOD, RAID0, RAID5, RAID1} {
		t.Run(level.String(), func(t *testing.T) {
			n := 4
			if level == RAID1 {
				n = 2
			}
			v := testVolume(t, level, n)
			reg := obs.NewRegistry()
			v.Instrument(reg, "vol", level.String())

			id := int64(0)
			arrival := time.Duration(0)
			serve := func(write bool) {
				id++
				arrival += time.Millisecond
				r := Request{ID: id, Arrival: arrival, Block: (id * 97) % (v.Capacity() - 64), Sectors: 16, Write: write}
				if _, err := v.Serve(r); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 32; i++ { // warm-up: scratch buffer, caches, histograms
				serve(i%2 == 0)
			}
			i := 0
			if allocs := testing.AllocsPerRun(200, func() {
				serve(i%2 == 0)
				i++
			}); allocs != 0 {
				t.Fatalf("instrumented %v Serve allocates %v per run, want 0", level, allocs)
			}
		})
	}
}
