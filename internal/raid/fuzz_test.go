package raid

import (
	"testing"

	"repro/internal/capacity"
	"repro/internal/disksim"
	"repro/internal/geometry"
)

// fuzzVolume builds a small volume for Explode fuzzing without *testing.T
// plumbing (FuzzExplode's seed corpus runs under plain go test too).
func fuzzVolume(f *testing.F, level Level, n int) *Volume {
	f.Helper()
	layout, err := capacity.New(capacity.Config{
		Geometry: geometry.Drive{PlatterDiameter: 3.3, Platters: 1, FormFactor: geometry.FormFactor35},
		BPI:      456000,
		TPI:      45000,
		Zones:    30,
	})
	if err != nil {
		f.Fatal(err)
	}
	disks := make([]*disksim.Disk, n)
	for i := range disks {
		d, err := disksim.New(disksim.Config{Layout: layout, RPM: 10000})
		if err != nil {
			f.Fatal(err)
		}
		disks[i] = d
	}
	v, err := New(level, disks, DefaultStripeUnit)
	if err != nil {
		f.Fatal(err)
	}
	return v
}

// FuzzExplode drives Volume.Explode (and therefore mapStriped/mapConcat/
// mapMirrored) through offset/size edge cases: zero-length and negative
// requests, stripe-boundary straddles, the last stripe, and past-capacity
// ranges must all error cleanly or fan out consistently — never panic.
func FuzzExplode(f *testing.F) {
	vols := []*Volume{
		fuzzVolume(f, JBOD, 2),
		fuzzVolume(f, RAID0, 4),
		fuzzVolume(f, RAID5, 4),
		fuzzVolume(f, RAID1, 2),
	}
	cap0 := vols[1].Capacity()
	unit := vols[1].stripeUnit

	// Seed corpus: the edge cases the checklist names.
	f.Add(int64(0), 0, false)                // zero-length
	f.Add(int64(0), 1, false)                // first sector
	f.Add(int64(-1), 8, false)               // negative offset
	f.Add(unit-1, 2, false)                  // stripe-boundary straddle
	f.Add(unit-1, 2, true)                   // straddling RMW write
	f.Add(cap0-int64(unit), int(unit), true) // last stripe
	f.Add(cap0-1, 1, false)                  // last sector
	f.Add(cap0-1, 2, false)                  // runs past capacity
	f.Add(cap0, 1, false)                    // starts past capacity
	f.Add(int64(0), 1<<20, false)            // huge
	f.Add(unit*3+unit/2, int(unit)*5, true)  // misaligned multi-stripe write

	f.Fuzz(func(t *testing.T, block int64, sectors int, write bool) {
		r := Request{ID: 1, Block: block, Sectors: sectors, Write: write}
		for _, v := range vols {
			subs, err := v.Explode(r)
			inRange := sectors > 0 && block >= 0 && block+int64(sectors) <= v.Capacity()
			// Guard the overflow case: block+sectors can wrap for huge
			// inputs; the volume must reject those too.
			if block > 0 && block+int64(sectors) < block {
				inRange = false
			}
			if !inRange {
				if err == nil {
					t.Fatalf("%v: out-of-range request [%d,+%d) accepted", v.Level(), block, sectors)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%v: in-range request [%d,+%d) rejected: %v", v.Level(), block, sectors, err)
			}
			if len(subs) == 0 {
				t.Fatalf("%v: in-range request fanned out to nothing", v.Level())
			}
			var dataSectors int64
			for _, sr := range subs {
				if sr.Disk < 0 || sr.Disk >= len(v.Disks()) {
					t.Fatalf("%v: sub-request on nonexistent disk %d", v.Level(), sr.Disk)
				}
				if sr.Request.Sectors <= 0 {
					t.Fatalf("%v: empty sub-request %+v", v.Level(), sr.Request)
				}
				if sr.Request.LBN < 0 || sr.Request.LBN+int64(sr.Request.Sectors) > v.perDisk {
					t.Fatalf("%v: sub-request [%d,+%d) outside member [0,%d)",
						v.Level(), sr.Request.LBN, sr.Request.Sectors, v.perDisk)
				}
				if sr.Request.Write == write || (v.Level() == RAID5 && write) {
					// Count data-carrying subs: for reads every sub is
					// data; for writes, the write subs (RAID-5 RMW adds a
					// parity write per unit, excluded below).
					dataSectors += int64(sr.Request.Sectors)
				}
			}
			switch {
			case !write && v.Level() != RAID5 && v.Level() != RAID1:
				if dataSectors != int64(sectors) {
					t.Fatalf("%v: read covers %d of %d sectors", v.Level(), dataSectors, sectors)
				}
			case !write && v.Level() == RAID1:
				if dataSectors != int64(sectors) {
					t.Fatalf("RAID-1 read covers %d of %d sectors", dataSectors, sectors)
				}
			case write && v.Level() == RAID1:
				if dataSectors != 2*int64(sectors) {
					t.Fatalf("RAID-1 write mirrors %d sectors, want %d", dataSectors, 2*int64(sectors))
				}
			}
		}
	})
}
