package raid

import (
	"strconv"

	"repro/internal/disksim"
	"repro/internal/obs"
	"repro/internal/stats"
)

// instruments is the volume layer's metric handle set. The slowest slice
// has one counter per member disk: the slowest-disk breakdown says which
// member gates the stripe (the paper's DTM argument is exactly that the
// hottest/busiest member sets the service time).
type instruments struct {
	requests    *obs.Counter
	subRequests *obs.Counter
	cacheHits   *obs.Counter
	response    *obs.Histogram
	slowest     []*obs.Counter

	// Recovery-path series (only advanced by a RecoverySession).
	degraded        *obs.Counter
	reconstructions *obs.Counter
	exposedWrites   *obs.Counter
	lostRequests    *obs.Counter
	rebuilds        *obs.Counter
}

// Instrument registers the volume's metric set on reg under the given
// alternating key/value labels and attaches one shared disk-level set (plus
// per-zone service histograms) to every member disk. A nil registry
// detaches everything — the zero-cost default.
func (v *Volume) Instrument(reg *obs.Registry, labels ...string) {
	if reg == nil {
		v.ins = nil
		for _, d := range v.disks {
			d.SetInstruments(nil)
		}
		return
	}
	ins := &instruments{
		requests:        reg.Counter("raid_requests_total", labels...),
		subRequests:     reg.Counter("raid_sub_requests_total", labels...),
		cacheHits:       reg.Counter("raid_cache_hits_total", labels...),
		response:        reg.Histogram("raid_response_ms", stats.Figure4Buckets, labels...),
		degraded:        reg.Counter("raid_degraded_requests_total", labels...),
		reconstructions: reg.Counter("raid_reconstructions_total", labels...),
		exposedWrites:   reg.Counter("raid_exposed_writes_total", labels...),
		lostRequests:    reg.Counter("raid_lost_requests_total", labels...),
		rebuilds:        reg.Counter("raid_rebuilds_total", labels...),
	}
	for i := range v.disks {
		dl := append(append([]string(nil), labels...), "disk", strconv.Itoa(i))
		ins.slowest = append(ins.slowest, reg.Counter("raid_slowest_disk_total", dl...))
	}
	v.ins = ins

	zones := len(v.disks[0].Layout().Zones)
	shared := disksim.NewInstruments(reg, zones, labels...)
	for _, d := range v.disks {
		d.SetInstruments(shared)
	}
}

// record folds one volume completion into the metric set (nil-safe).
func (ins *instruments) record(c *Completion) {
	if ins == nil {
		return
	}
	ins.requests.Inc()
	ins.subRequests.Add(int64(c.SubRequests))
	ins.cacheHits.Add(int64(c.CacheHits))
	ins.response.ObserveDuration(c.Response())
	if c.SlowestDisk >= 0 && c.SlowestDisk < len(ins.slowest) {
		ins.slowest[c.SlowestDisk].Inc()
	}
	if c.Degraded {
		ins.degraded.Inc()
	}
}

// recordSpan emits the volume-request lifetime span when a tracer is
// attached: arrival to completion, annotated with the gating member and
// degraded-mode service.
func recordSpan(t *obs.Tracer, c *Completion) {
	if t == nil {
		return
	}
	attrs := []obs.Attr{
		obs.AttrInt("req", c.Request.ID),
		obs.AttrInt("subs", int64(c.SubRequests)),
		obs.AttrInt("slowest_disk", int64(c.SlowestDisk)),
		obs.AttrDur("queue_ms", c.Parts.Queue),
		obs.AttrDur("seek_ms", c.Parts.Seek),
		obs.AttrDur("rotate_ms", c.Parts.Rotation),
		obs.AttrDur("transfer_ms", c.Parts.Transfer),
	}
	if c.CacheHits > 0 {
		attrs = append(attrs, obs.AttrInt("cache_hits", int64(c.CacheHits)))
	}
	if c.Degraded {
		attrs = append(attrs, obs.AttrBool("degraded", true))
	}
	t.Record(obs.Span{
		Name:  "raid.request",
		Start: c.Request.Arrival,
		End:   c.Finish,
		Attrs: attrs,
	})
}
