package raid

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/capacity"
	"repro/internal/disksim"
	"repro/internal/geometry"
	"repro/internal/units"
)

func testLayout(t *testing.T) *capacity.Layout {
	t.Helper()
	l, err := capacity.New(capacity.Config{
		Geometry: geometry.Drive{PlatterDiameter: 3.3, Platters: 1, FormFactor: geometry.FormFactor35},
		BPI:      456000,
		TPI:      45000,
		Zones:    30,
	})
	if err != nil {
		t.Fatalf("layout: %v", err)
	}
	return l
}

func testDisks(t *testing.T, n int, rpm units.RPM) []*disksim.Disk {
	t.Helper()
	layout := testLayout(t)
	out := make([]*disksim.Disk, n)
	for i := range out {
		d, err := disksim.New(disksim.Config{Layout: layout, RPM: rpm})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = d
	}
	return out
}

func testVolume(t *testing.T, level Level, n int) *Volume {
	t.Helper()
	v, err := New(level, testDisks(t, n, 10000), DefaultStripeUnit)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return v
}

func TestNewErrors(t *testing.T) {
	if _, err := New(RAID0, nil, 16); err == nil {
		t.Error("empty disk set should be rejected")
	}
	if _, err := New(RAID5, testDisks(t, 2, 10000), 16); err == nil {
		t.Error("2-disk RAID-5 should be rejected")
	}
	if _, err := New(RAID0, testDisks(t, 2, 10000), -1); err == nil {
		t.Error("negative stripe unit should be rejected")
	}
}

func TestCapacity(t *testing.T) {
	per := testLayout(t).TotalSectors()
	if got := testVolume(t, JBOD, 4).Capacity(); got != 4*per {
		t.Errorf("JBOD capacity = %d, want %d", got, 4*per)
	}
	if got := testVolume(t, RAID0, 4).Capacity(); got != 4*per {
		t.Errorf("RAID0 capacity = %d, want %d", got, 4*per)
	}
	if got := testVolume(t, RAID5, 4).Capacity(); got != 3*per {
		t.Errorf("RAID5 capacity = %d, want %d (one disk of parity)", got, 3*per)
	}
}

func TestLevelString(t *testing.T) {
	if JBOD.String() != "JBOD" || RAID0.String() != "RAID-0" || RAID5.String() != "RAID-5" {
		t.Error("level names wrong")
	}
	if Level(7).String() == "" {
		t.Error("unknown level should print")
	}
}

func TestRAID0MappingSpreadsDisks(t *testing.T) {
	v := testVolume(t, RAID0, 4)
	// Four consecutive stripe units land on four different disks.
	seen := make(map[int]bool)
	for u := int64(0); u < 4; u++ {
		subs, err := v.mapRequest(Request{ID: u, Block: u * v.stripeUnit, Sectors: 16})
		if err != nil {
			t.Fatal(err)
		}
		if len(subs) != 1 {
			t.Fatalf("aligned unit fanned out to %d subs", len(subs))
		}
		seen[subs[0].disk] = true
	}
	if len(seen) != 4 {
		t.Errorf("4 consecutive units touched %d disks, want 4", len(seen))
	}
}

func TestRAID5ParityRotates(t *testing.T) {
	v := testVolume(t, RAID5, 4)
	parities := make(map[int]bool)
	dataPerRow := int64(len(v.disks) - 1)
	for row := int64(0); row < 4; row++ {
		_, _, p := v.stripeLoc(row*dataPerRow, true)
		parities[p] = true
	}
	if len(parities) != 4 {
		t.Errorf("parity used %d distinct disks over 4 rows, want 4", len(parities))
	}
}

func TestRAID5ParityNeverHoldsData(t *testing.T) {
	v := testVolume(t, RAID5, 5)
	f := func(raw uint32) bool {
		unit := int64(raw % 100000)
		d, _, p := v.stripeLoc(unit, true)
		return d != p && d >= 0 && d < 5 && p >= 0 && p < 5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRAID5WriteFanout(t *testing.T) {
	v := testVolume(t, RAID5, 4)
	// A single-unit write costs 4 I/Os (read+write on data and parity).
	subs, err := v.mapRequest(Request{ID: 1, Block: 0, Sectors: 16, Write: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 4 {
		t.Fatalf("RMW fanned out to %d I/Os, want 4", len(subs))
	}
	reads, writes := 0, 0
	for _, s := range subs {
		if s.req.Write {
			writes++
		} else {
			reads++
		}
	}
	if reads != 2 || writes != 2 {
		t.Errorf("RMW = %d reads, %d writes; want 2+2", reads, writes)
	}
	// A read costs 1.
	subs, err = v.mapRequest(Request{ID: 2, Block: 0, Sectors: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 {
		t.Errorf("read fanned out to %d I/Os, want 1", len(subs))
	}
}

func TestJBODSpansDiskBoundary(t *testing.T) {
	v := testVolume(t, JBOD, 2)
	per := v.perDisk
	subs, err := v.mapRequest(Request{ID: 1, Block: per - 4, Sectors: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("boundary request fanned out to %d subs, want 2", len(subs))
	}
	if subs[0].disk != 0 || subs[1].disk != 1 {
		t.Errorf("wrong disks: %d, %d", subs[0].disk, subs[1].disk)
	}
	if subs[0].req.Sectors != 4 || subs[1].req.Sectors != 4 {
		t.Errorf("wrong split: %d + %d", subs[0].req.Sectors, subs[1].req.Sectors)
	}
	if subs[1].req.LBN != 0 {
		t.Errorf("second chunk starts at %d, want 0", subs[1].req.LBN)
	}
}

func TestMapRequestBounds(t *testing.T) {
	v := testVolume(t, RAID5, 4)
	if _, err := v.mapRequest(Request{ID: 1, Block: -1, Sectors: 8}); err == nil {
		t.Error("negative block should be rejected")
	}
	if _, err := v.mapRequest(Request{ID: 1, Block: v.Capacity(), Sectors: 1}); err == nil {
		t.Error("out-of-range block should be rejected")
	}
	if _, err := v.mapRequest(Request{ID: 1, Block: 0, Sectors: 0}); err == nil {
		t.Error("empty request should be rejected")
	}
}

func TestSimulateJoinsCompletions(t *testing.T) {
	v := testVolume(t, RAID5, 4)
	reqs := []Request{
		{ID: 0, Arrival: 0, Block: 0, Sectors: 64, Write: false},
		{ID: 1, Arrival: time.Millisecond, Block: 1024, Sectors: 16, Write: true},
		{ID: 2, Arrival: 2 * time.Millisecond, Block: 4096, Sectors: 8},
	}
	comps, err := v.Simulate(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 3 {
		t.Fatalf("%d completions", len(comps))
	}
	for i, c := range comps {
		if c.Request.ID != int64(i) {
			t.Errorf("completions not sorted by arrival: %v", c.Request.ID)
		}
		if c.Finish <= c.Request.Arrival {
			t.Errorf("request %d finished before arriving", c.Request.ID)
		}
		if c.SubRequests < 1 {
			t.Errorf("request %d has no sub-requests", c.Request.ID)
		}
	}
	// The 64-sector read spans 4 stripe units -> 4 sub-requests.
	if comps[0].SubRequests != 4 {
		t.Errorf("striped read fanned to %d, want 4", comps[0].SubRequests)
	}
	// The single-unit write pays RMW.
	if comps[1].SubRequests != 4 {
		t.Errorf("RMW write fanned to %d, want 4", comps[1].SubRequests)
	}
}

func TestWriteBack(t *testing.T) {
	v := testVolume(t, RAID5, 4)
	v.SetWriteBack(300 * time.Microsecond)
	comps, err := v.Simulate([]Request{
		{ID: 0, Arrival: 0, Block: 0, Sectors: 16, Write: true},
		{ID: 1, Arrival: 0, Block: 4096, Sectors: 16, Write: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	var w, r Completion
	for _, c := range comps {
		if c.Request.Write {
			w = c
		} else {
			r = c
		}
	}
	if w.Response() != 300*time.Microsecond {
		t.Errorf("write-back write took %v, want 300µs", w.Response())
	}
	if r.Response() <= 300*time.Microsecond {
		t.Error("reads must still pay mechanical time under write-back")
	}
}

func TestRAID5FasterRPMFasterVolume(t *testing.T) {
	mk := func(rpm units.RPM) time.Duration {
		layout := testLayout(t)
		disks := make([]*disksim.Disk, 4)
		for i := range disks {
			d, err := disksim.New(disksim.Config{Layout: layout, RPM: rpm})
			if err != nil {
				t.Fatal(err)
			}
			disks[i] = d
		}
		v, err := New(RAID5, disks, 16)
		if err != nil {
			t.Fatal(err)
		}
		reqs := make([]Request, 100)
		state := uint64(99)
		for i := range reqs {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			reqs[i] = Request{
				ID:      int64(i),
				Arrival: time.Duration(i) * 4 * time.Millisecond,
				Block:   int64(state % uint64(v.Capacity()-64)),
				Sectors: 16,
				Write:   i%3 == 0,
			}
		}
		comps, err := v.Simulate(reqs)
		if err != nil {
			t.Fatal(err)
		}
		var sum time.Duration
		for _, c := range comps {
			sum += c.Response()
		}
		return sum
	}
	if fast, slow := mk(20000), mk(10000); fast >= slow {
		t.Errorf("RAID-5 volume not faster at 20k RPM: %v vs %v", fast, slow)
	}
}

func TestMismatchedDisksRejected(t *testing.T) {
	layout := testLayout(t)
	other, err := capacity.New(capacity.Config{
		Geometry: geometry.Drive{PlatterDiameter: 3.3, Platters: 2, FormFactor: geometry.FormFactor35},
		BPI:      456000, TPI: 45000, Zones: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := disksim.New(disksim.Config{Layout: layout, RPM: 10000})
	d2, _ := disksim.New(disksim.Config{Layout: other, RPM: 10000})
	if _, err := New(RAID0, []*disksim.Disk{d1, d2}, 16); err == nil {
		t.Error("mixed-capacity volume should be rejected")
	}
}

func TestRAID1Capacity(t *testing.T) {
	v := testVolume(t, RAID1, 2)
	if v.Capacity() != testLayout(t).TotalSectors() {
		t.Error("RAID-1 capacity should equal one member")
	}
	if RAID1.String() != "RAID-1" {
		t.Error("level name wrong")
	}
}

func TestRAID1NeedsTwoDisks(t *testing.T) {
	if _, err := New(RAID1, testDisks(t, 3, 10000), 16); err == nil {
		t.Error("3-disk RAID-1 should be rejected")
	}
	if _, err := New(RAID1, testDisks(t, 1, 10000), 16); err == nil {
		t.Error("1-disk RAID-1 should be rejected")
	}
}

func TestRAID1WritesMirrorReadsAlternate(t *testing.T) {
	v := testVolume(t, RAID1, 2)
	subs, err := v.mapRequest(Request{ID: 1, Block: 100, Sectors: 8, Write: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 || subs[0].disk == subs[1].disk {
		t.Fatalf("write fanned to %d subs", len(subs))
	}
	for _, s := range subs {
		if s.req.LBN != 100 || !s.req.Write {
			t.Errorf("bad mirrored write %+v", s.req)
		}
	}
	// Reads alternate members. (mapRequest's result is only valid until the
	// next mapRequest call — the fan-out buffer is reused — so the first
	// read's member is captured before mapping the second.)
	r1, _ := v.mapRequest(Request{ID: 2, Block: 0, Sectors: 8})
	if len(r1) != 1 {
		t.Fatal("reads must hit one member")
	}
	first := r1[0].disk
	r2, _ := v.mapRequest(Request{ID: 3, Block: 0, Sectors: 8})
	if len(r2) != 1 {
		t.Fatal("reads must hit one member")
	}
	if first == r2[0].disk {
		t.Error("consecutive reads should alternate members")
	}
}

func TestRAID1Simulate(t *testing.T) {
	v := testVolume(t, RAID1, 2)
	reqs := []Request{
		{ID: 0, Arrival: 0, Block: 0, Sectors: 8, Write: true},
		{ID: 1, Arrival: time.Millisecond, Block: 512, Sectors: 8},
		{ID: 2, Arrival: 2 * time.Millisecond, Block: 1024, Sectors: 8},
	}
	comps, err := v.Simulate(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 3 {
		t.Fatalf("%d completions", len(comps))
	}
	if comps[0].SubRequests != 2 {
		t.Errorf("mirrored write fanned to %d", comps[0].SubRequests)
	}
	if comps[1].SubRequests != 1 || comps[2].SubRequests != 1 {
		t.Error("reads should be single I/Os")
	}
}
