package raid

import (
	"errors"
	"testing"
	"time"

	"repro/internal/capacity"
	"repro/internal/disksim"
	"repro/internal/geometry"
	"repro/internal/reliability"
)

func testRequests(v *Volume, n int, everyMs int) []Request {
	reqs := make([]Request, n)
	state := uint64(7)
	for i := range reqs {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		reqs[i] = Request{
			ID:      int64(i),
			Arrival: time.Duration(i*everyMs) * time.Millisecond,
			Block:   int64(state % uint64(v.Capacity()-64)),
			Sectors: 8,
			Write:   i%4 == 0,
		}
	}
	return reqs
}

func newSession(t *testing.T, v *Volume, spares int) *RecoverySession {
	t.Helper()
	var sp []*disksim.Disk
	layout := testLayout(t)
	for i := 0; i < spares; i++ {
		d, err := disksim.New(disksim.Config{Layout: layout, RPM: 10000})
		if err != nil {
			t.Fatal(err)
		}
		sp = append(sp, d)
	}
	s, err := NewRecoverySession(v, RecoveryConfig{Reliability: reliability.Default()}, sp...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMirrorFailoverServesEveryRequest(t *testing.T) {
	v := testVolume(t, RAID1, 2)
	s := newSession(t, v, 0)
	if err := s.FailDisk(0, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	reqs := testRequests(v, 200, 4)
	rep, err := s.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Completions) != len(reqs) {
		t.Fatalf("served %d of %d requests", len(rep.Completions), len(reqs))
	}
	degraded := 0
	for _, c := range rep.Completions {
		if c.Finish <= c.Request.Arrival {
			t.Fatalf("request %d finished before arriving", c.Request.ID)
		}
		if c.Degraded {
			degraded++
		}
	}
	if degraded == 0 {
		t.Error("no request saw degraded mode despite the failed member")
	}
	if rep.ExposedWrites == 0 {
		t.Error("degraded mirror writes must be logged as exposed")
	}
}

func TestRAID5DegradedReadReconstructs(t *testing.T) {
	v := testVolume(t, RAID5, 4)
	s := newSession(t, v, 0)
	if err := s.FailDisk(1, 0); err != nil {
		t.Fatal(err)
	}
	// Find a unit whose data lives on the failed disk.
	var blk int64 = -1
	for u := int64(0); u < 16; u++ {
		if d, _, _ := v.stripeLoc(u, true); d == 1 {
			blk = u * v.stripeUnit
			break
		}
	}
	if blk < 0 {
		t.Fatal("no unit maps to disk 1 in the first 16")
	}
	c, err := s.Serve(Request{ID: 1, Block: blk, Sectors: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Degraded || c.Reconstructed != 8 {
		t.Errorf("degraded=%v reconstructed=%d, want true/8", c.Degraded, c.Reconstructed)
	}
	// Fan-out reads from all 3 survivors.
	if c.SubRequests != 3 {
		t.Errorf("reconstruction fanned to %d survivors, want 3", c.SubRequests)
	}
	// A read of a surviving unit stays a single I/O.
	var aliveBlk int64 = -1
	for u := int64(0); u < 16; u++ {
		if d, _, _ := v.stripeLoc(u, true); d != 1 {
			aliveBlk = u * v.stripeUnit
			break
		}
	}
	c2, err := s.Serve(Request{ID: 2, Arrival: c.Finish, Block: aliveBlk, Sectors: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c2.SubRequests != 1 || c2.Reconstructed != 0 {
		t.Errorf("surviving-unit read fanned to %d subs, %d reconstructed", c2.SubRequests, c2.Reconstructed)
	}
}

func TestRAID5DegradedWritesExposeParityLoss(t *testing.T) {
	v := testVolume(t, RAID5, 4)
	s := newSession(t, v, 0)
	if err := s.FailDisk(2, 0); err != nil {
		t.Fatal(err)
	}
	exposed := 0
	for u := int64(0); u < 12; u++ {
		c, err := s.Serve(Request{ID: u, Arrival: time.Duration(u) * 20 * time.Millisecond,
			Block: u * v.stripeUnit, Sectors: 8, Write: true})
		if err != nil {
			t.Fatal(err)
		}
		if c.Exposed {
			exposed++
		}
	}
	// Over 12 consecutive units on a 4-disk array, some rows have their
	// data or parity on the failed member.
	if exposed == 0 {
		t.Error("no degraded write was logged as redundancy-exposed")
	}
}

func TestMidRunFailureFailsOver(t *testing.T) {
	layout := testLayout(t)
	disks := make([]*disksim.Disk, 2)
	for i := range disks {
		cfg := disksim.Config{Layout: layout, RPM: 10000}
		if i == 0 {
			cfg.Faults = disksim.FailAfter{T: 100 * time.Millisecond}
		}
		d, err := disksim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		disks[i] = d
	}
	v, err := New(RAID1, disks, DefaultStripeUnit)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewRecoverySession(v, RecoveryConfig{Reliability: reliability.Default()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(testRequests(v, 300, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Completions) != 300 {
		t.Fatalf("served %d of 300 through the failure", len(rep.Completions))
	}
	foundFail := false
	for _, e := range rep.Events {
		if e.Kind == EventDiskFailed && e.Disk == 0 {
			foundFail = true
		}
	}
	if !foundFail {
		t.Errorf("no disk-failed event recorded: %v", rep.Events)
	}
}

func TestRebuildConvergesAndClearsDegradedMode(t *testing.T) {
	v := testVolume(t, RAID1, 2)
	s := newSession(t, v, 1)
	// A fast rebuild so it completes inside the trace.
	s.cfg.RebuildMBPerSec = 100000
	if err := s.FailDisk(0, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(testRequests(v, 500, 10))
	if err != nil {
		t.Fatal(err)
	}
	var started, completed bool
	var doneAt time.Duration
	for _, e := range rep.Events {
		switch e.Kind {
		case EventRebuildStarted:
			started = true
		case EventRebuildCompleted:
			completed = true
			doneAt = e.Time
		}
	}
	if !started || !completed {
		t.Fatalf("rebuild did not converge: %v", rep.Events)
	}
	if rep.RebuildWindow <= 0 || rep.RebuildRisk <= 0 || rep.RebuildRisk >= 1 {
		t.Errorf("window %v risk %v implausible", rep.RebuildWindow, rep.RebuildRisk)
	}
	// Requests after the rebuild completion are no longer degraded.
	for _, c := range rep.Completions {
		if c.Request.Arrival > doneAt && c.Degraded {
			t.Fatalf("request %d at %v still degraded after rebuild at %v",
				c.Request.ID, c.Request.Arrival, doneAt)
		}
	}
}

func TestSecondFailureIsDataLoss(t *testing.T) {
	v := testVolume(t, RAID1, 2)
	s := newSession(t, v, 0)
	if err := s.FailDisk(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(1, time.Second); !errors.Is(err, ErrDataLoss) {
		t.Errorf("double failure returned %v, want ErrDataLoss", err)
	}
}

func TestRAID0FailureLosesData(t *testing.T) {
	v := testVolume(t, RAID0, 4)
	s := newSession(t, v, 0)
	if err := s.FailDisk(2, 0); err != nil {
		t.Fatal(err)
	}
	sawLoss := false
	for u := int64(0); u < 8; u++ {
		_, err := s.Serve(Request{ID: u, Block: u * v.stripeUnit, Sectors: 8})
		if errors.Is(err, ErrDataLoss) {
			sawLoss = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !sawLoss {
		t.Error("striping over a failed member must surface data loss")
	}
}

func TestRunCountsLostRequestsOnRAID0(t *testing.T) {
	v := testVolume(t, RAID0, 4)
	s := newSession(t, v, 0)
	if err := s.FailDisk(2, 0); err != nil {
		t.Fatal(err)
	}
	reqs := testRequests(v, 100, 5)
	rep, err := s.Run(reqs)
	if err != nil {
		t.Fatalf("Run should survive data-loss requests, got %v", err)
	}
	if rep.LostRequests == 0 {
		t.Error("no request counted as lost over a failed RAID-0 member")
	}
	if rep.LostRequests+len(rep.Completions) != len(reqs) {
		t.Errorf("%d lost + %d served != %d submitted",
			rep.LostRequests, len(rep.Completions), len(reqs))
	}
}

func TestRecoverySessionMatchesSimulateWhenHealthy(t *testing.T) {
	// With no failures, the per-request session must service the same
	// requests (timing may differ slightly from the batched scheduler, but
	// every request completes and fans out identically).
	v1 := testVolume(t, RAID5, 4)
	v2 := testVolume(t, RAID5, 4)
	reqs := testRequests(v1, 100, 5)
	batch, err := v1.Simulate(reqs)
	if err != nil {
		t.Fatal(err)
	}
	s := newSession(t, v2, 0)
	rep, err := s.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(rep.Completions) {
		t.Fatalf("batched %d vs session %d completions", len(batch), len(rep.Completions))
	}
	for i := range batch {
		if batch[i].SubRequests != rep.Completions[i].SubRequests {
			t.Errorf("request %d fan-out differs: %d vs %d",
				i, batch[i].SubRequests, rep.Completions[i].SubRequests)
		}
	}
	if rep.Degraded != 0 {
		t.Errorf("healthy run reported %d degraded requests", rep.Degraded)
	}
}

func TestMTTDLAndRebuildRisk(t *testing.T) {
	m := reliability.Default()
	coolRisk := RebuildRisk(m, reliability.ReferenceTemp, 3, 10*time.Hour)
	hotRisk := RebuildRisk(m, reliability.ReferenceTemp+15, 3, 10*time.Hour)
	if coolRisk <= 0 || hotRisk <= coolRisk {
		t.Errorf("risk must grow with temperature: %v vs %v", coolRisk, hotRisk)
	}
	// The doubling law: +15 C doubles the hazard, so the (small) risk
	// roughly doubles too.
	if ratio := hotRisk / coolRisk; ratio < 1.9 || ratio > 2.1 {
		t.Errorf("+15C risk ratio %.3f, want ~2", ratio)
	}
	coolM := MTTDL(m, reliability.ReferenceTemp, 4, 10*time.Hour)
	hotM := MTTDL(m, reliability.ReferenceTemp+15, 4, 10*time.Hour)
	if coolM <= hotM*3 || hotM <= 0 {
		t.Errorf("MTTDL should fall ~4x with +15C: %v vs %v", coolM, hotM)
	}
}

func TestMismatchedSpareRejected(t *testing.T) {
	v := testVolume(t, RAID1, 2)
	other, err := disksim.New(disksim.Config{Layout: otherLayout(t), RPM: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRecoverySession(v, RecoveryConfig{}, other); err == nil {
		t.Error("capacity-mismatched spare should be rejected")
	}
}

func otherLayout(t *testing.T) *capacity.Layout {
	t.Helper()
	l, err := capacity.New(capacity.Config{
		Geometry: geometry.Drive{PlatterDiameter: 3.3, Platters: 2, FormFactor: geometry.FormFactor35},
		BPI:      456000, TPI: 45000, Zones: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}
