// Package raid stripes a logical volume across several simulated disks:
// RAID-0, RAID-5 (left-symmetric rotating parity with read-modify-write), and
// JBOD concatenation for the multi-disk non-striped workloads in the paper's
// Figure 4 study. The paper's RAID systems use RAID-5 with a stripe unit of
// 16 512-byte blocks.
package raid

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/disksim"
)

// Level selects the volume organisation.
type Level int

// Supported organisations.
const (
	// JBOD concatenates the disks' address spaces.
	JBOD Level = iota
	// RAID0 stripes without redundancy.
	RAID0
	// RAID5 stripes with left-symmetric rotating parity; small writes pay
	// the read-modify-write penalty on the data and parity disks.
	RAID5
	// RAID1 mirrors two disks: writes go to both, reads alternate between
	// them. The paper's section 5.4 proposes steering mirrored reads for
	// thermal cool-down; the DTM package implements that policy on top of
	// this level.
	RAID1
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case JBOD:
		return "JBOD"
	case RAID0:
		return "RAID-0"
	case RAID5:
		return "RAID-5"
	case RAID1:
		return "RAID-1"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// DefaultStripeUnit is the paper's stripe size: 16 512-byte blocks.
const DefaultStripeUnit = 16

// Request is one volume-level I/O.
type Request struct {
	ID      int64
	Arrival time.Duration
	Block   int64 // volume LBN
	Sectors int
	Write   bool
}

// Completion is the volume-level outcome: the slowest constituent disk
// request determines the finish time.
//
// Completion deliberately shares its latency vocabulary with disksim: the
// Parts field is disksim.Breakdown itself (not a parallel struct), and
// Response is defined by the same Finish-minus-Arrival rule, so the two
// layers cannot drift apart. integration's equality tests pin this.
type Completion struct {
	Request Request
	Finish  time.Duration
	// SubRequests is how many disk I/Os the request fanned out to.
	SubRequests int
	// CacheHits counts constituent disk requests served from cache.
	CacheHits int
	// Parts is the latency breakdown of the finish-determining (slowest)
	// constituent disk request; SlowestDisk is its member index. Ties go
	// to the lowest member index. Under write-back, Parts still describes
	// the slowest destage I/O even though Finish is the cache ack.
	Parts       disksim.Breakdown
	SlowestDisk int
	// Degraded marks a request served while a member was failed.
	Degraded bool
	// Reconstructed counts sectors rebuilt on the fly from the survivors
	// (RAID-5 degraded reads; zero elsewhere).
	Reconstructed int
	// Exposed marks a write committed without full redundancy (parity or
	// mirror copy lost until the rebuild completes).
	Exposed bool
}

// Response returns the end-to-end volume response time.
func (c Completion) Response() time.Duration { return c.Finish - c.Request.Arrival }

// Volume is a set of disks under one organisation. It is not safe for
// concurrent use.
type Volume struct {
	disks      []*disksim.Disk
	ins        *instruments // optional metric handles; nil = free
	level      Level
	stripeUnit int64
	perDisk    int64 // addressable sectors per member disk

	writeBack time.Duration
	readRR    int // RAID-1 read round-robin cursor

	// subScratch backs mapRequest's result slice, reused from request to
	// request (the Volume is documented not safe for concurrent use). The
	// returned fan-out is valid only until the next mapRequest call; every
	// caller either finishes with it before re-mapping (Serve,
	// SimulateBatch's per-disk copy, the degraded retry loop) or copies out
	// (Explode). After the first few requests the buffer has grown to the
	// workload's widest fan-out and mapping allocates nothing.
	subScratch []sub

	// Degraded-mode state (see recovery.go).
	failed   []bool
	failedAt []time.Duration
}

// SetWriteBack gives the array controller a battery-backed write cache:
// host writes complete after the given latency while the destage I/Os still
// occupy the member disks. Zero restores write-through. TPC-C audited
// configurations of the era universally ran such controllers.
func (v *Volume) SetWriteBack(latency time.Duration) { v.writeBack = latency }

// New assembles a volume. All member disks must have the same capacity.
func New(level Level, disks []*disksim.Disk, stripeUnit int) (*Volume, error) {
	if len(disks) == 0 {
		return nil, fmt.Errorf("raid: no disks")
	}
	if level == RAID5 && len(disks) < 3 {
		return nil, fmt.Errorf("raid: RAID-5 needs >= 3 disks, have %d", len(disks))
	}
	if level == RAID1 && len(disks) != 2 {
		return nil, fmt.Errorf("raid: RAID-1 needs exactly 2 disks, have %d", len(disks))
	}
	if stripeUnit == 0 {
		stripeUnit = DefaultStripeUnit
	}
	if stripeUnit < 0 {
		return nil, fmt.Errorf("raid: negative stripe unit")
	}
	per := disks[0].Layout().TotalSectors()
	for i, d := range disks {
		if d.Layout().TotalSectors() != per {
			return nil, fmt.Errorf("raid: disk %d capacity %d differs from disk 0's %d",
				i, d.Layout().TotalSectors(), per)
		}
	}
	// Copy the slice: the recovery engine swaps spares into members in
	// place, which must not alias the caller's slice.
	return &Volume{
		disks:      append([]*disksim.Disk(nil), disks...),
		level:      level,
		stripeUnit: int64(stripeUnit),
		perDisk:    per,
		failed:     make([]bool, len(disks)),
		failedAt:   make([]time.Duration, len(disks)),
	}, nil
}

// Disks returns the member disks.
func (v *Volume) Disks() []*disksim.Disk { return v.disks }

// Level returns the volume organisation.
func (v *Volume) Level() Level { return v.level }

// Capacity returns the volume's addressable sectors (parity excluded).
func (v *Volume) Capacity() int64 {
	n := int64(len(v.disks))
	switch v.level {
	case RAID5:
		return (n - 1) * v.perDisk
	case RAID1:
		return v.perDisk
	default:
		return n * v.perDisk
	}
}

// sub is one disk-level constituent of a volume request.
type sub struct {
	disk int
	req  disksim.Request
}

// SubRequest is the exported view of a volume request's disk-level
// constituent, for analysis tools.
type SubRequest struct {
	Disk    int
	Request disksim.Request
}

// Explode returns the disk-level I/Os a volume request fans out to, without
// simulating them.
func (v *Volume) Explode(r Request) ([]SubRequest, error) {
	subs, err := v.mapRequest(r)
	if err != nil {
		return nil, err
	}
	out := make([]SubRequest, len(subs))
	for i, s := range subs {
		out[i] = SubRequest{Disk: s.disk, Request: s.req}
	}
	return out, nil
}

// mapRequest fans a volume request out to disk requests. RAID-5 writes add
// the read-modify-write I/Os: old-data and old-parity reads precede the data
// and parity writes (the same-disk FCFS queue serialises read before write;
// the cross-disk read-before-write dependency is approximated away, which
// errs slightly optimistic on parity-write start times).
func (v *Volume) mapRequest(r Request) ([]sub, error) {
	if r.Sectors <= 0 {
		return nil, fmt.Errorf("raid: request %d has %d sectors", r.ID, r.Sectors)
	}
	// Written subtraction-side to stay overflow-safe for huge Block values.
	if r.Block < 0 || int64(r.Sectors) > v.Capacity()-r.Block {
		return nil, fmt.Errorf("raid: request %d range [%d,%d) outside volume [0,%d)",
			r.ID, r.Block, r.Block+int64(r.Sectors), v.Capacity())
	}
	switch v.level {
	case JBOD:
		return v.mapConcat(r), nil
	case RAID0:
		return v.mapStriped(r, false), nil
	case RAID5:
		return v.mapStriped(r, true), nil
	case RAID1:
		return v.mapMirrored(r), nil
	default:
		return nil, fmt.Errorf("raid: unknown level %v", v.level)
	}
}

// mapMirrored fans RAID-1 requests: writes to both members, reads to the
// alternating member (round-robin read balancing).
func (v *Volume) mapMirrored(r Request) []sub {
	req := disksim.Request{
		ID: r.ID, Arrival: r.Arrival, LBN: r.Block, Sectors: r.Sectors, Write: r.Write,
	}
	subs := v.subScratch[:0]
	if r.Write {
		subs = append(subs, sub{0, req}, sub{1, req})
	} else {
		v.readRR++
		subs = append(subs, sub{v.readRR % 2, req})
	}
	v.subScratch = subs
	return subs
}

func (v *Volume) mapConcat(r Request) []sub {
	subs := v.subScratch[:0]
	block := r.Block
	remaining := int64(r.Sectors)
	for remaining > 0 {
		disk := int(block / v.perDisk)
		off := block % v.perDisk
		n := v.perDisk - off
		if n > remaining {
			n = remaining
		}
		subs = append(subs, sub{disk, disksim.Request{
			ID: r.ID, Arrival: r.Arrival, LBN: off, Sectors: int(n), Write: r.Write,
		}})
		block += n
		remaining -= n
	}
	v.subScratch = subs
	return subs
}

// stripeLoc maps a volume stripe-unit index to its (disk, disk-LBN-base) and,
// for RAID-5, the parity disk of its row.
func (v *Volume) stripeLoc(unit int64, raid5 bool) (dataDisk int, diskBase int64, parityDisk int) {
	n := int64(len(v.disks))
	if !raid5 {
		return int(unit % n), (unit / n) * v.stripeUnit, -1
	}
	dataPerRow := n - 1
	row := unit / dataPerRow
	idx := unit % dataPerRow
	p := int(n - 1 - row%n) // left-symmetric parity rotation
	d := (p + 1 + int(idx)) % int(n)
	return d, row * v.stripeUnit, p
}

func (v *Volume) mapStriped(r Request, raid5 bool) []sub {
	subs := v.subScratch[:0]
	block := r.Block
	remaining := int64(r.Sectors)
	for remaining > 0 {
		unit := block / v.stripeUnit
		off := block % v.stripeUnit
		n := v.stripeUnit - off
		if n > remaining {
			n = remaining
		}
		disk, base, parity := v.stripeLoc(unit, raid5)
		lbn := base + off
		if !r.Write || !raid5 {
			subs = append(subs, sub{disk, disksim.Request{
				ID: r.ID, Arrival: r.Arrival, LBN: lbn, Sectors: int(n), Write: r.Write,
			}})
		} else {
			// Read-modify-write: old data, old parity, new data, new parity.
			subs = append(subs,
				sub{disk, disksim.Request{ID: r.ID, Arrival: r.Arrival, LBN: lbn, Sectors: int(n)}},
				sub{disk, disksim.Request{ID: r.ID, Arrival: r.Arrival, LBN: lbn, Sectors: int(n), Write: true}},
				sub{parity, disksim.Request{ID: r.ID, Arrival: r.Arrival, LBN: base + off, Sectors: int(n)}},
				sub{parity, disksim.Request{ID: r.ID, Arrival: r.Arrival, LBN: base + off, Sectors: int(n), Write: true}},
			)
		}
		block += n
		remaining -= n
	}
	v.subScratch = subs
	return subs
}

// SimulateBatch is the whole-trace path: every disk receives its complete
// sub-request queue up front, disk by disk. Simulate routes here for
// volumes whose members use a reordering scheduler (SSTF/SPTF/LOOK), which
// need the whole queue before they can pick; for FCFS volumes it is an
// independent implementation of the same semantics as the streaming path,
// kept (and pinned by the integration equivalence tests) as a cross-check
// of the event engine.
func (v *Volume) SimulateBatch(reqs []Request) ([]Completion, error) {
	perDisk := make([][]disksim.Request, len(v.disks))
	type parent struct {
		req     Request
		subs    int
		finish  time.Duration
		hits    int
		parts   disksim.Breakdown
		slowest int
	}
	parents := make(map[int64]*parent, len(reqs))
	for _, r := range reqs {
		subs, err := v.mapRequest(r)
		if err != nil {
			return nil, err
		}
		p := parents[r.ID]
		if p == nil {
			p = &parent{req: r, slowest: -1}
			parents[r.ID] = p
		}
		p.subs += len(subs)
		for _, s := range subs {
			perDisk[s.disk] = append(perDisk[s.disk], s.req)
		}
	}
	for i, d := range v.disks {
		comps, err := d.Simulate(perDisk[i])
		if err != nil {
			return nil, err
		}
		for _, c := range comps {
			p := parents[c.Request.ID]
			// Same slowest-sub rule as Volume.Serve: max finish, ties to
			// the lowest member index (this scan ascends members, so a
			// strictly-greater test keeps the first).
			if p.slowest < 0 || c.Finish > p.finish {
				p.finish = c.Finish
				p.parts = c.Parts
				p.slowest = i
			}
			if c.CacheHit {
				p.hits++
			}
		}
	}
	out := make([]Completion, 0, len(parents))
	for _, p := range parents {
		finish := p.finish
		if v.writeBack > 0 && p.req.Write {
			finish = p.req.Arrival + v.writeBack
		}
		out = append(out, Completion{
			Request:     p.req,
			Finish:      finish,
			SubRequests: p.subs,
			CacheHits:   p.hits,
			Parts:       p.parts,
			SlowestDisk: p.slowest,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Request.Arrival != out[j].Request.Arrival {
			return out[i].Request.Arrival < out[j].Request.Arrival
		}
		return out[i].Request.ID < out[j].Request.ID
	})
	return out, nil
}
