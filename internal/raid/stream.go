package raid

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/disksim"
	"repro/internal/sim"
)

// Serve services one volume request immediately: it fans the request out to
// its member-disk I/Os and services each in mapping order (each member's
// FCFS queue advances independently; the slowest constituent determines the
// finish). This is the event-loop unit of work — RunStream admits one Serve
// per arrival event.
func (v *Volume) Serve(r Request) (Completion, error) {
	subs, err := v.mapRequest(r)
	if err != nil {
		return Completion{}, err
	}
	c := Completion{Request: r, SubRequests: len(subs), SlowestDisk: -1}
	for _, sb := range subs {
		comp, err := v.disks[sb.disk].Serve(sb.req)
		if err != nil {
			return Completion{}, err
		}
		// Deterministic slowest-sub pick: max finish, ties to the lowest
		// member index (the order the batch join always scanned disks in).
		if c.SlowestDisk < 0 || comp.Finish > c.Finish ||
			(comp.Finish == c.Finish && sb.disk < c.SlowestDisk) {
			c.Finish = comp.Finish
			c.Parts = comp.Parts
			c.SlowestDisk = sb.disk
		}
		if comp.CacheHit {
			c.CacheHits++
		}
	}
	if v.writeBack > 0 && r.Write {
		c.Finish = r.Arrival + v.writeBack
	}
	v.ins.record(&c)
	return c, nil
}

// RunStream services volume requests pulled lazily from src, pushing each
// completion to sink as it happens: memory stays O(1) in trace length. The
// source must yield requests in nondecreasing arrival order (the trace
// generators do); an out-of-order arrival aborts the run.
//
// Requests are admitted as engine events at their arrival times, so sharing
// eng with other processes (DTM sample ticks, a second volume) interleaves
// them deterministically on one clock.
func (v *Volume) RunStream(eng *sim.Engine, src sim.Source[Request], sink sim.Sink[Completion]) error {
	if eng == nil {
		eng = sim.NewEngine()
	}
	s := &volumeStream{v: v, src: src, sink: sink, last: -1}
	s.fire = s.serve // one event closure for the whole run, not one per request
	s.admit(eng)
	if err := eng.Run(); err != nil {
		return err
	}
	return s.failed
}

// volumeStream is RunStream's admission state. One struct and one pre-bound
// event closure carry the entire run — only one admission is outstanding at
// a time (the next request is pulled after the previous one is served), so
// the single in-flight request slot suffices and the per-request path
// allocates nothing.
type volumeStream struct {
	v      *Volume
	src    sim.Source[Request]
	sink   sim.Sink[Completion]
	r      Request // the in-flight request, valid between admit and serve
	last   time.Duration
	failed error
	fire   func(*sim.Engine)
}

func (s *volumeStream) admit(e *sim.Engine) {
	r, ok := s.src.Next()
	if !ok {
		return
	}
	if r.Arrival < s.last {
		s.failed = fmt.Errorf("raid: stream out of order: request %d arrives at %v after %v",
			r.ID, r.Arrival, s.last)
		e.Fail(s.failed)
		return
	}
	s.last = r.Arrival
	s.r = r
	e.At(r.Arrival, s.fire)
}

func (s *volumeStream) serve(e *sim.Engine) {
	c, err := s.v.Serve(s.r)
	if err != nil {
		s.failed = err
		e.Fail(err)
		return
	}
	recordSpan(e.Tracer(), &c)
	s.sink.Push(c)
	s.admit(e)
}

// RunStreamCtx is RunStream with cooperative cancellation: the source is
// gated on ctx, so a cancelled context ends the replay at the next request
// admission, and the cancellation is reported as ctx.Err() rather than a
// silently-short run. The serving layer's job cancellation rides on this.
func (v *Volume) RunStreamCtx(ctx context.Context, eng *sim.Engine, src sim.Source[Request], sink sim.Sink[Completion]) error {
	if err := v.RunStream(eng, sim.Gate(ctx, src), sink); err != nil {
		return err
	}
	return ctx.Err()
}

// Simulate runs a volume-level workload and returns completions sorted by
// request arrival. It is the collect-into-slice wrapper over RunStream: the
// batch is stably sorted by arrival and replayed through the event engine.
// Member disks configured with a reordering scheduler (SSTF/SPTF/LOOK) fall
// back to the per-disk batch picker, which needs the whole sub-request
// queue at once.
func (v *Volume) Simulate(reqs []Request) ([]Completion, error) {
	for _, d := range v.disks {
		if d.Scheduler() != disksim.FCFS {
			return v.SimulateBatch(reqs)
		}
	}
	sorted := make([]Request, len(reqs))
	copy(sorted, reqs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Arrival < sorted[j].Arrival })

	out := make([]Completion, 0, len(sorted))
	err := v.RunStream(sim.NewEngine(), sim.FromSlice(sorted),
		sim.SinkFunc[Completion](func(c Completion) { out = append(out, c) }))
	if err != nil {
		return nil, err
	}
	// Historic output order: arrival, then ID.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Request.Arrival != out[j].Request.Arrival {
			return out[i].Request.Arrival < out[j].Request.Arrival
		}
		return out[i].Request.ID < out[j].Request.ID
	})
	return out, nil
}
