// Degraded-mode operation and rebuild: the recovery half of the fault
// model. A RecoverySession services volume requests one at a time, detects
// member failures raised by the disks' fault injectors (disksim.ErrDiskFailed),
// re-issues the failed request against the survivors — mirror reads fail
// over, RAID-5 reads reconstruct from the k-1 survivors with an XOR cost —
// and replays reconstruction onto a hot spare at a configurable rate. While
// a member is down, writes that cannot keep full redundancy are logged as
// parity-loss exposure, and the rebuild window is scored with the
// reliability model's MTTDL-style double-failure risk.
package raid

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/disksim"
	"repro/internal/reliability"
	"repro/internal/sim"
	"repro/internal/units"
)

// ErrDataLoss is returned when a request needs data that no surviving
// member (or spare) can supply: a second concurrent failure in a redundant
// volume, or any failure in RAID-0/JBOD.
var ErrDataLoss = errors.New("raid: data loss")

// Recovery defaults.
const (
	// DefaultRebuildMBPerSec is the spare-reconstruction rate: mid-2000s
	// array controllers rebuilt at a few tens of MB/s so foreground
	// service kept most of the bandwidth.
	DefaultRebuildMBPerSec = 40.0

	// DefaultXORPerSector prices the parity reconstruction compute per
	// 512-byte sector (~500 MB/s XOR engines of the era).
	DefaultXORPerSector = time.Microsecond
)

// FaultKind labels a recovery-timeline event.
type FaultKind int

// Event kinds.
const (
	EventDiskFailed FaultKind = iota
	EventRebuildStarted
	EventRebuildCompleted
	EventDataLoss
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case EventDiskFailed:
		return "disk-failed"
	case EventRebuildStarted:
		return "rebuild-started"
	case EventRebuildCompleted:
		return "rebuild-completed"
	case EventDataLoss:
		return "data-loss"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultEvent is one entry of the recovery timeline.
type FaultEvent struct {
	Time time.Duration
	Kind FaultKind
	Disk int
}

// RecoveryConfig tunes the session.
type RecoveryConfig struct {
	// Reliability scores the rebuild window's double-failure risk.
	Reliability reliability.Model

	// Temp is the steady member temperature used for that scoring
	// (0 = the model's reference temperature).
	Temp units.Celsius

	// RebuildMBPerSec is the spare-reconstruction rate
	// (0 = DefaultRebuildMBPerSec).
	RebuildMBPerSec float64

	// XORPerSector prices degraded-read reconstruction compute
	// (0 = DefaultXORPerSector).
	XORPerSector time.Duration
}

func (c RecoveryConfig) rebuildRate() float64 {
	if c.RebuildMBPerSec == 0 {
		return DefaultRebuildMBPerSec
	}
	return c.RebuildMBPerSec
}

func (c RecoveryConfig) xorPerSector() time.Duration {
	if c.XORPerSector == 0 {
		return DefaultXORPerSector
	}
	return c.XORPerSector
}

// rebuild tracks one in-flight spare reconstruction. The frontier advances
// linearly at the configured rate; units below it live on the spare already.
type rebuild struct {
	start time.Duration
	done  time.Duration
	rate  float64 // sectors per second
}

func (rb *rebuild) frontier(now time.Duration) int64 {
	if now <= rb.start {
		return 0
	}
	return int64((now - rb.start).Seconds() * rb.rate)
}

// RecoveryReport summarises a fault-aware run.
type RecoveryReport struct {
	Completions []Completion
	Events      []FaultEvent

	// Degraded counts requests served with a member down; Reconstructions
	// counts on-the-fly reconstruct reads issued to survivors;
	// ExposedWrites counts writes committed without full redundancy;
	// LostRequests counts requests Run dropped because their data was
	// unrecoverable (non-redundant levels after a member loss).
	Degraded        int
	LostRequests    int
	Reconstructions int
	ExposedWrites   int

	// RebuildWindow is the (last) rebuild's duration; RebuildRisk is the
	// probability another member fails inside it (MTTDL-style); MTTDL is
	// the steady-state mean time to data loss the window implies.
	RebuildWindow time.Duration
	RebuildRisk   float64
	MTTDL         time.Duration
}

// RecoverySession drives a volume through a workload with failure
// detection, degraded-mode mapping and spare rebuild. It owns the volume
// for the duration of the run (not safe for concurrent use).
type RecoverySession struct {
	v      *Volume
	cfg    RecoveryConfig
	spares []*disksim.Disk

	rebuilds map[int]*rebuild
	report   RecoveryReport
}

// NewRecoverySession wraps a volume. Spares, if any, are consumed in order
// as members fail; each must match the member capacity.
func NewRecoverySession(v *Volume, cfg RecoveryConfig, spares ...*disksim.Disk) (*RecoverySession, error) {
	for i, s := range spares {
		if s.Layout().TotalSectors() != v.perDisk {
			return nil, fmt.Errorf("raid: spare %d capacity %d differs from members' %d",
				i, s.Layout().TotalSectors(), v.perDisk)
		}
	}
	return &RecoverySession{
		v:        v,
		cfg:      cfg,
		spares:   spares,
		rebuilds: make(map[int]*rebuild),
	}, nil
}

// Events returns the timeline so far.
func (s *RecoverySession) Events() []FaultEvent { return s.report.Events }

// Report returns the session's report so far. Completions are populated
// only by Run; RunStream callers take completions from their sink and read
// the counters and timeline here.
func (s *RecoverySession) Report() RecoveryReport { return s.report }

// Volume returns the managed volume.
func (s *RecoverySession) Volume() *Volume { return s.v }

// FailDisk scripts a member failure at a given time (in addition to any the
// disks' own fault injectors raise).
func (s *RecoverySession) FailDisk(i int, at time.Duration) error {
	if i < 0 || i >= len(s.v.disks) {
		return fmt.Errorf("raid: no member %d", i)
	}
	if s.v.failed[i] {
		return fmt.Errorf("raid: member %d already failed", i)
	}
	return s.noteFailure(i, at)
}

// noteFailure records a member loss and, when a spare is available, starts
// the rebuild: the spare takes the slot, and the reconstruction frontier
// advances at the configured rate from the moment of failure.
func (s *RecoverySession) noteFailure(i int, at time.Duration) error {
	v := s.v
	s.report.Events = append(s.report.Events, FaultEvent{Time: at, Kind: EventDiskFailed, Disk: i})
	if v.level == RAID0 || v.level == JBOD {
		s.report.Events = append(s.report.Events, FaultEvent{Time: at, Kind: EventDataLoss, Disk: i})
		v.failed[i], v.failedAt[i] = true, at
		return nil // reads of the lost member will return ErrDataLoss
	}
	for j := range v.failed {
		if v.failed[j] && j != i {
			// Second concurrent failure: the redundancy is gone.
			s.report.Events = append(s.report.Events, FaultEvent{Time: at, Kind: EventDataLoss, Disk: i})
			v.failed[i], v.failedAt[i] = true, at
			return fmt.Errorf("%w: members %d and %d down together", ErrDataLoss, j, i)
		}
	}
	v.failed[i], v.failedAt[i] = true, at

	if len(s.spares) > 0 {
		spare := s.spares[0]
		s.spares = s.spares[1:]
		spare.Delay(at) // the spare was idle until it was pulled in
		v.disks[i] = spare
		rate := s.cfg.rebuildRate() * units.MB / float64(units.SectorBytes)
		window := time.Duration(float64(v.perDisk) / rate * float64(time.Second))
		rb := &rebuild{start: at, done: at + window, rate: rate}
		s.rebuilds[i] = rb
		s.report.Events = append(s.report.Events, FaultEvent{Time: at, Kind: EventRebuildStarted, Disk: i})
		s.report.RebuildWindow = window
		s.report.RebuildRisk = RebuildRisk(s.cfg.Reliability, s.temp(), len(v.disks)-1, window)
		s.report.MTTDL = MTTDL(s.cfg.Reliability, s.temp(), len(v.disks), window)
	}
	return nil
}

func (s *RecoverySession) temp() units.Celsius {
	if s.cfg.Temp == 0 {
		return reliability.ReferenceTemp
	}
	return s.cfg.Temp
}

// advanceRebuilds retires rebuilds whose frontier has covered the member.
func (s *RecoverySession) advanceRebuilds(now time.Duration) {
	for i, rb := range s.rebuilds {
		if now >= rb.done {
			s.v.failed[i] = false
			delete(s.rebuilds, i)
			s.report.Events = append(s.report.Events,
				FaultEvent{Time: rb.done, Kind: EventRebuildCompleted, Disk: i})
			if s.v.ins != nil {
				s.v.ins.rebuilds.Inc()
			}
		}
	}
}

// failedMember returns the index of the (single) failed member, or -1.
func (s *RecoverySession) failedMember() int {
	for i, f := range s.v.failed {
		if f {
			return i
		}
	}
	return -1
}

// degradedSubs is the result of fault-aware request mapping.
type degradedSubs struct {
	subs       []sub
	xorSectors int  // reconstruction compute to charge at the join
	degraded   bool // a failed member shaped the mapping
	exposed    bool // a write lost redundancy
	recon      int  // reconstruct reads issued
}

// explodeDegraded maps a request with the current failure state applied.
func (s *RecoverySession) explodeDegraded(r Request) (degradedSubs, error) {
	v := s.v
	f := s.failedMember()
	if f < 0 {
		subs, err := v.mapRequest(r)
		return degradedSubs{subs: subs}, err
	}
	if r.Sectors <= 0 {
		return degradedSubs{}, fmt.Errorf("raid: request %d has %d sectors", r.ID, r.Sectors)
	}
	if r.Block < 0 || r.Block+int64(r.Sectors) > v.Capacity() {
		return degradedSubs{}, fmt.Errorf("raid: request %d range [%d,%d) outside volume [0,%d)",
			r.ID, r.Block, r.Block+int64(r.Sectors), v.Capacity())
	}
	rb := s.rebuilds[f]
	switch v.level {
	case RAID1:
		return s.explodeMirrorDegraded(r, f, rb), nil
	case RAID5:
		return s.explodeRAID5Degraded(r, f, rb), nil
	default:
		// RAID-0/JBOD have no redundancy: anything touching the lost
		// member is gone.
		subs, err := v.mapRequest(r)
		if err != nil {
			return degradedSubs{}, err
		}
		for _, sb := range subs {
			if sb.disk == f {
				return degradedSubs{}, fmt.Errorf("%w: request %d needs member %d", ErrDataLoss, r.ID, f)
			}
		}
		return degradedSubs{subs: subs, degraded: true}, nil
	}
}

// explodeMirrorDegraded: reads fail over to the survivor (or to the spare
// below the rebuild frontier); writes go to the survivor and, during a
// rebuild, to the spare too, but are exposed until the rebuild completes.
func (s *RecoverySession) explodeMirrorDegraded(r Request, f int, rb *rebuild) degradedSubs {
	surv := 1 - f
	req := disksim.Request{ID: r.ID, Arrival: r.Arrival, LBN: r.Block, Sectors: r.Sectors, Write: r.Write}
	out := degradedSubs{degraded: true}
	if r.Write {
		out.subs = append(out.subs, sub{surv, req})
		if rb != nil {
			out.subs = append(out.subs, sub{f, req})
		}
		out.exposed = true
		return out
	}
	if rb != nil && r.Block+int64(r.Sectors) <= rb.frontier(r.Arrival) {
		// The spare already holds this range: share the read load.
		s.v.readRR++
		if s.v.readRR%2 == 0 {
			out.subs = append(out.subs, sub{f, req})
			return out
		}
	}
	out.subs = append(out.subs, sub{surv, req})
	return out
}

// explodeRAID5Degraded walks the stripe units like mapStriped, substituting
// the degraded forms for units whose data or parity lived on the lost disk.
func (s *RecoverySession) explodeRAID5Degraded(r Request, f int, rb *rebuild) degradedSubs {
	v := s.v
	out := degradedSubs{degraded: true}
	block := r.Block
	remaining := int64(r.Sectors)
	for remaining > 0 {
		unit := block / v.stripeUnit
		off := block % v.stripeUnit
		n := v.stripeUnit - off
		if n > remaining {
			n = remaining
		}
		disk, base, parity := v.stripeLoc(unit, true)
		lbn := base + off
		rebuilt := rb != nil && lbn+n <= rb.frontier(r.Arrival)
		mk := func(d int, write bool) sub {
			return sub{d, disksim.Request{ID: r.ID, Arrival: r.Arrival, LBN: lbn, Sectors: int(n), Write: write}}
		}
		switch {
		case !r.Write && disk != f:
			// Data survives: a normal read.
			out.subs = append(out.subs, mk(disk, false))
		case !r.Write && rebuilt:
			// The spare has caught up past this unit.
			out.subs = append(out.subs, mk(f, false))
		case !r.Write:
			// Reconstruct from the k-1 survivors: same offsets on every
			// other member of the row, XORed together.
			for d := range v.disks {
				if d != f {
					out.subs = append(out.subs, mk(d, false))
					out.recon++
				}
			}
			out.xorSectors += int(n)
		case disk == f:
			// Write to the lost data disk: reconstruct-write. Read the
			// row's other data units, write the new parity; the data
			// itself lands only on the spare (if one is rebuilding).
			for d := range v.disks {
				if d != f && d != parity {
					out.subs = append(out.subs, mk(d, false))
					out.recon++
				}
			}
			out.subs = append(out.subs, mk(parity, true))
			out.xorSectors += int(n)
			if rb != nil {
				out.subs = append(out.subs, mk(f, true))
			}
			out.exposed = true
		case parity == f:
			// The row's parity is gone: write the data plain and log the
			// exposure.
			out.subs = append(out.subs, mk(disk, true))
			out.exposed = true
		default:
			// Both the unit and its parity survive: the usual RMW.
			out.subs = append(out.subs,
				mk(disk, false), mk(disk, true),
				mk(parity, false), mk(parity, true))
		}
		block += n
		remaining -= n
	}
	return out
}

// Serve services one volume request under the current failure state. A
// member failure raised mid-request fails the member over and re-issues the
// request degraded (the aborted attempt's mechanical time stays charged, as
// a controller retry would).
func (s *RecoverySession) Serve(r Request) (Completion, error) {
	s.advanceRebuilds(r.Arrival)
	for attempt := 0; attempt <= len(s.v.disks); attempt++ {
		ds, err := s.explodeDegraded(r)
		if err != nil {
			return Completion{}, err
		}
		c := Completion{
			Request:       r,
			SubRequests:   len(ds.subs),
			Degraded:      ds.degraded,
			Reconstructed: ds.xorSectors,
			Exposed:       ds.exposed && r.Write,
		}
		var finish time.Duration
		failed := -1
		c.SlowestDisk = -1
		for _, sb := range ds.subs {
			comp, err := s.v.disks[sb.disk].Serve(sb.req)
			if err != nil {
				if errors.Is(err, disksim.ErrDiskFailed) {
					failed = sb.disk
					break
				}
				return Completion{}, err
			}
			// Same slowest-sub rule as Volume.Serve: max finish, ties to
			// the lowest member index.
			if c.SlowestDisk < 0 || comp.Finish > finish ||
				(comp.Finish == finish && sb.disk < c.SlowestDisk) {
				finish = comp.Finish
				c.Parts = comp.Parts
				c.SlowestDisk = sb.disk
			}
			if comp.CacheHit {
				c.CacheHits++
			}
		}
		if failed >= 0 {
			at := s.v.disks[failed].FailedAt()
			if err := s.noteFailure(failed, at); err != nil {
				return Completion{}, err
			}
			continue // re-issue against the survivors
		}
		if ds.xorSectors > 0 {
			finish += time.Duration(ds.xorSectors) * s.cfg.xorPerSector()
		}
		if s.v.writeBack > 0 && r.Write {
			finish = r.Arrival + s.v.writeBack
		}
		c.Finish = finish
		if ds.degraded {
			s.report.Degraded++
		}
		s.report.Reconstructions += ds.recon
		if c.Exposed {
			s.report.ExposedWrites++
		}
		if ins := s.v.ins; ins != nil {
			ins.record(&c)
			ins.reconstructions.Add(int64(ds.recon))
			if c.Exposed {
				ins.exposedWrites.Inc()
			}
		}
		return c, nil
	}
	return Completion{}, fmt.Errorf("%w: request %d found no serviceable mapping", ErrDataLoss, r.ID)
}

// RunStream services requests pulled lazily from src on an event engine,
// pushing each completion to sink as it happens. Requests whose data is
// unrecoverable (ErrDataLoss on a non-redundant level) are counted as lost
// and skipped, matching Run; any other error aborts the engine. The source
// must yield requests in nondecreasing arrival order.
func (s *RecoverySession) RunStream(eng *sim.Engine, src sim.Source[Request], sink sim.Sink[Completion]) error {
	if eng == nil {
		eng = sim.NewEngine()
	}
	rs := &recoveryStream{s: s, src: src, sink: sink}
	rs.fire = rs.serve // one event closure for the whole run, not one per request
	rs.admit(eng)
	if err := eng.Run(); err != nil {
		return err
	}
	// Let rebuilds that outlive the trace complete on the report.
	if len(s.rebuilds) > 0 {
		var last time.Duration
		for _, rb := range s.rebuilds {
			if rb.done > last {
				last = rb.done
			}
		}
		s.advanceRebuilds(last)
	}
	return rs.failed
}

// recoveryStream is RecoverySession.RunStream's admission state, the same
// one-struct/one-closure pattern as volumeStream with the ErrDataLoss
// count-and-continue path added.
type recoveryStream struct {
	s      *RecoverySession
	src    sim.Source[Request]
	sink   sim.Sink[Completion]
	r      Request // the in-flight request, valid between admit and serve
	failed error
	fire   func(*sim.Engine)
}

func (rs *recoveryStream) admit(e *sim.Engine) {
	r, ok := rs.src.Next()
	if !ok {
		return
	}
	rs.r = r
	e.At(r.Arrival, rs.fire)
}

func (rs *recoveryStream) serve(e *sim.Engine) {
	c, err := rs.s.Serve(rs.r)
	if errors.Is(err, ErrDataLoss) {
		// Non-redundant level with a dead member: the request's data is
		// gone, but the replay goes on — the report counts the casualties
		// instead of aborting at the first one.
		rs.s.report.LostRequests++
		if rs.s.v.ins != nil {
			rs.s.v.ins.lostRequests.Inc()
		}
		rs.admit(e)
		return
	}
	if err != nil {
		rs.failed = err
		e.Fail(err)
		return
	}
	recordSpan(e.Tracer(), &c)
	rs.sink.Push(c)
	rs.admit(e)
}

// RunStreamCtx is RunStream with cooperative cancellation: the source is
// gated on ctx, so a cancelled context ends the replay at the next request
// admission and is reported as ctx.Err() instead of a silently-short run.
func (s *RecoverySession) RunStreamCtx(ctx context.Context, eng *sim.Engine, src sim.Source[Request], sink sim.Sink[Completion]) error {
	if err := s.RunStream(eng, sim.Gate(ctx, src), sink); err != nil {
		return err
	}
	return ctx.Err()
}

// Run services a workload (sorted by arrival internally) and returns the
// full report. It is the collect-into-slice wrapper over RunStream and
// stops early only on data loss in a redundant level or a malformed
// request.
func (s *RecoverySession) Run(reqs []Request) (RecoveryReport, error) {
	sorted := make([]Request, len(reqs))
	copy(sorted, reqs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Arrival < sorted[j].Arrival })
	err := s.RunStream(sim.NewEngine(), sim.FromSlice(sorted),
		sim.SinkFunc[Completion](func(c Completion) {
			s.report.Completions = append(s.report.Completions, c)
		}))
	return s.report, err
}

// RebuildRisk returns the probability that at least one of the survivors
// fails during the rebuild window at a steady temperature — the paper's
// doubling law applied to the window every array operator fears.
func RebuildRisk(m reliability.Model, temp units.Celsius, survivors int, window time.Duration) float64 {
	if survivors <= 0 || window <= 0 {
		return 0
	}
	return 1 - math.Pow(m.SurvivalAt(temp, window), float64(survivors))
}

// MTTDL estimates the mean time to data loss of an n-member single-fault-
// tolerant volume with repair time mttr at a steady temperature:
// MTTF^2 / (n * (n-1) * MTTR).
func MTTDL(m reliability.Model, temp units.Celsius, n int, mttr time.Duration) time.Duration {
	if n < 2 || mttr <= 0 {
		return time.Duration(math.MaxInt64)
	}
	mttfH := m.MTTFAt(temp).Hours()
	h := mttfH * mttfH / (float64(n) * float64(n-1) * mttr.Hours())
	if h >= float64(math.MaxInt64)/float64(time.Hour) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(h * float64(time.Hour))
}
