// Package client is the typed Go client for the simd service. It layers
// the robustness contract the server publishes onto plain net/http: retries
// with exponential backoff and full jitter that honor Retry-After on
// 429/503, client-supplied idempotency keys so a retried submission can
// never run a job twice (the server deduplicates them, across restarts when
// journaling), and a consecutive-failure circuit breaker with half-open
// probes so a dead daemon is detected in one round-trip instead of
// max-attempts × timeout.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// RetryPolicy shapes the backoff schedule. The delay before attempt n
// (1-based, after the first failure) is drawn uniformly from
// [0, min(MaxDelay, BaseDelay·2ⁿ⁻¹)] — full jitter, so a thundering herd of
// retrying clients decorrelates instead of re-arriving in lockstep. A
// server-sent Retry-After overrides the jittered delay: the server knows
// its drain better than the client's schedule does.
type RetryPolicy struct {
	MaxAttempts int           // total tries, default 4; 1 disables retries
	BaseDelay   time.Duration // first backoff ceiling, default 100ms
	MaxDelay    time.Duration // backoff cap, default 5s
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	return p
}

// BreakerPolicy configures the circuit breaker. After Threshold
// consecutive request failures the circuit opens: calls fail fast with
// ErrCircuitOpen (no network traffic) for Cooldown, then a single half-open
// probe is let through — success closes the circuit, failure re-opens it
// for another Cooldown.
type BreakerPolicy struct {
	Threshold int           // consecutive failures to open, default 5; <0 disables
	Cooldown  time.Duration // open duration before the half-open probe, default 2s
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.Threshold == 0 {
		p.Threshold = 5
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 2 * time.Second
	}
	return p
}

// Options configures a Client. The zero value is usable.
type Options struct {
	HTTPClient *http.Client                     // default http.DefaultClient
	Retry      RetryPolicy                      // retry schedule
	Breaker    BreakerPolicy                    // circuit breaker
	Registry   *obs.Registry                    // retry/breaker metrics destination; nil = none
	Seed       int64                            // jitter seed; 0 seeds from the clock
	Logf       func(format string, args ...any) // retry/breaker events; nil = silent
}

// ErrCircuitOpen is returned (wrapped) when the breaker fails a call fast
// without touching the network.
var ErrCircuitOpen = errors.New("circuit open: server marked unavailable")

// StatusError is a non-2xx response that was not retried to success.
type StatusError struct {
	Code int
	Body string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Code, strings.TrimSpace(e.Body))
}

// Client talks to one simd base URL. Safe for concurrent use.
type Client struct {
	base    string
	httpc   *http.Client
	retry   RetryPolicy
	breaker BreakerPolicy
	logf    func(string, ...any)

	mu       sync.Mutex
	rng      *rand.Rand
	fails    int       // consecutive failures (closed state)
	openedAt time.Time // breaker open since; zero = closed
	probing  bool      // a half-open probe is in flight

	retries      *obs.Counter
	breakerOpens *obs.Counter
}

// New builds a client for the simd at base (e.g. "http://127.0.0.1:8080").
func New(base string, opts Options) *Client {
	httpc := opts.HTTPClient
	if httpc == nil {
		httpc = http.DefaultClient
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		httpc:   httpc,
		retry:   opts.Retry.withDefaults(),
		breaker: opts.Breaker.withDefaults(),
		logf:    logf,
		rng:     rand.New(rand.NewSource(seed)),
	}
	if opts.Registry != nil {
		c.retries = opts.Registry.VolatileCounter("simclient_retries_total")
		c.breakerOpens = opts.Registry.VolatileCounter("simclient_breaker_opens_total")
	}
	return c
}

// --- circuit breaker ---

// allow admits a request, or fails it fast while the circuit is open. At
// most one probe is in flight during half-open.
func (c *Client) allow() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.openedAt.IsZero() {
		return nil
	}
	if time.Since(c.openedAt) < c.breaker.Cooldown || c.probing {
		return ErrCircuitOpen
	}
	c.probing = true // this caller is the half-open probe
	return nil
}

func (c *Client) reportSuccess() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fails = 0
	c.probing = false
	if !c.openedAt.IsZero() {
		c.logf("simclient: circuit closed")
		c.openedAt = time.Time{}
	}
}

func (c *Client) reportFailure() {
	if c.breaker.Threshold < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.probing {
		// The half-open probe failed: straight back to open.
		c.probing = false
		c.openedAt = time.Now()
		c.logf("simclient: half-open probe failed, circuit re-opened")
		return
	}
	c.fails++
	if c.openedAt.IsZero() && c.fails >= c.breaker.Threshold {
		c.openedAt = time.Now()
		if c.breakerOpens != nil {
			c.breakerOpens.Inc()
		}
		c.logf("simclient: circuit opened after %d consecutive failures", c.fails)
	}
}

// --- retry engine ---

// backoff returns the full-jitter delay before the given retry (1-based).
func (c *Client) backoff(retryN int) time.Duration {
	ceil := c.retry.BaseDelay << (retryN - 1)
	if ceil > c.retry.MaxDelay || ceil <= 0 {
		ceil = c.retry.MaxDelay
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.rng.Int63n(int64(ceil) + 1))
}

// retryAfter parses a Retry-After header (integral seconds form).
func retryAfter(resp *http.Response) (time.Duration, bool) {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// do runs one request through the breaker and the retry schedule. body is
// re-invoked per attempt so retries never reuse a consumed reader.
// Transport-level failures are retried only when retryAmbiguous (the
// request is idempotent on the server: a GET, or a POST carrying an
// idempotency key); 429/503 are always retriable because they mean the
// request was refused before taking effect.
func (c *Client) do(ctx context.Context, method, path string, body func() io.Reader, hdr http.Header, retryAmbiguous bool) (*http.Response, error) {
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := c.allow(); err != nil {
			return nil, fmt.Errorf("%s %s: %w", method, path, err)
		}
		var rd io.Reader
		if body != nil {
			rd = body()
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			c.reportSuccess() // config error, not a server failure
			return nil, err
		}
		for k, vs := range hdr {
			req.Header[k] = vs
		}

		resp, err := c.httpc.Do(req)
		var delay time.Duration
		var hinted bool
		switch {
		case err != nil:
			c.reportFailure()
			lastErr = err
			if !retryAmbiguous {
				return nil, err
			}
		case resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable:
			c.reportFailure()
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			lastErr = &StatusError{Code: resp.StatusCode, Body: string(b)}
			delay, hinted = retryAfter(resp)
		default:
			c.reportSuccess()
			return resp, nil
		}

		if attempt >= c.retry.MaxAttempts {
			return nil, fmt.Errorf("%s %s: %d attempts: %w", method, path, attempt, lastErr)
		}
		if !hinted {
			delay = c.backoff(attempt)
		}
		if c.retries != nil {
			c.retries.Inc()
		}
		c.logf("simclient: %s %s attempt %d failed (%v), retrying in %v", method, path, attempt, lastErr, delay)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, fmt.Errorf("%s %s: %w (last error: %v)", method, path, ctx.Err(), lastErr)
		}
	}
}

// decode reads a JSON body into v, converting non-2xx into StatusError.
func decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return &StatusError{Code: resp.StatusCode, Body: string(b)}
	}
	if v == nil {
		return nil
	}
	return json.Unmarshal(b, v)
}

// --- API surface ---

// specBody marshals a spec once and replays it per attempt.
func specBody(spec server.Spec) (func() io.Reader, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	return func() io.Reader { return bytes.NewReader(raw) }, nil
}

// keyHeader builds the submission headers for an idempotency key.
func keyHeader(key string) http.Header {
	h := http.Header{"Content-Type": []string{"application/json"}}
	if key != "" {
		h.Set("Idempotency-Key", key)
	}
	return h
}

// SubmitAsync submits a job (202/200) and returns its record without
// waiting for results. With a non-empty idempotency key the call is safely
// retriable end-to-end; without one, only pre-admission refusals (429/503)
// are retried.
func (c *Client) SubmitAsync(ctx context.Context, spec server.Spec, key string) (server.Info, error) {
	body, err := specBody(spec)
	if err != nil {
		return server.Info{}, err
	}
	resp, err := c.do(ctx, "POST", "/v1/jobs?async=1", body, keyHeader(key), key != "")
	if err != nil {
		return server.Info{}, err
	}
	var info server.Info
	return info, decode(resp, &info)
}

// Submit runs a job synchronously and returns the full NDJSON result body.
func (c *Client) Submit(ctx context.Context, spec server.Spec, key string) ([]byte, error) {
	body, err := specBody(spec)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, "POST", "/v1/jobs", body, keyHeader(key), key != "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{Code: resp.StatusCode, Body: string(raw)}
	}
	return raw, nil
}

// Job fetches a job's current record.
func (c *Client) Job(ctx context.Context, id string) (server.Info, error) {
	resp, err := c.do(ctx, "GET", "/v1/jobs/"+id, nil, nil, true)
	if err != nil {
		return server.Info{}, err
	}
	var info server.Info
	return info, decode(resp, &info)
}

// Result fetches a job's NDJSON result, following a live run to completion.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	resp, err := c.do(ctx, "GET", "/v1/jobs/"+id+"/result", nil, nil, true)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{Code: resp.StatusCode, Body: string(raw)}
	}
	return raw, nil
}

// Cancel requests cancellation and returns the job's record.
func (c *Client) Cancel(ctx context.Context, id string) (server.Info, error) {
	resp, err := c.do(ctx, "DELETE", "/v1/jobs/"+id, nil, nil, true)
	if err != nil {
		return server.Info{}, err
	}
	var info server.Info
	return info, decode(resp, &info)
}

// Wait polls a job until it reaches a terminal state or ctx ends.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (server.Info, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return info, err
		}
		switch info.Status {
		case server.StatusDone, server.StatusFailed, server.StatusCancelled:
			return info, nil
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return info, ctx.Err()
		}
	}
}

// Ready reports nil when the daemon answers /readyz with 200 ("ok
// state=ready"); a 503 comes back as a StatusError whose body carries the
// state= field (replaying vs draining). The probe is a single attempt that
// bypasses the retry schedule and the circuit breaker: "not ready yet" is
// the expected answer while a daemon replays its journal or drains, and a
// polling caller must neither burn MaxAttempts of backoff per poll nor
// open the breaker and fail unrelated calls with ErrCircuitOpen.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, "GET", c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	return decode(resp, nil)
}
