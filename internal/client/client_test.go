package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

func fastRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

func roadmapSpec() server.Spec {
	return server.Spec{Type: server.TypeRoadmap}
}

func writeInfo(w http.ResponseWriter, code int) {
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(server.Info{ID: "job-1", Status: server.StatusQueued})
}

// TestRetryHonorsRetryAfter: 429s with a Retry-After hint are retried and
// eventually succeed; every attempt carries the idempotency key.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var keys atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Idempotency-Key") == "k1" {
			keys.Add(1)
		}
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		writeInfo(w, http.StatusAccepted)
	}))
	defer srv.Close()

	c := New(srv.URL, Options{Retry: fastRetry(), Seed: 1})
	info, err := c.SubmitAsync(context.Background(), roadmapSpec(), "k1")
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "job-1" {
		t.Fatalf("info = %+v", info)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if got := keys.Load(); got != 3 {
		t.Fatalf("idempotency key on %d/3 attempts", got)
	}
}

// TestRetryExhaustionSurfacesLastError: a server that never recovers
// produces an error naming the attempt count and the final status.
func TestRetryExhaustionSurfacesLastError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := New(srv.URL, Options{Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}, Seed: 1})
	_, err := c.SubmitAsync(context.Background(), roadmapSpec(), "")
	if err == nil {
		t.Fatal("expected error")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want wrapped 503 StatusError", err)
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("err = %v, want attempt count", err)
	}
}

// TestTransportErrorRetriedOnlyWithKey: a connection-level failure is
// ambiguous (the POST may have been applied), so it is only retried when an
// idempotency key makes the replay safe.
func TestTransportErrorRetriedOnlyWithKey(t *testing.T) {
	// A server that accepts and immediately severs every connection.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			c.Close()
		}
	}))
	defer srv.Close()

	c := New(srv.URL, Options{Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}, Seed: 1})

	_, err := c.SubmitAsync(context.Background(), roadmapSpec(), "")
	if err == nil {
		t.Fatal("expected transport error")
	}
	if strings.Contains(err.Error(), "attempts") {
		t.Fatalf("keyless POST was retried: %v", err)
	}

	_, err = c.SubmitAsync(context.Background(), roadmapSpec(), "k1")
	if err == nil {
		t.Fatal("expected transport error")
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("keyed POST not retried to exhaustion: %v", err)
	}
}

// TestCircuitBreaker: consecutive failures open the circuit (calls fail
// fast, no network), the cooldown admits a single half-open probe, and a
// probe success closes the circuit again.
func TestCircuitBreaker(t *testing.T) {
	var healthy atomic.Bool
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if !healthy.Load() {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		writeInfo(w, http.StatusAccepted)
	}))
	defer srv.Close()

	c := New(srv.URL, Options{
		Retry:   RetryPolicy{MaxAttempts: 1}, // isolate breaker behaviour
		Breaker: BreakerPolicy{Threshold: 3, Cooldown: 30 * time.Millisecond},
		Seed:    1,
	})
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := c.SubmitAsync(ctx, roadmapSpec(), ""); err == nil {
			t.Fatal("expected failure")
		}
	}
	wire := calls.Load()

	// Open: fails fast without touching the server.
	_, err := c.SubmitAsync(ctx, roadmapSpec(), "")
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if calls.Load() != wire {
		t.Fatal("open circuit still hit the network")
	}

	// After the cooldown the half-open probe goes through and closes it.
	healthy.Store(true)
	time.Sleep(40 * time.Millisecond)
	if _, err := c.SubmitAsync(ctx, roadmapSpec(), ""); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if _, err := c.SubmitAsync(ctx, roadmapSpec(), ""); err != nil {
		t.Fatalf("closed circuit: %v", err)
	}
}

// TestFailedProbeReopens: a failing half-open probe goes straight back to
// open without needing Threshold new failures.
func TestFailedProbeReopens(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := New(srv.URL, Options{
		Retry:   RetryPolicy{MaxAttempts: 1},
		Breaker: BreakerPolicy{Threshold: 2, Cooldown: 20 * time.Millisecond},
		Seed:    1,
	})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		c.SubmitAsync(ctx, roadmapSpec(), "")
	}
	time.Sleep(30 * time.Millisecond)
	// Probe fails -> immediately open again.
	if _, err := c.SubmitAsync(ctx, roadmapSpec(), ""); errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("probe was not admitted: %v", err)
	}
	if _, err := c.SubmitAsync(ctx, roadmapSpec(), ""); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen after failed probe", err)
	}
}

// TestContextCancelsBackoff: a context deadline interrupts the backoff
// sleep instead of letting the schedule run to exhaustion.
func TestContextCancelsBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30") // hint far beyond the deadline
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := New(srv.URL, Options{Retry: RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}, Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.SubmitAsync(ctx, roadmapSpec(), "")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("cancellation not prompt: %v", took)
	}
}

// TestReadySingleProbeOutsideBreaker: Ready is a readiness poll, not a
// request — a daemon that answers 503 while replaying or draining must not
// consume retry attempts, and however often it is polled it must never
// open the circuit breaker and fail unrelated calls with ErrCircuitOpen.
func TestReadySingleProbeOutsideBreaker(t *testing.T) {
	var readyz atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			readyz.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "unavailable state=replaying", http.StatusServiceUnavailable)
			return
		}
		writeInfo(w, http.StatusOK)
	}))
	defer srv.Close()

	c := New(srv.URL, Options{
		Retry:   fastRetry(),
		Breaker: BreakerPolicy{Threshold: 2, Cooldown: time.Hour},
		Seed:    1,
	})
	ctx := context.Background()
	for i := 0; i < 10; i++ { // well past the breaker threshold
		err := c.Ready(ctx)
		var se *StatusError
		if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
			t.Fatalf("Ready = %v, want 503 StatusError", err)
		}
		if !strings.Contains(se.Body, "state=replaying") {
			t.Fatalf("Ready error body %q lost the state field", se.Body)
		}
	}
	// One HTTP round-trip per poll: no retry amplification.
	if got := readyz.Load(); got != 10 {
		t.Fatalf("10 polls hit /readyz %d times, want 10", got)
	}
	// The breaker never opened: an unrelated call still reaches the server.
	if _, err := c.Job(ctx, "job-1"); err != nil {
		t.Fatalf("call after readiness polling = %v, want success (breaker must stay closed)", err)
	}
}

// TestClientAgainstRealServer exercises the full loop against an actual
// simd server: async submit with a key, wait, fetch the result, and dedupe
// a duplicate submission.
func TestClientAgainstRealServer(t *testing.T) {
	s, err := server.New(server.Config{Workers: 2, QueueDepth: 8, JobTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	c := New(srv.URL, Options{Retry: fastRetry(), Seed: 1})
	ctx := context.Background()
	if err := c.Ready(ctx); err != nil {
		t.Fatalf("ready: %v", err)
	}
	spec := server.Spec{Type: server.TypeRoadmap, Roadmap: &server.RoadmapSpec{FirstYear: 2002, LastYear: 2003}}

	info, err := c.SubmitAsync(ctx, spec, "e2e-key")
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, info.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != server.StatusDone {
		t.Fatalf("status = %q (%s)", final.Status, final.Error)
	}
	body, err := c.Result(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"kind":"summary"`) {
		t.Fatalf("result missing summary: %s", body)
	}
	// Same key: same job, not a second run.
	dup, err := c.SubmitAsync(ctx, spec, "e2e-key")
	if err != nil {
		t.Fatal(err)
	}
	if dup.ID != info.ID {
		t.Fatalf("dedup returned %s, want %s", dup.ID, info.ID)
	}
}
