package geometry

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func reference() Drive {
	return Drive{PlatterDiameter: 2.6, Platters: 1, FormFactor: FormFactor35}
}

func TestValidateAccepts(t *testing.T) {
	cases := []Drive{
		reference(),
		{PlatterDiameter: 3.7, Platters: 4, FormFactor: FormFactor35},
		{PlatterDiameter: 3.7, Platters: 12, FormFactor: FormFactor35Tall},
		{PlatterDiameter: 2.6, Platters: 2, FormFactor: FormFactor25},
		{PlatterDiameter: 1.6, Platters: 1, FormFactor: FormFactor35},
	}
	for _, d := range cases {
		if err := d.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", d, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		d    Drive
		want string
	}{
		{Drive{PlatterDiameter: 2.6, Platters: 0, FormFactor: FormFactor35}, "platters"},
		{Drive{PlatterDiameter: -1, Platters: 1, FormFactor: FormFactor35}, "diameter"},
		{Drive{PlatterDiameter: 4.5, Platters: 1, FormFactor: FormFactor35}, "fit"},
		{Drive{PlatterDiameter: 3.0, Platters: 1, FormFactor: FormFactor25}, "fit"},
		{Drive{PlatterDiameter: 2.6, Platters: 12, FormFactor: FormFactor35}, "stack"},
	}
	for _, c := range cases {
		err := c.d.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) = nil, want error containing %q", c.d, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%+v) = %v, want error containing %q", c.d, err, c.want)
		}
	}
}

func TestRadii(t *testing.T) {
	d := reference()
	if got := d.OuterRadius(); got != 1.3 {
		t.Errorf("outer radius = %v, want 1.3", got)
	}
	if got := d.InnerRadius(); got != 0.65 {
		t.Errorf("inner radius = %v, want 0.65 (half of outer)", got)
	}
	if got := d.DataBandWidth(); got != 0.65 {
		t.Errorf("data band = %v, want 0.65", got)
	}
}

func TestPlatterMassPlausible(t *testing.T) {
	// A 2.6" aluminum platter weighs a few grams to a few tens of grams.
	m := reference().PlatterMass()
	if m < 0.003 || m > 0.05 {
		t.Errorf("2.6\" platter mass = %.4f kg, outside plausible range", m)
	}
	// A 3.7" platter is heavier.
	d37 := Drive{PlatterDiameter: 3.7, Platters: 1, FormFactor: FormFactor35}
	if d37.PlatterMass() <= m {
		t.Error("3.7\" platter should outweigh 2.6\"")
	}
}

func TestSpindleMassGrowsWithPlatters(t *testing.T) {
	d1 := reference()
	d4 := Drive{PlatterDiameter: 2.6, Platters: 4, FormFactor: FormFactor35}
	if d4.SpindleAssemblyMass() <= d1.SpindleAssemblyMass() {
		t.Error("4-platter spindle assembly should outweigh 1-platter")
	}
}

func TestCastingMassPlausible(t *testing.T) {
	// Base+cover of a 3.5" drive: roughly 0.2-0.6 kg.
	m := reference().CastingMass()
	if m < 0.15 || m > 0.8 {
		t.Errorf("casting mass = %.3f kg, outside plausible range", m)
	}
	// The 2.5" enclosure is lighter.
	d25 := Drive{PlatterDiameter: 2.1, Platters: 1, FormFactor: FormFactor25}
	if d25.CastingMass() >= m {
		t.Error("2.5\" castings should be lighter than 3.5\"")
	}
}

func TestEnclosureAreaOrdering(t *testing.T) {
	a35 := Drive{PlatterDiameter: 2.6, Platters: 1, FormFactor: FormFactor35}.EnclosureArea()
	a25 := Drive{PlatterDiameter: 2.1, Platters: 1, FormFactor: FormFactor25}.EnclosureArea()
	aTall := Drive{PlatterDiameter: 2.6, Platters: 1, FormFactor: FormFactor35Tall}.EnclosureArea()
	if !(a25 < a35 && a35 < aTall) {
		t.Errorf("enclosure areas not ordered: 2.5\"=%.4f 3.5\"=%.4f tall=%.4f", a25, a35, aTall)
	}
}

func TestInternalAirVolumePositive(t *testing.T) {
	f := func(dia uint8, n uint8) bool {
		d := Drive{
			PlatterDiameter: units.Inches(1 + float64(dia%28)/10), // 1.0..3.7
			Platters:        1 + int(n%4),
			FormFactor:      FormFactor35,
		}
		if d.Validate() != nil {
			return true
		}
		return d.InternalAirVolume() > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWettedAreasScaleWithPlatters(t *testing.T) {
	d1 := reference()
	d2 := Drive{PlatterDiameter: 2.6, Platters: 2, FormFactor: FormFactor35}
	r := d2.PlatterWettedArea() / d1.PlatterWettedArea()
	if math.Abs(r-2) > 1e-9 {
		t.Errorf("wetted area ratio 2-platter/1-platter = %v, want 2", r)
	}
	if d2.ActuatorWettedArea() <= d1.ActuatorWettedArea() {
		t.Error("more platters need more arms, hence more actuator area")
	}
}

func TestFormFactorStrings(t *testing.T) {
	if FormFactor35.String() != "3.5-inch" ||
		FormFactor25.String() != "2.5-inch" ||
		FormFactor35Tall.String() != "3.5-inch-tall" {
		t.Error("form factor String() mismatch")
	}
	if !strings.Contains(FormFactor(99).String(), "99") {
		t.Error("unknown form factor should print its number")
	}
}

func TestFormFactorDimensions(t *testing.T) {
	w, d, h := FormFactor35.Dimensions()
	if w != 4.0 || d != 5.75 || h != 1.0 {
		t.Errorf("3.5\" dims = %v x %v x %v", w, d, h)
	}
	_, _, hTall := FormFactor35Tall.Dimensions()
	if hTall != 1.6 {
		t.Errorf("tall height = %v, want 1.6", hTall)
	}
}

func TestArmLength(t *testing.T) {
	d := reference()
	got := d.ArmLength()
	want := units.Inches(ArmLengthFraction * 2.6)
	if math.Abs(float64(got-want)) > 1e-12 {
		t.Errorf("arm length = %v, want %v", got, want)
	}
}
