// Package geometry describes the physical layout of a disk drive: the
// platter stack, the actuator, and the enclosure. It provides the derived
// quantities — masses, surface areas, air volume — that the thermal model's
// nodal network is built from.
//
// The reference geometry is the Seagate Cheetah 15K.3 that the paper
// disassembled: a 2.6" platter inside a 3.5" form-factor enclosure. Platter
// thickness, casting wall thickness and arm dimensions follow the paper's
// measurements where stated and standard values otherwise; every number is a
// named constant below so the calibration surface is explicit.
package geometry

import (
	"fmt"
	"math"

	"repro/internal/materials"
	"repro/internal/units"
)

// FormFactor is a drive enclosure size class.
type FormFactor int

// Enclosure form factors considered by the paper (section 4.2.2).
const (
	// FormFactor35 is the standard 3.5" enclosure (4" x 5.75" x 1").
	FormFactor35 FormFactor = iota
	// FormFactor25 is the small 2.5" enclosure (2.75" x 3.96" x 0.75"),
	// the paper's section 4.2.2 sensitivity case. It can still house a
	// 2.6" platter.
	FormFactor25

	// FormFactor35Tall is the 1.6"-height ("full-height") 3.5" enclosure
	// used by high-platter-count drives such as the 12-platter
	// Barracuda 180 in the validation corpus.
	FormFactor35Tall
)

// String implements fmt.Stringer.
func (f FormFactor) String() string {
	switch f {
	case FormFactor35:
		return "3.5-inch"
	case FormFactor25:
		return "2.5-inch"
	case FormFactor35Tall:
		return "3.5-inch-tall"
	default:
		return fmt.Sprintf("FormFactor(%d)", int(f))
	}
}

// Dimensions returns the external width, depth and height of the enclosure.
func (f FormFactor) Dimensions() (w, d, h units.Inches) {
	switch f {
	case FormFactor25:
		// StorageReview reference guide dimensions cited by the paper.
		return 2.75, 3.96, 0.75
	case FormFactor35Tall:
		return 4.0, 5.75, 1.6
	default:
		return 4.0, 5.75, 1.0
	}
}

// MaxPlatterDiameter returns the largest platter the enclosure can house.
func (f FormFactor) MaxPlatterDiameter() units.Inches {
	switch f {
	case FormFactor25:
		return 2.6
	case FormFactor35, FormFactor35Tall:
		return 3.74
	default:
		return 3.74
	}
}

// Reference construction constants. These are the measurable parameters the
// paper obtained with vernier calipers from the Cheetah teardown, or standard
// values where the paper does not state one.
const (
	// PlatterThickness is the thickness of one platter in inches.
	PlatterThickness units.Inches = 0.05

	// PlatterSpacing is the axial pitch between adjacent platters.
	PlatterSpacing units.Inches = 0.12

	// CastingWall is the wall thickness of the base and cover castings.
	CastingWall units.Inches = 0.12

	// HubDiameterFraction is the spindle-hub diameter as a fraction of the
	// platter diameter; the hub clamps the platters at the inner radius,
	// which the capacity model pins at half the outer radius.
	HubDiameterFraction = 0.5

	// ArmLengthFraction is the disk-arm length as a fraction of the platter
	// diameter; the arm must reach from the pivot (outside the platter) to
	// the inner radius.
	ArmLengthFraction = 0.9

	// ArmWidth and ArmThickness size one actuator arm.
	ArmWidth     units.Inches = 0.5
	ArmThickness units.Inches = 0.04

	// VCMMass is the mass of the voice-coil motor magnet structure in kg.
	// The magnets dominate the actuator's thermal capacitance.
	VCMMass = 0.060

	// SpindleMotorMass is the mass of the spindle motor (stator, bearings)
	// in kg, exclusive of the hub.
	SpindleMotorMass = 0.045
)

// Drive is the physical description of one drive.
type Drive struct {
	// PlatterDiameter is the recording-media diameter (NOT the form
	// factor): 2.6" for the reference Cheetah.
	PlatterDiameter units.Inches

	// Platters is the number of platters in the stack.
	Platters int

	// FormFactor selects the enclosure.
	FormFactor FormFactor
}

// Validate reports whether the drive is physically constructible.
func (d Drive) Validate() error {
	if d.Platters < 1 {
		return fmt.Errorf("geometry: %d platters; need at least 1", d.Platters)
	}
	if d.PlatterDiameter <= 0 {
		return fmt.Errorf("geometry: non-positive platter diameter %v", d.PlatterDiameter)
	}
	if max := d.FormFactor.MaxPlatterDiameter(); d.PlatterDiameter > max {
		return fmt.Errorf("geometry: %v platter does not fit %v enclosure (max %v)",
			d.PlatterDiameter, d.FormFactor, max)
	}
	_, _, h := d.FormFactor.Dimensions()
	if stack := units.Inches(float64(d.Platters)) * PlatterSpacing; stack > h {
		return fmt.Errorf("geometry: %d-platter stack (%v) exceeds enclosure height %v",
			d.Platters, stack, h)
	}
	return nil
}

// OuterRadius returns the platter outer radius.
func (d Drive) OuterRadius() units.Inches { return d.PlatterDiameter / 2 }

// InnerRadius returns the recording-band inner radius, pinned to half the
// outer radius per the paper's rule of thumb.
func (d Drive) InnerRadius() units.Inches { return d.PlatterDiameter / 4 }

// PlatterMass returns the mass of one platter in kg (annulus from hub edge to
// outer radius; the hub bore is HubDiameterFraction of the diameter).
func (d Drive) PlatterMass() float64 {
	ro := float64(d.OuterRadius().Meters())
	rHub := ro * HubDiameterFraction / 2 // hub bore radius
	t := float64(PlatterThickness.Meters())
	vol := math.Pi * (ro*ro - rHub*rHub) * t
	return vol * materials.Aluminum.Density
}

// HubMass returns the mass of the spindle hub in kg: a solid cylinder the
// height of the stack with the hub diameter.
func (d Drive) HubMass() float64 {
	rHub := float64(d.OuterRadius().Meters()) * HubDiameterFraction
	h := float64(d.Platters) * float64(PlatterSpacing.Meters())
	if h < float64(PlatterSpacing.Meters()) {
		h = float64(PlatterSpacing.Meters())
	}
	return math.Pi * rHub * rHub * h * materials.Aluminum.Density
}

// SpindleAssemblyMass is the thermal mass of the rotating stack plus motor:
// platters, hub and spindle motor.
func (d Drive) SpindleAssemblyMass() float64 {
	return float64(d.Platters)*d.PlatterMass() + d.HubMass() + SpindleMotorMass
}

// ArmLength returns the actuator arm length.
func (d Drive) ArmLength() units.Inches {
	return units.Inches(ArmLengthFraction * float64(d.PlatterDiameter))
}

// ActuatorMass returns the mass of the actuator: one arm per surface plus the
// VCM magnet structure.
func (d Drive) ActuatorMass() float64 {
	l := float64(d.ArmLength().Meters())
	w := float64(ArmWidth.Meters())
	t := float64(ArmThickness.Meters())
	arms := float64(2 * d.Platters)
	return arms*l*w*t*materials.Aluminum.Density + VCMMass
}

// CastingMass returns the combined mass of base and cover castings, modelled
// as a box shell of CastingWall thickness.
func (d Drive) CastingMass() float64 {
	w, dep, h := d.FormFactor.Dimensions()
	wm, dm, hm := float64(w.Meters()), float64(dep.Meters()), float64(h.Meters())
	tw := float64(CastingWall.Meters())
	outer := wm * dm * hm
	inner := (wm - 2*tw) * (dm - 2*tw) * (hm - 2*tw)
	return (outer - inner) * materials.Aluminum.Density
}

// EnclosureArea returns the total external surface area of the enclosure in
// m^2 — the area available for convection to the ambient air.
func (d Drive) EnclosureArea() float64 {
	w, dep, h := d.FormFactor.Dimensions()
	wm, dm, hm := float64(w.Meters()), float64(dep.Meters()), float64(h.Meters())
	return 2 * (wm*dm + wm*hm + dm*hm)
}

// InternalAirVolume returns the free air volume inside the enclosure in m^3:
// the internal box volume minus the solids.
func (d Drive) InternalAirVolume() float64 {
	w, dep, h := d.FormFactor.Dimensions()
	tw := float64(CastingWall.Meters())
	wm := float64(w.Meters()) - 2*tw
	dm := float64(dep.Meters()) - 2*tw
	hm := float64(h.Meters()) - 2*tw
	box := wm * dm * hm
	solids := (d.SpindleAssemblyMass() + d.ActuatorMass()) / materials.Aluminum.Density
	v := box - solids
	if v < 0.1*box {
		v = 0.1 * box
	}
	return v
}

// PlatterWettedArea returns the air-washed surface area of the platter stack
// in m^2: two faces per platter plus the rim.
func (d Drive) PlatterWettedArea() float64 {
	ro := float64(d.OuterRadius().Meters())
	rHub := ro * HubDiameterFraction
	face := math.Pi * (ro*ro - rHub*rHub)
	rim := 2 * math.Pi * ro * float64(PlatterThickness.Meters())
	return float64(d.Platters) * (2*face + rim)
}

// ActuatorWettedArea returns the air-washed area of the arms in m^2.
func (d Drive) ActuatorWettedArea() float64 {
	l := float64(d.ArmLength().Meters())
	w := float64(ArmWidth.Meters())
	arms := float64(2 * d.Platters)
	return arms * 2 * l * w
}

// DataBandWidth returns the radial width of the recording band (outer minus
// inner radius).
func (d Drive) DataBandWidth() units.Inches { return d.OuterRadius() - d.InnerRadius() }
