package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Online accumulators: the streaming engine's statistics. Unlike Sample,
// none of these retain observations, so a 10M-request replay summarises in
// O(1) memory.

// Running accumulates count, sum, and max. Mean is summed in observation
// order, so a Running fed the same stream as a Sample reports the identical
// mean (same float64 additions in the same order).
type Running struct {
	n   int64
	sum float64
	max float64
}

// Add records one observation (in milliseconds, matching Sample).
func (r *Running) Add(d time.Duration) { r.AddMillis(float64(d) / float64(time.Millisecond)) }

// AddMillis records one observation given in milliseconds.
func (r *Running) AddMillis(ms float64) {
	r.n++
	r.sum += ms
	if ms > r.max {
		r.max = ms
	}
}

// Merge folds another accumulator into r. Counts and max merge exactly;
// the merged sum is one float64 addition per Merge, so a sharded reduction
// that always merges in the same order is deterministic, though not
// bit-identical to feeding one accumulator the concatenated stream.
func (r *Running) Merge(o *Running) {
	if o == nil || o.n == 0 {
		return
	}
	r.n += o.n
	r.sum += o.sum
	if o.max > r.max {
		r.max = o.max
	}
}

// N returns the number of observations.
func (r *Running) N() int64 { return r.n }

// Mean returns the mean in milliseconds (0 when empty).
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// Max returns the largest observation in milliseconds.
func (r *Running) Max() float64 { return r.max }

// Sum returns the running sum in milliseconds (the exact value Mean divides
// by N, exposed for exporters that need the numerator itself).
func (r *Running) Sum() float64 { return r.sum }

// P2 estimates one quantile online with the P² algorithm (Jain & Chlamtac,
// CACM 1985): five markers track the quantile and its neighbourhood, and a
// piecewise-parabolic update keeps them near their ideal ranks. Memory is
// O(1); accuracy on unimodal response-time distributions is within a few
// percent of the exact order statistic.
type P2 struct {
	p       float64 // target quantile in (0,1)
	n       int64   // observations seen
	heights [5]float64
	pos     [5]float64 // actual marker positions (1-based ranks)
	want    [5]float64 // desired marker positions
	inc     [5]float64 // desired-position increments per observation
	initial []float64  // first five observations, pre-initialisation
}

// NewP2 returns an estimator for the p-th quantile, p in (0,1).
func NewP2(p float64) (*P2, error) {
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("stats: P2 quantile %v outside (0,1)", p)
	}
	return &P2{
		p:       p,
		want:    [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5},
		inc:     [5]float64{0, p / 2, p, (1 + p) / 2, 1},
		initial: make([]float64, 0, 5),
	}, nil
}

// MustP2 is NewP2 for statically-known quantiles.
func MustP2(p float64) *P2 {
	e, err := NewP2(p)
	if err != nil {
		panic(err)
	}
	return e
}

// Add records one observation (in milliseconds, matching Sample).
func (e *P2) Add(d time.Duration) { e.AddMillis(float64(d) / float64(time.Millisecond)) }

// AddMillis records one observation given in milliseconds.
func (e *P2) AddMillis(x float64) {
	e.n++
	if len(e.initial) < 5 {
		e.initial = append(e.initial, x)
		if len(e.initial) == 5 {
			sort.Float64s(e.initial)
			for i := range e.heights {
				e.heights[i] = e.initial[i]
				e.pos[i] = float64(i + 1)
			}
		}
		return
	}

	// Locate the cell and update the extreme markers.
	var k int
	switch {
	case x < e.heights[0]:
		e.heights[0] = x
		k = 0
	case x >= e.heights[4]:
		e.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.want {
		e.want[i] += e.inc[i]
	}

	// Nudge the three middle markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := e.parabolic(i, sign)
			if e.heights[i-1] < h && h < e.heights[i+1] {
				e.heights[i] = h
			} else {
				e.heights[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction.
func (e *P2) parabolic(i int, d float64) float64 {
	return e.heights[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.heights[i+1]-e.heights[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.heights[i]-e.heights[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback when the parabola would leave the bracket.
func (e *P2) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.heights[i] + d*(e.heights[j]-e.heights[i])/(e.pos[j]-e.pos[i])
}

// N returns the number of observations.
func (e *P2) N() int64 { return e.n }

// Value returns the current quantile estimate in milliseconds. Below five
// observations it falls back to the exact order statistic of what it has.
func (e *P2) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if len(e.initial) < 5 {
		s := append([]float64(nil), e.initial...)
		sort.Float64s(s)
		rank := int(math.Ceil(e.p*float64(len(s)))) - 1
		if rank < 0 {
			rank = 0
		}
		return s[rank]
	}
	return e.heights[2]
}

// BucketCounts accumulates a histogram over fixed bucket edges without
// retaining observations; its CDF matches Sample.CDF on the same edges
// exactly (bucket membership is exact, only within-bucket detail is lost).
type BucketCounts struct {
	edges  []float64
	counts []int64
	n      int64
}

// NewBucketCounts returns a counter over ascending edges; observations
// above the last edge land in a final open bucket.
func NewBucketCounts(edges []float64) *BucketCounts {
	return &BucketCounts{edges: edges, counts: make([]int64, len(edges)+1)}
}

// NewFigure4Counts returns a counter over the paper's Figure 4 buckets.
func NewFigure4Counts() *BucketCounts { return NewBucketCounts(Figure4Buckets) }

// Add records one observation (in milliseconds).
func (b *BucketCounts) Add(d time.Duration) { b.AddMillis(float64(d) / float64(time.Millisecond)) }

// AddMillis records one observation given in milliseconds.
func (b *BucketCounts) AddMillis(ms float64) {
	i := sort.SearchFloat64s(b.edges, ms) // first edge >= ms: the <=edge bucket
	b.counts[i]++
	b.n++
}

// Merge folds another counter into b. Both must have been built over the
// same edges; bucket membership is exact, so a sharded reduction merges
// exactly — unlike P2, whose marker state cannot be combined.
func (b *BucketCounts) Merge(o *BucketCounts) error {
	if o == nil || o.n == 0 {
		return nil
	}
	if len(o.edges) != len(b.edges) {
		return fmt.Errorf("stats: merging bucket counts over %d edges into %d", len(o.edges), len(b.edges))
	}
	for i, e := range b.edges {
		if o.edges[i] != e {
			return fmt.Errorf("stats: merging bucket counts with mismatched edge %d (%g vs %g)", i, o.edges[i], e)
		}
	}
	for i, c := range o.counts {
		b.counts[i] += c
	}
	b.n += o.n
	return nil
}

// Quantile returns the smallest edge whose cumulative count covers the
// p-th quantile (p in (0,1)) — an upper bound on the exact order statistic
// quantized to the bucket edges. Observations in the final open bucket
// clamp to the last edge; an empty counter reports 0.
func (b *BucketCounts) Quantile(p float64) float64 {
	if b.n == 0 || len(b.edges) == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(b.n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range b.counts[:len(b.edges)] {
		cum += c
		if cum >= rank {
			return b.edges[i]
		}
	}
	return b.edges[len(b.edges)-1]
}

// N returns the number of observations.
func (b *BucketCounts) N() int64 { return b.n }

// Counts returns a copy of the per-bucket counts: one entry per edge
// (observations <= that edge and above the previous) plus the final open
// bucket.
func (b *BucketCounts) Counts() []int64 {
	return append([]int64(nil), b.counts...)
}

// Edges returns the bucket edges the counter was built over.
func (b *BucketCounts) Edges() []float64 { return b.edges }

// CDF returns the cumulative fraction at or below each edge plus the final
// open-bucket 1.0 entry, in the same shape Sample.CDF returns.
func (b *BucketCounts) CDF() []float64 {
	out := make([]float64, len(b.edges)+1)
	if b.n == 0 {
		return out
	}
	var cum int64
	for i, c := range b.counts[:len(b.edges)] {
		cum += c
		out[i] = float64(cum) / float64(b.n)
	}
	out[len(b.edges)] = 1
	return out
}
