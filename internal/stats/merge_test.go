package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestRunningMerge(t *testing.T) {
	var whole, a, b Running
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 50
		whole.AddMillis(x)
		if i < 200 {
			a.AddMillis(x)
		} else {
			b.AddMillis(x)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if a.Max() != whole.Max() {
		t.Fatalf("merged max = %v, want %v", a.Max(), whole.Max())
	}
	// The merged sum is one extra float64 addition, so compare within a
	// few ulps rather than bit-exactly.
	if math.Abs(a.Sum()-whole.Sum()) > 1e-9*whole.Sum() {
		t.Fatalf("merged sum = %v, want %v", a.Sum(), whole.Sum())
	}

	// Merging an empty or nil accumulator is a no-op.
	before := a
	a.Merge(nil)
	a.Merge(&Running{})
	if a != before {
		t.Fatal("empty merge changed the accumulator")
	}
}

func TestBucketCountsMergeExact(t *testing.T) {
	edges := []float64{1, 2, 4, 8}
	whole := NewBucketCounts(edges)
	a := NewBucketCounts(edges)
	b := NewBucketCounts(edges)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		x := rng.Float64() * 12
		whole.AddMillis(x)
		if i%2 == 0 {
			a.AddMillis(x)
		} else {
			b.AddMillis(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	wc, ac := whole.Counts(), a.Counts()
	for i := range wc {
		if ac[i] != wc[i] {
			t.Fatalf("bucket %d: merged %d, want %d", i, ac[i], wc[i])
		}
	}
}

func TestBucketCountsMergeRejectsMismatchedEdges(t *testing.T) {
	a := NewBucketCounts([]float64{1, 2})
	a.AddMillis(1)
	b := NewBucketCounts([]float64{1, 3})
	b.AddMillis(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("mismatched edges should refuse to merge")
	}
	c := NewBucketCounts([]float64{1})
	c.AddMillis(1)
	if err := a.Merge(c); err == nil {
		t.Fatal("mismatched edge counts should refuse to merge")
	}
	// Empty merges are fine regardless of shape.
	if err := a.Merge(NewBucketCounts([]float64{9})); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketCountsQuantile(t *testing.T) {
	b := NewBucketCounts([]float64{1, 2, 4, 8})
	if b.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	// 10 observations: 5 in <=1, 3 in <=2, 2 in <=4.
	for i := 0; i < 5; i++ {
		b.AddMillis(0.5)
	}
	for i := 0; i < 3; i++ {
		b.AddMillis(1.5)
	}
	for i := 0; i < 2; i++ {
		b.AddMillis(3)
	}
	if got := b.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %v, want 1", got)
	}
	if got := b.Quantile(0.8); got != 2 {
		t.Fatalf("p80 = %v, want 2", got)
	}
	if got := b.Quantile(0.99); got != 4 {
		t.Fatalf("p99 = %v, want 4", got)
	}
	// Open-bucket observations clamp to the last edge.
	b.AddMillis(100)
	if got := b.Quantile(0.999); got != 8 {
		t.Fatalf("open-bucket quantile = %v, want last edge 8", got)
	}
}
