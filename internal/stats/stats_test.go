package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestMeanAndN(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.N() != 0 {
		t.Error("empty sample should have zero mean and count")
	}
	s.Add(10 * time.Millisecond)
	s.Add(20 * time.Millisecond)
	s.AddMillis(30)
	if s.N() != 3 {
		t.Errorf("N = %d", s.N())
	}
	if got := s.Mean(); math.Abs(got-20) > 1e-9 {
		t.Errorf("mean = %v, want 20", got)
	}
	if got := s.Max(); got != 30 {
		t.Errorf("max = %v, want 30", got)
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.AddMillis(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 1}, {50, 50}, {95, 95}, {100, 100},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(vals []float64) bool {
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.AddMillis(math.Abs(v))
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			cur := s.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 4, 6, 30, 250} {
		s.AddMillis(v)
	}
	cdf := s.CDF([]float64{5, 10, 20, 40})
	want := []float64{0.4, 0.6, 0.6, 0.8, 1.0}
	for i := range want {
		if math.Abs(cdf[i]-want[i]) > 1e-9 {
			t.Errorf("cdf[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
}

func TestCDFBoundaryInclusive(t *testing.T) {
	var s Sample
	s.AddMillis(5)
	cdf := s.CDF([]float64{5})
	if cdf[0] != 1 {
		t.Errorf("value exactly on the edge should count: %v", cdf[0])
	}
}

func TestCDFEmpty(t *testing.T) {
	var s Sample
	cdf := s.Figure4CDF()
	for i, v := range cdf {
		if v != 0 {
			t.Errorf("empty CDF[%d] = %v", i, v)
		}
	}
	if len(cdf) != len(Figure4Buckets)+1 {
		t.Errorf("CDF has %d entries, want %d", len(cdf), len(Figure4Buckets)+1)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		var s Sample
		for _, v := range vals {
			s.AddMillis(float64(v) / 100)
		}
		if s.N() == 0 {
			return true
		}
		cdf := s.Figure4CDF()
		prev := 0.0
		for _, v := range cdf {
			if v < prev || v > 1 {
				return false
			}
			prev = v
		}
		return cdf[len(cdf)-1] == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(100, 50); got != 0.5 {
		t.Errorf("Improvement(100,50) = %v", got)
	}
	if got := Improvement(0, 50); got != 0 {
		t.Errorf("Improvement(0,50) = %v", got)
	}
	if got := Improvement(50, 100); got != -1 {
		t.Errorf("Improvement(50,100) = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 6, 6, 15, 300} {
		s.AddMillis(v)
	}
	h := s.Histogram([]float64{5, 10, 20})
	want := []int{1, 2, 1, 1}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("hist[%d] = %d, want %d", i, h[i], want[i])
		}
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != s.N() {
		t.Errorf("histogram total %d != N %d", total, s.N())
	}
}

func TestFormatCDFRow(t *testing.T) {
	row := FormatCDFRow("label", []float64{0.5, 1})
	if row == "" || len(row) < 14 {
		t.Errorf("bad row %q", row)
	}
}

func TestFigure4Buckets(t *testing.T) {
	want := []float64{5, 10, 20, 40, 60, 90, 120, 150, 200}
	if len(Figure4Buckets) != len(want) {
		t.Fatalf("bucket count %d", len(Figure4Buckets))
	}
	for i, v := range want {
		if Figure4Buckets[i] != v {
			t.Errorf("bucket[%d] = %v, want %v", i, Figure4Buckets[i], v)
		}
	}
}
