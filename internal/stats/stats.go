// Package stats provides the response-time statistics the paper's Figure 4
// reports: cumulative distributions over the paper's millisecond buckets and
// summary means/percentiles.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Figure4Buckets are the paper's CDF bucket edges in milliseconds; the final
// bucket is "200+".
var Figure4Buckets = []float64{5, 10, 20, 40, 60, 90, 120, 150, 200}

// Sample accumulates duration observations.
type Sample struct {
	values []float64 // milliseconds
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(d time.Duration) {
	s.values = append(s.values, float64(d)/float64(time.Millisecond))
	s.sorted = false
}

// AddMillis records one observation given in milliseconds.
func (s *Sample) AddMillis(ms float64) {
	s.values = append(s.values, ms)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the mean in milliseconds (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Max returns the largest observation in milliseconds.
func (s *Sample) Max() float64 {
	m := 0.0
	for _, v := range s.values {
		if v > m {
			m = v
		}
	}
	return m
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0..100) in milliseconds using
// nearest-rank on the sorted sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[len(s.values)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s.values))))
	if rank < 1 {
		rank = 1
	}
	return s.values[rank-1]
}

// CDF returns the cumulative fraction of observations at or below each bucket
// edge, plus a final 1.0 entry for the open "200+" bucket.
func (s *Sample) CDF(edges []float64) []float64 {
	s.sort()
	out := make([]float64, len(edges)+1)
	n := float64(len(s.values))
	for i, e := range edges {
		idx := sort.SearchFloat64s(s.values, math.Nextafter(e, math.Inf(1)))
		if n > 0 {
			out[i] = float64(idx) / n
		}
	}
	out[len(edges)] = 1
	if n == 0 {
		out[len(edges)] = 0
	}
	return out
}

// Figure4CDF returns the CDF over the paper's buckets.
func (s *Sample) Figure4CDF() []float64 { return s.CDF(Figure4Buckets) }

// FormatCDFRow renders a CDF as the row a Figure 4 table prints.
func FormatCDFRow(label string, cdf []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", label)
	for _, v := range cdf {
		fmt.Fprintf(&b, " %6.3f", v)
	}
	return b.String()
}

// Improvement returns the relative reduction of b versus a (e.g. mean
// response times): (a-b)/a. Positive means b is better (smaller).
func Improvement(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (a - b) / a
}

// Histogram counts observations per bucket (the last bucket is open-ended).
func (s *Sample) Histogram(edges []float64) []int {
	s.sort()
	out := make([]int, len(edges)+1)
	j := 0
	for _, v := range s.values {
		for j < len(edges) && v > edges[j] {
			j++
		}
		out[j]++
	}
	// Values are sorted, so the walk above assigns each to its first
	// fitting bucket; reset j per value is unnecessary.
	return out
}
