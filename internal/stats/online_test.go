package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestRunningMatchesSample(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s Sample
	var r Running
	for i := 0; i < 10000; i++ {
		ms := rng.ExpFloat64() * 20
		s.AddMillis(ms)
		r.AddMillis(ms)
	}
	// Identical addition order means identical floats, not just close ones.
	if r.Mean() != s.Mean() {
		t.Fatalf("running mean %v != sample mean %v", r.Mean(), s.Mean())
	}
	if r.Max() != s.Max() {
		t.Fatalf("running max %v != sample max %v", r.Max(), s.Max())
	}
	if r.N() != int64(s.N()) {
		t.Fatalf("running n %d != sample n %d", r.N(), s.N())
	}
}

func TestP2AgainstExactPercentiles(t *testing.T) {
	cases := []struct {
		name string
		gen  func(*rand.Rand) float64
	}{
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() * 15 }},
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() * 100 }},
		{"bimodal", func(r *rand.Rand) float64 {
			if r.Float64() < 0.8 {
				return 5 + r.NormFloat64()
			}
			return 60 + 10*r.NormFloat64()
		}},
	}
	for _, c := range cases {
		for _, q := range []float64{0.5, 0.95, 0.99} {
			rng := rand.New(rand.NewSource(42))
			var s Sample
			est := MustP2(q)
			for i := 0; i < 50000; i++ {
				v := c.gen(rng)
				s.AddMillis(v)
				est.AddMillis(v)
			}
			exact := s.Percentile(q * 100)
			got := est.Value()
			// Accept a few percent of the distribution's scale.
			tol := 0.05*exact + 0.5
			if math.Abs(got-exact) > tol {
				t.Errorf("%s p%v: P2 %.3f vs exact %.3f (tol %.3f)", c.name, q*100, got, exact, tol)
			}
		}
	}
}

func TestP2SmallSamples(t *testing.T) {
	est := MustP2(0.95)
	if est.Value() != 0 {
		t.Fatal("empty estimator should report 0")
	}
	est.AddMillis(3)
	est.AddMillis(1)
	if got := est.Value(); got != 3 {
		t.Fatalf("two-observation p95 = %v, want max 3", got)
	}
	if est.N() != 2 {
		t.Fatalf("n = %d", est.N())
	}
}

func TestP2DurationUnits(t *testing.T) {
	est := MustP2(0.5)
	for i := 0; i < 100; i++ {
		est.Add(10 * time.Millisecond)
	}
	if got := est.Value(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("constant 10ms stream: median %v", got)
	}
}

func TestNewP2Rejects(t *testing.T) {
	for _, q := range []float64{0, 1, -0.1, 1.5} {
		if _, err := NewP2(q); err == nil {
			t.Errorf("NewP2(%v) accepted", q)
		}
	}
}

func TestBucketCountsMatchesSampleCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var s Sample
	b := NewFigure4Counts()
	for i := 0; i < 20000; i++ {
		ms := rng.ExpFloat64() * 40
		s.AddMillis(ms)
		b.AddMillis(ms)
	}
	// Include exact edge hits, which must land in the <=edge bucket.
	for _, e := range Figure4Buckets {
		s.AddMillis(e)
		b.AddMillis(e)
	}
	want := s.Figure4CDF()
	got := b.CDF()
	if len(got) != len(want) {
		t.Fatalf("lengths %d vs %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestBucketCountsEmpty(t *testing.T) {
	b := NewFigure4Counts()
	cdf := b.CDF()
	for i, v := range cdf {
		if v != 0 {
			t.Fatalf("empty CDF[%d] = %v", i, v)
		}
	}
}
