// Package reliability models the temperature-failure relationship the paper
// builds its whole case on: "even a fifteen degree Celsius rise from the
// ambient temperature can double the failure rate of a disk drive"
// (Anderson, Dykes & Riedel, FAST'03 — the paper's reference [2]).
//
// The model is the standard Arrhenius-style acceleration expressed as a
// doubling law: the annualized failure rate doubles for every
// DoublingDelta degrees above the reference temperature. The paper's
// concluding remark — DTM can be used purely to lower operating temperature
// and thereby extend drive life — becomes quantitative here.
package reliability

import (
	"fmt"
	"math"
	"time"

	"repro/internal/units"
)

// Doubling-law constants.
const (
	// DoublingDelta is the temperature rise that doubles the failure rate.
	DoublingDelta units.Celsius = 15

	// ReferenceTemp is the internal air temperature the baseline AFR is
	// quoted at: the paper's thermal envelope, where drives are designed
	// to sit.
	ReferenceTemp units.Celsius = 45.22

	// BaselineAFR is the annualized failure rate at the reference
	// temperature. Enterprise drives of the era quoted ~0.8-1% AFR
	// (1M-1.4M hour MTTF); we use 1%.
	BaselineAFR = 0.01
)

// Model maps operating temperature to failure metrics.
type Model struct {
	// Reference and AFR override the defaults when nonzero.
	Reference units.Celsius
	AFR       float64
	Doubling  units.Celsius
}

// Default returns the doubling-law model at the paper's envelope.
func Default() Model { return Model{} }

func (m Model) reference() units.Celsius {
	if m.Reference == 0 {
		return ReferenceTemp
	}
	return m.Reference
}

func (m Model) baseAFR() float64 {
	if m.AFR == 0 {
		return BaselineAFR
	}
	return m.AFR
}

func (m Model) doubling() units.Celsius {
	if m.Doubling == 0 {
		return DoublingDelta
	}
	return m.Doubling
}

// AccelerationAt returns the failure-rate multiplier at an operating
// temperature relative to the reference (1.0 at the reference; 2.0 at
// reference + 15 C; 0.5 at reference - 15 C).
func (m Model) AccelerationAt(t units.Celsius) float64 {
	return math.Pow(2, float64(t-m.reference())/float64(m.doubling()))
}

// AFRAt returns the annualized failure rate at a steady temperature.
func (m Model) AFRAt(t units.Celsius) float64 {
	return m.baseAFR() * m.AccelerationAt(t)
}

// MTTFAt returns the mean time to failure implied by the exponential model
// at a steady temperature.
func (m Model) MTTFAt(t units.Celsius) time.Duration {
	afr := m.AFRAt(t)
	if afr <= 0 {
		return time.Duration(math.MaxInt64)
	}
	hours := 365.25 * 24 / afr
	return time.Duration(hours * float64(time.Hour))
}

// SurvivalAt returns the probability a drive survives d of continuous
// operation at a steady temperature (exponential failure law).
func (m Model) SurvivalAt(t units.Celsius, d time.Duration) float64 {
	afr := m.AFRAt(t)
	years := d.Hours() / (365.25 * 24)
	return math.Exp(-afr * years)
}

// FailureProb returns the probability a drive fails within d of continuous
// operation at a steady temperature — the per-interval hazard fault
// injectors and rebuild-window (MTTDL-style) risk estimates draw from.
func (m Model) FailureProb(t units.Celsius, d time.Duration) float64 {
	return 1 - m.SurvivalAt(t, d)
}

// Exposure accumulates temperature-weighted operating time so a varying
// thermal profile (e.g. a DTM-controlled run) can be scored.
type Exposure struct {
	m          Model
	weighted   float64 // integral of acceleration dt, seconds
	total      time.Duration
	hottest    units.Celsius
	hasSamples bool
}

// NewExposure starts an accumulator under a model.
func NewExposure(m Model) *Exposure { return &Exposure{m: m} }

// Add records d of operation at temperature t.
func (e *Exposure) Add(t units.Celsius, d time.Duration) {
	if d <= 0 {
		return
	}
	e.weighted += e.m.AccelerationAt(t) * d.Seconds()
	e.total += d
	if !e.hasSamples || t > e.hottest {
		e.hottest = t
	}
	e.hasSamples = true
}

// Merge folds another exposure into e: the two temperature-weighted
// integrals add, as if the profiles had been recorded into one
// accumulator. Fleet-scale reductions use this to score thousands of
// drives without keeping per-drive accumulators alive.
func (e *Exposure) Merge(o *Exposure) {
	if o == nil || !o.hasSamples {
		return
	}
	e.weighted += o.weighted
	e.total += o.total
	if !e.hasSamples || o.hottest > e.hottest {
		e.hottest = o.hottest
	}
	e.hasSamples = true
}

// Total returns the accumulated operating time.
func (e *Exposure) Total() time.Duration { return e.total }

// Hottest returns the highest recorded temperature.
func (e *Exposure) Hottest() units.Celsius { return e.hottest }

// EffectiveAcceleration returns the time-averaged failure-rate multiplier —
// the single steady acceleration that would age the drive equally.
func (e *Exposure) EffectiveAcceleration() float64 {
	if e.total <= 0 {
		return 0
	}
	return e.weighted / e.total.Seconds()
}

// EffectiveTemperature inverts the doubling law on the effective
// acceleration: the steady temperature with the same aging.
func (e *Exposure) EffectiveTemperature() units.Celsius {
	acc := e.EffectiveAcceleration()
	if acc <= 0 {
		return e.m.reference()
	}
	return e.m.reference() + units.Celsius(math.Log2(acc)*float64(e.m.doubling()))
}

// EffectiveAFR returns the annualized failure rate of the profile.
func (e *Exposure) EffectiveAFR() float64 {
	return e.m.baseAFR() * e.EffectiveAcceleration()
}

// LifeExtension compares two thermal profiles: the factor by which profile
// e outlives profile other (ratio of their effective AFRs). >1 means e is
// gentler.
func (e *Exposure) LifeExtension(other *Exposure) (float64, error) {
	a, b := e.EffectiveAFR(), other.EffectiveAFR()
	if a <= 0 || b <= 0 {
		return 0, fmt.Errorf("reliability: empty exposure")
	}
	return b / a, nil
}
