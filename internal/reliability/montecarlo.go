package reliability

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/parallel"
	"repro/internal/units"
)

// Monte Carlo cross-checks of the doubling-law arithmetic. The analytic
// forms (FailureProb, raid.RebuildRisk) are closed-form; the Monte Carlo
// estimator samples exponential drive lifetimes instead, which is what the
// larger what-if studies (correlated failures, staggered rebuilds) will
// grow from. Trials are grouped into fixed-size batches, each batch seeded
// deterministically from (seed, batch index) and the batch tallies reduced
// in batch order — so the estimate is bit-identical at any worker count,
// the same contract the rest of the sweep engine holds.

// mcBatchSize is the fixed number of trials per batch. Fixing it (rather
// than dividing trials by the worker count) is what decouples the random
// streams from the pool size.
const mcBatchSize = 4096

// MCConfig parameterises a Monte Carlo estimate.
type MCConfig struct {
	// Trials is the total number of simulated windows (<= 0 uses 100k).
	Trials int

	// Seed derives every batch's random stream (batch i uses Seed+i).
	Seed int64

	// Workers bounds the batch fan-out (0 = parallel.Default();
	// 1 = sequential).
	Workers int
}

func (c MCConfig) withDefaults() MCConfig {
	if c.Trials <= 0 {
		c.Trials = 100_000
	}
	return c
}

// MCEstimate is a Monte Carlo probability estimate.
type MCEstimate struct {
	Trials   int
	Failures int
}

// Probability returns the estimated failure probability.
func (e MCEstimate) Probability() float64 {
	if e.Trials == 0 {
		return 0
	}
	return float64(e.Failures) / float64(e.Trials)
}

// StdErr returns the binomial standard error of the estimate.
func (e MCEstimate) StdErr() float64 {
	if e.Trials == 0 {
		return 0
	}
	p := e.Probability()
	return math.Sqrt(p * (1 - p) / float64(e.Trials))
}

// MonteCarloGroupFailure estimates the probability that at least one of
// `drives` identical drives fails within `window` of continuous operation
// at steady temperature t — the sampled counterpart of
// 1-SurvivalAt(t,window)^drives, and with drives = survivors the rebuild-
// window risk raid.RebuildRisk computes analytically.
func (m Model) MonteCarloGroupFailure(t units.Celsius, drives int, window time.Duration, cfg MCConfig) MCEstimate {
	cfg = cfg.withDefaults()
	if drives <= 0 || window <= 0 {
		return MCEstimate{Trials: cfg.Trials}
	}
	afr := m.AFRAt(t)
	windowYears := window.Hours() / (365.25 * 24)

	batches := (cfg.Trials + mcBatchSize - 1) / mcBatchSize
	idx := make([]int, batches)
	for i := range idx {
		idx[i] = i
	}
	counts, _ := parallel.Map(cfg.Workers, idx, func(_ int, batch int) (int, error) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(batch)))
		n := mcBatchSize
		if batch == batches-1 {
			n = cfg.Trials - batch*mcBatchSize
		}
		failures := 0
		for trial := 0; trial < n; trial++ {
			for d := 0; d < drives; d++ {
				// Exponential lifetime in years at rate afr.
				if rng.ExpFloat64()/afr < windowYears {
					failures++
					break
				}
			}
		}
		return failures, nil
	})
	total := 0
	for _, c := range counts {
		total += c
	}
	return MCEstimate{Trials: cfg.Trials, Failures: total}
}
