package reliability

import (
	"math"
	"testing"
	"time"

	"repro/internal/units"
)

// TestMonteCarloMatchesAnalytic: the sampled group-failure probability must
// land within a few standard errors of the closed form
// 1-SurvivalAt^drives, both cool and hot (the doubling law is what the
// estimator must reproduce).
func TestMonteCarloMatchesAnalytic(t *testing.T) {
	m := Default()
	for _, c := range []struct {
		temp   float64
		drives int
		window time.Duration
		trials int
	}{
		{float64(ReferenceTemp), 3, 24 * 365 * time.Hour, 200_000}, // a year: visible probability
		{float64(ReferenceTemp) + 15, 3, 24 * 365 * time.Hour, 200_000},
		{float64(ReferenceTemp) + 15, 8, 24 * 90 * time.Hour, 200_000},
	} {
		temp := units.Celsius(c.temp)
		want := 1 - math.Pow(m.SurvivalAt(temp, c.window), float64(c.drives))
		est := m.MonteCarloGroupFailure(temp, c.drives, c.window, MCConfig{Trials: c.trials, Seed: 11})
		se := est.StdErr()
		if se == 0 {
			t.Fatalf("degenerate estimate %+v", est)
		}
		if d := math.Abs(est.Probability() - want); d > 5*se {
			t.Errorf("temp %.1f drives %d: MC %.5f vs analytic %.5f (%.1f sigma)",
				c.temp, c.drives, est.Probability(), want, d/se)
		}
	}
}

// TestMonteCarloWorkerIndependence: the batch decomposition fixes the
// random streams, so the tally is bit-identical at any worker count.
func TestMonteCarloWorkerIndependence(t *testing.T) {
	m := Default()
	window := 24 * 180 * time.Hour
	base := m.MonteCarloGroupFailure(ReferenceTemp+10, 4, window, MCConfig{Trials: 50_000, Seed: 7, Workers: 1})
	for _, w := range []int{2, 4, 16} {
		got := m.MonteCarloGroupFailure(ReferenceTemp+10, 4, window, MCConfig{Trials: 50_000, Seed: 7, Workers: w})
		if got != base {
			t.Errorf("workers=%d: %+v != workers=1 %+v", w, got, base)
		}
	}
}

// TestMonteCarloDegenerate: empty windows and zero drives cannot fail.
func TestMonteCarloDegenerate(t *testing.T) {
	m := Default()
	if est := m.MonteCarloGroupFailure(ReferenceTemp, 0, time.Hour, MCConfig{Trials: 100}); est.Failures != 0 {
		t.Errorf("0 drives produced failures: %+v", est)
	}
	if est := m.MonteCarloGroupFailure(ReferenceTemp, 3, 0, MCConfig{Trials: 100}); est.Failures != 0 {
		t.Errorf("0 window produced failures: %+v", est)
	}
}
