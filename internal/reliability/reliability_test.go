package reliability

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

func TestDoublingLaw(t *testing.T) {
	m := Default()
	if got := m.AccelerationAt(ReferenceTemp); math.Abs(got-1) > 1e-12 {
		t.Errorf("acceleration at reference = %v, want 1", got)
	}
	// The paper's headline: +15 C doubles the failure rate.
	if got := m.AccelerationAt(ReferenceTemp + 15); math.Abs(got-2) > 1e-12 {
		t.Errorf("acceleration at +15 C = %v, want 2", got)
	}
	if got := m.AccelerationAt(ReferenceTemp - 15); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("acceleration at -15 C = %v, want 0.5", got)
	}
	if got := m.AccelerationAt(ReferenceTemp + 30); math.Abs(got-4) > 1e-12 {
		t.Errorf("acceleration at +30 C = %v, want 4", got)
	}
}

func TestAFRAndMTTF(t *testing.T) {
	m := Default()
	if got := m.AFRAt(ReferenceTemp); got != BaselineAFR {
		t.Errorf("baseline AFR = %v", got)
	}
	// 1% AFR ~ 876k hour MTTF.
	mttf := m.MTTFAt(ReferenceTemp)
	hours := mttf.Hours()
	if math.Abs(hours-876600)/876600 > 0.001 {
		t.Errorf("MTTF = %.0f h, want ~876,600", hours)
	}
	// Hotter halves it.
	if hot := m.MTTFAt(ReferenceTemp + 15); math.Abs(hot.Hours()-hours/2) > 1 {
		t.Errorf("MTTF at +15 C = %.0f h, want half of %.0f", hot.Hours(), hours)
	}
}

func TestSurvival(t *testing.T) {
	m := Default()
	year := time.Duration(365.25 * 24 * float64(time.Hour))
	s := m.SurvivalAt(ReferenceTemp, year)
	want := math.Exp(-BaselineAFR)
	if math.Abs(s-want) > 1e-9 {
		t.Errorf("1-year survival = %v, want %v", s, want)
	}
	if m.SurvivalAt(ReferenceTemp, 0) != 1 {
		t.Error("zero-duration survival should be 1")
	}
	if hot := m.SurvivalAt(ReferenceTemp+30, year); hot >= s {
		t.Error("hotter drives must fail more")
	}
}

func TestModelOverrides(t *testing.T) {
	m := Model{Reference: 40, AFR: 0.02, Doubling: 10}
	if got := m.AFRAt(50); math.Abs(got-0.04) > 1e-12 {
		t.Errorf("overridden AFR at +10 = %v, want 0.04", got)
	}
}

func TestAccelerationMonotone(t *testing.T) {
	m := Default()
	f := func(a, b int16) bool {
		ta := units.Celsius(float64(a) / 100)
		tb := units.Celsius(float64(b) / 100)
		if ta > tb {
			ta, tb = tb, ta
		}
		return m.AccelerationAt(ta) <= m.AccelerationAt(tb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExposureSteadyMatchesModel(t *testing.T) {
	m := Default()
	e := NewExposure(m)
	e.Add(ReferenceTemp+15, time.Hour)
	if got := e.EffectiveAcceleration(); math.Abs(got-2) > 1e-9 {
		t.Errorf("steady exposure acceleration = %v, want 2", got)
	}
	if got := e.EffectiveTemperature(); math.Abs(float64(got-(ReferenceTemp+15))) > 1e-6 {
		t.Errorf("effective temperature = %v, want %v", got, ReferenceTemp+15)
	}
	if e.Hottest() != ReferenceTemp+15 {
		t.Errorf("hottest = %v", e.Hottest())
	}
	if e.Total() != time.Hour {
		t.Errorf("total = %v", e.Total())
	}
}

func TestExposureMixesProfiles(t *testing.T) {
	m := Default()
	e := NewExposure(m)
	// Half the time at +15 (x2), half at -15 (x0.5): mean 1.25.
	e.Add(ReferenceTemp+15, time.Hour)
	e.Add(ReferenceTemp-15, time.Hour)
	if got := e.EffectiveAcceleration(); math.Abs(got-1.25) > 1e-9 {
		t.Errorf("mixed acceleration = %v, want 1.25", got)
	}
	// The effective temperature exceeds the arithmetic mean (convexity).
	if got := e.EffectiveTemperature(); got <= ReferenceTemp {
		t.Errorf("effective temperature %v should exceed the mean %v", got, ReferenceTemp)
	}
}

func TestExposureIgnoresNonPositiveDurations(t *testing.T) {
	e := NewExposure(Default())
	e.Add(50, -time.Second)
	e.Add(50, 0)
	if e.Total() != 0 || e.EffectiveAcceleration() != 0 {
		t.Error("non-positive durations should be ignored")
	}
}

func TestLifeExtension(t *testing.T) {
	m := Default()
	cool := NewExposure(m)
	cool.Add(ReferenceTemp-15, time.Hour)
	hot := NewExposure(m)
	hot.Add(ReferenceTemp, time.Hour)
	ext, err := cool.LifeExtension(hot)
	if err != nil {
		t.Fatal(err)
	}
	// 15 C cooler -> half the AFR -> 2x the life. The paper's closing
	// argument for DTM-for-reliability.
	if math.Abs(ext-2) > 1e-9 {
		t.Errorf("life extension = %v, want 2", ext)
	}
	if _, err := cool.LifeExtension(NewExposure(m)); err == nil {
		t.Error("empty exposure should error")
	}
}

func TestExposureMerge(t *testing.T) {
	m := Default()
	whole := NewExposure(m)
	a := NewExposure(m)
	b := NewExposure(m)
	profile := []struct {
		temp units.Celsius
		d    time.Duration
	}{
		{40, time.Hour}, {50, 30 * time.Minute}, {45.22, 2 * time.Hour}, {60, 5 * time.Minute},
	}
	for i, p := range profile {
		whole.Add(p.temp, p.d)
		if i < 2 {
			a.Add(p.temp, p.d)
		} else {
			b.Add(p.temp, p.d)
		}
	}
	a.Merge(b)
	if a.Total() != whole.Total() {
		t.Fatalf("merged total %v, want %v", a.Total(), whole.Total())
	}
	if a.Hottest() != whole.Hottest() {
		t.Fatalf("merged hottest %v, want %v", a.Hottest(), whole.Hottest())
	}
	if got, want := a.EffectiveAFR(), whole.EffectiveAFR(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("merged effective AFR %v, want %v", got, want)
	}
	// Merging empties is a no-op.
	before := *a
	a.Merge(nil)
	a.Merge(NewExposure(m))
	if *a != before {
		t.Fatal("empty merge changed the exposure")
	}
}
