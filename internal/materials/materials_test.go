package materials

import (
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func cel(f float64) units.Celsius { return units.Celsius(f) }

func TestAluminumProperties(t *testing.T) {
	if Aluminum.Density != 2700 {
		t.Errorf("aluminum density = %v", Aluminum.Density)
	}
	if Aluminum.SpecificHeat != 896 {
		t.Errorf("aluminum cp = %v", Aluminum.SpecificHeat)
	}
	if Aluminum.Conductivity < 100 || Aluminum.Conductivity > 250 {
		t.Errorf("aluminum conductivity = %v outside sane range", Aluminum.Conductivity)
	}
}

func TestAirAtTabulatedPoints(t *testing.T) {
	a := AirAt(20)
	if a.Density != 1.205 {
		t.Errorf("air density at 20 C = %v, want 1.205", a.Density)
	}
	a = AirAt(200)
	if a.KinematicViscosity != 3.49e-5 {
		t.Errorf("air viscosity at 200 C = %v, want 3.49e-5", a.KinematicViscosity)
	}
}

func TestAirAtInterpolates(t *testing.T) {
	a30 := AirAt(30)
	a20, a40 := AirAt(20), AirAt(40)
	mid := (a20.Density + a40.Density) / 2
	if a30.Density != mid {
		t.Errorf("interpolated density at 30 C = %v, want %v", a30.Density, mid)
	}
}

func TestAirAtClamps(t *testing.T) {
	if lo := AirAt(-40); lo != AirAt(0) {
		t.Error("below-range temperature should clamp to 0 C properties")
	}
	if hi := AirAt(1000); hi != AirAt(600) {
		t.Error("above-range temperature should clamp to 600 C properties")
	}
}

func TestAirMonotonicity(t *testing.T) {
	// Density falls with temperature; viscosity rises.
	f := func(a, b uint16) bool {
		ta := float64(a%600) + 0.5
		tb := float64(b%600) + 0.5
		if ta > tb {
			ta, tb = tb, ta
		}
		pa, pb := AirAt(cel(ta)), AirAt(cel(tb))
		return pa.Density >= pb.Density && pa.KinematicViscosity <= pb.KinematicViscosity
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAirPositivity(t *testing.T) {
	for temp := -20.0; temp <= 700; temp += 7.3 {
		a := AirAt(cel(temp))
		if a.Density <= 0 || a.SpecificHeat <= 0 || a.Conductivity <= 0 ||
			a.KinematicViscosity <= 0 || a.Prandtl <= 0 {
			t.Fatalf("non-positive air property at %.1f C: %+v", temp, a)
		}
	}
}
