// Package materials provides the thermophysical properties used by the
// thermal model: the aluminium alloy the platters, spindle hub, arms and
// castings are made of, and the air sealed inside the drive enclosure.
//
// The paper (section 3.3) states that platters are an Al-Mg alloy and the
// castings aluminium, and that — the exact alloys being proprietary — it
// assumes plain aluminium throughout. We do the same. Air properties carry a
// mild temperature dependence because the internal air in the later roadmap
// years runs far above ambient, where constant-property air would
// overestimate viscous losses.
package materials

import "repro/internal/units"

// Solid describes a solid material.
type Solid struct {
	Name string

	// Density in kg/m^3.
	Density float64

	// SpecificHeat in J/(kg K).
	SpecificHeat float64

	// Conductivity in W/(m K).
	Conductivity float64
}

// Aluminum is the alloy assumed for platters, hub, arms, base and cover.
// Values are for Al 6061 at room temperature.
var Aluminum = Solid{
	Name:         "aluminum",
	Density:      2700,
	SpecificHeat: 896,
	Conductivity: 167,
}

// Steel is used for the spindle shaft and pivot bearing; it appears only in
// the conduction paths between the rotating stack and the base casting.
var Steel = Solid{
	Name:         "steel",
	Density:      7850,
	SpecificHeat: 490,
	Conductivity: 45,
}

// Air bundles the properties of the drive's internal air at a given
// temperature. All values are at atmospheric pressure.
type Air struct {
	// Density in kg/m^3.
	Density float64
	// SpecificHeat in J/(kg K).
	SpecificHeat float64
	// Conductivity in W/(m K).
	Conductivity float64
	// KinematicViscosity in m^2/s.
	KinematicViscosity float64
	// Prandtl number (dimensionless).
	Prandtl float64
}

// AirAt returns air properties at temperature t. Between the tabulated
// points (0..600 C) it interpolates linearly; outside it clamps. The table is
// the standard dry-air property table.
func AirAt(t units.Celsius) Air {
	pts := airTable
	x := float64(t)
	if x <= pts[0].t {
		return pts[0].a
	}
	for i := 1; i < len(pts); i++ {
		if x <= pts[i].t {
			lo, hi := pts[i-1], pts[i]
			f := (x - lo.t) / (hi.t - lo.t)
			return Air{
				Density:            lerp(lo.a.Density, hi.a.Density, f),
				SpecificHeat:       lerp(lo.a.SpecificHeat, hi.a.SpecificHeat, f),
				Conductivity:       lerp(lo.a.Conductivity, hi.a.Conductivity, f),
				KinematicViscosity: lerp(lo.a.KinematicViscosity, hi.a.KinematicViscosity, f),
				Prandtl:            lerp(lo.a.Prandtl, hi.a.Prandtl, f),
			}
		}
	}
	return pts[len(pts)-1].a
}

func lerp(a, b, f float64) float64 { return a + (b-a)*f }

var airTable = []struct {
	t float64
	a Air
}{
	{0, Air{1.293, 1005, 0.0243, 1.33e-5, 0.715}},
	{20, Air{1.205, 1005, 0.0257, 1.51e-5, 0.713}},
	{40, Air{1.127, 1005, 0.0271, 1.70e-5, 0.711}},
	{60, Air{1.067, 1009, 0.0285, 1.89e-5, 0.709}},
	{100, Air{0.946, 1009, 0.0314, 2.31e-5, 0.704}},
	{200, Air{0.746, 1026, 0.0386, 3.49e-5, 0.695}},
	{400, Air{0.524, 1068, 0.0515, 6.30e-5, 0.689}},
	{600, Air{0.404, 1114, 0.0622, 9.66e-5, 0.690}},
}
