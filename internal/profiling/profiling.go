// Package profiling wires the standard runtime/pprof flags into the
// command-line tools, so any sweep can be inspected with `go tool pprof`.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile into cpuPath (empty = off) and returns a stop
// function that ends the CPU profile and snapshots the heap into memPath
// (empty = off). Call stop once, after the measured work:
//
//	stop, err := profiling.Start(*cpuprofile, *memprofile)
//	if err != nil { ... }
//	... run the sweep ...
//	if err := stop(); err != nil { ... }
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath == "" {
			return nil
		}
		f, err := os.Create(memPath)
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		// An up-to-date heap picture needs a collection first.
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("profiling: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		return nil
	}, nil
}
