package scaling

import (
	"math"
	"testing"

	"repro/internal/geometry"
	"repro/internal/units"
)

// These tests pin the roadmap at the extreme grid points the surrogate
// trainer uses as interpolation corners: the earliest and latest roadmap
// years, the smallest and largest platter sizes, every enclosure form
// factor and the platter-count extremes. Interpolation is only as sound
// as its corners — a NaN, an infinity or a broken monotonicity at a
// corner silently poisons every query inside the hull.

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// checkPoint requires every numeric field of a roadmap point to be finite
// and physically sensible.
func checkPoint(t *testing.T, p Point) {
	t.Helper()
	fields := map[string]float64{
		"BPI":          float64(p.BPI),
		"TPI":          float64(p.TPI),
		"TargetIDR":    float64(p.TargetIDR),
		"IDRDensity":   float64(p.IDRDensity),
		"RequiredRPM":  float64(p.RequiredRPM),
		"RequiredTemp": float64(p.RequiredTemp),
		"Capacity":     float64(p.Capacity),
	}
	for name, v := range fields {
		if !finite(v) || v <= 0 {
			t.Errorf("%d/%v: %s = %v, want finite and positive", p.Year, p.Size, name, v)
		}
	}
	// MaxRPM (and with it MaxIDR) may be exactly zero: a platter crammed
	// into a hot enclosure can have no spindle speed inside the envelope.
	// That is the model saying "unbuildable", and it must say it
	// coherently — both zero together, never NaN, and never on target.
	if !finite(float64(p.MaxRPM)) || p.MaxRPM < 0 || !finite(float64(p.MaxIDR)) || p.MaxIDR < 0 {
		t.Errorf("%d/%v: MaxRPM %v / MaxIDR %v, want finite and non-negative", p.Year, p.Size, p.MaxRPM, p.MaxIDR)
	}
	if (p.MaxRPM == 0) != (p.MaxIDR == 0) {
		t.Errorf("%d/%v: MaxRPM %v and MaxIDR %v disagree about buildability", p.Year, p.Size, p.MaxRPM, p.MaxIDR)
	}
	if p.MaxRPM == 0 && p.MeetsTarget {
		t.Errorf("%d/%v: no envelope speed yet MeetsTarget", p.Year, p.Size)
	}
	// RequiredTemp is the "thermal consequences be damned" extrapolation
	// and legitimately reaches four digits by 2012; it only has to stay
	// finite and above ambient.
	if p.RequiredTemp < 20 {
		t.Errorf("%d/%v: RequiredTemp %v below ambient", p.Year, p.Size, p.RequiredTemp)
	}
}

// TestRoadmapCornersFiniteAllFormFactors sweeps the full year span at the
// size extremes for each enclosure and both platter-count extremes that
// enclosure accepts.
func TestRoadmapCornersFiniteAllFormFactors(t *testing.T) {
	cases := []struct {
		name     string
		ff       geometry.FormFactor
		sizes    []units.Inches
		platters []int
	}{
		{"3.5-inch", geometry.FormFactor35, []units.Inches{1.6, 2.6}, []int{1, 4}},
		{"2.5-inch", geometry.FormFactor25, []units.Inches{1.6, 2.1}, []int{1, 2}},
		{"3.5-inch-tall", geometry.FormFactor35Tall, []units.Inches{1.6, 2.6}, []int{1, 4}},
	}
	for _, tc := range cases {
		for _, platters := range tc.platters {
			pts, err := Roadmap(Config{
				FirstYear:    2002,
				LastYear:     2012,
				PlatterSizes: tc.sizes,
				Platters:     platters,
				FormFactor:   tc.ff,
			})
			if err != nil {
				t.Fatalf("%s platters=%d: %v", tc.name, platters, err)
			}
			if want := len(tc.sizes) * 11; len(pts) != want {
				t.Fatalf("%s platters=%d: %d points, want %d", tc.name, platters, len(pts), want)
			}
			for _, p := range pts {
				checkPoint(t, p)
			}
		}
	}
}

// TestRoadmapCornerMonotonicity pins the expected orderings along the year
// axis for a fixed platter size: the IDR target and the densities grow
// every year; the required RPM and its temperature grow with them; the
// envelope speed is a property of the geometry alone and never moves. The
// IDR-density and capacity columns grow everywhere except across the 2010
// terabit transition, where the ECC share jumps from 10% to 35% and the
// paper's model legitimately dips — a corner the surrogate grid must
// represent, not smooth over.
func TestRoadmapCornerMonotonicity(t *testing.T) {
	pts, err := Roadmap(Config{
		FirstYear:    2002,
		LastYear:     2012,
		PlatterSizes: []units.Inches{2.6},
		Platters:     1,
		FormFactor:   geometry.FormFactor35,
	})
	if err != nil {
		t.Fatal(err)
	}
	terabit := DefaultTrend().TerabitYear()
	if terabit != 2010 {
		t.Fatalf("terabit year = %d, want 2010", terabit)
	}
	for i := 1; i < len(pts); i++ {
		prev, cur := pts[i-1], pts[i]
		if cur.TargetIDR <= prev.TargetIDR {
			t.Errorf("TargetIDR not increasing %d→%d: %v → %v", prev.Year, cur.Year, prev.TargetIDR, cur.TargetIDR)
		}
		if cur.BPI <= prev.BPI || cur.TPI <= prev.TPI {
			t.Errorf("densities not increasing %d→%d", prev.Year, cur.Year)
		}
		if cur.RequiredRPM <= prev.RequiredRPM {
			t.Errorf("RequiredRPM not increasing %d→%d: %v → %v", prev.Year, cur.Year, prev.RequiredRPM, cur.RequiredRPM)
		}
		if cur.RequiredTemp <= prev.RequiredTemp {
			t.Errorf("RequiredTemp not increasing %d→%d: %v → %v", prev.Year, cur.Year, prev.RequiredTemp, cur.RequiredTemp)
		}
		if cur.MaxRPM != prev.MaxRPM {
			t.Errorf("MaxRPM moved %d→%d: %v → %v (envelope is year-independent)", prev.Year, cur.Year, prev.MaxRPM, cur.MaxRPM)
		}
		atTerabit := cur.Year == terabit
		if !atTerabit && cur.IDRDensity <= prev.IDRDensity {
			t.Errorf("IDRDensity not increasing %d→%d: %v → %v", prev.Year, cur.Year, prev.IDRDensity, cur.IDRDensity)
		}
		if !atTerabit && cur.Capacity <= prev.Capacity {
			t.Errorf("Capacity not increasing %d→%d", prev.Year, cur.Year)
		}
	}
	// The ECC dip itself: 2010 loses IDR density relative to 2009 even
	// though the raw recording densities grew.
	var y2009, y2010 Point
	for _, p := range pts {
		switch p.Year {
		case 2009:
			y2009 = p
		case 2010:
			y2010 = p
		}
	}
	if y2010.IDRDensity >= y2009.IDRDensity {
		t.Errorf("terabit ECC dip missing: IDRDensity 2009 %v, 2010 %v (35%% ECC share should dip it)",
			y2009.IDRDensity, y2010.IDRDensity)
	}
}

// TestRoadmapCornerRPMSizeOrdering: at any year, a smaller platter clears
// a higher envelope speed (less windage) but needs more RPM to hit the
// same target — both orderings the surrogate's hardware axis leans on.
func TestRoadmapCornerRPMSizeOrdering(t *testing.T) {
	pts, err := Roadmap(Config{
		FirstYear:    2002,
		LastYear:     2012,
		PlatterSizes: []units.Inches{2.6, 1.6},
		Platters:     1,
		FormFactor:   geometry.FormFactor35,
	})
	if err != nil {
		t.Fatal(err)
	}
	byYear := ByYearSize(pts)
	for year, sizes := range byYear {
		big, small := sizes[2.6], sizes[1.6]
		if small.MaxRPM <= big.MaxRPM {
			t.Errorf("%d: 1.6\" envelope RPM %v not above 2.6\" %v", year, small.MaxRPM, big.MaxRPM)
		}
		if small.RequiredRPM <= big.RequiredRPM {
			t.Errorf("%d: 1.6\" required RPM %v not above 2.6\" %v", year, small.RequiredRPM, big.RequiredRPM)
		}
	}
}
