package scaling

import (
	"fmt"
	"sync"

	"repro/internal/capacity"
	"repro/internal/geometry"
	"repro/internal/parallel"
	"repro/internal/perf"
	"repro/internal/thermal"
	"repro/internal/units"
)

// DesignWalk executes the paper's section 4 methodology literally, year by
// year, as a drive designer would:
//
//  1. carry last year's configuration forward with the new densities; if the
//     density growth alone meets the IDR target, done;
//  2. otherwise raise the RPM to the target — if the thermal envelope still
//     holds, done;
//  3. otherwise shrink the platter (the smaller size needs a higher RPM for
//     the same IDR but dissipates far less);
//  4. shrinking costs capacity; when the capacity falls below what the
//     previous year shipped, add a platter and re-run the checks.
//
// The walk stops changing the design once no configuration meets the target
// (the roadmap's falloff); from then on it ships the fastest envelope-legal
// configuration.
type WalkStep struct {
	Year     int
	Size     units.Inches
	Platters int
	RPM      units.RPM
	IDR      units.MBPerSec
	Capacity units.Bytes

	// MeetsTarget reports whether the year's 40% CGR goal was achieved.
	MeetsTarget bool

	// CoolingBudget is the extra cooling (ambient reduction) bought when a
	// platter was added — the paper: adding platters "increase[s] the
	// cooling requirements for the product".
	CoolingBudget units.Celsius

	// Action describes what the designer did this year.
	Action string
}

// WalkConfig parameterises the walk.
type WalkConfig struct {
	FirstYear, LastYear int
	// Sizes are the available platter sizes, largest first
	// (default 2.6", 2.1", 1.6").
	Sizes []units.Inches
	// StartSize and StartPlatters seed the first year (defaults 2.6", 1).
	StartSize     units.Inches
	StartPlatters int
	// MaxPlatters bounds step 4 (default 4).
	MaxPlatters int
	// Trend supplies densities (zero value = DefaultTrend()).
	Trend Trend
	// Zones is the ZBR zone count (0 = RoadmapZones).
	Zones int
	// Workers bounds the per-year candidate evaluation fan-out
	// (0 = parallel.Default(); 1 = sequential). The walk itself stays
	// year-sequential — each year's design depends on the last — but the
	// candidate (size, platters) options within a year are independent
	// simulations, and the walk picks the same candidate at any worker
	// count.
	Workers int
}

func (c WalkConfig) withDefaults() WalkConfig {
	if c.FirstYear == 0 {
		c.FirstYear = 2002
	}
	if c.LastYear == 0 {
		c.LastYear = 2012
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []units.Inches{2.6, 2.1, 1.6}
	}
	if c.StartSize == 0 {
		c.StartSize = c.Sizes[0]
	}
	if c.StartPlatters == 0 {
		c.StartPlatters = 1
	}
	if c.MaxPlatters == 0 {
		c.MaxPlatters = 4
	}
	if (c.Trend == Trend{}) {
		c.Trend = DefaultTrend()
	}
	if c.Zones == 0 {
		c.Zones = RoadmapZones
	}
	return c
}

// candidate evaluates one (size, platters) option in one year.
type candidate struct {
	size     units.Inches
	platters int
	layout   *capacity.Layout
	maxRPM   units.RPM
	budget   units.Celsius
}

// DesignWalk runs the methodology and returns one step per year.
func DesignWalk(cfg WalkConfig) ([]WalkStep, error) {
	cfg = cfg.withDefaults()
	if cfg.LastYear < cfg.FirstYear {
		return nil, fmt.Errorf("scaling: year range [%d,%d] inverted", cfg.FirstYear, cfg.LastYear)
	}

	// Envelope speeds depend only on geometry; cache them. The mutex makes
	// the cache safe under the parallel candidate scans (candidates in one
	// batch have distinct geometries, so no work is duplicated).
	var maxRPMMu sync.Mutex
	maxRPM := make(map[geometry.Drive]units.RPM)
	envelopeRPM := func(g geometry.Drive) (units.RPM, error) {
		maxRPMMu.Lock()
		v, ok := maxRPM[g]
		maxRPMMu.Unlock()
		if ok {
			return v, nil
		}
		th, err := thermal.New(g)
		if err != nil {
			return 0, err
		}
		v = th.MaxRPM(thermal.Envelope, 1, thermal.DefaultAmbient)
		maxRPMMu.Lock()
		maxRPM[g] = v
		maxRPMMu.Unlock()
		return v, nil
	}

	// budgets remembers the cooling bought for each platter count, so later
	// years keep the colder ambient once the product line has moved.
	budgets := map[int]units.Celsius{}

	build := func(year int, size units.Inches, platters int) (candidate, error) {
		g := geometry.Drive{PlatterDiameter: size, Platters: platters, FormFactor: geometry.FormFactor35}
		bpi, tpi := cfg.Trend.Densities(year)
		layout, err := capacity.New(capacity.Config{Geometry: g, BPI: bpi, TPI: tpi, Zones: cfg.Zones})
		if err != nil {
			return candidate{}, err
		}
		budget := budgets[platters]
		var rpm units.RPM
		if budget > 0 {
			th, err := thermal.New(g)
			if err != nil {
				return candidate{}, err
			}
			rpm = th.MaxRPM(thermal.Envelope, 1, thermal.DefaultAmbient-budget)
		} else {
			rpm, err = envelopeRPM(g)
			if err != nil {
				return candidate{}, err
			}
		}
		return candidate{size: size, platters: platters, layout: layout, maxRPM: rpm, budget: budget}, nil
	}

	meets := func(c candidate, target units.MBPerSec) bool {
		return float64(perf.IDR(c.layout, c.maxRPM)) >= float64(target)*(1-TargetTolerance)
	}

	sizeIndex := func(s units.Inches) int {
		for i, v := range cfg.Sizes {
			if v == s {
				return i
			}
		}
		return -1
	}

	size, platters := cfg.StartSize, cfg.StartPlatters
	var lastCapacity units.Bytes
	var steps []WalkStep

	for year := cfg.FirstYear; year <= cfg.LastYear; year++ {
		target := TargetIDR(year)
		cur, err := build(year, size, platters)
		if err != nil {
			return nil, err
		}
		action := "density growth alone"
		chosen := cur

		if !meets(cur, target) {
			// Step 3: shrink the platter until the target fits. Every
			// smaller size is evaluated concurrently; the scan then picks
			// the first (largest) size that meets the target, exactly as
			// the sequential walk did.
			action = ""
			idx := sizeIndex(size)
			if idx < 0 {
				return nil, fmt.Errorf("scaling: size %v not in the candidate set", size)
			}
			smaller, err := parallel.Map(cfg.Workers, cfg.Sizes[idx+1:], func(_ int, s units.Inches) (candidate, error) {
				return build(year, s, platters)
			})
			if err != nil {
				return nil, err
			}
			found := false
			for _, cand := range smaller {
				if meets(cand, target) {
					chosen = cand
					action = fmt.Sprintf("shrank platter to %v", cand.size)
					found = true
					break
				}
			}
			// Step 4: recover lost capacity by adding platters, buying the
			// extra cooling the taller stack needs (the paper's "shift into
			// the 2-platter system ... increase the cooling requirements").
			if found && lastCapacity > 0 && chosen.layout.DeratedCapacity() < lastCapacity &&
				chosen.platters < cfg.MaxPlatters {
				grown, err := build(year, chosen.size, chosen.platters+1)
				if err != nil {
					return nil, err
				}
				g := geometry.Drive{
					PlatterDiameter: grown.size,
					Platters:        grown.platters,
					FormFactor:      geometry.FormFactor35,
				}
				needed := perf.RPMForIDR(grown.layout, target)
				extra, err := thermal.CoolingBudget(g, needed)
				if err == nil {
					grown.maxRPM = needed
					grown.budget = extra
					if extra > budgets[grown.platters] {
						budgets[grown.platters] = extra
					}
					chosen = grown
					action += fmt.Sprintf(", added a platter (%d total, %.1f C cooling budget)",
						grown.platters, float64(extra))
				}
			}
			if !found {
				// Falloff: ship the fastest legal configuration among all
				// remaining options (evaluated concurrently, reduced in
				// order so ties resolve identically to the sequential scan).
				best := cur
				cands, err := parallel.Map(cfg.Workers, cfg.Sizes[sizeIndex(size):], func(_ int, s units.Inches) (candidate, error) {
					return build(year, s, platters)
				})
				if err != nil {
					return nil, err
				}
				for _, cand := range cands {
					if perf.IDR(cand.layout, cand.maxRPM) > perf.IDR(best.layout, best.maxRPM) {
						best = cand
					}
				}
				chosen = best
				action = "off the roadmap; shipped fastest legal design"
			}
		} else if size != cfg.StartSize || platters != cfg.StartPlatters {
			action = "carried configuration forward"
		}

		// The shipping RPM is the lower of the envelope limit and what the
		// target needs (manufacturers do not overshoot the target, per the
		// paper's reading of Figure 2).
		shipRPM := chosen.maxRPM
		if need := perf.RPMForIDR(chosen.layout, target); need < shipRPM {
			shipRPM = need
		}
		idr := perf.IDR(chosen.layout, shipRPM)
		cap := chosen.layout.DeratedCapacity()
		steps = append(steps, WalkStep{
			Year:          year,
			Size:          chosen.size,
			Platters:      chosen.platters,
			RPM:           shipRPM,
			IDR:           idr,
			Capacity:      cap,
			MeetsTarget:   float64(idr) >= float64(target)*(1-TargetTolerance),
			CoolingBudget: chosen.budget,
			Action:        action,
		})
		size, platters = chosen.size, chosen.platters
		lastCapacity = cap
	}
	return steps, nil
}
