package scaling

import (
	"fmt"

	"repro/internal/capacity"
	"repro/internal/geometry"
	"repro/internal/parallel"
	"repro/internal/perf"
	"repro/internal/thermal"
	"repro/internal/units"
)

// TargetTolerance is the grace applied when judging whether a configuration
// meets the year's IDR goal. The paper itself judges this way: its 2.6"
// envelope speed (15,020 RPM) is 0.5% short of the 2002 requirement
// (15,098 RPM) yet the 2.6" family is described as falling off only from
// 2003 onwards.
const TargetTolerance = 0.005

// Config parameterises one roadmap run.
type Config struct {
	// FirstYear and LastYear bound the roadmap (inclusive);
	// the paper runs 2002..2012.
	FirstYear, LastYear int

	// PlatterSizes are the candidate media diameters; the paper uses
	// 2.6", 2.1" and 1.6".
	PlatterSizes []units.Inches

	// Platters is the stack height (1, 2 or 4 in the paper).
	Platters int

	// FormFactor selects the enclosure (3.5" except in the form-factor
	// sensitivity study).
	FormFactor geometry.FormFactor

	// Zones is the ZBR zone count (0 = RoadmapZones).
	Zones int

	// Trend projects the densities (zero value = DefaultTrend()).
	Trend Trend

	// AmbientDelta lowers the external air temperature below the default
	// 28 C — the Figure 3 cooling study uses -5 and -10.
	AmbientDelta units.Celsius

	// VCMOff designs against the VCM-off (idle/sequential) thermal profile
	// instead of the worst-case always-seeking one — the Figure 5
	// thermal-slack variant. The default (false) is the paper's
	// envelope design.
	VCMOff bool

	// DisableCoolingBudget turns off the per-platter-count cooling budget
	// the paper grants multi-platter stacks at the 2002 starting point.
	DisableCoolingBudget bool

	// Workers bounds the sweep engine's fan-out over the (size, year) grid
	// (0 = parallel.Default(), i.e. GOMAXPROCS; 1 = sequential). Every
	// worker count produces the identical point list.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.FirstYear == 0 {
		c.FirstYear = 2002
	}
	if c.LastYear == 0 {
		c.LastYear = 2012
	}
	if len(c.PlatterSizes) == 0 {
		c.PlatterSizes = []units.Inches{2.6, 2.1, 1.6}
	}
	if c.Platters == 0 {
		c.Platters = 1
	}
	if c.Zones == 0 {
		c.Zones = RoadmapZones
	}
	if (c.Trend == Trend{}) {
		c.Trend = DefaultTrend()
	}
	return c
}

// Point is one (year, platter size) cell of the roadmap.
type Point struct {
	Year     int
	Size     units.Inches
	Platters int

	// BPI and TPI are the year's projected densities.
	BPI units.BPI
	TPI units.TPI

	// TargetIDR is the 40%-CGR goal for the year.
	TargetIDR units.MBPerSec

	// IDRDensity is the data rate obtainable at the reference RPM with the
	// year's densities alone — the Table 3 "IDR density" column.
	IDRDensity units.MBPerSec

	// RequiredRPM is the speed that would meet TargetIDR, thermal
	// consequences be damned — the Table 3 "RPM" column.
	RequiredRPM units.RPM

	// RequiredTemp is the steady internal-air temperature at RequiredRPM —
	// the Table 3 "Temperature" column.
	RequiredTemp units.Celsius

	// MaxRPM is the highest speed within the thermal envelope.
	MaxRPM units.RPM

	// MaxIDR is the data rate at MaxRPM — the Figure 2 roadmap value.
	MaxIDR units.MBPerSec

	// Capacity is the derated capacity of the year's layout — the
	// Figure 2 capacity roadmap value.
	Capacity units.Bytes

	// MeetsTarget reports whether MaxIDR reaches the year's goal.
	MeetsTarget bool

	// CoolingBudget is the ambient reduction granted to this platter count
	// (0 for single-platter stacks).
	CoolingBudget units.Celsius
}

// sizeEnvelope is the per-platter-size stage 1 result: the geometry's
// thermal model and envelope speed, which every year cell of that size
// shares.
type sizeEnvelope struct {
	geom    geometry.Drive
	th      *thermal.Model
	ambient units.Celsius
	maxRPM  units.RPM
}

// Roadmap computes the full grid of points for a configuration. The
// candidate evaluation fans out over the sweep engine in two stages: first
// one envelope search per platter size (the expensive MaxRPM bisection),
// then the full (size, year) grid of capacity layouts and steady solves.
// Points come back ordered exactly as the sequential loops produced them —
// sizes outermost, years ascending — at any worker count.
func Roadmap(cfg Config) ([]Point, error) {
	cfg = cfg.withDefaults()
	if cfg.LastYear < cfg.FirstYear {
		return nil, fmt.Errorf("scaling: year range [%d,%d] inverted", cfg.FirstYear, cfg.LastYear)
	}

	budget, err := coolingBudget(cfg)
	if err != nil {
		return nil, err
	}

	duty := 1.0
	if cfg.VCMOff {
		duty = 0
	}

	// Stage 1: envelope speed per platter size.
	envs, err := parallel.Map(cfg.Workers, cfg.PlatterSizes, func(_ int, size units.Inches) (sizeEnvelope, error) {
		geom := geometry.Drive{
			PlatterDiameter: size,
			Platters:        cfg.Platters,
			FormFactor:      cfg.FormFactor,
		}
		th, err := thermal.New(geom)
		if err != nil {
			return sizeEnvelope{}, fmt.Errorf("scaling: %v platter: %w", size, err)
		}
		ambient := thermal.DefaultAmbient - budget + cfg.AmbientDelta
		return sizeEnvelope{
			geom:    geom,
			th:      th,
			ambient: ambient,
			maxRPM:  th.MaxRPM(thermal.Envelope, duty, ambient),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	years := make([]int, 0, cfg.LastYear-cfg.FirstYear+1)
	for year := cfg.FirstYear; year <= cfg.LastYear; year++ {
		years = append(years, year)
	}

	// Stage 2: the (size, year) grid. Cells of one size share that size's
	// thermal model; its solve cache is concurrency-safe and verified
	// exact, so concurrent cells stay bit-identical to sequential ones.
	rows, err := parallel.Grid(cfg.Workers, envs, years, func(i, _ int, env sizeEnvelope, year int) (Point, error) {
		size := cfg.PlatterSizes[i]
		bpi, tpi := cfg.Trend.Densities(year)
		layout, err := capacity.New(capacity.Config{
			Geometry: env.geom,
			BPI:      bpi,
			TPI:      tpi,
			Zones:    cfg.Zones,
		})
		if err != nil {
			return Point{}, fmt.Errorf("scaling: year %d size %v: %w", year, size, err)
		}
		target := TargetIDR(year)
		density := perf.IDR(layout, ReferenceRPM)
		required := perf.RPMForIDR(layout, target)
		reqTemp := env.th.SteadyState(thermal.Load{
			RPM:     required,
			VCMDuty: duty,
			Ambient: env.ambient,
		}).Air
		maxIDR := perf.IDR(layout, env.maxRPM)

		return Point{
			Year:          year,
			Size:          size,
			Platters:      cfg.Platters,
			BPI:           bpi,
			TPI:           tpi,
			TargetIDR:     target,
			IDRDensity:    density,
			RequiredRPM:   required,
			RequiredTemp:  reqTemp,
			MaxRPM:        env.maxRPM,
			MaxIDR:        maxIDR,
			Capacity:      layout.DeratedCapacity(),
			MeetsTarget:   float64(maxIDR) >= float64(target)*(1-TargetTolerance),
			CoolingBudget: budget,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	pts := make([]Point, 0, len(envs)*len(years))
	for _, row := range rows {
		pts = append(pts, row...)
	}
	return pts, nil
}

// coolingBudget computes the paper's per-platter-count ambient allowance: the
// reduction that lets the largest platter size run the roadmap's first-year
// required RPM at the envelope. Single-platter stacks need none.
func coolingBudget(cfg Config) (units.Celsius, error) {
	if cfg.DisableCoolingBudget || cfg.Platters <= 1 {
		return 0, nil
	}
	size := cfg.PlatterSizes[0]
	for _, s := range cfg.PlatterSizes[1:] {
		if s > size {
			size = s
		}
	}
	geom := geometry.Drive{
		PlatterDiameter: size,
		Platters:        cfg.Platters,
		FormFactor:      cfg.FormFactor,
	}
	bpi, tpi := cfg.Trend.Densities(cfg.FirstYear)
	layout, err := capacity.New(capacity.Config{Geometry: geom, BPI: bpi, TPI: tpi, Zones: cfg.Zones})
	if err != nil {
		return 0, fmt.Errorf("scaling: cooling budget: %w", err)
	}
	required := perf.RPMForIDR(layout, TargetIDR(cfg.FirstYear))
	return thermal.CoolingBudget(geom, required)
}

// ByYearSize indexes a roadmap by (year, size) for table rendering.
func ByYearSize(pts []Point) map[int]map[units.Inches]Point {
	out := make(map[int]map[units.Inches]Point)
	for _, p := range pts {
		m := out[p.Year]
		if m == nil {
			m = make(map[units.Inches]Point)
			out[p.Year] = m
		}
		m[p.Size] = p
	}
	return out
}

// FalloffYear returns the first year in which no configured platter size
// meets the target IDR, or 0 if every year is met by some size.
func FalloffYear(pts []Point) int {
	met := make(map[int]bool)
	first, last := 1<<30, 0
	for _, p := range pts {
		if p.Year < first {
			first = p.Year
		}
		if p.Year > last {
			last = p.Year
		}
		if p.MeetsTarget {
			met[p.Year] = true
		}
	}
	for y := first; y <= last; y++ {
		if !met[y] {
			return y
		}
	}
	return 0
}

// BestIDR returns, per year, the highest envelope-respecting IDR across the
// configured platter sizes — the upper envelope of the Figure 2 curves.
func BestIDR(pts []Point) map[int]units.MBPerSec {
	out := make(map[int]units.MBPerSec)
	for _, p := range pts {
		if p.MaxIDR > out[p.Year] {
			out[p.Year] = p.MaxIDR
		}
	}
	return out
}
