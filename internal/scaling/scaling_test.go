package scaling

import (
	"math"
	"testing"

	"repro/internal/geometry"
	"repro/internal/thermal"
	"repro/internal/units"
)

func TestTargetIDRAnchors(t *testing.T) {
	// Table 3's IDR_Required column is 47 x 1.4^(y-1999).
	cases := []struct {
		year int
		want float64
	}{
		{1999, 47},
		{2002, 128.97},
		{2005, 353.89},
		{2009, 1359.5},
		{2012, 3730.46},
	}
	for _, c := range cases {
		got := float64(TargetIDR(c.year))
		if math.Abs(got-c.want)/c.want > 0.001 {
			t.Errorf("TargetIDR(%d) = %.2f, want %.2f", c.year, got, c.want)
		}
	}
}

func TestDensitiesSchedule(t *testing.T) {
	tr := DefaultTrend()
	b99, t99 := tr.Densities(1999)
	if b99 != BaseBPI || t99 != BaseTPI {
		t.Errorf("1999 densities = %v/%v", b99, t99)
	}
	// 2002 = base x 1.3^3 / 1.5^3.
	b02, t02 := tr.Densities(2002)
	if math.Abs(float64(b02)-270e3*1.3*1.3*1.3) > 1 {
		t.Errorf("2002 BPI = %v", b02)
	}
	if math.Abs(float64(t02)-20e3*1.5*1.5*1.5) > 1 {
		t.Errorf("2002 TPI = %v", t02)
	}
	// 2004 grows from 2003 at the slow rates.
	b03, t03 := tr.Densities(2003)
	b04, t04 := tr.Densities(2004)
	if math.Abs(float64(b04)/float64(b03)-LateBPIGrowth) > 1e-9 {
		t.Errorf("2004/2003 BPI growth = %v, want %v", float64(b04)/float64(b03), LateBPIGrowth)
	}
	if math.Abs(float64(t04)/float64(t03)-LateTPIGrowth) > 1e-9 {
		t.Errorf("2004/2003 TPI growth = %v, want %v", float64(t04)/float64(t03), LateTPIGrowth)
	}
	// Years before base clamp.
	bPre, _ := tr.Densities(1990)
	if bPre != BaseBPI {
		t.Errorf("pre-base year BPI = %v", bPre)
	}
}

func TestTerabitYear(t *testing.T) {
	if y := DefaultTrend().TerabitYear(); y != 2010 {
		t.Errorf("terabit year = %d, want 2010 (the paper's industry projection)", y)
	}
}

func TestBARFalls(t *testing.T) {
	tr := DefaultTrend()
	prev := math.Inf(1)
	for y := 1999; y <= 2012; y++ {
		bar := tr.BAR(y)
		if bar >= prev {
			t.Fatalf("BAR rose in %d", y)
		}
		prev = bar
	}
	// The paper's 2010 terabit design point has BAR 3.42.
	if bar := tr.BAR(2010); math.Abs(bar-3.42) > 0.15 {
		t.Errorf("BAR(2010) = %.2f, want ~3.42", bar)
	}
}

// TestTable3RPMColumn reproduces the paper's Table 3 "RPM" column for the
// single-platter roadmap within 1%.
func TestTable3RPMColumn(t *testing.T) {
	pts, err := Roadmap(Config{})
	if err != nil {
		t.Fatal(err)
	}
	idx := ByYearSize(pts)
	paper := map[int]map[units.Inches]float64{
		2002: {2.6: 15098, 2.1: 18692, 1.6: 24533},
		2003: {2.6: 16263, 2.1: 20135, 1.6: 26420},
		2004: {2.6: 19972, 2.1: 24728, 1.6: 32455},
		2005: {2.6: 24534, 2.1: 30367, 1.6: 39857},
		2006: {2.6: 30130, 2.1: 37303, 1.6: 48947},
		2007: {2.6: 37001, 2.1: 45811, 1.6: 60127},
		2008: {2.6: 45452, 2.1: 56259, 1.6: 73840},
		2009: {2.6: 55819, 2.1: 69109, 1.6: 90680},
		2010: {2.6: 95094, 2.1: 117735, 1.6: 154527},
		2011: {2.6: 116826, 2.1: 144586, 1.6: 189769},
		2012: {2.6: 143470, 2.1: 177629, 1.6: 233050},
	}
	for year, row := range paper {
		for size, want := range row {
			got := float64(idx[year][size].RequiredRPM)
			if math.Abs(got-want)/want > 0.01 {
				t.Errorf("required RPM %d/%v = %.0f, paper %.0f", year, size, got, want)
			}
		}
	}
}

// TestTable3IDRDensityColumn reproduces the "IDR density" column within 1%.
func TestTable3IDRDensityColumn(t *testing.T) {
	pts, err := Roadmap(Config{})
	if err != nil {
		t.Fatal(err)
	}
	idx := ByYearSize(pts)
	paper := map[int]map[units.Inches]float64{
		2002: {2.6: 128.14, 2.1: 103.50, 1.6: 78.86},
		2005: {2.6: 216.37, 2.1: 174.81, 1.6: 133.19},
		2009: {2.6: 365.34, 2.1: 295.08, 1.6: 224.88},
		2010: {2.6: 300.23, 2.1: 242.49, 1.6: 184.75}, // the terabit ECC dip
		2012: {2.6: 390.03, 2.1: 315.02, 1.6: 240.11},
	}
	for year, row := range paper {
		for size, want := range row {
			got := float64(idx[year][size].IDRDensity)
			if math.Abs(got-want)/want > 0.01 {
				t.Errorf("IDR density %d/%v = %.2f, paper %.2f", year, size, got, want)
			}
		}
	}
}

// TestTerabitTransitionDip checks the paper's headline terabit effect: IDR
// density falls from 2009 to 2010 by the 0.65/0.90 ECC factor (x1.14 BPI).
func TestTerabitTransitionDip(t *testing.T) {
	pts, err := Roadmap(Config{})
	if err != nil {
		t.Fatal(err)
	}
	idx := ByYearSize(pts)
	r := float64(idx[2010][2.6].IDRDensity) / float64(idx[2009][2.6].IDRDensity)
	want := 1.14 * (1 - 0.35) / (1 - 0.10)
	if math.Abs(r-want) > 0.01 {
		t.Errorf("2010/2009 IDR density ratio = %.3f, want %.3f", r, want)
	}
}

// TestFigure2CapacityPoints reproduces the capacities the paper quotes for
// the 2005 decision example (section 4.1) within 3%.
func TestFigure2CapacityPoints(t *testing.T) {
	pts, err := Roadmap(Config{})
	if err != nil {
		t.Fatal(err)
	}
	idx := ByYearSize(pts)
	cases := []struct {
		size units.Inches
		want float64
	}{
		{2.6, 93.67},
		{2.1, 61.13},
		{1.6, 35.48},
	}
	for _, c := range cases {
		got := idx[2005][c.size].Capacity.GB()
		if math.Abs(got-c.want)/c.want > 0.03 {
			t.Errorf("2005 %v capacity = %.2f GB, paper %.2f", c.size, got, c.want)
		}
	}
}

// TestFalloffYear1Platter checks the paper's conclusion: the 40% CGR is
// sustainable until 2006 and lost in 2007 for the single-platter family.
func TestFalloffYear1Platter(t *testing.T) {
	pts, err := Roadmap(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if y := FalloffYear(pts); y != 2007 {
		t.Errorf("1-platter falloff year = %d, want 2007", y)
	}
}

// TestFalloff26FallsFirst: the 2.6" size starts missing the target from 2003.
func TestFalloff26FallsFirst(t *testing.T) {
	pts, err := Roadmap(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Size != 2.6 {
			continue
		}
		wantMeet := p.Year <= 2002
		if p.MeetsTarget != wantMeet {
			t.Errorf("2.6\" year %d meets=%v, want %v", p.Year, p.MeetsTarget, wantMeet)
		}
	}
}

func TestMaxRPMOrderingAcrossSizes(t *testing.T) {
	pts, err := Roadmap(Config{})
	if err != nil {
		t.Fatal(err)
	}
	idx := ByYearSize(pts)
	row := idx[2002]
	if !(row[1.6].MaxRPM > row[2.1].MaxRPM && row[2.1].MaxRPM > row[2.6].MaxRPM) {
		t.Errorf("max RPM not ordered by size: %v %v %v",
			row[2.6].MaxRPM, row[2.1].MaxRPM, row[1.6].MaxRPM)
	}
}

func TestCoolingExtendsRoadmap(t *testing.T) {
	base, err := Roadmap(Config{PlatterSizes: []units.Inches{2.6}})
	if err != nil {
		t.Fatal(err)
	}
	cool, err := Roadmap(Config{PlatterSizes: []units.Inches{2.6}, AmbientDelta: -10})
	if err != nil {
		t.Fatal(err)
	}
	bi, ci := ByYearSize(base), ByYearSize(cool)
	for y := 2002; y <= 2012; y++ {
		if ci[y][2.6].MaxIDR <= bi[y][2.6].MaxIDR {
			t.Errorf("year %d: 10 C cooler did not raise max IDR", y)
		}
	}
	// The paper: 2.6" with 5 C cooling meets the target until 2005
	// (baseline only 2002).
	cool5, err := Roadmap(Config{PlatterSizes: []units.Inches{2.6}, AmbientDelta: -5})
	if err != nil {
		t.Fatal(err)
	}
	c5 := ByYearSize(cool5)
	if !c5[2004][2.6].MeetsTarget {
		t.Error("2.6\" with 5 C cooling should still meet the 2004 target")
	}
}

func TestVCMOffSlack(t *testing.T) {
	on, err := Roadmap(Config{PlatterSizes: []units.Inches{2.6}})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Roadmap(Config{PlatterSizes: []units.Inches{2.6}, VCMOff: true})
	if err != nil {
		t.Fatal(err)
	}
	if off[0].MaxRPM <= on[0].MaxRPM {
		t.Errorf("VCM-off max RPM %v not above envelope-design %v", off[0].MaxRPM, on[0].MaxRPM)
	}
}

func TestMultiPlatterCoolingBudget(t *testing.T) {
	four, err := Roadmap(Config{Platters: 4})
	if err != nil {
		t.Fatal(err)
	}
	if four[0].CoolingBudget <= 0 {
		t.Error("4-platter roadmap should carry a positive cooling budget")
	}
	// With the budget, the 4-platter family still starts on the roadmap.
	idx := ByYearSize(four)
	if !idx[2002][2.6].MeetsTarget && !idx[2002][2.1].MeetsTarget && !idx[2002][1.6].MeetsTarget {
		t.Error("4-platter family should meet the 2002 target with its cooling budget")
	}
	// Without it, 2002 is already lost for the 2.6" size.
	bare, err := Roadmap(Config{Platters: 4, DisableCoolingBudget: true})
	if err != nil {
		t.Fatal(err)
	}
	bi := ByYearSize(bare)
	if bi[2002][2.6].MeetsTarget {
		t.Error("un-budgeted 4-platter 2.6\" should miss the 2002 target")
	}
	if bare[0].CoolingBudget != 0 {
		t.Error("disabled budget should be zero")
	}
}

func TestMultiPlatterFallsOffNoLater(t *testing.T) {
	one, err := Roadmap(Config{})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Roadmap(Config{Platters: 4})
	if err != nil {
		t.Fatal(err)
	}
	y1, y4 := FalloffYear(one), FalloffYear(four)
	if y4 > y1 && y1 != 0 {
		t.Errorf("4-platter falloff (%d) later than 1-platter (%d)", y4, y1)
	}
}

// TestFormFactor25FallsOffImmediately reproduces section 4.2.2: a 2.6"
// platter in a 2.5" enclosure misses the roadmap already in 2002, and a much
// more aggressive cooling system (ambient cut by another 15 C) is needed
// before the small enclosure becomes a comparable option.
func TestFormFactor25FallsOffImmediately(t *testing.T) {
	pts, err := Roadmap(Config{
		FormFactor:   geometry.FormFactor25,
		PlatterSizes: []units.Inches{2.6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if y := FalloffYear(pts); y != 2002 {
		t.Errorf("2.5\" form-factor falloff year = %d, want 2002", y)
	}
	// Moderate cooling is not enough...
	mild, err := Roadmap(Config{
		FormFactor:   geometry.FormFactor25,
		PlatterSizes: []units.Inches{2.6},
		AmbientDelta: -10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ByYearSize(mild)[2002][2.6].MeetsTarget {
		t.Error("10 C cooling should not suffice for the 2.5\" enclosure")
	}
	// ...but a much more aggressive system is (the paper quotes ~15 C; our
	// calibration needs ~18 C — same conclusion, the small enclosure only
	// works with a drastically colder ambient).
	cooled, err := Roadmap(Config{
		FormFactor:   geometry.FormFactor25,
		PlatterSizes: []units.Inches{2.6},
		AmbientDelta: -18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ByYearSize(cooled)[2002][2.6].MeetsTarget {
		t.Error("18 C extra cooling should put the 2.5\"-enclosure drive back on the 2002 roadmap")
	}
}

func TestRoadmapYearRangeError(t *testing.T) {
	if _, err := Roadmap(Config{FirstYear: 2010, LastYear: 2005}); err == nil {
		t.Error("inverted year range should be rejected")
	}
}

func TestByYearSizeAndBestIDR(t *testing.T) {
	pts, err := Roadmap(Config{})
	if err != nil {
		t.Fatal(err)
	}
	idx := ByYearSize(pts)
	if len(idx) != 11 {
		t.Errorf("index has %d years, want 11", len(idx))
	}
	best := BestIDR(pts)
	for y, row := range idx {
		for _, p := range row {
			if p.MaxIDR > best[y] {
				t.Errorf("BestIDR(%d) = %v below a point's %v", y, best[y], p.MaxIDR)
			}
		}
	}
	// The best IDR in 2002 comes from the smallest platter.
	if best[2002] != idx[2002][1.6].MaxIDR {
		t.Error("best 2002 IDR should be the 1.6\" point")
	}
}

func TestRequiredTempMatchesEnvelopeAtStart(t *testing.T) {
	// In 2002 the 2.6" drive's required RPM (~15.1k) sits essentially at
	// the envelope — that is the calibration identity the roadmap builds on.
	pts, err := Roadmap(Config{PlatterSizes: []units.Inches{2.6}, LastYear: 2002})
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(pts[0].RequiredTemp); math.Abs(got-45.22) > 0.3 {
		t.Errorf("2002 2.6\" required temperature = %.2f, want ~45.22", got)
	}
}

func TestPointFieldsPopulated(t *testing.T) {
	pts, err := Roadmap(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3*11 {
		t.Fatalf("got %d points, want 33", len(pts))
	}
	for _, p := range pts {
		if p.BPI <= 0 || p.TPI <= 0 || p.Capacity <= 0 || p.MaxRPM <= 0 ||
			p.RequiredRPM <= 0 || p.TargetIDR <= 0 || p.IDRDensity <= 0 {
			t.Fatalf("unpopulated point: %+v", p)
		}
	}
}

func TestTrendToReproducesPaperRates(t *testing.T) {
	// The paper derives 14%/28% late CGRs from the terabit design point
	// (1.85 MBPI x 540 KTPI in 2010). Our solver should land near them.
	tr, err := TrendTo(1.85e6, 540e3, 2010)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.LateBPIGrowth-1.14) > 0.01 {
		t.Errorf("derived BPI CGR = %.3f, want ~1.14", tr.LateBPIGrowth)
	}
	if math.Abs(tr.LateTPIGrowth-1.28) > 0.01 {
		t.Errorf("derived TPI CGR = %.3f, want ~1.28", tr.LateTPIGrowth)
	}
	// And the trend actually hits the target.
	b, p := tr.Densities(2010)
	if math.Abs(float64(b)-1.85e6)/1.85e6 > 1e-9 {
		t.Errorf("2010 BPI = %v, want 1.85e6", b)
	}
	if math.Abs(float64(p)-540e3)/540e3 > 1e-9 {
		t.Errorf("2010 TPI = %v, want 540e3", p)
	}
}

func TestTrendToErrors(t *testing.T) {
	if _, err := TrendTo(1.85e6, 540e3, 2003); err == nil {
		t.Error("pre-slowdown target year should be rejected")
	}
	if _, err := TrendTo(0, 540e3, 2010); err == nil {
		t.Error("zero target should be rejected")
	}
	if _, err := TrendTo(100, 100, 2010); err == nil {
		t.Error("shrinking densities should be rejected")
	}
}

func TestOptimisticTrendReachesTerabitSooner(t *testing.T) {
	opt := OptimisticTrend()
	if y := opt.TerabitYear(); y >= 2010 {
		t.Errorf("optimistic terabit year = %d, want before 2010", y)
	}
	pes := PessimisticTrend()
	if y := pes.TerabitYear(); y <= 2010 {
		t.Errorf("pessimistic terabit year = %d, want after 2010", y)
	}
}

func TestCounterfactualRoadmaps(t *testing.T) {
	// Faster density growth means less reliance on RPM: the optimistic
	// trend keeps the roadmap alive longer.
	base, err := Roadmap(Config{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Roadmap(Config{Trend: OptimisticTrend()})
	if err != nil {
		t.Fatal(err)
	}
	pes, err := Roadmap(Config{Trend: PessimisticTrend()})
	if err != nil {
		t.Fatal(err)
	}
	yb, yo, yp := FalloffYear(base), FalloffYear(opt), FalloffYear(pes)
	if !(yp <= yb && yb <= yo) {
		t.Errorf("falloff ordering violated: pessimistic %d, base %d, optimistic %d", yp, yb, yo)
	}
	if yo == yb {
		t.Errorf("optimistic densities should extend the roadmap beyond %d", yb)
	}
}

func TestDesignWalkFollowsPaperNarrative(t *testing.T) {
	steps, err := DesignWalk(WalkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 11 {
		t.Fatalf("%d steps", len(steps))
	}
	byYear := map[int]WalkStep{}
	for _, s := range steps {
		byYear[s.Year] = s
	}
	// 2002: the starting 2.6" single-platter drive meets the target.
	if s := byYear[2002]; !s.MeetsTarget || s.Size != 2.6 || s.Platters != 1 {
		t.Errorf("2002 step: %+v", s)
	}
	// The walk shrinks platters as years pass (the paper's spectrum).
	if s := byYear[2006]; s.Size >= 2.6 {
		t.Errorf("by 2006 the walk should have shrunk below 2.6\": %+v", s)
	}
	// On-target through 2006, off after (the falloff).
	for y := 2002; y <= 2006; y++ {
		if !byYear[y].MeetsTarget {
			t.Errorf("year %d should meet the target: %+v", y, byYear[y])
		}
	}
	for y := 2008; y <= 2012; y++ {
		if byYear[y].MeetsTarget {
			t.Errorf("year %d should be off the roadmap: %+v", y, byYear[y])
		}
	}
	// The walk never ships above the envelope at its granted ambient
	// (cooler when a platter add bought a budget): re-check each step.
	for _, s := range steps {
		g := geometry.Drive{PlatterDiameter: s.Size, Platters: s.Platters, FormFactor: geometry.FormFactor35}
		th, err := thermal.New(g)
		if err != nil {
			t.Fatal(err)
		}
		amb := thermal.DefaultAmbient - s.CoolingBudget
		temp := th.SteadyState(thermal.Load{RPM: s.RPM, VCMDuty: 1, Ambient: amb}).Air
		if float64(temp) > float64(thermal.Envelope)+0.01 {
			t.Errorf("year %d ships %v at %.2f C — over the envelope", s.Year, s.RPM, temp)
		}
	}
	// Capacity generally grows (density growth outruns shrinks over the
	// full decade).
	if steps[len(steps)-1].Capacity <= steps[0].Capacity {
		t.Error("capacity should grow across the decade")
	}
}

func TestDesignWalkAddsPlattersToRecoverCapacity(t *testing.T) {
	steps, err := DesignWalk(WalkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	grew := false
	for _, s := range steps {
		if s.Platters > 1 {
			grew = true
		}
	}
	if !grew {
		t.Error("the walk should add platters when a shrink costs capacity (the paper's step 4)")
	}
}

func TestDesignWalkErrors(t *testing.T) {
	if _, err := DesignWalk(WalkConfig{FirstYear: 2010, LastYear: 2002}); err == nil {
		t.Error("inverted years should be rejected")
	}
	if _, err := DesignWalk(WalkConfig{StartSize: 3.0}); err == nil {
		t.Error("a start size outside the candidate set should be rejected")
	}
}
