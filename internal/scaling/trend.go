// Package scaling implements the paper's technology-trend model and the
// thermally-constrained disk-drive roadmap of section 4.
//
// The recording densities grow from the 1999 Hitachi baseline (270 KBPI,
// 20 KTPI) at 30%/50% CGR through 2003 and at 14%/28% from 2004 — the
// adjusted rates that land on 1 Tb/in^2 (1.85 MBPI x 540 KTPI, BAR 3.42) in
// 2010. The IDR target line is 47 MB/s in 1999 growing 40% per year. The
// roadmap asks, year by year and platter size by platter size: what spindle
// speed would the target IDR need, what temperature would that reach, and
// what is the best IDR actually attainable inside the 45.22 C envelope.
package scaling

import (
	"math"

	"repro/internal/units"
)

// Default trend constants from the paper (section 4).
const (
	// BaseYear anchors the density and IDR trends.
	BaseYear = 1999

	// BaseBPI and BaseTPI are the 1999 Hitachi values.
	BaseBPI units.BPI = 270e3
	BaseTPI units.TPI = 20e3

	// EarlyBPIGrowth and EarlyTPIGrowth apply through 2003.
	EarlyBPIGrowth = 1.30
	EarlyTPIGrowth = 1.50

	// LateBPIGrowth and LateTPIGrowth apply from SlowdownYear on.
	LateBPIGrowth = 1.14
	LateTPIGrowth = 1.28

	// SlowdownYear is the first year of the reduced CGRs.
	SlowdownYear = 2004

	// BaseIDR is the 1999 internal data rate the 40% CGR target grows from.
	BaseIDR units.MBPerSec = 47

	// IDRGrowth is the industry's target IDR compound annual growth rate.
	IDRGrowth = 1.40

	// ReferenceRPM is the 2002 baseline spindle speed the roadmap modulates
	// from (the Table 3 RPM column is exactly ReferenceRPM x target/density).
	ReferenceRPM units.RPM = 15000

	// RoadmapZones is the ZBR zone count the roadmap drives use (the paper's
	// Table 3 assumes 50 zones; the Table 1 validation corpus uses 30).
	RoadmapZones = 50
)

// Trend projects recording densities over calendar years.
type Trend struct {
	BaseYear int
	BaseBPI  units.BPI
	BaseTPI  units.TPI

	EarlyBPIGrowth, EarlyTPIGrowth float64
	LateBPIGrowth, LateTPIGrowth   float64
	SlowdownYear                   int
}

// DefaultTrend returns the paper's density trend.
func DefaultTrend() Trend {
	return Trend{
		BaseYear:       BaseYear,
		BaseBPI:        BaseBPI,
		BaseTPI:        BaseTPI,
		EarlyBPIGrowth: EarlyBPIGrowth,
		EarlyTPIGrowth: EarlyTPIGrowth,
		LateBPIGrowth:  LateBPIGrowth,
		LateTPIGrowth:  LateTPIGrowth,
		SlowdownYear:   SlowdownYear,
	}
}

// Densities returns the projected BPI and TPI for a year at or after the
// trend's base year.
func (t Trend) Densities(year int) (units.BPI, units.TPI) {
	if year < t.BaseYear {
		year = t.BaseYear
	}
	earlyYears := year - t.BaseYear
	lateYears := 0
	if year >= t.SlowdownYear {
		earlyYears = t.SlowdownYear - 1 - t.BaseYear
		lateYears = year - t.SlowdownYear + 1
	}
	bpi := float64(t.BaseBPI) *
		math.Pow(t.EarlyBPIGrowth, float64(earlyYears)) *
		math.Pow(t.LateBPIGrowth, float64(lateYears))
	tpi := float64(t.BaseTPI) *
		math.Pow(t.EarlyTPIGrowth, float64(earlyYears)) *
		math.Pow(t.LateTPIGrowth, float64(lateYears))
	return units.BPI(bpi), units.TPI(tpi)
}

// ArealDensity returns the projected areal density (bits/in^2) for a year.
func (t Trend) ArealDensity(year int) float64 {
	b, p := t.Densities(year)
	return units.ArealDensity(b, p)
}

// BAR returns the projected bit aspect ratio for a year. It falls from ~7 in
// 1999 toward ~3.4 at the terabit transition, matching industry expectations.
func (t Trend) BAR(year int) float64 {
	b, p := t.Densities(year)
	return units.BitAspectRatio(b, p)
}

// TerabitYear returns the first year the trend reaches 1 Tb/in^2.
func (t Trend) TerabitYear() int {
	for y := t.BaseYear; y < t.BaseYear+100; y++ {
		if t.ArealDensity(y) >= units.TerabitPerSqInch {
			return y
		}
	}
	return -1
}

// TargetIDR returns the industry's 40%-CGR data-rate goal for a year.
func TargetIDR(year int) units.MBPerSec {
	return units.MBPerSec(float64(BaseIDR) * math.Pow(IDRGrowth, float64(year-BaseYear)))
}
