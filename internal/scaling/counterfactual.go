package scaling

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// TrendTo derives the post-slowdown growth rates that land exactly on a
// target density point in a target year — the paper's own calibration
// procedure ("we then adjusted the CGRs for the BPI and TPI to achieve this
// areal density in the year 2010"). The early rates and the slowdown year
// stay at their defaults.
func TrendTo(targetBPI units.BPI, targetTPI units.TPI, targetYear int) (Trend, error) {
	t := DefaultTrend()
	if targetYear < t.SlowdownYear {
		return Trend{}, fmt.Errorf("scaling: target year %d precedes the slowdown year %d",
			targetYear, t.SlowdownYear)
	}
	if targetBPI <= 0 || targetTPI <= 0 {
		return Trend{}, fmt.Errorf("scaling: non-positive target densities")
	}
	// Densities at the end of the early regime.
	lastEarly := t.SlowdownYear - 1
	bpi0, tpi0 := t.Densities(lastEarly)
	years := float64(targetYear - lastEarly)
	gb := math.Pow(float64(targetBPI)/float64(bpi0), 1/years)
	gt := math.Pow(float64(targetTPI)/float64(tpi0), 1/years)
	if gb <= 1 || gt <= 1 {
		return Trend{}, fmt.Errorf("scaling: target (%v, %v) in %d implies non-growing densities",
			targetBPI, targetTPI, targetYear)
	}
	t.LateBPIGrowth = gb
	t.LateTPIGrowth = gt
	return t, nil
}

// OptimisticTrend is the counterfactual in which the 1990s growth rates
// (30% BPI, 50% TPI — 100% areal density per year) never slow down: the
// superparamagnetic wall does not bite. Used to separate how much of the
// roadmap's falloff is thermal versus recording-physics.
func OptimisticTrend() Trend {
	t := DefaultTrend()
	t.LateBPIGrowth = t.EarlyBPIGrowth
	t.LateTPIGrowth = t.EarlyTPIGrowth
	return t
}

// PessimisticTrend is the counterfactual in which density growth halves
// again after the slowdown (7%/14%).
func PessimisticTrend() Trend {
	t := DefaultTrend()
	t.LateBPIGrowth = 1.07
	t.LateTPIGrowth = 1.14
	return t
}
