package thermal

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/units"
)

// Operating-point memoization. The DTM stream controllers advance a drive's
// transient in 100 ms sub-steps, and every sub-step re-evaluates the five
// convection couplings at the drive's current spindle speed — the identical
// Reynolds/Nusselt arithmetic, thousands of times per run, at the handful of
// RPM levels the policy actually uses. Likewise the sweep engines re-solve
// SteadyState at a few recurring (RPM, duty, ambient) points. Both solves
// are pure functions of the operating point (with fixed-property air), so
// the model memoizes them.
//
// Keys are the operating point quantized to fixed-point buckets
// (rpmQuantum / dutyQuantum / tempQuantum below). Quantization alone could
// alias two nearby-but-different points onto one bucket, and whichever was
// solved first would then leak its result to the other — the answer would
// depend on evaluation order, which the determinism contract forbids. So
// every entry also stores the *exact* operating point it was solved at, and
// a lookup only counts as a hit when the stored point matches the query
// bit-for-bit. An aliased query falls through to a direct solve and leaves
// the entry alone. Memoized results are therefore always exactly what the
// direct solve would return, at any worker count, in any order.
//
// The maps are sync.Maps because the roadmap grid shares one Model per
// platter size across concurrently-evaluated year cells.

// Quantization buckets for the operating-point keys: 0.001 RPM, 1e-4 duty,
// 0.001 C. Far finer than any physical distinction the model can express,
// so aliasing (and the direct-solve fallback it triggers) is essentially
// confined to adversarial inputs.
const (
	rpmQuantum  = 1e-3
	dutyQuantum = 1e-4
	tempQuantum = 1e-3
)

// opKey is the quantized cache key for a steady-state solve.
type opKey struct {
	rpm, duty, amb int64
	filmDependent  bool
}

func quantize(v, quantum float64) int64 {
	return int64(math.Round(v / quantum))
}

func steadyKey(load Load, filmDependent bool) opKey {
	return opKey{
		rpm:           quantize(float64(load.RPM), rpmQuantum),
		duty:          quantize(load.VCMDuty, dutyQuantum),
		amb:           quantize(float64(load.Ambient), tempQuantum),
		filmDependent: filmDependent,
	}
}

// steadyEntry stores the exact load a state was solved at (hit verification)
// alongside the solution.
type steadyEntry struct {
	load  Load
	state State
}

// condEntry stores the exact RPM a conductance set was evaluated at.
type condEntry struct {
	rpm units.RPM
	g   conductances
}

// modelCache is the per-model memo store. It embeds sync.Maps, so a Model
// must not be copied once in use (go vet's copylocks check enforces this;
// every construction path hands out *Model).
type modelCache struct {
	steady sync.Map // opKey -> steadyEntry
	cond   sync.Map // int64 (quantized RPM) -> condEntry

	steadyHits, steadyMisses atomic.Int64
	condHits, condMisses     atomic.Int64
}

// CacheStats reports the memo cache's hit/miss counters since the model was
// built (or the last ResetCacheStats).
type CacheStats struct {
	SteadyHits, SteadyMisses int64 // SteadyState solves
	CondHits, CondMisses     int64 // conductance evaluations (transient sub-steps)
}

// SteadyHitRate returns the steady-solve hit fraction (0 when never queried).
func (s CacheStats) SteadyHitRate() float64 {
	if n := s.SteadyHits + s.SteadyMisses; n > 0 {
		return float64(s.SteadyHits) / float64(n)
	}
	return 0
}

// CondHitRate returns the conductance-evaluation hit fraction.
func (s CacheStats) CondHitRate() float64 {
	if n := s.CondHits + s.CondMisses; n > 0 {
		return float64(s.CondHits) / float64(n)
	}
	return 0
}

// CacheStats returns the model's memoization counters.
func (m *Model) CacheStats() CacheStats {
	return CacheStats{
		SteadyHits:   m.cache.steadyHits.Load(),
		SteadyMisses: m.cache.steadyMisses.Load(),
		CondHits:     m.cache.condHits.Load(),
		CondMisses:   m.cache.condMisses.Load(),
	}
}

// ResetCacheStats zeroes the counters (the cached entries stay).
func (m *Model) ResetCacheStats() {
	m.cache.steadyHits.Store(0)
	m.cache.steadyMisses.Store(0)
	m.cache.condHits.Store(0)
	m.cache.condMisses.Store(0)
}

// steadyCached wraps the direct steady solve with the memo store.
func (m *Model) steadyCached(load Load) State {
	if m.NoCache {
		return m.steadyDirect(load)
	}
	c := &m.cache
	k := steadyKey(load, m.TemperatureDependentAir)
	if v, ok := c.steady.Load(k); ok {
		e := v.(steadyEntry)
		if e.load == load {
			c.steadyHits.Add(1)
			return e.state
		}
		// Quantization alias: a different exact point owns this bucket.
		c.steadyMisses.Add(1)
		return m.steadyDirect(load)
	}
	c.steadyMisses.Add(1)
	st := m.steadyDirect(load)
	c.steady.Store(k, steadyEntry{load: load, state: st})
	return st
}

// condCached wraps conductancesAt with the memo store. Only the
// fixed-property path is cacheable: with TemperatureDependentAir the
// couplings track the film temperature, which varies continuously along a
// transient.
func (m *Model) condCached(rpm units.RPM, film units.Celsius) conductances {
	if m.TemperatureDependentAir || m.NoCache {
		return m.conductancesAt(rpm, film)
	}
	c := &m.cache
	k := quantize(float64(rpm), rpmQuantum)
	if v, ok := c.cond.Load(k); ok {
		e := v.(condEntry)
		if e.rpm == rpm {
			c.condHits.Add(1)
			return e.g
		}
		c.condMisses.Add(1)
		return m.conductancesAt(rpm, film)
	}
	c.condMisses.Add(1)
	g := m.conductancesAt(rpm, film)
	c.cond.Store(k, condEntry{rpm: rpm, g: g})
	return g
}
