package thermal

import (
	"fmt"
	"math"
	"os"
	"sync"

	"repro/internal/geometry"
	"repro/internal/units"
)

// Calibration holds the free coefficients of the thermal network. The
// convection correlations fix the functional forms; these constants pin the
// magnitudes so the model reproduces the paper's measured/validated points.
type Calibration struct {
	// CAB scales the internal air-to-casting film coefficient:
	// h_int = CAB * tipSpeed^0.8 (W/m^2 K with tip speed in m/s).
	CAB float64

	// HExt is the external forced-convection film coefficient over the
	// enclosure, W/m^2 K. The paper assumes fan-cooled constant-temperature
	// ambient air; HExt is time-invariant across the roadmap.
	HExt float64

	// GSpindleBearing is the conduction path from the rotating stack to the
	// base through the spindle bearing, W/K.
	GSpindleBearing float64

	// GPivotBearing is the conduction path from the actuator to the base
	// through the pivot, W/K.
	GPivotBearing float64

	// ExtraCastingMass adds the spindle-motor stator, connectors and PCB
	// substrate mass (kg) to the base node's thermal capacitance.
	ExtraCastingMass float64

	// AirCapacitanceFactor multiplies the physical air heat capacity to
	// account for the boundary layers of solid surface that follow the air
	// temperature on sub-second scales. It sets the fast time constant that
	// the throttling experiments (Figure 7) probe.
	AirCapacitanceFactor float64
}

// Validate reports whether every coefficient is physical.
func (c Calibration) Validate() error {
	switch {
	case c.CAB <= 0:
		return fmt.Errorf("thermal: CAB %.4f must be positive", c.CAB)
	case c.HExt <= 0:
		return fmt.Errorf("thermal: HExt %.4f must be positive", c.HExt)
	case c.GSpindleBearing < 0 || c.GPivotBearing < 0:
		return fmt.Errorf("thermal: negative bearing conductance")
	case c.ExtraCastingMass < 0:
		return fmt.Errorf("thermal: negative extra casting mass")
	case c.AirCapacitanceFactor < 1:
		return fmt.Errorf("thermal: air capacitance factor %.2f < 1", c.AirCapacitanceFactor)
	}
	return nil
}

// Calibration anchor points, from the paper.
var (
	// ReferenceDrive is the validation drive: the Cheetah 15K.3's single
	// 2.6" platter in a 3.5" form-factor enclosure.
	ReferenceDrive = geometry.Drive{
		PlatterDiameter: 2.6,
		Platters:        1,
		FormFactor:      geometry.FormFactor35,
	}

	anchorA = struct {
		rpm  units.RPM
		temp units.Celsius
	}{15000, Envelope} // the validated steady state, Figure 1

	anchorB = struct {
		rpm  units.RPM
		temp units.Celsius
	}{143470, 602.98} // Table 3, 2.6" in 2012
)

var (
	calOnce sync.Once
	calVal  Calibration
)

// debugCalibration prints the calibration scan when enabled (set via
// the REPRO_THERMAL_DEBUG environment variable at init).
var debugCalibration = os.Getenv("REPRO_THERMAL_DEBUG") != ""

// DefaultCalibration returns the calibration that makes the reference drive
// hit both paper anchors (45.22 C at 15,000 RPM and 602.98 C at 143,470 RPM,
// VCM on, 28 C ambient). The two free knobs (CAB, HExt) are solved by
// damped Newton iteration; the result is computed once and cached.
func DefaultCalibration() Calibration {
	calOnce.Do(func() {
		calVal = solveCalibration()
	})
	return calVal
}

// baseCalibration fixes the non-fitted coefficients.
func baseCalibration() Calibration {
	return Calibration{
		CAB:                  0.40,
		HExt:                 36,
		GSpindleBearing:      0.02,
		GPivotBearing:        0.02,
		ExtraCastingMass:     0.15,
		AirCapacitanceFactor: 25,
	}
}

// solveCalibration finds (CAB, HExt) by nested bisection. Both sweeps are
// monotone: the steady air temperature falls as either conductance knob
// rises; and with HExt re-pinned to hold anchor A, the high-RPM temperature
// rises with CAB (a larger share of the fixed low-RPM resistance moves to the
// RPM-independent external path, which the enormous high-RPM windage then
// multiplies).
func solveCalibration() Calibration {
	cal := baseCalibration()

	airTempAt := func(c Calibration, rpm units.RPM) float64 {
		m, err := NewWithCalibration(ReferenceDrive, c)
		if err != nil {
			panic(fmt.Sprintf("thermal: reference drive rejected: %v", err))
		}
		return float64(m.SteadyState(WorstCase(rpm)).Air)
	}

	// pinHExt returns the HExt that makes anchor A exact for a given CAB,
	// or NaN if unreachable.
	pinHExt := func(cab float64) float64 {
		c := cal
		c.CAB = cab
		lo, hi := 0.05, 1e5
		c.HExt = lo
		if airTempAt(c, anchorA.rpm) < float64(anchorA.temp) {
			return math.NaN() // too cold even with minimal cooling
		}
		c.HExt = hi
		if airTempAt(c, anchorA.rpm) > float64(anchorA.temp) {
			return math.NaN() // too hot even with infinite cooling
		}
		for i := 0; i < 80 && hi/lo > 1+1e-10; i++ {
			mid := math.Sqrt(lo * hi)
			c.HExt = mid
			if airTempAt(c, anchorA.rpm) > float64(anchorA.temp) {
				lo = mid
			} else {
				hi = mid
			}
		}
		return math.Sqrt(lo * hi)
	}

	// residualB evaluates anchor B with HExt pinned; NaN marks infeasible CAB.
	residualB := func(cab float64) float64 {
		h := pinHExt(cab)
		if math.IsNaN(h) {
			return math.NaN()
		}
		c := cal
		c.CAB, c.HExt = cab, h
		return airTempAt(c, anchorB.rpm) - float64(anchorB.temp)
	}

	// Bracket a sign change of residualB over a log grid of CAB.
	grid := make([]float64, 0, 64)
	for cab := 0.01; cab <= 20; cab *= 1.25 {
		grid = append(grid, cab)
	}
	var lo, hi float64
	var flo float64
	found := false
	prev, fprev := math.NaN(), math.NaN()
	for _, cab := range grid {
		f := residualB(cab)
		if debugCalibration {
			fmt.Printf("calibration scan: CAB=%.4f HExt=%.3f residualB=%.2f\n", cab, pinHExt(cab), f)
		}
		if math.IsNaN(f) {
			continue
		}
		if !math.IsNaN(fprev) && fprev*f <= 0 {
			lo, hi, flo = prev, cab, fprev
			found = true
			break
		}
		prev, fprev = cab, f
	}
	if !found {
		panic("thermal: calibration anchors unreachable with the network structure")
	}
	for i := 0; i < 80 && hi/lo > 1+1e-9; i++ {
		mid := math.Sqrt(lo * hi)
		f := residualB(mid)
		if f*flo <= 0 {
			hi = mid
		} else {
			lo, flo = mid, f
		}
	}
	cal.CAB = math.Sqrt(lo * hi)
	cal.HExt = pinHExt(cal.CAB)
	if math.IsNaN(cal.HExt) {
		panic("thermal: calibration lost feasibility at the solution")
	}
	return cal
}

// CoolingBudget returns the reduction in ambient temperature (degrees) a
// drive needs so that it can sustain the given RPM at the envelope with the
// VCM on. A zero budget means the default 28 C ambient already suffices.
// The roadmap grants each platter count such a budget at its 2002 starting
// point (paper, section 4).
func CoolingBudget(d geometry.Drive, rpm units.RPM) (units.Celsius, error) {
	m, err := New(d)
	if err != nil {
		return 0, err
	}
	st := m.SteadyState(WorstCase(rpm))
	if st.Air <= Envelope {
		return 0, nil
	}
	// Bisect the ambient reduction. Steady temperatures shift one-for-one
	// with ambient in the linear (fixed-property) network, so the first
	// guess is already nearly exact; bisection makes it robust.
	lo, hi := 0.0, float64(st.Air-Envelope)+1
	for i := 0; i < 50 && hi-lo > 1e-4; i++ {
		mid := (lo + hi) / 2
		s := m.SteadyState(Load{RPM: rpm, VCMDuty: 1, Ambient: DefaultAmbient - units.Celsius(mid)})
		if s.Air > Envelope {
			lo = mid
		} else {
			hi = mid
		}
	}
	return units.Celsius(hi), nil
}
