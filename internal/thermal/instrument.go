package thermal

import "repro/internal/obs"

// ExportCache publishes the model's memo-cache counters to reg as gauges,
// labelled with the given alternating key/value pairs. Gauges rather than
// counters because CacheStats is an absolute snapshot: re-exporting after
// more work overwrites with the new totals instead of double-counting. The
// underlying counters are atomic.Int64s (see modelCache), so exporting is
// safe while sweep workers are still hitting the cache — though for a
// deterministic snapshot, export after the parallel phase has joined.
//
// A nil registry is a no-op, matching the nil-handle convention in obs.
func (m *Model) ExportCache(reg *obs.Registry, labels ...string) {
	if reg == nil {
		return
	}
	s := m.CacheStats()
	reg.Gauge("thermal_cache_steady_hits", labels...).SetInt(s.SteadyHits)
	reg.Gauge("thermal_cache_steady_misses", labels...).SetInt(s.SteadyMisses)
	reg.Gauge("thermal_cache_cond_hits", labels...).SetInt(s.CondHits)
	reg.Gauge("thermal_cache_cond_misses", labels...).SetInt(s.CondMisses)
}
