// Package thermal implements the paper's thermal model (section 3.3): a
// four-component finite-difference network — internal air, spindle assembly
// (hub + platters), base + cover castings, and VCM + arms — after Clauss and
// Eibeck. Heat enters as air windage (viscous dissipation) and voice-coil
// power, conducts along the solids, convects to the internal air, and leaves
// through the castings to the ambient air, which a cooling system holds at a
// constant temperature.
package thermal

import (
	"math"

	"repro/internal/units"
)

// Envelope is the paper's thermal design envelope: the steady internal-air
// temperature of the modelled Cheetah 15K.3 with VCM and SPM always on at a
// 28 C ambient, excluding drive electronics. Drives must operate at or below
// this internal air temperature for reliable service.
const Envelope units.Celsius = 45.22

// DefaultAmbient is the paper's external wet-bulb ambient temperature.
const DefaultAmbient units.Celsius = 28.0

// Viscous-dissipation law. The paper states windage grows with the 2.8th
// power of RPM, the 4.8th power of platter diameter, and linearly with the
// platter count. The coefficient is pinned by the paper's own series:
// 0.91 W for a single 2.6" platter at 15,098 RPM (which reproduces its
// 2 W @ 19,972, 35.55 W @ 55,819 and 499.73 W @ 143,470 RPM to <1%).
const (
	// RPMExponent is the windage growth exponent in rotational speed.
	RPMExponent = 2.8

	// DiameterExponent is the windage growth exponent in platter diameter.
	DiameterExponent = 4.8

	viscousRefPower    = 0.91    // W
	viscousRefRPM      = 15098.0 // RPM
	viscousRefDiameter = 2.6     // inches
)

// ViscousDissipation returns the windage power for a stack of n platters of
// the given diameter spinning at the given speed.
func ViscousDissipation(rpm units.RPM, diameter units.Inches, n int) units.Watts {
	if rpm <= 0 || diameter <= 0 || n <= 0 {
		return 0
	}
	return units.Watts(viscousRefPower * float64(n) *
		math.Pow(float64(rpm)/viscousRefRPM, RPMExponent) *
		math.Pow(float64(diameter)/viscousRefDiameter, DiameterExponent))
}

// Spindle-bearing loss. The fluid/ball bearing's drag torque grows with
// speed and with the bearing radius (the hub scales with the platter), so
// its power loss is 0.35 W at the reference point (2.6" platter, 15,000 RPM)
// growing with omega^1.5 and diameter^2. This term is what keeps the steady
// temperature strictly increasing through the 15-17 kRPM plateau where
// windage growth and the falling air-to-casting resistance nearly cancel.
const (
	bearingRefPower    = 0.35    // W
	bearingRefRPM      = 15000.0 // RPM
	bearingRefDiameter = 2.6     // inches
	bearingExponent    = 1.5
)

// BearingLoss returns the spindle-bearing power loss at a speed for a given
// platter diameter, deposited into the spindle assembly.
func BearingLoss(rpm units.RPM, diameter units.Inches) units.Watts {
	if rpm <= 0 || diameter <= 0 {
		return 0
	}
	return units.Watts(bearingRefPower *
		math.Pow(float64(rpm)/bearingRefRPM, bearingExponent) *
		math.Pow(float64(diameter)/bearingRefDiameter, 2))
}

// VCM power anchors. The paper measured 3.9 W on the 2.6"-platter Cheetah
// 15K.3 and quotes 2.28 W at 2.1" and 0.618 W at 1.6" (section 5.2); larger
// sizes follow Sri-Jayantha's trend of roughly 2x from 65 mm to 95 mm
// platters. Between anchors we interpolate in log space.
var vcmAnchors = []struct {
	diameter units.Inches
	watts    float64
}{
	{1.6, 0.618},
	{2.1, 2.28},
	{2.6, 3.9},
	{3.3, 6.0},
	{3.7, 7.5},
}

// VCMPower returns the voice-coil motor power for a platter diameter when the
// actuator is continuously seeking. Outside the anchor range the nearest
// segment's log-space slope is extrapolated.
func VCMPower(diameter units.Inches) units.Watts {
	a := vcmAnchors
	if diameter <= 0 {
		return 0
	}
	i := len(a) - 2
	for j := 1; j < len(a); j++ {
		if diameter <= a[j].diameter {
			i = j - 1
			break
		}
	}
	lo, hi := a[i], a[i+1]
	// Log-space linear interpolation/extrapolation.
	slope := (math.Log(hi.watts) - math.Log(lo.watts)) /
		(math.Log(float64(hi.diameter)) - math.Log(float64(lo.diameter)))
	lw := math.Log(lo.watts) + slope*(math.Log(float64(diameter))-math.Log(float64(lo.diameter)))
	return units.Watts(math.Exp(lw))
}
