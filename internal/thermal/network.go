package thermal

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geometry"
	"repro/internal/materials"
	"repro/internal/units"
)

// Load is the operating point of a drive for thermal purposes.
type Load struct {
	// RPM is the spindle speed.
	RPM units.RPM

	// VCMDuty is the fraction of time the voice-coil motor draws full
	// power: 1 means continuously seeking (the worst case the envelope is
	// defined against), 0 means idle or fully sequential access.
	VCMDuty float64

	// Ambient is the external air temperature the cooling system maintains.
	Ambient units.Celsius
}

// WorstCase returns the envelope-defining load at the given speed: VCM always
// on, default ambient.
func WorstCase(rpm units.RPM) Load {
	return Load{RPM: rpm, VCMDuty: 1, Ambient: DefaultAmbient}
}

// State is the temperature of each network node.
type State struct {
	Air      units.Celsius // internal drive air
	Spindle  units.Celsius // spindle motor hub + platters
	Base     units.Celsius // base and cover castings
	Actuator units.Celsius // VCM + disk arms
}

// Uniform returns a state with every node at t — a drive soaked at ambient.
func Uniform(t units.Celsius) State { return State{t, t, t, t} }

// Model is the thermal model of one drive geometry.
type Model struct {
	drive geometry.Drive
	cal   Calibration

	// airPropsAt is the fixed film temperature at which air properties are
	// evaluated. The paper's roadmap numbers are only reproducible with
	// temperature-independent air (hot, thin air would otherwise damp the
	// windage blow-up); see DESIGN.md.
	airPropsAt units.Celsius

	// TemperatureDependentAir switches the convection correlations to use
	// film-temperature air properties. Off by default for fidelity with
	// the paper; exposed for the ablation study.
	TemperatureDependentAir bool

	// NoCache disables the operating-point memoization (see cache.go) so
	// every solve runs the full arithmetic — the reference the cache
	// equivalence tests and benchmarks compare against.
	NoCache bool

	// cache memoizes steady solves and conductance evaluations per exact
	// operating point; see cache.go for the quantize-then-verify scheme.
	cache modelCache

	// Precomputed geometry.
	platterArea  float64 // m^2, air-washed stack area
	actuatorArea float64 // m^2, air-washed arm area
	enclosureIn  float64 // m^2, internal casting area washed by drive air
	enclosureOut float64 // m^2, external casting area
	outerRadiusM float64 // m

	// Node capacitances, J/K.
	cAir      float64
	cSpindle  float64
	cBase     float64
	cActuator float64
}

// New builds a thermal model for a drive using the default calibration.
func New(d geometry.Drive) (*Model, error) {
	return NewWithCalibration(d, DefaultCalibration())
}

// NewWithCalibration builds a thermal model with an explicit calibration.
func NewWithCalibration(d geometry.Drive, cal Calibration) (*Model, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := cal.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		drive:      d,
		cal:        cal,
		airPropsAt: 40,
	}
	m.platterArea = d.PlatterWettedArea()
	m.actuatorArea = d.ActuatorWettedArea()
	m.enclosureOut = d.EnclosureArea()
	// Internal casting area: scale the external area down by the wall
	// thickness; close enough to recomputing the inner box.
	m.enclosureIn = 0.9 * m.enclosureOut
	m.outerRadiusM = float64(d.OuterRadius().Meters())

	al := materials.Aluminum
	m.cSpindle = d.SpindleAssemblyMass() * al.SpecificHeat
	m.cActuator = d.ActuatorMass() * al.SpecificHeat
	m.cBase = (d.CastingMass() + cal.ExtraCastingMass) * al.SpecificHeat
	air := materials.AirAt(m.airPropsAt)
	m.cAir = cal.AirCapacitanceFactor * d.InternalAirVolume() * air.Density * air.SpecificHeat
	return m, nil
}

// Drive returns the modelled geometry.
func (m *Model) Drive() geometry.Drive { return m.drive }

// Calibration returns the calibration in use.
func (m *Model) Calibration() Calibration { return m.cal }

// conductances are the five thermal couplings of the network, W/K.
type conductances struct {
	spindleAir   float64 // rotating stack <-> air convection
	actuatorAir  float64 // arms <-> air convection
	airBase      float64 // air <-> castings internal convection
	spindleBase  float64 // spindle bearing conduction
	actuatorBase float64 // pivot bearing conduction
	baseAmbient  float64 // castings <-> outside air
}

// conductancesAt evaluates the couplings at a spindle speed and (optionally)
// a film temperature.
func (m *Model) conductancesAt(rpm units.RPM, film units.Celsius) conductances {
	at := m.airPropsAt
	if m.TemperatureDependentAir {
		at = film
	}
	air := materials.AirAt(at)

	omega := rpm.RadPerSec()
	tip := omega * m.outerRadiusM // platter tip speed, m/s

	var g conductances

	// Rotating-disk convection (laminar below the critical rotational
	// Reynolds number, turbulent above).
	re := omega * m.outerRadiusM * m.outerRadiusM / air.KinematicViscosity
	var nu float64
	const reCrit = 2.4e5
	if re <= 0 {
		nu = 5 // natural-convection floor
	} else if re < reCrit {
		nu = 0.33 * math.Sqrt(re)
	} else {
		nu = 0.0151 * math.Pow(re, 0.8)
	}
	hDisk := nu * air.Conductivity / math.Max(m.outerRadiusM, 1e-6)
	g.spindleAir = math.Max(hDisk, 5) * m.platterArea

	// Arms washed by the swirl: flat-plate correlation at half tip speed.
	l := float64(m.drive.ArmLength().Meters())
	v := 0.5 * tip
	reArm := v * l / air.KinematicViscosity
	var hArm float64
	if reArm < 5e5 {
		hArm = 0.664 * math.Sqrt(math.Max(reArm, 1)) * math.Cbrt(air.Prandtl) * air.Conductivity / math.Max(l, 1e-6)
	} else {
		hArm = 0.037 * math.Pow(reArm, 0.8) * math.Cbrt(air.Prandtl) * air.Conductivity / math.Max(l, 1e-6)
	}
	g.actuatorAir = math.Max(hArm, 5) * m.actuatorArea

	// Internal air to castings: recirculating forced convection whose film
	// coefficient follows the swirl velocity^0.8 with the usual
	// Re^0.8-correlation property dependence (h ~ v^0.8 nu^-0.8 k). With
	// fixed-property air (the default, matching the paper) the property
	// factor is exactly 1 and CAB alone sets the magnitude. The swirl the
	// platters drive only washes a casting area that grows with platter
	// size, so the effective coupling carries a (d/d_ref)^SwirlAreaExponent
	// factor — this is what keeps small-platter drives warm in the paper's
	// Table 3 even though they dissipate far less power.
	ref := materials.AirAt(m.airPropsAt)
	propFactor := math.Pow(ref.KinematicViscosity/air.KinematicViscosity, 0.8) *
		(air.Conductivity / ref.Conductivity)
	swirlFactor := math.Pow(float64(m.drive.PlatterDiameter)/swirlRefDiameter, SwirlAreaExponent)
	hInt := m.cal.CAB * math.Pow(math.Max(tip, 0.1), 0.8) * propFactor
	g.airBase = math.Max(hInt*swirlFactor, 3) * m.enclosureIn

	// Bearing conduction paths: fixed small conductances.
	g.spindleBase = m.cal.GSpindleBearing
	g.actuatorBase = m.cal.GPivotBearing

	// Castings to ambient: forced external cooling with a calibrated film
	// coefficient over the enclosure area (this is how the 2.5" form
	// factor's smaller surface hurts).
	g.baseAmbient = m.cal.HExt * m.enclosureOut
	return g
}

// VCMAirFraction is the share of voice-coil power dissipated directly into
// the airstream around the arms; the rest soaks into the actuator's metal
// mass first. The direct share is what makes throttling the VCM effective
// within seconds — were all coil power routed through the arm mass, a
// stopped VCM would keep radiating stored heat for minutes and the paper's
// second-granularity throttling dynamics (Figure 7) could not exist.
const VCMAirFraction = 0.7

// heatInputs returns the source power into the air, spindle and actuator
// nodes.
func (m *Model) heatInputs(load Load) (pAir, pSpindle, pActuator units.Watts) {
	duty := load.VCMDuty
	if duty < 0 {
		duty = 0
	} else if duty > 1 {
		duty = 1
	}
	vcm := duty * float64(VCMPower(m.drive.PlatterDiameter))
	pAir = ViscousDissipation(load.RPM, m.drive.PlatterDiameter, m.drive.Platters) +
		units.Watts(VCMAirFraction*vcm)
	return pAir, BearingLoss(load.RPM, m.drive.PlatterDiameter), units.Watts((1 - VCMAirFraction) * vcm)
}

// SteadyState solves the network for the equilibrium temperatures under a
// constant load. Solves are memoized per exact operating point (cache.go):
// the sweep engines and DTM controllers revisit a handful of points
// thousands of times, and the cached result is bit-identical to a direct
// solve.
func (m *Model) SteadyState(load Load) State {
	return m.steadyCached(load)
}

// steadyDirect is the uncached steady solve.
func (m *Model) steadyDirect(load Load) State {
	// With fixed air properties the network is linear: one solve. With
	// film-temperature properties, iterate the film temperature.
	film := load.Ambient + 10
	var st State
	for iter := 0; iter < 50; iter++ {
		st = m.solveLinear(load, film)
		next := (st.Air + load.Ambient) / 2
		if math.Abs(float64(next-film)) < 0.01 || !m.TemperatureDependentAir {
			return st
		}
		film = next
	}
	return st
}

// solveLinear solves the 4-node steady heat balance by Gaussian elimination.
// Node order: air, spindle, base, actuator.
func (m *Model) solveLinear(load Load, film units.Celsius) State {
	g := m.condCached(load.RPM, film)
	pAir, pSpm, pAct := m.heatInputs(load)
	amb := float64(load.Ambient)

	// A*T = b
	var a [4][4]float64
	var b [4]float64

	// Air node.
	a[0][0] = g.spindleAir + g.actuatorAir + g.airBase
	a[0][1] = -g.spindleAir
	a[0][2] = -g.airBase
	a[0][3] = -g.actuatorAir
	b[0] = float64(pAir)

	// Spindle node.
	a[1][0] = -g.spindleAir
	a[1][1] = g.spindleAir + g.spindleBase
	a[1][2] = -g.spindleBase
	b[1] = float64(pSpm)

	// Base node.
	a[2][0] = -g.airBase
	a[2][1] = -g.spindleBase
	a[2][2] = g.airBase + g.spindleBase + g.actuatorBase + g.baseAmbient
	a[2][3] = -g.actuatorBase
	b[2] = g.baseAmbient * amb

	// Actuator node.
	a[3][0] = -g.actuatorAir
	a[3][2] = -g.actuatorBase
	a[3][3] = g.actuatorAir + g.actuatorBase
	b[3] = float64(pAct)

	t, ok := solve4(a, b)
	if !ok {
		// A validated model can never get here: every coupling has a
		// positive floor (the convection terms are clamped, the bearing and
		// external conductances are validated positive), which makes the
		// heat-balance matrix strictly diagonally dominant and hence
		// nonsingular. A singular system therefore means corrupted inputs,
		// and NaN temperatures propagate that loudly instead of the silent
		// all-zero state the old solver left behind.
		nan := units.Celsius(math.NaN())
		return State{Air: nan, Spindle: nan, Base: nan, Actuator: nan}
	}
	return State{
		Air:      units.Celsius(t[0]),
		Spindle:  units.Celsius(t[1]),
		Base:     units.Celsius(t[2]),
		Actuator: units.Celsius(t[3]),
	}
}

// solve4 solves a 4x4 linear system with partial pivoting. The second
// return is false when the system is singular (a zero pivot); the solution
// is then meaningless and must not be used.
func solve4(a [4][4]float64, b [4]float64) ([4]float64, bool) {
	const n = 4
	var x [4]float64
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		piv := a[col][col]
		if piv == 0 {
			return x, false
		}
		for r := col + 1; r < n; r++ {
			f := a[r][col] / piv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, true
}

// SwirlAreaExponent scales the air-to-casting coupling with platter diameter:
// the washed casting area grows with the platter size. The value is
// calibrated so the small-platter Table 3 temperature columns and the
// Figure 3 cooling-extension years (+1 year at -5 C, +2 at -10 C) reproduce.
// The reference diameter is the calibration drive's 2.6".
const (
	SwirlAreaExponent = 1.3
	swirlRefDiameter  = 2.6
)

// StepsPerMinute is the finite-difference time resolution the paper found to
// be converged (600 steps per minute, i.e. 100 ms steps).
const StepsPerMinute = 600

// DefaultStep is the transient solver's nominal time step.
const DefaultStep = time.Minute / StepsPerMinute

// Transient integrates the network forward in time under a possibly changing
// load. The explicit scheme sub-steps adaptively so the fast air node stays
// stable at any RPM.
type Transient struct {
	m     *Model
	state State
	now   time.Duration
}

// NewTransient starts a transient simulation from an initial state.
func (m *Model) NewTransient(initial State) *Transient {
	return &Transient{m: m, state: initial}
}

// State returns the current node temperatures.
func (t *Transient) State() State { return t.state }

// Now returns the simulated time elapsed.
func (t *Transient) Now() time.Duration { return t.now }

// SetState overrides the node temperatures (used to start experiments at the
// envelope).
func (t *Transient) SetState(s State) { t.state = s }

// Advance integrates the model forward by d under a constant load.
func (t *Transient) Advance(load Load, d time.Duration) {
	remaining := d.Seconds()
	for remaining > 1e-12 {
		dt := t.step(load, math.Min(remaining, DefaultStep.Seconds()))
		remaining -= dt
	}
	t.now += d
}

// AdvanceUntil integrates under a constant load until cond(state) is true or
// the limit elapses; it reports the time consumed and whether cond fired.
func (t *Transient) AdvanceUntil(load Load, limit time.Duration, cond func(State) bool) (time.Duration, bool) {
	elapsed := 0.0
	lim := limit.Seconds()
	for elapsed < lim {
		if cond(t.state) {
			d := time.Duration(elapsed * float64(time.Second))
			t.now += d
			return d, true
		}
		dt := t.step(load, math.Min(lim-elapsed, DefaultStep.Seconds()))
		elapsed += dt
	}
	d := time.Duration(elapsed * float64(time.Second))
	t.now += d
	return d, cond(t.state)
}

// step advances up to maxDT seconds, sub-stepping for stability; it returns
// the time actually advanced (== maxDT).
func (t *Transient) step(load Load, maxDT float64) float64 {
	m := t.m
	film := (t.state.Air + load.Ambient) / 2
	g := m.condCached(load.RPM, film)
	pAir, pSpm, pAct := m.heatInputs(load)
	amb := float64(load.Ambient)

	// Stability bound: dt < C_i / sum(G_i) for every node; use half.
	stable := math.Min(
		math.Min(m.cAir/(g.spindleAir+g.actuatorAir+g.airBase),
			m.cSpindle/(g.spindleAir+g.spindleBase)),
		math.Min(m.cBase/(g.airBase+g.spindleBase+g.actuatorBase+g.baseAmbient),
			m.cActuator/(g.actuatorAir+g.actuatorBase)),
	) * 0.5

	remaining := maxDT
	for remaining > 1e-12 {
		dt := math.Min(remaining, stable)
		s := &t.state
		ta, ts, tb, tv := float64(s.Air), float64(s.Spindle), float64(s.Base), float64(s.Actuator)

		qAir := float64(pAir) + g.spindleAir*(ts-ta) + g.actuatorAir*(tv-ta) + g.airBase*(tb-ta)
		qSpm := float64(pSpm) + g.spindleAir*(ta-ts) + g.spindleBase*(tb-ts)
		qBase := g.airBase*(ta-tb) + g.spindleBase*(ts-tb) + g.actuatorBase*(tv-tb) + g.baseAmbient*(amb-tb)
		qAct := float64(pAct) + g.actuatorAir*(ta-tv) + g.actuatorBase*(tb-tv)

		s.Air = units.Celsius(ta + qAir/m.cAir*dt)
		s.Spindle = units.Celsius(ts + qSpm/m.cSpindle*dt)
		s.Base = units.Celsius(tb + qBase/m.cBase*dt)
		s.Actuator = units.Celsius(tv + qAct/m.cActuator*dt)
		remaining -= dt
	}
	return maxDT
}

// MaxRPM finds the highest spindle speed whose steady internal-air
// temperature stays at or below the envelope under the given duty and
// ambient. The steady temperature is U-shaped in RPM (at very low speed the
// internal convection is too weak to carry the VCM heat out; at high speed
// windage dominates), so the search first finds any feasible speed and then
// bisects along the rising branch. It returns 0 if no speed is feasible.
func (m *Model) MaxRPM(envelope units.Celsius, vcmDuty float64, ambient units.Celsius) units.RPM {
	tempAt := func(rpm float64) float64 {
		st := m.SteadyState(Load{RPM: units.RPM(rpm), VCMDuty: vcmDuty, Ambient: ambient})
		return float64(st.Air)
	}
	// Feasibility uses a 1 mK slack: the envelope may sit exactly on the
	// temperature curve's minimum (it does for the calibration reference),
	// where exact comparison is numerically knife-edged.
	env := float64(envelope) + 1e-3

	// Scan a log-spaced grid for the highest feasible point and the curve
	// minimum (the curve is U-shaped: weak convection at low speed, windage
	// at high speed). The feasible window can be a sliver just above the
	// minimum — for the calibration reference the envelope IS the minimum —
	// so the minimum is refined by golden-section before giving up.
	const gridTop = 2e6
	const step = 1.02
	lastFeasible := -1.0
	argMin, minT := 500.0, math.Inf(1)
	for rpm := 500.0; rpm <= gridTop; rpm *= step {
		tv := tempAt(rpm)
		if tv < minT {
			argMin, minT = rpm, tv
		}
		if tv <= env {
			lastFeasible = rpm
		}
	}
	if lastFeasible < 0 {
		// Golden-section refine the minimum between the grid neighbours.
		a, b := argMin/step, argMin*step
		const phi = 0.6180339887498949
		x1 := b - phi*(b-a)
		x2 := a + phi*(b-a)
		f1, f2 := tempAt(x1), tempAt(x2)
		for i := 0; i < 60 && b-a > 0.1; i++ {
			if f1 < f2 {
				b, x2, f2 = x2, x1, f1
				x1 = b - phi*(b-a)
				f1 = tempAt(x1)
			} else {
				a, x1, f1 = x1, x2, f2
				x2 = a + phi*(b-a)
				f2 = tempAt(x2)
			}
		}
		argMin = (a + b) / 2
		if tempAt(argMin) > env {
			return 0
		}
		lastFeasible = argMin
	}
	// Walk up the rising branch from the best known feasible speed.
	lo := lastFeasible
	hi := lo * 1.08
	for tempAt(hi) <= env {
		lo = hi
		hi *= 1.5
		if hi > gridTop {
			return units.RPM(gridTop) // feasible beyond any physical speed
		}
	}
	for i := 0; i < 60 && hi-lo > 0.5; i++ {
		mid := (lo + hi) / 2
		if tempAt(mid) <= env {
			lo = mid
		} else {
			hi = mid
		}
	}
	return units.RPM(lo)
}

// String implements fmt.Stringer for State.
func (s State) String() string {
	return fmt.Sprintf("air=%.2fC spindle=%.2fC base=%.2fC actuator=%.2fC",
		float64(s.Air), float64(s.Spindle), float64(s.Base), float64(s.Actuator))
}
