package thermal

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geometry"
	"repro/internal/units"
)

func refModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(ReferenceDrive)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestViscousDissipationPaperSeries(t *testing.T) {
	// The paper's own numbers for the 2.6" single-platter drive.
	cases := []struct {
		rpm  units.RPM
		want float64
		tol  float64
	}{
		{15098, 0.91, 0.005},
		{19972, 2.0, 0.02},   // "grows from 2 W in 2004"
		{55819, 35.55, 0.01}, // "to over 35.55 W in 2009"
		{143470, 499.73, 0.01},
	}
	for _, c := range cases {
		got := float64(ViscousDissipation(c.rpm, 2.6, 1))
		if math.Abs(got-c.want)/c.want > c.tol {
			t.Errorf("windage at %v = %.2f W, want %.2f", c.rpm, got, c.want)
		}
	}
}

func TestViscousDissipationScaling(t *testing.T) {
	base := float64(ViscousDissipation(15000, 2.6, 1))
	if got := float64(ViscousDissipation(15000, 2.6, 4)); math.Abs(got-4*base) > 1e-9 {
		t.Errorf("windage not linear in platters: %v vs %v", got, 4*base)
	}
	// Fifth-power-ish in diameter: (2.6/1.6)^4.8.
	small := float64(ViscousDissipation(15000, 1.6, 1))
	want := base * math.Pow(1.6/2.6, 4.8)
	if math.Abs(small-want)/want > 1e-9 {
		t.Errorf("windage diameter scaling off: %v vs %v", small, want)
	}
	if ViscousDissipation(0, 2.6, 1) != 0 || ViscousDissipation(15000, 2.6, 0) != 0 {
		t.Error("degenerate windage should be zero")
	}
}

func TestVCMPowerAnchors(t *testing.T) {
	cases := []struct {
		d    units.Inches
		want float64
	}{
		{2.6, 3.9},
		{2.1, 2.28},
		{1.6, 0.618},
	}
	for _, c := range cases {
		got := float64(VCMPower(c.d))
		if math.Abs(got-c.want)/c.want > 1e-6 {
			t.Errorf("VCM power at %v = %.3f W, want %.3f", c.d, got, c.want)
		}
	}
	if VCMPower(0) != 0 {
		t.Error("zero diameter should have zero VCM power")
	}
}

func TestVCMPowerMonotone(t *testing.T) {
	prev := 0.0
	for d := 1.0; d <= 3.7; d += 0.05 {
		cur := float64(VCMPower(units.Inches(d)))
		if cur <= prev {
			t.Fatalf("VCM power not increasing at %.2f\"", d)
		}
		prev = cur
	}
}

func TestCalibrationAnchors(t *testing.T) {
	m := refModel(t)
	a := m.SteadyState(WorstCase(15000)).Air
	if math.Abs(float64(a-Envelope)) > 0.05 {
		t.Errorf("anchor A: T(15000) = %v, want %v", a, Envelope)
	}
	b := m.SteadyState(WorstCase(143470)).Air
	if math.Abs(float64(b-602.98)) > 0.5 {
		t.Errorf("anchor B: T(143470) = %v, want 602.98", b)
	}
}

func TestTable3TemperatureShape(t *testing.T) {
	// The model should track the paper's Table 3 temperatures within 15%
	// of the rise above ambient, and exactly preserve the ordering.
	m := refModel(t)
	series := []struct {
		rpm   units.RPM
		paper float64
	}{
		{15098, 45.24}, {16263, 45.47}, {19972, 46.46}, {24534, 48.26},
		{30130, 51.48}, {37001, 57.18}, {45452, 67.27}, {55819, 85.04},
		{95094, 223.01}, {116826, 360.40}, {143470, 602.98},
	}
	prev := 0.0
	for _, s := range series {
		got := float64(m.SteadyState(WorstCase(s.rpm)).Air)
		if got <= prev {
			t.Errorf("temperature not increasing at %v", s.rpm)
		}
		prev = got
		// Near the envelope (where the roadmap's crossing years are
		// decided) the fit is tight; in the deep-infeasible mid range a
		// looser band suffices — those points are far over the envelope
		// under either model.
		tol := 0.25
		if s.paper <= 52 {
			tol = 0.10
		}
		relErr := math.Abs((got-28)-(s.paper-28)) / (s.paper - 28)
		if relErr > tol {
			t.Errorf("T(%v) = %.2f, paper %.2f (rise error %.1f%% > %.0f%%)",
				s.rpm, got, s.paper, relErr*100, tol*100)
		}
	}
}

func TestSteadyStateAmbientShift(t *testing.T) {
	// With fixed air properties the network is linear: shifting ambient by
	// -5 shifts every node by -5.
	m := refModel(t)
	base := m.SteadyState(WorstCase(20000))
	cool := m.SteadyState(Load{RPM: 20000, VCMDuty: 1, Ambient: DefaultAmbient - 5})
	if math.Abs(float64(base.Air-cool.Air)-5) > 1e-6 {
		t.Errorf("ambient shift not linear: %v vs %v", base.Air, cool.Air)
	}
}

func TestSteadyStateVCMDuty(t *testing.T) {
	m := refModel(t)
	on := m.SteadyState(Load{RPM: 20000, VCMDuty: 1, Ambient: 28}).Air
	half := m.SteadyState(Load{RPM: 20000, VCMDuty: 0.5, Ambient: 28}).Air
	off := m.SteadyState(Load{RPM: 20000, VCMDuty: 0, Ambient: 28}).Air
	if !(off < half && half < on) {
		t.Errorf("duty ordering violated: off=%v half=%v on=%v", off, half, on)
	}
	// Duty outside [0,1] clamps.
	over := m.SteadyState(Load{RPM: 20000, VCMDuty: 7, Ambient: 28}).Air
	if over != on {
		t.Errorf("duty > 1 should clamp: %v vs %v", over, on)
	}
}

func TestMorePlattersRunHotter(t *testing.T) {
	cal := DefaultCalibration()
	temps := make([]float64, 0, 3)
	for _, n := range []int{1, 2, 4} {
		m, err := NewWithCalibration(geometry.Drive{
			PlatterDiameter: 2.6, Platters: n, FormFactor: geometry.FormFactor35,
		}, cal)
		if err != nil {
			t.Fatal(err)
		}
		temps = append(temps, float64(m.SteadyState(WorstCase(15000)).Air))
	}
	if !(temps[0] < temps[1] && temps[1] < temps[2]) {
		t.Errorf("platter-count ordering violated: %v", temps)
	}
}

func TestSmallerPlattersRunCooler(t *testing.T) {
	cal := DefaultCalibration()
	var prev float64 = math.Inf(1)
	for _, d := range []units.Inches{2.6, 2.1, 1.6} {
		m, err := NewWithCalibration(geometry.Drive{
			PlatterDiameter: d, Platters: 1, FormFactor: geometry.FormFactor35,
		}, cal)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(m.SteadyState(WorstCase(20000)).Air)
		if got >= prev {
			t.Errorf("%v platter at 20k RPM not cooler than larger size", d)
		}
		prev = got
	}
}

func TestSmallFormFactorRunsHotter(t *testing.T) {
	cal := DefaultCalibration()
	m35, err := NewWithCalibration(geometry.Drive{
		PlatterDiameter: 2.6, Platters: 1, FormFactor: geometry.FormFactor35,
	}, cal)
	if err != nil {
		t.Fatal(err)
	}
	m25, err := NewWithCalibration(geometry.Drive{
		PlatterDiameter: 2.6, Platters: 1, FormFactor: geometry.FormFactor25,
	}, cal)
	if err != nil {
		t.Fatal(err)
	}
	t35 := m35.SteadyState(WorstCase(15000)).Air
	t25 := m25.SteadyState(WorstCase(15000)).Air
	if t25 <= t35 {
		t.Errorf("2.5\" enclosure (%v) should run hotter than 3.5\" (%v)", t25, t35)
	}
}

func TestMaxRPMReferencePoint(t *testing.T) {
	m := refModel(t)
	got := float64(m.MaxRPM(Envelope, 1, DefaultAmbient))
	// The paper's envelope-design speed for the 2.6" platter is 15,020 RPM;
	// by construction of anchor A ours is ~15,000. Accept 5%.
	if math.Abs(got-15020)/15020 > 0.05 {
		t.Errorf("max envelope RPM = %.0f, want ~15020", got)
	}
}

func TestMaxRPMSlackOrdering(t *testing.T) {
	// VCM off must allow a strictly higher speed (the thermal slack), and
	// cooler ambient must allow more than baseline.
	m := refModel(t)
	on := m.MaxRPM(Envelope, 1, DefaultAmbient)
	off := m.MaxRPM(Envelope, 0, DefaultAmbient)
	if off <= on {
		t.Errorf("no thermal slack: on=%v off=%v", on, off)
	}
	cool := m.MaxRPM(Envelope, 1, DefaultAmbient-5)
	if cool <= on {
		t.Errorf("cooler ambient should raise max RPM: %v vs %v", cool, on)
	}
}

func TestMaxRPMImpossibleEnvelope(t *testing.T) {
	m := refModel(t)
	if got := m.MaxRPM(-100, 1, DefaultAmbient); got != 0 {
		t.Errorf("impossible envelope should yield 0 RPM, got %v", got)
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	m := refModel(t)
	load := WorstCase(15000)
	want := m.SteadyState(load)
	tr := m.NewTransient(Uniform(28))
	tr.Advance(load, 4*time.Hour)
	got := tr.State()
	if math.Abs(float64(got.Air-want.Air)) > 0.05 {
		t.Errorf("transient air %.3f != steady %.3f", got.Air, want.Air)
	}
	if math.Abs(float64(got.Base-want.Base)) > 0.05 {
		t.Errorf("transient base %.3f != steady %.3f", got.Base, want.Base)
	}
}

func TestTransientFigure1Shape(t *testing.T) {
	// Figure 1: starts at ambient, rises quickly in the first minutes, is
	// essentially settled by 48 minutes.
	m := refModel(t)
	load := WorstCase(15000)
	tr := m.NewTransient(Uniform(28))

	tr.Advance(load, time.Minute)
	atMinute := float64(tr.State().Air)
	if atMinute < 28.5 || atMinute > 36 {
		t.Errorf("T(1 min) = %.2f, want a fast initial rise into (28.5, 36)", atMinute)
	}
	tr.Advance(load, 47*time.Minute)
	at48 := float64(tr.State().Air)
	if math.Abs(at48-float64(Envelope)) > 0.5 {
		t.Errorf("T(48 min) = %.2f, want within 0.5 of %.2f", at48, float64(Envelope))
	}
	if at48 > float64(Envelope)+0.01 {
		t.Errorf("transient overshot the steady state: %.3f", at48)
	}
}

func TestTransientMonotoneWarmup(t *testing.T) {
	m := refModel(t)
	load := WorstCase(15000)
	tr := m.NewTransient(Uniform(28))
	prev := 28.0
	for i := 0; i < 30; i++ {
		tr.Advance(load, time.Minute)
		cur := float64(tr.State().Air)
		if cur < prev-1e-9 {
			t.Fatalf("warm-up air temperature fell at minute %d", i+1)
		}
		prev = cur
	}
}

func TestTransientCoolsWhenLoadDrops(t *testing.T) {
	m := refModel(t)
	hot := m.SteadyState(WorstCase(25000))
	tr := m.NewTransient(hot)
	tr.Advance(Load{RPM: 25000, VCMDuty: 0, Ambient: 28}, 30*time.Second)
	if tr.State().Air >= hot.Air {
		t.Error("air should cool once the VCM stops")
	}
}

func TestAdvanceUntil(t *testing.T) {
	m := refModel(t)
	load := WorstCase(15000)
	tr := m.NewTransient(Uniform(28))
	elapsed, ok := tr.AdvanceUntil(load, time.Hour, func(s State) bool { return s.Air >= 40 })
	if !ok {
		t.Fatal("never reached 40 C")
	}
	if elapsed <= 0 || elapsed >= time.Hour {
		t.Errorf("elapsed = %v, want interior of (0, 1h)", elapsed)
	}
	// Condition already true: no time should pass.
	e2, ok := tr.AdvanceUntil(load, time.Hour, func(s State) bool { return s.Air >= 40 })
	if !ok || e2 != 0 {
		t.Errorf("already-true condition consumed %v", e2)
	}
	// Unreachable condition: full limit consumed, ok = false.
	e3, ok := tr.AdvanceUntil(load, time.Second, func(s State) bool { return s.Air > 1000 })
	if ok || e3 != time.Second {
		t.Errorf("unreachable condition: elapsed %v ok %v", e3, ok)
	}
}

func TestTransientNowAdvances(t *testing.T) {
	m := refModel(t)
	tr := m.NewTransient(Uniform(28))
	tr.Advance(WorstCase(15000), 90*time.Second)
	if tr.Now() != 90*time.Second {
		t.Errorf("Now() = %v, want 90s", tr.Now())
	}
}

func TestCoolingBudget(t *testing.T) {
	// The reference drive at its envelope speed needs no budget.
	b, err := CoolingBudget(ReferenceDrive, 15000)
	if err != nil {
		t.Fatal(err)
	}
	if b != 0 {
		t.Errorf("reference budget = %v, want 0", b)
	}
	// A 4-platter stack at the same speed needs a positive budget.
	b4, err := CoolingBudget(geometry.Drive{
		PlatterDiameter: 2.6, Platters: 4, FormFactor: geometry.FormFactor35,
	}, 15098)
	if err != nil {
		t.Fatal(err)
	}
	if b4 <= 0 {
		t.Errorf("4-platter budget = %v, want positive", b4)
	}
	// The budget is exactly enough: with it, the steady temp is the envelope.
	m, err := New(geometry.Drive{PlatterDiameter: 2.6, Platters: 4, FormFactor: geometry.FormFactor35})
	if err != nil {
		t.Fatal(err)
	}
	st := m.SteadyState(Load{RPM: 15098, VCMDuty: 1, Ambient: DefaultAmbient - b4})
	if float64(st.Air) > float64(Envelope)+0.01 {
		t.Errorf("budgeted drive still over envelope: %v", st.Air)
	}
}

func TestCalibrationValidate(t *testing.T) {
	good := DefaultCalibration()
	if err := good.Validate(); err != nil {
		t.Errorf("default calibration invalid: %v", err)
	}
	bad := good
	bad.CAB = 0
	if bad.Validate() == nil {
		t.Error("zero CAB should be rejected")
	}
	bad = good
	bad.HExt = -1
	if bad.Validate() == nil {
		t.Error("negative HExt should be rejected")
	}
	bad = good
	bad.AirCapacitanceFactor = 0.5
	if bad.Validate() == nil {
		t.Error("sub-unity air factor should be rejected")
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(geometry.Drive{}); err == nil {
		t.Error("zero drive should be rejected")
	}
	if _, err := NewWithCalibration(ReferenceDrive, Calibration{}); err == nil {
		t.Error("zero calibration should be rejected")
	}
}

func TestSteadyStateEnergyBalance(t *testing.T) {
	// At steady state, heat in == heat out to ambient (through the base).
	m := refModel(t)
	f := func(raw uint16) bool {
		rpm := units.RPM(10000 + int(raw)%50000)
		load := WorstCase(rpm)
		st := m.SteadyState(load)
		pIn := float64(ViscousDissipation(rpm, 2.6, 1)) + float64(VCMPower(2.6)) +
			float64(BearingLoss(rpm, 2.6))
		g := m.conductancesAt(rpm, 40)
		pOut := g.baseAmbient * float64(st.Base-load.Ambient)
		return math.Abs(pIn-pOut) < 1e-6*math.Max(1, pIn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWorstCase(t *testing.T) {
	l := WorstCase(12345)
	if l.RPM != 12345 || l.VCMDuty != 1 || l.Ambient != DefaultAmbient {
		t.Errorf("WorstCase = %+v", l)
	}
}

func TestStateString(t *testing.T) {
	s := State{Air: 45.22, Spindle: 44, Base: 30, Actuator: 58}
	if got := s.String(); got == "" {
		t.Error("empty state string")
	}
}

func TestTemperatureDependentAirDampsHighRPM(t *testing.T) {
	// The ablation: with film-temperature air properties, the extreme
	// high-RPM temperature drops because hot air convects differently.
	cal := DefaultCalibration()
	m, err := NewWithCalibration(ReferenceDrive, cal)
	if err != nil {
		t.Fatal(err)
	}
	fixed := m.SteadyState(WorstCase(143470)).Air
	m.TemperatureDependentAir = true
	dep := m.SteadyState(WorstCase(143470)).Air
	if math.Abs(float64(dep-fixed)) < 1 {
		t.Errorf("temperature-dependent air changed nothing: %v vs %v", dep, fixed)
	}
}
