package thermal

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/units"
)

// TestSteadyStateCacheEquivalence sweeps the roadmap's whole RPM range (the
// 2002 baseline through the 2012 1.6" requirement and beyond) across duties
// and ambients and requires the memoized solve to equal the direct solve
// bit for bit — twice, so the second pass reads every answer out of the
// cache.
func TestSteadyStateCacheEquivalence(t *testing.T) {
	cached, err := New(ReferenceDrive)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := New(ReferenceDrive)
	if err != nil {
		t.Fatal(err)
	}
	direct.NoCache = true

	var loads []Load
	for rpm := 500.0; rpm <= 250000; rpm *= 1.17 {
		for _, duty := range []float64{0, 0.37, 1} {
			for _, amb := range []units.Celsius{DefaultAmbient, DefaultAmbient - 10} {
				loads = append(loads, Load{RPM: units.RPM(rpm), VCMDuty: duty, Ambient: amb})
			}
		}
	}
	for pass := 0; pass < 2; pass++ {
		for _, load := range loads {
			got, want := cached.SteadyState(load), direct.SteadyState(load)
			if got != want {
				t.Fatalf("pass %d, %+v: cached %v != direct %v", pass, load, got, want)
			}
		}
	}
	stats := cached.CacheStats()
	if stats.SteadyHits < int64(len(loads)) {
		t.Errorf("second pass should hit the cache for all %d loads, hits=%d", len(loads), stats.SteadyHits)
	}
	if stats.SteadyMisses != int64(len(loads)) {
		t.Errorf("first pass should miss exactly once per load (%d), misses=%d", len(loads), stats.SteadyMisses)
	}
}

// TestTransientCacheEquivalence runs the same transient trajectory on a
// cached and an uncached model: the conductance memoization must not
// perturb a single sub-step.
func TestTransientCacheEquivalence(t *testing.T) {
	cached, err := New(ReferenceDrive)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := New(ReferenceDrive)
	if err != nil {
		t.Fatal(err)
	}
	direct.NoCache = true

	trC := cached.NewTransient(Uniform(DefaultAmbient))
	trD := direct.NewTransient(Uniform(DefaultAmbient))
	// Alternate between the handful of operating points a DTM controller
	// visits: busy at speed, idle, throttled low speed.
	loads := []Load{
		{RPM: 15000, VCMDuty: 1, Ambient: DefaultAmbient},
		{RPM: 15000, VCMDuty: 0, Ambient: DefaultAmbient},
		{RPM: 9000, VCMDuty: 0, Ambient: DefaultAmbient},
	}
	for i := 0; i < 60; i++ {
		load := loads[i%len(loads)]
		trC.Advance(load, 750*time.Millisecond)
		trD.Advance(load, 750*time.Millisecond)
		if trC.State() != trD.State() {
			t.Fatalf("step %d: cached %v != direct %v", i, trC.State(), trD.State())
		}
	}
	stats := cached.CacheStats()
	if rate := stats.CondHitRate(); rate < 0.9 {
		t.Errorf("DTM-style trajectory should hit the conductance cache >90%%, got %.1f%% (%+v)",
			rate*100, stats)
	}
}

// TestCacheConcurrentReaders hammers one shared model from many goroutines
// (the roadmap grid shares a model per platter size); run with -race.
func TestCacheConcurrentReaders(t *testing.T) {
	m, err := New(ReferenceDrive)
	if err != nil {
		t.Fatal(err)
	}
	want := m.SteadyState(WorstCase(15000))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got := m.SteadyState(WorstCase(15000)); got != want {
					t.Errorf("concurrent read diverged: %v != %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestCacheStatsConcurrent reads the hit/miss counters while writers are
// still hammering the cache: CacheStats and ResetCacheStats must be safe to
// call mid-sweep (the counters are atomics), and the totals must balance
// once the writers join; run with -race.
func TestCacheStatsConcurrent(t *testing.T) {
	m, err := New(ReferenceDrive)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, iters = 8, 200
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	reader.Add(1)
	go func() { // concurrent reader: must not race with the writers
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := m.CacheStats()
				if s.SteadyHits < 0 || s.SteadyMisses < 0 {
					t.Error("counter went negative")
					return
				}
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < iters; i++ {
				m.SteadyState(WorstCase(units.RPM(9000 + 1500*(g%3))))
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	reader.Wait()
	s := m.CacheStats()
	if got := s.SteadyHits + s.SteadyMisses; got != goroutines*iters {
		t.Errorf("hits+misses = %d, want %d", got, goroutines*iters)
	}
	m.ResetCacheStats()
	if s := m.CacheStats(); s != (CacheStats{}) {
		t.Errorf("after reset: %+v", s)
	}
}

// TestExportCache publishes the counters to a registry and checks the gauge
// values and that re-exporting overwrites rather than accumulates.
func TestExportCache(t *testing.T) {
	m, err := New(ReferenceDrive)
	if err != nil {
		t.Fatal(err)
	}
	m.SteadyState(WorstCase(15000))
	m.SteadyState(WorstCase(15000))
	reg := obs.NewRegistry()
	m.ExportCache(reg, "drive", "ref")
	m.ExportCache(reg, "drive", "ref") // idempotent: gauges overwrite
	find := func(name string) float64 {
		t.Helper()
		for _, mt := range reg.Snapshot() {
			if mt.Name == name && mt.Value != nil {
				return *mt.Value
			}
		}
		t.Fatalf("series %s not found", name)
		return 0
	}
	if hits := find("thermal_cache_steady_hits"); hits != 1 {
		t.Errorf("steady hits gauge = %v, want 1", hits)
	}
	if misses := find("thermal_cache_steady_misses"); misses != 1 {
		t.Errorf("steady misses gauge = %v, want 1", misses)
	}
	var nilModelSafe *obs.Registry
	m.ExportCache(nilModelSafe) // nil registry is a no-op
}

// TestCacheAliasFallsThrough: two distinct loads inside one quantization
// bucket must each get their own direct answer — the second must not read
// the first's entry.
func TestCacheAliasFallsThrough(t *testing.T) {
	cached, err := New(ReferenceDrive)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := New(ReferenceDrive)
	if err != nil {
		t.Fatal(err)
	}
	direct.NoCache = true

	a := Load{RPM: 15000, VCMDuty: 1, Ambient: DefaultAmbient}
	b := a
	b.RPM += units.RPM(rpmQuantum / 8) // same bucket, different exact point
	if steadyKey(a, false) != steadyKey(b, false) {
		t.Fatalf("test premise broken: loads landed in different buckets")
	}
	if got, want := cached.SteadyState(a), direct.SteadyState(a); got != want {
		t.Fatalf("load a: %v != %v", got, want)
	}
	if got, want := cached.SteadyState(b), direct.SteadyState(b); got != want {
		t.Fatalf("aliased load b leaked a's cache entry: %v != %v", got, want)
	}
}

// TestSolve4Singular pins the degenerate-geometry contract: a singular
// system reports ok=false instead of silently returning zeros.
func TestSolve4Singular(t *testing.T) {
	cases := []struct {
		name string
		a    [4][4]float64
	}{
		{"all-zero", [4][4]float64{}},
		{"duplicate-rows", [4][4]float64{
			{1, 2, 3, 4},
			{1, 2, 3, 4},
			{0, 1, 0, 0},
			{0, 0, 1, 0},
		}},
		{"zero-column", [4][4]float64{
			{1, 0, 3, 4},
			{2, 0, 1, 0},
			{3, 0, 0, 1},
			{4, 0, 2, 2},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, ok := solve4(c.a, [4]float64{1, 2, 3, 4}); ok {
				t.Error("singular system reported ok=true")
			}
		})
	}

	// And a well-conditioned identity still solves.
	id := [4][4]float64{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}}
	x, ok := solve4(id, [4]float64{1, 2, 3, 4})
	if !ok || x != [4]float64{1, 2, 3, 4} {
		t.Errorf("identity solve failed: %v ok=%v", x, ok)
	}
}

// TestValidatedModelNeverSingular: across the full roadmap operating range,
// a validated model's steady temperatures are always finite — the clamped
// conductance floors keep the matrix nonsingular.
func TestValidatedModelNeverSingular(t *testing.T) {
	m, err := New(ReferenceDrive)
	if err != nil {
		t.Fatal(err)
	}
	for _, rpm := range []units.RPM{0, 1, 500, 15000, 143470, 2e6} {
		st := m.SteadyState(Load{RPM: rpm, VCMDuty: 1, Ambient: DefaultAmbient})
		for _, v := range []float64{float64(st.Air), float64(st.Spindle), float64(st.Base), float64(st.Actuator)} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("rpm %v: non-finite steady state %v", rpm, st)
			}
		}
	}
}
