package core

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/array"
	"repro/internal/capacity"
	"repro/internal/drive"
	"repro/internal/dtm"
	"repro/internal/parallel"
	"repro/internal/power"
	"repro/internal/reliability"
	"repro/internal/scaling"
	"repro/internal/thermal"
	"repro/internal/units"
)

// Experiment is one reproducible artifact of the paper (or one of this
// repository's extensions), addressable by id.
type Experiment struct {
	// ID is the DESIGN.md experiment id ("T1", "F2", "X3", ...).
	ID string

	// Title is the one-line description.
	Title string

	// Run regenerates the artifact and writes its report.
	Run func(w io.Writer) error
}

// Options scales the expensive experiments.
type Options struct {
	// Figure4Requests is the per-workload trace length (<= 0 uses the
	// paper's full counts).
	Figure4Requests int

	// Workers bounds the sweep engine's fan-out across and within
	// experiments (0 = parallel.Default(), i.e. GOMAXPROCS;
	// 1 = sequential). The rendered output is byte-identical at any
	// worker count.
	Workers int

	// Obs carries optional observability sinks. When enabled, Figure 4
	// runs on the streaming path (whose means match the batch path bit
	// for bit) so the per-step instrumentation hooks are live; the
	// rendered report is unchanged.
	Obs Observe
}

// Experiments returns the full registry in presentation order.
func Experiments(opt Options) []Experiment {
	return []Experiment{
		{"T1", "Table 1: capacity & IDR validation", expTable1},
		{"T2", "Table 2: envelope invariance", expTable2},
		{"F1", "Figure 1: Cheetah 15K.3 thermal transient", expFigure1},
		{"T3", "Table 3: required RPM and temperature", expTable3},
		{"F2", "Figure 2: thermally-constrained roadmap", expFigure2},
		{"F3", "Figure 3: cooling sensitivity", expFigure3},
		{"W4", "Section 4 design walk", expDesignWalk},
		{"F4", "Figure 4: workload response times vs RPM",
			func(w io.Writer) error { return expFigure4(w, opt.Figure4Requests, opt.Workers, opt.Obs) }},
		{"F5", "Figure 5: thermal slack", expFigure5},
		{"F7", "Figure 7: throttling ratios", expFigure7},
		{"X2", "Ablations: capacity overheads, air properties", expAblations},
		{"X3", "Extension: power and energy", expPower},
		{"X4", "Extension: DTM for reliability", expReliability},
		{"X5", "Extension: chassis-level array thermals", expArray},
	}
}

// RunByID runs one experiment.
func RunByID(w io.Writer, id string, opt Options) error {
	for _, e := range Experiments(opt) {
		if e.ID == id {
			fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title)
			return e.Run(w)
		}
	}
	return fmt.Errorf("core: unknown experiment %q", id)
}

// renderedExperiment is one experiment's buffered report: the header plus
// whatever the run wrote before finishing (or failing).
type renderedExperiment struct {
	out []byte
	err error
}

// RunAll runs the full suite. The experiments fan out over the sweep engine,
// each rendering into its own buffer; the buffers are then written in
// registry order, and a failure is reported after that experiment's partial
// output — so the bytes on w match the sequential run at any worker count.
func RunAll(w io.Writer, opt Options) error {
	exps := Experiments(opt)
	outs, _ := parallel.Map(opt.Workers, exps, func(_ int, e Experiment) (renderedExperiment, error) {
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "== %s: %s ==\n", e.ID, e.Title)
		// Failures are carried as values so every experiment still renders;
		// the ordered replay below decides where the suite stops.
		err := e.Run(&buf)
		return renderedExperiment{out: buf.Bytes(), err: err}, nil
	})
	for i, e := range exps {
		if _, err := w.Write(outs[i].out); err != nil {
			return err
		}
		if outs[i].err != nil {
			return fmt.Errorf("%s: %w", e.ID, outs[i].err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func expTable1(w io.Writer) error {
	var worstCap float64
	for _, v := range drive.Table1 {
		m, err := drive.New(v.Config())
		if err != nil {
			return err
		}
		capErr := relAbs(m.Capacity().GB(), v.PaperModelCapGB)
		if capErr > worstCap {
			worstCap = capErr
		}
		fmt.Fprintf(w, "  %-26s cap %6.1f GB (paper model %6.1f)  idr %6.1f MB/s (paper model %6.1f)\n",
			v.Name, m.Capacity().GB(), v.PaperModelCapGB,
			float64(m.IDR()), float64(v.PaperModelIDR))
	}
	fmt.Fprintf(w, "  worst capacity deviation from the paper's model column: %.1f%%\n", worstCap*100)
	return nil
}

func expTable2(w io.Writer) error {
	for _, e := range drive.Table2 {
		fmt.Fprintf(w, "  %-26s %d %6.0f RPM: wet-bulb %.1f C, rated max %.1f C\n",
			e.Name, e.Year, float64(e.RPM), float64(e.ExternalWetBulb), float64(e.MaxOperating))
	}
	fmt.Fprintf(w, "  envelope %.2f C + electronics %.0f C ~= the rated 55 C class\n",
		float64(thermal.Envelope), float64(drive.ElectronicsDelta))
	return nil
}

func expFigure1(w io.Writer) error {
	m, err := thermal.New(thermal.ReferenceDrive)
	if err != nil {
		return err
	}
	tr := m.NewTransient(thermal.Uniform(thermal.DefaultAmbient))
	load := thermal.WorstCase(15000)
	for _, mk := range []time.Duration{time.Minute, 10 * time.Minute, 48 * time.Minute, 2 * time.Hour} {
		tr.Advance(load, mk-tr.Now())
		fmt.Fprintf(w, "  t=%7v  T_air=%.2f C\n", mk, float64(tr.State().Air))
	}
	fmt.Fprintln(w, "  paper: 28 -> ~33 C in the first minute, steady 45.22 C by ~48 min")
	return nil
}

func expTable3(w io.Writer) error {
	pts, err := scaling.Roadmap(scaling.Config{})
	if err != nil {
		return err
	}
	idx := scaling.ByYearSize(pts)
	paperRPM := map[int][3]float64{
		2002: {15098, 18692, 24533}, 2005: {24534, 30367, 39857},
		2009: {55819, 69109, 90680}, 2012: {143470, 177629, 233050},
	}
	sizes := []units.Inches{2.6, 2.1, 1.6}
	for _, y := range []int{2002, 2005, 2009, 2012} {
		fmt.Fprintf(w, "  %d:", y)
		for i, s := range sizes {
			p := idx[y][s]
			fmt.Fprintf(w, "  %v: rpm %6.0f (paper %6.0f) T %6.1f C",
				s, float64(p.RequiredRPM), paperRPM[y][i], float64(p.RequiredTemp))
		}
		fmt.Fprintln(w)
	}
	return nil
}

func expFigure2(w io.Writer) error {
	for _, platters := range []int{1, 2, 4} {
		pts, err := scaling.Roadmap(scaling.Config{Platters: platters})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %d-platter: falloff year %d (cooling budget %.2f C)\n",
			platters, scaling.FalloffYear(pts), float64(pts[0].CoolingBudget))
	}
	pts, err := scaling.Roadmap(scaling.Config{})
	if err != nil {
		return err
	}
	idx := scaling.ByYearSize(pts)
	fmt.Fprintf(w, "  2005 capacities: 2.6\" %.1f GB (paper 93.67), 2.1\" %.1f GB (61.13), 1.6\" %.1f GB (35.48)\n",
		idx[2005][2.6].Capacity.GB(), idx[2005][2.1].Capacity.GB(), idx[2005][1.6].Capacity.GB())
	fmt.Fprintf(w, "  2.6\" meets 2002=%v 2003=%v (paper: falls off from 2003)\n",
		idx[2002][2.6].MeetsTarget, idx[2003][2.6].MeetsTarget)
	return nil
}

func expFigure3(w io.Writer) error {
	for _, delta := range []units.Celsius{0, -5, -10} {
		pts, err := scaling.Roadmap(scaling.Config{AmbientDelta: delta})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  ambient %+3.0f C: family falloff year %d\n", float64(delta), scaling.FalloffYear(pts))
	}
	fmt.Fprintln(w, "  paper: 2007 / 2008 / 2009 — one extra year per ~5 C")
	return nil
}

func expDesignWalk(w io.Writer) error {
	steps, err := scaling.DesignWalk(scaling.WalkConfig{})
	if err != nil {
		return err
	}
	for _, s := range steps {
		meets := " "
		if s.MeetsTarget {
			meets = "*"
		}
		fmt.Fprintf(w, "  %d %s %v x%d @ %6.0f RPM: %7.1f MB/s, %7.1f GB  %s\n",
			s.Year, meets, s.Size, s.Platters, float64(s.RPM),
			float64(s.IDR), s.Capacity.GB(), s.Action)
	}
	return nil
}

func expFigure4(w io.Writer, requests, workers int, ob Observe) error {
	paper := map[string][4]float64{
		"HPL Openmail":     {54.54, 25.93, 18.61, 15.35},
		"OLTP Application": {5.66, 4.48, 3.91, 3.57},
		"Search-Engine":    {16.22, 10.72, 8.63, 7.55},
		"TPC-C":            {6.50, 3.23, 2.46, 2.06},
		"TPC-H":            {4.91, 3.25, 2.64, 2.32},
	}
	var results []WorkloadResult
	var err error
	if ob.enabled() {
		// Streaming path so the per-step instrumentation is live; the
		// means the report prints are bit-identical to the batch path.
		results, err = RunAllFigure4StreamObs(requests, workers, ob)
	} else {
		results, err = RunAllFigure4Workers(requests, workers)
	}
	if err != nil {
		return err
	}
	for _, res := range results {
		p := paper[res.Workload.Name]
		imp := res.Improvements()
		pImp := [3]float64{(p[0] - p[1]) / p[0], (p[0] - p[2]) / p[0], (p[0] - p[3]) / p[0]}
		fmt.Fprintf(w, "  %-17s base %6.2f ms (paper %5.2f); gains +%4.1f%%/%4.1f%% +%4.1f%%/%4.1f%% +%4.1f%%/%4.1f%% (ours/paper)\n",
			res.Workload.Name, res.Steps[0].MeanMillis, p[0],
			imp[0]*100, pImp[0]*100, imp[1]*100, pImp[1]*100, imp[2]*100, pImp[2]*100)
	}
	return nil
}

func expFigure5(w io.Writer) error {
	pts, err := dtm.Slack(nil, 1, thermal.DefaultAmbient)
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Fprintf(w, "  %v: %6.0f -> %6.0f RPM (slack %5.0f, VCM %.3f W)\n",
			p.Size, float64(p.EnvelopeRPM), float64(p.VCMOffRPM),
			float64(p.SlackRPM()), float64(p.VCMPower))
	}
	fmt.Fprintln(w, "  paper: 2.6\" 15,020 -> 26,750; slack shrinks with platter size")
	return nil
}

func expFigure7(w io.Writer) error {
	for _, c := range []struct {
		name string
		e    dtm.ThrottleExperiment
	}{
		{"(a) VCM-only @24,534", dtm.Figure7a()},
		{"(b) VCM+RPM 37,001->22,001", dtm.Figure7b()},
	} {
		sweep, err := c.e.Sweep([]time.Duration{
			500 * time.Millisecond, 2 * time.Second, 8 * time.Second,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %s ratios:", c.name)
		for _, p := range sweep {
			fmt.Fprintf(w, " %v:%.2f", p.TCool, p.Ratio)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "  paper shape: ratio falls with t_cool; sustaining >50% utilisation needs fine-grained throttling")
	return nil
}

func expAblations(w io.Writer) error {
	l, err := capacity.New(capacity.Config{
		Geometry: thermal.ReferenceDrive,
		BPI:      533000, TPI: 64000, Zones: 30,
	})
	if err != nil {
		return err
	}
	b := l.Breakdown()
	fmt.Fprintf(w, "  capacity overheads: ZBR %.1f%%, servo %.2f%%, ECC %.1f%% of raw\n",
		b.ZBRLoss*100, b.ServoLoss*100, b.ECCLoss*100)

	m, err := thermal.New(thermal.ReferenceDrive)
	if err != nil {
		return err
	}
	fixed := m.SteadyState(thermal.WorstCase(143470)).Air
	m.TemperatureDependentAir = true
	dep := m.SteadyState(thermal.WorstCase(143470)).Air
	fmt.Fprintf(w, "  air-property ablation at 143,470 RPM: fixed %.0f C vs film %.0f C\n",
		float64(fixed), float64(dep))
	return nil
}

func expPower(w io.Writer) error {
	pm, err := power.New(thermal.ReferenceDrive)
	if err != nil {
		return err
	}
	for _, rpm := range []units.RPM{15000, 20000, 25000} {
		fmt.Fprintf(w, "  @%v: idle %v, seeking %v (windage %v, motor loss %v)\n",
			rpm, pm.Idle(rpm).Total(), pm.Active(rpm).Total(),
			pm.Active(rpm).Windage, pm.Active(rpm).MotorLoss)
	}
	be := pm.BreakEvenIdle(15000, power.SpinDownPolicy{IdleTimeout: time.Minute})
	fmt.Fprintf(w, "  spin-down break-even idle time at 15k RPM: %v\n", be.Round(time.Second))
	return nil
}

func expReliability(w io.Writer) error {
	rel := reliability.Default()
	fmt.Fprintf(w, "  AFR %.2f%% at the envelope; x2 at +%g C (MTTF %.0fk h -> %.0fk h)\n",
		rel.AFRAt(thermal.Envelope)*100, float64(reliability.DoublingDelta),
		rel.MTTFAt(thermal.Envelope).Hours()/1000,
		rel.MTTFAt(thermal.Envelope+reliability.DoublingDelta).Hours()/1000)
	cool := reliability.NewExposure(rel)
	cool.Add(thermal.Envelope-5, time.Hour)
	hot := reliability.NewExposure(rel)
	hot.Add(thermal.Envelope, time.Hour)
	ext, err := cool.LifeExtension(hot)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  DTM for reliability: 5 C under the envelope extends drive life %.2fx\n", ext)
	return nil
}

func expArray(w io.Writer) error {
	bay := make([]array.Slot, 4)
	for i := range bay {
		bay[i] = array.Slot{Drive: thermal.ReferenceDrive, RPM: 15000, VCMDuty: 1}
	}
	c := array.Chassis{Inlet: thermal.DefaultAmbient, AirflowCFM: 20}
	states, err := array.Evaluate(c, bay)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  4 envelope-design drives at 20 CFM: hottest %.2f C (envelope %.2f), ok=%v\n",
		float64(array.HottestAir(states)), float64(thermal.Envelope), array.AllWithinEnvelope(states))
	maxInlet, err := array.MaxInletForEnvelope(c, bay)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  warmest tolerable inlet for the bay: %.2f C (single drive: 28 C)\n", float64(maxInlet))
	return nil
}

func relAbs(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := (a - b) / b
	if d < 0 {
		return -d
	}
	return d
}
