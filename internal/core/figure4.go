package core

import (
	"fmt"
	"time"

	"repro/internal/parallel"
	"repro/internal/raid"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
)

// Figure4Steps returns the paper's RPM sweep for a workload: the baseline
// plus three 5,000 RPM increments (TPC-H thus runs 7200/12200/17200/22200).
func Figure4Steps(base units.RPM) []units.RPM {
	return []units.RPM{base, base + 5000, base + 10000, base + 15000}
}

// RPMStep is one workload/RPM cell of Figure 4.
type RPMStep struct {
	RPM units.RPM

	// MeanMillis is the mean response time.
	MeanMillis float64

	// CDF is the cumulative response-time distribution over
	// stats.Figure4Buckets (plus the final 200+ entry).
	CDF []float64

	// P95Millis is the 95th-percentile response time.
	P95Millis float64

	// CacheHitFraction is the share of disk requests served from cache.
	CacheHitFraction float64
}

// WorkloadResult is one Figure 4 panel.
type WorkloadResult struct {
	Workload trace.Params
	Steps    []RPMStep
}

// Improvements returns the relative mean-response-time reduction of each
// faster step versus the baseline.
func (r WorkloadResult) Improvements() []float64 {
	if len(r.Steps) == 0 {
		return nil
	}
	base := r.Steps[0].MeanMillis
	out := make([]float64, len(r.Steps)-1)
	for i, s := range r.Steps[1:] {
		out[i] = stats.Improvement(base, s.MeanMillis)
	}
	return out
}

// RunFigure4 simulates one workload across the paper's RPM sweep. The same
// generated trace drives every speed (only the array's spindle speed
// changes), exactly as the paper replays each trace against faster drives.
// The RPM steps fan out over the parallel sweep engine at the default
// worker count.
func RunFigure4(p trace.Params) (WorkloadResult, error) {
	return RunFigure4Workers(p, 0)
}

// RunFigure4Workers is RunFigure4 with an explicit worker count
// (workers <= 0 uses parallel.Default(); 1 forces the sequential path).
// Every worker count produces bit-identical results.
func RunFigure4Workers(p trace.Params, workers int) (WorkloadResult, error) {
	return RunFigure4Steps(p, Figure4Steps(p.BaselineRPM), workers)
}

// RunFigure4Steps runs an explicit RPM sweep. Each step is an independent
// simulation: the worker builds its own volume (no simulator state is
// shared), replays the one shared read-only trace, and summarises its own
// completions, so the steps run concurrently without changing a bit of the
// output.
func RunFigure4Steps(p trace.Params, steps []units.RPM, workers int) (WorkloadResult, error) {
	res := WorkloadResult{Workload: p}
	if len(steps) == 0 {
		return res, nil
	}

	// The first step's volume doubles as the capacity probe (capacity does
	// not depend on the spindle speed), so no throwaway volume is built.
	first, err := p.BuildVolume(steps[0])
	if err != nil {
		return res, err
	}
	// Generate once; every step replays the identical request sequence.
	reqs, err := p.Generate(first.Capacity())
	if err != nil {
		return res, err
	}

	out, err := parallel.Map(workers, steps, func(i int, rpm units.RPM) (RPMStep, error) {
		vol := first
		if i != 0 {
			var err error
			if vol, err = p.BuildVolume(rpm); err != nil {
				return RPMStep{}, err
			}
		}
		comps, err := vol.Simulate(reqs)
		if err != nil {
			return RPMStep{}, fmt.Errorf("core: %s at %v: %w", p.Name, rpm, err)
		}
		return summarizeStep(rpm, comps), nil
	})
	if err != nil {
		return res, err
	}
	res.Steps = out
	return res, nil
}

// summarizeStep folds one RPM step's completions into the Figure 4 metrics.
func summarizeStep(rpm units.RPM, comps []raid.Completion) RPMStep {
	var sample stats.Sample
	var hits, subs int
	for _, c := range comps {
		sample.Add(c.Response())
		hits += c.CacheHits
		subs += c.SubRequests
	}
	step := RPMStep{
		RPM:        rpm,
		MeanMillis: sample.Mean(),
		CDF:        sample.Figure4CDF(),
		P95Millis:  sample.Percentile(95),
	}
	if subs > 0 {
		step.CacheHitFraction = float64(hits) / float64(subs)
	}
	return step
}

// RunAllFigure4 runs every workload at the default worker count, optionally
// scaled to n requests each (n <= 0 keeps the paper's full request counts).
func RunAllFigure4(n int) ([]WorkloadResult, error) {
	return RunAllFigure4Workers(n, 0)
}

// RunAllFigure4Workers fans the whole Figure 4 grid — every workload, every
// RPM step — out over the sweep engine. The per-workload and per-step
// fan-outs share the worker budget; results come back in the workload
// order of trace.Workloads, bit-identical at any worker count.
func RunAllFigure4Workers(n, workers int) ([]WorkloadResult, error) {
	return parallel.Map(workers, trace.Workloads, func(_ int, w trace.Params) (WorkloadResult, error) {
		if n > 0 {
			w = w.WithRequests(n)
		}
		return RunFigure4Workers(w, workers)
	})
}

// FormatResult renders one panel as text (CDF rows per RPM plus the means),
// mirroring how Figure 4 presents each workload.
func FormatResult(r WorkloadResult) string {
	s := fmt.Sprintf("%s (%d disks, %v, baseline %v)\n",
		r.Workload.Name, r.Workload.Disks, r.Workload.Level, r.Workload.BaselineRPM)
	s += "                    <=5    <=10   <=20   <=40   <=60   <=90  <=120  <=150  <=200   200+\n"
	for _, st := range r.Steps {
		s += stats.FormatCDFRow(fmt.Sprintf("%v", st.RPM), st.CDF) +
			fmt.Sprintf("   mean=%.2fms p95=%.1fms hit=%.0f%%\n",
				st.MeanMillis, st.P95Millis, st.CacheHitFraction*100)
	}
	return s
}

// SimDuration reports the simulated wall-clock span of a request set.
func SimDuration(reqs int, rate float64) time.Duration {
	if rate <= 0 {
		return 0
	}
	return time.Duration(float64(reqs) / rate * float64(time.Second))
}
