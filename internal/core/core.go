// Package core is the library facade: one import that ties the capacity,
// performance and thermal models, the technology roadmap, the disk
// simulator and the DTM policies together, and that can regenerate every
// table and figure of the paper (see RunFigure4 and the cmd/ binaries).
//
// The underlying pieces remain importable individually:
//
//   - internal/capacity — ZBR/servo/ECC capacity model (section 3.1)
//   - internal/perf     — seek-time and IDR models (section 3.2)
//   - internal/thermal  — four-node finite-difference thermal model (3.3)
//   - internal/drive    — the integrated drive model and validation corpora
//   - internal/scaling  — density trends and the thermal roadmap (section 4)
//   - internal/disksim  — the DiskSim-substitute disk simulator
//   - internal/raid     — RAID-0/5/JBOD volume layer
//   - internal/trace    — synthetic stand-ins for the five Figure 4 traces
//   - internal/dtm      — dynamic thermal management (section 5)
package core

import (
	"repro/internal/drive"
	"repro/internal/geometry"
	"repro/internal/scaling"
	"repro/internal/thermal"
	"repro/internal/units"
)

// Envelope re-exports the thermal design envelope (45.22 C internal air).
const Envelope = thermal.Envelope

// RoadmapDrive builds the integrated model of a roadmap-generation drive:
// the given year's densities on the given geometry at the given speed, in a
// 3.5" enclosure with the roadmap's 50 ZBR zones.
func RoadmapDrive(year int, size units.Inches, platters int, rpm units.RPM) (*drive.Model, error) {
	bpi, tpi := scaling.DefaultTrend().Densities(year)
	return drive.New(drive.Config{
		Name: "roadmap drive",
		Geometry: geometry.Drive{
			PlatterDiameter: size,
			Platters:        platters,
			FormFactor:      geometry.FormFactor35,
		},
		BPI:   bpi,
		TPI:   tpi,
		RPM:   rpm,
		Zones: scaling.RoadmapZones,
	})
}
