package core

import (
	"strings"
	"testing"

	"repro/internal/thermal"
	"repro/internal/trace"
	"repro/internal/units"
)

func TestFigure4Steps(t *testing.T) {
	steps := Figure4Steps(7200)
	want := []units.RPM{7200, 12200, 17200, 22200}
	for i := range want {
		if steps[i] != want[i] {
			t.Errorf("step %d = %v, want %v", i, steps[i], want[i])
		}
	}
}

func TestRoadmapDrive(t *testing.T) {
	m, err := RoadmapDrive(2002, 2.6, 1, 15000)
	if err != nil {
		t.Fatal(err)
	}
	// At the 2002 reference point the drive sits at the envelope.
	if temp := m.SteadyTemperature(1, thermal.DefaultAmbient); float64(temp) > float64(Envelope)+0.05 {
		t.Errorf("reference drive at %v", temp)
	}
	if _, err := RoadmapDrive(2002, 9.0, 1, 15000); err == nil {
		t.Error("oversized platter should be rejected")
	}
}

func TestRunFigure4SmallRun(t *testing.T) {
	w := trace.Workloads[1].WithRequests(4000) // OLTP, 24 lightly-loaded disks
	res, err := RunFigure4(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 4 {
		t.Fatalf("%d steps", len(res.Steps))
	}
	// Means fall monotonically with RPM.
	for i := 1; i < len(res.Steps); i++ {
		if res.Steps[i].MeanMillis >= res.Steps[i-1].MeanMillis {
			t.Errorf("mean did not fall at step %d: %.2f vs %.2f",
				i, res.Steps[i].MeanMillis, res.Steps[i-1].MeanMillis)
		}
	}
	// The CDF shifts left: every bucket's cumulative fraction grows.
	base, fastest := res.Steps[0].CDF, res.Steps[3].CDF
	for i := range base {
		if fastest[i] < base[i]-1e-9 {
			t.Errorf("CDF bucket %d regressed: %.3f -> %.3f", i, base[i], fastest[i])
		}
	}
	// Improvements are positive and increasing.
	imp := res.Improvements()
	if len(imp) != 3 {
		t.Fatalf("%d improvements", len(imp))
	}
	prev := 0.0
	for i, v := range imp {
		if v <= prev {
			t.Errorf("improvement %d = %.3f not increasing", i, v)
		}
		prev = v
	}
}

func TestRunFigure4StepsCustom(t *testing.T) {
	w := trace.Workloads[4].WithRequests(2000) // TPC-H
	res, err := RunFigure4Steps(w, []units.RPM{7200, 22200}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("%d steps", len(res.Steps))
	}
	if res.Steps[1].MeanMillis >= res.Steps[0].MeanMillis {
		t.Error("faster step should have lower mean")
	}
}

func TestFormatResult(t *testing.T) {
	w := trace.Workloads[4].WithRequests(500)
	res, err := RunFigure4Steps(w, []units.RPM{7200}, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatResult(res)
	if !strings.Contains(out, "TPC-H") || !strings.Contains(out, "mean=") {
		t.Errorf("bad format:\n%s", out)
	}
}

func TestRunAllFigure4Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all five workloads")
	}
	results, err := RunAllFigure4(1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("%d results", len(results))
	}
	for _, r := range results {
		imp := r.Improvements()
		// The paper's headline: 5k RPM buys 20-60% mean response time on
		// every workload. With tiny request counts the band is loose, but
		// every workload must improve.
		if imp[0] <= 0.05 {
			t.Errorf("%s: +5k RPM improvement only %.1f%%", r.Workload.Name, imp[0]*100)
		}
	}
}

func TestSimDuration(t *testing.T) {
	if SimDuration(1000, 100).Seconds() != 10 {
		t.Error("wrong duration")
	}
	if SimDuration(1000, 0) != 0 {
		t.Error("zero rate should yield zero")
	}
}

func TestExperimentRegistry(t *testing.T) {
	opt := Options{Figure4Requests: 500}
	exps := Experiments(opt)
	if len(exps) < 12 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, want := range []string{"T1", "T3", "F2", "F4", "F5", "F7", "W4", "X5"} {
		if !seen[want] {
			t.Errorf("registry missing %s", want)
		}
	}
}

func TestRunByID(t *testing.T) {
	var buf strings.Builder
	if err := RunByID(&buf, "T2", Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T2", "Cheetah X15", "55"} {
		if !strings.Contains(out, want) {
			t.Errorf("T2 output missing %q:\n%s", want, out)
		}
	}
	if err := RunByID(&buf, "nope", Options{}); err == nil {
		t.Error("unknown id should error")
	}
}

func TestRunQuickExperiments(t *testing.T) {
	// Every non-Figure-4 experiment runs to completion and writes output.
	for _, e := range Experiments(Options{Figure4Requests: 500}) {
		if e.ID == "F4" {
			continue // exercised separately at tiny scale
		}
		var buf strings.Builder
		if err := e.Run(&buf); err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if buf.Len() == 0 {
			t.Errorf("%s wrote nothing", e.ID)
		}
	}
}
