package core

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/raid"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
)

// Observe carries the optional observability sinks for a sweep. The zero
// value disables everything: a nil Registry hands out nil metric handles and
// a nil Tracer makes every Record a single branch, so the un-observed sweep
// is bit- and allocation-identical to the pre-observability code.
type Observe struct {
	// Registry receives per-step metric series, labelled
	// {workload=<name>, rpm=<step>}. Those labels make each gauge
	// single-writer and each counter commutative, which is what keeps
	// snapshots byte-identical at any -workers count.
	Registry *obs.Registry

	// Tracer receives request-lifetime spans. Each step records into a
	// private sub-tracer; the runner merges them in step order after the
	// parallel fan-in, so span output is deterministic too.
	Tracer *obs.Tracer

	// SpanLimit caps the spans each step retains (0 = obs.DefaultSpanLimit).
	// Overflow is counted, not kept, bounding memory on long replays.
	SpanLimit int
}

func (o Observe) spanLimit() int {
	if o.SpanLimit > 0 {
		return o.SpanLimit
	}
	return obs.DefaultSpanLimit
}

// enabled reports whether any sink is attached.
func (o Observe) enabled() bool { return o.Registry != nil || o.Tracer != nil }

// RunFigure4Stream is RunFigure4 without ever materializing the trace: each
// RPM step re-streams the workload from its seed (the generator is
// deterministic, so every speed replays the identical request sequence) and
// summarises completions with the O(1) accumulators in internal/stats.
// Memory stays constant in the request count, so the paper's sweep runs on
// traces far past what a collected slice would hold.
//
// MeanMillis and the bucketed CDF match the batch runner exactly (same
// additions in the same order; bucket membership is exact). P95Millis is a
// P² estimate rather than the exact order statistic.
func RunFigure4Stream(p trace.Params) (WorkloadResult, error) {
	return RunFigure4StepsStream(p, Figure4Steps(p.BaselineRPM), 0)
}

// RunFigure4StepsStream runs an explicit RPM sweep on the streaming path.
// Each step is fully self-contained — its own engine, its own volume, its
// own lazy re-streaming of the seeded trace — so the steps fan out over the
// sweep engine (workers <= 0 uses parallel.Default()) while memory stays
// O(queue depth) per in-flight step.
func RunFigure4StepsStream(p trace.Params, steps []units.RPM, workers int) (WorkloadResult, error) {
	return RunFigure4StepsStreamObs(p, steps, workers, Observe{})
}

// RunFigure4StepsStreamObs is RunFigure4StepsStream with observability
// sinks. With ob zero it is the same code on the same fast path (nil metric
// handles, nil tracer). With sinks attached, each step instruments its own
// volume under {workload, rpm} labels and records request spans into a
// private sub-tracer; sub-tracers merge into ob.Tracer in step order after
// the fan-in, so both the snapshot and the span stream are byte-identical
// at any worker count.
func RunFigure4StepsStreamObs(p trace.Params, steps []units.RPM, workers int, ob Observe) (WorkloadResult, error) {
	return RunFigure4StepsStreamCtx(context.Background(), p, steps, workers, ob, nil)
}

// figure4Step runs one RPM cell of the streaming sweep: its own volume, its
// own engine, its own lazy re-streaming of the seeded trace. The source is
// gated on ctx, so a cancelled job stops at the next request admission; the
// gate is one nil-error check per request when ctx never cancels, keeping
// the un-cancelled path bit-identical to the historic one.
func figure4Step(ctx context.Context, p trace.Params, rpm units.RPM, ob Observe, tracer *obs.Tracer) (RPMStep, error) {
	vol, err := p.BuildVolume(rpm)
	if err != nil {
		return RPMStep{}, err
	}
	src, err := p.Stream(vol.Capacity())
	if err != nil {
		return RPMStep{}, err
	}

	eng := sim.NewEngine()
	if ob.Registry != nil {
		vol.Instrument(ob.Registry,
			"workload", p.Name, "rpm", strconv.Itoa(int(rpm)))
	}
	if tracer != nil {
		eng.SetTracer(tracer)
	}

	var mean stats.Running
	p95 := stats.MustP2(0.95)
	cdf := stats.NewFigure4Counts()
	var hits, subs int
	err = vol.RunStream(eng, sim.Gate(ctx, src),
		sim.SinkFunc[raid.Completion](func(c raid.Completion) {
			r := c.Response()
			mean.Add(r)
			p95.Add(r)
			cdf.Add(r)
			hits += c.CacheHits
			subs += c.SubRequests
		}))
	if err != nil {
		return RPMStep{}, fmt.Errorf("core: %s at %v: %w", p.Name, rpm, err)
	}
	// A gated-off source ends the run cleanly with partial statistics;
	// surface the cancellation instead of a wrong-looking step.
	if err := ctx.Err(); err != nil {
		return RPMStep{}, err
	}

	step := RPMStep{
		RPM:        rpm,
		MeanMillis: mean.Mean(),
		CDF:        cdf.CDF(),
		P95Millis:  p95.Value(),
	}
	if subs > 0 {
		step.CacheHitFraction = float64(hits) / float64(subs)
	}
	return step, nil
}

// RunFigure4StepsStreamCtx is RunFigure4StepsStreamObs with cooperative
// cancellation and incremental delivery. ctx is checked at every request
// admission inside each step and at every step boundary; a cancelled or
// deadline-expired context aborts the sweep and returns ctx.Err(). When
// onStep is non-nil, each completed RPMStep is pushed to it in step order
// as soon as it and every earlier step have finished — so a serving layer
// can stream partial results to a client while later steps still run,
// without the delivery order ever depending on the worker count.
func RunFigure4StepsStreamCtx(ctx context.Context, p trace.Params, steps []units.RPM, workers int, ob Observe, onStep sim.Sink[RPMStep]) (WorkloadResult, error) {
	res := WorkloadResult{Workload: p}
	subTracers := make([]*obs.Tracer, len(steps))

	// In-order incremental delivery: completed steps park in `ready` until
	// every earlier index has arrived, then flush in input order. The
	// mutex serializes pushes, so onStep needs no locking of its own.
	var (
		emitMu sync.Mutex
		ready  = make([]*RPMStep, len(steps))
		next   int
	)
	emit := func(i int, s RPMStep) {
		if onStep == nil {
			return
		}
		emitMu.Lock()
		defer emitMu.Unlock()
		ready[i] = &s
		for next < len(ready) && ready[next] != nil {
			onStep.Push(*ready[next])
			next++
		}
	}

	out, err := parallel.MapCtx(ctx, workers, steps, func(i int, rpm units.RPM) (RPMStep, error) {
		var tracer *obs.Tracer
		if ob.Tracer != nil {
			tracer = obs.NewTracer(ob.spanLimit())
			subTracers[i] = tracer
		}
		step, err := figure4Step(ctx, p, rpm, ob, tracer)
		if err != nil {
			return RPMStep{}, err
		}
		emit(i, step)
		return step, nil
	})
	if err != nil {
		return res, err
	}
	for _, sub := range subTracers {
		ob.Tracer.Merge(sub)
	}
	res.Steps = out
	return res, nil
}

// RunAllFigure4StreamObs fans the whole Figure 4 grid out on the streaming
// path with observability sinks. Tracer determinism nests: each workload
// records into its own sub-tracer (whose steps in turn record into per-step
// sub-tracers), and the merges happen in workload order here, step order
// inside — so -trace-out bytes are independent of the worker count.
func RunAllFigure4StreamObs(n, workers int, ob Observe) ([]WorkloadResult, error) {
	subTracers := make([]*obs.Tracer, len(trace.Workloads))
	out, err := parallel.Map(workers, trace.Workloads, func(i int, w trace.Params) (WorkloadResult, error) {
		if n > 0 {
			w = w.WithRequests(n)
		}
		wb := ob
		if ob.Tracer != nil {
			subTracers[i] = obs.NewTracer(ob.spanLimit())
			wb.Tracer = subTracers[i]
		}
		return RunFigure4StepsStreamObs(w, Figure4Steps(w.BaselineRPM), workers, wb)
	})
	if err != nil {
		return nil, err
	}
	for _, sub := range subTracers {
		ob.Tracer.Merge(sub)
	}
	return out, nil
}
