package core

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/raid"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
)

// RunFigure4Stream is RunFigure4 without ever materializing the trace: each
// RPM step re-streams the workload from its seed (the generator is
// deterministic, so every speed replays the identical request sequence) and
// summarises completions with the O(1) accumulators in internal/stats.
// Memory stays constant in the request count, so the paper's sweep runs on
// traces far past what a collected slice would hold.
//
// MeanMillis and the bucketed CDF match the batch runner exactly (same
// additions in the same order; bucket membership is exact). P95Millis is a
// P² estimate rather than the exact order statistic.
func RunFigure4Stream(p trace.Params) (WorkloadResult, error) {
	return RunFigure4StepsStream(p, Figure4Steps(p.BaselineRPM), 0)
}

// RunFigure4StepsStream runs an explicit RPM sweep on the streaming path.
// Each step is fully self-contained — its own engine, its own volume, its
// own lazy re-streaming of the seeded trace — so the steps fan out over the
// sweep engine (workers <= 0 uses parallel.Default()) while memory stays
// O(queue depth) per in-flight step.
func RunFigure4StepsStream(p trace.Params, steps []units.RPM, workers int) (WorkloadResult, error) {
	res := WorkloadResult{Workload: p}
	out, err := parallel.Map(workers, steps, func(_ int, rpm units.RPM) (RPMStep, error) {
		vol, err := p.BuildVolume(rpm)
		if err != nil {
			return RPMStep{}, err
		}
		src, err := p.Stream(vol.Capacity())
		if err != nil {
			return RPMStep{}, err
		}

		var mean stats.Running
		p95 := stats.MustP2(0.95)
		cdf := stats.NewFigure4Counts()
		var hits, subs int
		err = vol.RunStream(sim.NewEngine(), src,
			sim.SinkFunc[raid.Completion](func(c raid.Completion) {
				r := c.Response()
				mean.Add(r)
				p95.Add(r)
				cdf.Add(r)
				hits += c.CacheHits
				subs += c.SubRequests
			}))
		if err != nil {
			return RPMStep{}, fmt.Errorf("core: %s at %v: %w", p.Name, rpm, err)
		}

		step := RPMStep{
			RPM:        rpm,
			MeanMillis: mean.Mean(),
			CDF:        cdf.CDF(),
			P95Millis:  p95.Value(),
		}
		if subs > 0 {
			step.CacheHitFraction = float64(hits) / float64(subs)
		}
		return step, nil
	})
	if err != nil {
		return res, err
	}
	res.Steps = out
	return res, nil
}
