package obs

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// CLI is the -metrics-out/-trace-out flag wiring shared by the commands:
// RegisterFlags before flag.Parse, Enable after it, Flush once the run
// finishes. With neither flag given, Registry and Tracer stay nil and every
// instrumented layer keeps its zero-cost disabled path.
type CLI struct {
	MetricsOut string // snapshot path (.prom = Prometheus text, else NDJSON)
	TraceOut   string // span-stream path (NDJSON)
	Volatile   bool   // include host-dependent series in the snapshot

	Registry *Registry
	Tracer   *Tracer
}

// RegisterFlags declares the observability flags on fs.
func (c *CLI) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.MetricsOut, "metrics-out", "",
		"write a metrics snapshot here after the run (.prom = Prometheus text format, else NDJSON)")
	fs.StringVar(&c.TraceOut, "trace-out", "",
		"write request/DTM lifetime spans here as NDJSON")
	fs.BoolVar(&c.Volatile, "metrics-volatile", false,
		"include host-dependent (volatile) series in -metrics-out; off keeps snapshots byte-reproducible")
}

// Enable materializes the sinks the parsed flags ask for.
func (c *CLI) Enable() {
	if c.MetricsOut != "" {
		c.Registry = NewRegistry()
	}
	if c.TraceOut != "" {
		c.Tracer = NewTracer(DefaultSpanLimit)
	}
}

// Enabled reports whether any output was requested.
func (c *CLI) Enabled() bool { return c.Registry != nil || c.Tracer != nil }

// FlushOnInterrupt installs a SIGINT/SIGTERM handler that writes the
// requested -metrics-out/-trace-out files before exiting with the
// conventional 128+signal status, so an interrupted run keeps whatever the
// registry and tracer had accumulated instead of losing the files entirely.
// The registry and tracer are concurrency-safe, so flushing mid-run is a
// consistent (if partial) snapshot. The returned stop function uninstalls
// the handler; call it before the normal end-of-run Flush so the two
// writers cannot race on the same paths.
func (c *CLI) FlushOnInterrupt() (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			if err := c.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "flush on signal:", err)
			}
			code := 130 // 128 + SIGINT
			if sig == syscall.SIGTERM {
				code = 143
			}
			os.Exit(code)
		case <-done:
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}

// Flush writes the requested output files.
func (c *CLI) Flush() error {
	if c.Registry != nil {
		if err := WriteSnapshotFile(c.MetricsOut, c.Registry, c.Volatile); err != nil {
			return err
		}
	}
	if c.Tracer != nil {
		if err := WriteSpansFile(c.TraceOut, c.Tracer); err != nil {
			return err
		}
	}
	return nil
}
