package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilHandles: every operation on nil handles (the disabled state) must
// be a safe no-op — this is the API contract the instrumented hot paths
// rely on.
func TestNilHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1, 2})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(5)
	c.AddDuration(time.Second)
	g.Set(1)
	g.SetInt(2)
	g.Max(3)
	h.Observe(1)
	h.ObserveDuration(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

// TestHistogramBucketBoundaries pins the <=edge semantics: an observation
// exactly on an edge lands in that edge's bucket, just above it in the
// next, and past the last edge in the final open bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	edges := []float64{5, 10, 20}
	h := r.Histogram("svc_ms", edges)
	for _, v := range []float64{5, 5.0001, 10, 20, 20.0001, 1000} {
		h.Observe(v)
	}
	ms := r.Snapshot()
	if len(ms) != 1 {
		t.Fatalf("want 1 series, got %d", len(ms))
	}
	m := ms[0]
	want := []int64{1, 2, 1, 2} // <=5, <=10, <=20, open
	if len(m.Counts) != len(want) {
		t.Fatalf("counts %v, want %v", m.Counts, want)
	}
	for i := range want {
		if m.Counts[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (%v)", i, m.Counts[i], want[i], m.Counts)
		}
	}
	if m.N != 6 {
		t.Errorf("n = %d, want 6", m.N)
	}
	if m.Max != 1000 {
		t.Errorf("max = %g, want 1000", m.Max)
	}
	wantSum := 5 + 5.0001 + 10 + 20 + 20.0001 + 1000
	if m.Sum != wantSum {
		t.Errorf("sum = %g, want %g", m.Sum, wantSum)
	}
}

// TestRegistryIdempotent: registering the same (name, labels) twice returns
// the same underlying series regardless of label argument order.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs", "workload", "TPC-C", "rpm", "15000")
	b := r.Counter("reqs", "rpm", "15000", "workload", "TPC-C")
	if a != b {
		t.Fatal("label order must not fork the series")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatal("handles must share state")
	}
	if n := len(r.Snapshot()); n != 1 {
		t.Fatalf("want 1 series, got %d", n)
	}
}

// TestRegistryKindMismatchPanics: a name/labels pair re-registered as a
// different kind is a bug that must fail loudly.
func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("x")
}

// TestOddLabelsPanics: a dangling label key is a registration-time bug.
func TestOddLabelsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("odd label list must panic")
		}
	}()
	r.Counter("x", "key-without-value")
}

// TestGaugeMax: Max is order-free — any interleaving of the same writes
// converges to the same value.
func TestGaugeMax(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("peak")
	for _, v := range []float64{3, 7, 2, 7, 5} {
		g.Max(v)
	}
	if g.Value() != 7 {
		t.Fatalf("max = %g, want 7", g.Value())
	}
	g.Set(1) // Set may lower; Max may not
	g.Max(0.5)
	if g.Value() != 1 {
		t.Fatalf("after Set(1)/Max(0.5): %g, want 1", g.Value())
	}
}

// TestConcurrentUpdates hammers one registry from many goroutines and
// checks the commutative operations land exactly; run with -race.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	g := r.Gauge("peak")
	h := r.Histogram("v", []float64{10})
	const goroutines, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Max(float64(w*iters + i))
				h.Observe(float64(i % 20))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != goroutines*iters {
		t.Errorf("counter = %d, want %d", c.Value(), goroutines*iters)
	}
	if g.Value() != float64(goroutines*iters-1) {
		t.Errorf("max gauge = %g, want %d", g.Value(), goroutines*iters-1)
	}
	ms := r.Snapshot()
	for _, m := range ms {
		if m.Name == "v" && m.N != goroutines*iters {
			t.Errorf("histogram n = %d, want %d", m.N, goroutines*iters)
		}
	}
}

// TestSnapshotOrderIndependent: two registries fed the same updates in
// different orders must render byte-identical NDJSON — the heart of the
// workers-1 vs workers-4 contract.
func TestSnapshotOrderIndependent(t *testing.T) {
	build := func(reverse bool) string {
		r := NewRegistry()
		steps := []string{"10000", "15000", "20000"}
		if reverse {
			steps = []string{"20000", "15000", "10000"}
		}
		for _, rpm := range steps {
			r.Counter("reqs", "rpm", rpm).Add(int64(len(rpm)))
			r.Histogram("svc", []float64{5, 10}, "rpm", rpm).Observe(7)
		}
		var b strings.Builder
		if err := WriteNDJSON(&b, Stable(r.Snapshot())); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := build(false), build(true); a != b {
		t.Fatalf("snapshots differ by registration order:\n%s\nvs\n%s", a, b)
	}
}
