package obs

import (
	"encoding/json"
	"io"
	"os"
	"strconv"
	"sync"
	"time"
)

// Attr is one span annotation. Values are pre-rendered strings so a span is
// plain data: rendering at record time keeps the writer trivial and the
// bytes deterministic.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// AttrStr builds a string annotation.
func AttrStr(k, v string) Attr { return Attr{Key: k, Value: v} }

// AttrInt builds an integer annotation.
func AttrInt(k string, v int64) Attr { return Attr{Key: k, Value: strconv.FormatInt(v, 10)} }

// AttrBool builds a boolean annotation.
func AttrBool(k string, v bool) Attr { return Attr{Key: k, Value: strconv.FormatBool(v)} }

// AttrFloat builds a float annotation (shortest round-trip form).
func AttrFloat(k string, v float64) Attr { return Attr{Key: k, Value: formatFloat(v)} }

// AttrDur builds a duration annotation in fractional milliseconds — the
// unit every response-time table in this repository reports.
func AttrDur(k string, d time.Duration) Attr {
	return AttrFloat(k, float64(d)/float64(time.Millisecond))
}

// Span is one interval on the simulation clock: a request's lifetime from
// arrival to completion, a DTM throttle episode, an RPM transition. Start
// and End are sim time (not wall time), so spans from a seeded run are
// bit-reproducible. ID is assigned by the Tracer in record order.
type Span struct {
	ID    int64         `json:"id"`
	Name  string        `json:"name"`
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
	Attrs []Attr        `json:"attrs,omitempty"`
}

// Dur returns the span's length.
func (s Span) Dur() time.Duration { return s.End - s.Start }

// Tracer collects spans. A nil *Tracer is the disabled state: Record is a
// single nil check with zero allocations, which is how the sim layers stay
// free when no -trace-out is requested. A Tracer is safe for concurrent use,
// but for deterministic output each engine records into its own Tracer and
// the runner merges them in a fixed order (see Merge).
type Tracer struct {
	mu      sync.Mutex
	limit   int
	spans   []Span
	dropped int64
	nextID  int64
}

// DefaultSpanLimit is the per-run span retention cap runners use when the
// caller does not pick one: enough for every request of the paper-scale
// workloads, small enough that a runaway replay cannot exhaust memory.
const DefaultSpanLimit = 1 << 20

// NewTracer returns a tracer retaining at most limit spans (limit <= 0
// means unlimited). Spans past the limit are counted in Dropped rather
// than retained, bounding memory on long replays.
func NewTracer(limit int) *Tracer { return &Tracer{limit: limit} }

// Record appends a span, assigning its ID (nil-safe no-op).
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.limit > 0 && len(t.spans) >= t.limit {
		t.dropped++
		t.mu.Unlock()
		return
	}
	t.nextID++
	s.ID = t.nextID
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Merge re-records sub's spans into t in sub's record order, reassigning
// IDs. The sweep runners give each worker its own sub-tracer and merge them
// in input order, which is what keeps -trace-out byte-identical at any
// worker count.
func (t *Tracer) Merge(sub *Tracer) {
	if t == nil || sub == nil {
		return
	}
	for _, s := range sub.Spans() {
		t.Record(s)
	}
	t.mu.Lock()
	t.dropped += sub.Dropped()
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in record order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dropped returns how many spans the limit discarded.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteSpans writes spans as NDJSON, one object per line, in order.
func WriteSpans(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteSpansFile writes the tracer's spans to path as NDJSON.
func WriteSpansFile(path string, t *Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteSpans(f, t.Spans()); err != nil {
		return err
	}
	return f.Close()
}
