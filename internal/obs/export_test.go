package obs

import (
	"strings"
	"testing"
)

// TestNDJSONRoundTrip: ReadNDJSON(WriteNDJSON(snapshot)) preserves every
// series, payload, and canonical id — the obsdump golden gate relies on it.
func TestNDJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs", "workload", "TPC-C").Add(42)
	r.Gauge("temp", "policy", "drpm").Set(45.25)
	r.Histogram("svc_ms", []float64{5, 10}, "rpm", "15000").Observe(7)

	var b strings.Builder
	snap := r.Snapshot()
	if err := WriteNDJSON(&b, snap); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNDJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(snap) {
		t.Fatalf("round-trip lost series: %d != %d", len(back), len(snap))
	}
	for i := range snap {
		if back[i].ID() != snap[i].ID() {
			t.Errorf("id %d: %q != %q", i, back[i].ID(), snap[i].ID())
		}
		if back[i].Count != snap[i].Count || back[i].N != snap[i].N {
			t.Errorf("payload %d drifted", i)
		}
		if (back[i].Value == nil) != (snap[i].Value == nil) {
			t.Errorf("gauge pointer %d drifted", i)
		}
	}
}

// TestStableFiltersVolatile: volatile series appear in Snapshot but are
// removed from the deterministic view.
func TestStableFiltersVolatile(t *testing.T) {
	r := NewRegistry()
	r.Counter("det").Inc()
	r.VolatileCounter("busy_ns").Add(123)
	r.VolatileGauge("workers").Set(4)
	all := r.Snapshot()
	if len(all) != 3 {
		t.Fatalf("snapshot has %d series, want 3", len(all))
	}
	st := Stable(all)
	if len(st) != 1 || st[0].Name != "det" {
		t.Fatalf("Stable kept %v, want only det", st)
	}
}

// TestPrometheusFormat pins the text exposition rendering: TYPE lines,
// cumulative histogram buckets with le labels and +Inf, _sum/_count.
func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "workload", "TPC-C").Add(3)
	h := r.Histogram("svc_ms", []float64{5, 10}, "rpm", "15000")
	h.Observe(4)
	h.Observe(7)
	h.Observe(70)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		`reqs_total{workload="TPC-C"} 3`,
		"# TYPE svc_ms histogram",
		`svc_ms_bucket{rpm="15000",le="5"} 1`,
		`svc_ms_bucket{rpm="15000",le="10"} 2`,
		`svc_ms_bucket{rpm="15000",le="+Inf"} 3`,
		`svc_ms_sum{rpm="15000"} 81`,
		`svc_ms_count{rpm="15000"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestLabelEscaping: backslash, quote, and newline must be escaped in both
// the Prometheus rendering and the canonical id.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "path", "a\\b\"c\nd").Inc()
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `c{path="a\\b\"c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("want %q in:\n%s", want, b.String())
	}
	if id := r.Snapshot()[0].ID(); !strings.Contains(id, `a\\b\"c\nd`) {
		t.Errorf("canonical id not escaped: %s", id)
	}
	// The escaped forms must stay distinguishable: `a\"b` and `a"b` differ.
	r2 := NewRegistry()
	r2.Counter("c", "v", `a\"b`)
	r2.Counter("c", "v", `a"b`)
	if n := len(r2.Snapshot()); n != 2 {
		t.Errorf("escape collision: %d series, want 2", n)
	}
}
