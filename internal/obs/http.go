package obs

import "net/http"

// Exporter media types. Prometheus scrapers negotiate on the text-format
// version suffix; the NDJSON type matches the snapshot files the commands
// write, so `curl | cmd/obsdump` round-trips.
const (
	ContentTypePrometheus = "text/plain; version=0.0.4; charset=utf-8"
	ContentTypeNDJSON     = "application/x-ndjson"
)

// Handler serves the registry's snapshot over HTTP — the /metrics endpoint
// of the serving layer. GET (or HEAD) returns the Prometheus text format by
// default, or the NDJSON snapshot with ?format=ndjson. Volatile series are
// included by default (a live scrape wants queue depths and latencies);
// ?volatile=0 restricts the response to the deterministic set the golden
// snapshots pin. A nil registry serves an empty document of the requested
// type, so wiring the handler up never needs a nil check.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		ms := r.Snapshot()
		if req.URL.Query().Get("volatile") == "0" {
			ms = Stable(ms)
		}
		var err error
		if req.URL.Query().Get("format") == "ndjson" {
			w.Header().Set("Content-Type", ContentTypeNDJSON)
			if req.Method == http.MethodHead {
				return
			}
			err = WriteNDJSON(w, ms)
		} else {
			w.Header().Set("Content-Type", ContentTypePrometheus)
			if req.Method == http.MethodHead {
				return
			}
			err = WritePrometheus(w, ms)
		}
		// Headers are already out; a mid-body write error just means the
		// scraper went away, and there is nothing useful left to send.
		_ = err
	})
}
