package obs

import (
	"testing"
	"time"
)

// TestDisabledPathAllocsNothing pins the "disabled means free" contract as
// a hard test (not just a benchmark): every nil-handle operation must be
// allocation-free.
func TestDisabledPathAllocsNothing(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1})
	var tr *Tracer
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.AddDuration(time.Millisecond)
		g.Set(1)
		g.Max(2)
		h.Observe(3)
		h.ObserveDuration(time.Millisecond)
		tr.Record(Span{Name: "s"})
	}); n != 0 {
		t.Fatalf("disabled path allocates %v per run, want 0", n)
	}
}

// BenchmarkDisabledCounter measures the nil-handle fast path the
// instrumented hot loops take when no registry is attached. The CI bench
// gate pins this at 0 allocs/op.
func BenchmarkDisabledCounter(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkDisabledHistogram is the nil-histogram fast path.
func BenchmarkDisabledHistogram(b *testing.B) {
	var r *Registry
	h := r.Histogram("x", []float64{5, 10})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

// BenchmarkEnabledCounter is the live atomic-add path, for scale.
func BenchmarkEnabledCounter(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkEnabledHistogram is the live mutex+bucket path.
func BenchmarkEnabledHistogram(b *testing.B) {
	h := NewRegistry().Histogram("x", []float64{5, 10, 20, 40, 60, 90, 120, 150, 200})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 250))
	}
}
