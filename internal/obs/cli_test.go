package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// parseCLI runs RegisterFlags/Parse/Enable over args as a command would.
func parseCLI(t *testing.T, args ...string) *CLI {
	t.Helper()
	var c CLI
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	c.Enable()
	return &c
}

func TestCLIDefaultsDisabled(t *testing.T) {
	c := parseCLI(t)
	if c.MetricsOut != "" || c.TraceOut != "" || c.Volatile {
		t.Fatalf("defaults: %+v, want empty paths and volatile off", c)
	}
	if c.Enabled() || c.Registry != nil || c.Tracer != nil {
		t.Fatal("no flags should leave every sink nil (the zero-cost path)")
	}
	// Flush with nothing enabled is a no-op, not an error.
	if err := c.Flush(); err != nil {
		t.Fatalf("disabled flush: %v", err)
	}
}

func TestCLIMetricsOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ndjson")
	c := parseCLI(t, "-metrics-out", path)
	if !c.Enabled() || c.Registry == nil {
		t.Fatal("-metrics-out should enable the registry")
	}
	if c.Tracer != nil {
		t.Fatal("-metrics-out alone should not enable the tracer")
	}
	c.Registry.Counter("x_total").Inc()
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "x_total") {
		t.Fatalf("snapshot %q missing series", b)
	}
}

func TestCLITraceOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.ndjson")
	c := parseCLI(t, "-trace-out", path)
	if c.Tracer == nil || c.Registry != nil {
		t.Fatalf("-trace-out should enable only the tracer: %+v", c)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
}

// TestCLIVolatileFlag pins that -metrics-volatile switches the snapshot
// between the stable-only and full series sets.
func TestCLIVolatileFlag(t *testing.T) {
	for _, volatile := range []bool{false, true} {
		path := filepath.Join(t.TempDir(), "m.ndjson")
		args := []string{"-metrics-out", path}
		if volatile {
			args = append(args, "-metrics-volatile")
		}
		c := parseCLI(t, args...)
		if c.Volatile != volatile {
			t.Fatalf("volatile flag = %v, want %v", c.Volatile, volatile)
		}
		c.Registry.Counter("stable_total").Inc()
		c.Registry.VolatileCounter("volatile_total").Inc()
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.Contains(string(b), "volatile_total"); got != volatile {
			t.Fatalf("volatile=%v: snapshot contains volatile series = %v", volatile, got)
		}
	}
}

func TestCLIBadPathErrors(t *testing.T) {
	c := parseCLI(t, "-metrics-out", filepath.Join(t.TempDir(), "no", "such", "dir", "m.ndjson"))
	if err := c.Flush(); err == nil {
		t.Fatal("flush into a missing directory should fail")
	}
}
