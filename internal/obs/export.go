package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metric is one series' state at snapshot time. The JSON field order (and
// json.Marshal's shortest-round-trip float rendering) is what makes NDJSON
// snapshots byte-comparable.
type Metric struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`

	// Counter / gauge payloads.
	Count int64    `json:"count,omitempty"` // counter value
	Value *float64 `json:"value,omitempty"` // gauge value (pointer: 0 is meaningful)

	// Histogram payload: Counts has one entry per edge plus the final
	// open bucket; Sum and Max are in the series' own units.
	Edges  []float64 `json:"edges,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
	N      int64     `json:"n,omitempty"`
	Sum    float64   `json:"sum,omitempty"`
	Max    float64   `json:"max,omitempty"`

	// Volatile marks a series excluded from deterministic snapshots.
	Volatile bool `json:"volatile,omitempty"`

	id string // canonical sort key, not serialized
}

// ID returns the series' canonical identity (name plus sorted labels).
func (m Metric) ID() string { return m.id }

// Snapshot returns every registered series, volatile included, sorted by
// canonical id. It is safe to call while updates continue; each series is
// read atomically (counters, gauges) or under its own lock (histograms).
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })

	out := make([]Metric, 0, len(all))
	for _, s := range all {
		m := Metric{Name: s.name, Kind: s.kind.String(), Volatile: s.volatile, id: s.id}
		if len(s.labels) > 0 {
			m.Labels = make(map[string]string, len(s.labels))
			for _, kv := range s.labels {
				m.Labels[kv[0]] = kv[1]
			}
		}
		switch s.kind {
		case counterKind:
			m.Count = s.c.Value()
		case gaugeKind:
			v := s.g.Value()
			m.Value = &v
		case histogramKind:
			n, sum, max, counts := s.h.snapshot()
			m.N, m.Sum, m.Max, m.Counts = n, sum, max, counts
			m.Edges = append([]float64(nil), s.h.edges...)
		}
		out = append(out, m)
	}
	return out
}

// Stable filters a snapshot down to the deterministic series — the set the
// byte-identity contract covers and the -metrics-out writers emit.
func Stable(ms []Metric) []Metric {
	out := make([]Metric, 0, len(ms))
	for _, m := range ms {
		if !m.Volatile {
			out = append(out, m)
		}
	}
	return out
}

// WriteNDJSON writes one JSON object per series, in snapshot order.
func WriteNDJSON(w io.Writer, ms []Metric) error {
	enc := json.NewEncoder(w)
	for i := range ms {
		if err := enc.Encode(&ms[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadNDJSON parses a WriteNDJSON stream back into metrics (cmd/obsdump's
// input path). Blank lines are skipped; ids are rebuilt from name+labels.
func ReadNDJSON(r io.Reader) ([]Metric, error) {
	dec := json.NewDecoder(r)
	var out []Metric
	for {
		var m Metric
		if err := dec.Decode(&m); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		keys := make([]string, 0, len(m.Labels))
		for k := range m.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		pairs := make([][2]string, len(keys))
		for i, k := range keys {
			pairs[i] = [2]string{k, m.Labels[k]}
		}
		m.id = seriesID(m.Name, pairs)
		out = append(out, m)
	}
}

// escapeLabel escapes a label value for the Prometheus text format
// (backslash, double-quote, and newline).
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promLabels renders {k="v",...} (empty string for no labels), with an
// optional extra pair appended (the histogram "le" label).
func promLabels(labels map[string]string, extraK, extraV string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabel(labels[k]))
	}
	if extraK != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraK, escapeLabel(extraV))
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format: one # TYPE line per metric name, histogram series expanded into
// cumulative _bucket/_sum/_count.
func WritePrometheus(w io.Writer, ms []Metric) error {
	typed := make(map[string]bool)
	for _, m := range ms {
		if !typed[m.Name] {
			typed[m.Name] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
				return err
			}
		}
		switch m.Kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.Name, promLabels(m.Labels, "", ""), m.Count); err != nil {
				return err
			}
		case "gauge":
			var v float64
			if m.Value != nil {
				v = *m.Value
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, promLabels(m.Labels, "", ""), formatFloat(v)); err != nil {
				return err
			}
		case "histogram":
			var cum int64
			for i, c := range m.Counts {
				cum += c
				le := "+Inf"
				if i < len(m.Edges) {
					le = formatFloat(m.Edges[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, promLabels(m.Labels, "le", le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, promLabels(m.Labels, "", ""), formatFloat(m.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, promLabels(m.Labels, "", ""), m.N); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteSnapshotFile writes the deterministic (non-volatile) part of the
// registry's snapshot to path: Prometheus text format when the path ends in
// .prom, NDJSON otherwise. Passing includeVolatile keeps the volatile
// series (their values are host- and schedule-dependent).
func WriteSnapshotFile(path string, r *Registry, includeVolatile bool) error {
	ms := r.Snapshot()
	if !includeVolatile {
		ms = Stable(ms)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".prom") {
		err = WritePrometheus(f, ms)
	} else {
		err = WriteNDJSON(f, ms)
	}
	if err != nil {
		return err
	}
	return f.Close()
}
