// Package obs is the observability spine: a dependency-free (stdlib +
// internal/stats only), concurrency-safe metrics registry plus the
// lightweight trace spans the sim-engine layers emit per request.
//
// Two contracts shape the design:
//
//   - Disabled means free. Every constructor is nil-receiver tolerant: a nil
//     *Registry hands out nil handles, and every operation on a nil handle
//     (Counter.Add, Gauge.Set, Histogram.Observe, Tracer.Record) is a
//     single branch with zero allocations. Instrumented hot paths therefore
//     cost nothing when no registry is attached — pinned by the
//     zero-allocation benchmark in bench_test.go.
//
//   - Deterministic under the sweep engine. Snapshots must be byte-identical
//     at any -workers count, so the registry only offers operations whose
//     final state is independent of interleaving: counters are commutative
//     integer adds, histograms are commutative bucket increments, and
//     gauges follow a single-writer-per-series discipline (each sweep cell
//     labels its own series) or use the order-free Max. Series that cannot
//     be deterministic (wall-clock worker busy time) are registered as
//     *volatile* and excluded from the default snapshot via Stable.
//
// Series are identified by name plus label pairs; Snapshot returns them
// sorted by canonical id, so two registries that saw the same updates in
// any order render the same bytes.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Counter is a monotonically-increasing integer series. The zero value is
// ready to use; a nil Counter ignores updates.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (nil-safe; negative adds are a programming error but are not
// checked on the hot path).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// AddDuration adds a duration as nanoseconds (counters are integers, and
// nanoseconds lose nothing of a time.Duration).
func (c *Counter) AddDuration(d time.Duration) { c.Add(int64(d)) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-written float64 series. Writes must follow a
// single-writer-per-series discipline for deterministic snapshots (or use
// Max, which is order-free). A nil Gauge ignores updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (nil-safe).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Max raises the gauge to v if v is larger — commutative, so it stays
// deterministic with concurrent writers.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets. It wraps the
// internal/stats accumulators (BucketCounts for the bucket CDF, Running for
// count/sum/max) behind a mutex: bucket membership is exact, nothing is
// retained per observation, and a mutex (rather than per-bucket atomics)
// keeps count/sum/bucket mutually consistent in snapshots. A nil Histogram
// ignores observations.
type Histogram struct {
	mu      sync.Mutex
	edges   []float64
	buckets *stats.BucketCounts
	run     stats.Running
}

// Observe records one observation (units are the series' own; the sim
// layers record milliseconds, matching internal/stats).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.buckets.AddMillis(v)
	h.run.AddMillis(v)
	h.mu.Unlock()
}

// ObserveDuration records a duration in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(float64(d) / float64(time.Millisecond))
}

// snapshot returns (count, sum, max, per-bucket counts) consistently.
func (h *Histogram) snapshot() (int64, float64, float64, []int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.run.N(), h.run.Sum(), h.run.Max(), h.buckets.Counts()
}

// kind discriminates the three series types.
type kind uint8

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered metric.
type series struct {
	id       string
	name     string
	labels   [][2]string
	kind     kind
	volatile bool

	c *Counter
	g *Gauge
	h *Histogram
}

// Registry holds the registered series. The zero value is not usable; call
// NewRegistry. A nil *Registry is the disabled state: every constructor
// returns a nil handle and Snapshot returns nil.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// seriesID renders the canonical identity: name{k1="v1",k2="v2"} with keys
// sorted, the same form the Prometheus exporter emits.
func seriesID(name string, labels [][2]string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, kv := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[0])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// pairLabels converts alternating key/value strings into sorted pairs.
// An odd count is a programming error and panics at registration time
// (never on a hot path — handles are created once at setup).
func pairLabels(labels []string) [][2]string {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	if len(labels) == 0 {
		return nil
	}
	out := make([][2]string, len(labels)/2)
	for i := range out {
		out[i] = [2]string{labels[2*i], labels[2*i+1]}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// register returns the series for (name, labels), creating it on first use.
// Re-registering with a different kind panics: two call sites disagreeing
// about a series' type is a bug worth failing loudly over.
func (r *Registry) register(name string, k kind, volatile bool, labels []string, edges []float64) *series {
	pairs := pairLabels(labels)
	id := seriesID(name, pairs)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[id]; ok {
		if s.kind != k {
			panic(fmt.Sprintf("obs: series %s re-registered as %v (was %v)", id, k, s.kind))
		}
		return s
	}
	s := &series{id: id, name: name, labels: pairs, kind: k, volatile: volatile}
	switch k {
	case counterKind:
		s.c = &Counter{}
	case gaugeKind:
		s.g = &Gauge{}
	case histogramKind:
		e := append([]float64(nil), edges...)
		s.h = &Histogram{edges: e, buckets: stats.NewBucketCounts(e)}
	}
	r.series[id] = s
	return s
}

// Counter returns the counter for name and alternating key/value labels,
// registering it on first use. A nil registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, counterKind, false, labels, nil).c
}

// Gauge returns the gauge for name and labels (nil registry: nil handle).
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, gaugeKind, false, labels, nil).g
}

// Histogram returns the fixed-bucket histogram for name and labels; edges
// must be ascending (observations above the last edge land in a final open
// bucket, exactly as stats.BucketCounts). Re-registration ignores edges and
// returns the existing series.
func (r *Registry) Histogram(name string, edges []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, histogramKind, false, labels, edges).h
}

// VolatileCounter registers a counter whose value is legitimately
// nondeterministic (wall-clock busy time, host-dependent totals). Volatile
// series appear in Snapshot but are removed by Stable, which is what the
// -metrics-out writers use — so they never break snapshot byte-identity.
func (r *Registry) VolatileCounter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, counterKind, true, labels, nil).c
}

// VolatileGauge is VolatileCounter for gauges.
func (r *Registry) VolatileGauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, gaugeKind, true, labels, nil).g
}

// VolatileHistogram is VolatileCounter for histograms — wall-clock latency
// series (the serving layer's per-endpoint timings) are host-dependent, so
// they never enter the deterministic snapshot.
func (r *Registry) VolatileHistogram(name string, edges []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, histogramKind, true, labels, edges).h
}
