package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// get exercises Handler with one request and returns the recorder.
func get(r *Registry, method, target string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest(method, target, nil))
	return rec
}

func TestHandlerPrometheusContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total").Inc()

	rec := get(r, "GET", "/metrics")
	if rec.Code != 200 {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	ct := rec.Header().Get("Content-Type")
	if ct != ContentTypePrometheus {
		t.Fatalf("Content-Type = %q, want %q", ct, ContentTypePrometheus)
	}
	// Scrapers key on the version suffix specifically.
	if !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type %q missing text-format version", ct)
	}
	if !strings.Contains(rec.Body.String(), "reqs_total") {
		t.Fatalf("body missing series: %q", rec.Body.String())
	}
}

func TestHandlerNDJSONContentType(t *testing.T) {
	r := NewRegistry()
	r.Gauge("depth").SetInt(3)

	rec := get(r, "GET", "/metrics?format=ndjson")
	if ct := rec.Header().Get("Content-Type"); ct != ContentTypeNDJSON {
		t.Fatalf("Content-Type = %q, want %q", ct, ContentTypeNDJSON)
	}
	if !strings.Contains(rec.Body.String(), `"name":"depth"`) {
		t.Fatalf("body missing series: %q", rec.Body.String())
	}
}

func TestHandlerVolatileFilter(t *testing.T) {
	r := NewRegistry()
	r.Counter("stable_total").Inc()
	r.VolatileCounter("volatile_total").Inc()

	full := get(r, "GET", "/metrics").Body.String()
	if !strings.Contains(full, "volatile_total") || !strings.Contains(full, "stable_total") {
		t.Fatalf("default scrape should include both series: %q", full)
	}
	stable := get(r, "GET", "/metrics?volatile=0").Body.String()
	if strings.Contains(stable, "volatile_total") {
		t.Fatalf("?volatile=0 should drop volatile series: %q", stable)
	}
	if !strings.Contains(stable, "stable_total") {
		t.Fatalf("?volatile=0 should keep stable series: %q", stable)
	}
}

func TestHandlerMethodsAndNilRegistry(t *testing.T) {
	rec := get(nil, "POST", "/metrics")
	if rec.Code != 405 {
		t.Fatalf("POST status = %d, want 405", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); !strings.Contains(allow, "GET") {
		t.Fatalf("Allow = %q, want GET listed", allow)
	}

	// HEAD sets the type but sends no body.
	rec = get(nil, "HEAD", "/metrics")
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Fatalf("HEAD = %d with %d body bytes, want 200 and empty", rec.Code, rec.Body.Len())
	}
	if ct := rec.Header().Get("Content-Type"); ct != ContentTypePrometheus {
		t.Fatalf("HEAD Content-Type = %q", ct)
	}

	// A nil registry serves an empty document, not a panic or error.
	rec = get(nil, "GET", "/metrics")
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Fatalf("nil registry GET = %d with body %q, want 200 empty", rec.Code, rec.Body.String())
	}
}
