package obs

import (
	"strings"
	"testing"
	"time"
)

// TestTracerRecordAndIDs: IDs are assigned in record order, starting at 1.
func TestTracerRecordAndIDs(t *testing.T) {
	tr := NewTracer(0)
	tr.Record(Span{Name: "a", Start: 0, End: time.Millisecond})
	tr.Record(Span{Name: "b", Start: time.Millisecond, End: 2 * time.Millisecond})
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].ID != 1 || spans[1].ID != 2 {
		t.Fatalf("spans %+v", spans)
	}
	if spans[1].Dur() != time.Millisecond {
		t.Errorf("dur = %v", spans[1].Dur())
	}
}

// TestTracerLimit: spans past the cap are counted, not retained.
func TestTracerLimit(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Record(Span{Name: "s"})
	}
	if n := len(tr.Spans()); n != 2 {
		t.Fatalf("retained %d, want 2", n)
	}
	if d := tr.Dropped(); d != 3 {
		t.Fatalf("dropped %d, want 3", d)
	}
}

// TestTracerMergeOrder: merging sub-tracers in a fixed order yields the
// same span sequence and IDs no matter how the subs were filled — the
// mechanism behind deterministic -trace-out under -workers N.
func TestTracerMergeOrder(t *testing.T) {
	subA, subB := NewTracer(0), NewTracer(0)
	subA.Record(Span{Name: "a1"})
	subA.Record(Span{Name: "a2"})
	subB.Record(Span{Name: "b1"})

	root := NewTracer(0)
	root.Merge(subA)
	root.Merge(subB)
	var names []string
	for _, s := range root.Spans() {
		names = append(names, s.Name)
	}
	if got := strings.Join(names, ","); got != "a1,a2,b1" {
		t.Fatalf("merged order %q", got)
	}
	for i, s := range root.Spans() {
		if s.ID != int64(i+1) {
			t.Fatalf("merged IDs not reassigned: %+v", root.Spans())
		}
	}
}

// TestTracerMergeCarriesDropped: a sub's overflow count survives the merge.
func TestTracerMergeCarriesDropped(t *testing.T) {
	sub := NewTracer(1)
	sub.Record(Span{Name: "kept"})
	sub.Record(Span{Name: "lost"})
	root := NewTracer(0)
	root.Merge(sub)
	if root.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", root.Dropped())
	}
}

// TestNilTracer: the disabled state ignores everything.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.Record(Span{Name: "x"})
	if tr.Spans() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer must be empty")
	}
	var root *Tracer
	root.Merge(NewTracer(0)) // nil receiver
	NewTracer(0).Merge(nil)  // nil sub
}

// TestWriteSpans pins the NDJSON rendering, attrs included.
func TestWriteSpans(t *testing.T) {
	tr := NewTracer(0)
	tr.Record(Span{
		Name:  "disk.request",
		Start: 1500 * time.Microsecond,
		End:   2 * time.Millisecond,
		Attrs: []Attr{AttrInt("req", 7), AttrDur("queue_ms", 500*time.Microsecond)},
	})
	var b strings.Builder
	if err := WriteSpans(&b, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	want := `{"id":1,"name":"disk.request","start_ns":1500000,"end_ns":2000000,"attrs":[{"k":"req","v":"7"},{"k":"queue_ms","v":"0.5"}]}` + "\n"
	if b.String() != want {
		t.Fatalf("got %q\nwant %q", b.String(), want)
	}
}
