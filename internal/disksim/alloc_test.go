package disksim

import (
	"math"
	"testing"

	"repro/internal/obs"
)

// TestEnabledInstrumentsServeAllocsNothing extends the obs package's
// "disabled means free" pin to the enabled-registry path: a Disk with a
// live Instruments set attached must still serve requests — cache misses,
// cache hits and writes — without a single allocation. The handles are
// pre-resolved at NewInstruments time; nothing on the record path may
// rebuild labels or box values.
func TestEnabledInstrumentsServeAllocsNothing(t *testing.T) {
	d := testDisk(t, 10000)
	reg := obs.NewRegistry()
	d.SetInstruments(NewInstruments(reg, len(d.Layout().Zones), "disk", "0"))

	total := d.Layout().TotalSectors()
	lbns := []int64{0, total / 3, total / 2, total - 64}
	id := int64(0)
	serve := func(lbn int64, write bool) {
		id++
		if _, err := d.Serve(Request{ID: id, Arrival: d.ReadyTime(), LBN: lbn, Sectors: 8, Write: write}); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up: touch every path once (cold misses, a re-read hit, a write)
	// so lazily-grown state — cache segments, histogram buckets — exists
	// before measurement.
	for _, lbn := range lbns {
		serve(lbn, false)
		serve(lbn, false) // second read of the range: cache hit
		serve(lbn, true)
	}

	i := 0
	if n := testing.AllocsPerRun(300, func() {
		lbn := lbns[i%len(lbns)]
		serve(lbn, false)
		serve(lbn, false)
		serve(lbn, i%2 == 0)
		i++
	}); n != 0 {
		t.Fatalf("instrumented Serve allocates %v per run, want 0", n)
	}
}

// TestFracMatchesMod pins the exactness argument behind the hot path's
// frac(x) = x - Trunc(x) rewrite: for every finite non-negative x, fmod by
// 1 reduces to exactly the same subtraction (both operations are IEEE-754
// exact), so the two must agree bit for bit — including the huge
// time-over-period ratios a long simulated run produces.
func TestFracMatchesMod(t *testing.T) {
	xs := []float64{
		0, 0.25, 0.5, 1, 1.75, 3.0000000000000004,
		1e3 + 1.0/3, 1e6 + 0.123456789, 1e9 + 0.999999999,
		1e15 + 0.5, 1e16, 4.503599627370497e15, // past 2^52: fraction exactly 0
	}
	// A deterministic xorshift sweep across magnitudes.
	s := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 4096; i++ {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		mant := float64(s>>11) / float64(1<<53) // [0,1)
		xs = append(xs, mant*float64(uint64(1)<<(i%60)))
	}
	for _, x := range xs {
		got := frac(x)
		want := math.Mod(x, 1)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("frac(%g) = %g (bits %x), math.Mod = %g (bits %x)",
				x, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

// TestSetRPMRefreshesTimingCaches pins the cache-invalidation contract of
// the hoisted revolution time: a disk whose speed is changed via SetRPM
// must serve exactly like a disk constructed at that speed.
func TestSetRPMRefreshesTimingCaches(t *testing.T) {
	changed := testDisk(t, 15000)
	if err := changed.SetRPM(5400); err != nil {
		t.Fatal(err)
	}
	fresh := testDisk(t, 5400)

	if changed.period() != fresh.period() {
		t.Fatalf("period after SetRPM = %v, fresh disk = %v", changed.period(), fresh.period())
	}
	mid := fresh.Layout().TotalSectors() / 2
	for i, lbn := range []int64{0, mid, mid + 1000, fresh.Layout().TotalSectors() - 512} {
		r := Request{ID: int64(i), LBN: lbn, Sectors: 256}
		a, err := changed.Serve(r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.Serve(r)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("request %d: SetRPM disk served %+v, fresh disk %+v", i, a, b)
		}
	}
}
