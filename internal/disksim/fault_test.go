package disksim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/units"
)

// scripted replays a fixed sequence of fault decisions.
type scripted struct {
	seq []AccessFault
	i   int
}

func (s *scripted) Access(time.Duration, Request) AccessFault {
	if s.i >= len(s.seq) {
		return AccessFault{}
	}
	f := s.seq[s.i]
	s.i++
	return f
}

func TestFaultRetriesChargeRevolutionPlusSettle(t *testing.T) {
	layout := testLayout(t)
	mk := func(f FaultInjector) Completion {
		d, err := New(Config{Layout: layout, RPM: 10000, CacheBytes: -1, Faults: f})
		if err != nil {
			t.Fatal(err)
		}
		c, err := d.Serve(Request{ID: 1, LBN: 5000, Sectors: 8})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	clean := mk(&scripted{})
	retry := mk(&scripted{seq: []AccessFault{{Retries: 3}}})
	rev := time.Duration(units.RPM(10000).PeriodSeconds() * float64(time.Second))
	want := 3 * (rev + DefaultSettle)
	if got := retry.Response() - clean.Response(); got != want {
		t.Errorf("3 retries added %v, want %v", got, want)
	}
	if retry.Retries != 3 || !retry.Retried {
		t.Errorf("completion retry fields wrong: %+v", retry)
	}
}

func TestUnrecoverableSectorRemaps(t *testing.T) {
	layout := testLayout(t)
	d, err := New(Config{Layout: layout, RPM: 10000, CacheBytes: -1,
		Faults: &scripted{seq: []AccessFault{{Unrecoverable: true}}}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := d.Serve(Request{ID: 1, LBN: 5000, Sectors: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Remapped {
		t.Error("unrecoverable access should be marked remapped")
	}
	if d.Remapped() != 1 {
		t.Errorf("grown-defect list has %d entries, want 1", d.Remapped())
	}
	if d.SparePool() != layout.SpareSectors()-1 {
		t.Errorf("spare pool %d, want %d", d.SparePool(), layout.SpareSectors()-1)
	}

	// A later visit to the remapped sector pays the relocation round-trip.
	again, err := d.Serve(Request{ID: 2, Arrival: c.Finish, LBN: 5000, Sectors: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Remapped {
		t.Error("re-reading a grown defect should visit the spare area")
	}
	// An untouched sector does not.
	clean, err := d.Serve(Request{ID: 3, Arrival: again.Finish, LBN: 900000, Sectors: 8})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Remapped {
		t.Error("clean sectors must not pay the relocation penalty")
	}
}

func TestSparePoolExhaustionFailsDisk(t *testing.T) {
	layout := testLayout(t)
	d, err := New(Config{Layout: layout, RPM: 10000, CacheBytes: -1, SparePool: 1,
		Faults: &scripted{seq: []AccessFault{{Unrecoverable: true}, {Unrecoverable: true}}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Serve(Request{ID: 1, LBN: 5000, Sectors: 8}); err != nil {
		t.Fatalf("first remap should fit the pool: %v", err)
	}
	_, err = d.Serve(Request{ID: 2, Arrival: time.Second, LBN: 70000, Sectors: 8})
	if !errors.Is(err, ErrDiskFailed) {
		t.Fatalf("pool exhaustion should fail the disk, got %v", err)
	}
	if !d.Failed() {
		t.Error("disk should be failed")
	}
	// Everything after the failure is refused.
	if _, err := d.Serve(Request{ID: 3, Arrival: 2 * time.Second, LBN: 0, Sectors: 8}); !errors.Is(err, ErrDiskFailed) {
		t.Errorf("post-failure serve returned %v", err)
	}
}

func TestFailAfterKillsDiskAtTime(t *testing.T) {
	layout := testLayout(t)
	d, err := New(Config{Layout: layout, RPM: 10000, CacheBytes: -1,
		Faults: FailAfter{T: time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Serve(Request{ID: 1, Arrival: 0, LBN: 5000, Sectors: 8}); err != nil {
		t.Fatalf("pre-failure request should succeed: %v", err)
	}
	_, err = d.Serve(Request{ID: 2, Arrival: 2 * time.Second, LBN: 5000, Sectors: 8})
	if !errors.Is(err, ErrDiskFailed) {
		t.Fatalf("want ErrDiskFailed, got %v", err)
	}
	if d.FailedAt() < 2*time.Second {
		t.Errorf("failure timestamped %v, want >= 2s", d.FailedAt())
	}
}

func TestFaultInjectorSkipsCacheHits(t *testing.T) {
	layout := testLayout(t)
	inj := &scripted{seq: []AccessFault{{}, {DiskFailure: true}}}
	d, err := New(Config{Layout: layout, RPM: 10000, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Serve(Request{ID: 1, LBN: 0, Sectors: 8}); err != nil {
		t.Fatal(err)
	}
	// The second read hits the cache: the injector must not be consulted.
	c, err := d.Serve(Request{ID: 2, Arrival: time.Second, LBN: 0, Sectors: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !c.CacheHit {
		t.Fatal("expected a cache hit")
	}
	if inj.i != 1 {
		t.Errorf("injector consulted %d times, want 1", inj.i)
	}
}

func TestFaultsPreemptLegacyRetryProb(t *testing.T) {
	layout := testLayout(t)
	d, err := New(Config{Layout: layout, RPM: 10000, CacheBytes: -1,
		Faults:    &scripted{},
		RetryProb: func(time.Duration) float64 { return 1 }})
	if err != nil {
		t.Fatal(err)
	}
	c, err := d.Serve(Request{ID: 1, LBN: 5000, Sectors: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.Retried {
		t.Error("Faults must supersede the deprecated RetryProb path")
	}
}

func TestSpareSectorsPositive(t *testing.T) {
	if s := testLayout(t).SpareSectors(); s <= 0 {
		t.Errorf("spare pool %d, want > 0", s)
	}
}
