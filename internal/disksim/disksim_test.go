package disksim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/capacity"
	"repro/internal/geometry"
	"repro/internal/units"
)

func testLayout(t *testing.T) *capacity.Layout {
	t.Helper()
	l, err := capacity.New(capacity.Config{
		Geometry: geometry.Drive{PlatterDiameter: 3.3, Platters: 2, FormFactor: geometry.FormFactor35},
		BPI:      456000, // 2001-era densities
		TPI:      45000,
		Zones:    30,
	})
	if err != nil {
		t.Fatalf("layout: %v", err)
	}
	return l
}

func testDisk(t *testing.T, rpm units.RPM) *Disk {
	t.Helper()
	d, err := New(Config{Layout: testLayout(t), RPM: rpm})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil layout should be rejected")
	}
	if _, err := New(Config{Layout: testLayout(t)}); err == nil {
		t.Error("zero RPM should be rejected")
	}
}

func TestServeColdRandomRead(t *testing.T) {
	d := testDisk(t, 10000)
	mid := d.Layout().TotalSectors() / 2
	c, err := d.Serve(Request{ID: 1, LBN: mid, Sectors: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.CacheHit {
		t.Error("cold read should miss")
	}
	// Response = overhead + seek + rotation + transfer; all positive.
	if c.Parts.Seek <= 0 || c.Parts.Rotation < 0 || c.Parts.Transfer <= 0 {
		t.Errorf("bad breakdown %+v", c.Parts)
	}
	// At 10000 RPM the rotational latency is under one revolution (6 ms).
	if c.Parts.Rotation > 6*time.Millisecond {
		t.Errorf("rotation %v exceeds a revolution", c.Parts.Rotation)
	}
	// Total in a sane single-request window.
	if resp := c.Response(); resp < time.Millisecond || resp > 30*time.Millisecond {
		t.Errorf("response %v outside sane range", resp)
	}
	sum := c.Parts.Queue + c.Parts.Overhead + c.Parts.Seek + c.Parts.Rotation + c.Parts.Transfer
	if sum != c.Response() {
		t.Errorf("breakdown sum %v != response %v", sum, c.Response())
	}
}

func TestSequentialReadsHitCache(t *testing.T) {
	d := testDisk(t, 10000)
	var hits int
	for i := 0; i < 50; i++ {
		c, err := d.Serve(Request{ID: int64(i), LBN: int64(1000 + i*8), Sectors: 8})
		if err != nil {
			t.Fatal(err)
		}
		if c.CacheHit {
			hits++
			// A hit is served in well under a millisecond.
			if svc := c.Finish - c.Start; svc > time.Millisecond {
				t.Errorf("cache hit took %v", svc)
			}
		}
	}
	if hits < 40 {
		t.Errorf("only %d/50 sequential reads hit the cache", hits)
	}
}

func TestWritesInvalidate(t *testing.T) {
	d := testDisk(t, 10000)
	if _, err := d.Serve(Request{ID: 1, LBN: 1000, Sectors: 8}); err != nil {
		t.Fatal(err)
	}
	c2, _ := d.Serve(Request{ID: 2, LBN: 1000, Sectors: 8})
	if !c2.CacheHit {
		t.Fatal("second read should hit")
	}
	if _, err := d.Serve(Request{ID: 3, LBN: 1002, Sectors: 2, Write: true}); err != nil {
		t.Fatal(err)
	}
	c4, _ := d.Serve(Request{ID: 4, LBN: 1000, Sectors: 8})
	if c4.CacheHit {
		t.Error("read after overlapping write should miss")
	}
}

func TestWritesNeverHit(t *testing.T) {
	d := testDisk(t, 10000)
	d.Serve(Request{ID: 1, LBN: 500, Sectors: 8})
	c, _ := d.Serve(Request{ID: 2, LBN: 500, Sectors: 8, Write: true})
	if c.CacheHit {
		t.Error("write-through writes must reach the media")
	}
}

func TestCacheDisabled(t *testing.T) {
	d, err := New(Config{Layout: testLayout(t), RPM: 10000, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	d.Serve(Request{ID: 1, LBN: 0, Sectors: 8})
	c, _ := d.Serve(Request{ID: 2, LBN: 0, Sectors: 8})
	if c.CacheHit {
		t.Error("disabled cache must never hit")
	}
}

func TestHigherRPMIsFaster(t *testing.T) {
	// The same random workload must get faster with RPM — the paper's
	// Figure 4 premise.
	reqs := randomReads(testLayout(t), 500, 400) // 400 req/s
	var prevMean float64 = math.Inf(1)
	for _, rpm := range []units.RPM{10000, 15000, 20000, 25000} {
		d := testDisk(t, rpm)
		comps, err := d.Simulate(reqs)
		if err != nil {
			t.Fatal(err)
		}
		mean := meanResponse(comps)
		if mean >= prevMean {
			t.Errorf("mean at %v (%v) not below previous (%v)", rpm, mean, prevMean)
		}
		prevMean = mean
	}
}

// randomReads builds a deterministic pseudo-random read workload.
func randomReads(l *capacity.Layout, n int, rate float64) []Request {
	reqs := make([]Request, n)
	state := uint64(12345)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	gap := time.Duration(float64(time.Second) / rate)
	for i := range reqs {
		reqs[i] = Request{
			ID:      int64(i),
			Arrival: time.Duration(i) * gap,
			LBN:     int64(next() % uint64(l.TotalSectors()-64)),
			Sectors: 8,
		}
	}
	return reqs
}

func meanResponse(comps []Completion) float64 {
	var sum time.Duration
	for _, c := range comps {
		sum += c.Response()
	}
	return float64(sum) / float64(len(comps))
}

func TestFCFSOrdering(t *testing.T) {
	d := testDisk(t, 10000)
	reqs := []Request{
		{ID: 2, Arrival: 2 * time.Millisecond, LBN: 100, Sectors: 8},
		{ID: 1, Arrival: time.Millisecond, LBN: 50000, Sectors: 8},
	}
	comps, err := d.Simulate(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if comps[0].Request.ID != 1 || comps[1].Request.ID != 2 {
		t.Error("FCFS must service in arrival order")
	}
	if comps[1].Start < comps[0].Finish {
		t.Error("second request started before first finished")
	}
}

func TestSSTFPrefersNearRequest(t *testing.T) {
	layout := testLayout(t)
	far := trackLBN(t, layout, layout.Cylinders-1)
	near := trackLBN(t, layout, 10)
	mk := func(s Scheduler) []Completion {
		d, err := New(Config{Layout: layout, RPM: 10000, Scheduler: s})
		if err != nil {
			t.Fatal(err)
		}
		comps, err := d.Simulate([]Request{
			{ID: 1, Arrival: 0, LBN: far, Sectors: 8},
			{ID: 2, Arrival: 0, LBN: near, Sectors: 8},
		})
		if err != nil {
			t.Fatal(err)
		}
		return comps
	}
	sstf := mk(SSTF)
	if sstf[0].Request.ID != 2 {
		t.Error("SSTF should service the near request first (head starts at cylinder 0)")
	}
	sptf := mk(SPTF)
	if len(sptf) != 2 {
		t.Error("SPTF lost a request")
	}
}

func trackLBN(t *testing.T, l *capacity.Layout, cyl int) int64 {
	t.Helper()
	lbn, err := l.LBNOf(capacity.Location{Cylinder: cyl})
	if err != nil {
		t.Fatal(err)
	}
	return lbn
}

func TestSimulatePreservesAllRequests(t *testing.T) {
	layout := testLayout(t)
	reqs := randomReads(layout, 200, 1000)
	for _, s := range []Scheduler{FCFS, SSTF, SPTF, LOOK} {
		d, err := New(Config{Layout: layout, RPM: 15000, Scheduler: s})
		if err != nil {
			t.Fatal(err)
		}
		comps, err := d.Simulate(reqs)
		if err != nil {
			t.Fatal(err)
		}
		if len(comps) != len(reqs) {
			t.Fatalf("%v: %d completions for %d requests", s, len(comps), len(reqs))
		}
		seen := make(map[int64]bool)
		for _, c := range comps {
			if seen[c.Request.ID] {
				t.Fatalf("%v: request %d served twice", s, c.Request.ID)
			}
			seen[c.Request.ID] = true
			if c.Finish < c.Start || c.Start < c.Request.Arrival {
				t.Fatalf("%v: inverted times %+v", s, c)
			}
		}
	}
}

func TestMultiTrackTransfer(t *testing.T) {
	d := testDisk(t, 10000)
	spt := d.Layout().Zones[0].SectorsPerTrack
	// A transfer spanning three tracks takes at least two revolutions plus
	// switches; definitely longer than a one-sector read's transfer.
	big, err := d.Serve(Request{ID: 1, LBN: 0, Sectors: spt * 3})
	if err != nil {
		t.Fatal(err)
	}
	rev := time.Duration(units.RPM(10000).PeriodSeconds() * float64(time.Second))
	if big.Parts.Transfer < 2*rev {
		t.Errorf("3-track transfer %v < 2 revolutions", big.Parts.Transfer)
	}
}

func TestTransferTimeScalesWithRPM(t *testing.T) {
	slow := testDisk(t, 10000)
	fast := testDisk(t, 20000)
	a, _ := slow.Serve(Request{ID: 1, LBN: 0, Sectors: 64})
	b, _ := fast.Serve(Request{ID: 1, LBN: 0, Sectors: 64})
	r := float64(a.Parts.Transfer) / float64(b.Parts.Transfer)
	if math.Abs(r-2) > 0.01 {
		t.Errorf("transfer ratio 10k/20k = %v, want 2", r)
	}
}

func TestValidateRejectsBadRequests(t *testing.T) {
	d := testDisk(t, 10000)
	bad := []Request{
		{ID: 1, LBN: -1, Sectors: 8},
		{ID: 2, LBN: 0, Sectors: 0},
		{ID: 3, LBN: d.Layout().TotalSectors() - 1, Sectors: 8},
		{ID: 4, Arrival: -time.Second, LBN: 0, Sectors: 1},
	}
	for _, r := range bad {
		if _, err := d.Serve(r); err == nil {
			t.Errorf("Serve(%+v) should fail", r)
		}
	}
}

func TestSetRPM(t *testing.T) {
	d := testDisk(t, 10000)
	if err := d.SetRPM(20000); err != nil {
		t.Fatal(err)
	}
	if d.RPM() != 20000 {
		t.Errorf("RPM = %v", d.RPM())
	}
	if err := d.SetRPM(0); err == nil {
		t.Error("zero RPM should be rejected")
	}
}

func TestDelay(t *testing.T) {
	d := testDisk(t, 10000)
	d.Delay(time.Second)
	if d.ReadyTime() != time.Second {
		t.Errorf("ready = %v", d.ReadyTime())
	}
	d.Delay(500 * time.Millisecond) // backward delays are ignored
	if d.ReadyTime() != time.Second {
		t.Error("Delay moved ready time backward")
	}
	c, err := d.Serve(Request{ID: 1, LBN: 0, Sectors: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Start < time.Second {
		t.Error("service started before the delay expired")
	}
}

func TestServedCounter(t *testing.T) {
	d := testDisk(t, 10000)
	for i := 0; i < 5; i++ {
		if _, err := d.Serve(Request{ID: int64(i), LBN: int64(i * 100), Sectors: 4}); err != nil {
			t.Fatal(err)
		}
	}
	if d.Served() != 5 {
		t.Errorf("served = %d", d.Served())
	}
}

func TestSchedulerString(t *testing.T) {
	if FCFS.String() != "FCFS" || SSTF.String() != "SSTF" || SPTF.String() != "SPTF" || LOOK.String() != "LOOK" {
		t.Error("scheduler names wrong")
	}
	if Scheduler(9).String() == "" {
		t.Error("unknown scheduler should still print")
	}
}

func TestPropertyResponsesPositive(t *testing.T) {
	layout := testLayout(t)
	total := layout.TotalSectors()
	d, err := New(Config{Layout: layout, RPM: 15000})
	if err != nil {
		t.Fatal(err)
	}
	f := func(lbnRaw uint64, n uint8, write bool) bool {
		sectors := 1 + int(n%64)
		lbn := int64(lbnRaw % uint64(total-int64(sectors)))
		c, err := d.Serve(Request{ID: 1, LBN: lbn, Sectors: sectors, Write: write})
		if err != nil {
			return false
		}
		return c.Finish > c.Start && c.Parts.Transfer > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRotationalPositionConsistency(t *testing.T) {
	// Two consecutive reads of the same single sector, issued back to back,
	// cost about one full revolution of rotational delay for the second
	// (the sector just passed under the head).
	d, err := New(Config{Layout: testLayout(t), RPM: 10000, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := d.Serve(Request{ID: 1, LBN: 1000, Sectors: 1})
	c2, _ := d.Serve(Request{ID: 2, Arrival: c1.Finish, LBN: 1000, Sectors: 1})
	rev := time.Duration(units.RPM(10000).PeriodSeconds() * float64(time.Second))
	rot := c2.Parts.Rotation
	if rot < rev*8/10 || rot > rev {
		t.Errorf("re-read rotation %v, want close to a revolution (%v)", rot, rev)
	}
}

func TestLOOKSweepsInOrder(t *testing.T) {
	layout := testLayout(t)
	d, err := New(Config{Layout: layout, RPM: 10000, Scheduler: LOOK})
	if err != nil {
		t.Fatal(err)
	}
	// Five simultaneous requests scattered over the stroke: LOOK should
	// service them in ascending cylinder order from cylinder 0.
	cyls := []int{5000, 100, 9000, 2500, 7000}
	reqs := make([]Request, len(cyls))
	for i, c := range cyls {
		reqs[i] = Request{ID: int64(i), LBN: trackLBN(t, layout, c), Sectors: 4}
	}
	comps, err := d.Simulate(reqs)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	for _, c := range comps {
		loc, _ := layout.Locate(c.Request.LBN)
		order = append(order, loc.Cylinder)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("LOOK out of sweep order: %v", order)
		}
	}
}

func TestLOOKReverses(t *testing.T) {
	layout := testLayout(t)
	d, err := New(Config{Layout: layout, RPM: 10000, Scheduler: LOOK})
	if err != nil {
		t.Fatal(err)
	}
	// Move the head to mid-stroke first, then offer one inner and one
	// outer request: the sweep continues upward, then reverses.
	warm := Request{ID: 0, LBN: trackLBN(t, layout, 5000), Sectors: 4}
	inner := Request{ID: 1, Arrival: time.Millisecond, LBN: trackLBN(t, layout, 100), Sectors: 4}
	outer := Request{ID: 2, Arrival: time.Millisecond, LBN: trackLBN(t, layout, 9000), Sectors: 4}
	comps, err := d.Simulate([]Request{warm, inner, outer})
	if err != nil {
		t.Fatal(err)
	}
	if comps[1].Request.ID != 2 || comps[2].Request.ID != 1 {
		t.Errorf("LOOK should continue upward before reversing: %v then %v",
			comps[1].Request.ID, comps[2].Request.ID)
	}
}

func TestLOOKBeatsFCFSOnBacklog(t *testing.T) {
	layout := testLayout(t)
	// A backlog of scattered requests all queued at time zero: the
	// elevator should finish the batch sooner than FCFS.
	mk := func(s Scheduler) time.Duration {
		d, err := New(Config{Layout: layout, RPM: 10000, Scheduler: s, CacheBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		reqs := randomReads(layout, 300, 1e9) // effectively simultaneous
		for i := range reqs {
			reqs[i].Arrival = 0
		}
		comps, err := d.Simulate(reqs)
		if err != nil {
			t.Fatal(err)
		}
		var last time.Duration
		for _, c := range comps {
			if c.Finish > last {
				last = c.Finish
			}
		}
		return last
	}
	if look, fcfs := mk(LOOK), mk(FCFS); look >= fcfs {
		t.Errorf("LOOK makespan %v not better than FCFS %v", look, fcfs)
	}
}

func TestRetryProbAddsRevolutions(t *testing.T) {
	layout := testLayout(t)
	always := func(time.Duration) float64 { return 1 }
	never := func(time.Duration) float64 { return 0 }
	mk := func(p func(time.Duration) float64) (*Disk, Completion) {
		d, err := New(Config{Layout: layout, RPM: 10000, CacheBytes: -1, RetryProb: p})
		if err != nil {
			t.Fatal(err)
		}
		c, err := d.Serve(Request{ID: 1, LBN: 5000, Sectors: 8})
		if err != nil {
			t.Fatal(err)
		}
		return d, c
	}
	dRetry, retry := mk(always)
	_, clean := mk(never)
	rev := time.Duration(units.RPM(10000).PeriodSeconds() * float64(time.Second))
	extra := retry.Response() - clean.Response()
	if !retry.Retried || clean.Retried {
		t.Error("Retried flags wrong")
	}
	if extra != rev {
		t.Errorf("retry added %v, want one revolution (%v)", extra, rev)
	}
	if dRetry.Retries() != 1 {
		t.Errorf("retry counter = %d", dRetry.Retries())
	}
}

func TestRetryProbSkipsCacheHits(t *testing.T) {
	layout := testLayout(t)
	d, err := New(Config{Layout: layout, RPM: 10000,
		RetryProb: func(time.Duration) float64 { return 1 }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Serve(Request{ID: 1, LBN: 0, Sectors: 8}); err != nil {
		t.Fatal(err)
	}
	c, err := d.Serve(Request{ID: 2, LBN: 0, Sectors: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !c.CacheHit || c.Retried {
		t.Error("cache hits never touch the media, so they cannot retry")
	}
}

func TestRetryProbStatistics(t *testing.T) {
	layout := testLayout(t)
	d, err := New(Config{Layout: layout, RPM: 10000, CacheBytes: -1,
		RetryProb: func(time.Duration) float64 { return 0.3 }})
	if err != nil {
		t.Fatal(err)
	}
	reqs := randomReads(layout, 2000, 1e6)
	if _, err := d.Simulate(reqs); err != nil {
		t.Fatal(err)
	}
	frac := float64(d.Retries()) / 2000
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("retry fraction %.3f, want ~0.30", frac)
	}
}
