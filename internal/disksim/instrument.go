package disksim

import (
	"strconv"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Instruments is the disk layer's metric handle set: per-zone service-time
// histograms, queue-delay histogram, a peak-queue-depth gauge, and the
// served/cache/fault counters. Handles are registered once at setup; the
// per-request path only touches pre-resolved pointers, and a nil
// *Instruments (the default) costs one branch per Serve.
//
// One Instruments may be shared by several disks (a RAID volume registers a
// single set for all members): counters are commutative and every disk on
// one engine is serviced single-threaded, so shared series stay
// deterministic.
type Instruments struct {
	served      *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	retries     *obs.Counter
	remaps      *obs.Counter

	service     *obs.Histogram // service time (start -> finish), ms
	queueDelay  *obs.Histogram // arrival -> service start, ms
	queuePeak   *obs.Gauge     // peak pending-queue depth (batch schedulers)
	zoneService []*obs.Histogram
}

// NewInstruments registers the disk metric set on reg under the given
// alternating key/value labels, with one service histogram per recording
// zone (zones <= 0 skips the per-zone split). A nil registry returns nil,
// the disabled state every Disk method tolerates.
func NewInstruments(reg *obs.Registry, zones int, labels ...string) *Instruments {
	if reg == nil {
		return nil
	}
	ins := &Instruments{
		served:      reg.Counter("disksim_requests_total", labels...),
		cacheHits:   reg.Counter("disksim_cache_hits_total", labels...),
		cacheMisses: reg.Counter("disksim_cache_misses_total", labels...),
		retries:     reg.Counter("disksim_retries_total", labels...),
		remaps:      reg.Counter("disksim_remaps_total", labels...),
		service:     reg.Histogram("disksim_service_ms", stats.Figure4Buckets, labels...),
		queueDelay:  reg.Histogram("disksim_queue_delay_ms", stats.Figure4Buckets, labels...),
		queuePeak:   reg.Gauge("disksim_queue_depth_peak", labels...),
	}
	for z := 0; z < zones; z++ {
		zl := append(append([]string(nil), labels...), "zone", strconv.Itoa(z))
		ins.zoneService = append(ins.zoneService, reg.Histogram("disksim_zone_service_ms", stats.Figure4Buckets, zl...))
	}
	return ins
}

// SetInstruments attaches (or, with nil, detaches) the metric set.
func (d *Disk) SetInstruments(ins *Instruments) { d.ins = ins }

// record folds one completion into the metric set. zone is the recording
// zone the access landed in, or -1 for cache hits (no mechanical access).
func (ins *Instruments) record(c *Completion, zone int) {
	ins.served.Inc()
	if c.CacheHit {
		ins.cacheHits.Inc()
	} else {
		ins.cacheMisses.Inc()
	}
	if c.Retries > 0 {
		ins.retries.Add(int64(c.Retries))
	}
	if c.Remapped {
		ins.remaps.Inc()
	}
	ins.queueDelay.ObserveDuration(c.Parts.Queue)
	svc := c.Finish - c.Start
	ins.service.ObserveDuration(svc)
	if zone >= 0 && zone < len(ins.zoneService) {
		ins.zoneService[zone].ObserveDuration(svc)
	}
}

// noteQueueDepth raises the peak-queue-depth gauge (order-free Max, so it
// stays deterministic wherever it is called from).
func (ins *Instruments) noteQueueDepth(depth int) {
	if ins == nil {
		return
	}
	ins.queuePeak.Max(float64(depth))
}

// SpanAttrs renders the completion's lifetime breakdown and fault
// annotations as span attributes — the per-request record the RunStream
// tracer hook emits (arrival -> seek/rotate/transfer -> completion, with
// retry/remap marks).
func SpanAttrs(c *Completion) []obs.Attr {
	attrs := []obs.Attr{
		obs.AttrInt("req", c.Request.ID),
		obs.AttrDur("queue_ms", c.Parts.Queue),
		obs.AttrDur("seek_ms", c.Parts.Seek),
		obs.AttrDur("rotate_ms", c.Parts.Rotation),
		obs.AttrDur("transfer_ms", c.Parts.Transfer),
	}
	if c.CacheHit {
		attrs = append(attrs, obs.AttrBool("cache_hit", true))
	}
	if c.Retries > 0 {
		attrs = append(attrs, obs.AttrInt("retries", int64(c.Retries)))
	}
	if c.Remapped {
		attrs = append(attrs, obs.AttrBool("remapped", true))
	}
	return attrs
}

// recordSpan emits the request-lifetime span when a tracer is attached.
func recordSpan(t *obs.Tracer, c *Completion) {
	if t == nil {
		return
	}
	t.Record(obs.Span{
		Name:  "disk.request",
		Start: c.Request.Arrival,
		End:   c.Finish,
		Attrs: SpanAttrs(c),
	})
}
