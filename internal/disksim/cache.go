package disksim

import "time"

// segment is one contiguous cached LBN range [start, end).
type segment struct {
	start, end int64
	lastUse    time.Duration
}

// cache is the drive's segmented read cache. Each segment caches one
// sequential stream; a read miss repopulates the least-recently-used segment
// with the request plus read-ahead up to the segment size, which is how
// sequential streams hit after the first request.
type cache struct {
	segments    []segment
	segSectors  int64 // capacity of one segment in sectors
	nextRefresh int
}

// newCache sizes the cache; zero segments disables it.
func newCache(totalBytes int64, segments int) *cache {
	if segments <= 0 || totalBytes <= 0 {
		return &cache{}
	}
	return &cache{
		segments:   make([]segment, 0, segments),
		segSectors: totalBytes / int64(segments) / 512,
	}
}

// enabled reports whether the cache holds anything at all.
func (c *cache) enabled() bool { return c.segSectors > 0 && cap(c.segments) > 0 }

// lookup reports whether [lbn, lbn+n) is fully cached, touching the segment's
// recency on a hit.
func (c *cache) lookup(lbn int64, n int, now time.Duration) bool {
	if !c.enabled() {
		return false
	}
	end := lbn + int64(n)
	for i := range c.segments {
		if lbn >= c.segments[i].start && end <= c.segments[i].end {
			c.segments[i].lastUse = now
			return true
		}
	}
	return false
}

// fill installs a read's range plus read-ahead into the LRU segment.
func (c *cache) fill(lbn int64, n int, total int64, now time.Duration) {
	if !c.enabled() {
		return
	}
	end := lbn + c.segSectors
	if end < lbn+int64(n) {
		end = lbn + int64(n) // oversized request: cache it whole anyway
	}
	if end > total {
		end = total
	}
	s := segment{start: lbn, end: end, lastUse: now}
	if len(c.segments) < cap(c.segments) {
		c.segments = append(c.segments, s)
		return
	}
	lru := 0
	for i := 1; i < len(c.segments); i++ {
		if c.segments[i].lastUse < c.segments[lru].lastUse {
			lru = i
		}
	}
	c.segments[lru] = s
}

// invalidate drops any segment overlapping a written range (write-through
// with invalidation — the conservative policy for data integrity).
func (c *cache) invalidate(lbn int64, n int) {
	if !c.enabled() {
		return
	}
	end := lbn + int64(n)
	out := c.segments[:0]
	for _, s := range c.segments {
		if s.end <= lbn || s.start >= end {
			out = append(out, s)
		}
	}
	c.segments = out
}
