package disksim

import (
	"errors"
	"fmt"
	"time"
)

// ErrDiskFailed is returned (wrapped) by Serve once a disk has failed — by
// injector decision or by exhausting its grown-defect spare pool. Array
// layers test for it with errors.Is and fail the member over.
var ErrDiskFailed = errors.New("disksim: disk failed")

// AccessFault is what a FaultInjector decides strikes one mechanical access.
// The zero value is a clean access.
type AccessFault struct {
	// Retries is the number of off-track re-reads the access suffers;
	// each is charged one full revolution plus the settle time (the head
	// drifted off the track centerline and must come around again).
	Retries int

	// Unrecoverable declares the target sector unreadable even after the
	// retries: the disk remaps it to the spare pool, paying a relocation
	// seek, and adds it to the grown-defect list. If the pool is
	// exhausted the disk fails instead.
	Unrecoverable bool

	// DiskFailure kills the whole drive at this access: the request (and
	// every later one) returns ErrDiskFailed.
	DiskFailure bool
}

// FaultInjector decides, per mechanical access, what faults strike. It is
// consulted once per media access (cache hits never touch the media) with
// the access start time, so a thermally-coupled implementation can read the
// drive's current temperature. Implementations draw all randomness from
// their own explicitly seeded source so runs stay reproducible; the
// canonical thermal implementation is dtm.ThermalFaults.
type FaultInjector interface {
	Access(now time.Duration, r Request) AccessFault
}

// FailAfter is a scripted injector that fails the disk at the first
// mechanical access at or after T — reproducible disk-loss scenarios for
// degraded-mode and rebuild studies.
type FailAfter struct {
	T time.Duration
}

// Access implements FaultInjector.
func (f FailAfter) Access(now time.Duration, _ Request) AccessFault {
	if now >= f.T {
		return AccessFault{DiskFailure: true}
	}
	return AccessFault{}
}

// SetFaults installs (or, with nil, removes) the disk's fault injector.
// DTM layers use it to wire an injector that reads a thermal transient
// created after the disk itself.
func (d *Disk) SetFaults(f FaultInjector) { d.cfg.Faults = f }

// Failed reports whether the disk has failed.
func (d *Disk) Failed() bool { return d.failed }

// FailedAt returns when the disk failed (zero if it has not).
func (d *Disk) FailedAt() time.Duration { return d.failedAt }

// Remapped returns how many sectors have been remapped to spares.
func (d *Disk) Remapped() int64 { return int64(len(d.remaps)) }

// SparePool returns how many spare sectors remain unallocated.
func (d *Disk) SparePool() int64 { return d.sparePool - int64(len(d.remaps)) }

// GrownDefects returns the remapped LBNs (the grown-defect list) in no
// particular order.
func (d *Disk) GrownDefects() []int64 {
	out := make([]int64, 0, len(d.remaps))
	for lbn := range d.remaps {
		out = append(out, lbn)
	}
	return out
}

// fail marks the disk dead and returns the wrapped sentinel.
func (d *Disk) fail(at time.Duration, why string) error {
	d.failed = true
	d.failedAt = at
	return fmt.Errorf("%w at %v (%s)", ErrDiskFailed, at, why)
}

// spareCylinder is where the reassignment area lives: the innermost track.
func (d *Disk) spareCylinder() int { return d.layout.Cylinders - 1 }

// remapPenalty is the extra positioning cost of visiting the spare area and
// returning: twice the seek from the access cylinder plus a settle.
func (d *Disk) remapPenalty(fromCyl int) time.Duration {
	return 2*d.seek.SeekTime(d.spareCylinder()-fromCyl) + d.cfg.Settle
}

// touchesRemap reports whether any sector of [lbn, lbn+sectors) is on the
// grown-defect list. The list is small (bounded by the spare pool), so a
// map probe per entry or per sector — whichever is fewer — stays cheap.
func (d *Disk) touchesRemap(lbn int64, sectors int) bool {
	if len(d.remaps) == 0 {
		return false
	}
	if len(d.remaps) < sectors {
		for defect := range d.remaps {
			if defect >= lbn && defect < lbn+int64(sectors) {
				return true
			}
		}
		return false
	}
	for s := int64(0); s < int64(sectors); s++ {
		if _, ok := d.remaps[lbn+s]; ok {
			return true
		}
	}
	return false
}

// applyFaults charges an access's injected faults. It is called after the
// nominal seek/rotation/transfer have been priced, with the head at lastCyl
// and the clock at t; it returns the new clock (or an error that fails the
// disk). Off-track retries each cost a revolution plus settle; an
// unrecoverable sector additionally pays the relocation round-trip to the
// spare area and joins the grown-defect list.
func (d *Disk) applyFaults(f AccessFault, r Request, c *Completion, t time.Duration, lastCyl int, period time.Duration) (time.Duration, error) {
	if f.DiskFailure {
		return t, d.fail(t, "injected failure")
	}
	if f.Retries > 0 {
		extra := time.Duration(f.Retries) * (period + d.cfg.Settle)
		c.Parts.Rotation += extra
		c.Retries += f.Retries
		c.Retried = true
		t += extra
		d.retries += int64(f.Retries)
	}
	if f.Unrecoverable {
		if int64(len(d.remaps)) >= d.sparePool {
			return t, d.fail(t, "spare pool exhausted")
		}
		if _, already := d.remaps[r.LBN]; !already {
			d.remaps[r.LBN] = int64(len(d.remaps))
		}
		reloc := d.remapPenalty(lastCyl)
		c.Parts.Seek += reloc
		c.Remapped = true
		t += reloc
	}
	return t, nil
}
