package disksim

import (
	"context"
	"fmt"
	"time"

	"repro/internal/sim"
)

// RunStream drives the disk from a lazily-yielded FCFS request stream on an
// event engine: each request is admitted as an arrival event, serviced via
// Serve (all FaultInjector hooks intact), and its completion pushed to sink;
// only then is the next request pulled, so memory stays O(1) in trace
// length. The source must yield requests in nondecreasing arrival order —
// the order Simulate establishes by sorting and the trace generators emit
// natively.
//
// RunStream schedules onto eng and runs it to completion. Passing a shared
// engine interleaves this disk's admissions with other processes (thermal
// sample ticks, other disks) on one deterministic clock.
func (d *Disk) RunStream(eng *sim.Engine, src sim.Source[Request], sink sim.Sink[Completion]) error {
	if eng == nil {
		eng = sim.NewEngine()
	}
	s := &diskStream{d: d, src: src, sink: sink}
	s.fire = s.serve // one event closure for the whole run, not one per request
	s.admit(eng)
	if err := eng.Run(); err != nil {
		return err
	}
	return s.failed
}

// diskStream is RunStream's admission state: one struct and one pre-bound
// event closure for the whole run. Only one admission is outstanding at a
// time, so the single in-flight request slot suffices and the per-request
// path allocates nothing.
type diskStream struct {
	d      *Disk
	src    sim.Source[Request]
	sink   sim.Sink[Completion]
	r      Request // the in-flight request, valid between admit and serve
	failed error
	fire   func(*sim.Engine)
}

func (s *diskStream) admit(e *sim.Engine) {
	r, ok := s.src.Next()
	if !ok {
		return
	}
	s.r = r
	e.At(r.Arrival, s.fire)
}

func (s *diskStream) serve(e *sim.Engine) {
	c, err := s.d.Serve(s.r)
	if err != nil {
		s.failed = err
		e.Fail(err)
		return
	}
	recordSpan(e.Tracer(), &c)
	s.sink.Push(c)
	s.admit(e)
}

// RunStreamCtx is RunStream with cooperative cancellation: the source is
// gated on ctx (checked at every admission) and a cancelled run reports
// ctx.Err() instead of a partial-looking success, matching the other
// streaming runners' contract for the serving layer.
func (d *Disk) RunStreamCtx(ctx context.Context, eng *sim.Engine, src sim.Source[Request], sink sim.Sink[Completion]) error {
	if err := d.RunStream(eng, sim.Gate(ctx, src), sink); err != nil {
		return err
	}
	return ctx.Err()
}

// Simulate services a batch of requests under the configured scheduler and
// returns their completions in service order. It is the collect-into-slice
// wrapper over the streaming path: FCFS sorts the batch by arrival and
// replays it through RunStream; the queue-reordering disciplines
// (SSTF/SPTF/LOOK) keep a pending set and are serviced by the batch picker.
func (d *Disk) Simulate(reqs []Request) ([]Completion, error) {
	sorted := sortedByArrival(reqs)
	if d.cfg.Scheduler != FCFS {
		return d.simulateQueued(sorted)
	}
	out := make([]Completion, 0, len(sorted))
	var collect sim.Appender[Completion]
	collect.Items = out
	if err := d.RunStream(sim.NewEngine(), sim.FromSlice(sorted), &collect); err != nil {
		return nil, err
	}
	return collect.Items, nil
}

// Scheduler returns the configured queueing discipline.
func (d *Disk) Scheduler() Scheduler { return d.cfg.Scheduler }

// sortedByArrival returns a stably arrival-sorted copy.
func sortedByArrival(reqs []Request) []Request {
	sorted := make([]Request, len(reqs))
	copy(sorted, reqs)
	stableSortByArrival(sorted)
	return sorted
}

// ReadySource adapts a request source so each yielded request's arrival is
// clamped to at least the previous yield — a guard for hand-built sources
// that are only approximately sorted. Exactly-sorted sources pass through
// untouched.
func ReadySource(src sim.Source[Request]) sim.Source[Request] {
	var floor time.Duration
	return sim.SourceFunc[Request](func() (Request, bool) {
		r, ok := src.Next()
		if !ok {
			return r, false
		}
		if r.Arrival < floor {
			r.Arrival = floor
		}
		floor = r.Arrival
		return r, true
	})
}

// StreamStats is a Sink that summarises completions without retaining them:
// the O(1)-memory counterpart of collecting into a slice.
type StreamStats struct {
	N         int64
	CacheHits int64
	Retries   int64
	Remaps    int64
	LastDone  time.Duration
}

// Push implements sim.Sink.
func (s *StreamStats) Push(c Completion) {
	s.N++
	if c.CacheHit {
		s.CacheHits++
	}
	s.Retries += int64(c.Retries)
	if c.Remapped {
		s.Remaps++
	}
	if c.Finish > s.LastDone {
		s.LastDone = c.Finish
	}
}

// String implements fmt.Stringer.
func (s *StreamStats) String() string {
	return fmt.Sprintf("%d served (%d cache hits, %d retries, %d remaps), last done %v",
		s.N, s.CacheHits, s.Retries, s.Remaps, s.LastDone)
}
