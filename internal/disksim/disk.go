package disksim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/capacity"
	"repro/internal/perf"
	"repro/internal/units"
)

// Scheduler selects the order queued requests are serviced in.
type Scheduler int

// Supported queueing disciplines.
const (
	// FCFS services requests in arrival order (the study's default).
	FCFS Scheduler = iota
	// SSTF services the queued request with the shortest seek distance.
	SSTF
	// SPTF services the queued request with the shortest estimated
	// positioning (seek + rotation) time.
	SPTF
	// LOOK sweeps the actuator across the surface, servicing queued
	// requests in cylinder order and reversing at the last request in the
	// current direction (the elevator algorithm).
	LOOK
)

// String implements fmt.Stringer.
func (s Scheduler) String() string {
	switch s {
	case FCFS:
		return "FCFS"
	case SSTF:
		return "SSTF"
	case SPTF:
		return "SPTF"
	case LOOK:
		return "LOOK"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// Default configuration values.
const (
	DefaultCacheBytes    = 4 << 20 // the paper gives every disk a 4 MB cache
	DefaultCacheSegments = 16
	DefaultOverhead      = 200 * time.Microsecond // controller command overhead
	DefaultHeadSwitch    = 300 * time.Microsecond // surface/track boundary cost
	DefaultBusMBPerSec   = 160                    // Ultra160 SCSI era
	DefaultSettle        = 500 * time.Microsecond // post-retry/relocation head settle
)

// Config describes one simulated disk.
type Config struct {
	// Layout is the exact ZBR recording layout (required).
	Layout *capacity.Layout

	// RPM is the initial spindle speed (required).
	RPM units.RPM

	// Seek overrides the platter-size-derived seek parameters when nonzero.
	Seek perf.SeekParams

	// CacheBytes and CacheSegments size the read cache; -1 bytes disables
	// it, 0 means the 4 MB default.
	CacheBytes    int64
	CacheSegments int

	// Overhead is the per-request controller/bus overhead (0 = default).
	Overhead time.Duration

	// HeadSwitch is the cost of crossing a track/surface boundary during a
	// multi-track transfer (0 = default). Optimal skew is assumed, so no
	// extra rotational re-alignment is charged.
	HeadSwitch time.Duration

	// BusMBPerSec is the interface bandwidth used for cache-hit transfers
	// (0 = default).
	BusMBPerSec float64

	// Scheduler selects the queueing discipline for Simulate.
	Scheduler Scheduler

	// RetryProb, when non-nil, is consulted once per mechanical access
	// with the request's start time; it returns the probability that the
	// access suffers an off-track error and must retry after one full
	// extra revolution.
	//
	// Deprecated: RetryProb only models single retries. Use Faults with a
	// dtm.ThermalFaults injector, which adds multi-retry, unrecoverable-
	// sector and whole-disk failure paths. RetryProb is ignored when
	// Faults is set.
	RetryProb func(now time.Duration) float64

	// Faults, when non-nil, is consulted once per mechanical access and
	// can demand off-track retries, declare the sector unrecoverable
	// (spare-pool remapping), or fail the whole disk. This is how
	// thermally-induced errors (the failure mechanism the paper's
	// envelope guards against) couple into service time: a DTM layer
	// wires an injector to its thermal transient.
	Faults FaultInjector

	// Settle is the head-settle time charged per off-track retry and per
	// spare-area relocation (0 = DefaultSettle).
	Settle time.Duration

	// SparePool overrides the grown-defect spare-sector budget:
	// 0 = the layout's reserve-track pool (Layout.SpareSectors),
	// negative = no spares (the first unrecoverable sector fails the disk).
	SparePool int64
}

// Disk is one simulated drive. It is not safe for concurrent use.
type Disk struct {
	cfg    Config
	layout *capacity.Layout
	seek   *perf.SeekModel
	cache  *cache

	rpm     units.RPM
	headCyl int
	ready   time.Duration // when the disk is next free

	// Hot-path timing caches, derived in New (and refreshRev on SetRPM)
	// rather than recomputed per request. Each is the exact expression
	// Serve used to evaluate inline — identical operands, identical
	// operations — so hoisting them cannot change a single output bit.
	rev            time.Duration // one revolution at the current rpm
	revF           float64       // float64(rev): the rotation/transfer divisor
	busBytesPerSec float64       // BusMBPerSec*MB: cache-hit transfer divisor
	zoneSPT        []zoneRate    // per-zone sectors-per-track table
	cylsPerZone    int           // zone index = cylinder / cylsPerZone

	served  int64
	retries int64
	rng     uint64 // xorshift state for legacy RetryProb draws

	// ins is the optional metric handle set; nil (the default) keeps the
	// service path allocation- and observation-free.
	ins *Instruments

	failed    bool
	failedAt  time.Duration
	remaps    map[int64]int64 // grown-defect list: defective LBN -> spare slot
	sparePool int64
}

// New builds a disk.
func New(cfg Config) (*Disk, error) {
	if cfg.Layout == nil {
		return nil, fmt.Errorf("disksim: nil layout")
	}
	if cfg.RPM <= 0 {
		return nil, fmt.Errorf("disksim: non-positive RPM %v", cfg.RPM)
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.CacheBytes < 0 {
		cfg.CacheBytes = 0
	}
	if cfg.CacheSegments == 0 {
		cfg.CacheSegments = DefaultCacheSegments
	}
	if cfg.Overhead == 0 {
		cfg.Overhead = DefaultOverhead
	}
	if cfg.HeadSwitch == 0 {
		cfg.HeadSwitch = DefaultHeadSwitch
	}
	if cfg.BusMBPerSec == 0 {
		cfg.BusMBPerSec = DefaultBusMBPerSec
	}
	if cfg.Settle == 0 {
		cfg.Settle = DefaultSettle
	}
	spares := cfg.SparePool
	if spares == 0 {
		spares = cfg.Layout.SpareSectors()
	}
	if spares < 0 {
		spares = 0
	}
	sp := cfg.Seek
	if sp == (perf.SeekParams{}) {
		sp = perf.SeekParamsForPlatter(cfg.Layout.Config().Geometry.PlatterDiameter)
	}
	sm, err := perf.NewSeekModel(sp, cfg.Layout.Cylinders)
	if err != nil {
		return nil, err
	}
	d := &Disk{
		cfg:       cfg,
		layout:    cfg.Layout,
		seek:      sm,
		cache:     newCache(cfg.CacheBytes, cfg.CacheSegments),
		rpm:       cfg.RPM,
		rng:       0x9e3779b97f4a7c15,
		remaps:    make(map[int64]int64),
		sparePool: spares,
	}
	d.refreshRev()
	d.busBytesPerSec = cfg.BusMBPerSec * units.MB
	zones := cfg.Layout.Zones
	d.zoneSPT = make([]zoneRate, len(zones))
	for i, z := range zones {
		d.zoneSPT[i] = zoneRate{spt: z.SectorsPerTrack, sptF: float64(z.SectorsPerTrack)}
	}
	d.cylsPerZone = cfg.Layout.Cylinders / len(zones) // zones are equal-sized
	return d, nil
}

// zoneRate is one slot of the per-zone timing table: the zone's
// sectors-per-track in the two forms the hot path consumes (the int for the
// track walk, the float64 divisor for angle/transfer fractions), saving the
// pointer chase and conversions of Layout.ZoneOfCylinder per request.
type zoneRate struct {
	spt  int
	sptF float64
}

// frac returns the fractional part of non-negative x. It equals
// math.Mod(x, 1) exactly — fmod by 1 reduces to x - trunc(x) and both
// operations are IEEE-exact — but math.Trunc compiles to one rounding
// instruction where math.Mod's frexp/ldexp loop dominated the
// rotational-latency calculation on the streaming profile.
func frac(x float64) float64 { return x - math.Trunc(x) }

// refreshRev recomputes the cached revolution time; called whenever rpm is
// set. The expression matches what period() always returned per call.
func (d *Disk) refreshRev() {
	d.rev = time.Duration(d.rpm.PeriodSeconds() * float64(time.Second))
	d.revF = float64(d.rev)
}

// Layout returns the disk's recording layout.
func (d *Disk) Layout() *capacity.Layout { return d.layout }

// RPM returns the current spindle speed.
func (d *Disk) RPM() units.RPM { return d.rpm }

// SetRPM changes the spindle speed (multi-speed disks; the DTM layer charges
// any transition penalty separately by pushing ReadyTime forward).
func (d *Disk) SetRPM(rpm units.RPM) error {
	if rpm <= 0 {
		return fmt.Errorf("disksim: non-positive RPM %v", rpm)
	}
	d.rpm = rpm
	d.refreshRev()
	return nil
}

// ReadyTime returns when the disk next becomes free.
func (d *Disk) ReadyTime() time.Duration { return d.ready }

// Delay pushes the disk's ready time forward (DTM throttling pauses, RPM
// transition penalties).
func (d *Disk) Delay(until time.Duration) {
	if until > d.ready {
		d.ready = until
	}
}

// HeadCylinder returns the current actuator position.
func (d *Disk) HeadCylinder() int { return d.headCyl }

// Served returns how many requests the disk has serviced.
func (d *Disk) Served() int64 { return d.served }

// Retries returns how many off-track retries have occurred.
func (d *Disk) Retries() int64 { return d.retries }

// rand draws a deterministic uniform float64 in [0,1) for retry decisions.
func (d *Disk) rand() float64 {
	d.rng ^= d.rng << 13
	d.rng ^= d.rng >> 7
	d.rng ^= d.rng << 17
	return float64(d.rng>>11) / float64(1<<53)
}

// period returns one revolution as a time.Duration.
func (d *Disk) period() time.Duration { return d.rev }

// Serve services one request, starting no earlier than the request's arrival
// or the disk's ready time. Callers are responsible for ordering (Simulate
// applies the configured scheduler).
func (d *Disk) Serve(r Request) (Completion, error) {
	if err := r.Validate(d.layout.TotalSectors()); err != nil {
		return Completion{}, err
	}
	if d.failed {
		return Completion{}, fmt.Errorf("request %d: %w (at %v)", r.ID, ErrDiskFailed, d.failedAt)
	}
	start := r.Arrival
	if d.ready > start {
		start = d.ready
	}
	c := Completion{Request: r, Start: start}
	c.Parts.Queue = start - r.Arrival
	c.Parts.Overhead = d.cfg.Overhead
	t := start + d.cfg.Overhead

	if !r.Write && d.cache.lookup(r.LBN, r.Sectors, t) {
		// Cache hit: only the bus transfer remains.
		bus := time.Duration(float64(r.Sectors*units.SectorBytes) /
			d.busBytesPerSec * float64(time.Second))
		c.Parts.Transfer = bus
		c.CacheHit = true
		c.Finish = t + bus
		d.ready = c.Finish
		d.served++
		if d.ins != nil {
			d.ins.record(&c, -1)
		}
		return c, nil
	}

	loc, err := d.layout.Locate(r.LBN)
	if err != nil {
		return Completion{}, err
	}

	// Seek.
	seekT := d.seek.SeekTime(loc.Cylinder - d.headCyl)
	c.Parts.Seek = seekT
	t += seekT

	// Rotational latency to the first sector.
	zi := loc.Cylinder / d.cylsPerZone
	period := d.rev
	angleNow := frac(float64(t) / d.revF)
	angleTarget := float64(loc.Sector) / d.zoneSPT[zi].sptF
	wait := angleTarget - angleNow
	if wait < 0 {
		wait++
	}
	rot := time.Duration(wait * d.revF)
	c.Parts.Rotation = rot
	t += rot

	// Transfer, walking track and cylinder boundaries.
	transfer, lastCyl := d.transferTime(loc, r.Sectors)
	c.Parts.Transfer = transfer
	t += transfer

	// Sectors already on the grown-defect list live in the spare area:
	// charge the relocation round-trip to fetch them.
	if d.touchesRemap(r.LBN, r.Sectors) {
		reloc := d.remapPenalty(lastCyl)
		c.Parts.Seek += reloc
		c.Remapped = true
		t += reloc
	}

	// Injected faults: off-track retries, unrecoverable sectors (remapped
	// to spares), or whole-disk failure.
	if d.cfg.Faults != nil {
		var err error
		t, err = d.applyFaults(d.cfg.Faults.Access(start, r), r, &c, t, lastCyl, period)
		if err != nil {
			d.headCyl = lastCyl
			d.ready = t
			return Completion{}, err
		}
	} else if d.cfg.RetryProb != nil {
		// Deprecated single-retry path, kept for existing callers.
		if p := d.cfg.RetryProb(start); p > 0 && d.rand() < p {
			c.Parts.Rotation += period
			c.Retried = true
			c.Retries++
			t += period
			d.retries++
		}
	}

	c.Finish = t
	d.headCyl = lastCyl
	d.ready = t
	d.served++
	if d.ins != nil {
		d.ins.record(&c, zi)
	}

	if r.Write {
		d.cache.invalidate(r.LBN, r.Sectors)
	} else {
		d.cache.fill(r.LBN, r.Sectors, d.layout.TotalSectors(), t)
	}
	return c, nil
}

// transferTime walks the request across tracks, charging media time per
// sector and a head-switch penalty per boundary; it returns the total time
// and the final cylinder. The walk reads the zoneSPT table instead of
// resolving the zone per track, and full tracks charge the cached
// revolution directly (spt/spt*rev is exactly rev — the same bits the
// division produced).
func (d *Disk) transferTime(loc capacity.Location, sectors int) (time.Duration, int) {
	var total time.Duration
	cyl, surf, sec := loc.Cylinder, loc.Surface, loc.Sector
	remaining := sectors
	for remaining > 0 {
		if cyl >= d.layout.Cylinders { // request ran off the end; Validate prevents this
			break
		}
		zr := d.zoneSPT[cyl/d.cylsPerZone]
		onTrack := zr.spt - sec
		if onTrack > remaining {
			onTrack = remaining
		}
		if onTrack == zr.spt {
			total += d.rev
		} else {
			total += time.Duration(float64(onTrack) / zr.sptF * d.revF)
		}
		remaining -= onTrack
		if remaining == 0 {
			break
		}
		// Advance to the next track: next surface, else next cylinder.
		total += d.cfg.HeadSwitch
		sec = 0
		surf++
		if surf >= d.layout.Surfaces {
			surf = 0
			cyl++
		}
	}
	return total, cyl
}

// stableSortByArrival sorts requests by arrival, preserving input order for
// ties (the per-disk ordering the batch path has always used).
func stableSortByArrival(reqs []Request) {
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
}

// simulateQueued services an arrival-sorted batch under the reordering
// disciplines: among requests that have arrived by the disk's ready time,
// pick by the discipline; if none have arrived, jump to the next arrival.
func (d *Disk) simulateQueued(sorted []Request) ([]Completion, error) {
	out := make([]Completion, 0, len(sorted))
	pending := make([]Request, 0, 64)
	i := 0
	now := time.Duration(0)
	sweepUp := true // LOOK direction
	for i < len(sorted) || len(pending) > 0 {
		for i < len(sorted) && sorted[i].Arrival <= now {
			pending = append(pending, sorted[i])
			i++
		}
		d.ins.noteQueueDepth(len(pending))
		if len(pending) == 0 {
			now = sorted[i].Arrival
			continue
		}
		var best int
		if d.cfg.Scheduler == LOOK {
			best, sweepUp = d.lookPick(pending, sweepUp)
		} else {
			best = 0
			bestCost := d.positionCost(pending[0], now)
			for j := 1; j < len(pending); j++ {
				if cost := d.positionCost(pending[j], now); cost < bestCost {
					best, bestCost = j, cost
				}
			}
		}
		r := pending[best]
		pending = append(pending[:best], pending[best+1:]...)
		c, err := d.Serve(r)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
		if c.Finish > now {
			now = c.Finish
		}
	}
	return out, nil
}

// lookPick selects the next request under the elevator discipline: the
// nearest pending cylinder at or beyond the head in the sweep direction,
// reversing when the direction is exhausted. It returns the chosen index and
// the (possibly flipped) direction.
func (d *Disk) lookPick(pending []Request, sweepUp bool) (int, bool) {
	pick := func(up bool) (int, bool) {
		best := -1
		var bestCyl int
		for j, r := range pending {
			loc, err := d.layout.Locate(r.LBN)
			if err != nil {
				continue
			}
			cyl := loc.Cylinder
			if up && cyl >= d.headCyl {
				if best < 0 || cyl < bestCyl {
					best, bestCyl = j, cyl
				}
			} else if !up && cyl <= d.headCyl {
				if best < 0 || cyl > bestCyl {
					best, bestCyl = j, cyl
				}
			}
		}
		return best, best >= 0
	}
	if idx, ok := pick(sweepUp); ok {
		return idx, sweepUp
	}
	if idx, ok := pick(!sweepUp); ok {
		return idx, !sweepUp
	}
	return 0, sweepUp // unlocatable requests only; serve in order
}

// positionCost estimates the positioning cost of a request from the current
// head position, per the configured discipline.
func (d *Disk) positionCost(r Request, now time.Duration) float64 {
	loc, err := d.layout.Locate(r.LBN)
	if err != nil {
		return math.Inf(1)
	}
	seekT := d.seek.SeekTime(loc.Cylinder - d.headCyl)
	if d.cfg.Scheduler == SSTF {
		return float64(seekT)
	}
	// SPTF: seek plus rotational latency estimated at now+overhead+seek.
	t := now + d.cfg.Overhead + seekT
	angleNow := frac(float64(t) / d.revF)
	angleTarget := float64(loc.Sector) / d.zoneSPT[loc.Cylinder/d.cylsPerZone].sptF
	wait := angleTarget - angleNow
	if wait < 0 {
		wait++
	}
	return float64(seekT) + wait*d.revF
}
