// Package disksim is an event-driven single-disk simulator — this
// repository's substitute for the DiskSim 2.0 installation the paper drives
// its Figure 4 study with. It models the mechanical service path (seek,
// rotational latency, zoned multi-track transfer), a segmented read cache
// with prefetch, controller overhead, and FCFS/SSTF/SPTF queueing, on top of
// the capacity model's exact ZBR layout.
package disksim

import (
	"fmt"
	"time"
)

// Request is one disk I/O.
type Request struct {
	// ID correlates completions with submissions (and RAID sub-requests
	// with their parent volume request).
	ID int64

	// Arrival is the submission time relative to simulation start.
	Arrival time.Duration

	// LBN is the first logical block (512-byte sector) address.
	LBN int64

	// Sectors is the transfer length.
	Sectors int

	// Write marks a write (writes bypass the read cache and invalidate
	// overlapping segments).
	Write bool
}

// Validate reports whether the request is well-formed for a disk with
// totalSectors addressable blocks.
func (r Request) Validate(totalSectors int64) error {
	if r.Sectors <= 0 {
		return fmt.Errorf("disksim: request %d has %d sectors", r.ID, r.Sectors)
	}
	if r.LBN < 0 || r.LBN+int64(r.Sectors) > totalSectors {
		return fmt.Errorf("disksim: request %d range [%d,%d) outside [0,%d)",
			r.ID, r.LBN, r.LBN+int64(r.Sectors), totalSectors)
	}
	if r.Arrival < 0 {
		return fmt.Errorf("disksim: request %d arrives before time zero", r.ID)
	}
	return nil
}

// Breakdown decomposes a request's service time.
type Breakdown struct {
	Queue    time.Duration // waiting for the disk to become free
	Overhead time.Duration // controller/bus command overhead
	Seek     time.Duration // actuator movement
	Rotation time.Duration // rotational latency
	Transfer time.Duration // media (or bus, for cache hits) transfer
}

// Completion is the outcome of one request.
type Completion struct {
	Request  Request
	Start    time.Duration // when the disk began servicing it
	Finish   time.Duration // when the last byte moved
	CacheHit bool
	// Retried marks a thermally-induced off-track retry (at least one
	// extra revolution was spent re-reading); Retries is the count.
	Retried bool
	Retries int
	// Remapped marks an access that visited the spare area — either a new
	// unrecoverable sector being reassigned or a read of a grown defect.
	Remapped bool
	Parts    Breakdown
}

// Response returns the end-to-end response time (arrival to finish).
func (c Completion) Response() time.Duration { return c.Finish - c.Request.Arrival }
