// Streaming-vs-batch equivalence: the event-driven core must reproduce the
// whole-trace batch path bit for bit. Volume.Simulate routes FCFS volumes
// through the engine while Volume.SimulateBatch keeps the independent
// disk-by-disk implementation, so running both over the same seeded
// workloads pins the determinism contract — same finishes, same breakdowns,
// same cache-hit and injected-fault counts.
package integration

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/capacity"
	"repro/internal/disksim"
	"repro/internal/dtm"
	"repro/internal/raid"
	"repro/internal/reliability"
	"repro/internal/scaling"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/trace"
)

// policyDrive builds the 2005-density layout and thermal model the DTM
// equivalence tests run on.
func policyDrive(t *testing.T) (*capacity.Layout, *thermal.Model) {
	t.Helper()
	geom := thermal.ReferenceDrive
	bpi, tpi := scaling.DefaultTrend().Densities(2005)
	layout, err := capacity.New(capacity.Config{Geometry: geom, BPI: bpi, TPI: tpi, Zones: 50})
	if err != nil {
		t.Fatal(err)
	}
	th, err := thermal.New(geom)
	if err != nil {
		t.Fatal(err)
	}
	return layout, th
}

// policyRequests is a seeded random FCFS workload.
func policyRequests(total int64, n int, rate float64) []disksim.Request {
	rng := rand.New(rand.NewSource(3))
	reqs := make([]disksim.Request, n)
	now := 0.0
	for i := range reqs {
		now += rng.ExpFloat64() / rate
		reqs[i] = disksim.Request{
			ID:      int64(i),
			Arrival: time.Duration(now * float64(time.Second)),
			LBN:     rng.Int63n(total - 64),
			Sectors: 8,
			Write:   rng.Float64() < 0.3,
		}
	}
	return reqs
}

// relDiff returns |a-b|/b.
func relDiff(a, b float64) float64 {
	d := (a - b) / b
	if d < 0 {
		return -d
	}
	return d
}

// TestStreamVolumeMatchesBatch replays every seeded workload through both
// paths and requires identical completions.
func TestStreamVolumeMatchesBatch(t *testing.T) {
	for _, w := range trace.Workloads {
		w := w.WithRequests(4000)
		t.Run(w.Name, func(t *testing.T) {
			streamVol, err := w.BuildVolume(w.BaselineRPM)
			if err != nil {
				t.Fatal(err)
			}
			batchVol, err := w.BuildVolume(w.BaselineRPM)
			if err != nil {
				t.Fatal(err)
			}
			reqs, err := w.Generate(streamVol.Capacity())
			if err != nil {
				t.Fatal(err)
			}
			got, err := streamVol.Simulate(reqs)
			if err != nil {
				t.Fatal(err)
			}
			want, err := batchVol.SimulateBatch(reqs)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("stream served %d completions, batch %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("completion %d differs:\nstream %+v\nbatch  %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestStreamFaultCountsMatchBatch wires identically-seeded thermal fault
// injectors to both volumes' members: the injected off-track retries and
// sector remaps must land on the same requests in both paths.
func TestStreamFaultCountsMatchBatch(t *testing.T) {
	w := trace.Workloads[0].WithRequests(3000)
	streamVol, err := w.BuildVolume(w.BaselineRPM)
	if err != nil {
		t.Fatal(err)
	}
	batchVol, err := w.BuildVolume(w.BaselineRPM)
	if err != nil {
		t.Fatal(err)
	}
	// A hot steady temperature makes the off-track hazard bite.
	for _, vol := range []*raid.Volume{streamVol, batchVol} {
		for i, d := range vol.Disks() {
			inj := dtm.NewThermalFaults(dtm.OffTrackModel{}, reliability.Default(),
				dtm.BindSteady(52), int64(100+i))
			d.SetFaults(inj)
		}
	}
	reqs, err := w.Generate(streamVol.Capacity())
	if err != nil {
		t.Fatal(err)
	}
	got, err := streamVol.Simulate(reqs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := batchVol.SimulateBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("stream served %d completions, batch %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("completion %d differs:\nstream %+v\nbatch  %+v", i, got[i], want[i])
		}
	}
	var retries, remaps int64
	for i, d := range streamVol.Disks() {
		bd := batchVol.Disks()[i]
		if d.Retries() != bd.Retries() {
			t.Errorf("disk %d: stream %d retries, batch %d", i, d.Retries(), bd.Retries())
		}
		if d.Remapped() != bd.Remapped() {
			t.Errorf("disk %d: stream %d remaps, batch %d", i, d.Remapped(), bd.Remapped())
		}
		retries += d.Retries()
		remaps += d.Remapped()
	}
	if retries == 0 {
		t.Error("no injected retries: the fault path was not exercised")
	}
}

// TestStreamDTMMatchesRun pins the controller wrapper contract: RunStream
// over a slice source reproduces Run's mean exactly (the running mean sums
// in the same order as the retained sample) and its P² p95 lands near the
// exact order statistic.
func TestStreamDTMMatchesRun(t *testing.T) {
	layout, th := policyDrive(t)
	mk := func() *dtm.Controller {
		d, err := disksim.New(disksim.Config{Layout: layout, RPM: 24534})
		if err != nil {
			t.Fatal(err)
		}
		return &dtm.Controller{Disk: d, Thermal: th, Mode: dtm.VCMOnly}
	}
	reqs := policyRequests(layout.TotalSectors(), 4000, 150)

	batch, err := mk().Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := mk().RunStream(sim.NewEngine(), sim.FromSlice(reqs),
		sim.Discard[disksim.Completion]())
	if err != nil {
		t.Fatal(err)
	}
	if streamed.MeanResponseMillis != batch.MeanResponseMillis {
		t.Errorf("stream mean %.6f ms, batch %.6f ms", streamed.MeanResponseMillis, batch.MeanResponseMillis)
	}
	if streamed.MaxAirTemp != batch.MaxAirTemp {
		t.Errorf("stream max air %v, batch %v", streamed.MaxAirTemp, batch.MaxAirTemp)
	}
	if streamed.ThrottleEvents != batch.ThrottleEvents || streamed.ThrottledTime != batch.ThrottledTime {
		t.Errorf("stream throttling %d/%v, batch %d/%v",
			streamed.ThrottleEvents, streamed.ThrottledTime, batch.ThrottleEvents, batch.ThrottledTime)
	}
	if streamed.Elapsed != batch.Elapsed {
		t.Errorf("stream elapsed %v, batch %v", streamed.Elapsed, batch.Elapsed)
	}
	// P² estimate vs exact order statistic: a few percent on this unimodal
	// distribution.
	if batch.P95ResponseMillis > 0 {
		if d := relDiff(streamed.P95ResponseMillis, batch.P95ResponseMillis); d > 0.10 {
			t.Errorf("P² p95 %.3f ms vs exact %.3f ms (%.1f%% off)",
				streamed.P95ResponseMillis, batch.P95ResponseMillis, d*100)
		}
	}
}

// TestRecoveryStreamMatchesRun replays a scripted member failure through
// Run and through RunStream with a sink, requiring identical completions
// and recovery counters.
func TestRecoveryStreamMatchesRun(t *testing.T) {
	w := trace.Workloads[0].WithRequests(2000)
	mkSession := func() (*raid.RecoverySession, []raid.Request) {
		vol, err := w.BuildVolume(w.BaselineRPM)
		if err != nil {
			t.Fatal(err)
		}
		vol.Disks()[0].SetFaults(disksim.FailAfter{T: 2 * time.Second})
		reqs, err := w.Generate(vol.Capacity())
		if err != nil {
			t.Fatal(err)
		}
		s, err := raid.NewRecoverySession(vol, raid.RecoveryConfig{Reliability: reliability.Default()})
		if err != nil {
			t.Fatal(err)
		}
		return s, reqs
	}

	s1, reqs := mkSession()
	rep, err := s1.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}

	s2, reqs2 := mkSession()
	var got []raid.Completion
	err = s2.RunStream(sim.NewEngine(), sim.FromSlice(reqs2),
		sim.SinkFunc[raid.Completion](func(c raid.Completion) { got = append(got, c) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rep.Completions) {
		t.Fatalf("stream served %d, batch %d", len(got), len(rep.Completions))
	}
	for i := range got {
		if got[i] != rep.Completions[i] {
			t.Fatalf("completion %d differs:\nstream %+v\nbatch  %+v", i, got[i], rep.Completions[i])
		}
	}
	srep := s2.Report()
	if srep.Degraded != rep.Degraded || srep.LostRequests != rep.LostRequests ||
		srep.Reconstructions != rep.Reconstructions || srep.ExposedWrites != rep.ExposedWrites {
		t.Errorf("stream counters %+v, batch %+v", srep, rep)
	}
}
