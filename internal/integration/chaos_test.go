// Chaos integration: a real simd subprocess (built with -race), a journal,
// live load, and kill -9. The acceptance contract from the issue: after
// restart every acknowledged job reaches a terminal state exactly once,
// interrupted jobs resume from their last checkpoint, and a resumed seeded
// job's NDJSON result is byte-identical to an uninterrupted run.
package integration

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

// buildSimd compiles the daemon (race-instrumented, so the subprocess is
// part of the -race acceptance run) into a per-test temp dir.
func buildSimd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "simd")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-race", "-o", bin, "repro/cmd/simd")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build simd: %v\n%s", err, out)
	}
	return bin
}

// startSimd launches the daemon against a journal dir and returns its base
// URL once it is listening.
func startSimd(t *testing.T, bin, journalDir string) (*exec.Cmd, string) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-journal", journalDir,
		"-checkpoint-every", "1000",
		"-workers", "2",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(bytes.TrimSpace(b)) > 0 {
			return cmd, "http://" + strings.TrimSpace(string(b))
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("simd never wrote its address")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitReady polls /readyz until the daemon reports state=ready (journal
// replay included).
func waitReady(t *testing.T, c *client.Client) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		err := c.Ready(ctx)
		cancel()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became ready: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func scrapeMetric(t *testing.T, base, name string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, name) {
			return line
		}
	}
	return ""
}

// TestSIGKILLRecovery is the end-to-end crash drill. The kill point is
// randomized (seeded, logged) so repeated CI runs sample different cut
// positions in the long job's stream.
func TestSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos drill")
	}
	seed := time.Now().UnixNano()
	t.Logf("chaos seed %d", seed)
	rng := rand.New(rand.NewSource(seed))

	bin := buildSimd(t)
	journalDir := t.TempDir()
	cmd, base := startSimd(t, bin, journalDir)
	defer cmd.Process.Kill()

	c := client.New(base, client.Options{
		Retry: client.RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 200 * time.Millisecond},
		Seed:  seed,
	})
	waitReady(t, c)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// Load: a burst of quick roadmap jobs plus one long seeded dtm run that
	// the kill must land in the middle of.
	quick := server.Spec{Type: server.TypeRoadmap, Roadmap: &server.RoadmapSpec{
		FirstYear: 2002, LastYear: 2004, PlatterSizes: []float64{2.6},
	}}
	long := server.Spec{Type: server.TypeDTM, DTM: &server.DTMSpec{
		Policy: "envelope", Requests: 200000, SampleEvery: 500,
	}}

	acked := map[string]string{} // idempotency key -> job id
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("quick-%d", i)
		info, err := c.SubmitAsync(ctx, quick, key)
		if err != nil {
			t.Fatalf("submit %s: %v", key, err)
		}
		acked[key] = info.ID
	}
	longInfo, err := c.SubmitAsync(ctx, long, "long-0")
	if err != nil {
		t.Fatal(err)
	}
	acked["long-0"] = longInfo.ID

	// Kill once the long job has streamed a randomized number of lines —
	// the journal then holds a real mid-run checkpoint prefix.
	wantLines := 3 + rng.Intn(12)
	killDeadline := time.Now().Add(60 * time.Second)
	for {
		info, err := c.Job(ctx, longInfo.ID)
		if err != nil {
			t.Fatal(err)
		}
		if info.Status == server.StatusDone {
			t.Fatal("long job finished before the kill; raise requests")
		}
		if info.ResultLines >= wantLines {
			break
		}
		if time.Now().After(killDeadline) {
			t.Fatalf("long job never reached %d lines (at %d)", wantLines, info.ResultLines)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no courtesy
		t.Fatal(err)
	}
	cmd.Wait()

	// Restart over the same journal.
	cmd2, base2 := startSimd(t, bin, journalDir)
	defer func() {
		cmd2.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { cmd2.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			cmd2.Process.Kill()
		}
	}()
	c2 := client.New(base2, client.Options{
		Retry: client.RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 200 * time.Millisecond},
		Seed:  seed + 1,
	})
	waitReady(t, c2)

	// Exactly once: every acknowledged job is back, none duplicated, and
	// each reaches a terminal state.
	resp, err := http.Get(base2 + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []server.Info `json:"jobs"`
	}
	if err := decodeJSON(resp, &list); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, j := range list.Jobs {
		seen[j.ID]++
	}
	if len(list.Jobs) != len(acked) {
		t.Fatalf("replayed %d jobs, want %d: %+v", len(list.Jobs), len(acked), seen)
	}
	for key, id := range acked {
		if seen[id] != 1 {
			t.Fatalf("job %s (%s) appears %d times after restart", id, key, seen[id])
		}
		final, err := c2.Wait(ctx, id, 10*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if final.Status != server.StatusDone {
			t.Fatalf("job %s (%s) ended %q (%s), want done", id, key, final.Status, final.Error)
		}
	}

	// Idempotency keys survive the crash: resubmission attaches to the
	// original job instead of running it again.
	for key, id := range acked {
		spec := quick
		if key == "long-0" {
			spec = long
		}
		dup, err := c2.SubmitAsync(ctx, spec, key)
		if err != nil {
			t.Fatalf("dedup %s: %v", key, err)
		}
		if dup.ID != id {
			t.Fatalf("key %s now maps to %s, was %s", key, dup.ID, id)
		}
	}

	// The long job really resumed from a checkpoint (not silently re-run
	// from nothing while we weren't looking)...
	if line := scrapeMetric(t, base2, "simd_jobs_resumed_total"); line == "" || strings.HasSuffix(line, " 0") {
		t.Fatalf("simd_jobs_resumed_total = %q, want >= 1", line)
	}
	// ...and its resumed result is byte-identical to an uninterrupted run
	// of the same seeded spec.
	resumed, err := c2.Result(ctx, longInfo.ID)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := c2.Submit(ctx, long, "")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, fresh) {
		t.Fatalf("resumed result differs from uninterrupted run (%d vs %d bytes)", len(resumed), len(fresh))
	}
	quickResumed, err := c2.Result(ctx, acked["quick-0"])
	if err != nil {
		t.Fatal(err)
	}
	quickFresh, err := c2.Submit(ctx, quick, "")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(quickResumed, quickFresh) {
		t.Fatal("quick job's replayed result differs from a fresh run")
	}
}

func decodeJSON(resp *http.Response, v any) error {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	return json.Unmarshal(raw, v)
}
