// Package integration exercises cross-module flows end to end: the full
// model chain (densities -> layout -> drive -> temperature), the simulation
// chain (trace -> RAID -> disks -> statistics), and the DTM chain (policy ->
// thermal transient -> reliability scoring). These tests pin the invariants
// the paper's argument rests on, across module boundaries.
package integration

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/capacity"
	"repro/internal/core"
	"repro/internal/disksim"
	"repro/internal/dtm"
	"repro/internal/perf"
	"repro/internal/power"
	"repro/internal/raid"
	"repro/internal/reliability"
	"repro/internal/scaling"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/trace"
	"repro/internal/units"
)

// TestModelChainRoadmapDrive walks the full chain for the 2005 roadmap
// drive: the scaling trend fixes densities, the capacity model derives the
// layout, perf turns it into a data rate, and thermal prices it — and the
// numbers must agree with the roadmap engine's own view of the same point.
func TestModelChainRoadmapDrive(t *testing.T) {
	m, err := core.RoadmapDrive(2005, 2.6, 1, 24527)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := scaling.Roadmap(scaling.Config{PlatterSizes: []units.Inches{2.6}})
	if err != nil {
		t.Fatal(err)
	}
	p := scaling.ByYearSize(pts)[2005][2.6]

	if math.Abs(float64(m.IDR())-float64(p.TargetIDR))/float64(p.TargetIDR) > 0.01 {
		t.Errorf("drive IDR %v vs roadmap target %v", m.IDR(), p.TargetIDR)
	}
	if m.Capacity() != p.Capacity {
		t.Errorf("drive capacity %v vs roadmap %v", m.Capacity(), p.Capacity)
	}
	temp := m.SteadyTemperature(1, thermal.DefaultAmbient)
	if math.Abs(float64(temp-p.RequiredTemp)) > 0.05 {
		t.Errorf("drive temperature %v vs roadmap %v", temp, p.RequiredTemp)
	}
	// 2005's required speed is over the envelope: the integrated model
	// agrees with the roadmap's verdict.
	if m.WithinEnvelope() {
		t.Error("the 2005 2.6\" required speed should exceed the envelope")
	}
}

// TestSimulationChainDeterminism runs the full Figure 4 pipeline twice and
// requires identical statistics — the whole stack is deterministic.
func TestSimulationChainDeterminism(t *testing.T) {
	w := trace.Workloads[3].WithRequests(5000) // TPC-C: RAID-5 + write-back
	run := func() core.WorkloadResult {
		res, err := core.RunFigure4Steps(w, []units.RPM{10000}, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Steps[0].MeanMillis != b.Steps[0].MeanMillis {
		t.Errorf("non-deterministic means: %v vs %v", a.Steps[0].MeanMillis, b.Steps[0].MeanMillis)
	}
	for i := range a.Steps[0].CDF {
		if a.Steps[0].CDF[i] != b.Steps[0].CDF[i] {
			t.Fatalf("non-deterministic CDF at bucket %d", i)
		}
	}
}

// TestTraceCodecThroughSimulation generates a trace, round-trips it through
// the codec, and verifies the simulation outcome is identical.
func TestTraceCodecThroughSimulation(t *testing.T) {
	w := trace.Workloads[2].WithRequests(3000) // Search-Engine
	vol, err := w.BuildVolume(w.BaselineRPM)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := w.Generate(vol.Capacity())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	back, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	mean := func(rs []raid.Request) float64 {
		v, err := w.BuildVolume(w.BaselineRPM)
		if err != nil {
			t.Fatal(err)
		}
		comps, err := v.Simulate(rs)
		if err != nil {
			t.Fatal(err)
		}
		var s stats.Sample
		for _, c := range comps {
			s.Add(c.Response())
		}
		return s.Mean()
	}
	if a, b := mean(reqs), mean(back); a != b {
		t.Errorf("codec round-trip changed the simulation: %v vs %v", a, b)
	}
}

// TestEnergyThermalConsistency: the power model's total at an operating
// point equals the heat the thermal model pushes to ambient at steady state
// (minus the electronics floor the thermal model excludes).
func TestEnergyThermalConsistency(t *testing.T) {
	pm, err := power.New(thermal.ReferenceDrive)
	if err != nil {
		t.Fatal(err)
	}
	th, err := thermal.New(thermal.ReferenceDrive)
	if err != nil {
		t.Fatal(err)
	}
	for _, rpm := range []units.RPM{15000, 24534, 37001} {
		b := pm.Active(rpm)
		mech := float64(b.Windage + b.Bearing + b.VCM)
		// The thermal network dissipates exactly the mechanical terms.
		want := float64(thermal.ViscousDissipation(rpm, 2.6, 1)) +
			float64(thermal.BearingLoss(rpm, 2.6)) +
			float64(thermal.VCMPower(2.6))
		if math.Abs(mech-want) > 1e-9 {
			t.Errorf("power/thermal disagree at %v: %v vs %v", rpm, mech, want)
		}
		_ = th
	}
}

// TestDTMReliabilityChain runs the watermark controller and scores its
// thermal profile with the reliability model: the controlled drive must age
// no faster than a drive pinned at the envelope.
func TestDTMReliabilityChain(t *testing.T) {
	if testing.Short() {
		t.Skip("long thermal-coupled run")
	}
	geom := thermal.ReferenceDrive
	bpi, tpi := scaling.DefaultTrend().Densities(2005)
	layout, err := capacity.New(capacity.Config{Geometry: geom, BPI: bpi, TPI: tpi, Zones: 50})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := disksim.New(disksim.Config{Layout: layout, RPM: 24534})
	if err != nil {
		t.Fatal(err)
	}
	th, err := thermal.New(geom)
	if err != nil {
		t.Fatal(err)
	}
	warm := th.SteadyState(thermal.Load{RPM: 24534, VCMDuty: 0.62, Ambient: thermal.DefaultAmbient})
	ctl := dtm.Controller{Disk: disk, Thermal: th, Mode: dtm.VCMOnly, Initial: &warm}

	reqs := make([]disksim.Request, 20000)
	state := uint64(5)
	now := time.Duration(0)
	for i := range reqs {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		now += time.Duration(6+state%9) * time.Millisecond
		reqs[i] = disksim.Request{
			ID:      int64(i),
			Arrival: now,
			LBN:     int64(state % uint64(layout.TotalSectors()-8)),
			Sectors: 8,
		}
	}
	res, err := ctl.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}

	rel := reliability.Default()
	controlled := reliability.NewExposure(rel)
	controlled.Add(res.MaxAirTemp, time.Hour) // worst-case bound on the profile
	pinned := reliability.NewExposure(rel)
	pinned.Add(thermal.Envelope, time.Hour)
	ext, err := controlled.LifeExtension(pinned)
	if err != nil {
		t.Fatal(err)
	}
	// The controller's guard keeps MaxAirTemp at or below the envelope, so
	// even the worst-case bound ages no faster than the envelope profile
	// (tiny per-service overshoot tolerated).
	if ext < 0.99 {
		t.Errorf("controlled drive ages %.3fx faster than envelope operation", 1/ext)
	}
}

// TestSeekModelMatchesSimulator: the simulator's measured seek component for
// a known cylinder distance equals the perf model's prediction.
func TestSeekModelMatchesSimulator(t *testing.T) {
	bpi, tpi := scaling.DefaultTrend().Densities(2002)
	layout, err := capacity.New(capacity.Config{Geometry: thermal.ReferenceDrive, BPI: bpi, TPI: tpi, Zones: 50})
	if err != nil {
		t.Fatal(err)
	}
	d, err := disksim.New(disksim.Config{Layout: layout, RPM: 15000, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := perf.NewSeekModel(perf.SeekParamsForPlatter(2.6), layout.Cylinders)
	if err != nil {
		t.Fatal(err)
	}
	target := layout.Cylinders / 2
	lbn, err := layout.LBNOf(capacity.Location{Cylinder: target})
	if err != nil {
		t.Fatal(err)
	}
	c, err := d.Serve(disksim.Request{ID: 1, LBN: lbn, Sectors: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := sm.SeekTime(target); c.Parts.Seek != want {
		t.Errorf("simulator seek %v vs model %v", c.Parts.Seek, want)
	}
}

// TestEndToEndEnergyAccounting drives a workload and checks the energy
// ledger is internally consistent.
func TestEndToEndEnergyAccounting(t *testing.T) {
	bpi, tpi := scaling.DefaultTrend().Densities(2002)
	layout, err := capacity.New(capacity.Config{Geometry: thermal.ReferenceDrive, BPI: bpi, TPI: tpi, Zones: 50})
	if err != nil {
		t.Fatal(err)
	}
	d, err := disksim.New(disksim.Config{Layout: layout, RPM: 15000})
	if err != nil {
		t.Fatal(err)
	}
	var comps []disksim.Completion
	state := uint64(17)
	for i := 0; i < 500; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		c, err := d.Serve(disksim.Request{
			ID:      int64(i),
			Arrival: time.Duration(i) * 8 * time.Millisecond,
			LBN:     int64(state % uint64(layout.TotalSectors()-8)),
			Sectors: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		comps = append(comps, c)
	}
	pm, err := power.New(thermal.ReferenceDrive)
	if err != nil {
		t.Fatal(err)
	}
	acct := pm.AccountRun(15000, comps)
	if acct.Total() != acct.Spin+acct.Seek {
		t.Error("ledger does not add up")
	}
	// Sanity: a 4-second run of a ~9 W drive costs tens of joules.
	if j := float64(acct.Total()); j < 10 || j > 200 {
		t.Errorf("total energy %v J implausible for a %.1f s run", j, acct.Span.Seconds())
	}
}
