package integration

import (
	"testing"
	"time"

	"repro/internal/capacity"
	"repro/internal/disksim"
	"repro/internal/dtm"
	"repro/internal/raid"
	"repro/internal/reliability"
	"repro/internal/scaling"
	"repro/internal/thermal"
)

// TestMirroredVolumeSurvivesDiskLoss is the fault-tolerance chain end to
// end: a mirrored volume under a hot trace loses a member mid-run, fails
// over, rebuilds onto a spare, and returns to normal — with the thermal
// off-track injector live on the surviving member the whole time. Every
// request must complete, the degraded-mode penalty must stay bounded, and
// the rebuild must converge.
func TestMirroredVolumeSurvivesDiskLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("long fault-injection run")
	}
	bpi, tpi := scaling.DefaultTrend().Densities(2005)
	layout, err := capacity.New(capacity.Config{
		Geometry: thermal.ReferenceDrive, BPI: bpi, TPI: tpi, Zones: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(f disksim.FaultInjector) *disksim.Disk {
		d, err := disksim.New(disksim.Config{Layout: layout, RPM: 15020, Faults: f})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	// Member 0 dies one second in; member 1 runs hot enough (envelope +3 C)
	// that the off-track mechanism charges occasional retries but the
	// failure hazard stays physical, i.e. negligible over a seconds-long
	// trace.
	survivorFaults := dtm.NewThermalFaults(dtm.OffTrackModel{}, reliability.Default(),
		dtm.BindSteady(thermal.Envelope+3), 11)
	disks := []*disksim.Disk{
		mk(disksim.FailAfter{T: time.Second}),
		mk(survivorFaults),
	}
	v, err := raid.New(raid.RAID1, disks, raid.DefaultStripeUnit)
	if err != nil {
		t.Fatal(err)
	}
	spare := mk(nil)
	s, err := raid.NewRecoverySession(v, raid.RecoveryConfig{
		Reliability:     reliability.Default(),
		Temp:            thermal.Envelope + 3,
		RebuildMBPerSec: 2e6, // converge well inside the trace
	}, spare)
	if err != nil {
		t.Fatal(err)
	}

	const n = 1500
	reqs := make([]raid.Request, n)
	state := uint64(23)
	for i := range reqs {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		reqs[i] = raid.Request{
			ID:      int64(i),
			Arrival: time.Duration(i) * 4 * time.Millisecond,
			Block:   int64(state % uint64(v.Capacity()-64)),
			Sectors: 8,
			Write:   i%5 == 0,
		}
	}
	rep, err := s.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}

	// 1. Every request completes through the failure.
	if len(rep.Completions) != n {
		t.Fatalf("served %d of %d requests through the disk loss", len(rep.Completions), n)
	}

	// 2. The rebuild converges and clears degraded mode.
	var failedAt, rebuiltAt time.Duration
	var sawFail, sawRebuild bool
	for _, e := range rep.Events {
		switch e.Kind {
		case raid.EventDiskFailed:
			sawFail, failedAt = true, e.Time
		case raid.EventRebuildCompleted:
			sawRebuild, rebuiltAt = true, e.Time
		}
	}
	if !sawFail || !sawRebuild {
		t.Fatalf("failure/rebuild events missing: %v", rep.Events)
	}
	if rebuiltAt <= failedAt {
		t.Fatalf("rebuild completed at %v, before the failure at %v", rebuiltAt, failedAt)
	}
	for _, c := range rep.Completions {
		if c.Request.Arrival > rebuiltAt && c.Degraded {
			t.Fatalf("request %d arrived %v after rebuild yet ran degraded",
				c.Request.ID, c.Request.Arrival-rebuiltAt)
		}
	}

	// 3. The degraded-mode penalty is bounded: a mirror read fails over to
	// the one survivor, so the mean degraded response must stay within a
	// small multiple of healthy service (queueing on the halved read
	// bandwidth, not a cliff).
	var healthy, degraded meanAcc
	for _, c := range rep.Completions {
		if c.Degraded {
			degraded.add(c.Response())
		} else {
			healthy.add(c.Response())
		}
	}
	if degraded.n == 0 {
		t.Fatal("no request observed degraded mode")
	}
	hm, dm := healthy.mean(), degraded.mean()
	if dm > 10*hm {
		t.Errorf("degraded mean %.2f ms is over 10x the healthy mean %.2f ms",
			dm/float64(time.Millisecond), hm/float64(time.Millisecond))
	}

	// 4. The hot survivor saw thermal retries (the injector was live).
	if disks[1].Retries() == 0 {
		t.Error("the over-envelope survivor never logged an off-track retry")
	}
	if rep.RebuildRisk <= 0 || rep.RebuildRisk >= 1 {
		t.Errorf("rebuild-window risk %v implausible", rep.RebuildRisk)
	}
}

// meanAcc is a tiny mean accumulator (the full stats.Sample quantizes to
// milliseconds; here we want raw durations).
type meanAcc struct {
	sum time.Duration
	n   int
}

func (s *meanAcc) add(d time.Duration) { s.sum += d; s.n++ }
func (s *meanAcc) mean() float64       { return float64(s.sum) / float64(s.n) }
