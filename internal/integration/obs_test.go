// Observability determinism: -metrics-out and -trace-out must be
// byte-identical at any worker count. The metric design (commutative
// counters, single-writer per-cell gauges, sorted snapshots) and the
// tracer design (per-step sub-tracers merged in input order) each carry
// half of that contract; these tests pin the composed result.
package integration

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// renderObs runs one workload's streaming RPM sweep with both sinks
// attached and renders the deterministic snapshot and span stream.
func renderObs(t *testing.T, workers int) (metrics, spans string) {
	t.Helper()
	w := trace.Workloads[3].WithRequests(1500) // TPC-C: smallest array
	reg := obs.NewRegistry()
	tr := obs.NewTracer(0)
	_, err := core.RunFigure4StepsStreamObs(w, core.Figure4Steps(w.BaselineRPM), workers,
		core.Observe{Registry: reg, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	var m, s strings.Builder
	if err := obs.WriteNDJSON(&m, obs.Stable(reg.Snapshot())); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteSpans(&s, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	return m.String(), s.String()
}

// TestObsSnapshotBytesIdenticalAcrossWorkers is the acceptance contract:
// the NDJSON snapshot and the span stream from a -workers 1 run and a
// -workers 4 run must match byte for byte.
func TestObsSnapshotBytesIdenticalAcrossWorkers(t *testing.T) {
	m1, s1 := renderObs(t, 1)
	m4, s4 := renderObs(t, 4)
	if m1 != m4 {
		t.Errorf("metric snapshots differ between worker counts:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", m1, m4)
	}
	if s1 != s4 {
		t.Errorf("span streams differ between worker counts (%d vs %d bytes)", len(s1), len(s4))
	}
	if m1 == "" || s1 == "" {
		t.Fatal("observed run produced no output")
	}
}

// TestObsMetricsMatchResults cross-checks the registry against the sweep's
// own summary: the per-step raid request counters must equal the request
// count, and the response histogram's n/sum must agree with the step mean.
func TestObsMetricsMatchResults(t *testing.T) {
	w := trace.Workloads[3].WithRequests(1500)
	reg := obs.NewRegistry()
	res, err := core.RunFigure4StepsStreamObs(w, core.Figure4Steps(w.BaselineRPM), 2,
		core.Observe{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[string]obs.Metric)
	for _, m := range reg.Snapshot() {
		byID[m.ID()] = m
	}
	for _, step := range res.Steps {
		rpm := strings.TrimSuffix(strings.ReplaceAll(step.RPM.String(), ",", ""), " RPM")
		var reqID string
		for id, m := range byID {
			if m.Name == "raid_requests_total" && m.Labels["rpm"] != "" &&
				strings.Contains(id, `workload="TPC-C"`) && labelRPM(m) == int(step.RPM) {
				reqID = id
			}
		}
		if reqID == "" {
			t.Fatalf("no raid_requests_total series for rpm %v (tried %q); have %d series", step.RPM, rpm, len(byID))
		}
		if got := byID[reqID].Count; got != 1500 {
			t.Errorf("rpm %v: raid_requests_total = %d, want 1500", step.RPM, got)
		}
		// Histogram mean must reproduce the step mean exactly: the same
		// additions flowed through both accumulators.
		for _, m := range byID {
			if m.Name == "raid_response_ms" && labelRPM(m) == int(step.RPM) {
				if m.N != 1500 {
					t.Errorf("rpm %v: histogram n = %d, want 1500", step.RPM, m.N)
				}
				if mean := m.Sum / float64(m.N); mean != step.MeanMillis {
					t.Errorf("rpm %v: histogram mean %v != step mean %v", step.RPM, mean, step.MeanMillis)
				}
			}
		}
	}
}

// labelRPM parses a metric's rpm label (0 when absent or malformed).
func labelRPM(m obs.Metric) int {
	v := m.Labels["rpm"]
	n := 0
	for _, r := range v {
		if r < '0' || r > '9' {
			return 0
		}
		n = n*10 + int(r-'0')
	}
	return n
}
