// End-to-end tests for the simulation service: a real simd server on an
// ephemeral port, driven over HTTP. These pin the PR's acceptance
// contract: 64 concurrent submissions survive -race, a full queue answers
// 429 with Retry-After, cancellation is prompt, and a seeded figure4 job's
// NDJSON body is byte-identical whatever the job's internal worker count.
package integration

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

// startServer brings a server up on an ephemeral port and tears it down
// with the test.
func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

func postNDJSON(t *testing.T, base, body string) (status int, contentType string, lines [][]byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), lines
}

// TestServerConcurrentRoadmapJobs slams the service with 64 concurrent
// small roadmap submissions and requires every one to come back 200 with
// well-formed NDJSON ending in a summary line.
func TestServerConcurrentRoadmapJobs(t *testing.T) {
	s := startServer(t, server.Config{
		Workers:    4,
		QueueDepth: 128, // every submission must be admitted
		JobTimeout: time.Minute,
	})
	base := "http://" + s.Addr()

	const jobs = 64
	body := `{"type":"roadmap","roadmap":{"first_year":2002,"last_year":2003,"platter_sizes":[2.6]}}`
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, raw)
				return
			}
			if !bytes.Contains(raw, []byte(`"kind":"summary"`)) {
				errs <- fmt.Errorf("no summary line in %q", raw)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServerBackpressure429 saturates a worker with a slow job, fills the
// depth-1 queue, and requires the next submission to bounce with 429 and a
// Retry-After hint.
func TestServerBackpressure429(t *testing.T) {
	s := startServer(t, server.Config{
		Workers:     1,
		QueueDepth:  1,
		JobTimeout:  time.Minute,
		MaxRequests: 20_000_000,
	})
	base := "http://" + s.Addr()

	// Big enough to hold the only worker for seconds even on a fast
	// machine; the cancellation check below keeps the test from actually
	// paying that time.
	slow := `{"type":"dtm","dtm":{"policy":"envelope","requests":20000000}}`
	submit := func(body string) *http.Response {
		resp, err := http.Post(base+"/v1/jobs?async=1", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	running := submit(slow)
	defer running.Body.Close()
	var info server.Info
	if err := json.NewDecoder(running.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	// Wait until the first job holds the only worker, so the next
	// submission must sit in the queue rather than start.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + info.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur server.Info
		if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if cur.Status == server.StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", cur.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	queued := submit(slow)
	var queuedInfo server.Info
	if err := json.NewDecoder(queued.Body).Decode(&queuedInfo); err != nil {
		t.Fatal(err)
	}
	queued.Body.Close()
	if queued.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d, want 202", queued.StatusCode)
	}
	// Cancel the queued job up front so it never occupies the worker once
	// the running one is cancelled below.
	cancelReq, err := http.NewRequest("DELETE", base+"/v1/jobs/"+queuedInfo.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(cancelReq); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	bounced := submit(slow)
	defer bounced.Body.Close()
	if bounced.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit = %d, want 429", bounced.StatusCode)
	}
	if bounced.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Cancellation must be prompt: the running job dies at its next
	// request admission, not after finishing 100k requests.
	req, err := http.NewRequest("DELETE", base+"/v1/jobs/"+info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + info.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur server.Info
		if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if cur.Status == server.StatusCancelled {
			break
		}
		if cur.Status == server.StatusDone {
			t.Fatal("job finished before the cancel landed; raise requests")
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancel not prompt: still %q after %v", cur.Status, time.Since(start))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerFigure4ByteIdentity is the determinism contract end to end: a
// seeded figure4 job submitted with workers:1 and workers:4 must return
// byte-identical NDJSON bodies.
func TestServerFigure4ByteIdentity(t *testing.T) {
	s := startServer(t, server.Config{
		Workers:    2,
		QueueDepth: 8,
		JobTimeout: time.Minute,
	})
	base := "http://" + s.Addr()

	run := func(workers int) []byte {
		body := fmt.Sprintf(`{"type":"figure4","workers":%d,"figure4":{"workload":"TPC-C","requests":1500}}`, workers)
		status, ct, lines := postNDJSON(t, base, body)
		if status != http.StatusOK {
			t.Fatalf("workers=%d: status %d", workers, status)
		}
		if ct != "application/x-ndjson" {
			t.Fatalf("workers=%d: Content-Type %q", workers, ct)
		}
		// 4 step lines + 1 workload summary.
		if len(lines) != 5 {
			t.Fatalf("workers=%d: %d lines, want 5", workers, len(lines))
		}
		return bytes.Join(lines, []byte("\n"))
	}
	seq := run(1)
	par := run(4)
	if !bytes.Equal(seq, par) {
		t.Errorf("figure4 NDJSON differs between workers=1 and workers=4:\n--- w1 ---\n%s\n--- w4 ---\n%s", seq, par)
	}
}

// TestServerResultReplay runs a job async, waits for completion, and
// checks the replayed result matches a fresh identical submission.
func TestServerResultReplay(t *testing.T) {
	s := startServer(t, server.Config{
		Workers:    2,
		QueueDepth: 8,
		JobTimeout: time.Minute,
	})
	base := "http://" + s.Addr()
	body := `{"type":"roadmap","roadmap":{"first_year":2002,"last_year":2004,"platter_sizes":[2.1]}}`

	resp, err := http.Post(base+"/v1/jobs?async=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var info server.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit = %d, want 202", resp.StatusCode)
	}

	// The result endpoint follows the live run to completion.
	res, err := http.Get(base + "/v1/jobs/" + info.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	followed, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	status, _, lines := postNDJSON(t, base, body)
	if status != http.StatusOK {
		t.Fatalf("fresh submit = %d", status)
	}
	fresh := append(bytes.Join(lines, []byte("\n")), '\n')
	if !bytes.Equal(bytes.TrimRight(followed, "\n"), bytes.TrimRight(fresh, "\n")) {
		t.Errorf("replayed result differs from fresh run:\n--- replay ---\n%s\n--- fresh ---\n%s", followed, fresh)
	}
}
