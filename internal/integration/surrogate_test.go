// End-to-end surrogate serving: a real simd server over HTTP. Pins the
// PR's acceptance contract for the fast path — transparent fallbacks are
// provably the exact engine (byte-identical to forced-exact answers,
// before and after a model is installed), and the fallback counters are
// observable on /metrics.
package integration

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

const surrogateTrainBody = `{"type":"surrogate","surrogate":{"mode":"train","train":{
	"years":[2002,2006],"rpms":[10000,15000,20000],
	"workloads":["TPC-C"],"requests":200,"folds":2,"probes":2}}}`

// Three probes: two inside the trained hull, one outside it (year 2030).
const surrogateQueries = `{"year":2003,"rpm":12500,"platters":1,"form_factor":"3.5-inch","workload":"TPC-C"},
{"year":2006,"rpm":15000,"platters":1,"form_factor":"3.5-inch","workload":"TPC-C"},
{"year":2030,"rpm":12500,"platters":1,"form_factor":"3.5-inch","workload":"TPC-C"}`

func surrogateQueryBody(exact bool) string {
	flag := ""
	if exact {
		flag = `"exact":true,`
	}
	return `{"type":"surrogate","surrogate":{"mode":"query",` + flag + `"queries":[` + surrogateQueries + `]}}`
}

// scrapeCounter pulls one counter value (optionally labelled) off /metrics.
func scrapeCounter(t *testing.T, base, name, labels string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name+labels) + ` (\d+)$`)
	m := re.FindSubmatch(raw)
	if m == nil {
		t.Fatalf("series %s%s not found on /metrics:\n%s", name, labels, raw)
	}
	v, err := strconv.ParseInt(string(m[1]), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestSurrogateFallbackIsExactEndToEnd: every transparent fallback answer
// is byte-identical to the forced-exact answer for the same query — with
// no model installed (all three queries fall back) and with a trained
// model (only the out-of-hull query falls back, and its line matches the
// forced-exact line exactly). The fallback counters are scraped off
// /metrics at each stage.
func TestSurrogateFallbackIsExactEndToEnd(t *testing.T) {
	s := startServer(t, server.Config{
		Workers:    2,
		QueueDepth: 8,
		JobTimeout: time.Minute,
		Registry:   obs.NewRegistry(),
	})
	base := "http://" + s.Addr()

	post := func(body string) [][]byte {
		status, _, lines := postNDJSON(t, base, body)
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, bytes.Join(lines, []byte("\n")))
		}
		return lines
	}

	// Stage 1: no model. The transparent path and the forced-exact path
	// must produce byte-identical bodies.
	viaFallback := post(surrogateQueryBody(false))
	viaExact := post(surrogateQueryBody(true))
	if !bytes.Equal(bytes.Join(viaFallback, nil), bytes.Join(viaExact, nil)) {
		t.Fatalf("no-model fallback differs from forced exact:\n%s\nvs\n%s",
			bytes.Join(viaFallback, []byte("\n")), bytes.Join(viaExact, []byte("\n")))
	}
	if got := scrapeCounter(t, base, "surrogate_fallbacks_by_reason_total", `{reason="no_model"}`); got != 3 {
		t.Errorf("no_model fallbacks = %d, want 3", got)
	}

	// Stage 2: train. The model installs and serves in-hull queries.
	trainLines := post(surrogateTrainBody)
	if !bytes.Contains(trainLines[len(trainLines)-1], []byte(`"kind":"summary"`)) {
		t.Fatalf("training did not close with a summary: %s", trainLines[len(trainLines)-1])
	}
	if got := scrapeCounter(t, base, "surrogate_trainings_total", ""); got != 1 {
		t.Errorf("trainings = %d, want 1", got)
	}

	// Stage 3: model installed. In-hull queries take the fast path; the
	// out-of-hull one still falls back — and its answer line must be
	// byte-identical to the forced-exact line for the same query.
	mixed := post(surrogateQueryBody(false))
	forced := post(surrogateQueryBody(true))
	if len(mixed) != 4 || len(forced) != 4 {
		t.Fatalf("got %d and %d lines, want 4 each", len(mixed), len(forced))
	}
	for i := 0; i < 2; i++ {
		if !bytes.Contains(mixed[i], []byte(`"source":"surrogate"`)) {
			t.Errorf("in-hull query %d not served by the surrogate: %s", i, mixed[i])
		}
	}
	if !bytes.Contains(mixed[2], []byte(`"source":"exact"`)) {
		t.Fatalf("out-of-hull query not falling back: %s", mixed[2])
	}
	if !bytes.Equal(mixed[2], forced[2]) {
		t.Errorf("out-of-hull fallback differs from forced exact:\n%s\nvs\n%s", mixed[2], forced[2])
	}

	if got := scrapeCounter(t, base, "surrogate_hits_total", ""); got != 2 {
		t.Errorf("hits = %d, want 2", got)
	}
	if got := scrapeCounter(t, base, "surrogate_fallbacks_by_reason_total", `{reason="out_of_hull"}`); got != 1 {
		t.Errorf("out_of_hull fallbacks = %d, want 1", got)
	}
	// 3 no-model + 3 forced (stage 1) + 1 out-of-hull + 3 forced (stage 3).
	if got := scrapeCounter(t, base, "surrogate_fallbacks_total", ""); got != 10 {
		t.Errorf("total fallbacks = %d, want 10", got)
	}
	if got := scrapeCounter(t, base, "surrogate_queries_total", ""); got != 12 {
		t.Errorf("total queries = %d, want 12", got)
	}
}

// TestSurrogateServingByteIdentity: the same query batch answered twice by
// the same trained model returns byte-identical NDJSON — and a retrained
// identical model leaves answers unchanged (the artifact is a pure
// function of the spec, so serving is too).
func TestSurrogateServingByteIdentity(t *testing.T) {
	s := startServer(t, server.Config{
		Workers:    2,
		QueueDepth: 8,
		JobTimeout: time.Minute,
	})
	base := "http://" + s.Addr()

	post := func(body string) []byte {
		status, _, lines := postNDJSON(t, base, body)
		if status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
		return bytes.Join(lines, []byte("\n"))
	}

	first := post(surrogateTrainBody)
	a := post(surrogateQueryBody(false))
	second := post(surrogateTrainBody)
	b := post(surrogateQueryBody(false))
	if !bytes.Equal(first, second) {
		t.Errorf("retraining the same spec produced a different stream:\n%s\nvs\n%s", first, second)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("same model, same queries, different answers:\n%s\nvs\n%s", a, b)
	}
	var sum struct {
		Checksum string `json:"checksum"`
	}
	last := first[bytes.LastIndexByte(first, '\n')+1:]
	if err := json.Unmarshal(last, &sum); err != nil || len(sum.Checksum) != 8 {
		t.Errorf("train summary checksum %q (err %v), want 8 hex digits", sum.Checksum, err)
	}
}
