// Tournament determinism at the integration layer: the full policy bracket
// must digest identically at any worker fan-out, and the predictive
// controller's completion stream must digest identically whether it is run
// in batch or streamed request by request. Run under -race this is CI's
// tournament-determinism gate — it exercises the windowed cell fan-out, the
// in-order merge, and the controller's shared thermal caches concurrently.
package integration

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"
	"time"

	"repro/internal/capacity"
	"repro/internal/disksim"
	"repro/internal/dtm"
	"repro/internal/scaling"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/tournament"
)

// tournamentDigest runs the bracket and folds every cell line plus the
// summary, JSON-encoded, into one FNV-64a digest — the same bytes the NDJSON
// surfaces (CLI and simd job) serve.
func tournamentDigest(t *testing.T, workers int) uint64 {
	t.Helper()
	h := fnv.New64a()
	enc := json.NewEncoder(h)
	cfg := tournament.Config{
		Workloads: []string{"TPC-C", "Search-Engine", "TPC-H"},
		Requests:  800,
		Seed:      13,
		Workers:   workers,
	}
	sum, err := tournament.Run(context.Background(), cfg, func(c tournament.Cell) error {
		return enc.Encode(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(sum); err != nil {
		t.Fatal(err)
	}
	return h.Sum64()
}

// TestTournamentDigestWorkerInvariance: one goroutine and an 8-way fan-out
// must produce the same digest — cells are merged in enumeration order and
// every cell value is spec-determined.
func TestTournamentDigestWorkerInvariance(t *testing.T) {
	seq := tournamentDigest(t, 1)
	par := tournamentDigest(t, 8)
	if seq != par {
		t.Fatalf("tournament digest differs across worker counts: %016x vs %016x", seq, par)
	}
}

// predictiveStreamDigest builds the 2005 reference drive, streams a seeded
// workload through the predictive controller, and digests every completion
// plus the result summary.
func predictiveStreamDigest(t *testing.T, stream bool) uint64 {
	t.Helper()
	bpi, tpi := scaling.DefaultTrend().Densities(2005)
	layout, err := capacity.New(capacity.Config{
		Geometry: thermal.ReferenceDrive, BPI: bpi, TPI: tpi, Zones: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := disksim.New(disksim.Config{Layout: layout, RPM: 24534})
	if err != nil {
		t.Fatal(err)
	}
	th, err := thermal.New(thermal.ReferenceDrive)
	if err != nil {
		t.Fatal(err)
	}
	warm := th.SteadyState(thermal.WorstCase(24534))
	warm.Air = thermal.Envelope - 4

	rng := rand.New(rand.NewSource(29))
	total := disk.Layout().TotalSectors()
	reqs := make([]disksim.Request, 5000)
	now := 0.0
	for i := range reqs {
		now += rng.ExpFloat64() / 150
		reqs[i] = disksim.Request{
			ID:      int64(i),
			Arrival: time.Duration(now * float64(time.Second)),
			LBN:     rng.Int63n(total - 64),
			Sectors: 8,
			Write:   rng.Float64() < 0.3,
		}
	}

	ctl := dtm.PredictiveController{Disk: disk, Thermal: th, Mode: dtm.VCMOnly, Initial: &warm}
	h := fnv.New64a()
	var res dtm.PredictiveResult
	var completions []disksim.Completion
	if stream {
		var collect sim.Appender[disksim.Completion]
		res, err = ctl.RunStream(sim.NewEngine(), sim.FromSlice(reqs), &collect)
		completions = collect.Items
	} else {
		res, err = ctl.Run(reqs)
		completions = res.Completions
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range completions {
		fmt.Fprintf(h, "%d %d %d %d\n", c.Request.ID, int64(c.Start), int64(c.Finish), c.Retries)
	}
	fmt.Fprintf(h, "max %v over %d early %d reactive %d flaps %d\n",
		res.MaxAirTemp, int64(res.TimeOverThreshold), res.EarlyThrottles,
		res.ReactiveThrottles, res.Flaps)
	return h.Sum64()
}

// TestPredictiveStreamDigestMatchesBatch: the streaming controller is the
// batch controller — same completions, same thermal trajectory, same
// throttle decisions, one digest.
func TestPredictiveStreamDigestMatchesBatch(t *testing.T) {
	batch := predictiveStreamDigest(t, false)
	stream := predictiveStreamDigest(t, true)
	if batch != stream {
		t.Fatalf("predictive digest differs batch vs stream: %016x vs %016x", batch, stream)
	}
}
