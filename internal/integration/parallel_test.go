// Parallel-vs-sequential equivalence: the sweep engine must reproduce the
// sequential paths bit for bit. Every grid this PR parallelised — the
// Figure 4 workload/RPM fan-out, the roadmap (size, year) grid, the design
// walk's candidate scans, the Monte Carlo batches, and the buffered
// experiment suite — is replayed at worker counts 1 and 4 and compared
// exactly. Run under -race this also exercises the concurrency of the
// shared trace slices and the thermal solve caches.
package integration

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/reliability"
	"repro/internal/scaling"
	"repro/internal/trace"
)

// TestFigure4ParallelMatchesSequential sweeps every seeded workload through
// the batch runner at 1 and 4 workers and requires identical results — the
// same means, the same CDF buckets, the same cache-hit fractions.
func TestFigure4ParallelMatchesSequential(t *testing.T) {
	for _, w := range trace.Workloads {
		w := w.WithRequests(3000)
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			seq, err := core.RunFigure4Workers(w, 1)
			if err != nil {
				t.Fatal(err)
			}
			par, err := core.RunFigure4Workers(w, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("parallel result differs:\nseq %+v\npar %+v", seq, par)
			}
		})
	}
}

// TestFigure4StreamParallelMatchesSequential pins the same contract on the
// streaming path (own engine and lazy trace per step).
func TestFigure4StreamParallelMatchesSequential(t *testing.T) {
	w := trace.Workloads[0].WithRequests(3000)
	steps := core.Figure4Steps(w.BaselineRPM)
	seq, err := core.RunFigure4StepsStream(w, steps, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.RunFigure4StepsStream(w, steps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel stream result differs:\nseq %+v\npar %+v", seq, par)
	}
}

// TestRoadmapParallelMatchesSequential compares the full (size, year) grid —
// including the steady solves that go through the thermal cache — across
// worker counts, for the envelope and the VCM-off variants.
func TestRoadmapParallelMatchesSequential(t *testing.T) {
	for _, cfg := range []scaling.Config{
		{},
		{Platters: 2},
		{AmbientDelta: -10, VCMOff: true},
	} {
		seqCfg, parCfg := cfg, cfg
		seqCfg.Workers, parCfg.Workers = 1, 4
		seq, err := scaling.Roadmap(seqCfg)
		if err != nil {
			t.Fatal(err)
		}
		par, err := scaling.Roadmap(parCfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("config %+v: parallel roadmap differs from sequential", cfg)
		}
	}
}

// TestDesignWalkParallelMatchesSequential: the walk's candidate scans must
// pick the same design at any worker count (ties and "first meeting size"
// resolve in input order).
func TestDesignWalkParallelMatchesSequential(t *testing.T) {
	seq, err := scaling.DesignWalk(scaling.WalkConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := scaling.DesignWalk(scaling.WalkConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel design walk differs:\nseq %+v\npar %+v", seq, par)
	}
}

// TestRunAllParallelMatchesSequential renders the full experiment suite at 1
// and 4 workers and requires the output bytes to match exactly.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite render")
	}
	var seq, par bytes.Buffer
	if err := core.RunAll(&seq, core.Options{Figure4Requests: 2000, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := core.RunAll(&par, core.Options{Figure4Requests: 2000, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Errorf("suite output differs between worker counts:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			seq.String(), par.String())
	}
}

// TestMonteCarloParallelMatchesSequential pins the reliability estimator's
// batch decomposition across worker counts and against the analytic form.
func TestMonteCarloParallelMatchesSequential(t *testing.T) {
	m := reliability.Default()
	window := 24 * 365 * time.Hour
	temp := reliability.ReferenceTemp + 10
	seq := m.MonteCarloGroupFailure(temp, 5, window, reliability.MCConfig{Trials: 60_000, Seed: 42, Workers: 1})
	par := m.MonteCarloGroupFailure(temp, 5, window, reliability.MCConfig{Trials: 60_000, Seed: 42, Workers: 4})
	if seq != par {
		t.Errorf("MC estimate differs: workers=1 %+v, workers=4 %+v", seq, par)
	}
}
