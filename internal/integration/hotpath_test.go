// Hot-path byte-identity cross-check: the zero-alloc streaming path (the
// reused-closure admission, slice-backed event heap, scratch sub-request
// buffer and per-disk timing tables) must reproduce the reference
// implementation bit for bit. Volume.SimulateBatch is that reference — an
// independent disk-by-disk join kept precisely so the optimized engine has
// something to be checked against — and the whole comparison is fanned out
// over the parallel pool at 1 and 8 workers (and run under -race in CI) to
// pin that the digest of every workload/fault-regime combination is
// identical at any worker count.
package integration

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/dtm"
	"repro/internal/parallel"
	"repro/internal/raid"
	"repro/internal/reliability"
	"repro/internal/sim"
	"repro/internal/trace"
)

// hotPathJob is one (workload, fault regime) cell of the cross-check grid.
type hotPathJob struct {
	workload trace.Params
	regime   string // "clean" or "thermal"
}

// armFaults wires identically-seeded thermal fault injectors to every
// member, per-disk seeds keyed by member index so both volumes of a
// comparison draw the same hazard sequence.
func armFaults(vol *raid.Volume) {
	for i, d := range vol.Disks() {
		inj := dtm.NewThermalFaults(dtm.OffTrackModel{}, reliability.Default(),
			dtm.BindSteady(52), int64(100+i))
		d.SetFaults(inj)
	}
}

// runHotPathJob replays the job's workload through the optimized streaming
// path and the reference batch path, requires identical completions, and
// returns an FNV-1a digest of the streamed output for cross-worker-count
// comparison.
func runHotPathJob(j hotPathJob) (uint64, error) {
	streamVol, err := j.workload.BuildVolume(j.workload.BaselineRPM)
	if err != nil {
		return 0, err
	}
	refVol, err := j.workload.BuildVolume(j.workload.BaselineRPM)
	if err != nil {
		return 0, err
	}
	if j.regime == "thermal" {
		armFaults(streamVol)
		armFaults(refVol)
	}
	reqs, err := j.workload.Generate(streamVol.Capacity())
	if err != nil {
		return 0, err
	}

	// Optimized path: the streaming engine directly (what Simulate, the
	// benchmarks and the service layer all run).
	var got []raid.Completion
	err = streamVol.RunStream(sim.NewEngine(), sim.FromSlice(reqs),
		sim.SinkFunc[raid.Completion](func(c raid.Completion) { got = append(got, c) }))
	if err != nil {
		return 0, err
	}
	// Reference path: the independent whole-trace implementation.
	want, err := refVol.SimulateBatch(reqs)
	if err != nil {
		return 0, err
	}
	if len(got) != len(want) {
		return 0, fmt.Errorf("%s/%s: stream served %d completions, reference %d",
			j.workload.Name, j.regime, len(got), len(want))
	}
	// The reference sorts by (arrival, ID); the stream serves in admission
	// order, which for these FCFS traces is the same order.
	for i := range got {
		if got[i] != want[i] {
			return 0, fmt.Errorf("%s/%s: completion %d differs:\nstream    %+v\nreference %+v",
				j.workload.Name, j.regime, i, got[i], want[i])
		}
	}
	h := fnv.New64a()
	for i := range got {
		fmt.Fprintf(h, "%+v\n", got[i])
	}
	return h.Sum64(), nil
}

// TestHotPathMatchesReferenceAcrossWorkers runs the full grid — all five
// workloads under both fault regimes — through the optimized and reference
// paths at 1 and 8 pool workers, and requires the per-cell digests to be
// identical between worker counts.
func TestHotPathMatchesReferenceAcrossWorkers(t *testing.T) {
	var jobs []hotPathJob
	for _, w := range trace.Workloads {
		w := w.WithRequests(2500)
		jobs = append(jobs, hotPathJob{workload: w, regime: "clean"})
		jobs = append(jobs, hotPathJob{workload: w, regime: "thermal"})
	}

	digestsAt := func(workers int) []uint64 {
		t.Helper()
		out, err := parallel.Map(workers, jobs, func(_ int, j hotPathJob) (uint64, error) {
			return runHotPathJob(j)
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	one := digestsAt(1)
	eight := digestsAt(8)
	for i := range jobs {
		if one[i] != eight[i] {
			t.Errorf("%s/%s: digest %016x at workers=1, %016x at workers=8",
				jobs[i].workload.Name, jobs[i].regime, one[i], eight[i])
		}
	}
}
