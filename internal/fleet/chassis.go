package fleet

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/disksim"
	"repro/internal/reliability"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/units"
)

// Per-drive DTM constants, matching the dtm controllers' discipline.
const (
	// guardBand below the envelope triggers a VCM-off throttle.
	guardBand units.Celsius = 0.05

	// resumeHysteresis below the envelope is where a throttle releases.
	resumeHysteresis units.Celsius = 0.5

	// violationReset below the envelope closes an open violation episode,
	// so one excursion counts once rather than per-request.
	violationReset units.Celsius = 0.25

	// coolLimit caps a single throttle pause; under a cooling failure the
	// local ambient can sit above the resume point, where an uncapped wait
	// would never return.
	coolLimit = 30 * time.Minute

	// requestSectors and writeFraction shape the synthetic streams, same
	// as dtm.SyntheticSource.
	requestSectors = 8
	writeFraction  = 0.3

	// cancelStride is how many completions pass between context checks.
	cancelStride = 256
)

// chassisResult is one shard's contribution to the fleet aggregates.
// Everything in it merges exactly or in fixed order, so the reduction is
// independent of which worker produced it when.
type chassisResult struct {
	rack  int
	index int

	requests       int64
	latency        stats.Running
	latencyBuckets *stats.BucketCounts
	tempBuckets    *stats.BucketCounts // per-drive max internal air
	exposure       *reliability.Exposure

	hottest        units.Celsius // max internal air across the chassis
	violations     int64         // envelope-violation episodes
	throttleEvents int64
	throttledTime  time.Duration
	migrations     int64
}

// fleetDrive is one slot's live state during a chassis simulation.
type fleetDrive struct {
	gen   *Generation
	disk  *disksim.Disk
	tr    *thermal.Transient
	clock time.Duration // thermal clock, tracks disk time

	base        units.Celsius // design ambient under normal cooling
	air         units.Celsius // last observed internal air
	maxAir      units.Celsius
	inViolation bool
}

// runChassis simulates one chassis end to end on its own engine: every
// slot's drive co-advances a thermal transient with its disk clock, a
// per-drive throttle guards the envelope, and (when enabled) the
// temperature-threshold migration policy moves streams between slots. All
// coupling stays inside the chassis, which is what makes the chassis the
// determinism shard: its result depends only on (cfg, its slots' streams).
func runChassis(ctx context.Context, cfg Config, env chassisEnv, streamOn []int, streams []streamSpec) (*chassisResult, error) {
	res := &chassisResult{
		rack:           env.rack,
		index:          env.index,
		latencyBuckets: stats.NewBucketCounts(LatencyEdges()),
		tempBuckets:    stats.NewBucketCounts(TempEdges()),
		exposure:       reliability.NewExposure(reliability.Default()),
	}

	n := len(env.gens)
	drives := make([]*fleetDrive, n)
	for s := 0; s < n; s++ {
		g := env.gens[s]
		disk, err := disksim.New(disksim.Config{Layout: g.Layout, RPM: g.RPM})
		if err != nil {
			return nil, fmt.Errorf("fleet: chassis %d slot %d: %w", env.index, s, err)
		}
		base := env.ambients[s]
		drives[s] = &fleetDrive{
			gen:    g,
			disk:   disk,
			tr:     g.Thermal.NewTransient(thermal.Uniform(base)),
			base:   base,
			air:    base,
			maxAir: base,
		}
	}

	failure := cfg.Scenario.CoolingFailure
	if !failure.affects(env.rack) {
		failure = nil
	}

	// ambientAt is the slot's local ambient on the sim clock: the static
	// design-point preheat plus the cooling-failure delta when active.
	ambientAt := func(d *fleetDrive, t time.Duration) units.Celsius {
		if failure.active(env.rack, t) {
			return d.base + failure.DeltaC
		}
		return d.base
	}

	// note observes a drive's internal air: max tracking, violation
	// episodes, and the last-seen temperature migration decisions read.
	note := func(d *fleetDrive) {
		air := d.tr.State().Air
		d.air = air
		if air > d.maxAir {
			d.maxAir = air
		}
		if air > res.hottest {
			res.hottest = air
		}
		switch {
		case air > thermal.Envelope && !d.inViolation:
			d.inViolation = true
			res.violations++
		case d.inViolation && air <= thermal.Envelope-violationReset:
			d.inViolation = false
		}
	}

	// advance integrates a drive's transient to the target time, splitting
	// the step at the cooling-failure boundaries so each segment sees its
	// own ambient, and charging the segment to the drive's thermal
	// exposure at the segment-end temperature.
	advance := func(d *fleetDrive, to time.Duration, duty float64) {
		for d.clock < to {
			end := to
			if failure != nil {
				switch {
				case d.clock < failure.At && failure.At < end:
					end = failure.At
				case d.clock < failure.At+failure.Duration && failure.At+failure.Duration < end:
					end = failure.At + failure.Duration
				}
			}
			seg := end - d.clock
			d.tr.Advance(thermal.Load{RPM: d.gen.RPM, VCMDuty: duty, Ambient: ambientAt(d, d.clock)}, seg)
			d.clock = end
			res.exposure.Add(d.tr.State().Air, seg)
		}
		note(d)
	}

	eng := sim.NewEngine()
	var failed error
	var served int64

	serve := func(e *sim.Engine, d *fleetDrive, r disksim.Request) bool {
		served++
		if served%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				failed = err
				e.Fail(err)
				return false
			}
		}
		start := r.Arrival
		if rt := d.disk.ReadyTime(); rt > start {
			start = rt
		}
		advance(d, start, 0)

		if d.tr.State().Air >= thermal.Envelope-guardBand {
			res.throttleEvents++
			cool := thermal.Load{RPM: d.gen.RPM, VCMDuty: 0, Ambient: ambientAt(d, d.clock)}
			pause, _ := d.tr.AdvanceUntil(cool, coolLimit,
				func(s thermal.State) bool { return s.Air <= thermal.Envelope-resumeHysteresis })
			res.exposure.Add(d.tr.State().Air, pause)
			d.clock += pause
			res.throttledTime += pause
			note(d)
			d.disk.Delay(d.clock)
		}

		comp, err := d.disk.Serve(r)
		if err != nil {
			failed = err
			e.Fail(err)
			return false
		}
		advance(d, comp.Finish, 1)
		res.requests++
		ms := float64(comp.Response()) / float64(time.Millisecond)
		res.latency.AddMillis(ms)
		res.latencyBuckets.AddMillis(ms)
		if cfg.Metrics != nil {
			cfg.Metrics.observe(d.tr.State().Air)
		}
		return true
	}

	// pickCooler returns the migration target for a stream leaving slot
	// from: the coolest other slot (by last observed air, ties to the
	// lowest index) that sits below the hysteresis band, or -1.
	pickCooler := func(from int) int {
		limit := cfg.Migration.ThresholdC - cfg.Migration.HysteresisC
		best, bestAir := -1, units.Celsius(0)
		for s, d := range drives {
			if s == from || d.air > limit {
				continue
			}
			if best < 0 || d.air < bestAir {
				best, bestAir = s, d.air
			}
		}
		return best
	}

	// One admit loop per stream bound to this chassis. The stream keeps
	// its own rng (keyed by global stream id) and its current slot; a
	// migration rebinds the remaining requests to the cooler slot.
	for s := 0; s < n; s++ {
		spec := streams[streamOn[env.slot0+s]]
		rng := rand.New(rand.NewSource(mix(cfg.Workload.Seed, tagArrival, int64(spec.id))))
		slot := s
		remaining := cfg.Workload.RequestsPerDrive
		now := 0.0
		nextID := int64(spec.id) * int64(cfg.Workload.RequestsPerDrive)

		var admit func(e *sim.Engine)
		admit = func(e *sim.Engine) {
			if remaining == 0 {
				return
			}
			remaining--
			now += rng.ExpFloat64() / spec.rate
			frac := rng.Float64()
			write := rng.Float64() < writeFraction
			arrival := time.Duration(now * float64(time.Second))
			id := nextID
			nextID++
			e.At(arrival, func(e *sim.Engine) {
				d := drives[slot]
				lbn := int64(frac * float64(d.gen.TotalSectors-requestSectors))
				ok := serve(e, d, disksim.Request{
					ID:      id,
					Arrival: arrival,
					LBN:     lbn,
					Sectors: requestSectors,
					Write:   write,
				})
				if !ok {
					return
				}
				if cfg.Migration.ThresholdC > 0 && d.air >= cfg.Migration.ThresholdC {
					if to := pickCooler(slot); to >= 0 {
						slot = to
						res.migrations++
					}
				}
				admit(e)
			})
		}
		admit(eng)
	}

	if err := eng.Run(); err != nil {
		return nil, err
	}
	if failed != nil {
		return nil, failed
	}

	// Drain every drive's transient to the chassis' end of time so idle
	// tails (and the cooling-failure window, if it outlives the last
	// request) are scored, then fold the per-drive maxima into the
	// fleet's temperature distribution.
	end := eng.Now()
	if failure != nil {
		if fe := failure.At + failure.Duration; fe > end {
			end = fe
		}
	}
	for _, d := range drives {
		advance(d, end, 0)
		res.tempBuckets.AddMillis(float64(d.maxAir))
	}
	return res, nil
}
