package fleet

import (
	"context"
	"fmt"
	"time"

	"repro/internal/parallel"
	"repro/internal/raid"
	"repro/internal/reliability"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/units"
)

// racksPerWindow bounds how many racks' chassis are in flight at once:
// large enough to keep the shard pool busy, small enough that a
// 100k-drive fleet never holds more than a few racks of live disk state.
const racksPerWindow = 4

// RackSummary is the streaming unit of fleet output: one rack's merged
// aggregates, emitted as soon as the rack's chassis shards complete (in
// rack order, regardless of worker count).
type RackSummary struct {
	Rack    int `json:"rack"`
	Chassis int `json:"chassis"`
	Drives  int `json:"drives"`

	Requests      int64   `json:"requests"`
	MeanLatencyMS float64 `json:"mean_latency_ms"`
	MaxLatencyMS  float64 `json:"max_latency_ms"`

	HottestAirC    float64 `json:"hottest_air_c"`
	EffectiveTempC float64 `json:"effective_temp_c"`
	EffectiveAFR   float64 `json:"effective_afr"`

	EnvelopeViolations int64   `json:"envelope_violations"`
	ThrottleEvents     int64   `json:"throttle_events"`
	ThrottledMS        float64 `json:"throttled_ms"`
	Migrations         int64   `json:"migrations"`

	// MTTDLHours and RebuildRisk score each chassis as a
	// single-fault-tolerant group of the rack's drives at the rack's
	// effective temperature, over the configured rebuild window.
	MTTDLHours  float64 `json:"mttdl_hours"`
	RebuildRisk float64 `json:"rebuild_risk"`
}

// Summary is the fleet-wide reduction.
type Summary struct {
	Racks   int `json:"racks"`
	Chassis int `json:"chassis"`
	Drives  int `json:"drives"`

	Requests      int64   `json:"requests"`
	MeanLatencyMS float64 `json:"mean_latency_ms"`
	P95LatencyMS  float64 `json:"p95_latency_ms"`
	P99LatencyMS  float64 `json:"p99_latency_ms"`
	MaxLatencyMS  float64 `json:"max_latency_ms"`

	HottestAirC float64 `json:"hottest_air_c"`

	// P50/P95/P99DriveMaxC are quantiles of the per-drive maximum
	// internal air temperature — the fleet's temperature distribution.
	P50DriveMaxC float64 `json:"p50_drive_max_c"`
	P95DriveMaxC float64 `json:"p95_drive_max_c"`
	P99DriveMaxC float64 `json:"p99_drive_max_c"`

	EnvelopeViolations int64   `json:"envelope_violations"`
	ThrottleEvents     int64   `json:"throttle_events"`
	ThrottledMS        float64 `json:"throttled_ms"`
	Migrations         int64   `json:"migrations"`

	EffectiveTempC float64 `json:"effective_temp_c"`
	EffectiveAFR   float64 `json:"effective_afr"`

	// WorstMTTDLHours and WorstRebuildRisk are the weakest rack's scores.
	WorstMTTDLHours  float64 `json:"worst_mttdl_hours"`
	WorstRebuildRisk float64 `json:"worst_rebuild_risk"`
}

// Sink receives each rack's summary as it completes.
type Sink func(RackSummary) error

// Run simulates the fleet, streaming rack summaries to sink (which may be
// nil) and returning the fleet-wide reduction. Chassis shards fan out over
// internal/parallel in rack windows; merges always happen in topology
// order, so the returned Summary and the sink's byte stream are identical
// at every worker count. Memory stays flat in fleet size: only the
// in-flight window's disk state is live, everything else is O(1)
// accumulators.
func Run(ctx context.Context, cfg Config, sink Sink) (Summary, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Summary{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	gens, err := generations(cfg.GenYears)
	if err != nil {
		return Summary{}, err
	}
	t := cfg.Topology
	envs := buildEnvs(cfg, gens)
	streams := buildStreams(cfg.Workload, t.Drives())
	streamOn := place(cfg.Placement, streams, designAmbients(envs, t.Drives()))

	model := reliability.Default()
	sum := Summary{Racks: t.Racks, Chassis: t.Chassis(), Drives: t.Drives()}
	var latency stats.Running
	latencyBuckets := stats.NewBucketCounts(LatencyEdges())
	tempBuckets := stats.NewBucketCounts(TempEdges())
	exposure := reliability.NewExposure(model)

	cpr := t.ChassisPerRack
	for w0 := 0; w0 < t.Racks; w0 += racksPerWindow {
		w1 := w0 + racksPerWindow
		if w1 > t.Racks {
			w1 = t.Racks
		}
		window := envs[w0*cpr : w1*cpr]
		results, err := parallel.MapCtx(ctx, cfg.Workers, window, func(_ int, env chassisEnv) (*chassisResult, error) {
			return runChassis(ctx, cfg, env, streamOn, streams)
		})
		if err != nil {
			return Summary{}, err
		}

		for rack := w0; rack < w1; rack++ {
			shards := results[(rack-w0)*cpr : (rack-w0+1)*cpr]
			rackExp := reliability.NewExposure(model)
			rs := RackSummary{Rack: rack, Chassis: cpr, Drives: cpr * t.SlotsPerChassis}
			var rackLat stats.Running
			for _, cr := range shards {
				rs.Requests += cr.requests
				rackLat.Merge(&cr.latency)
				rackExp.Merge(cr.exposure)
				if float64(cr.hottest) > rs.HottestAirC {
					rs.HottestAirC = float64(cr.hottest)
				}
				rs.EnvelopeViolations += cr.violations
				rs.ThrottleEvents += cr.throttleEvents
				rs.ThrottledMS += float64(cr.throttledTime) / float64(time.Millisecond)
				rs.Migrations += cr.migrations

				if err := latencyBuckets.Merge(cr.latencyBuckets); err != nil {
					return Summary{}, fmt.Errorf("fleet: rack %d: %w", rack, err)
				}
				if err := tempBuckets.Merge(cr.tempBuckets); err != nil {
					return Summary{}, fmt.Errorf("fleet: rack %d: %w", rack, err)
				}
			}
			rs.MeanLatencyMS = rackLat.Mean()
			rs.MaxLatencyMS = rackLat.Max()
			effT := rackExp.EffectiveTemperature()
			rs.EffectiveTempC = float64(effT)
			rs.EffectiveAFR = rackExp.EffectiveAFR()
			rs.MTTDLHours = raid.MTTDL(model, effT, t.SlotsPerChassis, cfg.RebuildWindow).Hours()
			rs.RebuildRisk = raid.RebuildRisk(model, effT, t.SlotsPerChassis-1, cfg.RebuildWindow)

			latency.Merge(&rackLat)
			exposure.Merge(rackExp)
			if rs.HottestAirC > sum.HottestAirC {
				sum.HottestAirC = rs.HottestAirC
			}
			sum.Requests += rs.Requests
			sum.EnvelopeViolations += rs.EnvelopeViolations
			sum.ThrottleEvents += rs.ThrottleEvents
			sum.ThrottledMS += rs.ThrottledMS
			sum.Migrations += rs.Migrations
			if sum.WorstMTTDLHours == 0 || rs.MTTDLHours < sum.WorstMTTDLHours {
				sum.WorstMTTDLHours = rs.MTTDLHours
			}
			if rs.RebuildRisk > sum.WorstRebuildRisk {
				sum.WorstRebuildRisk = rs.RebuildRisk
			}

			cfg.Metrics.rackDone(rs)
			if sink != nil {
				if err := sink(rs); err != nil {
					return Summary{}, err
				}
			}
		}
	}

	sum.MeanLatencyMS = latency.Mean()
	sum.MaxLatencyMS = latency.Max()
	sum.P95LatencyMS = latencyBuckets.Quantile(0.95)
	sum.P99LatencyMS = latencyBuckets.Quantile(0.99)
	sum.P50DriveMaxC = tempBuckets.Quantile(0.50)
	sum.P95DriveMaxC = tempBuckets.Quantile(0.95)
	sum.P99DriveMaxC = tempBuckets.Quantile(0.99)
	sum.EffectiveTempC = float64(exposure.EffectiveTemperature())
	sum.EffectiveAFR = exposure.EffectiveAFR()
	return sum, nil
}

// Preview solves the fleet's static thermal picture without running any
// workload: every drive's design-point ambient and steady internal air.
// This is the array.Evaluate generalisation to the full topology, used by
// the examples and for placement inspection.
type PreviewDrive struct {
	Rack, Chassis, Slot int
	Year                int
	Ambient             units.Celsius
	Air                 units.Celsius
	WithinEnvelope      bool
}

// PreviewFleet computes the static per-drive picture in topology order.
func PreviewFleet(cfg Config) ([]PreviewDrive, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gens, err := generations(cfg.GenYears)
	if err != nil {
		return nil, err
	}
	envs := buildEnvs(cfg, gens)
	out := make([]PreviewDrive, 0, cfg.Topology.Drives())
	for _, env := range envs {
		for s, g := range env.gens {
			st := g.Thermal.SteadyState(thermal.Load{RPM: g.RPM, VCMDuty: 1, Ambient: env.ambients[s]})
			out = append(out, PreviewDrive{
				Rack:           env.rack,
				Chassis:        env.pos,
				Slot:           s,
				Year:           g.Year,
				Ambient:        env.ambients[s],
				Air:            st.Air,
				WithinEnvelope: st.Air <= thermal.Envelope,
			})
		}
	}
	return out, nil
}
