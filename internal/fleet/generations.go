package fleet

import (
	"fmt"

	"repro/internal/capacity"
	"repro/internal/geometry"
	"repro/internal/scaling"
	"repro/internal/thermal"
	"repro/internal/units"
)

// genZones matches the DTM runners' zone count so fleet drives service
// requests over the same layout resolution.
const genZones = 50

// Generation is one drive model drawn from the scaling roadmap engine: the
// year's projected densities on the reference 2.6" single-platter
// mechanism, spinning at that year's thermal-envelope speed. Fleets mix
// generations round-robin across slots, the way real datacenters
// accumulate hardware over procurement cycles.
type Generation struct {
	Year int

	Geom    geometry.Drive
	Layout  *capacity.Layout
	Thermal *thermal.Model

	// RPM is the envelope speed — the fastest spin the year's drive
	// sustains inside the paper's 45.22 C envelope at the default ambient.
	RPM units.RPM

	// TotalSectors is the layout's addressable size; streams address
	// drives by capacity fraction so a migrated stream stays in range on
	// any generation.
	TotalSectors int64

	// Dissipation is the design-point (always-seeking, full-duty) heat
	// output in the airstream. The coupling uses the design point rather
	// than instantaneous duty so slot ambients are assignment-independent
	// — which is what makes placement computable up front and shards
	// independent.
	Dissipation units.Watts
}

// generations materialises the configured years, deduplicating repeats so
// a thousand-slot fleet over four years builds four layouts. The returned
// slice is positional: slot s (globally indexed) runs gens[s%len(gens)].
// Layouts and thermal models are safe for concurrent shards to share.
func generations(years []int) ([]*Generation, error) {
	cache := make(map[int]*Generation, len(years))
	out := make([]*Generation, len(years))
	for i, y := range years {
		if g := cache[y]; g != nil {
			out[i] = g
			continue
		}
		pts, err := scaling.Roadmap(scaling.Config{
			FirstYear:    y,
			LastYear:     y,
			PlatterSizes: []units.Inches{2.6},
			Platters:     1,
			Workers:      1,
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: generation %d: %w", y, err)
		}
		p := pts[0]
		geom := geometry.Drive{PlatterDiameter: p.Size, Platters: p.Platters}
		layout, err := capacity.New(capacity.Config{
			Geometry: geom,
			BPI:      p.BPI,
			TPI:      p.TPI,
			Zones:    genZones,
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: generation %d: %w", y, err)
		}
		th, err := thermal.New(geom)
		if err != nil {
			return nil, fmt.Errorf("fleet: generation %d: %w", y, err)
		}
		diss := thermal.ViscousDissipation(p.MaxRPM, geom.PlatterDiameter, geom.Platters) +
			thermal.BearingLoss(p.MaxRPM, geom.PlatterDiameter) +
			thermal.VCMPower(geom.PlatterDiameter)
		g := &Generation{
			Year:         y,
			Geom:         geom,
			Layout:       layout,
			Thermal:      th,
			RPM:          p.MaxRPM,
			TotalSectors: layout.TotalSectors(),
			Dissipation:  diss,
		}
		cache[y] = g
		out[i] = g
	}
	return out, nil
}
