package fleet

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestTenThousandDriveMemoryCeiling pins the streaming contract at the
// acceptance scale: 10,000 drives across 100 chassis must run with memory
// proportional to the in-flight rack window, not the fleet. Heap ceilings
// are an RSS proxy via the runtime's alloc accounting: the peak live heap
// during the run stays under a window-sized bound, and nothing
// fleet-sized survives the run.
func TestTenThousandDriveMemoryCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-drive run in -short mode")
	}
	cfg := Config{
		Topology: Topology{Racks: 10, ChassisPerRack: 10, SlotsPerChassis: 100},
		// A 100-slot cage needs airflow to match: at the 30 CFM default
		// the downstream slots would sit far above the envelope and every
		// request would throttle into the cool-limit.
		Scenario: Scenario{AirflowCFM: 300},
		Workload: Workload{RequestsPerDrive: 20, Seed: 3},
		Workers:  8,
	}

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)

	var peak atomic.Uint64
	stop := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		var m runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				runtime.ReadMemStats(&m)
				for {
					old := peak.Load()
					if m.HeapAlloc <= old || peak.CompareAndSwap(old, m.HeapAlloc) {
						break
					}
				}
			}
		}
	}()

	var racks int
	sum, err := Run(context.Background(), cfg, func(RackSummary) error { racks++; return nil })
	close(stop)
	<-sampled
	if err != nil {
		t.Fatal(err)
	}
	if sum.Drives != 10000 || racks != 10 {
		t.Fatalf("ran %d drives over %d racks", sum.Drives, racks)
	}
	if want := int64(10000 * cfg.Workload.RequestsPerDrive); sum.Requests != want {
		t.Fatalf("served %d requests, want %d", sum.Requests, want)
	}

	// Peak live heap: the window (4 racks = 4000 drives of disk state)
	// plus accumulators, nowhere near a fleet-sized retention. 128 MB is
	// ~4x headroom over what the window actually needs.
	if p := peak.Load(); p > m0.HeapAlloc && p-m0.HeapAlloc > 128<<20 {
		t.Fatalf("peak heap grew %d MB during the run", (p-m0.HeapAlloc)>>20)
	}

	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if m1.HeapAlloc > m0.HeapAlloc && m1.HeapAlloc-m0.HeapAlloc > 32<<20 {
		t.Fatalf("run retained %d MB", (m1.HeapAlloc-m0.HeapAlloc)>>20)
	}
}
