package fleet

import (
	"repro/internal/obs"
	"repro/internal/units"
)

// Metrics is the fleet layer's obs export surface. A nil *Metrics (the
// default) keeps every simulation hot path observation-free, matching the
// registry's disabled-means-free contract; results are identical either
// way. The hottest-air gauge uses Max, the only order-free gauge write, so
// snapshots stay deterministic with concurrent chassis shards.
type Metrics struct {
	Requests       *obs.Counter
	ThrottleEvents *obs.Counter
	Violations     *obs.Counter
	Migrations     *obs.Counter
	RacksDone      *obs.Counter
	HottestAirC    *obs.Gauge
}

// NewMetrics registers the fleet series on a registry (nil registry gives
// nil handles throughout — safe to use, free to ignore).
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Requests:       reg.Counter("fleet_requests_total"),
		ThrottleEvents: reg.Counter("fleet_throttle_events_total"),
		Violations:     reg.Counter("fleet_envelope_violations_total"),
		Migrations:     reg.Counter("fleet_migrations_total"),
		RacksDone:      reg.Counter("fleet_racks_completed_total"),
		HottestAirC:    reg.Gauge("fleet_hottest_air_celsius"),
	}
}

// observe records one completion's drive temperature (nil-safe).
func (m *Metrics) observe(air units.Celsius) {
	if m == nil {
		return
	}
	m.Requests.Inc()
	m.HottestAirC.Max(float64(air))
}

// rackDone folds a finished rack's episode counts into the counters
// (nil-safe). Counts are added at the rack barrier, not per event, so the
// totals are independent of shard interleaving.
func (m *Metrics) rackDone(rs RackSummary) {
	if m == nil {
		return
	}
	m.ThrottleEvents.Add(rs.ThrottleEvents)
	m.Violations.Add(rs.EnvelopeViolations)
	m.Migrations.Add(rs.Migrations)
	m.RacksDone.Inc()
}
