// Package fleet simulates drive fleets at datacenter scale: drives racked
// into chassis, chassis stacked into racks, racks in a machine room, with
// the inter-drive thermal coupling the paper's density argument is about —
// downstream slots breathe preheated air, upper chassis re-ingest part of
// the rack's exhaust, and a cooling failure turns the shared airstream
// into a shared accelerant.
//
// The layer composes the repository's existing engines instead of
// reimplementing them: drive generations come from the scaling roadmap,
// each drive is a disksim mechanical model co-advanced with its thermal
// transient on the internal/sim event engine (the dtm streaming
// discipline), shards fan out over internal/parallel, and fleet-wide
// aggregates stream through internal/stats accumulators so a 100k-drive
// run holds only the in-flight chassis plus O(1) summaries in memory.
//
// Determinism contract: every per-drive stream is seeded by position, each
// chassis simulates self-contained on its own engine, and shard results
// merge in topology order — so a seeded run's output is byte-identical at
// any worker count.
package fleet

import (
	"fmt"
	"time"

	"repro/internal/thermal"
	"repro/internal/units"
)

// Topology is the fleet's physical arrangement. Chassis index 0 in a rack
// is nearest the cold aisle; slot index 0 in a chassis is nearest the
// chassis inlet.
type Topology struct {
	Racks           int
	ChassisPerRack  int
	SlotsPerChassis int
}

// Drives returns the fleet's drive count.
func (t Topology) Drives() int { return t.Racks * t.ChassisPerRack * t.SlotsPerChassis }

// Chassis returns the fleet's chassis count.
func (t Topology) Chassis() int { return t.Racks * t.ChassisPerRack }

// Validate reports whether the topology is usable.
func (t Topology) Validate() error {
	switch {
	case t.Racks <= 0:
		return fmt.Errorf("fleet: %d racks", t.Racks)
	case t.ChassisPerRack <= 0:
		return fmt.Errorf("fleet: %d chassis per rack", t.ChassisPerRack)
	case t.SlotsPerChassis <= 0:
		return fmt.Errorf("fleet: %d slots per chassis", t.SlotsPerChassis)
	}
	return nil
}

// CoolingFailure is a scenario event: the affected racks' inlet air rises
// by DeltaC for the window [At, At+Duration) on the simulation clock — a
// CRAC unit dropping out, or a hot-aisle containment breach.
type CoolingFailure struct {
	// Rack selects the affected rack; negative means room-wide.
	Rack int

	At       time.Duration
	Duration time.Duration
	DeltaC   units.Celsius
}

// active reports whether the failure window covers t for the given rack.
func (f *CoolingFailure) active(rack int, t time.Duration) bool {
	if f == nil || (f.Rack >= 0 && f.Rack != rack) {
		return false
	}
	return t >= f.At && t < f.At+f.Duration
}

// affects reports whether the failure ever touches the rack.
func (f *CoolingFailure) affects(rack int) bool {
	return f != nil && f.Duration > 0 && (f.Rack < 0 || f.Rack == rack)
}

// Scenario sets the room-level thermal knobs.
type Scenario struct {
	// RoomInlet is the cold-aisle supply temperature (0 = the paper's
	// 28 C default ambient).
	RoomInlet units.Celsius

	// AirflowCFM is the per-chassis airflow (0 = 30 CFM).
	AirflowCFM float64

	// Recirculation in [0,1) is the fraction of a chassis' outlet
	// temperature rise re-ingested by the chassis above it in the rack —
	// the hot-aisle short-circuit. 0 gives every chassis cold-aisle air.
	Recirculation float64

	// CoolingFailure, when set, perturbs the affected racks' inlets.
	CoolingFailure *CoolingFailure
}

// Workload shapes the per-drive request streams: every drive gets one
// seeded stream; a HotFraction of streams run at HotRatePerS and the rest
// at ColdRatePerS, Poisson arrivals, 8-sector requests, 30% writes.
type Workload struct {
	// RequestsPerDrive is the stream length (0 = 40).
	RequestsPerDrive int

	// HotFraction in [0,1] is the share of streams that are hot (0 with
	// HotRatePerS also 0 = 0.25).
	HotFraction float64

	HotRatePerS  float64 // arrivals/s for hot streams (0 = 90)
	ColdRatePerS float64 // arrivals/s for cold streams (0 = 15)

	// Seed drives every stream's arrival/address sequence and the
	// hot/cold assignment. The same seed replays the identical fleet.
	Seed int64
}

// Placement selects the initial stream->drive assignment policy.
type Placement string

// Placement policies.
const (
	// PlaceStatic binds stream i to drive i: workload lands wherever the
	// topology put the drive.
	PlaceStatic Placement = "static"

	// PlaceCoolest greedily assigns the hottest streams to the drives
	// with the coolest design-point ambient (cold-aisle-adjacent slots),
	// the Energy-Aware placement idea.
	PlaceCoolest Placement = "coolest"
)

// Migration is the temperature-threshold migration policy: after a
// completion on a drive at or above ThresholdC, the stream moves to the
// coolest drive in the same chassis that last observed at most
// ThresholdC - HysteresisC. Zero ThresholdC disables migration. Migration
// stays within the chassis so shards remain independent.
type Migration struct {
	ThresholdC  units.Celsius
	HysteresisC units.Celsius // 0 = 2 C
}

// Config parameterises one fleet run.
type Config struct {
	Topology Topology
	Scenario Scenario
	Workload Workload

	// Placement is the initial stream assignment ("" = static).
	Placement Placement

	// Migration, when enabled, moves streams off hot drives mid-run.
	Migration Migration

	// GenYears are the drive generations, assigned round-robin across the
	// fleet's slots; each year's geometry, layout and envelope speed come
	// from the scaling roadmap engine (nil = 2002..2005).
	GenYears []int

	// Workers bounds the shard fan-out (0 = parallel.Default(),
	// 1 = sequential). Every worker count produces identical output.
	Workers int

	// RebuildWindow is the repair time assumed by the MTTDL and
	// rebuild-exposure scores (0 = 6h).
	RebuildWindow time.Duration

	// Metrics, when non-nil, receives live fleet counters via
	// internal/obs. Purely observational: results are identical with or
	// without it.
	Metrics *Metrics
}

func (c Config) withDefaults() Config {
	if c.Scenario.RoomInlet == 0 {
		c.Scenario.RoomInlet = thermal.DefaultAmbient
	}
	if c.Scenario.AirflowCFM == 0 {
		c.Scenario.AirflowCFM = 30
	}
	if c.Workload.RequestsPerDrive == 0 {
		c.Workload.RequestsPerDrive = 40
	}
	if c.Workload.HotFraction == 0 && c.Workload.HotRatePerS == 0 {
		c.Workload.HotFraction = 0.25
	}
	if c.Workload.HotRatePerS == 0 {
		c.Workload.HotRatePerS = 90
	}
	if c.Workload.ColdRatePerS == 0 {
		c.Workload.ColdRatePerS = 15
	}
	if c.Workload.Seed == 0 {
		c.Workload.Seed = 1
	}
	if c.Placement == "" {
		c.Placement = PlaceStatic
	}
	if c.Migration.ThresholdC > 0 && c.Migration.HysteresisC == 0 {
		c.Migration.HysteresisC = 2
	}
	if len(c.GenYears) == 0 {
		c.GenYears = []int{2002, 2003, 2004, 2005}
	}
	if c.RebuildWindow == 0 {
		c.RebuildWindow = 6 * time.Hour
	}
	return c
}

// Validate rejects configurations a run would choke on. Callers admitting
// untrusted specs (the serving layer) bound sizes before ever reaching
// this; Validate guards physics and shape.
func (c Config) Validate() error {
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	if c.Scenario.AirflowCFM <= 0 {
		return fmt.Errorf("fleet: non-positive airflow %.1f CFM", c.Scenario.AirflowCFM)
	}
	if r := c.Scenario.Recirculation; r < 0 || r >= 1 {
		return fmt.Errorf("fleet: recirculation %g outside [0,1)", r)
	}
	if f := c.Scenario.CoolingFailure; f != nil {
		switch {
		case f.Rack >= c.Topology.Racks:
			return fmt.Errorf("fleet: cooling failure rack %d outside topology (%d racks)", f.Rack, c.Topology.Racks)
		case f.At < 0 || f.Duration < 0:
			return fmt.Errorf("fleet: cooling failure window [%v,+%v] not in sim time", f.At, f.Duration)
		}
	}
	switch c.Placement {
	case PlaceStatic, PlaceCoolest:
	default:
		return fmt.Errorf("fleet: unknown placement %q", c.Placement)
	}
	w := c.Workload
	switch {
	case w.RequestsPerDrive < 0:
		return fmt.Errorf("fleet: %d requests per drive", w.RequestsPerDrive)
	case w.HotFraction < 0 || w.HotFraction > 1:
		return fmt.Errorf("fleet: hot fraction %g outside [0,1]", w.HotFraction)
	case w.HotRatePerS <= 0 || w.ColdRatePerS <= 0:
		return fmt.Errorf("fleet: non-positive request rate")
	}
	if len(c.GenYears) == 0 {
		return fmt.Errorf("fleet: no drive generations")
	}
	for _, y := range c.GenYears {
		if y < 1990 || y > 2100 {
			return fmt.Errorf("fleet: generation year %d outside [1990,2100]", y)
		}
	}
	return nil
}

// LatencyEdges returns the fixed response-time bucket edges (milliseconds)
// fleet aggregates use: 0.25 ms to 4096 ms in quarter-octave steps. Fixed
// edges make shard histograms exactly mergeable (stats.BucketCounts), which
// is why fleet p95/p99 are bucket-edge quantiles rather than P2 estimates —
// P2 marker state cannot be combined across shards.
func LatencyEdges() []float64 {
	out := make([]float64, 57)
	for i := range out {
		v := 0.25
		for k := 0; k < i/4; k++ {
			v *= 2
		}
		switch i % 4 {
		case 1:
			v *= 1.189207115002721 // 2^(1/4)
		case 2:
			v *= 1.4142135623730951 // 2^(1/2)
		case 3:
			v *= 1.681792830507429 // 2^(3/4)
		}
		out[i] = v
	}
	return out
}

// TempEdges returns the fixed drive-temperature bucket edges (Celsius) for
// the fleet's max-temperature distribution: 20 C to 80 C in 0.25 C steps.
func TempEdges() []float64 {
	out := make([]float64, 241)
	for i := range out {
		out[i] = 20 + float64(i)*0.25
	}
	return out
}

// mix derives position-keyed sub-seeds with a splitmix64-style chain, so a
// drive's stream depends only on (fleet seed, its global index) — never on
// shard boundaries or processing order.
func mix(seed int64, vals ...int64) int64 {
	z := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, v := range vals {
		z ^= uint64(v) + 0x9e3779b97f4a7c15 + (z << 6) + (z >> 2)
		z += 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return int64(z & 0x7fffffffffffffff)
}

// mixFloat maps a mixed seed into [0,1).
func mixFloat(seed int64, vals ...int64) float64 {
	return float64(mix(seed, vals...)>>10) / float64(1<<53)
}
