package fleet

import (
	"sort"

	"repro/internal/units"
)

// streamSpec is one workload stream before placement.
type streamSpec struct {
	id   int     // global stream index; also the seed key
	rate float64 // arrivals per second
	hot  bool
}

// mix tags keep the seed sub-streams (hot/cold draw, arrivals, addresses)
// statistically independent of one another.
const (
	tagHot     = 11
	tagArrival = 13
	tagAddress = 17
	tagWrite   = 19
)

// buildStreams derives the fleet's stream population from the workload:
// stream i's heat class is a pure function of (seed, i), never of
// placement or shard.
func buildStreams(w Workload, n int) []streamSpec {
	out := make([]streamSpec, n)
	for i := range out {
		hot := mixFloat(w.Seed, tagHot, int64(i)) < w.HotFraction
		rate := w.ColdRatePerS
		if hot {
			rate = w.HotRatePerS
		}
		out[i] = streamSpec{id: i, rate: rate, hot: hot}
	}
	return out
}

// place computes the initial drive->stream binding: streamOn[d] is the
// stream assigned to global drive index d. Design-point ambients are
// assignment-independent (dissipation is fixed by each drive's operating
// point), which is what lets placement run up front and every chassis
// shard stay self-contained.
func place(p Placement, streams []streamSpec, ambients []units.Celsius) []int {
	streamOn := make([]int, len(streams))
	if p != PlaceCoolest {
		for i := range streamOn {
			streamOn[i] = i
		}
		return streamOn
	}

	// Hottest streams onto the coolest slots. Both orders tie-break on
	// index so the assignment is a pure function of the inputs.
	drives := make([]int, len(ambients))
	for i := range drives {
		drives[i] = i
	}
	sort.SliceStable(drives, func(a, b int) bool {
		if ambients[drives[a]] != ambients[drives[b]] {
			return ambients[drives[a]] < ambients[drives[b]]
		}
		return drives[a] < drives[b]
	})
	byRate := make([]int, len(streams))
	for i := range byRate {
		byRate[i] = i
	}
	sort.SliceStable(byRate, func(a, b int) bool {
		if streams[byRate[a]].rate != streams[byRate[b]].rate {
			return streams[byRate[a]].rate > streams[byRate[b]].rate
		}
		return byRate[a] < byRate[b]
	})
	for k, d := range drives {
		streamOn[d] = byRate[k]
	}
	return streamOn
}

// chassisEnv is the precomputed static thermal environment of one chassis:
// its inlet under normal cooling and the per-slot design-point ambients.
// Only the cooling-failure delta varies with time during a run.
type chassisEnv struct {
	rack  int // rack index
	pos   int // chassis position within the rack (0 = nearest the cold aisle)
	index int // global chassis index, rack-major

	inlet    units.Celsius   // steady inlet after recirculation
	ambients []units.Celsius // per-slot design ambient at that inlet
	gens     []*Generation   // per-slot drive generation
	slot0    int             // global drive index of slot 0
}

// buildEnvs lays the generations into the topology and solves the rack's
// recirculation ladder. Chassis pos 0 breathes cold-aisle air; each one
// above re-ingests Recirculation of the rise below it:
//
//	inlet[p+1] = room + r*(inlet[p] + rise[p] - room)
//
// where rise[p] is the chassis' design-point outlet rise. The ladder uses
// the heat-capacity rate at the room inlet for every rung (fixed-property
// approximation, consistent with the airstream model).
func buildEnvs(cfg Config, gens []*Generation) []chassisEnv {
	t := cfg.Topology
	envs := make([]chassisEnv, 0, t.Chassis())
	room := cfg.Scenario.RoomInlet
	r := cfg.Scenario.Recirculation
	index := 0
	for rack := 0; rack < t.Racks; rack++ {
		inlet := room
		for pos := 0; pos < t.ChassisPerRack; pos++ {
			slot0 := index * t.SlotsPerChassis
			slotGens := make([]*Generation, t.SlotsPerChassis)
			diss := make([]units.Watts, t.SlotsPerChassis)
			for s := range slotGens {
				g := gens[(slot0+s)%len(gens)]
				slotGens[s] = g
				diss[s] = g.Dissipation
			}
			air := Airstream{Inlet: inlet, AirflowCFM: cfg.Scenario.AirflowCFM}
			envs = append(envs, chassisEnv{
				rack:     rack,
				pos:      pos,
				index:    index,
				inlet:    inlet,
				ambients: air.Ambients(diss),
				gens:     slotGens,
				slot0:    slot0,
			})
			rise := air.Outlet(diss) - inlet
			inlet = room + units.Celsius(r*float64(inlet+rise-room))
			index++
		}
	}
	return envs
}

// designAmbients flattens the per-slot ambients into one global
// drive-indexed slice for placement.
func designAmbients(envs []chassisEnv, drives int) []units.Celsius {
	out := make([]units.Celsius, drives)
	for _, env := range envs {
		copy(out[env.slot0:], env.ambients)
	}
	return out
}
