package fleet

import (
	"fmt"

	"repro/internal/materials"
	"repro/internal/units"
)

// cubicMetersPerSecondPerCFM converts an airflow spec in cubic feet per
// minute to m^3/s.
const cubicMetersPerSecondPerCFM = 0.000471947

// Airstream is the serial shared-cooling coupling core: drives sit in one
// airflow path, so each position's effective ambient is the inlet plus the
// heat picked up from everything upstream. This is the model
// internal/array introduced for a single chassis, promoted here so the
// chassis, rack and room layers all compose over the same arithmetic
// (internal/array's API is now a thin wrapper over this type).
type Airstream struct {
	// Inlet is the air temperature entering the stream.
	Inlet units.Celsius

	// AirflowCFM is the volumetric airflow in cubic feet per minute.
	// Typical 1U-3U storage chassis move 10-50 CFM through the drive cage.
	AirflowCFM float64
}

// Validate reports whether the airstream is physical.
func (a Airstream) Validate() error {
	if a.AirflowCFM <= 0 {
		return fmt.Errorf("fleet: non-positive airflow %.1f CFM", a.AirflowCFM)
	}
	return nil
}

// HeatCapacityRate returns the airstream's m*cp in W/K, using air
// properties at the inlet temperature (fixed-property model).
func (a Airstream) HeatCapacityRate() float64 {
	air := materials.AirAt(a.Inlet)
	vdot := a.AirflowCFM * cubicMetersPerSecondPerCFM
	return vdot * air.Density * air.SpecificHeat
}

// Ambients returns the local ambient each position along the stream sees
// given the per-position dissipations: position 0 breathes the inlet, and
// each downstream position is warmed by everything before it, one P/(m*cp)
// accumulation per slot. In the fixed-property model a drive's dissipation
// is set by its operating point alone, so the single pass is exact. The
// accumulation order matches internal/array's original loop bit-for-bit.
func (a Airstream) Ambients(dissipation []units.Watts) []units.Celsius {
	mcp := a.HeatCapacityRate()
	out := make([]units.Celsius, len(dissipation))
	ambient := a.Inlet
	for i, p := range dissipation {
		out[i] = ambient
		ambient += units.Celsius(float64(p) / mcp)
	}
	return out
}

// Outlet returns the air temperature leaving the stream: the inlet plus
// every position's contribution, accumulated in the same order Ambients
// uses so the two agree bit-for-bit.
func (a Airstream) Outlet(dissipation []units.Watts) units.Celsius {
	mcp := a.HeatCapacityRate()
	ambient := a.Inlet
	for _, p := range dissipation {
		ambient += units.Celsius(float64(p) / mcp)
	}
	return ambient
}
