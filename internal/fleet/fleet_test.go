package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/thermal"
	"repro/internal/units"
)

func testConfig() Config {
	return Config{
		Topology: Topology{Racks: 3, ChassisPerRack: 2, SlotsPerChassis: 4},
		Scenario: Scenario{Recirculation: 0.2},
		Workload: Workload{RequestsPerDrive: 15, Seed: 7},
	}
}

// runBytes renders a run's full output (every rack line plus the summary)
// as one byte stream — the same shape the serving layer emits.
func runBytes(t *testing.T, cfg Config) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	sum, err := Run(context.Background(), cfg, func(rs RackSummary) error { return enc.Encode(rs) })
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(sum); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero racks", func(c *Config) { c.Topology.Racks = 0 }},
		{"zero chassis", func(c *Config) { c.Topology.ChassisPerRack = 0 }},
		{"zero slots", func(c *Config) { c.Topology.SlotsPerChassis = 0 }},
		{"negative airflow", func(c *Config) { c.Scenario.AirflowCFM = -1 }},
		{"recirculation at 1", func(c *Config) { c.Scenario.Recirculation = 1 }},
		{"negative recirculation", func(c *Config) { c.Scenario.Recirculation = -0.1 }},
		{"failure rack out of range", func(c *Config) {
			c.Scenario.CoolingFailure = &CoolingFailure{Rack: 99, Duration: time.Second}
		}},
		{"failure before time zero", func(c *Config) {
			c.Scenario.CoolingFailure = &CoolingFailure{Rack: -1, At: -time.Second, Duration: time.Second}
		}},
		{"unknown placement", func(c *Config) { c.Placement = "warmest" }},
		{"negative requests", func(c *Config) { c.Workload.RequestsPerDrive = -1 }},
		{"hot fraction above 1", func(c *Config) { c.Workload.HotFraction = 1.5 }},
		{"generation year out of range", func(c *Config) { c.GenYears = []int{1899} }},
	}
	for _, tc := range cases {
		cfg := testConfig()
		tc.mutate(&cfg)
		if _, err := Run(context.Background(), cfg, nil); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestRunDeterministicAcrossWorkers is the sharding contract: the full
// output stream — every rack summary and the fleet reduction — must be
// byte-identical at -workers 1 and -workers 8. Runs under -race in CI.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	cfg := testConfig()
	cfg.Placement = PlaceCoolest
	cfg.Migration = Migration{ThresholdC: 29, HysteresisC: 0.5}
	cfg.Scenario.CoolingFailure = &CoolingFailure{
		Rack: 1, At: 200 * time.Millisecond, Duration: 2 * time.Second, DeltaC: 12,
	}

	cfg.Workers = 1
	seq := runBytes(t, cfg)
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		if got := runBytes(t, cfg); !bytes.Equal(got, seq) {
			t.Fatalf("workers=%d output differs from sequential:\n%s\nvs\n%s", workers, got, seq)
		}
	}
}

func TestRunSeedChangesOutput(t *testing.T) {
	cfg := testConfig()
	a := runBytes(t, cfg)
	cfg.Workload.Seed = 8
	if b := runBytes(t, cfg); bytes.Equal(a, b) {
		t.Fatal("different seeds produced identical output")
	}
}

// TestCoolingFailure pins the scenario knob's physics: a failure window
// raises the affected rack's drives and leaves other racks untouched, and
// a bigger delta is monotonically worse.
func TestCoolingFailure(t *testing.T) {
	base := testConfig()
	run := func(delta units.Celsius) (Summary, []RackSummary) {
		cfg := base
		if delta > 0 {
			cfg.Scenario.CoolingFailure = &CoolingFailure{
				Rack: 1, At: 100 * time.Millisecond, Duration: 5 * time.Second, DeltaC: delta,
			}
		}
		var racks []RackSummary
		sum, err := Run(context.Background(), cfg, func(rs RackSummary) error {
			racks = append(racks, rs)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum, racks
	}

	calm, calmRacks := run(0)
	hot, hotRacks := run(10)
	hotter, _ := run(20)

	if hot.HottestAirC <= calm.HottestAirC {
		t.Fatalf("cooling failure did not heat the fleet: %.3f vs %.3f", hot.HottestAirC, calm.HottestAirC)
	}
	if hotter.HottestAirC <= hot.HottestAirC {
		t.Fatalf("bigger delta not hotter: %.3f vs %.3f", hotter.HottestAirC, hot.HottestAirC)
	}
	if hotRacks[1].HottestAirC <= calmRacks[1].HottestAirC {
		t.Fatal("affected rack not heated")
	}
	// Racks 0 and 2 never see the failure; their thermal outcome is
	// unchanged (requests equal by construction).
	for _, r := range []int{0, 2} {
		if hotRacks[r].HottestAirC != calmRacks[r].HottestAirC {
			t.Fatalf("rack %d heated by a rack-1 failure", r)
		}
	}
	if hot.EffectiveAFR <= calm.EffectiveAFR {
		t.Fatal("failure window did not raise the fleet's effective AFR")
	}
}

// TestMigrationMovesWork sets the threshold inside the chassis' slot
// ambient spread (downstream slots breathe ~1.4 C warmer air than slot 0)
// and checks the policy both fires and conserves the workload.
func TestMigrationMovesWork(t *testing.T) {
	cfg := testConfig()
	calm, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if calm.Migrations != 0 {
		t.Fatalf("migrations with a zero threshold: %d", calm.Migrations)
	}

	cfg.Migration = Migration{ThresholdC: 29, HysteresisC: 0.5}
	sum, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Migrations == 0 {
		t.Fatal("threshold migration never fired")
	}
	if sum.Requests != calm.Requests {
		t.Fatalf("migration lost requests: %d vs %d", sum.Requests, calm.Requests)
	}
}

func TestPlaceCoolestPairsHotStreamsWithCoolSlots(t *testing.T) {
	streams := []streamSpec{
		{id: 0, rate: 10},
		{id: 1, rate: 90, hot: true},
		{id: 2, rate: 10},
		{id: 3, rate: 90, hot: true},
	}
	ambients := []units.Celsius{28, 29, 30, 31}
	streamOn := place(PlaceCoolest, streams, ambients)
	if streamOn[0] != 1 || streamOn[1] != 3 {
		t.Fatalf("hot streams not on coolest slots: %v", streamOn)
	}
	if streamOn[2] != 0 || streamOn[3] != 2 {
		t.Fatalf("cold streams misplaced: %v", streamOn)
	}

	static := place(PlaceStatic, streams, ambients)
	for i, s := range static {
		if s != i {
			t.Fatalf("static placement moved stream %d to %d", s, i)
		}
	}
}

// TestPreviewRecirculation checks the rack ladder: with recirculation the
// upper chassis breathe warmer air than the cold-aisle chassis, and
// without it every chassis sees the room inlet.
func TestPreviewRecirculation(t *testing.T) {
	cfg := testConfig()
	cfg.Topology = Topology{Racks: 1, ChassisPerRack: 3, SlotsPerChassis: 4}

	cfg.Scenario.Recirculation = 0
	flat, err := PreviewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range flat {
		if d.Slot == 0 && d.Ambient != thermal.DefaultAmbient {
			t.Fatalf("chassis %d slot 0 ambient %.3f without recirculation", d.Chassis, float64(d.Ambient))
		}
	}

	cfg.Scenario.Recirculation = 0.3
	mixed, err := PreviewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(mixed) != cfg.Topology.Drives() {
		t.Fatalf("%d preview drives, want %d", len(mixed), cfg.Topology.Drives())
	}
	// Same slot, higher chassis -> strictly warmer (same generation in
	// both positions: slots per chassis is a multiple of the gen count).
	byPos := map[int]units.Celsius{}
	for _, d := range mixed {
		if d.Slot == 0 {
			byPos[d.Chassis] = d.Ambient
		}
	}
	if !(byPos[0] < byPos[1] && byPos[1] < byPos[2]) {
		t.Fatalf("recirculation ladder not increasing: %v", byPos)
	}
	// Downstream slots are warmer than slot 0 in the same chassis.
	if !(mixed[1].Ambient > mixed[0].Ambient) {
		t.Fatal("slot preheat missing")
	}
}

// TestGenerationsSharedAndDistinct: repeats dedupe to one instance;
// distinct years really differ (the roadmap's densities move).
func TestGenerationsSharedAndDistinct(t *testing.T) {
	gens, err := generations([]int{2002, 2005, 2002})
	if err != nil {
		t.Fatal(err)
	}
	if gens[0] != gens[2] {
		t.Fatal("same year produced two instances")
	}
	if gens[0].TotalSectors >= gens[1].TotalSectors {
		t.Fatalf("2005 capacity (%d) not above 2002 (%d)", gens[1].TotalSectors, gens[0].TotalSectors)
	}
	if gens[0].Dissipation <= 0 || gens[0].RPM <= 0 {
		t.Fatal("degenerate generation")
	}
}

func TestMixIsPositionKeyed(t *testing.T) {
	a := mix(1, 2, 3)
	if a != mix(1, 2, 3) {
		t.Fatal("mix not deterministic")
	}
	if a == mix(1, 3, 2) || a == mix(2, 2, 3) {
		t.Fatal("mix collisions on permuted inputs")
	}
	if f := mixFloat(1, 2, 3); f < 0 || f >= 1 {
		t.Fatalf("mixFloat out of range: %v", f)
	}
}
