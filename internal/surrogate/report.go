package surrogate

// ChannelError is the cross-validation error of one output channel:
// relative errors |surrogate − exact| / max(|exact|, floor) aggregated over
// a probe set.
type ChannelError struct {
	Channel string  `json:"channel"`
	MaxRel  float64 `json:"max_rel"`
	MeanRel float64 `json:"mean_rel"`
}

// FoldReport is one held-out probe batch.
type FoldReport struct {
	Fold     int            `json:"fold"`
	Probes   int            `json:"probes"`
	Channels []ChannelError `json:"channels"`
}

// Report is a model's complete cross-validation record: per-fold and
// overall max/mean relative error for every output channel, plus the probe
// seed so the validation is reproducible.
type Report struct {
	Seed    int64          `json:"seed"`
	Probes  int            `json:"probes"`
	Folds   []FoldReport   `json:"folds"`
	Overall []ChannelError `json:"overall"`
}

// MaxRel returns the worst relative error across all channels — the single
// number train-smoke gates on.
func (r Report) MaxRel() float64 {
	var m float64
	for _, c := range r.Overall {
		if c.MaxRel > m {
			m = c.MaxRel
		}
	}
	return m
}

// Channel returns the overall error for a named channel (zero value if the
// report lacks it).
func (r Report) Channel(name string) ChannelError {
	for _, c := range r.Overall {
		if c.Channel == name {
			return c
		}
	}
	return ChannelError{Channel: name}
}
