package surrogate

import (
	"fmt"
	"math"
)

// Model is a fitted surrogate: per-channel value tables over the training
// grid plus the interpolation rule. The JSON field order (Go struct order)
// and full-precision float round-tripping make the encoded artifact
// byte-deterministic for a given training configuration.
//
// Table shapes:
//
//	TempC[h][r]     — hardware combination h, RPM node r (year-independent)
//	IDR[y][r]       — year node y, RPM node r (hardware/workload-independent)
//	MeanMS[w][y][r] — workload w, year node y, RPM node r
//	P95MS[w][y][r]  — likewise
type Model struct {
	// Trainer provenance: the exact-engine knobs the grid was sampled
	// with. A fallback engine built from these answers queries on exactly
	// the same footing as the trainer did.
	Diameter float64 `json:"diameter_in"`
	Zones    int     `json:"zones"`
	Requests int     `json:"requests"`

	// Refine enables quadratic (3-point Lagrange) interpolation along the
	// RPM axis; off means piecewise multilinear everywhere.
	Refine bool `json:"refine"`

	Years     []int      `json:"years"`
	RPMs      []float64  `json:"rpms"`
	Hardware  []Hardware `json:"hardware"`
	Workloads []string   `json:"workloads"`

	TempC  [][]float64   `json:"temp_c"`
	IDR    [][]float64   `json:"idr_mbps"`
	MeanMS [][][]float64 `json:"mean_ms"`
	P95MS  [][][]float64 `json:"p95_ms"`

	// CV is the cross-validation report computed at training time.
	CV Report `json:"cv"`
}

// Eval answers a query by interpolation. It allocates nothing and returns
// ErrOutOfHull for any query the trained grid does not cover (unknown
// hardware or workload, or year/RPM beyond the grid edges).
func (m *Model) Eval(q Query) (Answer, error) {
	hw := -1
	for i := range m.Hardware {
		if m.Hardware[i].Platters == q.Platters && m.Hardware[i].FormFactor == q.FormFactor {
			hw = i
			break
		}
	}
	if hw < 0 {
		return Answer{}, ErrOutOfHull
	}
	wl := -1
	for i := range m.Workloads {
		if m.Workloads[i] == q.Workload {
			wl = i
			break
		}
	}
	if wl < 0 {
		return Answer{}, ErrOutOfHull
	}
	y := float64(q.Year)
	if y < float64(m.Years[0]) || y > float64(m.Years[len(m.Years)-1]) ||
		q.RPM < m.RPMs[0] || q.RPM > m.RPMs[len(m.RPMs)-1] {
		return Answer{}, ErrOutOfHull
	}

	yi, yt := locateYear(m.Years, q.Year)
	var a Answer
	a.TempC = m.alongRPM(m.TempC[hw], q.RPM)
	a.IDRMBps = m.blendYears(m.IDR, yi, yt, q.RPM)
	a.MeanMillis = m.blendYears(m.MeanMS[wl], yi, yt, q.RPM)
	a.P95Millis = m.blendYears(m.P95MS[wl], yi, yt, q.RPM)
	return a, nil
}

// blendYears interpolates a [year][rpm] table: along RPM within the two
// bracketing year rows, then linearly across the year gap.
func (m *Model) blendYears(rows [][]float64, yi int, yt, rpm float64) float64 {
	v0 := m.alongRPM(rows[yi], rpm)
	if yt == 0 {
		return v0
	}
	v1 := m.alongRPM(rows[yi+1], rpm)
	return v0 + yt*(v1-v0)
}

// alongRPM interpolates one RPM row: piecewise linear, or a quadratic
// Lagrange stencil when the model was trained with refinement.
func (m *Model) alongRPM(row []float64, rpm float64) float64 {
	i, t := locate(m.RPMs, rpm)
	if !m.Refine || len(m.RPMs) < 3 {
		return row[i] + t*(row[i+1]-row[i])
	}
	// Pick the 3-point stencil centred on the query: shift left when the
	// query sits in the lower half of an interior segment.
	s := i
	if t < 0.5 && i > 0 {
		s = i - 1
	}
	if s+2 >= len(m.RPMs) {
		s = len(m.RPMs) - 3
	}
	x0, x1, x2 := m.RPMs[s], m.RPMs[s+1], m.RPMs[s+2]
	y0, y1, y2 := row[s], row[s+1], row[s+2]
	l0 := (rpm - x1) * (rpm - x2) / ((x0 - x1) * (x0 - x2))
	l1 := (rpm - x0) * (rpm - x2) / ((x1 - x0) * (x1 - x2))
	l2 := (rpm - x0) * (rpm - x1) / ((x2 - x0) * (x2 - x1))
	return y0*l0 + y1*l1 + y2*l2
}

// locate finds the segment index i with xs[i] <= x <= xs[i+1] and the
// fractional position t within it. x must already be inside the hull.
func locate(xs []float64, x float64) (int, float64) {
	lo, hi := 0, len(xs)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	if xs[lo+1] == xs[lo] {
		return lo, 0
	}
	return lo, (x - xs[lo]) / (xs[lo+1] - xs[lo])
}

// locateYear is locate over the integer year axis.
func locateYear(ys []int, year int) (int, float64) {
	lo, hi := 0, len(ys)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if ys[mid] <= year {
			lo = mid
		} else {
			hi = mid
		}
	}
	if ys[lo+1] == ys[lo] {
		return lo, 0
	}
	return lo, float64(year-ys[lo]) / float64(ys[lo+1]-ys[lo])
}

// Validate checks structural and numeric integrity: axis ordering, table
// dimensions, and finiteness of every stored value. Decode refuses any
// artifact that fails it, mirroring the journal's corrupt-refuse contract.
func (m *Model) Validate() error {
	switch {
	case len(m.Years) < 2:
		return fmt.Errorf("%w: %d year nodes (need >= 2)", ErrInvalid, len(m.Years))
	case len(m.RPMs) < 2:
		return fmt.Errorf("%w: %d rpm nodes (need >= 2)", ErrInvalid, len(m.RPMs))
	case len(m.Hardware) == 0:
		return fmt.Errorf("%w: no hardware combinations", ErrInvalid)
	case len(m.Workloads) == 0:
		return fmt.Errorf("%w: no workloads", ErrInvalid)
	case m.Requests < 1 || m.Zones < 1:
		return fmt.Errorf("%w: requests %d / zones %d", ErrInvalid, m.Requests, m.Zones)
	case m.Diameter <= 0 || m.Diameter > 10 || math.IsNaN(m.Diameter):
		return fmt.Errorf("%w: diameter %v", ErrInvalid, m.Diameter)
	}
	for i := 1; i < len(m.Years); i++ {
		if m.Years[i] <= m.Years[i-1] {
			return fmt.Errorf("%w: years not strictly ascending at %d", ErrInvalid, i)
		}
	}
	for i, r := range m.RPMs {
		if math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 {
			return fmt.Errorf("%w: rpms[%d] = %v not finite and positive", ErrInvalid, i, r)
		}
		if i > 0 && r <= m.RPMs[i-1] {
			return fmt.Errorf("%w: rpms not strictly ascending at %d", ErrInvalid, i)
		}
	}
	for i, h := range m.Hardware {
		if h.Platters < 1 || h.Platters > 12 {
			return fmt.Errorf("%w: hardware[%d] platters %d", ErrInvalid, i, h.Platters)
		}
		if _, err := ParseFormFactor(h.FormFactor); err != nil {
			return fmt.Errorf("%w: hardware[%d]: %v", ErrInvalid, i, err)
		}
	}
	for i, w := range m.Workloads {
		if w == "" {
			return fmt.Errorf("%w: workloads[%d] empty", ErrInvalid, i)
		}
	}
	nY, nR := len(m.Years), len(m.RPMs)
	if err := checkGrid("temp_c", m.TempC, len(m.Hardware), nR); err != nil {
		return err
	}
	if err := checkGrid("idr_mbps", m.IDR, nY, nR); err != nil {
		return err
	}
	if err := checkCube("mean_ms", m.MeanMS, len(m.Workloads), nY, nR); err != nil {
		return err
	}
	if err := checkCube("p95_ms", m.P95MS, len(m.Workloads), nY, nR); err != nil {
		return err
	}
	return nil
}

func checkGrid(name string, rows [][]float64, nRows, nCols int) error {
	if len(rows) != nRows {
		return fmt.Errorf("%w: %s has %d rows (want %d)", ErrInvalid, name, len(rows), nRows)
	}
	for i, r := range rows {
		if len(r) != nCols {
			return fmt.Errorf("%w: %s[%d] has %d cols (want %d)", ErrInvalid, name, i, len(r), nCols)
		}
		for j, v := range r {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: %s[%d][%d] not finite", ErrInvalid, name, i, j)
			}
		}
	}
	return nil
}

func checkCube(name string, cube [][][]float64, n, nRows, nCols int) error {
	if len(cube) != n {
		return fmt.Errorf("%w: %s has %d planes (want %d)", ErrInvalid, name, len(cube), n)
	}
	for i, plane := range cube {
		if err := checkGrid(fmt.Sprintf("%s[%d]", name, i), plane, nRows, nCols); err != nil {
			return err
		}
	}
	return nil
}

// ExactConfig returns the exact-engine configuration the model was trained
// with, so a serving-side fallback matches the trainer bit for bit.
func (m *Model) ExactConfig() ExactConfig {
	return ExactConfig{Requests: m.Requests, Zones: m.Zones, Diameter: m.Diameter}
}

// Cells reports the total number of sampled grid cells (for reports).
func (m *Model) Cells() int {
	temp := len(m.Hardware) * len(m.RPMs)
	idr := len(m.Years) * len(m.RPMs)
	lat := len(m.Workloads) * len(m.Years) * len(m.RPMs)
	return temp + idr + lat
}
