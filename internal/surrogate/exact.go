package surrogate

import (
	"fmt"
	"sync"

	"repro/internal/capacity"
	"repro/internal/geometry"
	"repro/internal/perf"
	"repro/internal/raid"
	"repro/internal/scaling"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/trace"
	"repro/internal/units"
)

// Defaults for the exact engine. The 2.6" platter is the roadmap's
// reference diameter; 2000 requests keep a latency replay in the tens of
// milliseconds while the mean/p95 stay representative.
const (
	DefaultRequests = 2000
	DefaultDiameter = 2.6
)

// ExactConfig parameterizes the exact engine. The zero value means
// defaults; a Model records the resolved values so a serving-side fallback
// engine can be built to match its trainer exactly.
type ExactConfig struct {
	// Requests is the per-replay trace length (0 = DefaultRequests).
	Requests int

	// Zones is the ZBR zone count (0 = scaling.RoadmapZones).
	Zones int

	// Diameter is the platter diameter in inches (0 = DefaultDiameter).
	Diameter float64
}

func (c ExactConfig) withDefaults() ExactConfig {
	if c.Requests == 0 {
		c.Requests = DefaultRequests
	}
	if c.Zones == 0 {
		c.Zones = scaling.RoadmapZones
	}
	if c.Diameter == 0 {
		c.Diameter = DefaultDiameter
	}
	return c
}

func (c ExactConfig) validate() error {
	switch {
	case c.Requests < 16 || c.Requests > 200000:
		return fmt.Errorf("surrogate: requests %d outside [16, 200000]", c.Requests)
	case c.Zones < 1 || c.Zones > 200:
		return fmt.Errorf("surrogate: zones %d outside [1, 200]", c.Zones)
	case c.Diameter < 1 || c.Diameter > 4:
		return fmt.Errorf("surrogate: diameter %v outside [1, 4]", c.Diameter)
	}
	return nil
}

// Exact answers roadmap queries with the full simulator stack. It memoizes
// the expensive intermediates — thermal models per hardware combination,
// recording layouts per year, generated traces per (workload, year) — so a
// training sweep does not rebuild them per grid cell. Memoization cannot
// change a result (every intermediate is a pure function of its key), so
// concurrent Solve calls stay bit-deterministic.
type Exact struct {
	cfg ExactConfig

	mu       sync.Mutex
	thermals map[hwKey]*thermal.Model
	layouts  map[int]*capacity.Layout
	traces   map[traceKey]*traceData
}

type hwKey struct {
	platters int
	ff       geometry.FormFactor
}

type traceKey struct {
	workload string
	year     int
}

type traceData struct {
	params trace.Params
	reqs   []raid.Request
}

// NewExact builds an exact engine. The zero config uses defaults.
func NewExact(cfg ExactConfig) (*Exact, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Exact{
		cfg:      cfg,
		thermals: make(map[hwKey]*thermal.Model),
		layouts:  make(map[int]*capacity.Layout),
		traces:   make(map[traceKey]*traceData),
	}, nil
}

// Config returns the resolved configuration.
func (e *Exact) Config() ExactConfig { return e.cfg }

// Solve evaluates one query exactly: a worst-case steady-state thermal
// solve for the temperature channel, the year's recording layout spun at
// the query RPM for IDR, and a deterministic trace replay through the
// disk/RAID simulator for the latency channels.
func (e *Exact) Solve(q Query) (Answer, error) {
	if err := q.Validate(); err != nil {
		return Answer{}, err
	}
	ff, err := ParseFormFactor(q.FormFactor)
	if err != nil {
		return Answer{}, err
	}

	tm, err := e.thermalModel(q.Platters, ff)
	if err != nil {
		return Answer{}, err
	}
	st := tm.SteadyState(thermal.WorstCase(units.RPM(q.RPM)))

	layout, err := e.layoutFor(q.Year)
	if err != nil {
		return Answer{}, err
	}

	td, err := e.traceFor(q.Workload, q.Year)
	if err != nil {
		return Answer{}, err
	}
	vol, err := td.params.BuildVolume(units.RPM(q.RPM))
	if err != nil {
		return Answer{}, err
	}
	comps, err := vol.Simulate(td.reqs)
	if err != nil {
		return Answer{}, fmt.Errorf("surrogate: %s at %v rpm: %w", q.Workload, q.RPM, err)
	}
	var s stats.Sample
	for _, c := range comps {
		s.Add(c.Response())
	}

	return Answer{
		TempC:      float64(st.Air),
		IDRMBps:    float64(perf.IDR(layout, units.RPM(q.RPM))),
		MeanMillis: s.Mean(),
		P95Millis:  s.Percentile(95),
	}, nil
}

// thermalModel memoizes the 4-node network per hardware combination at the
// reference platter diameter.
func (e *Exact) thermalModel(platters int, ff geometry.FormFactor) (*thermal.Model, error) {
	k := hwKey{platters, ff}
	e.mu.Lock()
	defer e.mu.Unlock()
	if m, ok := e.thermals[k]; ok {
		return m, nil
	}
	m, err := thermal.New(geometry.Drive{
		PlatterDiameter: units.Inches(e.cfg.Diameter),
		Platters:        platters,
		FormFactor:      ff,
	})
	if err != nil {
		return nil, fmt.Errorf("surrogate: %w", err)
	}
	e.thermals[k] = m
	return m, nil
}

// layoutFor memoizes the reference single-platter recording layout per
// year. IDR is a per-surface outer-track data rate, so the platter count
// of the query does not enter.
func (e *Exact) layoutFor(year int) (*capacity.Layout, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if l, ok := e.layouts[year]; ok {
		return l, nil
	}
	bpi, tpi := scaling.DefaultTrend().Densities(year)
	l, err := capacity.New(capacity.Config{
		Geometry: geometry.Drive{
			PlatterDiameter: units.Inches(e.cfg.Diameter),
			Platters:        1,
			FormFactor:      geometry.FormFactor35,
		},
		BPI:   bpi,
		TPI:   tpi,
		Zones: e.cfg.Zones,
	})
	if err != nil {
		return nil, fmt.Errorf("surrogate: year %d: %w", year, err)
	}
	e.layouts[year] = l
	return l, nil
}

// traceFor memoizes the generated request sequence per (workload, year).
// The trace depends on the member-disk capacity (a function of the year's
// densities) but not on the replay RPM, so every RPM cell of a row replays
// the identical sequence — exactly how the paper replays each trace
// against faster drives.
func (e *Exact) traceFor(workload string, year int) (*traceData, error) {
	k := traceKey{workload, year}
	e.mu.Lock()
	defer e.mu.Unlock()
	if td, ok := e.traces[k]; ok {
		return td, nil
	}
	p, err := trace.WorkloadByName(workload)
	if err != nil {
		return nil, err
	}
	p.Year = year
	p = p.WithRequests(e.cfg.Requests)
	// Capacity does not depend on spindle speed; probe it at the baseline.
	vol, err := p.BuildVolume(p.BaselineRPM)
	if err != nil {
		return nil, err
	}
	reqs, err := p.Generate(vol.Capacity())
	if err != nil {
		return nil, err
	}
	td := &traceData{params: p, reqs: reqs}
	e.traces[k] = td
	return td, nil
}
