package surrogate

import "repro/internal/obs"

// queryLatencyEdgesUS buckets surrogate query latency in microseconds; the
// fast path should land entirely in the sub-microsecond bucket, with
// fallback-to-exact queries filling the millisecond tail.
var queryLatencyEdgesUS = []float64{1, 5, 25, 100, 1000, 10000, 100000, 1000000}

// Metrics is the serving-side instrument set. All series are volatile
// (they describe traffic against this process, not the simulated machine)
// and are pre-registered so every series exists at zero from the first
// scrape — the fallback counters in particular must be observable before
// the first miss.
type Metrics struct {
	// Queries counts every query answered, fast path or fallback.
	Queries *obs.Counter

	// Hits counts queries answered by the interpolation fast path.
	Hits *obs.Counter

	// Fallbacks counts queries answered by the exact engine, by reason:
	// "out_of_hull", "no_model", "error_bound", "forced".
	Fallbacks         *obs.Counter
	FallbackOutOfHull *obs.Counter
	FallbackNoModel   *obs.Counter
	FallbackErrBound  *obs.Counter
	FallbackForced    *obs.Counter

	// QueryLatencyUS observes per-query wall time in microseconds.
	QueryLatencyUS *obs.Histogram

	// Trainings counts models trained and installed.
	Trainings *obs.Counter
}

// NewMetrics registers the surrogate series on a registry (nil-safe: a nil
// registry yields disabled zero-alloc instruments, matching obs idiom).
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Queries:           reg.VolatileCounter("surrogate_queries_total"),
		Hits:              reg.VolatileCounter("surrogate_hits_total"),
		Fallbacks:         reg.VolatileCounter("surrogate_fallbacks_total"),
		FallbackOutOfHull: reg.VolatileCounter("surrogate_fallbacks_by_reason_total", "reason", "out_of_hull"),
		FallbackNoModel:   reg.VolatileCounter("surrogate_fallbacks_by_reason_total", "reason", "no_model"),
		FallbackErrBound:  reg.VolatileCounter("surrogate_fallbacks_by_reason_total", "reason", "error_bound"),
		FallbackForced:    reg.VolatileCounter("surrogate_fallbacks_by_reason_total", "reason", "forced"),
		QueryLatencyUS:    reg.VolatileHistogram("surrogate_query_latency_us", queryLatencyEdgesUS),
		Trainings:         reg.VolatileCounter("surrogate_trainings_total"),
	}
}
