package surrogate

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/geometry"
)

// benchModel trains one small model per process; the grid is tiny and the
// replays short so setup stays in the low seconds.
var (
	benchOnce  sync.Once
	benchMod   *Model
	benchExact *Exact
)

func benchSetup() (*Model, *Exact) {
	benchOnce.Do(func() {
		cfg := TrainConfig{
			Years:     []int{2002, 2006},
			RPMs:      []float64{10000, 15000, 20000},
			Hardware:  []Hardware{{Platters: 1, FormFactor: geometry.FormFactor35.String()}},
			Workloads: []string{"TPC-C"},
			Requests:  64,
			Folds:     1,
			Probes:    1,
		}
		m, err := Train(context.Background(), cfg, nil)
		if err != nil {
			panic(err)
		}
		benchMod = m
		e, err := NewExact(m.ExactConfig())
		if err != nil {
			panic(err)
		}
		benchExact = e
	})
	return benchMod, benchExact
}

// BenchmarkSurrogateQuery is the serving hot path: one interpolated
// in-hull query. Gated at 0 allocs/op via BENCH_surrogate.json.
func BenchmarkSurrogateQuery(b *testing.B) {
	m, _ := benchSetup()
	queries := [4]Query{
		{Year: 2003, RPM: 11250, Platters: 1, FormFactor: geometry.FormFactor35.String(), Workload: "TPC-C"},
		{Year: 2004, RPM: 13777, Platters: 1, FormFactor: geometry.FormFactor35.String(), Workload: "TPC-C"},
		{Year: 2005, RPM: 17500, Platters: 1, FormFactor: geometry.FormFactor35.String(), Workload: "TPC-C"},
		{Year: 2006, RPM: 19000, Platters: 1, FormFactor: geometry.FormFactor35.String(), Workload: "TPC-C"},
	}
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := m.Eval(queries[i&3])
		if err != nil {
			b.Fatal(err)
		}
		sink += a.TempC
	}
	_ = sink
}

// BenchmarkExactPointSolve is the full-simulation path the surrogate
// replaces: thermal solve + layout + deterministic trace replay at the
// default 2000-request length. Divided by BenchmarkSurrogateQuery it is
// the speedup the BENCH_surrogate.json baseline records.
func BenchmarkExactPointSolve(b *testing.B) {
	e, err := NewExact(ExactConfig{})
	if err != nil {
		b.Fatal(err)
	}
	q := Query{Year: 2004, RPM: 13777, Platters: 1,
		FormFactor: geometry.FormFactor35.String(), Workload: "TPC-C"}
	if _, err := e.Solve(q); err != nil { // warm the memoized trace
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Solve(q); err != nil {
			b.Fatal(err)
		}
	}
}

// TestQuerySpeedupFloor pins the acceptance criterion directly: an
// in-hull surrogate query must be at least 1000x faster than the exact
// point solve it replaces. The measured ratio is >30000x, so the floor
// holds with more than an order of magnitude of headroom on noisy hosts.
func TestQuerySpeedupFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("measures wall time")
	}
	m, _ := benchSetup()
	q := Query{Year: 2004, RPM: 13777, Platters: 1,
		FormFactor: geometry.FormFactor35.String(), Workload: "TPC-C"}

	fast := testing.Benchmark(func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			a, err := m.Eval(q)
			if err != nil {
				b.Fatal(err)
			}
			sink += a.TempC
		}
		_ = sink
	})

	e, err := NewExact(ExactConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Solve(q); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	const exactRuns = 3
	for i := 0; i < exactRuns; i++ {
		if _, err := e.Solve(q); err != nil {
			t.Fatal(err)
		}
	}
	exactNs := float64(time.Since(start).Nanoseconds()) / exactRuns

	queryNs := float64(fast.NsPerOp())
	if queryNs <= 0 {
		queryNs = 1
	}
	speedup := exactNs / queryNs
	t.Logf("query %.0f ns, exact %.0f ns, speedup %.0fx", queryNs, exactNs, speedup)
	if speedup < 1000 {
		t.Errorf("speedup %.0fx is below the 1000x floor", speedup)
	}
}
