package surrogate

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
)

// Artifact framing: a fixed header, a JSON payload, and a trailing CRC.
//
//	offset 0  magic   "SURM" (4 bytes)
//	offset 4  version uint32 LE
//	offset 8  length  uint64 LE (payload bytes)
//	offset 16 payload (JSON-encoded Model)
//	end-4     crc32   IEEE over the payload, uint32 LE
//
// json.Marshal of a Go struct emits fields in declaration order and
// round-trips float64 values through their shortest exact representation,
// so Encode is byte-deterministic for a given model.

// Version is the current artifact format version.
const Version = 1

// magic identifies a surrogate model artifact.
var magic = [4]byte{'S', 'U', 'R', 'M'}

const headerLen = 16

// Typed decode failures, mirroring the journal's corrupt-refuse contract:
// a damaged artifact is refused with a precise reason, never served.
var (
	// ErrTruncated reports an artifact shorter than its framing declares.
	ErrTruncated = errors.New("surrogate: artifact truncated")

	// ErrMagic reports a byte stream that is not a surrogate artifact.
	ErrMagic = errors.New("surrogate: bad magic")

	// ErrVersion reports an artifact written by an unknown format version.
	ErrVersion = errors.New("surrogate: unsupported artifact version")

	// ErrChecksum reports payload corruption.
	ErrChecksum = errors.New("surrogate: checksum mismatch")

	// ErrInvalid reports structurally or numerically invalid model data
	// (bad JSON, wrong table dimensions, non-finite values, trailing
	// bytes).
	ErrInvalid = errors.New("surrogate: invalid model")
)

// Encode serializes a validated model to the versioned, checksummed
// artifact format. The bytes are deterministic: encoding the same model
// twice yields identical output.
func Encode(m *Model) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	out := make([]byte, headerLen+len(payload)+4)
	copy(out, magic[:])
	binary.LittleEndian.PutUint32(out[4:], Version)
	binary.LittleEndian.PutUint64(out[8:], uint64(len(payload)))
	copy(out[headerLen:], payload)
	binary.LittleEndian.PutUint32(out[headerLen+len(payload):], crc32.ChecksumIEEE(payload))
	return out, nil
}

// Decode parses and validates an artifact. Every failure maps to one of
// the typed errors above; Decode never panics and never returns a model
// that fails Validate.
func Decode(data []byte) (*Model, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d header bytes (need %d)", ErrTruncated, len(data), headerLen)
	}
	if [4]byte(data[:4]) != magic {
		return nil, ErrMagic
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != Version {
		return nil, fmt.Errorf("%w: got %d, support %d", ErrVersion, v, Version)
	}
	n := binary.LittleEndian.Uint64(data[8:])
	if n > uint64(len(data)) {
		return nil, fmt.Errorf("%w: payload declares %d bytes, %d available", ErrTruncated, n, len(data)-headerLen)
	}
	total := headerLen + int(n) + 4
	if len(data) < total {
		return nil, fmt.Errorf("%w: %d bytes (need %d)", ErrTruncated, len(data), total)
	}
	if len(data) > total {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrInvalid, len(data)-total)
	}
	payload := data[headerLen : headerLen+int(n)]
	want := binary.LittleEndian.Uint32(data[headerLen+int(n):])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("%w: crc %08x, artifact declares %08x", ErrChecksum, got, want)
	}
	var m Model
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Sum returns the artifact's stored payload checksum as 8 hex digits,
// verifying the framing on the way. It is the fingerprint train reports
// and inspect prints.
func Sum(data []byte) (string, error) {
	if len(data) < headerLen+4 {
		return "", fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if [4]byte(data[:4]) != magic {
		return "", ErrMagic
	}
	return fmt.Sprintf("%08x", binary.LittleEndian.Uint32(data[len(data)-4:])), nil
}
