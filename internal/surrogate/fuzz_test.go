package surrogate

import (
	"errors"
	"testing"
)

// FuzzModelDecode drives the artifact decoder with arbitrary bytes:
// truncated, corrupted, or version-skewed artifacts must come back as one
// of the typed errors — never a panic, and never a model that fails
// validation (the journal's corrupt-refuse contract, applied to models).
func FuzzModelDecode(f *testing.F) {
	good, err := Encode(handModel())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("SURM"))
	f.Add(good[:len(good)-3])
	skew := append([]byte{}, good...)
	skew[4] = 99
	f.Add(skew)
	flip := append([]byte{}, good...)
	flip[len(flip)/2] ^= 0x40
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			if m != nil {
				t.Fatal("model returned alongside error")
			}
			for _, typed := range []error{ErrTruncated, ErrMagic, ErrVersion, ErrChecksum, ErrInvalid} {
				if errors.Is(err, typed) {
					return
				}
			}
			t.Fatalf("untyped decode error: %v", err)
		}
		// A successful decode must yield a fully valid, re-encodable model.
		if err := m.Validate(); err != nil {
			t.Fatalf("decoded model fails validation: %v", err)
		}
		if _, err := Encode(m); err != nil {
			t.Fatalf("decoded model fails re-encode: %v", err)
		}
	})
}
