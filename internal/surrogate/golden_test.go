package surrogate

import (
	"bytes"
	"context"
	"os"
	"testing"
)

const goldenModelPath = "../../testdata/golden/surrogate_model.surm"

// goldenConfig mirrors the surrogen invocation recorded in
// testdata/golden/README.md — retraining it must reproduce the committed
// artifact byte-for-byte.
func goldenConfig() TrainConfig {
	return TrainConfig{
		Years:     []int{2002, 2004, 2006, 2008},
		RPMs:      []float64{9000, 12000, 15000, 18000, 21000},
		Hardware:  []Hardware{{Platters: 1, FormFactor: "3.5-inch"}},
		Workloads: []string{"TPC-C", "Search-Engine"},
		Requests:  400,
		Folds:     3,
		Probes:    4,
	}
}

// TestGoldenModelByteIdentity retrains the committed golden's exact spec
// and requires bit-identical artifact bytes — the strongest statement of
// the training determinism contract, pinned across releases.
func TestGoldenModelByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("retrains the golden grid")
	}
	want, err := os.ReadFile(goldenModelPath)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(context.Background(), goldenConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		gotSum, _ := Sum(got)
		wantSum, _ := Sum(want)
		t.Fatalf("retrained golden differs: %d bytes checksum %s, committed %d bytes checksum %s\n"+
			"If the simulator or the trainer legitimately changed, regenerate per testdata/golden/README.md.",
			len(got), gotSum, len(want), wantSum)
	}
}

// TestGoldenModelDecodes: the committed artifact stays decodable and
// validated by the current code, and serves a mid-grid query.
func TestGoldenModelDecodes(t *testing.T) {
	blob, err := os.ReadFile(goldenModelPath)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Cells(); got != 65 {
		t.Errorf("golden cells = %d, want 65", got)
	}
	ans, err := m.Eval(Query{
		Year: 2005, RPM: 13000, Platters: 1, FormFactor: "3.5-inch", Workload: "TPC-C",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range [4]float64{ans.TempC, ans.IDRMBps, ans.MeanMillis, ans.P95Millis} {
		if v <= 0 {
			t.Errorf("channel %s = %v, want positive", Channels[i], v)
		}
	}
}
