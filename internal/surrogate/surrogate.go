// Package surrogate distills the exact roadmap engine into an
// instant-answer interpolation model, the train→serve→verify loop of an
// inference stack in miniature.
//
// The exact path (Exact.Solve) answers one roadmap query — steady-state
// temperature, internal data rate, and mean/p95 response time for a
// (year, RPM, platters, form factor, workload) point — by running the full
// simulator stack: the 4-node thermal network, the recording-layout
// derivation, and a deterministic trace replay through the disk/RAID
// simulator. That costs milliseconds to seconds per point. Train samples
// the exact engine over a deterministic grid via internal/parallel, fits a
// multilinear (optionally quadratic-refined) interpolant per output
// channel, and cross-validates the fit on seeded held-out probe points the
// grid never saw. The fitted Model answers queries in well under a
// microsecond with zero allocations, carries its cross-validation error
// report, and serializes to a versioned, checksummed, byte-deterministic
// artifact (Encode/Decode) suitable for golden-pinning.
//
// Queries outside the trained hull return ErrOutOfHull so callers can fall
// back to the exact engine; the serving layer (internal/server) counts
// those fallbacks so the fast path is never silently wrong.
package surrogate

import (
	"errors"
	"fmt"

	"repro/internal/geometry"
)

// Channel names, in the fixed order used by cross-validation reports.
const (
	ChannelTemp = "temp_c"
	ChannelIDR  = "idr_mbps"
	ChannelMean = "mean_ms"
	ChannelP95  = "p95_ms"
)

// Channels lists every output channel in report order.
var Channels = [4]string{ChannelTemp, ChannelIDR, ChannelMean, ChannelP95}

// ErrOutOfHull reports a query outside the trained grid — an unknown
// hardware combination or workload, or a year/RPM beyond the grid edges.
// Callers should answer such queries with the exact engine instead.
var ErrOutOfHull = errors.New("surrogate: query outside trained hull")

// Query is one roadmap point: the drive design (year picks the recording
// densities, RPM the spindle speed, platters+form factor the mechanical
// build) and the workload whose latency is wanted.
type Query struct {
	Year       int     `json:"year"`
	RPM        float64 `json:"rpm"`
	Platters   int     `json:"platters"`
	FormFactor string  `json:"form_factor"`
	Workload   string  `json:"workload"`
}

// Validate bounds the query to the range both engines can evaluate.
func (q Query) Validate() error {
	switch {
	case q.Year < 1990 || q.Year > 2050:
		return fmt.Errorf("surrogate: year %d outside [1990, 2050]", q.Year)
	case q.RPM <= 0 || q.RPM > 100000:
		return fmt.Errorf("surrogate: rpm %v outside (0, 100000]", q.RPM)
	case q.Platters < 1 || q.Platters > 12:
		return fmt.Errorf("surrogate: platters %d outside [1, 12]", q.Platters)
	case q.Workload == "":
		return errors.New("surrogate: empty workload")
	}
	if _, err := ParseFormFactor(q.FormFactor); err != nil {
		return err
	}
	return nil
}

// Answer is the four output channels of one query.
type Answer struct {
	TempC      float64 `json:"temp_c"`
	IDRMBps    float64 `json:"idr_mbps"`
	MeanMillis float64 `json:"mean_ms"`
	P95Millis  float64 `json:"p95_ms"`
}

// channel returns the i'th channel value in Channels order.
func (a Answer) channel(i int) float64 {
	switch i {
	case 0:
		return a.TempC
	case 1:
		return a.IDRMBps
	case 2:
		return a.MeanMillis
	default:
		return a.P95Millis
	}
}

// Hardware is one (platter count, form factor) combination of the grid.
type Hardware struct {
	Platters   int    `json:"platters"`
	FormFactor string `json:"form_factor"`
}

// ParseFormFactor maps the wire name (geometry.FormFactor.String()) back to
// the enum. Unknown names are an error, not a guess.
func ParseFormFactor(s string) (geometry.FormFactor, error) {
	for _, f := range []geometry.FormFactor{
		geometry.FormFactor35, geometry.FormFactor25, geometry.FormFactor35Tall,
	} {
		if f.String() == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("surrogate: unknown form factor %q", s)
}
