package surrogate

import (
	"bytes"
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/geometry"
)

// tinyConfig is a fast training grid shared by the package tests: one
// hardware combination, two workloads, 2×3 (year, RPM) nodes, short
// replays, and a small CV probe set.
func tinyConfig() TrainConfig {
	return TrainConfig{
		Years:     []int{2002, 2006},
		RPMs:      []float64{10000, 15000, 20000},
		Hardware:  []Hardware{{Platters: 1, FormFactor: geometry.FormFactor35.String()}},
		Workloads: []string{"TPC-C", "Search-Engine"},
		Requests:  200,
		Folds:     2,
		Probes:    3,
	}
}

func mustTrain(t *testing.T, cfg TrainConfig) *Model {
	t.Helper()
	m, err := Train(context.Background(), cfg, nil)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return m
}

func TestExactSolveFinite(t *testing.T) {
	e, err := NewExact(ExactConfig{Requests: 200})
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.Solve(Query{
		Year: 2004, RPM: 15000, Platters: 1,
		FormFactor: geometry.FormFactor35.String(), Workload: "TPC-C",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		v := a.channel(i)
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			t.Errorf("channel %s = %v, want finite positive", Channels[i], v)
		}
	}
	if a.TempC < 25 || a.TempC > 150 {
		t.Errorf("TempC = %v, outside plausible range", a.TempC)
	}
	if a.P95Millis < a.MeanMillis*0.5 {
		t.Errorf("p95 %v implausibly below mean %v", a.P95Millis, a.MeanMillis)
	}
}

func TestExactSolveRejectsBadQueries(t *testing.T) {
	e, err := NewExact(ExactConfig{Requests: 200})
	if err != nil {
		t.Fatal(err)
	}
	ok := Query{Year: 2004, RPM: 15000, Platters: 1,
		FormFactor: geometry.FormFactor35.String(), Workload: "TPC-C"}
	for name, mut := range map[string]func(Query) Query{
		"year":     func(q Query) Query { q.Year = 1800; return q },
		"rpm":      func(q Query) Query { q.RPM = -1; return q },
		"platters": func(q Query) Query { q.Platters = 0; return q },
		"ff":       func(q Query) Query { q.FormFactor = "9-inch"; return q },
		"workload": func(q Query) Query { q.Workload = "nope"; return q },
	} {
		if _, err := e.Solve(mut(ok)); err == nil {
			t.Errorf("%s: bad query accepted", name)
		}
	}
	// Too many platters for the 2.5" enclosure must fail geometry checks.
	q := ok
	q.Platters = 8
	q.FormFactor = geometry.FormFactor25.String()
	if _, err := e.Solve(q); err == nil {
		t.Error("8 platters in 2.5-inch accepted")
	}
}

func TestTrainByteIdenticalAcrossWorkers(t *testing.T) {
	var streams [2][]Cell
	var blobs [2][]byte
	for i, workers := range []int{1, 4} {
		cfg := tinyConfig()
		cfg.Workers = workers
		m, err := Train(context.Background(), cfg, func(c Cell) error {
			streams[i] = append(streams[i], c)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if blobs[i], err = Encode(m); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Error("model artifact differs between workers=1 and workers=4")
	}
	if !reflect.DeepEqual(streams[0], streams[1]) {
		t.Error("training cell stream differs between workers=1 and workers=4")
	}
	// The cell stream covers the whole grid in order.
	cfg := tinyConfig()
	wantCells := len(cfg.Hardware)*len(cfg.RPMs) + len(cfg.Workloads)*len(cfg.Years)*len(cfg.RPMs)
	if len(streams[0]) != wantCells {
		t.Errorf("got %d cells, want %d", len(streams[0]), wantCells)
	}
}

func TestModelEvalHitsGridNodes(t *testing.T) {
	m := mustTrain(t, tinyConfig())
	for yi, year := range m.Years {
		for ri, rpm := range m.RPMs {
			q := Query{Year: year, RPM: rpm, Platters: m.Hardware[0].Platters,
				FormFactor: m.Hardware[0].FormFactor, Workload: m.Workloads[1]}
			a, err := m.Eval(q)
			if err != nil {
				t.Fatalf("node (%d, %v): %v", year, rpm, err)
			}
			if got, want := a.TempC, m.TempC[0][ri]; math.Abs(got-want) > 1e-9 {
				t.Errorf("node (%d, %v): temp %v, table %v", year, rpm, got, want)
			}
			if got, want := a.IDRMBps, m.IDR[yi][ri]; math.Abs(got-want) > 1e-9 {
				t.Errorf("node (%d, %v): idr %v, table %v", year, rpm, got, want)
			}
			if got, want := a.MeanMillis, m.MeanMS[1][yi][ri]; math.Abs(got-want) > 1e-9 {
				t.Errorf("node (%d, %v): mean %v, table %v", year, rpm, got, want)
			}
		}
	}
}

func TestModelEvalMatchesExactAtNodes(t *testing.T) {
	m := mustTrain(t, tinyConfig())
	e, err := NewExact(m.ExactConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Year: m.Years[0], RPM: m.RPMs[1], Platters: m.Hardware[0].Platters,
		FormFactor: m.Hardware[0].FormFactor, Workload: m.Workloads[0]}
	sur, err := m.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := e.Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sur, exact) {
		t.Errorf("grid-node eval %+v != exact %+v", sur, exact)
	}
}

func TestEvalOutOfHull(t *testing.T) {
	m := mustTrain(t, tinyConfig())
	in := Query{Year: 2004, RPM: 12000, Platters: m.Hardware[0].Platters,
		FormFactor: m.Hardware[0].FormFactor, Workload: m.Workloads[0]}
	if _, err := m.Eval(in); err != nil {
		t.Fatalf("in-hull query rejected: %v", err)
	}
	for name, mut := range map[string]func(Query) Query{
		"year-low":  func(q Query) Query { q.Year = 2001; return q },
		"year-high": func(q Query) Query { q.Year = 2007; return q },
		"rpm-low":   func(q Query) Query { q.RPM = 9999; return q },
		"rpm-high":  func(q Query) Query { q.RPM = 20001; return q },
		"hardware":  func(q Query) Query { q.Platters = 4; return q },
		"form":      func(q Query) Query { q.FormFactor = geometry.FormFactor25.String(); return q },
		"workload":  func(q Query) Query { q.Workload = "TPC-H"; return q },
	} {
		if _, err := m.Eval(mut(in)); !errors.Is(err, ErrOutOfHull) {
			t.Errorf("%s: got %v, want ErrOutOfHull", name, err)
		}
	}
}

func TestCVReport(t *testing.T) {
	cfg := tinyConfig()
	m := mustTrain(t, cfg)
	if len(m.CV.Folds) != cfg.Folds {
		t.Fatalf("got %d folds, want %d", len(m.CV.Folds), cfg.Folds)
	}
	if len(m.CV.Overall) != 4 {
		t.Fatalf("got %d overall channels, want 4", len(m.CV.Overall))
	}
	for i, c := range m.CV.Overall {
		if c.Channel != Channels[i] {
			t.Errorf("overall[%d] channel %q, want %q", i, c.Channel, Channels[i])
		}
		if math.IsNaN(c.MaxRel) || c.MaxRel < 0 || c.MeanRel > c.MaxRel {
			t.Errorf("channel %s: bad error stats %+v", c.Channel, c)
		}
	}
	// The interpolant must track the exact engine to within a loose bound
	// even on this tiny grid; a blow-up means the fit is broken.
	if max := m.CV.MaxRel(); max > 0.5 {
		t.Errorf("CV max relative error %v implausibly large", max)
	}
	if m.CV.Channel(ChannelTemp).MaxRel > 0.05 {
		t.Errorf("temperature channel error %v above 5%%", m.CV.Channel(ChannelTemp).MaxRel)
	}
}

func TestTrainConfigRejected(t *testing.T) {
	base := tinyConfig()
	for name, mut := range map[string]func(TrainConfig) TrainConfig{
		"one-year":   func(c TrainConfig) TrainConfig { c.Years = []int{2002}; return c },
		"one-rpm":    func(c TrainConfig) TrainConfig { c.RPMs = []float64{10000}; return c },
		"no-hw":      func(c TrainConfig) TrainConfig { c.Hardware = nil; return c },
		"no-wl":      func(c TrainConfig) TrainConfig { c.Workloads = nil; return c },
		"dup-year":   func(c TrainConfig) TrainConfig { c.Years = []int{2002, 2002}; return c },
		"desc-rpm":   func(c TrainConfig) TrainConfig { c.RPMs = []float64{15000, 10000}; return c },
		"bad-ff":     func(c TrainConfig) TrainConfig { c.Hardware[0].FormFactor = "x"; return c },
		"bad-probes": func(c TrainConfig) TrainConfig { c.Probes = -1; return c },
	} {
		if _, err := Train(context.Background(), mut(base), nil); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRefineQuadraticExactOnQuadratics(t *testing.T) {
	// A quadratic-refined model must reproduce a quadratic function of RPM
	// exactly (up to float rounding) between nodes.
	f := func(x float64) float64 { return 2 + 3*x + 0.5*x*x }
	rpms := []float64{10000, 14000, 20000, 26000}
	row := make([]float64, len(rpms))
	for i, x := range rpms {
		row[i] = f(x / 1000)
	}
	m := &Model{Refine: true, RPMs: rpms}
	for _, x := range []float64{11000, 13999, 17000, 23000, 25999} {
		got := m.alongRPM(row, x)
		want := f(x / 1000)
		if math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Errorf("refined interp at %v = %v, want %v", x, got, want)
		}
	}
	// Linear mode on the same row is NOT exact mid-segment — the refined
	// path must actually be doing something different.
	m.Refine = false
	lin := m.alongRPM(row, 17000)
	if math.Abs(lin-f(17.0)) < 1e-9 {
		t.Error("linear path unexpectedly exact on a quadratic")
	}
}

func TestEvalZeroAllocs(t *testing.T) {
	m := mustTrain(t, tinyConfig())
	q := Query{Year: 2004, RPM: 13777, Platters: m.Hardware[0].Platters,
		FormFactor: m.Hardware[0].FormFactor, Workload: m.Workloads[1]}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := m.Eval(q); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Eval allocates %v per op, want 0", allocs)
	}
}

func TestParseFormFactor(t *testing.T) {
	for _, f := range []geometry.FormFactor{
		geometry.FormFactor35, geometry.FormFactor25, geometry.FormFactor35Tall,
	} {
		got, err := ParseFormFactor(f.String())
		if err != nil || got != f {
			t.Errorf("round-trip %v: got %v, %v", f, got, err)
		}
	}
	if _, err := ParseFormFactor("5.25-inch"); err == nil {
		t.Error("unknown form factor accepted")
	}
}
