package surrogate

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"

	"repro/internal/geometry"
)

func crcOf(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// handModel builds a small structurally valid model without training.
func handModel() *Model {
	return &Model{
		Diameter: 2.6, Zones: 50, Requests: 200,
		Years:     []int{2002, 2006},
		RPMs:      []float64{10000, 20000},
		Hardware:  []Hardware{{Platters: 1, FormFactor: geometry.FormFactor35.String()}},
		Workloads: []string{"TPC-C"},
		TempC:     [][]float64{{40, 60}},
		IDR:       [][]float64{{50, 100}, {80, 160}},
		MeanMS:    [][][]float64{{{5, 3}, {6, 4}}},
		P95MS:     [][][]float64{{{15, 9}, {18, 12}}},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	m := handModel()
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Error("decoded model differs from original")
	}
	// Deterministic bytes: encoding twice is identical.
	data2, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(data, data2) {
		t.Error("re-encoded bytes differ")
	}
	sum, err := Sum(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum) != 8 {
		t.Errorf("checksum %q not 8 hex digits", sum)
	}
}

func TestDecodeTypedErrors(t *testing.T) {
	good, err := Encode(handModel())
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short-header", good[:10], ErrTruncated},
		{"truncated-payload", good[:len(good)-20], ErrTruncated},
		{"missing-crc", good[:len(good)-2], ErrTruncated},
		{"bad-magic", append([]byte("NOPE"), good[4:]...), ErrMagic},
		{"trailing-bytes", append(append([]byte{}, good...), 0), ErrInvalid},
	}

	skew := append([]byte{}, good...)
	binary.LittleEndian.PutUint32(skew[4:], Version+7)
	cases = append(cases, struct {
		name string
		data []byte
		want error
	}{"version-skew", skew, ErrVersion})

	flip := append([]byte{}, good...)
	flip[headerLen+5] ^= 0xFF
	cases = append(cases, struct {
		name string
		data []byte
		want error
	}{"corrupt-payload", flip, ErrChecksum})

	// Valid framing around garbage JSON: recompute the CRC so only the
	// payload is wrong.
	garbage := []byte("{not json")
	g := make([]byte, headerLen+len(garbage)+4)
	copy(g, good[:8])
	binary.LittleEndian.PutUint64(g[8:], uint64(len(garbage)))
	copy(g[headerLen:], garbage)
	binary.LittleEndian.PutUint32(g[headerLen+len(garbage):], crcOf(garbage))
	cases = append(cases, struct {
		name string
		data []byte
		want error
	}{"garbage-json", g, ErrInvalid})

	for _, c := range cases {
		m, err := Decode(c.data)
		if !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
		if m != nil {
			t.Errorf("%s: returned a model alongside the error", c.name)
		}
	}
}

func TestDecodeRefusesInvalidModel(t *testing.T) {
	// Structurally broken models must be refused at both ends.
	m := handModel()
	m.RPMs = []float64{20000, 10000} // descending
	if _, err := Encode(m); !errors.Is(err, ErrInvalid) {
		t.Errorf("Encode of invalid model: got %v, want ErrInvalid", err)
	}
	// Bypass Encode's validation by hand-framing the payload.
	payload := []byte(`{"diameter_in":2.6,"zones":50,"requests":200,"years":[2002],"rpms":[10000],"hardware":[],"workloads":[]}`)
	data := make([]byte, headerLen+len(payload)+4)
	copy(data, magic[:])
	binary.LittleEndian.PutUint32(data[4:], Version)
	binary.LittleEndian.PutUint64(data[8:], uint64(len(payload)))
	copy(data[headerLen:], payload)
	binary.LittleEndian.PutUint32(data[headerLen+len(payload):], crcOf(payload))
	if _, err := Decode(data); !errors.Is(err, ErrInvalid) {
		t.Errorf("Decode of invalid model: got %v, want ErrInvalid", err)
	}
}

func TestSumErrors(t *testing.T) {
	if _, err := Sum([]byte("short")); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v", err)
	}
	bad := make([]byte, 64)
	if _, err := Sum(bad); !errors.Is(err, ErrMagic) {
		t.Errorf("bad magic: %v", err)
	}
}
