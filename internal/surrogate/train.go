package surrogate

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/parallel"
	"repro/internal/perf"
	"repro/internal/thermal"
	"repro/internal/units"
)

// Training defaults.
const (
	DefaultFolds  = 5
	DefaultProbes = 8
	DefaultSeed   = 1

	// trainWindow is the fixed streaming-window size for the expensive
	// latency cells: each window fans out over the worker pool, then its
	// results are reported in input order. The window size is a constant
	// (never worker-derived) so the emitted cell stream — and therefore a
	// training job's journal — is byte-identical at any worker count.
	trainWindow = 16
)

// TrainConfig describes the sampling grid and fitting options.
type TrainConfig struct {
	// Grid axes. Years and RPMs must be strictly ascending with at least
	// two nodes each; Hardware and Workloads must be non-empty.
	Years     []int
	RPMs      []float64
	Hardware  []Hardware
	Workloads []string

	// Exact-engine knobs (see ExactConfig; zero means default).
	Requests int
	Zones    int
	Diameter float64

	// Refine enables quadratic interpolation along the RPM axis.
	Refine bool

	// Cross-validation: Folds held-out probe batches of Probes seeded
	// off-grid queries each (zero means DefaultFolds/DefaultProbes), with
	// probe placement driven by Seed (zero means DefaultSeed).
	Folds  int
	Probes int
	Seed   int64

	// Workers bounds the sampling fan-out (<= 0 uses parallel.Default()).
	Workers int
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Folds == 0 {
		c.Folds = DefaultFolds
	}
	if c.Probes == 0 {
		c.Probes = DefaultProbes
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c
}

func (c TrainConfig) validate() error {
	switch {
	case len(c.Years) < 2:
		return fmt.Errorf("surrogate: %d year nodes (need >= 2)", len(c.Years))
	case len(c.RPMs) < 2:
		return fmt.Errorf("surrogate: %d rpm nodes (need >= 2)", len(c.RPMs))
	case len(c.Hardware) == 0:
		return fmt.Errorf("surrogate: no hardware combinations")
	case len(c.Workloads) == 0:
		return fmt.Errorf("surrogate: no workloads")
	case c.Folds < 1 || c.Folds > 16:
		return fmt.Errorf("surrogate: folds %d outside [1, 16]", c.Folds)
	case c.Probes < 1 || c.Probes > 256:
		return fmt.Errorf("surrogate: probes %d outside [1, 256]", c.Probes)
	}
	if !sort.IntsAreSorted(c.Years) || !sort.Float64sAreSorted(c.RPMs) {
		return fmt.Errorf("surrogate: grid axes must be ascending")
	}
	for i := 1; i < len(c.Years); i++ {
		if c.Years[i] == c.Years[i-1] {
			return fmt.Errorf("surrogate: duplicate year node %d", c.Years[i])
		}
	}
	for i := 1; i < len(c.RPMs); i++ {
		if c.RPMs[i] == c.RPMs[i-1] {
			return fmt.Errorf("surrogate: duplicate rpm node %v", c.RPMs[i])
		}
	}
	// Every grid corner must be a valid query; a bad grid must fail here,
	// not be silently baked into a model.
	for _, h := range c.Hardware {
		for _, yr := range []int{c.Years[0], c.Years[len(c.Years)-1]} {
			for _, rpm := range []float64{c.RPMs[0], c.RPMs[len(c.RPMs)-1]} {
				q := Query{Year: yr, RPM: rpm, Platters: h.Platters,
					FormFactor: h.FormFactor, Workload: c.Workloads[0]}
				if err := q.Validate(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Validate reports whether the config (after defaults) is trainable —
// the admission-control check serving layers run before accepting a job.
func (c TrainConfig) Validate() error {
	return c.withDefaults().validate()
}

// LatencyCells returns the number of expensive replay cells the grid
// implies (for work-size caps).
func (c TrainConfig) LatencyCells() int {
	return len(c.Workloads) * len(c.Years) * len(c.RPMs)
}

// Cell is one sampled grid point, streamed to the progress callback in a
// fixed order (temperature cells first, then latency cells; each axis in
// config order) regardless of worker count.
type Cell struct {
	Kind       string  `json:"kind"` // "temp" or "latency"
	Index      int     `json:"index"`
	Total      int     `json:"total"`
	Workload   string  `json:"workload,omitempty"`
	Year       int     `json:"year,omitempty"`
	RPM        float64 `json:"rpm"`
	Platters   int     `json:"platters,omitempty"`
	FormFactor string  `json:"form_factor,omitempty"`
	TempC      float64 `json:"temp_c,omitempty"`
	MeanMillis float64 `json:"mean_ms,omitempty"`
	P95Millis  float64 `json:"p95_ms,omitempty"`
}

// Train samples the exact engine over the configured grid, fits the
// interpolation tables, and cross-validates the fit on seeded held-out
// probes. The progress callback (may be nil) receives every sampled cell
// in deterministic order; returning an error from it aborts the run. The
// returned model is byte-identical for a given config at any worker count.
func Train(ctx context.Context, cfg TrainConfig, progress func(Cell) error) (*Model, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	exact, err := NewExact(ExactConfig{Requests: cfg.Requests, Zones: cfg.Zones, Diameter: cfg.Diameter})
	if err != nil {
		return nil, err
	}
	ecfg := exact.Config()
	m := &Model{
		Diameter:  ecfg.Diameter,
		Zones:     ecfg.Zones,
		Requests:  ecfg.Requests,
		Refine:    cfg.Refine,
		Years:     append([]int(nil), cfg.Years...),
		RPMs:      append([]float64(nil), cfg.RPMs...),
		Hardware:  append([]Hardware(nil), cfg.Hardware...),
		Workloads: append([]string(nil), cfg.Workloads...),
	}

	if err := sampleTemp(ctx, cfg, exact, m, progress); err != nil {
		return nil, err
	}
	if err := sampleIDR(exact, m); err != nil {
		return nil, err
	}
	if err := sampleLatency(ctx, cfg, exact, m, progress); err != nil {
		return nil, err
	}

	rep, err := crossValidate(ctx, cfg, exact, m)
	if err != nil {
		return nil, err
	}
	m.CV = rep

	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// sampleTemp fills TempC[h][r] with steady-state worst-case air
// temperatures. Thermal solves are cheap; one fan-out covers the grid.
func sampleTemp(ctx context.Context, cfg TrainConfig, exact *Exact, m *Model, progress func(Cell) error) error {
	type tcell struct {
		h, r int
	}
	cells := make([]tcell, 0, len(m.Hardware)*len(m.RPMs))
	for h := range m.Hardware {
		for r := range m.RPMs {
			cells = append(cells, tcell{h, r})
		}
	}
	vals, err := parallel.MapCtx(ctx, cfg.Workers, cells, func(_ int, c tcell) (float64, error) {
		hw := m.Hardware[c.h]
		ff, err := ParseFormFactor(hw.FormFactor)
		if err != nil {
			return 0, err
		}
		tm, err := exact.thermalModel(hw.Platters, ff)
		if err != nil {
			return 0, err
		}
		st := tm.SteadyState(thermal.WorstCase(units.RPM(m.RPMs[c.r])))
		return float64(st.Air), nil
	})
	if err != nil {
		return err
	}
	m.TempC = make([][]float64, len(m.Hardware))
	for h := range m.TempC {
		m.TempC[h] = make([]float64, len(m.RPMs))
	}
	for i, c := range cells {
		m.TempC[c.h][c.r] = vals[i]
		if progress != nil {
			hw := m.Hardware[c.h]
			if err := progress(Cell{
				Kind: "temp", Index: i, Total: len(cells),
				RPM: m.RPMs[c.r], Platters: hw.Platters, FormFactor: hw.FormFactor,
				TempC: vals[i],
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// sampleIDR fills IDR[y][r]; the layout derivations are memoized and the
// data-rate formula is closed-form, so no fan-out is needed.
func sampleIDR(exact *Exact, m *Model) error {
	m.IDR = make([][]float64, len(m.Years))
	for y, year := range m.Years {
		m.IDR[y] = make([]float64, len(m.RPMs))
		layout, err := exact.layoutFor(year)
		if err != nil {
			return err
		}
		for r, rpm := range m.RPMs {
			m.IDR[y][r] = float64(perf.IDR(layout, units.RPM(rpm)))
		}
	}
	return nil
}

// sampleLatency fills MeanMS/P95MS by replaying each (workload, year)
// trace at every RPM node. Cells stream through fixed-size windows: fan
// out, then report in input order, so the cell stream is byte-identical at
// any worker count.
func sampleLatency(ctx context.Context, cfg TrainConfig, exact *Exact, m *Model, progress func(Cell) error) error {
	type lcell struct {
		w, y, r int
	}
	cells := make([]lcell, 0, len(m.Workloads)*len(m.Years)*len(m.RPMs))
	for w := range m.Workloads {
		for y := range m.Years {
			for r := range m.RPMs {
				cells = append(cells, lcell{w, y, r})
			}
		}
	}
	m.MeanMS = make([][][]float64, len(m.Workloads))
	m.P95MS = make([][][]float64, len(m.Workloads))
	for w := range m.Workloads {
		m.MeanMS[w] = make([][]float64, len(m.Years))
		m.P95MS[w] = make([][]float64, len(m.Years))
		for y := range m.Years {
			m.MeanMS[w][y] = make([]float64, len(m.RPMs))
			m.P95MS[w][y] = make([]float64, len(m.RPMs))
		}
	}
	hw := m.Hardware[0]
	for start := 0; start < len(cells); start += trainWindow {
		end := min(start+trainWindow, len(cells))
		window := cells[start:end]
		vals, err := parallel.MapCtx(ctx, cfg.Workers, window, func(_ int, c lcell) (Answer, error) {
			return exact.Solve(Query{
				Year: m.Years[c.y], RPM: m.RPMs[c.r],
				Platters: hw.Platters, FormFactor: hw.FormFactor,
				Workload: m.Workloads[c.w],
			})
		})
		if err != nil {
			return err
		}
		for i, c := range window {
			m.MeanMS[c.w][c.y][c.r] = vals[i].MeanMillis
			m.P95MS[c.w][c.y][c.r] = vals[i].P95Millis
			if progress != nil {
				if err := progress(Cell{
					Kind: "latency", Index: start + i, Total: len(cells),
					Workload: m.Workloads[c.w], Year: m.Years[c.y], RPM: m.RPMs[c.r],
					MeanMillis: vals[i].MeanMillis, P95Millis: vals[i].P95Millis,
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// relFloors guard the relative-error denominators: channels near zero
// would otherwise report meaningless blow-ups. Units: °C, MB/s, ms, ms.
var relFloors = [4]float64{1, 1, 0.5, 0.5}

// crossValidate measures the fitted model against held-out exact runs:
// Folds batches of Probes seeded queries placed off-grid inside the hull
// (integer years, continuous RPM). Each fold reports max/mean relative
// error per channel; the overall block aggregates every probe.
func crossValidate(ctx context.Context, cfg TrainConfig, exact *Exact, m *Model) (Report, error) {
	rep := Report{Seed: cfg.Seed, Probes: cfg.Folds * cfg.Probes}
	var overall [4]errAgg
	for fold := 0; fold < cfg.Folds; fold++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(fold)))
		probes := make([]Query, cfg.Probes)
		for i := range probes {
			hw := m.Hardware[rng.Intn(len(m.Hardware))]
			minY, maxY := m.Years[0], m.Years[len(m.Years)-1]
			minR, maxR := m.RPMs[0], m.RPMs[len(m.RPMs)-1]
			probes[i] = Query{
				Year:       minY + rng.Intn(maxY-minY+1),
				RPM:        minR + rng.Float64()*(maxR-minR),
				Platters:   hw.Platters,
				FormFactor: hw.FormFactor,
				Workload:   m.Workloads[rng.Intn(len(m.Workloads))],
			}
		}
		exactAns, err := parallel.MapCtx(ctx, cfg.Workers, probes, func(_ int, q Query) (Answer, error) {
			return exact.Solve(q)
		})
		if err != nil {
			return Report{}, err
		}
		var agg [4]errAgg
		for i, q := range probes {
			sur, err := m.Eval(q)
			if err != nil {
				return Report{}, fmt.Errorf("surrogate: probe inside hull rejected: %w", err)
			}
			for ch := 0; ch < 4; ch++ {
				e := exactAns[i].channel(ch)
				rel := math.Abs(sur.channel(ch)-e) / math.Max(math.Abs(e), relFloors[ch])
				agg[ch].add(rel)
				overall[ch].add(rel)
			}
		}
		fr := FoldReport{Fold: fold, Probes: cfg.Probes}
		for ch := 0; ch < 4; ch++ {
			fr.Channels = append(fr.Channels, agg[ch].report(Channels[ch]))
		}
		rep.Folds = append(rep.Folds, fr)
	}
	for ch := 0; ch < 4; ch++ {
		rep.Overall = append(rep.Overall, overall[ch].report(Channels[ch]))
	}
	return rep, nil
}

// errAgg accumulates relative errors.
type errAgg struct {
	max, sum float64
	n        int
}

func (a *errAgg) add(rel float64) {
	if rel > a.max {
		a.max = rel
	}
	a.sum += rel
	a.n++
}

func (a *errAgg) report(channel string) ChannelError {
	ce := ChannelError{Channel: channel, MaxRel: a.max}
	if a.n > 0 {
		ce.MeanRel = a.sum / float64(a.n)
	}
	return ce
}
