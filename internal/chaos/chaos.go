// Package chaos is the seeded fault-injection layer behind the robustness
// suite: worker panics, journal write errors (partial writes, fsync
// failures), stalled jobs and dropped connections, all reproducible from a
// seed. Production code carries a nil *Chaos and pays one nil check; tests
// arm specific operations by name and the same seed yields the same fault
// schedule every run.
package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/journal"
)

// Chaos decides, per named operation, whether this invocation fails. Two
// arming modes compose: Prob(op, p) fails a seeded fraction of calls;
// On(op, nth) fails exactly the nth call (1-based), which tests use to
// place a fault deterministically.
type Chaos struct {
	mu    sync.Mutex
	rng   *rand.Rand
	prob  map[string]float64
	on    map[string]map[int]bool
	calls map[string]int
	fired map[string]int
}

// New returns a Chaos seeded for reproducibility. A nil *Chaos is valid
// everywhere and never fires.
func New(seed int64) *Chaos {
	return &Chaos{
		rng:   rand.New(rand.NewSource(seed)),
		prob:  make(map[string]float64),
		on:    make(map[string]map[int]bool),
		calls: make(map[string]int),
		fired: make(map[string]int),
	}
}

// Prob arms op to fail with probability p on every call.
func (c *Chaos) Prob(op string, p float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.prob[op] = p
}

// On arms op to fail on its nth invocation (1-based). Repeat for several.
func (c *Chaos) On(op string, nth int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.on[op] == nil {
		c.on[op] = make(map[int]bool)
	}
	c.on[op][nth] = true
}

// Fired reports how many times op has failed.
func (c *Chaos) Fired(op string) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired[op]
}

// Calls reports how many times op was consulted.
func (c *Chaos) Calls(op string) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls[op]
}

// Fire consults the schedule for op. Nil-safe: a nil receiver never fires.
func (c *Chaos) Fire(op string) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls[op]++
	hit := c.on[op][c.calls[op]]
	if !hit {
		if p := c.prob[op]; p > 0 && c.rng.Float64() < p {
			hit = true
		}
	}
	if hit {
		c.fired[op]++
	}
	return hit
}

// Err returns an injected error when op fires, nil otherwise.
func (c *Chaos) Err(op string) error {
	if c.Fire(op) {
		return fmt.Errorf("chaos: injected %s failure", op)
	}
	return nil
}

// Stall sleeps d when op fires (or until ctx ends), modelling a slow or
// wedged dependency.
func (c *Chaos) Stall(ctx context.Context, op string, d time.Duration) {
	if !c.Fire(op) {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Journal file fault operations, consulted by File.
const (
	OpWrite        = "journal.write"         // whole write fails, nothing lands
	OpWritePartial = "journal.write.partial" // half the bytes land, then error
	OpSync         = "journal.sync"          // fsync fails after a clean write
)

// File wraps a journal file with write/sync fault injection. Wire it via
// journal.Options.WrapFile.
type File struct {
	F journal.File
	C *Chaos
}

func (f *File) Write(p []byte) (int, error) {
	if f.C.Fire(OpWritePartial) {
		n, err := f.F.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("chaos: injected partial write (%d/%d bytes)", n, len(p))
	}
	if err := f.C.Err(OpWrite); err != nil {
		return 0, err
	}
	return f.F.Write(p)
}

func (f *File) Sync() error {
	if err := f.C.Err(OpSync); err != nil {
		return err
	}
	return f.F.Sync()
}

func (f *File) Truncate(size int64) error { return f.F.Truncate(size) }
func (f *File) Close() error              { return f.F.Close() }

// Seek forwards to the wrapped file when it supports seeking, which the
// journal's rollback path needs after a truncation.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	if s, ok := f.F.(interface {
		Seek(offset int64, whence int) (int64, error)
	}); ok {
		return s.Seek(offset, whence)
	}
	return 0, fmt.Errorf("chaos: wrapped file does not seek")
}

// DropConns wraps an HTTP handler: when op fires, the client's connection
// is severed mid-request instead of receiving a response — the
// "connection drop mid-stream" fault the retrying client must survive.
func DropConns(c *Chaos, op string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if c.Fire(op) {
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			// Recorders and HTTP/2 can't hijack; panicking with
			// ErrAbortHandler aborts the response without a reply, the
			// closest equivalent.
			panic(http.ErrAbortHandler)
		}
		h.ServeHTTP(w, r)
	})
}
