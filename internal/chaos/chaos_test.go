package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/journal"
)

func TestNilChaosNeverFires(t *testing.T) {
	var c *Chaos
	for i := 0; i < 100; i++ {
		if c.Fire("anything") {
			t.Fatal("nil chaos fired")
		}
	}
	if c.Err("x") != nil || c.Fired("x") != 0 || c.Calls("x") != 0 {
		t.Fatal("nil chaos not inert")
	}
}

func TestOnFiresExactNth(t *testing.T) {
	c := New(1)
	c.On("op", 3)
	c.On("op", 5)
	var fired []int
	for i := 1; i <= 6; i++ {
		if c.Fire("op") {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 5 {
		t.Fatalf("fired on calls %v, want [3 5]", fired)
	}
	if c.Fired("op") != 2 || c.Calls("op") != 6 {
		t.Fatalf("counters = %d fired / %d calls", c.Fired("op"), c.Calls("op"))
	}
}

func TestProbIsSeededDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		c := New(seed)
		c.Prob("op", 0.3)
		out := make([]bool, 50)
		for i := range out {
			out[i] = c.Fire("op")
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	anyFired := false
	for _, v := range a {
		anyFired = anyFired || v
	}
	if !anyFired {
		t.Fatal("p=0.3 over 50 calls never fired")
	}
}

// TestJournalSurvivesInjectedWriteFaults is the contract the server's
// durability relies on: a partial write or fsync failure fails that append
// loudly, rolls the log back, and the next append lands cleanly — replay
// never sees a torn or half-applied record in the middle of the file.
func TestJournalSurvivesInjectedWriteFaults(t *testing.T) {
	for _, op := range []string{OpWrite, OpWritePartial, OpSync} {
		t.Run(op, func(t *testing.T) {
			dir := t.TempDir()
			c := New(7)
			c.On(op, opFaultCall(op, 2)) // fault the second append
			j, _, err := journal.Open(dir, journal.Options{
				WrapFile: func(f *os.File) journal.File { return &File{F: f, C: c} },
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := j.Append(journal.Record{Kind: journal.KindSubmit, Job: "job-1"}); err != nil {
				t.Fatalf("first append: %v", err)
			}
			if err := j.Append(journal.Record{Kind: journal.KindSubmit, Job: "job-2"}); err == nil {
				t.Fatal("faulted append succeeded")
			}
			if err := j.Append(journal.Record{Kind: journal.KindSubmit, Job: "job-3"}); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			j.Close()

			j2, recs, err := journal.Open(dir, journal.Options{})
			if err != nil {
				t.Fatal(err)
			}
			j2.Close()
			if len(recs) != 2 || recs[0].Job != "job-1" || recs[1].Job != "job-3" {
				t.Fatalf("replay after %s fault = %+v, want job-1,job-3", op, recs)
			}
		})
	}
}

// opFaultCall maps "the nth Append" to the right call index for each op:
// sync faults are consulted once per commit, write faults once per write.
func opFaultCall(op string, nthAppend int) int { return nthAppend }

func TestDropConnsSeversConnection(t *testing.T) {
	c := New(3)
	c.On("http.drop", 1)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	srv := httptest.NewServer(DropConns(c, "http.drop", inner))
	defer srv.Close()

	_, err := http.Get(srv.URL)
	if err == nil {
		t.Fatal("dropped connection produced a response")
	}
	var urlErr interface{ Unwrap() error }
	if !errors.As(err, &urlErr) {
		t.Fatalf("unexpected error shape: %v", err)
	}
	// Second request goes through.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("body = %q", body)
	}
}

func TestFileTruncatePassthrough(t *testing.T) {
	dir := t.TempDir()
	raw, err := os.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	f := &File{F: raw, C: New(1)}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hey" {
		t.Fatalf("file = %q, want hey", data)
	}
}
