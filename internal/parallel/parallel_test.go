package parallel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrdering pins the core contract: results land in input order for
// every worker count, including counts past the item count and the
// sequential degenerate case.
func TestMapOrdering(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{0, 1, 2, 3, 7, 100, 1000} {
		workers := workers
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			got, err := Map(workers, items, func(i, v int) (int, error) {
				if i != v {
					t.Errorf("fn saw index %d for item %d", i, v)
				}
				// Stagger completions so out-of-order finishes are likely.
				if i%3 == 0 {
					time.Sleep(time.Duration(i%5) * 100 * time.Microsecond)
				}
				return v * v, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(items) {
				t.Fatalf("got %d results, want %d", len(got), len(items))
			}
			for i, r := range got {
				if r != i*i {
					t.Errorf("result[%d] = %d, want %d", i, r, i*i)
				}
			}
		})
	}
}

// TestMapEmpty returns an empty, non-nil slice without spawning workers.
func TestMapEmpty(t *testing.T) {
	got, err := Map(4, nil, func(i, v int) (int, error) { return 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || len(got) != 0 {
		t.Fatalf("want empty slice, got %#v", got)
	}
}

// TestMapFirstError verifies errgroup-style cancellation: the reported error
// belongs to the lowest-indexed failing item, the result slice is nil, and
// items beyond the failure are (mostly) never started.
func TestMapFirstError(t *testing.T) {
	errBoom := errors.New("boom")
	items := make([]int, 200)
	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			var started atomic.Int64
			got, err := Map(workers, items, func(i, _ int) (int, error) {
				started.Add(1)
				if i == 5 || i == 17 {
					return 0, fmt.Errorf("item %d: %w", i, errBoom)
				}
				// Slow the healthy items so the failure at index 5 lands
				// while most of the list is still unclaimed.
				time.Sleep(time.Millisecond)
				return i, nil
			})
			if got != nil {
				t.Errorf("results must be nil on error, got %v", got)
			}
			if !errors.Is(err, errBoom) {
				t.Fatalf("want boom, got %v", err)
			}
			// Both failures may run concurrently, but the lowest index wins.
			if want := "item 5:"; !strings.Contains(err.Error(), want) {
				t.Errorf("error %q should name the lowest failed item (%s)", err, want)
			}
			if n := started.Load(); n > int64(len(items)/2) {
				t.Errorf("cancellation leaked: %d of %d items started (workers=%d)",
					n, len(items), workers)
			}
		})
	}
}

// TestMapPanicPropagation: a panicking item must surface on the caller's
// goroutine, naming the item, with the pool fully drained first.
func TestMapPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			defer func() {
				v := recover()
				if v == nil {
					t.Fatal("expected a propagated panic")
				}
				msg := fmt.Sprint(v)
				if !strings.Contains(msg, "panicked") || !strings.Contains(msg, "kaboom") {
					t.Errorf("panic %q should wrap the original value", msg)
				}
			}()
			_, _ = Map(workers, []int{0, 1, 2, 3}, func(i, _ int) (int, error) {
				if i == 2 {
					panic("kaboom")
				}
				return i, nil
			})
			t.Fatal("Map returned instead of panicking")
		})
	}
}

// TestMapWorkerBound proves the pool is actually bounded: with W workers the
// peak in-flight count never exceeds W.
func TestMapWorkerBound(t *testing.T) {
	const workers = 3
	var inflight, peak atomic.Int64
	items := make([]int, 64)
	_, err := Map(workers, items, func(int, int) (int, error) {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		inflight.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds the %d-worker bound", p, workers)
	}
}

// TestGrid checks the row-major reshape and the index plumbing.
func TestGrid(t *testing.T) {
	rows := []string{"a", "b", "c"}
	cols := []int{10, 20}
	got, err := Grid(4, rows, cols, func(i, j int, r string, c int) (string, error) {
		return fmt.Sprintf("%s%d@%d,%d", r, c, i, j), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("got %d rows, want %d", len(got), len(rows))
	}
	for i, r := range rows {
		if len(got[i]) != len(cols) {
			t.Fatalf("row %d has %d cells, want %d", i, len(got[i]), len(cols))
		}
		for j, c := range cols {
			want := fmt.Sprintf("%s%d@%d,%d", r, c, i, j)
			if got[i][j] != want {
				t.Errorf("cell (%d,%d) = %q, want %q", i, j, got[i][j], want)
			}
		}
	}
}

// TestGridError propagates a cell failure.
func TestGridError(t *testing.T) {
	_, err := Grid(2, []int{0, 1}, []int{0, 1}, func(i, j, _, _ int) (int, error) {
		if i == 1 && j == 1 {
			return 0, errors.New("bad cell")
		}
		return 0, nil
	})
	if err == nil || !strings.Contains(err.Error(), "bad cell") {
		t.Fatalf("want cell error, got %v", err)
	}
}

// TestGridEmpty handles degenerate shapes.
func TestGridEmpty(t *testing.T) {
	got, err := Grid(2, []int{1, 2}, []int(nil), func(i, j, a, b int) (int, error) { return 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("want one (empty) row per input row, got %d", len(got))
	}
}

// TestDefaultPositive guards the workers<=0 fallback.
func TestDefaultPositive(t *testing.T) {
	if Default() < 1 {
		t.Fatalf("Default() = %d", Default())
	}
}

func TestMapCtxComplete(t *testing.T) {
	out, err := MapCtx(context.Background(), 4, []int{1, 2, 3}, func(i, v int) (int, error) {
		return v * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0] != 10 || out[2] != 30 {
		t.Fatalf("out = %v", out)
	}
}

func TestMapCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	_, err := MapCtx(ctx, 2, make([]int, 100), func(i, v int) (int, error) {
		once.Do(func() { cancel(); close(started) })
		<-started
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapCtxItemErrorWins(t *testing.T) {
	boom := errors.New("boom")
	_, err := MapCtx(context.Background(), 2, []int{1, 2}, func(i, v int) (int, error) {
		if i == 1 {
			return 0, boom
		}
		return v, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want item error when ctx is live", err)
	}
}
