package parallel

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Metrics is the sweep engine's instrumentation hook, installed globally
// with SetMetrics (the pool has no per-call handle to thread one through).
// Runs/Items/Errors are deterministic — they count work submitted, which is
// the same at every worker count. BusyNanos and Workers measure wall-clock
// utilization and pool width, which legitimately vary run to run, so they
// are registered volatile: Registry.Stable drops them from golden-compared
// snapshots while live Prometheus scrapes still see them.
type Metrics struct {
	Runs      *obs.Counter // Map/Grid invocations
	Items     *obs.Counter // items started
	Errors    *obs.Counter // items that returned an error
	BusyNanos *obs.Counter // volatile: summed wall-clock item time
	Workers   *obs.Gauge   // volatile: peak pool width observed
}

// NewMetrics registers the sweep-engine series on reg (nil reg → nil, the
// disabled state) without installing them; pass the result to SetMetrics.
func NewMetrics(reg *obs.Registry, labels ...string) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Runs:      reg.Counter("parallel_runs_total", labels...),
		Items:     reg.Counter("parallel_items_total", labels...),
		Errors:    reg.Counter("parallel_item_errors_total", labels...),
		BusyNanos: reg.VolatileCounter("parallel_busy_ns_total", labels...),
		Workers:   reg.VolatileGauge("parallel_workers_peak", labels...),
	}
}

// metrics is the installed hook; nil (the default) keeps Map free: one
// atomic load per call, no allocation, no per-item work.
var metrics atomic.Pointer[Metrics]

// SetMetrics installs (or, with nil, removes) the global sweep-engine
// metrics hook. Safe to call concurrently with running sweeps; in-flight
// Map calls keep the hook they loaded at entry.
func SetMetrics(m *Metrics) { metrics.Store(m) }

// noteRun records one Map invocation on the installed hook.
func noteRun(m *Metrics, items, workers int) {
	if m == nil {
		return
	}
	m.Runs.Inc()
	m.Items.Add(int64(items))
	m.Workers.Max(float64(workers))
}

// noteItem records one finished item's wall-clock time and error outcome.
func noteItem(m *Metrics, start time.Time, failed bool) {
	if m == nil {
		return
	}
	m.BusyNanos.Add(time.Since(start).Nanoseconds())
	if failed {
		m.Errors.Inc()
	}
}

// now avoids the time.Now call entirely when metrics are off — the
// disabled path must not touch the clock.
func now(m *Metrics) time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}
