// Package parallel is the sweep engine behind every grid the paper reports:
// Figure 4 is workloads x RPM steps, Table 3 and the roadmap are years x
// candidate designs, and the reliability studies are batches of seeded
// Monte Carlo trials. Each cell of those grids is an independent simulation,
// so the engine fans them out over a bounded worker pool and hands the
// results back in input order — callers observe exactly the sequential
// contract (same values, same order) regardless of how completions
// interleave, which is what lets the bit-identity tests in
// internal/integration compare a -workers 1 run against a saturated one.
//
// Cancellation is errgroup-style: the first error stops workers from
// starting new items (in-flight items finish), and Map returns the error of
// the lowest-indexed failed item so the reported failure does not depend on
// goroutine scheduling. A panicking item is re-panicked on the caller's
// goroutine after the pool drains, preserving the crash instead of
// deadlocking or leaking it onto a worker.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Default is the worker count used when a caller passes workers <= 0:
// GOMAXPROCS, i.e. saturate the machine.
func Default() int { return runtime.GOMAXPROCS(0) }

// clamp resolves a requested worker count against the item count.
func clamp(workers, items int) int {
	if workers <= 0 {
		workers = Default()
	}
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// itemPanic wraps a panic recovered from a worker so the re-panic on the
// caller's goroutine still names the item that crashed.
type itemPanic struct {
	index int
	value any
}

func (p itemPanic) String() string {
	return fmt.Sprintf("parallel: item %d panicked: %v", p.index, p.value)
}

// callItem invokes fn on one item, converting a panic into the same wrapped
// itemPanic the pool raises, so crashes read identically at every worker
// count.
func callItem[T, R any](fn func(int, T) (R, error), i int, item T) (r R, err error) {
	defer func() {
		if v := recover(); v != nil {
			if ip, ok := v.(itemPanic); ok {
				panic(ip) // already wrapped by a nested Map
			}
			panic(itemPanic{index: i, value: v})
		}
	}()
	return fn(i, item)
}

// Map applies fn to every item on a pool of at most `workers` goroutines
// (workers <= 0 means Default()) and returns the results in input order.
//
// fn receives the item's index and value; it must be safe to call
// concurrently with itself on distinct items. On the first error no new
// items are started and Map returns the error of the lowest-indexed item
// that failed, with a nil result slice. If fn panics, the panic is
// re-raised on the caller's goroutine once in-flight items have drained.
//
// workers == 1 (or a single item) degenerates to a plain sequential loop on
// the calling goroutine — the reference the equivalence tests compare
// against.
func Map[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	n := len(items)
	if n == 0 {
		return []R{}, nil
	}
	workers = clamp(workers, n)
	mtr := metrics.Load()
	noteRun(mtr, n, workers)

	results := make([]R, n)
	if workers == 1 {
		for i, it := range items {
			start := now(mtr)
			r, err := callItem(fn, i, it)
			noteItem(mtr, start, err != nil)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	var (
		next     atomic.Int64 // next item index to claim
		stopped  atomic.Bool  // set on first error: stop claiming items
		mu       sync.Mutex
		firstErr error
		errIndex = n // lowest failed index seen so far
		panicked *itemPanic
		wg       sync.WaitGroup
	)

	record := func(i int, err error) {
		mu.Lock()
		if i < errIndex {
			errIndex, firstErr = i, err
		}
		mu.Unlock()
		stopped.Store(true)
	}

	worker := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= n || stopped.Load() {
				return
			}
			func() {
				start := now(mtr)
				defer func() {
					if v := recover(); v != nil {
						ip, ok := v.(itemPanic)
						if !ok {
							ip = itemPanic{index: i, value: v}
						}
						mu.Lock()
						if panicked == nil {
							panicked = &ip
						}
						mu.Unlock()
						stopped.Store(true)
					}
				}()
				r, err := fn(i, items[i])
				noteItem(mtr, start, err != nil)
				if err != nil {
					record(i, err)
					return
				}
				results[i] = r
			}()
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()

	if panicked != nil {
		panic(*panicked)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// MapCtx is Map with cooperative cancellation: once ctx is done no new
// items start (in-flight items finish, exactly the first-error discipline)
// and MapCtx returns ctx.Err() with a nil result slice. It is the serving
// layer's per-job cancellation hook — a DELETE'd or deadline-expired job
// stops claiming sweep cells at the next item boundary. With a
// never-cancelled context the call is Map plus one nil-error check per
// item, so results stay bit-identical at every worker count.
func MapCtx[T, R any](ctx context.Context, workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out, err := Map(workers, items, func(i int, item T) (R, error) {
		if cerr := ctx.Err(); cerr != nil {
			var zero R
			return zero, cerr
		}
		return fn(i, item)
	})
	if err == nil {
		// Every item finished; a cancellation racing the tail changes
		// nothing, the results are complete and valid.
		return out, nil
	}
	// Map surfaces the lowest-indexed failure, which under cancellation is
	// whichever item's ctx check fired first; normalize to ctx.Err() so
	// callers distinguish "cancelled" from a genuine item error.
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	return nil, err
}

// Grid evaluates fn over the full cross product rows x cols and returns the
// results as one row-major slice per row — cell (i, j) of the returned grid
// is fn(i, j, rows[i], cols[j]). The cells are scheduled as one flat work
// list on the shared pool, so a grid with few rows still saturates every
// worker. Ordering, cancellation, and panic semantics match Map.
func Grid[A, B, R any](workers int, rows []A, cols []B, fn func(i, j int, row A, col B) (R, error)) ([][]R, error) {
	nc := len(cols)
	if len(rows) == 0 || nc == 0 {
		return make([][]R, len(rows)), nil
	}
	type cell struct{ i, j int }
	cells := make([]cell, 0, len(rows)*nc)
	for i := range rows {
		for j := range cols {
			cells = append(cells, cell{i, j})
		}
	}
	flat, err := Map(workers, cells, func(_ int, c cell) (R, error) {
		return fn(c.i, c.j, rows[c.i], cols[c.j])
	})
	if err != nil {
		return nil, err
	}
	out := make([][]R, len(rows))
	for i := range rows {
		out[i] = flat[i*nc : (i+1)*nc : (i+1)*nc]
	}
	return out, nil
}
