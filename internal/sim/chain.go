package sim

import "time"

// Chain pulls items from src one at a time and runs each through serve at
// the instant at(item) returns. Only after serve returns true is the next
// item pulled and scheduled, so at most one admission is ever outstanding —
// the pattern every streaming runner in the repo uses to keep the event
// queue O(1) deep regardless of stream length.
//
// The chain is allocation-free per item: one state struct and one pre-bound
// event closure are reused for the whole stream. (The naive formulation —
// a recursive closure capturing each pulled item — costs a fresh closure
// per request, which profiling showed was one of the top allocation sites
// on the 1M-request streaming path.)
//
// serve returning false abandons the stream: nothing further is pulled and
// onEnd does not run. onEnd, if non-nil, runs exactly once when src is
// exhausted.
func Chain[T any](eng *Engine, src Source[T], at func(T) time.Duration, serve func(*Engine, T) bool, onEnd func()) {
	c := &chain[T]{src: src, at: at, serve: serve, onEnd: onEnd}
	c.fire = c.run // bind the event closure once, not per item
	c.admit(eng)
}

type chain[T any] struct {
	src   Source[T]
	at    func(T) time.Duration
	serve func(*Engine, T) bool
	onEnd func()
	item  T // the single in-flight item, valid between admit and run
	fire  func(*Engine)
}

func (c *chain[T]) admit(e *Engine) {
	v, ok := c.src.Next()
	if !ok {
		if c.onEnd != nil {
			c.onEnd()
		}
		return
	}
	c.item = v
	e.At(c.at(v), c.fire)
}

func (c *chain[T]) run(e *Engine) {
	if c.serve(e, c.item) {
		c.admit(e)
	}
}
