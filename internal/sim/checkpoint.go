package sim

// Checkpointer receives progress marks from long streaming runs so a
// supervisor can persist resumable state. Runners call Checkpoint at
// deterministic positions on the sim timeline (a completion count, a sweep
// index) — never on wall-clock — so the marks land at the same points on
// every replay of a seeded run. Implementations must tolerate being called
// from the run's own goroutine and should be cheap relative to the work
// between marks; the service's implementation group-commits the result
// lines emitted since the previous mark to its journal.
//
// A nil Checkpointer means checkpointing is off; callers guard with a
// single nil check, mirroring the obs tracer convention.
type Checkpointer interface {
	// Checkpoint marks that everything emitted up to position pos is ready
	// to be made durable. pos is advisory (a monotonic count in run-defined
	// units); implementations may ignore it.
	Checkpoint(pos int64)
}

// CheckpointFunc adapts a function to a Checkpointer.
type CheckpointFunc func(pos int64)

// Checkpoint implements Checkpointer.
func (f CheckpointFunc) Checkpoint(pos int64) { f(pos) }
