// Package sim is the deterministic discrete-event core the simulator layers
// (disksim, raid, dtm, trace) share: a monotonic clock, a binary-heap event
// queue, and the Source/Sink/Process plumbing that lets workload generation,
// disk service and thermal control interleave on one timeline without ever
// materializing a whole trace.
//
// Determinism contract: events fire in (time, scheduling order). Two events
// scheduled for the same instant fire in the order they were scheduled, so a
// seeded run replays bit-for-bit regardless of queue rebalancing. Handlers
// run to completion before the next event fires (single-threaded; an Engine
// is not safe for concurrent use).
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
)

// ErrStopped is returned by Run when a handler called Stop.
var ErrStopped = errors.New("sim: engine stopped")

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-break: scheduling order
	fn  func(*Engine)
}

// eventHeap is a min-heap on (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return e
}

// Engine is the event loop: a clock that only moves forward and a queue of
// pending events. The zero value is not usable; call NewEngine.
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   eventHeap
	err     error
	stopped bool
	tracer  *obs.Tracer
}

// NewEngine returns an engine with its clock at zero.
func NewEngine() *Engine { return &Engine{} }

// SetTracer attaches a span collector to the engine. Processes running on
// the engine (disk service, RAID fan-out, DTM control) consult Tracer per
// event and record request-lifetime spans when it is non-nil; with no
// tracer attached the check is a single nil branch and nothing allocates.
func (e *Engine) SetTracer(t *obs.Tracer) { e.tracer = t }

// Tracer returns the attached span collector (nil when tracing is off).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// Now returns the current simulation time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns how many events are queued.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn for time at. Scheduling into the past is clamped to the
// current instant (the event still fires after every event already queued
// for Now, preserving the determinism contract).
func (e *Engine) At(at time.Duration, fn func(*Engine)) {
	if at < e.now {
		at = e.now
	}
	heap.Push(&e.queue, event{at: at, seq: e.seq, fn: fn})
	e.seq++
}

// After schedules fn d from now (negative d fires at the current instant).
func (e *Engine) After(d time.Duration, fn func(*Engine)) { e.At(e.now+d, fn) }

// Fail aborts the run: Run returns err once the current handler finishes.
func (e *Engine) Fail(err error) {
	if e.err == nil {
		e.err = err
	}
	e.stopped = true
}

// Stop ends the run without error once the current handler finishes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the next event. It reports whether one fired.
func (e *Engine) Step() bool {
	if e.stopped || len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(event)
	if ev.at > e.now {
		e.now = ev.at
	}
	ev.fn(e)
	return true
}

// Run fires events until the queue drains, a handler calls Stop, or a
// handler calls Fail (whose error is returned).
func (e *Engine) Run() error {
	for e.Step() {
	}
	if e.err != nil {
		return e.err
	}
	if e.stopped {
		e.stopped = false // allow resumption after an explicit Stop
		return nil
	}
	return nil
}

// Process is a component that attaches itself to the engine — typically by
// scheduling its first event (a sample tick, a request arrival) from Start.
type Process interface {
	Start(*Engine)
}

// Every schedules fn at t0 and then every period until fn returns false.
// It panics on a non-positive period (a zero period would jam the clock).
func (e *Engine) Every(t0, period time.Duration, fn func(now time.Duration) bool) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive tick period %v", period))
	}
	var tick func(*Engine)
	tick = func(eng *Engine) {
		if !fn(eng.Now()) {
			return
		}
		eng.After(period, tick)
	}
	e.At(t0, tick)
}
