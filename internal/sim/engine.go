// Package sim is the deterministic discrete-event core the simulator layers
// (disksim, raid, dtm, trace) share: a monotonic clock, a binary-heap event
// queue, and the Source/Sink/Process plumbing that lets workload generation,
// disk service and thermal control interleave on one timeline without ever
// materializing a whole trace.
//
// Determinism contract: events fire in (time, scheduling order). Two events
// scheduled for the same instant fire in the order they were scheduled, so a
// seeded run replays bit-for-bit regardless of queue rebalancing. Handlers
// run to completion before the next event fires (single-threaded; an Engine
// is not safe for concurrent use).
package sim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
)

// ErrStopped is returned by Run when a handler called Stop.
var ErrStopped = errors.New("sim: engine stopped")

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-break: scheduling order
	fn  func(*Engine)
}

// before is the heap order: (at, seq). seq is unique, so the order is total
// and every correct heap pops the identical sequence — the determinism
// contract does not depend on the heap's internal layout.
func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is the event loop: a clock that only moves forward and a queue of
// pending events. The zero value is not usable; call NewEngine.
//
// The queue is a hand-rolled binary min-heap on a plain slice rather than
// container/heap: the standard interface boxes every Push/Pop element into
// an `any`, which cost two heap allocations per event and made the queue the
// largest allocation site on the streaming request path. The slice-backed
// heap admits and pops events with zero per-event allocations (growth is
// amortized by append), and the streaming runners' one-admission-in-flight
// pattern keeps it nearly empty, so a same-tick or later event's sift-up
// terminates after a single comparison.
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   []event
	err     error
	stopped bool
	tracer  *obs.Tracer
}

// NewEngine returns an engine with its clock at zero.
func NewEngine() *Engine { return &Engine{} }

// SetTracer attaches a span collector to the engine. Processes running on
// the engine (disk service, RAID fan-out, DTM control) consult Tracer per
// event and record request-lifetime spans when it is non-nil; with no
// tracer attached the check is a single nil branch and nothing allocates.
func (e *Engine) SetTracer(t *obs.Tracer) { e.tracer = t }

// Tracer returns the attached span collector (nil when tracing is off).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// Now returns the current simulation time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns how many events are queued.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn for time at. Scheduling into the past is clamped to the
// current instant (the event still fires after every event already queued
// for Now, preserving the determinism contract).
func (e *Engine) At(at time.Duration, fn func(*Engine)) {
	if at < e.now {
		at = e.now
	}
	e.queue = append(e.queue, event{at: at, seq: e.seq, fn: fn})
	e.seq++
	e.siftUp(len(e.queue) - 1)
}

// After schedules fn d from now (negative d fires at the current instant).
func (e *Engine) After(d time.Duration, fn func(*Engine)) { e.At(e.now+d, fn) }

// siftUp restores the heap property after an append at index i.
func (e *Engine) siftUp(i int) {
	q := e.queue
	ev := q[i]
	for i > 0 {
		p := (i - 1) / 2
		if q[p].before(ev) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = ev
}

// pop removes and returns the minimum event. Callers guarantee the queue is
// non-empty. The vacated slot's fn is cleared so the GC can reclaim the
// handler once it has run.
func (e *Engine) pop() event {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = event{}
	e.queue = q[:n]
	if n > 0 {
		e.siftDown(last)
	}
	return top
}

// siftDown re-inserts ev at the root of the shrunk heap.
func (e *Engine) siftDown(ev event) {
	q := e.queue
	n := len(q)
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && q[r].before(q[c]) {
			c = r
		}
		if !q[c].before(ev) {
			break
		}
		q[i] = q[c]
		i = c
	}
	q[i] = ev
}

// Fail aborts the run: Run returns err once the current handler finishes.
func (e *Engine) Fail(err error) {
	if e.err == nil {
		e.err = err
	}
	e.stopped = true
}

// Stop ends the run without error once the current handler finishes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the next event. It reports whether one fired.
func (e *Engine) Step() bool {
	if e.stopped || len(e.queue) == 0 {
		return false
	}
	ev := e.pop()
	if ev.at > e.now {
		e.now = ev.at
	}
	ev.fn(e)
	return true
}

// Run fires events until the queue drains, a handler calls Stop, or a
// handler calls Fail (whose error is returned).
func (e *Engine) Run() error {
	for e.Step() {
	}
	if e.err != nil {
		return e.err
	}
	if e.stopped {
		e.stopped = false // allow resumption after an explicit Stop
		return nil
	}
	return nil
}

// Process is a component that attaches itself to the engine — typically by
// scheduling its first event (a sample tick, a request arrival) from Start.
type Process interface {
	Start(*Engine)
}

// Every schedules fn at t0 and then every period until fn returns false.
// It panics on a non-positive period (a zero period would jam the clock).
func (e *Engine) Every(t0, period time.Duration, fn func(now time.Duration) bool) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive tick period %v", period))
	}
	var tick func(*Engine)
	tick = func(eng *Engine) {
		if !fn(eng.Now()) {
			return
		}
		eng.After(period, tick)
	}
	e.At(t0, tick)
}
