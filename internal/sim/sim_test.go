package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(3*time.Second, func(*Engine) { got = append(got, 3) })
	e.At(1*time.Second, func(*Engine) { got = append(got, 1) })
	e.At(2*time.Second, func(*Engine) { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fired %v, want [1 2 3]", got)
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("clock at %v, want 3s", e.Now())
	}
}

func TestTiesFireInSchedulingOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func(*Engine) { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order %v, want scheduling order", got)
		}
	}
}

func TestPastSchedulingClampsToNow(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.At(5*time.Second, func(eng *Engine) {
		eng.At(time.Second, func(eng *Engine) { at = eng.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5*time.Second {
		t.Fatalf("past event fired at %v, want clamped to 5s", at)
	}
}

func TestHandlersScheduleMoreEvents(t *testing.T) {
	e := NewEngine()
	n := 0
	var chain func(*Engine)
	chain = func(eng *Engine) {
		n++
		if n < 100 {
			eng.After(time.Millisecond, chain)
		}
	}
	e.At(0, chain)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("chain ran %d times, want 100", n)
	}
	if e.Now() != 99*time.Millisecond {
		t.Fatalf("clock at %v, want 99ms", e.Now())
	}
}

func TestFailAbortsRun(t *testing.T) {
	e := NewEngine()
	boom := errors.New("boom")
	ran := false
	e.At(time.Second, func(eng *Engine) { eng.Fail(boom) })
	e.At(2*time.Second, func(*Engine) { ran = true })
	if err := e.Run(); !errors.Is(err, boom) {
		t.Fatalf("Run err = %v, want boom", err)
	}
	if ran {
		t.Fatal("event after Fail still fired")
	}
}

func TestStopEndsRunCleanly(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(time.Second, func(eng *Engine) { eng.Stop() })
	e.At(2*time.Second, func(*Engine) { ran = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("event after Stop still fired")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d after Stop, want 1", e.Pending())
	}
}

func TestEveryTicks(t *testing.T) {
	e := NewEngine()
	var ticks []time.Duration
	e.Every(time.Second, time.Second, func(now time.Duration) bool {
		ticks = append(ticks, now)
		return len(ticks) < 4
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks %v, want %v", ticks, want)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []time.Duration {
		e := NewEngine()
		var log []time.Duration
		e.Every(0, 3*time.Millisecond, func(now time.Duration) bool {
			log = append(log, now)
			return now < 30*time.Millisecond
		})
		e.Every(0, 5*time.Millisecond, func(now time.Duration) bool {
			log = append(log, now+1) // distinguishable from the first ticker
			return now < 30*time.Millisecond
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSliceSourceAndCollect(t *testing.T) {
	src := FromSlice([]int{1, 2, 3})
	got := Collect(src)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("collect %v", got)
	}
	if _, ok := src.Next(); ok {
		t.Fatal("exhausted source yielded an item")
	}
}

func TestLimit(t *testing.T) {
	src := Limit(FromSlice([]int{1, 2, 3, 4}), 2)
	if got := Collect(src); len(got) != 2 {
		t.Fatalf("limit collect %v, want 2 items", got)
	}
}

func TestAppenderSink(t *testing.T) {
	var a Appender[int]
	a.Push(7)
	a.Push(8)
	if len(a.Items) != 2 || a.Items[1] != 8 {
		t.Fatalf("appender %v", a.Items)
	}
}

func TestGate(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	src := Gate(ctx, FromSlice([]int{1, 2, 3, 4}))
	if v, ok := src.Next(); !ok || v != 1 {
		t.Fatalf("first Next = %d,%v, want 1,true", v, ok)
	}
	cancel()
	if v, ok := src.Next(); ok {
		t.Fatalf("Next after cancel = %d,%v, want exhausted", v, ok)
	}
	// A never-cancelled gate is transparent.
	got := Collect(Gate(context.Background(), FromSlice([]int{5, 6})))
	if len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Fatalf("transparent gate collect %v", got)
	}
}
