package sim

import (
	"testing"
	"time"
)

// TestEngineQueueAllocFreeSteadyState pins the slice-backed event heap's
// reason for existing: once the queue slice has grown to its working
// capacity, scheduling and firing events allocates nothing (the old
// container/heap implementation boxed every event into an `any` on both
// Push and Pop).
func TestEngineQueueAllocFreeSteadyState(t *testing.T) {
	e := NewEngine()
	fn := func(*Engine) {}
	for i := 0; i < 64; i++ { // grow the queue's backing array
		e.At(time.Duration(i)*time.Millisecond, fn)
	}
	for e.Step() {
	}
	if n := testing.AllocsPerRun(500, func() {
		e.After(time.Millisecond, fn)
		e.After(2*time.Millisecond, fn)
		e.Step()
		e.Step()
	}); n != 0 {
		t.Fatalf("warm engine allocates %v per schedule/fire cycle, want 0", n)
	}
}

// TestChainAllocFreePerItem pins Chain's contract: after setup, admitting
// and serving each item reuses the chain's single event closure instead of
// allocating one per item. Each engine Step serves the in-flight item and
// admits the next, so measuring a warm Step measures the whole per-item
// cycle.
func TestChainAllocFreePerItem(t *testing.T) {
	const total = 4096
	e := NewEngine()
	i := 0
	src := SourceFunc[int](func() (int, bool) {
		if i >= total {
			return 0, false
		}
		i++
		return i, true
	})
	served := 0
	ended := false
	Chain(e, src, func(int) time.Duration { return e.Now() },
		func(*Engine, int) bool { served++; return true }, func() { ended = true })
	for j := 0; j < 16; j++ { // warm the queue's backing array
		if !e.Step() {
			t.Fatal("chain drained during warm-up")
		}
	}
	if n := testing.AllocsPerRun(500, func() {
		if !e.Step() {
			t.Fatal("chain drained during measurement")
		}
	}); n != 0 {
		t.Fatalf("chained admission allocates %v per item, want 0", n)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if served != total || !ended {
		t.Fatalf("served %d (want %d), ended=%v", served, total, ended)
	}
}
