package sim

import "context"

// Source yields items lazily: Next returns the next item and true, or the
// zero value and false once the stream is exhausted. Sources backed by a
// seeded RNG must yield the identical sequence on every run.
type Source[T any] interface {
	Next() (T, bool)
}

// Sink consumes items as they are produced.
type Sink[T any] interface {
	Push(T)
}

// SourceFunc adapts a function to a Source.
type SourceFunc[T any] func() (T, bool)

// Next implements Source.
func (f SourceFunc[T]) Next() (T, bool) { return f() }

// SinkFunc adapts a function to a Sink.
type SinkFunc[T any] func(T)

// Push implements Sink.
func (f SinkFunc[T]) Push(v T) { f(v) }

// sliceSource walks a slice without copying it.
type sliceSource[T any] struct {
	items []T
	i     int
}

func (s *sliceSource[T]) Next() (T, bool) {
	if s.i >= len(s.items) {
		var zero T
		return zero, false
	}
	v := s.items[s.i]
	s.i++
	return v, true
}

// FromSlice returns a Source over the slice (which is not copied; callers
// must not mutate it while the source is live).
func FromSlice[T any](items []T) Source[T] { return &sliceSource[T]{items: items} }

// Collect drains a source into a slice — the batch-compatibility wrapper's
// other half. Use it only when the caller genuinely needs the whole stream.
func Collect[T any](src Source[T]) []T {
	var out []T
	for {
		v, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// Limit caps a source at n items.
func Limit[T any](src Source[T], n int64) Source[T] {
	return SourceFunc[T](func() (T, bool) {
		if n <= 0 {
			var zero T
			return zero, false
		}
		n--
		return src.Next()
	})
}

// Gate wraps src so it reports exhaustion once ctx is done. It is the
// cooperative-cancellation hook for the streaming runs: the event loops
// admit one request per Next, so a cancelled context ends the run at the
// next admission instead of after the whole trace. With a never-cancelled
// context the wrapped source yields the identical sequence (one nil-error
// check per item), so gating does not disturb the bit-identity contract.
func Gate[T any](ctx context.Context, src Source[T]) Source[T] {
	return SourceFunc[T](func() (T, bool) {
		if ctx.Err() != nil {
			var zero T
			return zero, false
		}
		return src.Next()
	})
}

// Appender is a Sink that collects into a slice.
type Appender[T any] struct{ Items []T }

// Push implements Sink.
func (a *Appender[T]) Push(v T) { a.Items = append(a.Items, v) }

// Discard returns a Sink that drops everything (pure-throughput runs).
func Discard[T any]() Sink[T] { return SinkFunc[T](func(T) {}) }
