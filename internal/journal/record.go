// Package journal is the durable job log behind the simulation service: an
// append-only file of length-prefixed, CRC32-checked JSON records with
// group-committed fsync, torn-tail-tolerant replay, and timer-driven
// compaction that rewrites the log keeping only live jobs. It is stdlib
// only, like everything else in the repo.
//
// Frame layout (little-endian):
//
//	[4B payload length][4B IEEE CRC32 of payload][payload JSON]
//
// A crash can leave at most one torn frame at the tail of the file; replay
// detects it (short frame or CRC mismatch), truncates it away, and the next
// append continues from the last durable record. A CRC mismatch can never
// be read back as data, and a frame can never be confused with its
// neighbours because the length prefix is validated against the bytes that
// actually follow it.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record kinds. The journal itself is agnostic about their meaning; the
// server gives them semantics (see internal/server and DESIGN.md §10).
const (
	KindSubmit = "submit" // a job was admitted: Job, Key, Spec
	KindState  = "state"  // a lifecycle transition: Job, Status, Error
	KindChunk  = "chunk"  // a checkpoint of result lines: Job, Lines
)

// Record is one journal entry.
type Record struct {
	Kind   string          `json:"kind"`
	Job    string          `json:"job"`
	Key    string          `json:"key,omitempty"`    // idempotency key (submit)
	Spec   json.RawMessage `json:"spec,omitempty"`   // job spec JSON (submit)
	Status string          `json:"status,omitempty"` // lifecycle state (state)
	Error  string          `json:"error,omitempty"`  // terminal error (state)
	Lines  []string        `json:"lines,omitempty"`  // result lines (chunk)
}

// frameHeaderSize is the fixed prefix before each payload.
const frameHeaderSize = 8

// maxFrameBytes bounds a single record so a corrupt length prefix can never
// provoke a multi-gigabyte allocation. It is comfortably above the server's
// per-job result cap.
const maxFrameBytes = 64 << 20

// Decode errors. ErrTorn marks a frame cut short by a crash (recoverable:
// truncate and continue); ErrCorrupt marks bytes that are present but wrong
// (CRC mismatch, absurd length, invalid JSON).
var (
	ErrTorn    = errors.New("journal: torn frame at tail")
	ErrCorrupt = errors.New("journal: corrupt frame")
)

// appendFrame frames payload onto buf and returns the extended slice.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// EncodeRecord frames one record into a byte slice ready to append.
func EncodeRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	if len(payload) > maxFrameBytes {
		return nil, fmt.Errorf("journal: record of %d bytes exceeds frame limit", len(payload))
	}
	return appendFrame(nil, payload), nil
}

// DecodeFrame reads one frame from data. It returns the decoded payload and
// the number of bytes consumed. io.EOF means a clean end (no bytes left);
// ErrTorn means the remaining bytes are shorter than the frame they
// announce; ErrCorrupt means the frame is complete but fails its checks.
func DecodeFrame(data []byte) (payload []byte, n int, err error) {
	if len(data) == 0 {
		return nil, 0, io.EOF
	}
	if len(data) < frameHeaderSize {
		return nil, 0, ErrTorn
	}
	size := binary.LittleEndian.Uint32(data[0:4])
	if size > maxFrameBytes {
		return nil, 0, fmt.Errorf("%w: frame length %d exceeds limit", ErrCorrupt, size)
	}
	end := frameHeaderSize + int(size)
	if len(data) < end {
		return nil, 0, ErrTorn
	}
	payload = data[frameHeaderSize:end]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[4:8]) {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, end, nil
}

// DecodeRecord parses one framed record. Corrupt or torn input returns an
// error — never a partially-filled record.
func DecodeRecord(data []byte) (Record, int, error) {
	payload, n, err := DecodeFrame(data)
	if err != nil {
		return Record{}, 0, err
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return rec, n, nil
}

// scanRecords walks data decoding consecutive records. It returns the
// records up to the first bad frame, the byte offset of the clean prefix,
// and the error that stopped the scan (nil on a clean end). The caller
// decides what to do with the suffix — Open truncates it.
func scanRecords(data []byte) (recs []Record, goodBytes int, err error) {
	off := 0
	for off < len(data) {
		rec, n, err := DecodeRecord(data[off:])
		if err != nil {
			return recs, off, err
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, off, nil
}
