package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opts Options) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, recs := mustOpen(t, dir, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []Record{
		{Kind: KindSubmit, Job: "job-1", Key: "k1", Spec: json.RawMessage(`{"type":"roadmap"}`)},
		{Kind: KindState, Job: "job-1", Status: "running"},
		{Kind: KindChunk, Job: "job-1", Lines: []string{`{"kind":"point"}`, `{"kind":"summary"}`}},
		{Kind: KindState, Job: "job-1", Status: "done"},
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, got := mustOpen(t, dir, Options{})
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w, _ := json.Marshal(want[i])
		g, _ := json.Marshal(got[i])
		if string(w) != string(g) {
			t.Errorf("record %d: got %s, want %s", i, g, w)
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	if err := j.Append(Record{Kind: KindSubmit, Job: "job-1"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Kind: KindState, Job: "job-1", Status: "done"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a crash mid-append: chop bytes off the tail.
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	var msgs []string
	j2, recs := mustOpen(t, dir, Options{Logf: func(f string, a ...any) { msgs = append(msgs, fmt.Sprintf(f, a...)) }})
	if len(recs) != 1 || recs[0].Job != "job-1" || recs[0].Kind != KindSubmit {
		t.Fatalf("after torn tail, replayed %+v, want just the submit", recs)
	}
	if len(msgs) == 0 {
		t.Error("torn-tail truncation was silent")
	}
	// The journal must keep working: the truncated file accepts appends and
	// the result replays cleanly.
	if err := j2.Append(Record{Kind: KindState, Job: "job-1", Status: "failed", Error: "crashed"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, recs = mustOpen(t, dir, Options{})
	if len(recs) != 2 || recs[1].Status != "failed" {
		t.Fatalf("post-recovery replay = %+v", recs)
	}
}

// TestCorruptFrameRefusesOpen: mid-file damage is not a crash artifact — a
// torn tail loses at most the un-acked suffix, but a bit flip before the
// last frame means fsync-acknowledged history is gone, and silently
// truncating there would delete every later acknowledged record. Open must
// refuse rather than guess.
func TestCorruptFrameRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := j.Append(Record{Kind: KindSubmit, Job: fmt.Sprintf("job-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	path := filepath.Join(dir, logName)
	data, _ := os.ReadFile(path)
	// Flip a payload bit in the second frame.
	_, n1, err := DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	data[n1+frameHeaderSize] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over mid-file corruption = %v, want ErrCorrupt", err)
	}
	// The file is untouched: nothing was truncated behind the operator's back.
	after, _ := os.ReadFile(path)
	if len(after) != len(data) {
		t.Fatalf("refused open still changed the file: %d -> %d bytes", len(data), len(after))
	}
}

func TestCompactionKeepsLiveOnly(t *testing.T) {
	dir := t.TempDir()
	var msgs []string
	j, _ := mustOpen(t, dir, Options{Logf: func(f string, a ...any) { msgs = append(msgs, fmt.Sprintf(f, a...)) }})
	for i := 0; i < 10; i++ {
		if err := j.Append(Record{Kind: KindSubmit, Job: fmt.Sprintf("job-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	live := []Record{
		{Kind: KindSubmit, Job: "job-9"},
		{Kind: KindState, Job: "job-9", Status: "running"},
	}
	if err := j.Compact(live); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range msgs {
		if strings.Contains(m, "dropped 8 records") {
			found = true
		}
	}
	if !found {
		t.Errorf("compaction dropping records did not log; got %v", msgs)
	}

	// A no-op compaction (nothing dropped) must be silent.
	msgs = nil
	if err := j.Compact(live); err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		if strings.Contains(m, "compacted") {
			t.Errorf("all-kept compaction logged: %q", m)
		}
	}

	// Appends after compaction land in the new file.
	if err := j.Append(Record{Kind: KindState, Job: "job-9", Status: "done"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, recs := mustOpen(t, dir, Options{})
	if len(recs) != 3 || recs[0].Job != "job-9" || recs[2].Status != "done" {
		t.Fatalf("post-compaction replay = %+v", recs)
	}
}

// TestCompactionNeverDropsAckedRecords races timer compactions against
// appends. The live source mirrors the server's usage: a record enters it
// BEFORE its Append is issued (the server registers a job before journaling
// it), so a correctly-timed snapshot — taken by the committer at dequeue,
// after every previously-acked append — can never miss an acknowledged
// record. The old compactLoop evaluated Live() before queueing the request,
// and an append acked in that window vanished from the rewrite.
func TestCompactionNeverDropsAckedRecords(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	var tracked []Record
	live := func() []Record {
		mu.Lock()
		defer mu.Unlock()
		return append([]Record(nil), tracked...)
	}
	j, _ := mustOpen(t, dir, Options{CompactEvery: time.Millisecond, Live: live})

	const n = 300
	var acked []string
	for i := 0; i < n; i++ {
		rec := Record{Kind: KindSubmit, Job: fmt.Sprintf("job-%d", i)}
		mu.Lock()
		tracked = append(tracked, rec)
		mu.Unlock()
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
		acked = append(acked, rec.Job)
		if i%50 == 0 {
			time.Sleep(2 * time.Millisecond) // let the timer land mid-stream
		}
	}
	j.Close()

	_, recs := mustOpen(t, dir, Options{})
	seen := make(map[string]bool, len(recs))
	for _, r := range recs {
		seen[r.Job] = true // a compaction racing an in-flight append may duplicate; dedupe
	}
	for _, job := range acked {
		if !seen[job] {
			t.Fatalf("acknowledged record %s lost across compaction", job)
		}
	}
}

func TestConcurrentAppendsAllDurable(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	const n = 200
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- j.Append(Record{Kind: KindSubmit, Job: fmt.Sprintf("job-%d", i)})
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	_, recs := mustOpen(t, dir, Options{})
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	seen := make(map[string]bool)
	for _, r := range recs {
		if seen[r.Job] {
			t.Fatalf("duplicate record for %s", r.Job)
		}
		seen[r.Job] = true
	}
}

func TestAppendAfterCloseErrors(t *testing.T) {
	j, _ := mustOpen(t, t.TempDir(), Options{})
	j.Close()
	if err := j.Append(Record{Kind: KindSubmit, Job: "x"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	j, _ := mustOpen(t, t.TempDir(), Options{})
	huge := Record{Kind: KindChunk, Job: "j", Lines: []string{strings.Repeat("x", maxFrameBytes)}}
	if err := j.Append(huge); err == nil {
		t.Fatal("oversize record accepted")
	}
}

func TestDecodeFrameEdges(t *testing.T) {
	frame, err := EncodeRecord(Record{Kind: KindSubmit, Job: "j"})
	if err != nil {
		t.Fatal(err)
	}
	// Empty input is a clean end; every other strict prefix is torn.
	if _, _, err := DecodeFrame(nil); !errors.Is(err, io.EOF) {
		t.Fatalf("empty input err = %v, want io.EOF", err)
	}
	for i := 1; i < len(frame); i++ {
		if _, _, err := DecodeFrame(frame[:i]); !errors.Is(err, ErrTorn) {
			t.Fatalf("prefix %d: err = %v, want ErrTorn", i, err)
		}
	}
	// Any single-bit payload flip is corrupt.
	for i := frameHeaderSize; i < len(frame); i++ {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 1
		if _, _, err := DecodeFrame(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: err = %v, want ErrCorrupt", i, err)
		}
	}
}
