package journal

import (
	"encoding/json"
	"fmt"
	"testing"
)

// BenchmarkJournalAppend is the durability cost on the admission path: one
// fsync-committed submit-sized record per op. cmd/benchdiff gates it via
// BENCH_serve.json so journal overhead stays bounded.
func BenchmarkJournalAppend(b *testing.B) {
	j, _, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	rec := Record{
		Kind: KindSubmit,
		Job:  "job-1",
		Key:  "11111111-2222-3333-4444-555555555555",
		Spec: json.RawMessage(`{"type":"dtm","dtm":{"policy":"envelope","requests":30000}}`),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay measures startup cost: scanning and decoding a 10k-record
// log, the shape of a busy daemon's journal after a crash.
func BenchmarkReplay(b *testing.B) {
	dir := b.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	const records = 10000
	for i := 0; i < records; i++ {
		rec := Record{Kind: KindChunk, Job: fmt.Sprintf("job-%d", i%64), Lines: []string{`{"kind":"sample","completed":1000}`}}
		if err := j.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	j.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j2, recs, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) != records {
			b.Fatalf("replayed %d records, want %d", len(recs), records)
		}
		j2.Close()
	}
}
