package journal

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzJournalRecord throws arbitrary bytes and mutated real frames at the
// decoder. The contract: never panic, and never silently succeed on bytes
// that differ from a well-formed frame — a decode either errors or returns
// exactly the payload that was encoded.
func FuzzJournalRecord(f *testing.F) {
	seed := func(rec Record) []byte {
		frame, err := EncodeRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		return frame
	}
	f.Add(seed(Record{Kind: KindSubmit, Job: "job-1", Key: "k", Spec: json.RawMessage(`{"type":"roadmap"}`)}), -1, byte(0))
	f.Add(seed(Record{Kind: KindChunk, Job: "job-2", Lines: []string{`{"kind":"point"}`}}), 3, byte(0x80))
	f.Add(seed(Record{Kind: KindState, Job: "job-3", Status: "done"}), 0, byte(1))
	f.Add([]byte{}, -1, byte(0))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}, -1, byte(0)) // absurd length prefix
	f.Add(bytes.Repeat([]byte{0}, 64), -1, byte(0))

	f.Fuzz(func(t *testing.T, data []byte, flipAt int, flip byte) {
		// Optionally corrupt one byte so real frames get exercised both
		// intact and damaged.
		mutated := append([]byte(nil), data...)
		if flipAt >= 0 && flipAt < len(mutated) && flip != 0 {
			mutated[flipAt] ^= flip
		}
		payload, n, err := DecodeFrame(mutated)
		if err == nil {
			// A successful decode must round-trip: re-encoding the payload
			// reproduces the consumed bytes exactly. Anything else is a
			// silent corruption.
			if n > len(mutated) {
				t.Fatalf("consumed %d of %d bytes", n, len(mutated))
			}
			reframed := appendFrame(nil, payload)
			if !bytes.Equal(reframed, mutated[:n]) {
				t.Fatalf("decode accepted bytes that do not round-trip:\n in %x\nout %x", mutated[:n], reframed)
			}
		}
		// Record-level decode on the same input must never panic either.
		_, _, _ = DecodeRecord(mutated)
		// Nor the full scan.
		_, good, _ := scanRecords(mutated)
		if good > len(mutated) {
			t.Fatalf("scan consumed %d of %d bytes", good, len(mutated))
		}
	})
}

// FuzzTornTail truncates a valid multi-record log at every length and
// requires the scan to recover exactly the fully-framed prefix.
func FuzzTornTail(f *testing.F) {
	var log []byte
	var frames []int // cumulative end offsets
	for i := 0; i < 3; i++ {
		frame, err := EncodeRecord(Record{Kind: KindSubmit, Job: "job", Lines: []string{"x"}})
		if err != nil {
			f.Fatal(err)
		}
		log = append(log, frame...)
		frames = append(frames, len(log))
	}
	f.Add(0)
	f.Add(frames[0] + 1)
	f.Add(len(log))
	f.Fuzz(func(t *testing.T, cut int) {
		if cut < 0 || cut > len(log) {
			return
		}
		recs, good, err := scanRecords(log[:cut])
		wantRecs := 0
		wantGood := 0
		for _, end := range frames {
			if cut >= end {
				wantRecs++
				wantGood = end
			}
		}
		if len(recs) != wantRecs || good != wantGood {
			t.Fatalf("cut %d: got %d records / %d good bytes, want %d / %d (err %v)",
				cut, len(recs), good, wantRecs, wantGood, err)
		}
		if cut != wantGood && err == nil {
			t.Fatalf("cut %d left a partial frame but scan reported a clean end", cut)
		}
	})
}
