package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// File is the subset of *os.File the journal writes through. Tests inject
// fault-wrapped implementations (see internal/chaos) to exercise partial
// writes and fsync failures; production passes *os.File straight through.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Truncate(size int64) error
	Close() error
}

// Options tunes a journal. The zero value is production-ready.
type Options struct {
	// WrapFile intercepts the log file handle after open, the
	// fault-injection seam. nil means identity.
	WrapFile func(*os.File) File

	// Logf receives operational messages (tail truncation, compaction that
	// dropped records, write-error recovery). nil discards them.
	Logf func(format string, args ...any)

	// CompactEvery starts a timer that rewrites the log keeping only the
	// records Live returns. 0 disables the timer (Compact can still be
	// called directly).
	CompactEvery time.Duration
	Live         func() []Record

	// OnAppend and OnCompact are metrics hooks: frame bytes appended (or
	// the error that lost them), and records kept/dropped per compaction.
	OnAppend  func(bytes int, err error)
	OnCompact func(kept, dropped int, err error)

	// MaxBatch caps how many pending appends share one fsync. Default 64.
	MaxBatch int
}

// Journal is an open log. Append is safe for concurrent use; every call
// returns only after its record is fsync-durable (concurrent appends share
// a group commit, so the fsync cost amortizes under load).
type Journal struct {
	dir  string
	path string
	opts Options

	mu     sync.Mutex
	closed bool
	ch     chan request

	done     chan struct{} // committer exited
	stopTick chan struct{} // compaction timer shutdown

	// Committer-goroutine state: never touched outside it after Open.
	f       File
	size    int64 // durable byte offset (last successful batch end)
	records int   // records in the file
	broken  error // set when recovery after a write error failed
}

type request struct {
	frame []byte // append: one framed record
	// live is a compaction request's record source. It is a function, not a
	// snapshot: the committer calls it when the request is dequeued — after
	// every append acknowledged before this point has been committed — so an
	// acked record can never fall in the gap between snapshot and rewrite.
	live   func() []Record
	isComp bool
	done   chan error
}

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("journal: closed")

const logName = "journal.log"

// Open opens (creating if needed) the journal in dir, replays every intact
// record, truncates any torn tail, and readies the log for appends. The
// returned records are in append order.
func Open(dir string, opts Options) (*Journal, []Record, error) {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 64
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	}
	recs, good, scanErr := scanRecords(data)
	if scanErr != nil {
		// Only a torn tail — a frame the crash cut short, which by
		// construction consumes every remaining byte — may be dropped:
		// everything before it was fsync-acknowledged and stays. Corruption
		// (CRC mismatch, absurd length, invalid JSON) means bytes that are
		// present but wrong; truncating there would silently delete every
		// acknowledged record after the damage, so Open refuses instead.
		if !errors.Is(scanErr, ErrTorn) {
			return nil, nil, fmt.Errorf("journal: %s holds %d corrupt or unreadable bytes at offset %d (%w); refusing to open rather than drop acknowledged history — repair or move the file aside", path, len(data)-good, good, scanErr)
		}
		opts.logf("journal: dropping %d-byte torn tail at offset %d: %v", len(data)-good, good, scanErr)
	}

	raw, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if good < len(data) {
		if err := raw.Truncate(int64(good)); err != nil {
			raw.Close()
			return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := raw.Seek(int64(good), 0); err != nil {
		raw.Close()
		return nil, nil, err
	}
	var f File = raw
	if opts.WrapFile != nil {
		f = opts.WrapFile(raw)
	}

	j := &Journal{
		dir:      dir,
		path:     path,
		opts:     opts,
		ch:       make(chan request, 256),
		done:     make(chan struct{}),
		stopTick: make(chan struct{}),
		f:        f,
		size:     int64(good),
		records:  len(recs),
	}
	go j.committer()
	if opts.CompactEvery > 0 && opts.Live != nil {
		go j.compactLoop()
	}
	return j, recs, nil
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Append makes rec durable. It blocks until the record (and every record
// batched with it) has been written and fsynced, or returns the write error
// that lost it — in which case the log is rolled back to its previous
// durable size and the record is NOT in the journal.
func (j *Journal) Append(rec Record) error {
	frame, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	req := request{frame: frame, done: make(chan error, 1)}
	if err := j.send(req); err != nil {
		return err
	}
	err = <-req.done
	if j.opts.OnAppend != nil {
		j.opts.OnAppend(len(frame), err)
	}
	return err
}

// Compact rewrites the log to contain exactly live, atomically (write tmp,
// fsync, rename). Records dropped relative to the current log are logged;
// an all-kept compaction is silent.
func (j *Journal) Compact(live []Record) error {
	return j.compactWith(func() []Record { return live })
}

// compactWith queues a compaction whose record set is resolved by the
// committer at dequeue time. The timer loop passes Options.Live directly so
// the snapshot always post-dates every acknowledged append.
func (j *Journal) compactWith(live func() []Record) error {
	req := request{live: live, isComp: true, done: make(chan error, 1)}
	if err := j.send(req); err != nil {
		return err
	}
	return <-req.done
}

func (j *Journal) send(req request) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	j.ch <- req
	return nil
}

// Close stops the committer after draining pending appends and closes the
// file. Further Appends return ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	close(j.ch)
	j.mu.Unlock()
	close(j.stopTick)
	<-j.done
	return j.f.Close()
}

// committer is the single writer: it drains the request channel, batching
// consecutive appends under one fsync (group commit), and serializes
// compactions against appends.
func (j *Journal) committer() {
	defer close(j.done)
	for req := range j.ch {
		if req.isComp {
			req.done <- j.doCompact(req.live())
			continue
		}
		batch := []request{req}
	fill:
		for len(batch) < j.opts.MaxBatch {
			select {
			case next, ok := <-j.ch:
				if !ok {
					break fill
				}
				if next.isComp {
					// Commit the pending appends first: live() must see the
					// world after everything acknowledged ahead of it.
					j.commit(batch)
					batch = batch[:0]
					next.done <- j.doCompact(next.live())
					continue fill
				}
				batch = append(batch, next)
			default:
				break fill
			}
		}
		if len(batch) > 0 {
			j.commit(batch)
		}
	}
}

// commit writes and fsyncs one batch. On any error the file is rolled back
// to the last durable size so a partial write can never leave a torn frame
// in the middle of the log; if even the rollback fails the journal is
// marked broken and every later append reports it.
func (j *Journal) commit(batch []request) {
	if j.broken != nil {
		for _, r := range batch {
			r.done <- j.broken
		}
		return
	}
	var werr error
	written := int64(0)
	for _, r := range batch {
		if werr != nil {
			break
		}
		n, err := j.f.Write(r.frame)
		written += int64(n)
		if err != nil {
			werr = err
		} else if n != len(r.frame) {
			werr = fmt.Errorf("journal: short write %d/%d", n, len(r.frame))
		}
	}
	if werr == nil {
		werr = j.f.Sync()
	}
	if werr == nil {
		j.size += written
		j.records += len(batch)
		for _, r := range batch {
			r.done <- nil
		}
		return
	}
	// Roll back: drop whatever this batch managed to write so the on-disk
	// log ends at the last acknowledged record.
	if terr := j.truncateTo(j.size); terr != nil {
		j.broken = fmt.Errorf("journal: unrecoverable after write error %v: %w", werr, terr)
		j.opts.logf("%v", j.broken)
	} else {
		j.opts.logf("journal: append failed, rolled back %d bytes: %v", written, werr)
	}
	for _, r := range batch {
		r.done <- werr
	}
}

func (j *Journal) truncateTo(size int64) error {
	if err := j.f.Truncate(size); err != nil {
		return err
	}
	// O_APPEND is deliberately not used (it would defeat rollback on some
	// platforms); the write offset must follow the truncation.
	if seeker, ok := j.f.(interface {
		Seek(offset int64, whence int) (int64, error)
	}); ok {
		if _, err := seeker.Seek(size, 0); err != nil {
			return err
		}
	}
	return nil
}

// doCompact rewrites the log as exactly live. The old file keeps serving
// until the renamed replacement is durable, so a crash mid-compaction
// leaves either the old or the new log, never a mix.
func (j *Journal) doCompact(live []Record) error {
	dropped := j.records - len(live)
	var buf []byte
	for _, rec := range live {
		frame, err := EncodeRecord(rec)
		if err != nil {
			if j.opts.OnCompact != nil {
				j.opts.OnCompact(0, 0, err)
			}
			return err
		}
		buf = append(buf, frame...)
	}
	tmp := j.path + ".tmp"
	err := func() error {
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if _, err := f.Write(buf); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return os.Rename(tmp, j.path)
	}()
	if err != nil {
		os.Remove(tmp)
		j.opts.logf("journal: compaction failed, keeping current log: %v", err)
		if j.opts.OnCompact != nil {
			j.opts.OnCompact(0, 0, err)
		}
		return err
	}
	syncDir(j.dir)

	// Swap the handle to the new file, positioned at its end.
	raw, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		j.broken = fmt.Errorf("journal: reopen after compaction: %w", err)
		return j.broken
	}
	if _, err := raw.Seek(int64(len(buf)), 0); err != nil {
		raw.Close()
		j.broken = err
		return err
	}
	j.f.Close()
	if j.opts.WrapFile != nil {
		j.f = j.opts.WrapFile(raw)
	} else {
		j.f = raw
	}
	j.size = int64(len(buf))
	j.records = len(live)
	j.broken = nil
	if dropped > 0 {
		j.opts.logf("journal: compacted, dropped %d records (%d live)", dropped, len(live))
	}
	if j.opts.OnCompact != nil {
		j.opts.OnCompact(len(live), dropped, nil)
	}
	return nil
}

// compactLoop drives timer compactions until Close.
func (j *Journal) compactLoop() {
	tick := time.NewTicker(j.opts.CompactEvery)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			_ = j.compactWith(j.opts.Live)
		case <-j.stopTick:
			return
		}
	}
}

// syncDir fsyncs a directory so a rename survives power loss. Failure is
// non-fatal (some filesystems refuse); the rename itself already happened.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}
