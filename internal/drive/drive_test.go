package drive

import (
	"math"
	"testing"
	"time"

	"repro/internal/geometry"
	"repro/internal/perf"
	"repro/internal/thermal"
)

// TestTable1CapacityAgainstPaperModel asserts that our derated capacity
// reproduces the paper's model column ("Model Cap.") closely — this is the
// strongest evidence the capacity-model interpretation is the paper's.
func TestTable1CapacityAgainstPaperModel(t *testing.T) {
	for _, v := range Table1 {
		m, err := New(v.Config())
		if err != nil {
			t.Errorf("%s: %v", v.Name, err)
			continue
		}
		got := m.Capacity().GB()
		relErr := math.Abs(got-v.PaperModelCapGB) / v.PaperModelCapGB
		if relErr > 0.03 {
			t.Errorf("%s: model capacity %.1f GB, paper model %.1f GB (%.1f%% off)",
				v.Name, got, v.PaperModelCapGB, relErr*100)
		}
	}
}

// TestTable1IDRAgainstPaperModel does the same for the IDR column. One drive
// (Ultrastar 36Z15) is excluded: the paper's own model value (72.1 MB/s) is
// inconsistent with its stated densities/geometry — every comparable 15K
// drive in the table reproduces.
func TestTable1IDRAgainstPaperModel(t *testing.T) {
	for _, v := range Table1 {
		if v.Name == "IBM Ultrastar 36Z15" {
			continue
		}
		m, err := New(v.Config())
		if err != nil {
			t.Errorf("%s: %v", v.Name, err)
			continue
		}
		got := float64(m.IDR())
		relErr := math.Abs(got-float64(v.PaperModelIDR)) / float64(v.PaperModelIDR)
		if relErr > 0.05 {
			t.Errorf("%s: model IDR %.1f MB/s, paper model %.1f MB/s (%.1f%% off)",
				v.Name, got, float64(v.PaperModelIDR), relErr*100)
		}
	}
}

// TestTable1AgainstDatasheets mirrors the paper's validation claim: model
// capacity within ~12% and IDR within ~15% of the datasheet for most drives.
// The paper's own numbers exceed those bounds for a couple of rows (e.g.
// Cheetah X15 capacity +12%, Atlas 10K II -29%), so the test checks the
// corpus-wide behaviour: at least 10 of 13 drives within the stated bounds.
func TestTable1AgainstDatasheets(t *testing.T) {
	okCap, okIDR := 0, 0
	for _, v := range Table1 {
		m, err := New(v.Config())
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		capErr := math.Abs(m.Capacity().GB()-v.DatasheetCapacityGB) / v.DatasheetCapacityGB
		if capErr <= 0.15 {
			okCap++
		}
		idrErr := math.Abs(float64(m.IDR())-float64(v.DatasheetIDR)) / float64(v.DatasheetIDR)
		if idrErr <= 0.20 {
			okIDR++
		}
	}
	if okCap < 10 {
		t.Errorf("only %d/13 drives within 15%% of datasheet capacity", okCap)
	}
	if okIDR < 10 {
		t.Errorf("only %d/13 drives within 20%% of datasheet IDR", okIDR)
	}
}

// TestTable2EnvelopeInvariance checks the property the paper reads off
// Table 2: the rated maximum operating temperature is essentially constant
// across years and RPM classes (50-55 C), supporting a time-invariant
// envelope.
func TestTable2EnvelopeInvariance(t *testing.T) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, e := range Table2 {
		v := float64(e.MaxOperating)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi-lo > 5 {
		t.Errorf("rated max operating temperatures vary by %.1f C; expected <= 5", hi-lo)
	}
	// Envelope + electronics ~= rated max of the reference-generation drives.
	approx := float64(thermal.Envelope + ElectronicsDelta)
	if approx < lo-1 || approx > hi+1 {
		t.Errorf("envelope+electronics = %.1f C outside rated range [%v, %v]", approx, lo, hi)
	}
}

func TestReferenceDriveIntegration(t *testing.T) {
	// The paper's detailed validation drive: Cheetah 15K.3 (4-platter variant).
	m, err := New(Table1[12].Config())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Config().Name; got != "Seagate Cheetah 15K.3" {
		t.Errorf("config name = %q", got)
	}
	if m.Layout().Cylinders < 20000 {
		t.Errorf("cylinders = %d, implausibly low", m.Layout().Cylinders)
	}
	if m.Seek().Cylinders() != m.Layout().Cylinders {
		t.Error("seek model and layout disagree on cylinder count")
	}
	// IDRAt scales linearly.
	if math.Abs(float64(m.IDRAt(30000))-2*float64(m.IDR())) > 1e-9 {
		t.Error("IDRAt not linear in RPM")
	}
}

func TestSteadyTemperatureAndEnvelope(t *testing.T) {
	// A single-platter 2.6" drive at 15000 RPM sits at the envelope;
	// the 4-platter variant exceeds it.
	one, err := New(Config{
		Name:     "ref-1p",
		Geometry: thermal.ReferenceDrive,
		BPI:      533000, TPI: 64000, RPM: 15000, Zones: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !one.WithinEnvelope() {
		t.Errorf("single-platter reference exceeds envelope: %v",
			one.SteadyTemperature(1, thermal.DefaultAmbient))
	}
	four, err := New(Table1[12].Config())
	if err != nil {
		t.Fatal(err)
	}
	if four.WithinEnvelope() {
		t.Error("4-platter 15K drive should exceed the electronics-free envelope")
	}
	if four.SteadyTemperature(0, thermal.DefaultAmbient) >= four.SteadyTemperature(1, thermal.DefaultAmbient) {
		t.Error("idle drive should run cooler than seeking drive")
	}
}

func TestMaxEnvelopeRPMOrdering(t *testing.T) {
	m, err := New(Config{
		Name:     "ref",
		Geometry: thermal.ReferenceDrive,
		BPI:      533000, TPI: 64000, RPM: 15000, Zones: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := m.MaxEnvelopeRPM(thermal.DefaultAmbient)
	cool := m.MaxEnvelopeRPM(thermal.DefaultAmbient - 10)
	if cool <= base {
		t.Errorf("10 C cooler ambient should raise max RPM: %v vs %v", cool, base)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{Name: "no-rpm", Geometry: thermal.ReferenceDrive, BPI: 1000, TPI: 1000}); err == nil {
		t.Error("zero RPM should be rejected")
	}
	if _, err := New(Config{Name: "bad-geom", RPM: 10000, BPI: 533000, TPI: 64000,
		Geometry: geometry.Drive{PlatterDiameter: 9, Platters: 1}}); err == nil {
		t.Error("oversized platter should be rejected")
	}
	if _, err := New(Config{Name: "bad-density", RPM: 10000, Geometry: thermal.ReferenceDrive}); err == nil {
		t.Error("zero density should be rejected")
	}
}

func TestCorpusConfigsConstructible(t *testing.T) {
	for _, v := range Table1 {
		if _, err := New(v.Config()); err != nil {
			t.Errorf("%s: %v", v.Name, err)
		}
	}
}

func TestCorpusYearsAndRPMs(t *testing.T) {
	for _, v := range Table1 {
		if v.Year < 1999 || v.Year > 2002 {
			t.Errorf("%s: year %d outside the corpus window", v.Name, v.Year)
		}
		if v.RPM != 7200 && v.RPM != 10000 && v.RPM != 15000 {
			t.Errorf("%s: unexpected RPM class %v", v.Name, v.RPM)
		}
	}
	if len(Table1) != 13 {
		t.Errorf("Table1 has %d drives, want 13", len(Table1))
	}
	if len(Table2) != 4 {
		t.Errorf("Table2 has %d drives, want 4", len(Table2))
	}
}

func TestSeekOverride(t *testing.T) {
	cfg := Table1[12].Config()
	cfg.Seek = perf.SeekParams{
		TrackToTrack: 300 * time.Microsecond,
		Average:      3 * time.Millisecond,
		FullStroke:   6 * time.Millisecond,
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Seek().Params() != cfg.Seek {
		t.Error("explicit seek parameters were not honoured")
	}
}
