package drive

import (
	"repro/internal/geometry"
	"repro/internal/units"
)

// ValidationDrive is one row of the paper's Table 1: a real SCSI drive with
// its datasheet figures and the paper's own model predictions.
type ValidationDrive struct {
	Name     string
	Year     int
	RPM      units.RPM
	KBPI     float64 // thousands of bits per inch
	KTPI     float64 // thousands of tracks per inch
	Diameter units.Inches
	Platters int

	DatasheetCapacityGB float64 // manufacturer capacity (decimal-marketing GB as printed)
	PaperModelCapGB     float64 // the paper's model prediction
	DatasheetIDR        units.MBPerSec
	PaperModelIDR       units.MBPerSec
}

// Config converts the corpus row into a drive configuration
// (Table 1 assumes 30 ZBR zones for every drive).
func (v ValidationDrive) Config() Config {
	ff := geometry.FormFactor35
	if v.Platters > 8 {
		ff = geometry.FormFactor35Tall // 1.6"-height full-size drives
	}
	return Config{
		Name: v.Name,
		Geometry: geometry.Drive{
			PlatterDiameter: v.Diameter,
			Platters:        v.Platters,
			FormFactor:      ff,
		},
		BPI:   units.BPI(v.KBPI * 1000),
		TPI:   units.TPI(v.KTPI * 1000),
		RPM:   v.RPM,
		Zones: 30,
	}
}

// Table1 is the paper's thirteen-drive validation corpus.
var Table1 = []ValidationDrive{
	{"Quantum Atlas 10K", 1999, 10000, 256, 13.0, 3.3, 6, 18, 17.6, 39.3, 46.5},
	{"IBM Ultrastar 36LZX", 1999, 10000, 352, 20.0, 3.0, 6, 36, 30.8, 56.5, 58.1},
	{"Seagate Cheetah X15", 2000, 15000, 343, 21.4, 2.6, 5, 18, 20.1, 63.5, 73.6},
	{"Quantum Atlas 10K II", 2000, 10000, 341, 14.2, 3.3, 3, 18, 12.8, 59.8, 61.9},
	{"IBM Ultrastar 36Z15", 2001, 15000, 397, 27.0, 2.6, 6, 36, 35.2, 80.9, 72.1},
	{"IBM Ultrastar 73LZX", 2001, 10000, 480, 27.3, 3.3, 3, 36, 34.7, 86.3, 85.2},
	{"Seagate Barracuda 180", 2001, 7200, 490, 31.2, 3.7, 12, 180, 203.5, 63.5, 71.8},
	{"Fujitsu AL-7LX", 2001, 15000, 450, 35.0, 2.7, 4, 36, 37.2, 91.8, 100.3},
	{"Seagate Cheetah X15-36LP", 2001, 15000, 482, 38.0, 2.6, 4, 36, 40.1, 88.6, 103.4},
	{"Seagate Cheetah 73LP", 2001, 10000, 485, 38.0, 3.3, 4, 73, 65.1, 83.9, 88.1},
	{"Fujitsu AL-7LE", 2001, 10000, 485, 39.5, 3.3, 4, 73, 67.6, 84.1, 88.1},
	{"Seagate Cheetah 10K.6", 2002, 10000, 570, 64.0, 3.3, 4, 146, 128.8, 105.1, 103.5},
	{"Seagate Cheetah 15K.3", 2002, 15000, 533, 64.0, 2.6, 4, 73, 74.8, 111.4, 114.4},
}

// EnvelopeDrive is one row of the paper's Table 2: the rated maximum
// operating temperature at a specified external wet-bulb temperature.
type EnvelopeDrive struct {
	Name            string
	Year            int
	RPM             units.RPM
	ExternalWetBulb units.Celsius
	MaxOperating    units.Celsius
}

// Table2 shows that the rated envelope is essentially invariant over years
// and RPM classes — the basis for holding the 45.22 C internal-air envelope
// constant across the roadmap.
var Table2 = []EnvelopeDrive{
	{"IBM Ultrastar 36LZX", 1999, 10000, 29.4, 50},
	{"Seagate Cheetah X15", 2000, 15000, 28.0, 55},
	{"IBM Ultrastar 36Z15", 2001, 15000, 29.4, 55},
	{"Seagate Barracuda 180", 2001, 7200, 28.0, 50},
}

// ElectronicsDelta is the additional internal temperature contributed by
// on-board electronics that the thermal model deliberately excludes (about
// 10 C per Huang & Chung, cited in section 3.3). Envelope + ElectronicsDelta
// ~= the rated 55 C maximum operating temperature of the Cheetah 15K.3.
const ElectronicsDelta units.Celsius = 10
