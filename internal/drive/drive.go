// Package drive ties the capacity, performance and thermal models together
// into a single integrated disk-drive model — the paper's central artifact.
// A drive.Model answers, for one physical configuration: how many sectors it
// stores, how fast it seeks and streams, and how hot it runs at a given
// operating point.
package drive

import (
	"fmt"

	"repro/internal/capacity"
	"repro/internal/geometry"
	"repro/internal/perf"
	"repro/internal/thermal"
	"repro/internal/units"
)

// Config specifies one drive.
type Config struct {
	// Name labels the drive in reports.
	Name string

	// Geometry fixes platter size/count and enclosure.
	Geometry geometry.Drive

	// BPI and TPI are the recording densities.
	BPI units.BPI
	TPI units.TPI

	// RPM is the nominal spindle speed.
	RPM units.RPM

	// Zones is the ZBR zone count (0 = capacity.DefaultZones).
	Zones int

	// Seek optionally overrides the platter-size-interpolated seek
	// parameters (zero value = derive from platter diameter).
	Seek perf.SeekParams
}

// Model is a fully derived drive.
type Model struct {
	cfg     Config
	layout  *capacity.Layout
	seek    *perf.SeekModel
	thermal *thermal.Model
}

// New derives the integrated model for a configuration.
func New(cfg Config) (*Model, error) {
	if cfg.RPM <= 0 {
		return nil, fmt.Errorf("drive %q: non-positive RPM %v", cfg.Name, cfg.RPM)
	}
	layout, err := capacity.New(capacity.Config{
		Geometry: cfg.Geometry,
		BPI:      cfg.BPI,
		TPI:      cfg.TPI,
		Zones:    cfg.Zones,
	})
	if err != nil {
		return nil, fmt.Errorf("drive %q: %w", cfg.Name, err)
	}
	sp := cfg.Seek
	if sp == (perf.SeekParams{}) {
		sp = perf.SeekParamsForPlatter(cfg.Geometry.PlatterDiameter)
	}
	seek, err := perf.NewSeekModel(sp, layout.Cylinders)
	if err != nil {
		return nil, fmt.Errorf("drive %q: %w", cfg.Name, err)
	}
	th, err := thermal.New(cfg.Geometry)
	if err != nil {
		return nil, fmt.Errorf("drive %q: %w", cfg.Name, err)
	}
	return &Model{cfg: cfg, layout: layout, seek: seek, thermal: th}, nil
}

// Config returns the drive's configuration.
func (m *Model) Config() Config { return m.cfg }

// Layout exposes the recording layout (zones, sector mapping).
func (m *Model) Layout() *capacity.Layout { return m.layout }

// Seek exposes the seek-time model.
func (m *Model) Seek() *perf.SeekModel { return m.seek }

// Thermal exposes the thermal model.
func (m *Model) Thermal() *thermal.Model { return m.thermal }

// Capacity returns the derated usable capacity.
func (m *Model) Capacity() units.Bytes { return m.layout.DeratedCapacity() }

// IDR returns the maximum internal data rate at the nominal RPM.
func (m *Model) IDR() units.MBPerSec { return perf.IDR(m.layout, m.cfg.RPM) }

// IDRAt returns the IDR at an arbitrary spindle speed.
func (m *Model) IDRAt(rpm units.RPM) units.MBPerSec { return perf.IDR(m.layout, rpm) }

// SteadyTemperature returns the steady internal-air temperature under a load
// at the nominal RPM.
func (m *Model) SteadyTemperature(vcmDuty float64, ambient units.Celsius) units.Celsius {
	st := m.thermal.SteadyState(thermal.Load{RPM: m.cfg.RPM, VCMDuty: vcmDuty, Ambient: ambient})
	return st.Air
}

// WithinEnvelope reports whether the drive's worst-case (VCM always on)
// steady temperature respects the thermal envelope at the default ambient.
func (m *Model) WithinEnvelope() bool {
	return m.SteadyTemperature(1, thermal.DefaultAmbient) <= thermal.Envelope
}

// MaxEnvelopeRPM returns the highest spindle speed this geometry supports
// within the envelope under worst-case seeking at the given ambient.
func (m *Model) MaxEnvelopeRPM(ambient units.Celsius) units.RPM {
	return m.thermal.MaxRPM(thermal.Envelope, 1, ambient)
}
