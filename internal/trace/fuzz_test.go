package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTrace ensures the text-trace parser never panics and that
// anything it accepts round-trips through Write.
func FuzzReadTrace(f *testing.F) {
	f.Add("# repro-trace v1\n100 1 200 8 R\n")
	f.Add("# repro-trace v1\n# comment\n\n1 2 3 4 W\n")
	f.Add("")
	f.Add("garbage")
	f.Add("# repro-trace v1\n-1 -2 -3 -4 R\n")
	f.Fuzz(func(t *testing.T, in string) {
		reqs, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, reqs); err != nil {
			t.Fatalf("Write after successful Read: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-Read after Write: %v", err)
		}
		if len(back) != len(reqs) {
			t.Fatalf("round trip changed length: %d -> %d", len(reqs), len(back))
		}
	})
}

// FuzzReadConfig ensures the JSON workload parser never panics and that
// accepted configs re-serialise.
func FuzzReadConfig(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteConfig(&buf, Workloads); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("[]")
	f.Add("{")
	f.Fuzz(func(t *testing.T, in string) {
		params, err := ReadConfig(strings.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteConfig(&out, params); err != nil {
			t.Fatalf("WriteConfig after successful ReadConfig: %v", err)
		}
	})
}
