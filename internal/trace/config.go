package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/raid"
	"repro/internal/units"
)

// paramsJSON is the on-disk form of Params: RAID levels by name, RPM as a
// plain number.
type paramsJSON struct {
	Name           string  `json:"name"`
	Year           int     `json:"year"`
	Seed           int64   `json:"seed"`
	Requests       int     `json:"requests"`
	Disks          int     `json:"disks"`
	Level          string  `json:"level"`
	StripeUnit     int     `json:"stripe_unit,omitempty"`
	BaselineRPM    float64 `json:"baseline_rpm"`
	DiskCapacityGB float64 `json:"disk_capacity_gb"`
	ReadFraction   float64 `json:"read_fraction"`
	MeanSectors    int     `json:"mean_sectors"`
	SeqFraction    float64 `json:"seq_fraction"`
	Streams        int     `json:"streams"`
	ArrivalRate    float64 `json:"arrival_rate"`
	BatchProb      float64 `json:"batch_prob"`
	LocalitySpan   float64 `json:"locality_span"`
	WriteBack      bool    `json:"write_back,omitempty"`
}

var levelNames = map[string]raid.Level{
	"jbod":   raid.JBOD,
	"raid0":  raid.RAID0,
	"raid1":  raid.RAID1,
	"raid5":  raid.RAID5,
	"RAID-0": raid.RAID0,
	"RAID-1": raid.RAID1,
	"RAID-5": raid.RAID5,
	"JBOD":   raid.JBOD,
}

func levelName(l raid.Level) string {
	switch l {
	case raid.RAID0:
		return "raid0"
	case raid.RAID1:
		return "raid1"
	case raid.RAID5:
		return "raid5"
	default:
		return "jbod"
	}
}

// WriteConfig serialises workload parameters as JSON (one object per
// workload, as an array).
func WriteConfig(w io.Writer, params []Params) error {
	out := make([]paramsJSON, len(params))
	for i, p := range params {
		out[i] = paramsJSON{
			Name: p.Name, Year: p.Year, Seed: p.Seed, Requests: p.Requests,
			Disks: p.Disks, Level: levelName(p.Level), StripeUnit: p.StripeUnit,
			BaselineRPM: float64(p.BaselineRPM), DiskCapacityGB: p.DiskCapacityGB,
			ReadFraction: p.ReadFraction, MeanSectors: p.MeanSectors,
			SeqFraction: p.SeqFraction, Streams: p.Streams,
			ArrivalRate: p.ArrivalRate, BatchProb: p.BatchProb,
			LocalitySpan: p.LocalitySpan, WriteBack: p.WriteBack,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadConfig parses workloads serialised by WriteConfig (or written by
// hand) and validates each.
func ReadConfig(r io.Reader) ([]Params, error) {
	var in []paramsJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("trace: config: %w", err)
	}
	out := make([]Params, len(in))
	for i, j := range in {
		level, ok := levelNames[j.Level]
		if !ok {
			return nil, fmt.Errorf("trace: config: workload %q has unknown level %q", j.Name, j.Level)
		}
		p := Params{
			Name: j.Name, Year: j.Year, Seed: j.Seed, Requests: j.Requests,
			Disks: j.Disks, Level: level, StripeUnit: j.StripeUnit,
			BaselineRPM: units.RPM(j.BaselineRPM), DiskCapacityGB: j.DiskCapacityGB,
			ReadFraction: j.ReadFraction, MeanSectors: j.MeanSectors,
			SeqFraction: j.SeqFraction, Streams: j.Streams,
			ArrivalRate: j.ArrivalRate, BatchProb: j.BatchProb,
			LocalitySpan: j.LocalitySpan, WriteBack: j.WriteBack,
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("trace: config: %w", err)
		}
		out[i] = p
	}
	return out, nil
}
