package trace

import (
	"repro/internal/raid"
)

// maxRequestSectors caps generated request sizes (1 MB).
const maxRequestSectors = 2048

// Generate produces the workload's request sequence for a volume with the
// given addressable capacity (in sectors) by collecting the lazy Stream into
// a slice. Generation is deterministic in Params.Seed; prefer Stream when
// the trace does not need to be materialized.
func (p Params) Generate(volumeSectors int64) ([]raid.Request, error) {
	s, err := p.Stream(volumeSectors)
	if err != nil {
		return nil, err
	}
	reqs := make([]raid.Request, 0, p.Requests)
	for {
		r, ok := s.Next()
		if !ok {
			return reqs, nil
		}
		reqs = append(reqs, r)
	}
}
