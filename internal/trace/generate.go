package trace

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/raid"
)

// maxRequestSectors caps generated request sizes (1 MB).
const maxRequestSectors = 2048

// Generate produces the workload's request sequence for a volume with the
// given addressable capacity (in sectors). Generation is deterministic in
// Params.Seed.
func (p Params) Generate(volumeSectors int64) ([]raid.Request, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// Streams model concurrent sequential request sources (mail spools,
	// table scans, log appends). Each has a home region for its
	// non-sequential jumps and a cursor for sequential continuation.
	type stream struct {
		home   int64
		cursor int64
	}
	streams := make([]stream, p.Streams)
	for i := range streams {
		h := int64(rng.Float64() * float64(volumeSectors))
		streams[i] = stream{home: h, cursor: h}
	}

	span := int64(p.LocalitySpan * float64(volumeSectors))
	if span < int64(p.MeanSectors)*4 {
		span = int64(p.MeanSectors) * 4
	}

	// Preserve the configured mean rate despite zero-gap batches: the
	// exponential gaps between batches are stretched accordingly.
	meanGap := 1 / (p.ArrivalRate * (1 - p.BatchProb)) // seconds

	reqs := make([]raid.Request, 0, p.Requests)
	now := 0.0
	for i := 0; i < p.Requests; i++ {
		if i > 0 && rng.Float64() >= p.BatchProb {
			now += rng.ExpFloat64() * meanGap
		}

		s := &streams[rng.Intn(len(streams))]
		size := geometricSize(rng, p.MeanSectors)

		var block int64
		if rng.Float64() < p.SeqFraction {
			block = s.cursor
		} else {
			// Jump within the stream's locality window.
			lo := s.home - span/2
			if lo < 0 {
				lo = 0
			}
			hi := lo + span
			if hi > volumeSectors {
				hi = volumeSectors
				lo = hi - span
				if lo < 0 {
					lo = 0
				}
			}
			block = lo + int64(rng.Float64()*float64(hi-lo))
			// Occasionally the stream relocates entirely (a new file, a
			// new user's mailbox).
			if rng.Float64() < 0.05 {
				s.home = int64(rng.Float64() * float64(volumeSectors))
			}
		}
		if block+int64(size) > volumeSectors {
			block = volumeSectors - int64(size)
			if block < 0 {
				block = 0
				size = int(volumeSectors)
			}
		}
		s.cursor = block + int64(size)
		if s.cursor >= volumeSectors {
			s.cursor = s.home
		}

		reqs = append(reqs, raid.Request{
			ID:      int64(i),
			Arrival: time.Duration(now * float64(time.Second)),
			Block:   block,
			Sectors: size,
			Write:   rng.Float64() >= p.ReadFraction,
		})
	}
	return reqs, nil
}

// geometricSize draws a request size with the given mean, in sectors,
// clamped to [1, maxRequestSectors].
func geometricSize(rng *rand.Rand, mean int) int {
	if mean <= 1 {
		return 1
	}
	// Geometric with success probability 1/mean has mean `mean`.
	pSuccess := 1 / float64(mean)
	u := rng.Float64()
	n := int(math.Ceil(math.Log(1-u) / math.Log(1-pSuccess)))
	if n < 1 {
		n = 1
	}
	if n > maxRequestSectors {
		n = maxRequestSectors
	}
	return n
}
