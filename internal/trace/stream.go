package trace

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/raid"
)

// Stream yields a workload's request sequence lazily: the same seeded RNG
// walk as Generate, one request per Next call, so a 10M-request replay never
// materializes a slice. It implements sim.Source[raid.Request].
type Stream struct {
	p             Params
	rng           *rand.Rand
	streams       []genStream
	span          int64
	meanGap       float64 // seconds between batches
	volumeSectors int64
	now           float64 // seconds
	i             int
}

// genStream is one concurrent sequential source (a mail spool, a table
// scan) with a home region for jumps and a cursor for continuation.
type genStream struct {
	home   int64
	cursor int64
}

// Stream returns a lazy generator over a volume with the given addressable
// capacity (in sectors). Requests are yielded in arrival order (arrivals
// are nondecreasing) with IDs 0..Requests-1, deterministically in
// Params.Seed: collecting the stream reproduces Generate bit-for-bit.
func (p Params) Stream(volumeSectors int64) (*Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	streams := make([]genStream, p.Streams)
	for i := range streams {
		h := int64(rng.Float64() * float64(volumeSectors))
		streams[i] = genStream{home: h, cursor: h}
	}
	span := int64(p.LocalitySpan * float64(volumeSectors))
	if span < int64(p.MeanSectors)*4 {
		span = int64(p.MeanSectors) * 4
	}
	return &Stream{
		p:       p,
		rng:     rng,
		streams: streams,
		span:    span,
		// Preserve the configured mean rate despite zero-gap batches: the
		// exponential gaps between batches are stretched accordingly.
		meanGap:       1 / (p.ArrivalRate * (1 - p.BatchProb)),
		volumeSectors: volumeSectors,
	}, nil
}

// Remaining returns how many requests the stream has yet to yield.
func (s *Stream) Remaining() int { return s.p.Requests - s.i }

// Next yields the next request, or false once Params.Requests have been
// produced.
func (s *Stream) Next() (raid.Request, bool) {
	if s.i >= s.p.Requests {
		return raid.Request{}, false
	}
	p, rng := s.p, s.rng
	if s.i > 0 && rng.Float64() >= p.BatchProb {
		s.now += rng.ExpFloat64() * s.meanGap
	}

	st := &s.streams[rng.Intn(len(s.streams))]
	size := geometricSize(rng, p.MeanSectors)

	var block int64
	if rng.Float64() < p.SeqFraction {
		block = st.cursor
	} else {
		// Jump within the stream's locality window.
		lo := st.home - s.span/2
		if lo < 0 {
			lo = 0
		}
		hi := lo + s.span
		if hi > s.volumeSectors {
			hi = s.volumeSectors
			lo = hi - s.span
			if lo < 0 {
				lo = 0
			}
		}
		block = lo + int64(rng.Float64()*float64(hi-lo))
		// Occasionally the stream relocates entirely (a new file, a new
		// user's mailbox).
		if rng.Float64() < 0.05 {
			st.home = int64(rng.Float64() * float64(s.volumeSectors))
		}
	}
	if block+int64(size) > s.volumeSectors {
		block = s.volumeSectors - int64(size)
		if block < 0 {
			block = 0
			size = int(s.volumeSectors)
		}
	}
	st.cursor = block + int64(size)
	if st.cursor >= s.volumeSectors {
		st.cursor = st.home
	}

	r := raid.Request{
		ID:      int64(s.i),
		Arrival: time.Duration(s.now * float64(time.Second)),
		Block:   block,
		Sectors: size,
		Write:   rng.Float64() >= p.ReadFraction,
	}
	s.i++
	return r, true
}

// geometricSize draws a request size with the given mean, in sectors,
// clamped to [1, maxRequestSectors].
func geometricSize(rng *rand.Rand, mean int) int {
	if mean <= 1 {
		return 1
	}
	// Geometric with success probability 1/mean has mean `mean`.
	pSuccess := 1 / float64(mean)
	u := rng.Float64()
	n := int(math.Ceil(math.Log(1-u) / math.Log(1-pSuccess)))
	if n < 1 {
		n = 1
	}
	if n > maxRequestSectors {
		n = maxRequestSectors
	}
	return n
}
