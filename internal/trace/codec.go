package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/raid"
)

// codec header for the plain-text trace format.
const formatHeader = "# repro-trace v1"

// Write serialises requests in the repository's plain-text trace format:
// a header line, then one "arrival_ns id block sectors R|W" line per request.
func Write(w io.Writer, reqs []raid.Request) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, formatHeader); err != nil {
		return err
	}
	for _, r := range reqs {
		op := "R"
		if r.Write {
			op = "W"
		}
		if _, err := fmt.Fprintf(bw, "%d %d %d %d %s\n",
			r.Arrival.Nanoseconds(), r.ID, r.Block, r.Sectors, op); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace written by Write.
func Read(r io.Reader) ([]raid.Request, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty input")
	}
	if !strings.HasPrefix(sc.Text(), formatHeader) {
		return nil, fmt.Errorf("trace: bad header %q", sc.Text())
	}
	var out []raid.Request
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var ns, id, block int64
		var sectors int
		var op string
		if _, err := fmt.Sscanf(text, "%d %d %d %d %s", &ns, &id, &block, &sectors, &op); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if op != "R" && op != "W" {
			return nil, fmt.Errorf("trace: line %d: bad op %q", line, op)
		}
		out = append(out, raid.Request{
			ID:      id,
			Arrival: time.Duration(ns),
			Block:   block,
			Sectors: sectors,
			Write:   op == "W",
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
