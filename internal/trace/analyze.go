package trace

import (
	"fmt"
	"time"

	"repro/internal/raid"
)

// Profile summarises a trace the way the paper characterises its workloads
// (section 5.1): request mix and size, arrival rate, and — after mapping the
// volume requests onto the member disks — the fraction of requests that move
// the actuator and the mean seek distance in cylinders (the paper quotes
// 1,952 cylinders and 86% arm movement for Openmail).
type Profile struct {
	Requests     int
	ReadFraction float64
	MeanSectors  float64
	// Rate is the mean arrival rate in requests/second.
	Rate float64
	// Span is the trace duration.
	Span time.Duration

	// ArmMoveFraction is the share of disk-level requests that land on a
	// different cylinder than their disk's previous request.
	ArmMoveFraction float64
	// MeanSeekCylinders is the mean cylinder distance of arm-moving
	// requests.
	MeanSeekCylinders float64
	// DiskRequests counts the disk-level I/Os after volume fan-out.
	DiskRequests int
}

// Analyze maps a volume trace onto a workload's array and computes the
// profile. The volume is only used for its geometry; no simulation runs.
func (p Params) Analyze(reqs []raid.Request) (Profile, error) {
	vol, err := p.BuildVolume(p.BaselineRPM)
	if err != nil {
		return Profile{}, err
	}
	layout, err := p.MemberDiskLayout()
	if err != nil {
		return Profile{}, err
	}

	var prof Profile
	prof.Requests = len(reqs)
	if len(reqs) == 0 {
		return prof, nil
	}

	var reads, sectors int
	first, last := reqs[0].Arrival, reqs[0].Arrival
	for _, r := range reqs {
		if !r.Write {
			reads++
		}
		sectors += r.Sectors
		if r.Arrival < first {
			first = r.Arrival
		}
		if r.Arrival > last {
			last = r.Arrival
		}
	}
	prof.ReadFraction = float64(reads) / float64(len(reqs))
	prof.MeanSectors = float64(sectors) / float64(len(reqs))
	prof.Span = last - first
	if prof.Span > 0 {
		prof.Rate = float64(len(reqs)-1) / prof.Span.Seconds()
	}

	// Fan out to member disks and walk each disk's cylinder sequence.
	// RAID-5 read-modify-write pairs (a write immediately following its
	// own old-data read at the same address) are collapsed into a single
	// positioning event: the rewrite waits a rotation, not a seek, and the
	// paper's per-request arm-movement statistic counts positionings.
	type diskState struct {
		cyl     int
		lastLBN int64
		lastID  int64
		valid   bool
	}
	state := make(map[int]*diskState, p.Disks)
	var moves int
	var seekSum float64
	for _, r := range reqs {
		subs, err := vol.Explode(r)
		if err != nil {
			return Profile{}, fmt.Errorf("trace: analyze: %w", err)
		}
		for _, s := range subs {
			st := state[s.Disk]
			if st == nil {
				st = &diskState{}
				state[s.Disk] = st
			}
			if st.valid && s.Request.Write &&
				s.Request.ID == st.lastID && s.Request.LBN == st.lastLBN {
				continue // the RMW rewrite: same positioning event
			}
			loc, err := layout.Locate(s.Request.LBN)
			if err != nil {
				return Profile{}, fmt.Errorf("trace: analyze: %w", err)
			}
			prof.DiskRequests++
			if st.valid && st.cyl != loc.Cylinder {
				moves++
				d := loc.Cylinder - st.cyl
				if d < 0 {
					d = -d
				}
				seekSum += float64(d)
			}
			st.cyl = loc.Cylinder
			st.lastLBN = s.Request.LBN
			st.lastID = s.Request.ID
			st.valid = true
		}
	}
	if prof.DiskRequests > 0 {
		prof.ArmMoveFraction = float64(moves) / float64(prof.DiskRequests)
	}
	if moves > 0 {
		prof.MeanSeekCylinders = seekSum / float64(moves)
	}
	return prof, nil
}
