package trace

import (
	"testing"
)

// TestStreamMatchesGenerate pins the determinism contract: collecting the
// lazy stream reproduces the batch Generate slice bit-for-bit for every
// seeded workload.
func TestStreamMatchesGenerate(t *testing.T) {
	for _, w := range Workloads {
		w := w.WithRequests(5000)
		const sectors = 1 << 26
		batch, err := w.Generate(sectors)
		if err != nil {
			t.Fatal(err)
		}
		s, err := w.Stream(sectors)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range batch {
			got, ok := s.Next()
			if !ok {
				t.Fatalf("%s: stream ended at %d/%d", w.Name, i, len(batch))
			}
			if got != want {
				t.Fatalf("%s: request %d differs: stream %+v vs batch %+v", w.Name, i, got, want)
			}
		}
		if _, ok := s.Next(); ok {
			t.Fatalf("%s: stream yields past %d requests", w.Name, len(batch))
		}
		if s.Remaining() != 0 {
			t.Fatalf("%s: %d remaining after exhaustion", w.Name, s.Remaining())
		}
	}
}

// TestStreamArrivalsNondecreasing pins the ordering property every streaming
// consumer (raid.RunStream, the DTM loops) relies on.
func TestStreamArrivalsNondecreasing(t *testing.T) {
	for _, w := range Workloads {
		w := w.WithRequests(3000)
		s, err := w.Stream(1 << 26)
		if err != nil {
			t.Fatal(err)
		}
		last := int64(-1)
		var lastArrival int64
		for {
			r, ok := s.Next()
			if !ok {
				break
			}
			if int64(r.Arrival) < lastArrival {
				t.Fatalf("%s: arrival %v after %v", w.Name, r.Arrival, lastArrival)
			}
			if r.ID != last+1 {
				t.Fatalf("%s: ID %d after %d", w.Name, r.ID, last)
			}
			last, lastArrival = r.ID, int64(r.Arrival)
		}
	}
}

func TestStreamValidates(t *testing.T) {
	bad := Workloads[0]
	bad.Requests = 0
	if _, err := bad.Stream(1 << 20); err == nil {
		t.Fatal("invalid params accepted")
	}
}
