// Package trace generates the synthetic I/O workloads that stand in for the
// paper's five commercial traces (HPL Openmail, a UMass OLTP application and
// Search-Engine trace, and the authors' TPC-C and TPC-H collections), which
// are not publicly redistributable.
//
// Each generator is parameterised to match every statistic the paper states
// about its trace — request count, disk count and capacity, RAID
// organisation, baseline RPM, read/write mix, sequentiality (Openmail: 86%
// of requests move the arm), and request-size character ("most requests span
// multiple successive blocks") — plus an arrival burstiness tuned so the
// baseline mean response times land in the regime Figure 4 reports. The
// claim under test is relative: higher RPM must shift the response-time CDF
// left by 20-60%.
package trace

import (
	"fmt"
	"time"

	"repro/internal/capacity"
	"repro/internal/disksim"
	"repro/internal/geometry"
	"repro/internal/raid"
	"repro/internal/scaling"
	"repro/internal/units"
)

// Params fully describes one synthetic workload.
type Params struct {
	// Name labels the workload in reports.
	Name string

	// Year selects the recording densities of the member disks.
	Year int

	// Seed makes generation deterministic.
	Seed int64

	// Requests is the number of volume-level requests to generate.
	Requests int

	// Disks is the member-disk count.
	Disks int

	// Level is the volume organisation (RAID5 for Openmail and TPC-C,
	// JBOD otherwise, per the paper's Figure 4(a)).
	Level raid.Level

	// StripeUnit is the RAID stripe unit in sectors (0 = the paper's 16).
	StripeUnit int

	// BaselineRPM is the speed of the original system's disks.
	BaselineRPM units.RPM

	// DiskCapacityGB is the per-disk capacity of the original system; the
	// member-disk platter count is chosen to approximate it.
	DiskCapacityGB float64

	// ReadFraction is the probability a request is a read.
	ReadFraction float64

	// MeanSectors is the mean request size in sectors (geometric law).
	MeanSectors int

	// SeqFraction is the probability a request continues its stream
	// sequentially (no arm movement).
	SeqFraction float64

	// Streams is the number of concurrent sequential streams.
	Streams int

	// ArrivalRate is the mean volume-request arrival rate, requests/second.
	ArrivalRate float64

	// BatchProb is the probability a request arrives back-to-back with its
	// predecessor (burstiness; the complementary gaps are exponential,
	// rescaled to preserve ArrivalRate).
	BatchProb float64

	// LocalitySpan is the fraction of the volume a non-sequential jump
	// stays within, centred on the stream's home region.
	LocalitySpan float64

	// WriteBack gives the array controller a battery-backed write cache
	// (host writes complete in sub-millisecond time while destage I/Os
	// still occupy the disks) — the standard configuration for audited
	// TPC-C systems of the era.
	WriteBack bool
}

// Validate reports whether the parameters are generable.
func (p Params) Validate() error {
	switch {
	case p.Requests <= 0:
		return fmt.Errorf("trace %q: no requests", p.Name)
	case p.Disks <= 0:
		return fmt.Errorf("trace %q: no disks", p.Name)
	case p.BaselineRPM <= 0:
		return fmt.Errorf("trace %q: no baseline RPM", p.Name)
	case p.ReadFraction < 0 || p.ReadFraction > 1:
		return fmt.Errorf("trace %q: read fraction %v", p.Name, p.ReadFraction)
	case p.SeqFraction < 0 || p.SeqFraction > 1:
		return fmt.Errorf("trace %q: sequential fraction %v", p.Name, p.SeqFraction)
	case p.BatchProb < 0 || p.BatchProb >= 1:
		return fmt.Errorf("trace %q: batch probability %v", p.Name, p.BatchProb)
	case p.MeanSectors <= 0:
		return fmt.Errorf("trace %q: mean sectors %d", p.Name, p.MeanSectors)
	case p.ArrivalRate <= 0:
		return fmt.Errorf("trace %q: arrival rate %v", p.Name, p.ArrivalRate)
	case p.Streams <= 0:
		return fmt.Errorf("trace %q: no streams", p.Name)
	case p.LocalitySpan <= 0 || p.LocalitySpan > 1:
		return fmt.Errorf("trace %q: locality span %v", p.Name, p.LocalitySpan)
	}
	return nil
}

// Workloads is the paper's Figure 4(a) table realised as generator
// parameters. Request counts are the paper's; WithRequests scales them down
// for quick runs. Arrival rates and mixes are tuned so the baseline mean
// response times land in the paper's regime (Openmail heavily queued at
// ~55 ms, OLTP lightly loaded at ~6 ms, and so on).
var Workloads = []Params{
	{
		Name: "HPL Openmail", Year: 2000, Seed: 1,
		Requests: 3053745, Disks: 8, Level: raid.RAID5,
		BaselineRPM: 10000, DiskCapacityGB: 9.29,
		ReadFraction: 0.67, MeanSectors: 12,
		SeqFraction: 0.14, Streams: 64,
		ArrivalRate: 270, BatchProb: 0.50, LocalitySpan: 0.65,
	},
	{
		Name: "OLTP Application", Year: 1999, Seed: 2,
		Requests: 5334945, Disks: 24, Level: raid.JBOD,
		BaselineRPM: 10000, DiskCapacityGB: 19.07,
		ReadFraction: 0.62, MeanSectors: 8,
		SeqFraction: 0.35, Streams: 96,
		ArrivalRate: 800, BatchProb: 0.25, LocalitySpan: 0.008,
	},
	{
		Name: "Search-Engine", Year: 1999, Seed: 3,
		Requests: 4579809, Disks: 6, Level: raid.JBOD,
		BaselineRPM: 10000, DiskCapacityGB: 19.07,
		ReadFraction: 0.98, MeanSectors: 24,
		SeqFraction: 0.35, Streams: 48,
		ArrivalRate: 600, BatchProb: 0.45, LocalitySpan: 0.40,
	},
	{
		Name: "TPC-C", Year: 2002, Seed: 4,
		Requests: 6155547, Disks: 4, Level: raid.RAID5,
		BaselineRPM: 10000, DiskCapacityGB: 37.17,
		ReadFraction: 0.55, MeanSectors: 8,
		SeqFraction: 0.45, Streams: 64,
		ArrivalRate: 115, BatchProb: 0.35, LocalitySpan: 0.02,
		WriteBack: true,
	},
	{
		Name: "TPC-H", Year: 2002, Seed: 5,
		Requests: 4228725, Disks: 15, Level: raid.JBOD,
		BaselineRPM: 7200, DiskCapacityGB: 35.96,
		ReadFraction: 0.95, MeanSectors: 96,
		SeqFraction: 0.85, Streams: 30,
		ArrivalRate: 780, BatchProb: 0.35, LocalitySpan: 0.45,
	},
}

// WorkloadByName finds a workload by (case-sensitive) name.
func WorkloadByName(name string) (Params, error) {
	for _, w := range Workloads {
		if w.Name == name {
			return w, nil
		}
	}
	return Params{}, fmt.Errorf("trace: unknown workload %q", name)
}

// WithRequests returns a copy generating n requests (scaling the workload
// down for quick experiments while preserving its character).
func (p Params) WithRequests(n int) Params {
	p.Requests = n
	return p
}

// memberPlatter is the platter size of the era's server disks.
const memberPlatter units.Inches = 3.3

// MemberDiskLayout derives a recording layout for one member disk: the
// workload year's densities, 3.3" platters, and the platter count that best
// approximates the original system's per-disk capacity.
func (p Params) MemberDiskLayout() (*capacity.Layout, error) {
	bpi, tpi := scaling.DefaultTrend().Densities(p.Year)
	var best *capacity.Layout
	bestErr := 0.0
	for platters := 1; platters <= 8; platters++ {
		l, err := capacity.New(capacity.Config{
			Geometry: geometry.Drive{
				PlatterDiameter: memberPlatter,
				Platters:        platters,
				FormFactor:      geometry.FormFactor35,
			},
			BPI:   bpi,
			TPI:   tpi,
			Zones: 30,
		})
		if err != nil {
			return nil, fmt.Errorf("trace %q: %w", p.Name, err)
		}
		diff := abs(l.DeratedCapacity().GB() - p.DiskCapacityGB)
		if best == nil || diff < bestErr {
			best, bestErr = l, diff
		}
	}
	return best, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// BuildVolume assembles the workload's disk array at a given spindle speed.
func (p Params) BuildVolume(rpm units.RPM) (*raid.Volume, error) {
	layout, err := p.MemberDiskLayout()
	if err != nil {
		return nil, err
	}
	disks := make([]*disksim.Disk, p.Disks)
	for i := range disks {
		d, err := disksim.New(disksim.Config{Layout: layout, RPM: rpm})
		if err != nil {
			return nil, fmt.Errorf("trace %q: disk %d: %w", p.Name, i, err)
		}
		disks[i] = d
	}
	v, err := raid.New(p.Level, disks, p.StripeUnit)
	if err != nil {
		return nil, err
	}
	if p.WriteBack {
		v.SetWriteBack(300 * time.Microsecond)
	}
	return v, nil
}
