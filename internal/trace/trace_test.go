package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/raid"
)

func TestWorkloadTableMatchesPaper(t *testing.T) {
	// The Figure 4(a) table: request counts, disk counts, RPMs, RAID.
	cases := []struct {
		name  string
		reqs  int
		disks int
		rpm   float64
		level raid.Level
	}{
		{"HPL Openmail", 3053745, 8, 10000, raid.RAID5},
		{"OLTP Application", 5334945, 24, 10000, raid.JBOD},
		{"Search-Engine", 4579809, 6, 10000, raid.JBOD},
		{"TPC-C", 6155547, 4, 10000, raid.RAID5},
		{"TPC-H", 4228725, 15, 7200, raid.JBOD},
	}
	if len(Workloads) != len(cases) {
		t.Fatalf("%d workloads, want %d", len(Workloads), len(cases))
	}
	for _, c := range cases {
		w, err := WorkloadByName(c.name)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if w.Requests != c.reqs || w.Disks != c.disks ||
			float64(w.BaselineRPM) != c.rpm || w.Level != c.level {
			t.Errorf("%s: %+v does not match the paper's table", c.name, w)
		}
	}
	if _, err := WorkloadByName("nope"); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestMemberDiskLayoutApproximatesCapacity(t *testing.T) {
	for _, w := range Workloads {
		l, err := w.MemberDiskLayout()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		got := l.DeratedCapacity().GB()
		relErr := math.Abs(got-w.DiskCapacityGB) / w.DiskCapacityGB
		if relErr > 0.45 {
			t.Errorf("%s: member disk %.1f GB vs original %.1f GB (%.0f%% off)",
				w.Name, got, w.DiskCapacityGB, relErr*100)
		}
	}
}

func TestValidate(t *testing.T) {
	good := Workloads[0]
	if err := good.Validate(); err != nil {
		t.Errorf("paper workload invalid: %v", err)
	}
	bad := []func(p *Params){
		func(p *Params) { p.Requests = 0 },
		func(p *Params) { p.Disks = 0 },
		func(p *Params) { p.BaselineRPM = 0 },
		func(p *Params) { p.ReadFraction = 1.5 },
		func(p *Params) { p.SeqFraction = -0.1 },
		func(p *Params) { p.BatchProb = 1 },
		func(p *Params) { p.MeanSectors = 0 },
		func(p *Params) { p.ArrivalRate = 0 },
		func(p *Params) { p.Streams = 0 },
		func(p *Params) { p.LocalitySpan = 0 },
	}
	for i, mutate := range bad {
		p := good
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("mutation %d should invalidate", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w := Workloads[0].WithRequests(500)
	a, err := w.Generate(1 << 24)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Generate(1 << 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs between runs with the same seed", i)
		}
	}
	w2 := w
	w2.Seed = 99
	c, err := w2.Generate(1 << 24)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range c {
		if c[i].Block == a[i].Block {
			same++
		}
	}
	if same == len(c) {
		t.Error("different seed produced an identical trace")
	}
}

func TestGenerateStatistics(t *testing.T) {
	w := Workloads[0].WithRequests(20000)
	const vol = int64(1) << 26
	reqs, err := w.Generate(vol)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 20000 {
		t.Fatalf("generated %d requests", len(reqs))
	}
	var reads, sizeSum int
	var lastArrival time.Duration
	for i, r := range reqs {
		if r.Block < 0 || r.Block+int64(r.Sectors) > vol {
			t.Fatalf("request %d out of volume: %+v", i, r)
		}
		if r.Sectors < 1 {
			t.Fatalf("request %d empty", i)
		}
		if r.Arrival < lastArrival {
			t.Fatalf("arrivals not monotone at %d", i)
		}
		lastArrival = r.Arrival
		if !r.Write {
			reads++
		}
		sizeSum += r.Sectors
	}
	readFrac := float64(reads) / float64(len(reqs))
	if math.Abs(readFrac-w.ReadFraction) > 0.02 {
		t.Errorf("read fraction %.3f, want ~%.2f", readFrac, w.ReadFraction)
	}
	meanSize := float64(sizeSum) / float64(len(reqs))
	if math.Abs(meanSize-float64(w.MeanSectors))/float64(w.MeanSectors) > 0.15 {
		t.Errorf("mean size %.1f sectors, want ~%d", meanSize, w.MeanSectors)
	}
	// The overall rate should be near the configured one.
	rate := float64(len(reqs)-1) / lastArrival.Seconds()
	if math.Abs(rate-w.ArrivalRate)/w.ArrivalRate > 0.10 {
		t.Errorf("arrival rate %.0f/s, want ~%.0f", rate, w.ArrivalRate)
	}
}

func TestGenerateSequentialityKnob(t *testing.T) {
	seqy := Workloads[0].WithRequests(5000)
	seqy.SeqFraction = 0.9
	randy := seqy
	randy.SeqFraction = 0.0
	const vol = int64(1) << 26
	count := func(p Params) int {
		reqs, err := p.Generate(vol)
		if err != nil {
			t.Fatal(err)
		}
		cursors := map[int64]bool{}
		seq := 0
		for _, r := range reqs {
			if cursors[r.Block] {
				seq++
			}
			cursors[r.Block+int64(r.Sectors)] = true
		}
		return seq
	}
	if s, r := count(seqy), count(randy); s <= r*2 {
		t.Errorf("sequentiality knob ineffective: seq-heavy %d vs random %d", s, r)
	}
}

func TestBuildVolume(t *testing.T) {
	for _, w := range Workloads {
		v, err := w.BuildVolume(w.BaselineRPM)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if len(v.Disks()) != w.Disks {
			t.Errorf("%s: %d disks, want %d", w.Name, len(v.Disks()), w.Disks)
		}
		if v.Level() != w.Level {
			t.Errorf("%s: level %v, want %v", w.Name, v.Level(), w.Level)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	w := Workloads[1].WithRequests(300)
	reqs, err := w.Generate(1 << 24)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(reqs) {
		t.Fatalf("%d round-tripped, want %d", len(back), len(reqs))
	}
	for i := range reqs {
		if reqs[i] != back[i] {
			t.Fatalf("request %d mangled: %+v vs %+v", i, reqs[i], back[i])
		}
	}
}

func TestCodecErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	if _, err := Read(strings.NewReader("not a trace\n")); err == nil {
		t.Error("bad header should error")
	}
	if _, err := Read(strings.NewReader("# repro-trace v1\n1 2 3\n")); err == nil {
		t.Error("short line should error")
	}
	if _, err := Read(strings.NewReader("# repro-trace v1\n1 2 3 4 X\n")); err == nil {
		t.Error("bad op should error")
	}
}

func TestCodecSkipsCommentsAndBlanks(t *testing.T) {
	in := "# repro-trace v1\n# comment\n\n100 1 200 8 R\n"
	reqs, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 || reqs[0].ID != 1 || reqs[0].Write {
		t.Errorf("parsed %+v", reqs)
	}
}

func TestWithRequests(t *testing.T) {
	w := Workloads[0].WithRequests(42)
	if w.Requests != 42 {
		t.Error("WithRequests did not apply")
	}
	if Workloads[0].Requests == 42 {
		t.Error("WithRequests mutated the table")
	}
}

func TestAnalyzeOpenmailProfile(t *testing.T) {
	// The paper characterises Openmail as seek-intensive: 86% of requests
	// move the arm. Our synthetic stand-in must share that character.
	w := Workloads[0].WithRequests(20000)
	vol, err := w.BuildVolume(w.BaselineRPM)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := w.Generate(vol.Capacity())
	if err != nil {
		t.Fatal(err)
	}
	prof, err := w.Analyze(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Requests != 20000 {
		t.Errorf("requests = %d", prof.Requests)
	}
	if prof.ArmMoveFraction < 0.7 {
		t.Errorf("arm-move fraction %.2f; Openmail should be seek-heavy (paper: 0.86)", prof.ArmMoveFraction)
	}
	if prof.MeanSeekCylinders <= 0 {
		t.Error("no seek distance measured")
	}
	if prof.DiskRequests <= prof.Requests {
		t.Error("RAID-5 fan-out should produce more disk I/Os than volume requests")
	}
	if math.Abs(prof.ReadFraction-w.ReadFraction) > 0.02 {
		t.Errorf("read fraction %.2f vs configured %.2f", prof.ReadFraction, w.ReadFraction)
	}
	if math.Abs(prof.Rate-w.ArrivalRate)/w.ArrivalRate > 0.1 {
		t.Errorf("rate %.0f vs configured %.0f", prof.Rate, w.ArrivalRate)
	}
}

func TestAnalyzeSequentialWorkloadMovesLess(t *testing.T) {
	// TPC-H is the most sequential workload; its arm-move fraction must be
	// well below Openmail's.
	mail := Workloads[0].WithRequests(8000)
	tpch := Workloads[4].WithRequests(8000)
	profile := func(w Params) Profile {
		vol, err := w.BuildVolume(w.BaselineRPM)
		if err != nil {
			t.Fatal(err)
		}
		reqs, err := w.Generate(vol.Capacity())
		if err != nil {
			t.Fatal(err)
		}
		p, err := w.Analyze(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if m, h := profile(mail), profile(tpch); h.ArmMoveFraction >= m.ArmMoveFraction {
		t.Errorf("TPC-H arm moves (%.2f) should be below Openmail's (%.2f)",
			h.ArmMoveFraction, m.ArmMoveFraction)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	prof, err := Workloads[0].Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Requests != 0 || prof.Rate != 0 {
		t.Errorf("empty profile: %+v", prof)
	}
}

func TestConfigRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteConfig(&buf, Workloads); err != nil {
		t.Fatal(err)
	}
	back, err := ReadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(Workloads) {
		t.Fatalf("%d workloads round-tripped", len(back))
	}
	for i := range Workloads {
		if back[i] != Workloads[i] {
			t.Errorf("workload %d mangled:\n got %+v\nwant %+v", i, back[i], Workloads[i])
		}
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := ReadConfig(strings.NewReader("not json")); err == nil {
		t.Error("garbage should be rejected")
	}
	if _, err := ReadConfig(strings.NewReader(`[{"name":"x","level":"raid9"}]`)); err == nil {
		t.Error("unknown level should be rejected")
	}
	if _, err := ReadConfig(strings.NewReader(`[{"name":"x","level":"jbod","bogus":1}]`)); err == nil {
		t.Error("unknown fields should be rejected")
	}
	// Valid JSON but invalid workload (no requests).
	bad := `[{"name":"x","year":2002,"seed":1,"requests":0,"disks":2,"level":"jbod",
	"baseline_rpm":10000,"disk_capacity_gb":10,"read_fraction":0.5,"mean_sectors":8,
	"seq_fraction":0.2,"streams":4,"arrival_rate":100,"batch_prob":0.1,"locality_span":0.5}]`
	if _, err := ReadConfig(strings.NewReader(bad)); err == nil {
		t.Error("invalid workload should be rejected")
	}
}
