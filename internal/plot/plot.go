// Package plot renders simple ASCII line charts, so the cmd/ binaries can
// draw the paper's figures directly in a terminal: the Figure 2/3/5 IDR
// roadmaps (log-scale y), the Figure 1 transient, and the Figure 7
// throttling-ratio curves.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	X      []float64
	Y      []float64
	Marker byte // 0 picks automatically
}

// Chart is a set of curves over a shared axis.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// LogY plots the y axis in log10 space (the paper's IDR roadmaps).
	LogY bool
	// Width and Height are the plot-area dimensions in characters
	// (0 = 72x20).
	Width, Height int

	series []Series
}

// markers cycled across series without explicit markers.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Add appends a curve. X and Y must be the same length.
func (c *Chart) Add(s Series) error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("plot: series %q has %d x values and %d y values",
			s.Name, len(s.X), len(s.Y))
	}
	if len(s.X) == 0 {
		return fmt.Errorf("plot: series %q is empty", s.Name)
	}
	if s.Marker == 0 {
		s.Marker = markers[len(c.series)%len(markers)]
	}
	c.series = append(c.series, s)
	return nil
}

func (c *Chart) dims() (w, h int) {
	w, h = c.Width, c.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}
	if w < 16 {
		w = 16
	}
	if h < 4 {
		h = 4
	}
	return w, h
}

// Render draws the chart.
func (c *Chart) Render() (string, error) {
	if len(c.series) == 0 {
		return "", fmt.Errorf("plot: no series")
	}
	w, h := c.dims()

	ty := func(y float64) (float64, error) {
		if !c.LogY {
			return y, nil
		}
		if y <= 0 {
			return 0, fmt.Errorf("plot: log-scale chart %q got non-positive y %g", c.Title, y)
		}
		return math.Log10(y), nil
	}

	// Axis ranges.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.X {
			y, err := ty(s.Y[i])
			if err != nil {
				return "", err
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	put := func(x, y float64, m byte) {
		col := int(math.Round((x - minX) / (maxX - minX) * float64(w-1)))
		row := int(math.Round((y - minY) / (maxY - minY) * float64(h-1)))
		row = h - 1 - row // origin bottom-left
		if col >= 0 && col < w && row >= 0 && row < h {
			grid[row][col] = m
		}
	}

	// Draw each series: points plus linear interpolation between them.
	for _, s := range c.series {
		for i := range s.X {
			y, _ := ty(s.Y[i])
			if i > 0 {
				py, _ := ty(s.Y[i-1])
				steps := 4 * w
				for k := 0; k <= steps; k++ {
					f := float64(k) / float64(steps)
					put(s.X[i-1]+f*(s.X[i]-s.X[i-1]), py+f*(y-py), s.Marker)
				}
			}
			put(s.X[i], y, s.Marker)
		}
	}

	inv := func(y float64) float64 {
		if c.LogY {
			return math.Pow(10, y)
		}
		return y
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for i, row := range grid {
		label := ""
		switch i {
		case 0:
			label = formatTick(inv(maxY))
		case h - 1:
			label = formatTick(inv(minY))
		case h / 2:
			label = formatTick(inv(minY + (maxY-minY)/2))
		}
		fmt.Fprintf(&b, "%10s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%10s  %-*s%s\n", "", w-len(formatTick(maxX)), formatTick(minX), formatTick(maxX))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%10s  x: %s   y: %s%s\n", "", c.XLabel, c.YLabel, logNote(c.LogY))
	}
	for _, s := range c.series {
		fmt.Fprintf(&b, "%10s  %c %s\n", "", s.Marker, s.Name)
	}
	return b.String(), nil
}

func logNote(log bool) string {
	if log {
		return " (log scale)"
	}
	return ""
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 10000:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
