package plot

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	var c Chart
	c.Title = "test"
	c.XLabel = "year"
	c.YLabel = "MB/s"
	if err := c.Add(Series{Name: "target", X: []float64{0, 1, 2}, Y: []float64{1, 2, 4}}); err != nil {
		t.Fatal(err)
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"test", "target", "year", "MB/s", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered chart missing %q:\n%s", want, out)
		}
	}
}

func TestRenderLogScale(t *testing.T) {
	var c Chart
	c.LogY = true
	if err := c.Add(Series{Name: "idr", X: []float64{2002, 2012}, Y: []float64{100, 1000}}); err != nil {
		t.Fatal(err)
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "log scale") && !strings.Contains(out, "idr") {
		t.Errorf("log chart malformed:\n%s", out)
	}
	// Non-positive values must be rejected on a log axis.
	var bad Chart
	bad.LogY = true
	if err := bad.Add(Series{Name: "zero", X: []float64{0}, Y: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Render(); err == nil {
		t.Error("log chart with zero y should fail")
	}
}

func TestAddErrors(t *testing.T) {
	var c Chart
	if err := c.Add(Series{Name: "mismatch", X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Error("length mismatch should be rejected")
	}
	if err := c.Add(Series{Name: "empty"}); err == nil {
		t.Error("empty series should be rejected")
	}
	if _, err := c.Render(); err == nil {
		t.Error("empty chart should not render")
	}
}

func TestMarkersCycle(t *testing.T) {
	var c Chart
	for i := 0; i < 3; i++ {
		if err := c.Add(Series{Name: "s", X: []float64{0, 1}, Y: []float64{1, 2}}); err != nil {
			t.Fatal(err)
		}
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"*", "o", "+"} {
		if !strings.Contains(out, m+" s") {
			t.Errorf("legend missing marker %q:\n%s", m, out)
		}
	}
}

func TestFlatSeriesDoesNotPanic(t *testing.T) {
	var c Chart
	if err := c.Add(Series{Name: "flat", X: []float64{1, 1}, Y: []float64{5, 5}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Render(); err != nil {
		t.Fatalf("flat series: %v", err)
	}
}

func TestDimensionClamps(t *testing.T) {
	c := Chart{Width: 1, Height: 1}
	if err := c.Add(Series{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}}); err != nil {
		t.Fatal(err)
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(out, "\n")) < 5 {
		t.Error("clamped chart too small")
	}
}

func TestMonotoneSeriesTopRight(t *testing.T) {
	// A rising curve should put its marker in the top-right region.
	c := Chart{Width: 40, Height: 10}
	if err := c.Add(Series{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	top := lines[0]
	if strings.Contains(top, "up") {
		top = lines[1]
	}
	if !strings.Contains(top, "*") {
		t.Errorf("top row has no marker for a rising series:\n%s", out)
	}
}
