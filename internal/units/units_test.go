package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInchesMeters(t *testing.T) {
	if got := Inches(1).Meters(); math.Abs(float64(got)-0.0254) > 1e-12 {
		t.Errorf("1 inch = %v m, want 0.0254", got)
	}
	if got := Meters(0.0254).Inches(); math.Abs(float64(got)-1) > 1e-12 {
		t.Errorf("0.0254 m = %v in, want 1", got)
	}
}

func TestInchesRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
			return true
		}
		in := Inches(x)
		back := in.Meters().Inches()
		return math.Abs(float64(back-in)) <= 1e-9*math.Max(1, math.Abs(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRPMConversions(t *testing.T) {
	r := RPM(60)
	if got := r.RevPerSec(); got != 1 {
		t.Errorf("60 RPM = %v rev/s, want 1", got)
	}
	if got := r.RadPerSec(); math.Abs(got-2*math.Pi) > 1e-12 {
		t.Errorf("60 RPM = %v rad/s, want 2*pi", got)
	}
	if got := r.PeriodSeconds(); got != 1 {
		t.Errorf("60 RPM period = %v s, want 1", got)
	}
	if got := RPM(15000).PeriodSeconds(); math.Abs(got-0.004) > 1e-12 {
		t.Errorf("15000 RPM period = %v s, want 4 ms", got)
	}
}

func TestRPMZeroPeriod(t *testing.T) {
	if got := RPM(0).PeriodSeconds(); !math.IsInf(got, 1) {
		t.Errorf("stopped spindle period = %v, want +Inf", got)
	}
	if got := RPM(-5).PeriodSeconds(); !math.IsInf(got, 1) {
		t.Errorf("negative RPM period = %v, want +Inf", got)
	}
}

func TestArealDensity(t *testing.T) {
	// 2002 reference: 593.19 KBPI x 67.5 KTPI ~= 40 Gb/in^2.
	got := ArealDensity(593190, 67500)
	if math.Abs(got-4.004e10)/4.004e10 > 0.001 {
		t.Errorf("areal density = %g, want ~4.004e10", got)
	}
	if got >= TerabitPerSqInch {
		t.Error("2002 density should be sub-terabit")
	}
}

func TestBitAspectRatio(t *testing.T) {
	if got := BitAspectRatio(600000, 100000); got != 6 {
		t.Errorf("BAR = %v, want 6", got)
	}
	if got := BitAspectRatio(1, 0); !math.IsInf(got, 1) {
		t.Errorf("BAR with zero TPI = %v, want +Inf", got)
	}
}

func TestBytes(t *testing.T) {
	b := Bytes(GB)
	if b.GB() != 1 {
		t.Errorf("1 GiB = %v GB, want 1", b.GB())
	}
	if b.Sectors() != GB/512 {
		t.Errorf("1 GiB = %d sectors, want %d", b.Sectors(), GB/512)
	}
	if got := FromSectors(2); got != 1024 {
		t.Errorf("2 sectors = %v bytes, want 1024", got)
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		b    Bytes
		want string
	}{
		{Bytes(100), "100 B"},
		{Bytes(10 * MB), "10.0 MB"},
		{Bytes(3 * GB / 2), "1.5 GB"},
	}
	for _, c := range cases {
		if got := c.b.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.b), got, c.want)
		}
	}
}

func TestStringers(t *testing.T) {
	if got := Inches(2.6).String(); got != "2.60\"" {
		t.Errorf("Inches.String() = %q", got)
	}
	if got := RPM(15000).String(); got != "15000 RPM" {
		t.Errorf("RPM.String() = %q", got)
	}
	if got := Celsius(45.22).String(); got != "45.22 C" {
		t.Errorf("Celsius.String() = %q", got)
	}
	if got := MBPerSec(114.4).String(); got != "114.4 MB/s" {
		t.Errorf("MBPerSec.String() = %q", got)
	}
	if got := Watts(3.9).String(); got != "3.900 W" {
		t.Errorf("Watts.String() = %q", got)
	}
}

func TestSectorConstants(t *testing.T) {
	if SectorDataBits != 4096 {
		t.Errorf("SectorDataBits = %d, want 4096", SectorDataBits)
	}
	if SectorBytes != 512 {
		t.Errorf("SectorBytes = %d, want 512", SectorBytes)
	}
}
