// Package units provides the physical units and conversions used throughout
// the disk-drive models.
//
// The paper mixes unit systems freely: platter sizes are quoted in inches,
// recording densities in bits-per-inch and tracks-per-inch, rotational speed
// in RPM, data rates in MB/s with MB = 2^20 bytes, and capacities in GB with
// GB = 2^30 bytes (the paper's Table 1 "Model Cap." values are only
// reproducible with binary gigabytes). This package pins those conventions
// down in one place so the rest of the code can be explicit about them.
package units

import (
	"fmt"
	"math"
)

// Conversion constants.
const (
	// MetersPerInch converts inches to metres.
	MetersPerInch = 0.0254

	// MB is the paper's megabyte (2^20 bytes), used for data rates.
	MB = 1 << 20

	// GB is the paper's gigabyte (2^30 bytes), used for capacities.
	GB = 1 << 30

	// SectorBytes is the size of a logical sector.
	SectorBytes = 512

	// SectorDataBits is the number of user-data bits in a sector.
	SectorDataBits = SectorBytes * 8
)

// Inches is a length in inches. Drive geometry is quoted in inches because
// every datasheet number in the paper is.
type Inches float64

// Meters converts to metres.
func (in Inches) Meters() Meters { return Meters(float64(in) * MetersPerInch) }

// String implements fmt.Stringer.
func (in Inches) String() string { return fmt.Sprintf("%.2f\"", float64(in)) }

// Meters is a length in metres, used by the thermal model.
type Meters float64

// Inches converts to inches.
func (m Meters) Inches() Inches { return Inches(float64(m) / MetersPerInch) }

// RPM is a rotational speed in revolutions per minute.
type RPM float64

// RadPerSec converts to angular velocity in radians per second.
func (r RPM) RadPerSec() float64 { return float64(r) * 2 * math.Pi / 60 }

// RevPerSec converts to revolutions per second.
func (r RPM) RevPerSec() float64 { return float64(r) / 60 }

// PeriodSeconds returns the duration of one revolution in seconds.
// It returns +Inf for a stopped spindle.
func (r RPM) PeriodSeconds() float64 {
	if r <= 0 {
		return math.Inf(1)
	}
	return 60 / float64(r)
}

// String implements fmt.Stringer.
func (r RPM) String() string { return fmt.Sprintf("%.0f RPM", float64(r)) }

// Celsius is a temperature in degrees Celsius. The models never need absolute
// (Kelvin) temperatures because every heat-flow term depends only on
// temperature differences.
type Celsius float64

// String implements fmt.Stringer.
func (c Celsius) String() string { return fmt.Sprintf("%.2f C", float64(c)) }

// Watts is a power in watts.
type Watts float64

// String implements fmt.Stringer.
func (w Watts) String() string { return fmt.Sprintf("%.3f W", float64(w)) }

// BPI is a linear recording density in bits per inch.
type BPI float64

// TPI is a radial track density in tracks per inch.
type TPI float64

// ArealDensity returns the areal density in bits per square inch.
func ArealDensity(b BPI, t TPI) float64 { return float64(b) * float64(t) }

// TerabitPerSqInch is one terabit per square inch, the areal density at which
// the paper's ECC overhead jumps from 416 to 1440 bits per sector.
const TerabitPerSqInch = 1e12

// BitAspectRatio returns BPI/TPI, the paper's BAR metric.
func BitAspectRatio(b BPI, t TPI) float64 {
	if t == 0 {
		return math.Inf(1)
	}
	return float64(b) / float64(t)
}

// MBPerSec is a data rate in 2^20 bytes per second (the paper's MB/s).
type MBPerSec float64

// String implements fmt.Stringer.
func (r MBPerSec) String() string { return fmt.Sprintf("%.1f MB/s", float64(r)) }

// Bytes is a storage capacity in bytes.
type Bytes int64

// GB returns the capacity in the paper's binary gigabytes.
func (b Bytes) GB() float64 { return float64(b) / GB }

// Sectors returns the number of whole 512-byte sectors.
func (b Bytes) Sectors() int64 { return int64(b) / SectorBytes }

// String implements fmt.Stringer.
func (b Bytes) String() string {
	switch {
	case b >= GB:
		return fmt.Sprintf("%.1f GB", b.GB())
	case b >= MB:
		return fmt.Sprintf("%.1f MB", float64(b)/MB)
	default:
		return fmt.Sprintf("%d B", int64(b))
	}
}

// FromSectors returns the capacity of n 512-byte sectors.
func FromSectors(n int64) Bytes { return Bytes(n * SectorBytes) }
