// Package power models disk-drive power and energy: the same physical terms
// the thermal model turns into temperature (windage, spindle bearing, voice
// coil), plus the electronics floor the paper's thermal analysis explicitly
// sets aside. It integrates with the simulator's per-request breakdowns to
// account energy over a workload — the currency of the DRPM line of work the
// paper builds on.
package power

import (
	"fmt"
	"time"

	"repro/internal/disksim"
	"repro/internal/geometry"
	"repro/internal/thermal"
	"repro/internal/units"
)

// ElectronicsPower is the controller/channel electronics draw the thermal
// model excludes (it adds the ~10 C the paper discounts). Typical for the
// era's SCSI drives.
const ElectronicsPower units.Watts = 4.5

// StandbyPower is the draw with the spindle stopped and the electronics
// mostly asleep (interface still alive).
const StandbyPower units.Watts = 2.0

// MotorEfficiency converts the mechanical load (windage + bearing drag) to
// electrical input: small spindle motors run at ~30% efficiency, the rest
// dissipating as copper/iron loss. The thermal model tracks only the
// in-enclosure mechanical terms; the electrical ledger needs the whole draw.
const MotorEfficiency = 0.30

// Breakdown is the instantaneous power decomposition of a drive.
type Breakdown struct {
	// Windage is the air shear on the spinning stack.
	Windage units.Watts
	// Bearing is the spindle-bearing drag loss.
	Bearing units.Watts
	// VCM is the seek actuator power (zero when idle).
	VCM units.Watts
	// MotorLoss is the spindle motor's electrical inefficiency
	// (copper/iron loss) feeding the mechanical load.
	MotorLoss units.Watts
	// Electronics is the controller/channel floor.
	Electronics units.Watts
}

// Total sums the components.
func (b Breakdown) Total() units.Watts {
	return b.Windage + b.Bearing + b.VCM + b.MotorLoss + b.Electronics
}

// Model computes drive power at operating points.
type Model struct {
	drive geometry.Drive
}

// New builds a power model for a geometry.
func New(d geometry.Drive) (*Model, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &Model{drive: d}, nil
}

// Drive returns the modelled geometry.
func (m *Model) Drive() geometry.Drive { return m.drive }

// At returns the power breakdown at a spindle speed and VCM duty.
func (m *Model) At(rpm units.RPM, vcmDuty float64) Breakdown {
	if vcmDuty < 0 {
		vcmDuty = 0
	} else if vcmDuty > 1 {
		vcmDuty = 1
	}
	windage := thermal.ViscousDissipation(rpm, m.drive.PlatterDiameter, m.drive.Platters)
	bearing := thermal.BearingLoss(rpm, m.drive.PlatterDiameter)
	return Breakdown{
		Windage:     windage,
		Bearing:     bearing,
		VCM:         units.Watts(vcmDuty * float64(thermal.VCMPower(m.drive.PlatterDiameter))),
		MotorLoss:   units.Watts(float64(windage+bearing) * (1/MotorEfficiency - 1)),
		Electronics: ElectronicsPower,
	}
}

// Idle returns the power with the spindle turning and the actuator parked.
func (m *Model) Idle(rpm units.RPM) Breakdown { return m.At(rpm, 0) }

// Active returns the power while continuously seeking.
func (m *Model) Active(rpm units.RPM) Breakdown { return m.At(rpm, 1) }

// Joules is an energy in joules.
type Joules float64

// String implements fmt.Stringer.
func (j Joules) String() string {
	switch {
	case j >= 3600:
		return fmt.Sprintf("%.2f Wh", float64(j)/3600)
	default:
		return fmt.Sprintf("%.1f J", float64(j))
	}
}

// Energy integrates power over a duration.
func Energy(p units.Watts, d time.Duration) Joules {
	return Joules(float64(p) * d.Seconds())
}

// Account is the energy ledger of one simulated run.
type Account struct {
	// Spin is the windage+bearing+electronics energy over the whole span
	// (the spindle never stops in these server drives).
	Spin Joules
	// Seek is the VCM energy, charged only while the actuator moves.
	Seek Joules
	// Span is the accounted wall-clock time.
	Span time.Duration
	// Requests counts the completions accounted.
	Requests int
}

// Total returns the run's total energy.
func (a Account) Total() Joules { return a.Spin + a.Seek }

// MeanPower returns the average draw over the span.
func (a Account) MeanPower() units.Watts {
	if a.Span <= 0 {
		return 0
	}
	return units.Watts(float64(a.Total()) / a.Span.Seconds())
}

// JoulesPerRequest returns the energy cost of the average request.
func (a Account) JoulesPerRequest() Joules {
	if a.Requests == 0 {
		return 0
	}
	return Joules(float64(a.Total()) / float64(a.Requests))
}

// AccountRun charges a completed single-disk run at a constant spindle speed:
// base power for the full span (first arrival to last finish) and VCM power
// for each request's seek time. Completions must come from one disk.
func (m *Model) AccountRun(rpm units.RPM, comps []disksim.Completion) Account {
	var acct Account
	if len(comps) == 0 {
		return acct
	}
	start := comps[0].Request.Arrival
	end := comps[0].Finish
	var seekTime time.Duration
	for _, c := range comps {
		if c.Request.Arrival < start {
			start = c.Request.Arrival
		}
		if c.Finish > end {
			end = c.Finish
		}
		seekTime += c.Parts.Seek
	}
	acct.Span = end - start
	acct.Requests = len(comps)
	base := m.Idle(rpm)
	acct.Spin = Energy(base.Total(), acct.Span)
	acct.Seek = Energy(thermal.VCMPower(m.drive.PlatterDiameter), seekTime)
	return acct
}

// CompareRPM evaluates the energy/performance trade of running the same
// completed workload at two speeds (the caller simulates each). It returns
// the relative energy increase of the fast run.
func CompareRPM(slow, fast Account) float64 {
	if slow.Total() == 0 {
		return 0
	}
	return float64(fast.Total()-slow.Total()) / float64(slow.Total())
}
