package power

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/capacity"
	"repro/internal/disksim"
	"repro/internal/geometry"
	"repro/internal/thermal"
	"repro/internal/units"
)

func refModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(thermal.ReferenceDrive)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New(geometry.Drive{}); err == nil {
		t.Error("zero geometry should be rejected")
	}
}

func TestBreakdownComponents(t *testing.T) {
	m := refModel(t)
	b := m.Active(15098)
	if math.Abs(float64(b.Windage)-0.91) > 0.01 {
		t.Errorf("windage = %v, want ~0.91 W", b.Windage)
	}
	if math.Abs(float64(b.VCM)-3.9) > 1e-6 {
		t.Errorf("VCM = %v, want 3.9 W", b.VCM)
	}
	if b.Electronics != ElectronicsPower {
		t.Errorf("electronics = %v", b.Electronics)
	}
	if b.Bearing <= 0 {
		t.Errorf("bearing = %v", b.Bearing)
	}
	sum := b.Windage + b.Bearing + b.VCM + b.MotorLoss + b.Electronics
	if b.Total() != sum {
		t.Error("Total() != component sum")
	}
	// Motor loss reflects the efficiency constant.
	wantLoss := float64(b.Windage+b.Bearing) * (1/MotorEfficiency - 1)
	if math.Abs(float64(b.MotorLoss)-wantLoss) > 1e-9 {
		t.Errorf("motor loss = %v, want %v", b.MotorLoss, wantLoss)
	}
}

func TestIdleVsActive(t *testing.T) {
	m := refModel(t)
	idle := m.Idle(15000)
	active := m.Active(15000)
	if idle.VCM != 0 {
		t.Error("idle drive should draw no VCM power")
	}
	if active.Total() <= idle.Total() {
		t.Error("seeking must cost more than idling")
	}
	if idle.Windage != active.Windage {
		t.Error("windage should not depend on seeking")
	}
}

func TestDutyClamps(t *testing.T) {
	m := refModel(t)
	if m.At(15000, -1) != m.At(15000, 0) {
		t.Error("negative duty should clamp to 0")
	}
	if m.At(15000, 2) != m.At(15000, 1) {
		t.Error("duty > 1 should clamp to 1")
	}
	half := m.At(15000, 0.5)
	if math.Abs(float64(half.VCM)-1.95) > 1e-9 {
		t.Errorf("half duty VCM = %v, want 1.95 W", half.VCM)
	}
}

func TestPowerGrowsWithRPM(t *testing.T) {
	m := refModel(t)
	f := func(a, b uint16) bool {
		r1 := units.RPM(5000 + int(a)%40000)
		r2 := units.RPM(5000 + int(b)%40000)
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		return m.Idle(r1).Total() <= m.Idle(r2).Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergy(t *testing.T) {
	if got := Energy(10, time.Minute); got != 600 {
		t.Errorf("10 W for a minute = %v, want 600 J", got)
	}
	if Joules(7200).String() != "2.00 Wh" {
		t.Errorf("7200 J prints %q", Joules(7200).String())
	}
	if Joules(5).String() != "5.0 J" {
		t.Errorf("5 J prints %q", Joules(5).String())
	}
}

func testCompletions(t *testing.T, rpm units.RPM, n int) []disksim.Completion {
	t.Helper()
	layout, err := capacity.New(capacity.Config{
		Geometry: thermal.ReferenceDrive,
		BPI:      533000, TPI: 64000, Zones: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := disksim.New(disksim.Config{Layout: layout, RPM: rpm})
	if err != nil {
		t.Fatal(err)
	}
	var comps []disksim.Completion
	state := uint64(3)
	for i := 0; i < n; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		c, err := d.Serve(disksim.Request{
			ID:      int64(i),
			Arrival: time.Duration(i) * 10 * time.Millisecond,
			LBN:     int64(state % uint64(layout.TotalSectors()-8)),
			Sectors: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		comps = append(comps, c)
	}
	return comps
}

func TestAccountRun(t *testing.T) {
	m := refModel(t)
	comps := testCompletions(t, 15000, 200)
	acct := m.AccountRun(15000, comps)
	if acct.Requests != 200 {
		t.Errorf("requests = %d", acct.Requests)
	}
	if acct.Span <= 0 || acct.Spin <= 0 || acct.Seek <= 0 {
		t.Errorf("empty account: %+v", acct)
	}
	// Spin dominates seeks for a lightly loaded drive.
	if acct.Seek >= acct.Spin {
		t.Errorf("seek energy (%v) exceeds spin (%v) at 10ms inter-arrivals", acct.Seek, acct.Spin)
	}
	// Mean power lies between idle and active.
	idle, active := m.Idle(15000).Total(), m.Active(15000).Total()
	if mp := acct.MeanPower(); mp < idle || mp > active {
		t.Errorf("mean power %v outside [%v, %v]", mp, idle, active)
	}
	if acct.JoulesPerRequest() <= 0 {
		t.Error("zero joules per request")
	}
}

func TestAccountRunEmpty(t *testing.T) {
	m := refModel(t)
	acct := m.AccountRun(15000, nil)
	if acct.Total() != 0 || acct.MeanPower() != 0 || acct.JoulesPerRequest() != 0 {
		t.Error("empty run should cost nothing")
	}
}

func TestFasterIsCostlier(t *testing.T) {
	m := refModel(t)
	slow := m.AccountRun(10000, testCompletions(t, 10000, 300))
	fast := m.AccountRun(20000, testCompletions(t, 20000, 300))
	// Same span (open-loop arrivals), higher speed: more energy.
	if inc := CompareRPM(slow, fast); inc <= 0 {
		t.Errorf("20k run should cost more energy: %+.1f%%", inc*100)
	}
}

func TestCompareRPMZero(t *testing.T) {
	if CompareRPM(Account{}, Account{}) != 0 {
		t.Error("empty comparison should be zero")
	}
}

func TestSpinDownBreakEven(t *testing.T) {
	m := refModel(t)
	p := SpinDownPolicy{IdleTimeout: time.Minute}
	be := m.BreakEvenIdle(15000, p)
	// Server-class spin-up (2x idle power for 10 s) breaks even after ~20 s
	// of spun-down time.
	if be < 10*time.Second || be > time.Minute {
		t.Errorf("break-even %v outside the plausible window", be)
	}
}

func TestEvaluateSpinDownSparseTrace(t *testing.T) {
	m := refModel(t)
	// Two requests five minutes apart: one spin-down, large savings.
	layoutComps := testCompletions(t, 15000, 1)
	far := layoutComps[0]
	far.Request.Arrival += 5 * time.Minute
	far.Start += 5 * time.Minute
	far.Finish += 5 * time.Minute
	comps := []disksim.Completion{layoutComps[0], far}

	res, err := m.EvaluateSpinDown(15000, comps, SpinDownPolicy{IdleTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpinDowns != 1 || res.DelayedRequests != 1 {
		t.Errorf("spin-downs %d, delayed %d", res.SpinDowns, res.DelayedRequests)
	}
	if res.Savings() <= 0 {
		t.Errorf("five idle minutes should save energy, got %.1f%%", res.Savings()*100)
	}
	if res.AddedLatency != 10*time.Second {
		t.Errorf("added latency %v, want one 10 s spin-up", res.AddedLatency)
	}
}

func TestEvaluateSpinDownBusyServerSavesNothing(t *testing.T) {
	// The paper's premise: server idle gaps are too short for spin-down.
	m := refModel(t)
	comps := testCompletions(t, 15000, 300) // 10 ms inter-arrivals
	res, err := m.EvaluateSpinDown(15000, comps, SpinDownPolicy{IdleTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpinDowns != 0 || res.Savings() != 0 {
		t.Errorf("busy trace should never spin down: %+v", res)
	}
}

func TestEvaluateSpinDownErrors(t *testing.T) {
	m := refModel(t)
	if _, err := m.EvaluateSpinDown(15000, nil, SpinDownPolicy{}); err == nil {
		t.Error("zero timeout should be rejected")
	}
	res, err := m.EvaluateSpinDown(15000, nil, SpinDownPolicy{IdleTimeout: time.Second})
	if err != nil || res.Baseline != 0 {
		t.Errorf("empty trace: %+v, %v", res, err)
	}
}
