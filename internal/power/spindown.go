package power

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/disksim"
	"repro/internal/units"
)

// SpinDownPolicy is the classic idle-timeout power policy of the
// laptop-disk literature the paper builds from (Douglis & Krishnan; Lu et
// al.): after IdleTimeout without requests the spindle stops (only the
// electronics draw power); the next request pays the spin-up delay and
// energy. The paper's server-disk premise — idle periods too short for
// spin-down, hence multi-speed/DTM approaches — falls out of this analysis.
type SpinDownPolicy struct {
	// IdleTimeout is how long the disk waits before spinning down.
	IdleTimeout time.Duration

	// SpinUpTime is the restart delay (0 = 10 s, server-class).
	SpinUpTime time.Duration

	// SpinUpEnergy is the restart energy cost (0 = 2x idle power over the
	// spin-up time, the usual inrush approximation).
	SpinUpEnergy Joules
}

func (p SpinDownPolicy) spinUpTime() time.Duration {
	if p.SpinUpTime == 0 {
		return 10 * time.Second
	}
	return p.SpinUpTime
}

// SpinDownResult is the offline what-if evaluation of the policy over a
// completed trace.
type SpinDownResult struct {
	// Baseline is the always-spinning energy over the span.
	Baseline Joules

	// WithPolicy is the energy under the policy (idle-down periods at
	// electronics-only power, plus spin-up costs).
	WithPolicy Joules

	// SpinDowns counts spindle stops.
	SpinDowns int

	// DelayedRequests counts requests that would arrive against a stopped
	// spindle; AddedLatency is their total spin-up waiting.
	DelayedRequests int
	AddedLatency    time.Duration

	// DownTime is the total spun-down duration.
	DownTime time.Duration
}

// Savings returns the relative energy reduction (negative when the policy
// costs energy).
func (r SpinDownResult) Savings() float64 {
	if r.Baseline == 0 {
		return 0
	}
	return float64(r.Baseline-r.WithPolicy) / float64(r.Baseline)
}

// EvaluateSpinDown replays a completed run's idle gaps against the policy.
// It is an offline analysis: the completion times themselves are not
// altered, but the added latency the policy would have imposed is reported.
func (m *Model) EvaluateSpinDown(rpm units.RPM, comps []disksim.Completion, p SpinDownPolicy) (SpinDownResult, error) {
	var res SpinDownResult
	if p.IdleTimeout <= 0 {
		return res, fmt.Errorf("power: non-positive idle timeout %v", p.IdleTimeout)
	}
	if len(comps) == 0 {
		return res, nil
	}
	sorted := make([]disksim.Completion, len(comps))
	copy(sorted, comps)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })

	span := sorted[len(sorted)-1].Finish - sorted[0].Request.Arrival
	idleP := m.Idle(rpm).Total()
	res.Baseline = Energy(idleP, span) // seek energy identical in both cases; excluded

	spinUpE := p.SpinUpEnergy
	if spinUpE == 0 {
		spinUpE = Energy(2*idleP, p.spinUpTime())
	}

	saved := Joules(0)
	for i := 1; i < len(sorted); i++ {
		gap := sorted[i].Request.Arrival - sorted[i-1].Finish
		if gap <= p.IdleTimeout {
			continue
		}
		down := gap - p.IdleTimeout
		res.SpinDowns++
		res.DownTime += down
		res.DelayedRequests++
		res.AddedLatency += p.spinUpTime()
		// Energy saved while down, minus the standby floor that keeps
		// drawing, minus the restart cost.
		saved += Energy(idleP-StandbyPower, down) - spinUpE
	}
	res.WithPolicy = res.Baseline - saved
	return res, nil
}

// BreakEvenIdle returns the minimum idle gap for which spinning down saves
// energy at all — the textbook break-even threshold.
func (m *Model) BreakEvenIdle(rpm units.RPM, p SpinDownPolicy) time.Duration {
	idleP := m.Idle(rpm).Total()
	spinUpE := p.SpinUpEnergy
	if spinUpE == 0 {
		spinUpE = Energy(2*idleP, p.spinUpTime())
	}
	rate := float64(idleP - StandbyPower) // W saved per second down
	if rate <= 0 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(float64(spinUpE) / rate * float64(time.Second))
}
