package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// smallFleetSpec is a fleet just big enough to stream several rack lines:
// 6 racks x 2 chassis x 4 slots = 48 drives, with placement, migration and
// a cooling failure all exercised so the resumed-run byte verification
// covers the whole feature surface.
func smallFleetSpec(workers int) string {
	spec := map[string]any{
		"type":    "fleet",
		"workers": workers,
		"fleet": map[string]any{
			"racks": 6, "chassis_per_rack": 2, "slots_per_chassis": 4,
			"requests_per_drive": 15,
			"seed":               7,
			"recirculation":      0.2,
			"placement":          "coolest",
			"migrate_at_c":       29,
			"hysteresis_c":       0.5,
			"cooling_failure": map[string]any{
				"rack": 1, "at_ms": 200, "duration_ms": 2000, "delta_c": 12,
			},
		},
	}
	b, err := json.Marshal(spec)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// TestFleetJobStreamsNDJSON runs a fleet job synchronously and pins the
// stream shape: one "rack" line per rack, in rack order, then a single
// "summary" line whose totals match the rack lines.
func TestFleetJobStreamsNDJSON(t *testing.T) {
	s := mustNew(t, testConfig())
	defer s.Shutdown(context.Background())

	w := postJob(t, s.Handler(), smallFleetSpec(2), "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", w.Code, w.Body.String())
	}

	var (
		racks     []map[string]any
		summaries []map[string]any
	)
	sc := bufio.NewScanner(bytes.NewReader(w.Body.Bytes()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch m["kind"] {
		case "rack":
			racks = append(racks, m)
		case "summary":
			summaries = append(summaries, m)
		default:
			t.Fatalf("unexpected line kind %v: %s", m["kind"], sc.Text())
		}
	}
	if len(racks) != 6 || len(summaries) != 1 {
		t.Fatalf("got %d rack lines and %d summaries, want 6 and 1", len(racks), len(summaries))
	}
	var requests float64
	for i, r := range racks {
		if int(r["rack"].(float64)) != i {
			t.Fatalf("rack line %d out of order: %v", i, r["rack"])
		}
		requests += r["requests"].(float64)
	}
	sum := summaries[0]
	if got := sum["requests"].(float64); got != requests {
		t.Fatalf("summary requests %v != rack total %v", got, requests)
	}
	if sum["drives"].(float64) != 48 {
		t.Fatalf("summary drives = %v, want 48", sum["drives"])
	}
	if sum["migrations"].(float64) == 0 {
		t.Fatal("migration policy never fired in the server fixture")
	}
}

// TestFleetJobWorkerInvariance is the serving-layer half of the sharding
// contract: the NDJSON body of the same seeded fleet spec is byte-identical
// whether the job fans out over 1 or 8 internal workers.
func TestFleetJobWorkerInvariance(t *testing.T) {
	s := mustNew(t, testConfig())
	defer s.Shutdown(context.Background())

	w1 := postJob(t, s.Handler(), smallFleetSpec(1), "")
	if w1.Code != http.StatusOK {
		t.Fatalf("workers=1 status = %d: %s", w1.Code, w1.Body.String())
	}
	w8 := postJob(t, s.Handler(), smallFleetSpec(8), "")
	if w8.Code != http.StatusOK {
		t.Fatalf("workers=8 status = %d: %s", w8.Code, w8.Body.String())
	}
	if !bytes.Equal(w1.Body.Bytes(), w8.Body.Bytes()) {
		t.Fatalf("fleet result bytes differ across worker counts:\n%s\nvs\n%s",
			w1.Body.String(), w8.Body.String())
	}
}

// TestFleetJobCancel cancels a running fleet job and checks it lands in
// cancelled with the in-band error line, promptly.
func TestFleetJobCancel(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	s := mustNew(t, cfg)
	defer s.Shutdown(context.Background())

	// Enough racks that the run is still in flight when the cancel lands.
	body := `{"type":"fleet","fleet":{"racks":40,"chassis_per_rack":4,"slots_per_chassis":8,"requests_per_drive":40}}`
	w, info := submitAsync(t, s, body, "")
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", w.Code)
	}
	j, ok := s.lookup(info.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, _ := j.snapshot(); st == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet job never started")
		}
		time.Sleep(time.Millisecond)
	}

	req := httptest.NewRequest("DELETE", "/v1/jobs/"+info.ID, nil)
	rec := httptest.NewRecorder()
	start := time.Now()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("cancel = %d, want 202", rec.Code)
	}
	if st := waitStatus(t, s, info.ID); st != StatusCancelled && st != StatusDone {
		t.Fatalf("cancelled fleet job = %q", st)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("cancellation took %v; runner not honouring ctx", took)
	}
}

// TestFleetCrashResumeByteIdentity is the fleet acceptance contract on the
// crash path: a fleet job killed mid-run (simulated SIGKILL: journaling
// stops dead) resumes after restart from its last rack-boundary checkpoint
// and produces NDJSON byte-identical to an uninterrupted run.
func TestFleetCrashResumeByteIdentity(t *testing.T) {
	body := smallFleetSpec(2)

	// Reference result from a journal-less server.
	ref := mustNew(t, testConfig())
	wr, infoRef := submitAsync(t, ref, body, "")
	if wr.Code != http.StatusAccepted {
		t.Fatalf("reference submit = %d", wr.Code)
	}
	if st := waitStatus(t, ref, infoRef.ID); st != StatusDone {
		t.Fatalf("reference job = %q", st)
	}
	want := getResult(t, ref, infoRef.ID)
	ref.Shutdown(context.Background())

	cfg := testConfig()
	cfg.JournalDir = t.TempDir()
	cfg.Workers = 1
	s1 := mustNew(t, cfg)

	w, info := submitAsync(t, s1, body, "fleet-crash-key")
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", w.Code)
	}
	j, _ := s1.lookup(info.ID)
	deadline := time.Now().Add(30 * time.Second)
	for {
		j.mu.Lock()
		durable := j.journaled
		j.mu.Unlock()
		if durable >= 2 {
			break // at least two rack checkpoints are on disk; crash now
		}
		if st, _ := j.snapshot(); st.terminal() {
			t.Fatal("fleet job finished before the crash landed; raise the rack count")
		}
		if time.Now().After(deadline) {
			t.Fatal("no rack checkpoint ever landed")
		}
		time.Sleep(time.Millisecond)
	}
	s1.Crash()

	cfg2 := testConfig()
	cfg2.JournalDir = cfg.JournalDir
	s2 := mustNew(t, cfg2)
	defer s2.Shutdown(context.Background())

	if got := s2.met.jobsResumed.Value(); got != 1 {
		t.Fatalf("jobsResumed = %d, want 1", got)
	}
	if st := waitStatus(t, s2, info.ID); st != StatusDone {
		j2, _ := s2.lookup(info.ID)
		_, errMsg := j2.snapshot()
		t.Fatalf("resumed fleet job = %q (%s), want done", st, errMsg)
	}
	got := getResult(t, s2, info.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed fleet result is not byte-identical (%d vs %d bytes)", len(got), len(want))
	}
}
