package server

import (
	"encoding/json"
	"os"
	"strconv"
	"strings"

	"repro/internal/chaos"
	"repro/internal/journal"
	"repro/internal/sim"
)

// openJournal opens (or creates) the configured journal directory, replays
// every durable record into the job registry, re-enqueues interrupted jobs
// from their last checkpoint, and flips the server to ready. Called once
// from New, before the worker pool starts.
func (s *Server) openJournal() error {
	opts := journal.Options{
		Logf:         s.logf,
		CompactEvery: s.cfg.CompactEvery,
		Live:         s.liveRecords,
		OnAppend: func(bytes int, err error) {
			if err != nil {
				s.met.journalAppendErrors.Inc()
				return
			}
			s.met.journalAppends.Inc()
			s.met.journalBytes.Add(int64(bytes))
		},
		OnCompact: func(kept, dropped int, err error) {
			if err != nil {
				return
			}
			s.met.journalCompactions.Inc()
			s.met.journalDropped.Add(int64(dropped))
		},
	}
	if c := s.cfg.Chaos; c != nil {
		opts.WrapFile = func(f *os.File) journal.File { return &chaos.File{F: f, C: c} }
	}
	jrnl, recs, err := journal.Open(s.cfg.JournalDir, opts)
	if err != nil {
		return err
	}
	s.jrnl = jrnl
	s.replayRecords(recs)
	s.setState(lifeReady)
	return nil
}

// replayRecords rebuilds the job registry from the journal: completed jobs
// come back with their buffered results intact; interrupted ones are
// re-enqueued with their journaled result prefix already in the buffer and
// an emit-skip so the deterministic re-run continues where durability
// stopped instead of double-emitting.
func (s *Server) replayRecords(recs []journal.Record) {
	s.jobsMu.Lock()
	for _, rec := range recs {
		switch rec.Kind {
		case journal.KindSubmit:
			if _, ok := s.jobs[rec.Job]; ok {
				// A compaction snapshot can race a submit whose append was
				// still in the committer queue: both land, so the same job
				// has two submit records. Keep the first; re-creating it
				// would duplicate the registry entry.
				continue
			}
			var spec Spec
			if err := json.Unmarshal(rec.Spec, &spec); err != nil {
				s.logf("simd: journal: dropping job %s with undecodable spec: %v", rec.Job, err)
				continue
			}
			j := &job{
				id:     rec.Job,
				spec:   spec,
				key:    rec.Key,
				status: StatusQueued,
				buf:    newResultBuffer(s.cfg.MaxResultBytes),
			}
			s.jobs[j.id] = j
			s.order = append(s.order, j.id)
			if rec.Key != "" {
				s.keys[rec.Key] = j.id
			}
			if n, err := strconv.Atoi(strings.TrimPrefix(rec.Job, "job-")); err == nil && n > s.nextID {
				s.nextID = n
			}
		case journal.KindChunk:
			j, ok := s.jobs[rec.Job]
			if !ok {
				continue
			}
			for _, line := range rec.Lines {
				if err := j.buf.append(append([]byte(line), '\n')); err != nil {
					j.status = StatusFailed
					j.err = "journal replay: " + err.Error()
					break
				}
				j.journaled++
			}
		case journal.KindState:
			j, ok := s.jobs[rec.Job]
			if !ok {
				continue
			}
			st := Status(rec.Status)
			if st == StatusRunning {
				// An interrupted run replays as queued; the re-enqueue
				// below resumes it from the last checkpoint.
				continue
			}
			j.status = st
			j.err = rec.Error
		}
	}
	// Snapshot in insertion order while still under the lock.
	var pending []*job
	for _, id := range s.order {
		j := s.jobs[id]
		if j.status.terminal() {
			j.buf.close()
			s.met.jobsReplayed.Inc()
			continue
		}
		j.status = StatusQueued
		j.skip = j.journaled
		j.track = true
		pending = append(pending, j)
	}
	s.jobsMu.Unlock()

	for _, j := range pending {
		s.met.jobsReplayed.Inc()
		if j.skip > 0 {
			s.met.jobsResumed.Inc()
		}
		s.enqueueReplayed(j)
	}
}

// enqueueReplayed admits a replayed job even though the server is still in
// the replaying state (external submissions are rejected until ready).
// These jobs are acknowledged, journaled work, so queue capacity can never
// fail them: overflow waits in the backlog and workers admit it as slots
// free up. Only a drain racing the replay cancels them.
func (s *Server) enqueueReplayed(j *job) {
	s.queueMu.Lock()
	if s.state == lifeDraining {
		s.queueMu.Unlock()
		if j.finish(StatusQueued, StatusCancelled, errDraining) {
			s.met.jobFinished(StatusCancelled)
			s.journalFinish(j)
		}
		return
	}
	defer s.queueMu.Unlock()
	select {
	case s.queue <- j:
		s.met.queueDelta(1)
	default:
		s.backlog = append(s.backlog, j)
	}
}

// liveRecords snapshots every retained job as the compact form of its
// journal history: submit, durable result lines, and current state. The
// compaction timer feeds this to journal.Compact, which drops the records
// of evicted jobs.
func (s *Server) liveRecords() []journal.Record {
	s.jobsMu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.jobsMu.Unlock()

	var recs []journal.Record
	for _, j := range jobs {
		specJSON, err := json.Marshal(j.spec)
		if err != nil {
			continue
		}
		j.mu.Lock()
		st, errMsg, durable := j.status, j.err, j.journaled
		j.mu.Unlock()
		recs = append(recs, journal.Record{
			Kind: journal.KindSubmit, Job: j.id, Key: j.key, Spec: specJSON,
		})
		if durable > 0 {
			lines := make([]string, 0, durable)
			for i := 0; i < durable; i++ {
				line := j.buf.line(i)
				lines = append(lines, string(line[:len(line)-1]))
			}
			recs = append(recs, journal.Record{Kind: journal.KindChunk, Job: j.id, Lines: lines})
		}
		if st != StatusQueued {
			recs = append(recs, journal.Record{
				Kind: journal.KindState, Job: j.id, Status: string(st), Error: errMsg,
			})
		}
	}
	return recs
}

// journalSubmit makes a job's admission durable. It must succeed before the
// job is enqueued: a client that saw the job accepted must find it again
// after a crash, and an idempotency key must dedupe across restarts.
func (s *Server) journalSubmit(j *job) error {
	if s.jrnl == nil || s.crashed.Load() {
		return nil
	}
	specJSON, err := json.Marshal(j.spec)
	if err != nil {
		return err
	}
	return s.jrnl.Append(journal.Record{
		Kind: journal.KindSubmit, Job: j.id, Key: j.key, Spec: specJSON,
	})
}

// journalState records a lifecycle transition. Failures are logged, not
// fatal: a lost transition replays the job as interrupted, and the
// deterministic re-run reproduces the identical result.
func (s *Server) journalState(j *job, st Status, errMsg string) {
	if s.jrnl == nil || s.crashed.Load() {
		return
	}
	err := s.jrnl.Append(journal.Record{
		Kind: journal.KindState, Job: j.id, Status: string(st), Error: errMsg,
	})
	if err != nil {
		s.logf("simd: journal: state %s for %s not recorded: %v", st, j.id, err)
	}
}

// journalCheckpoint flushes the job's emitted-but-not-durable result lines
// as one chunk record. On failure the lines are put back so the next
// checkpoint (or completion) retries them.
func (s *Server) journalCheckpoint(j *job) {
	if s.jrnl == nil || s.crashed.Load() {
		return
	}
	j.ckptMu.Lock()
	defer j.ckptMu.Unlock()
	lines := j.takePending()
	if len(lines) == 0 {
		return
	}
	if err := s.jrnl.Append(journal.Record{Kind: journal.KindChunk, Job: j.id, Lines: lines}); err != nil {
		j.restorePending(lines)
		s.logf("simd: journal: checkpoint for %s deferred: %v", j.id, err)
		return
	}
	j.confirmJournaled(len(lines))
}

// journalFinish flushes any remaining result lines (including the in-band
// error line of a failed or cancelled job) and records the terminal state.
func (s *Server) journalFinish(j *job) {
	if s.jrnl == nil || s.crashed.Load() {
		return
	}
	s.journalCheckpoint(j)
	st, errMsg := j.snapshot()
	s.journalState(j, st, errMsg)
}

// checkpointer returns the sim.Checkpointer handed to this job's runner,
// or nil when the server runs without a journal.
func (s *Server) checkpointer(j *job) sim.Checkpointer {
	if s.jrnl == nil {
		return nil
	}
	return sim.CheckpointFunc(func(int64) { s.journalCheckpoint(j) })
}
