package server

import (
	"context"
	"time"

	"repro/internal/capacity"
	"repro/internal/disksim"
	"repro/internal/dtm"
	"repro/internal/scaling"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/units"
)

const (
	defaultDTMRequests = 30000
	defaultDTMRate     = 120.0
	defaultDTMSeed     = 11 // the policy comparison's historic seed
)

// dtmSampleLine is an in-flight progress line, kind "sample". Samples are
// cut on completion count against the sim clock, so the stream is as
// deterministic as the run.
type dtmSampleLine struct {
	Kind      string  `json:"kind"`
	Completed int     `json:"completed"`
	SimMillis float64 `json:"sim_ms"`
	MeanMS    float64 `json:"mean_ms"`
}

// dtmResultLine is the terminal summary, kind "result". The optional
// fields cover the knobs that exist only on some policies.
type dtmResultLine struct {
	Kind   string `json:"kind"`
	Policy string `json:"policy"`

	MeanMS       float64 `json:"mean_ms"`
	P95MS        float64 `json:"p95_ms,omitempty"`
	MaxAirTempC  float64 `json:"max_air_temp_c,omitempty"`
	ElapsedSimMS float64 `json:"elapsed_sim_ms,omitempty"`

	ThrottleEvents int     `json:"throttle_events,omitempty"`
	ThrottledSimMS float64 `json:"throttled_sim_ms,omitempty"`
	Transitions    int     `json:"transitions,omitempty"`
	BoostedSimMS   float64 `json:"boosted_sim_ms,omitempty"`
	StepDowns      int     `json:"step_downs,omitempty"`
	Offlines       int     `json:"offlines,omitempty"`
	OfflineSimMS   float64 `json:"offline_sim_ms,omitempty"`
}

// runDTM executes one closed-loop policy on the 2005 reference drive, the
// same configuration cmd/dtm's policy comparison runs.
func runDTM(ctx context.Context, spec Spec, env runEnv) error {
	d := spec.DTM
	n := d.Requests
	if n == 0 {
		n = defaultDTMRequests
	}
	rate := d.RatePerS
	if rate == 0 {
		rate = defaultDTMRate
	}
	seed := d.Seed
	if seed == 0 {
		seed = defaultDTMSeed
	}

	geom := thermal.ReferenceDrive
	bpi, tpi := scaling.DefaultTrend().Densities(2005)
	layout, err := capacity.New(capacity.Config{Geometry: geom, BPI: bpi, TPI: tpi, Zones: 50})
	if err != nil {
		return err
	}
	th, err := thermal.New(geom)
	if err != nil {
		return err
	}
	src := dtm.SyntheticSource(layout.TotalSectors(), n, rate, seed)

	// Progress sink shared by every policy: a running mean plus periodic
	// sample lines. emitErr carries a failed emit out of the sink.
	var (
		mean    stats.Running
		count   int
		emitErr error
	)
	sink := sim.SinkFunc[disksim.Completion](func(c disksim.Completion) {
		mean.Add(c.Response())
		count++
		if emitErr == nil && d.SampleEvery > 0 && count%d.SampleEvery == 0 {
			emitErr = env.emit(dtmSampleLine{
				Kind:      "sample",
				Completed: count,
				SimMillis: float64(c.Finish) / float64(time.Millisecond),
				MeanMS:    mean.Mean(),
			})
		}
		if env.checkpointDue(count) {
			env.checkpoint(int64(count))
		}
	})

	newDisk := func(rpm units.RPM) (*disksim.Disk, error) {
		return disksim.New(disksim.Config{Layout: layout, RPM: rpm})
	}
	eng := sim.NewEngine()
	out := dtmResultLine{Kind: "result", Policy: d.Policy}

	switch d.Policy {
	case "envelope":
		disk, err := newDisk(15020)
		if err != nil {
			return err
		}
		if err := disk.RunStreamCtx(ctx, eng, src, sink); err != nil {
			return err
		}
		out.MeanMS = mean.Mean()
	case "watermark":
		disk, err := newDisk(24534)
		if err != nil {
			return err
		}
		ctl := dtm.Controller{Disk: disk, Thermal: th, Mode: dtm.VCMOnly}
		res, err := ctl.RunStreamCtx(ctx, eng, src, sink)
		if err != nil {
			return err
		}
		out.MeanMS = res.MeanResponseMillis
		out.P95MS = res.P95ResponseMillis
		out.MaxAirTempC = float64(res.MaxAirTemp)
		out.ThrottleEvents = res.ThrottleEvents
		out.ThrottledSimMS = durMS(res.ThrottledTime)
		out.ElapsedSimMS = durMS(res.Elapsed)
	case "slack-ramp":
		disk, err := newDisk(15020)
		if err != nil {
			return err
		}
		ramp := dtm.SlackRamp{Disk: disk, Thermal: th, BoostRPM: 24534}
		res, err := ramp.RunStreamCtx(ctx, eng, src, sink)
		if err != nil {
			return err
		}
		out.MeanMS = res.MeanResponseMillis
		out.MaxAirTempC = float64(res.MaxAirTemp)
		out.Transitions = res.Transitions
		out.BoostedSimMS = durMS(res.BoostedTime)
		out.ElapsedSimMS = durMS(res.Elapsed)
	case "drpm":
		disk, err := newDisk(24534)
		if err != nil {
			return err
		}
		pol := dtm.DRPM{Disk: disk, Thermal: th, Levels: []units.RPM{15020, 18000, 21000, 24534}}
		res, err := pol.RunStreamCtx(ctx, eng, src, sink)
		if err != nil {
			return err
		}
		out.MeanMS = res.MeanResponseMillis
		out.P95MS = res.P95ResponseMillis
		out.MaxAirTempC = float64(res.MaxAirTemp)
		out.Transitions = res.Transitions
		out.ElapsedSimMS = durMS(res.Elapsed)
	case "escalation":
		disk, err := newDisk(24534)
		if err != nil {
			return err
		}
		hot := th.SteadyState(thermal.WorstCase(24534))
		esc := dtm.Escalation{
			Disk:    disk,
			Thermal: th,
			Levels:  []units.RPM{24534, 21000, 18000, 15020},
			Initial: &hot,
		}
		res, err := esc.RunStreamCtx(ctx, eng, src, sink)
		if err != nil {
			return err
		}
		out.MeanMS = res.MeanResponseMillis
		out.P95MS = res.P95ResponseMillis
		out.MaxAirTempC = float64(res.MaxAirTemp)
		out.StepDowns = res.StepDowns
		out.ThrottleEvents = res.Throttles
		out.ThrottledSimMS = durMS(res.ThrottledTime)
		out.Offlines = res.Offlines
		out.OfflineSimMS = durMS(res.OfflineTime)
		out.ElapsedSimMS = durMS(res.Elapsed)
	}
	if emitErr != nil {
		return emitErr
	}
	return env.emit(out)
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
