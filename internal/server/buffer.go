package server

import (
	"context"
	"errors"
	"net/http"
	"sync"
)

// errResultTooLarge aborts a job whose result stream exceeds the server's
// per-job byte budget; the budget bounds memory because results are
// buffered for replay (GET .../result after the fact).
var errResultTooLarge = errors.New("result exceeds server per-job byte limit")

// resultBuffer accumulates a job's NDJSON lines and lets any number of
// readers stream them: each reader replays what is already buffered, then
// follows live appends until the buffer closes. Appends come from exactly
// one worker goroutine; reads can start before, during, or after the run
// and all see identical bytes.
type resultBuffer struct {
	mu       sync.Mutex
	cond     *sync.Cond
	lines    [][]byte
	bytes    int64
	maxBytes int64
	closed   bool
}

func newResultBuffer(maxBytes int64) *resultBuffer {
	b := &resultBuffer{maxBytes: maxBytes}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// append adds one line (already newline-terminated) to the buffer and
// wakes streaming readers.
func (b *resultBuffer) append(line []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return errors.New("result buffer closed")
	}
	if b.bytes+int64(len(line)) > b.maxBytes {
		return errResultTooLarge
	}
	b.lines = append(b.lines, line)
	b.bytes += int64(len(line))
	b.cond.Broadcast()
	return nil
}

// close marks the stream complete and releases all followers.
func (b *resultBuffer) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// stats reports the buffered line and byte counts.
func (b *resultBuffer) stats() (lines int, bytes int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.lines), b.bytes
}

// waitFirst blocks until at least one line is buffered or the buffer is
// closed, so handlers can pick the HTTP status before committing to a
// body. It returns false if ctx ends first.
func (b *resultBuffer) waitFirst(ctx context.Context) bool {
	defer context.AfterFunc(ctx, b.cond.Broadcast)()
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.lines) == 0 && !b.closed && ctx.Err() == nil {
		b.cond.Wait()
	}
	return ctx.Err() == nil
}

// stream writes buffered lines to w as they arrive, flushing after each,
// until the buffer closes or ctx is done (client gone). It returns the
// first write error, ctx.Err(), or nil after a complete stream.
func (b *resultBuffer) stream(ctx context.Context, w http.ResponseWriter) error {
	// A reader parked in cond.Wait only rechecks ctx when woken; wake it
	// when the client disconnects.
	defer context.AfterFunc(ctx, b.cond.Broadcast)()
	flusher, _ := w.(http.Flusher)
	next := 0
	for {
		b.mu.Lock()
		for next >= len(b.lines) && !b.closed && ctx.Err() == nil {
			b.cond.Wait()
		}
		batch := b.lines[next:]
		next = len(b.lines)
		closed := b.closed
		b.mu.Unlock()

		if err := ctx.Err(); err != nil {
			return err
		}
		for _, line := range batch {
			if _, err := w.Write(line); err != nil {
				return err
			}
		}
		if len(batch) > 0 && flusher != nil {
			flusher.Flush()
		}
		if closed && next == b.lineCount() {
			return nil
		}
	}
}

// line returns buffered line i (newline included), or nil when i is out of
// range. Lines are append-only, so the returned slice is stable.
func (b *resultBuffer) line(i int) []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	if i < 0 || i >= len(b.lines) {
		return nil
	}
	return b.lines[i]
}

func (b *resultBuffer) lineCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.lines)
}
