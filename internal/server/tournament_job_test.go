package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// smallTournamentSpec is a bracket just big enough to stream several cell
// lines (3 policies x 2 workloads x 2 regimes = 12 cells) while staying
// under the synchronous work cap.
func smallTournamentSpec(workers int) string {
	spec := map[string]any{
		"type":    "tournament",
		"workers": workers,
		"tournament": map[string]any{
			"workloads": []string{"TPC-C", "Search-Engine"},
			"requests":  600,
			"seed":      7,
		},
	}
	b, err := json.Marshal(spec)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// TestTournamentJobStreamsNDJSON runs a tournament synchronously and pins
// the stream shape: one "cell" line per bracket cell, in enumeration order,
// then a single "summary" line consistent with the cells.
func TestTournamentJobStreamsNDJSON(t *testing.T) {
	s := mustNew(t, testConfig())
	defer s.Shutdown(context.Background())

	w := postJob(t, s.Handler(), smallTournamentSpec(2), "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", w.Code, w.Body.String())
	}

	var cells, summaries []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(w.Body.Bytes()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch m["kind"] {
		case "cell":
			cells = append(cells, m)
		case "summary":
			summaries = append(summaries, m)
		default:
			t.Fatalf("unexpected line kind %v: %s", m["kind"], sc.Text())
		}
	}
	if len(cells) != 12 || len(summaries) != 1 {
		t.Fatalf("got %d cell lines and %d summaries, want 12 and 1", len(cells), len(summaries))
	}
	policies := []string{"reactive", "predictive", "slack-ramp"}
	for i, c := range cells {
		if got, want := c["policy"].(string), policies[i%3]; got != want {
			t.Fatalf("cell %d policy %q, want %q (enumeration order broken)", i, got, want)
		}
		if c["mean_ms"].(float64) <= 0 {
			t.Fatalf("cell %d has degenerate mean: %v", i, c)
		}
	}
	sum := summaries[0]
	if got := sum["cells"].(float64); got != 12 {
		t.Fatalf("summary cells = %v, want 12", got)
	}
	if sum["overall"].(string) == "" {
		t.Fatal("summary carries no overall winner")
	}
}

// TestTournamentJobWorkerInvariance: the NDJSON body of the same seeded
// bracket is byte-identical whether cells fan out over 1 or 8 workers.
func TestTournamentJobWorkerInvariance(t *testing.T) {
	s := mustNew(t, testConfig())
	defer s.Shutdown(context.Background())

	w1 := postJob(t, s.Handler(), smallTournamentSpec(1), "")
	if w1.Code != http.StatusOK {
		t.Fatalf("workers=1 status = %d: %s", w1.Code, w1.Body.String())
	}
	w8 := postJob(t, s.Handler(), smallTournamentSpec(8), "")
	if w8.Code != http.StatusOK {
		t.Fatalf("workers=8 status = %d: %s", w8.Code, w8.Body.String())
	}
	if !bytes.Equal(w1.Body.Bytes(), w8.Body.Bytes()) {
		t.Fatalf("tournament result bytes differ across worker counts:\n%s\nvs\n%s",
			w1.Body.String(), w8.Body.String())
	}
}

// TestTournamentJobValidation pins the admission gates: unknown names are
// 400s, and an over-cap bracket is only admissible async.
func TestTournamentJobValidation(t *testing.T) {
	s := mustNew(t, testConfig())
	defer s.Shutdown(context.Background())

	bad := []string{
		`{"type":"tournament","tournament":{"policies":["nonsense"]}}`,
		`{"type":"tournament","tournament":{"regimes":["hurricane"]}}`,
		`{"type":"tournament","tournament":{"workloads":["no-such-trace"]}}`,
		`{"type":"tournament","tournament":{"requests":-1}}`,
		`{"type":"tournament","tournament":{"lead_time_ms":-5}}`,
		`{"type":"tournament","dtm":{"policy":"envelope"}}`,
	}
	for _, body := range bad {
		if w := postJob(t, s.Handler(), body, ""); w.Code != http.StatusBadRequest {
			t.Errorf("spec %s = %d, want 400", body, w.Code)
		}
	}

	// The default bracket (30 cells x 4000 requests = 120k work) exceeds
	// the 100k synchronous cap but rides the async path.
	if w := postJob(t, s.Handler(), `{"type":"tournament"}`, ""); w.Code != http.StatusBadRequest {
		t.Errorf("default bracket sync = %d, want 400 (over the sync cap)", w.Code)
	}
	w, info := submitAsync(t, s, `{"type":"tournament"}`, "")
	if w.Code != http.StatusAccepted {
		t.Fatalf("default bracket async = %d, want 202: %s", w.Code, w.Body.String())
	}
	if st := waitStatus(t, s, info.ID); st != StatusDone {
		t.Fatalf("default bracket job = %q, want done", st)
	}
}

// TestTournamentCrashResumeByteIdentity is the tournament acceptance
// contract on the crash path: a job killed mid-bracket (simulated SIGKILL:
// journaling stops dead) resumes after restart from its last cell-boundary
// checkpoint and produces NDJSON byte-identical to an uninterrupted run.
func TestTournamentCrashResumeByteIdentity(t *testing.T) {
	// Full default bracket, async-sized, so plenty of cell checkpoints land
	// before the crash.
	body := `{"type":"tournament","workers":2,"tournament":{"requests":4000,"seed":7}}`

	// Reference result from a journal-less server.
	ref := mustNew(t, testConfig())
	wr, infoRef := submitAsync(t, ref, body, "")
	if wr.Code != http.StatusAccepted {
		t.Fatalf("reference submit = %d: %s", wr.Code, wr.Body.String())
	}
	if st := waitStatus(t, ref, infoRef.ID); st != StatusDone {
		t.Fatalf("reference job = %q", st)
	}
	want := getResult(t, ref, infoRef.ID)
	ref.Shutdown(context.Background())

	cfg := testConfig()
	cfg.JournalDir = t.TempDir()
	cfg.Workers = 1
	s1 := mustNew(t, cfg)

	w, info := submitAsync(t, s1, body, "tournament-crash-key")
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", w.Code)
	}
	j, _ := s1.lookup(info.ID)
	deadline := time.Now().Add(30 * time.Second)
	for {
		j.mu.Lock()
		durable := j.journaled
		j.mu.Unlock()
		if durable >= 2 {
			break // at least two cell checkpoints are on disk; crash now
		}
		if st, _ := j.snapshot(); st.terminal() {
			t.Fatal("tournament finished before the crash landed; raise the request count")
		}
		if time.Now().After(deadline) {
			t.Fatal("no cell checkpoint ever landed")
		}
		time.Sleep(time.Millisecond)
	}
	s1.Crash()

	cfg2 := testConfig()
	cfg2.JournalDir = cfg.JournalDir
	s2 := mustNew(t, cfg2)
	defer s2.Shutdown(context.Background())

	if got := s2.met.jobsResumed.Value(); got != 1 {
		t.Fatalf("jobsResumed = %d, want 1", got)
	}
	if st := waitStatus(t, s2, info.ID); st != StatusDone {
		j2, _ := s2.lookup(info.ID)
		_, errMsg := j2.snapshot()
		t.Fatalf("resumed tournament job = %q (%s), want done", st, errMsg)
	}
	got := getResult(t, s2, info.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed tournament result is not byte-identical (%d vs %d bytes)", len(got), len(want))
	}
}
