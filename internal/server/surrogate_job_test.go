package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// smallSurrogateTrainSpec is a grid just big enough to stream temp,
// latency, fold and summary lines while staying well under the
// synchronous work cap.
func smallSurrogateTrainSpec(workers int) string {
	spec := map[string]any{
		"type":    "surrogate",
		"workers": workers,
		"surrogate": map[string]any{
			"mode": "train",
			"train": map[string]any{
				"years":     []int{2002, 2004},
				"rpms":      []float64{10000, 15000, 20000},
				"workloads": []string{"TPC-C"},
				"requests":  300,
				"folds":     2,
				"probes":    2,
			},
		},
	}
	b, err := json.Marshal(spec)
	if err != nil {
		panic(err)
	}
	return string(b)
}

func surrogateQuerySpec(exact bool, queries string) string {
	flag := ""
	if exact {
		flag = `"exact":true,`
	}
	return `{"type":"surrogate","surrogate":{"mode":"query",` + flag + `"queries":[` + queries + `]}}`
}

const inHullQuery = `{"year":2003,"rpm":12500,"platters":1,"form_factor":"3.5-inch","workload":"TPC-C"}`
const outOfHullQuery = `{"year":2030,"rpm":12500,"platters":1,"form_factor":"3.5-inch","workload":"TPC-C"}`

// scanKinds buckets a job body's NDJSON lines by kind.
func scanKinds(t *testing.T, body []byte) map[string][]map[string]any {
	t.Helper()
	out := map[string][]map[string]any{}
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		kind, _ := m["kind"].(string)
		out[kind] = append(out[kind], m)
	}
	return out
}

// TestSurrogateTrainJobStreamsNDJSON pins the training stream shape — one
// line per grid cell in deterministic order, the cross-validation folds,
// and a summary carrying the artifact checksum — then verifies the trained
// model actually serves the next query job.
func TestSurrogateTrainJobStreamsNDJSON(t *testing.T) {
	s := mustNew(t, testConfig())
	defer s.Shutdown(context.Background())

	w := postJob(t, s.Handler(), smallSurrogateTrainSpec(2), "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", w.Code, w.Body.String())
	}
	kinds := scanKinds(t, w.Body.Bytes())
	if n := len(kinds["temp"]); n != 3 {
		t.Errorf("got %d temp cells, want 3", n)
	}
	if n := len(kinds["latency"]); n != 6 {
		t.Errorf("got %d latency cells, want 6", n)
	}
	if n := len(kinds["fold"]); n != 2 {
		t.Errorf("got %d fold lines, want 2", n)
	}
	if n := len(kinds["summary"]); n != 1 {
		t.Fatalf("got %d summary lines, want 1", n)
	}
	sum := kinds["summary"][0]
	if cs, _ := sum["checksum"].(string); len(cs) != 8 {
		t.Errorf("summary checksum %q, want 8 hex digits", cs)
	}
	if chans, _ := sum["channels"].([]any); len(chans) != 4 {
		t.Errorf("summary has %d channels, want 4", len(sum["channels"].([]any)))
	}

	// The freshly trained model must serve an in-hull query from the fast
	// path.
	wq := postJob(t, s.Handler(), surrogateQuerySpec(false, inHullQuery), "")
	if wq.Code != http.StatusOK {
		t.Fatalf("query status = %d: %s", wq.Code, wq.Body.String())
	}
	qk := scanKinds(t, wq.Body.Bytes())
	if len(qk["answer"]) != 1 || qk["answer"][0]["source"] != "surrogate" {
		t.Fatalf("in-hull query not served by the surrogate: %s", wq.Body.String())
	}
	if qk["summary"][0]["hits"].(float64) != 1 {
		t.Errorf("query summary hits = %v, want 1", qk["summary"][0]["hits"])
	}
	if got := s.surMet.Hits.Value(); got != 1 {
		t.Errorf("hit counter = %d, want 1", got)
	}
}

// TestSurrogateTrainWorkerInvariance: the training stream — and the
// artifact checksum inside it — is byte-identical at any worker fan-out.
func TestSurrogateTrainWorkerInvariance(t *testing.T) {
	s := mustNew(t, testConfig())
	defer s.Shutdown(context.Background())

	w1 := postJob(t, s.Handler(), smallSurrogateTrainSpec(1), "")
	if w1.Code != http.StatusOK {
		t.Fatalf("workers=1 status = %d: %s", w1.Code, w1.Body.String())
	}
	w8 := postJob(t, s.Handler(), smallSurrogateTrainSpec(8), "")
	if w8.Code != http.StatusOK {
		t.Fatalf("workers=8 status = %d: %s", w8.Code, w8.Body.String())
	}
	if !bytes.Equal(w1.Body.Bytes(), w8.Body.Bytes()) {
		t.Fatalf("training result bytes differ across worker counts:\n%s\nvs\n%s",
			w1.Body.String(), w8.Body.String())
	}
}

// TestSurrogateQueryFallsBackWithoutModel: on a server with no trained
// model every query transparently takes the exact path, and the body is
// byte-identical to a forced-exact job — the fallback is provably the
// exact engine, not an approximation.
func TestSurrogateQueryFallsBackWithoutModel(t *testing.T) {
	s := mustNew(t, testConfig())
	defer s.Shutdown(context.Background())

	wf := postJob(t, s.Handler(), surrogateQuerySpec(false, inHullQuery), "")
	if wf.Code != http.StatusOK {
		t.Fatalf("fallback status = %d: %s", wf.Code, wf.Body.String())
	}
	we := postJob(t, s.Handler(), surrogateQuerySpec(true, inHullQuery), "")
	if we.Code != http.StatusOK {
		t.Fatalf("exact status = %d: %s", we.Code, we.Body.String())
	}
	if !bytes.Equal(wf.Body.Bytes(), we.Body.Bytes()) {
		t.Fatalf("no-model fallback differs from forced exact:\n%s\nvs\n%s",
			wf.Body.String(), we.Body.String())
	}
	kinds := scanKinds(t, wf.Body.Bytes())
	if kinds["answer"][0]["source"] != "exact" {
		t.Fatalf("fallback answer source = %v, want exact", kinds["answer"][0]["source"])
	}
	if got := s.surMet.FallbackNoModel.Value(); got != 1 {
		t.Errorf("no_model fallback counter = %d, want 1", got)
	}
	if got := s.surMet.Fallbacks.Value(); got != 2 {
		t.Errorf("fallback counter = %d, want 2 (one no-model, one forced)", got)
	}
}

// TestSurrogateQueryErrorBound: a model whose cross-validated error
// exceeds the job's max_rel_err bound is not trusted — queries fall back
// even inside the hull.
func TestSurrogateQueryErrorBound(t *testing.T) {
	s := mustNew(t, testConfig())
	defer s.Shutdown(context.Background())

	if w := postJob(t, s.Handler(), smallSurrogateTrainSpec(2), ""); w.Code != http.StatusOK {
		t.Fatalf("train status = %d: %s", w.Code, w.Body.String())
	}
	body := `{"type":"surrogate","surrogate":{"mode":"query","max_rel_err":1e-12,"queries":[` + inHullQuery + `]}}`
	w := postJob(t, s.Handler(), body, "")
	if w.Code != http.StatusOK {
		t.Fatalf("query status = %d: %s", w.Code, w.Body.String())
	}
	kinds := scanKinds(t, w.Body.Bytes())
	if kinds["answer"][0]["source"] != "exact" {
		t.Fatalf("over-bound query served by surrogate: %s", w.Body.String())
	}
	if got := s.surMet.FallbackErrBound.Value(); got != 1 {
		t.Errorf("error_bound fallback counter = %d, want 1", got)
	}
}

// TestSurrogateJobValidation pins the admission gates.
func TestSurrogateJobValidation(t *testing.T) {
	s := mustNew(t, testConfig())
	defer s.Shutdown(context.Background())

	bad := []string{
		`{"type":"surrogate"}`,
		`{"type":"surrogate","surrogate":{}}`,
		`{"type":"surrogate","surrogate":{"mode":"predict"}}`,
		`{"type":"surrogate","surrogate":{"mode":"query"}}`,
		`{"type":"surrogate","surrogate":{"mode":"query","queries":[{"year":1800,"rpm":15000,"platters":1,"form_factor":"3.5-inch","workload":"TPC-C"}]}}`,
		`{"type":"surrogate","surrogate":{"mode":"query","queries":[` + inHullQuery + `],"train":{}}}`,
		`{"type":"surrogate","surrogate":{"mode":"train","queries":[` + inHullQuery + `]}}`,
		`{"type":"surrogate","surrogate":{"mode":"train","train":{"years":[2004,2002]}}}`,
		`{"type":"surrogate","surrogate":{"mode":"train","train":{"rpms":[10000]}}}`,
		`{"type":"surrogate","surrogate":{"mode":"train"},"dtm":{"policy":"envelope"}}`,
	}
	for _, body := range bad {
		if w := postJob(t, s.Handler(), body, ""); w.Code != http.StatusBadRequest {
			t.Errorf("spec %s = %d, want 400", body, w.Code)
		}
	}

	// A grid over the synchronous work cap is refused on the sync path but
	// rides the async one: 13 cells x 100000 requests = 1.3M work.
	big := `{"type":"surrogate","surrogate":{"mode":"train","train":{` +
		`"years":[2002,2004,2006],"rpms":[9000,12000,15000,18000],` +
		`"workloads":["TPC-C"],"requests":100000,"folds":1,"probes":1}}}`
	if w := postJob(t, s.Handler(), big, ""); w.Code != http.StatusBadRequest {
		t.Errorf("over-cap grid sync = %d, want 400", w.Code)
	}
	w, info := submitAsync(t, s, big, "")
	if w.Code != http.StatusAccepted {
		t.Fatalf("over-cap grid async = %d, want 202: %s", w.Code, w.Body.String())
	}
	if st := waitStatus(t, s, info.ID); st != StatusDone {
		t.Fatalf("async over-cap training = %q, want done", st)
	}
}

// TestSurrogateTrainCrashResumeByteIdentity: a training job killed between
// cell-window checkpoints resumes after restart and produces NDJSON
// byte-identical to an uninterrupted run — and still installs the model.
func TestSurrogateTrainCrashResumeByteIdentity(t *testing.T) {
	// 2 workloads x 4 years x 4 RPMs = 32 latency cells: two window
	// checkpoints land before the run ends.
	spec := map[string]any{
		"type":    "surrogate",
		"workers": 2,
		"surrogate": map[string]any{
			"mode": "train",
			"train": map[string]any{
				"years":     []int{2002, 2003, 2004, 2005},
				"rpms":      []float64{9000, 12000, 15000, 18000},
				"workloads": []string{"TPC-C", "Search-Engine"},
				"requests":  4000,
				"folds":     1,
				"probes":    2,
			},
		},
	}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)

	ref := mustNew(t, testConfig())
	wr, infoRef := submitAsync(t, ref, body, "")
	if wr.Code != http.StatusAccepted {
		t.Fatalf("reference submit = %d: %s", wr.Code, wr.Body.String())
	}
	if st := waitStatus(t, ref, infoRef.ID); st != StatusDone {
		t.Fatalf("reference job = %q", st)
	}
	want := getResult(t, ref, infoRef.ID)
	ref.Shutdown(context.Background())

	cfg := testConfig()
	cfg.JournalDir = t.TempDir()
	cfg.Workers = 1
	s1 := mustNew(t, cfg)

	w, info := submitAsync(t, s1, body, "surrogate-crash-key")
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", w.Code)
	}
	j, _ := s1.lookup(info.ID)
	deadline := time.Now().Add(30 * time.Second)
	for {
		j.mu.Lock()
		durable := j.journaled
		j.mu.Unlock()
		if durable >= 1 {
			break // at least one cell-window checkpoint is on disk; crash now
		}
		if st, _ := j.snapshot(); st.terminal() {
			t.Fatal("training finished before the crash landed; raise the request count")
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint ever landed")
		}
		time.Sleep(time.Millisecond)
	}
	s1.Crash()

	cfg2 := testConfig()
	cfg2.JournalDir = cfg.JournalDir
	s2 := mustNew(t, cfg2)
	defer s2.Shutdown(context.Background())

	if st := waitStatus(t, s2, info.ID); st != StatusDone {
		j2, _ := s2.lookup(info.ID)
		_, errMsg := j2.snapshot()
		t.Fatalf("resumed training job = %q (%s), want done", st, errMsg)
	}
	got := getResult(t, s2, info.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed training result is not byte-identical (%d vs %d bytes)", len(got), len(want))
	}
	// The resumed run installed its model: an in-hull query takes the
	// fast path.
	wq := postJob(t, s2.Handler(), surrogateQuerySpec(false, inHullQuery), "")
	if wq.Code != http.StatusOK {
		t.Fatalf("post-resume query = %d: %s", wq.Code, wq.Body.String())
	}
	kinds := scanKinds(t, wq.Body.Bytes())
	if kinds["answer"][0]["source"] != "surrogate" {
		t.Fatalf("post-resume query not served by the resumed model: %s", wq.Body.String())
	}
}
