package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// routes wires the HTTP surface. Every endpoint goes through instrument,
// which records per-endpoint latency and status-code counts.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/jobs", s.instrument("create_job", s.handleCreateJob))
	mux.Handle("GET /v1/jobs", s.instrument("list_jobs", s.handleListJobs))
	mux.Handle("GET /v1/jobs/{id}", s.instrument("get_job", s.handleGetJob))
	mux.Handle("GET /v1/jobs/{id}/result", s.instrument("get_result", s.handleGetResult))
	mux.Handle("DELETE /v1/jobs/{id}", s.instrument("cancel_job", s.handleCancelJob))
	mux.Handle("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.Handle("GET /readyz", s.instrument("readyz", s.handleReadyz))
	mux.Handle("GET /metrics", s.instrument("metrics", obs.Handler(s.reg).ServeHTTP))
	return mux
}

// statusWriter remembers the status code for the request counter. It must
// keep implementing http.Flusher or NDJSON streaming stops being
// incremental.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) instrument(name string, h http.HandlerFunc) http.Handler {
	m := s.met.endpoint(name)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r)
		m.latency.ObserveDuration(time.Since(start))
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		m.requests(strconv.Itoa(code)).Inc()
	})
}

// jsonError writes a JSON error body with the given status.
func jsonError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// retryAfterSeconds renders the Retry-After hint (at least 1s; the header
// is integral seconds).
func (s *Server) retryAfterSeconds() string {
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// handleCreateJob is the submission path. Sync (default): the response is
// the job's NDJSON result stream, written incrementally; the job id rides
// in the X-Job-ID header so the body stays spec-deterministic. Async
// (?async=1): 202 with the job id, results via GET /v1/jobs/{id}/result.
func (s *Server) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	async := r.URL.Query().Get("async") == "1"
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		jsonError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	if err := spec.validate(s.cfg, async); err != nil {
		jsonError(w, http.StatusBadRequest, "invalid job spec: "+err.Error())
		return
	}

	key := r.Header.Get("Idempotency-Key")
	j, existing := s.register(spec, key)
	if existing {
		// A retried submission (same Idempotency-Key, possibly across a
		// daemon restart) attaches to the original job instead of running
		// the work twice.
		w.Header().Set("X-Idempotent-Replay", "true")
		if async {
			w.Header().Set("Location", "/v1/jobs/"+j.id)
			writeJSON(w, http.StatusOK, j.info())
			return
		}
		s.streamResult(w, r, j, false)
		return
	}

	// Durability before acknowledgement: a job the client saw accepted must
	// survive a crash, so the submit record lands before the queue does.
	if err := s.journalSubmit(j); err != nil {
		s.rejectUnjournaled(j, err)
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		jsonError(w, http.StatusServiceUnavailable, "journal unavailable: "+err.Error())
		return
	}

	if err := s.enqueue(j); err != nil {
		// The record stays visible as cancelled so a client that races
		// the drain can still see what happened to its submission.
		j.finish(StatusQueued, StatusCancelled, err)
		s.met.jobFinished(StatusCancelled)
		s.journalFinish(j)
		switch {
		case errors.Is(err, errDraining), errors.Is(err, errReplaying):
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			jsonError(w, http.StatusServiceUnavailable, err.Error())
		default:
			s.met.rejected.Inc()
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			jsonError(w, http.StatusTooManyRequests, err.Error())
		}
		return
	}

	if async {
		w.Header().Set("Location", "/v1/jobs/"+j.id)
		writeJSON(w, http.StatusAccepted, j.info())
		return
	}
	s.streamResult(w, r, j, true)
}

// streamResult streams a job's NDJSON result, replaying buffered lines and
// following live ones. With owner set (sync submission), a client
// disconnect cancels the job rather than letting it burn the pool for
// nobody.
func (s *Server) streamResult(w http.ResponseWriter, r *http.Request, j *job, owner bool) {
	ctx := r.Context()
	if owner {
		defer func() {
			if ctx.Err() != nil && j.requestCancel() {
				s.met.jobFinished(StatusCancelled)
				s.journalFinish(j)
			}
		}()
	}

	// Wait for the first line (or a terminal state) so failures that
	// happen before any output can still pick a real error status.
	if !j.buf.waitFirst(ctx) {
		return // client gone before anything happened
	}
	if lines, _ := j.buf.stats(); lines == 0 {
		st, errMsg := j.snapshot()
		code := http.StatusInternalServerError
		if st == StatusCancelled {
			code = http.StatusConflict
		}
		if errMsg == "" {
			errMsg = string(st)
		}
		jsonError(w, code, errMsg)
		return
	}

	w.Header().Set("Content-Type", obs.ContentTypeNDJSON)
	w.Header().Set("X-Job-ID", j.id)
	w.WriteHeader(http.StatusOK)
	_ = j.buf.stream(ctx, w)
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.list()})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		jsonError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.info())
}

func (s *Server) handleGetResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		jsonError(w, http.StatusNotFound, "no such job")
		return
	}
	s.streamResult(w, r, j, false)
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		jsonError(w, http.StatusNotFound, "no such job")
		return
	}
	if st, _ := j.snapshot(); st.terminal() {
		writeJSON(w, http.StatusOK, j.info())
		return
	}
	if j.requestCancel() {
		s.met.jobFinished(StatusCancelled)
		s.journalFinish(j)
	}
	writeJSON(w, http.StatusAccepted, j.info())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports the lifecycle state so orchestrators can tell a
// daemon that is still replaying its journal from one that is draining for
// shutdown: both answer 503, but only the former will become ready. The
// body carries a machine-readable state= field.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.lifecycle()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if st != lifeReady {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "unavailable state=%s\n", st)
		return
	}
	fmt.Fprintln(w, "ok state=ready")
}
