package server

import (
	"sync/atomic"

	"repro/internal/obs"
)

// latencyEdgesMS buckets per-endpoint HTTP latency; the top bucket is wide
// because sync job submissions hold the request for the whole run.
var latencyEdgesMS = []float64{1, 5, 25, 100, 500, 2500, 10000, 60000}

// metrics is the server's own instrument set. All series are volatile:
// queue depth and latencies describe this process, not the simulated
// machine, so they are excluded from golden-artifact comparisons by the
// exporters' Stable filter.
type metrics struct {
	queueDepth *obs.Gauge
	inflight   *obs.Gauge
	rejected   *obs.Counter
	jobsTotal  map[Status]*obs.Counter
	inflightN  atomic.Int64
	queueN     atomic.Int64

	// Robustness instruments: contained worker panics, journal durability
	// traffic, and crash-recovery replay activity.
	panics              *obs.Counter
	journalAppends      *obs.Counter
	journalAppendErrors *obs.Counter
	journalBytes        *obs.Counter
	journalCompactions  *obs.Counter
	journalDropped      *obs.Counter
	jobsReplayed        *obs.Counter
	jobsResumed         *obs.Counter

	reg *obs.Registry
}

func newMetrics(reg *obs.Registry) *metrics {
	m := &metrics{
		queueDepth: reg.VolatileGauge("simd_queue_depth"),
		inflight:   reg.VolatileGauge("simd_jobs_inflight"),
		rejected:   reg.VolatileCounter("simd_jobs_rejected_total"),
		jobsTotal:  make(map[Status]*obs.Counter),

		panics:              reg.VolatileCounter("simd_job_panics_total"),
		journalAppends:      reg.VolatileCounter("simd_journal_appends_total"),
		journalAppendErrors: reg.VolatileCounter("simd_journal_append_errors_total"),
		journalBytes:        reg.VolatileCounter("simd_journal_bytes_total"),
		journalCompactions:  reg.VolatileCounter("simd_journal_compactions_total"),
		journalDropped:      reg.VolatileCounter("simd_journal_records_dropped_total"),
		jobsReplayed:        reg.VolatileCounter("simd_jobs_replayed_total"),
		jobsResumed:         reg.VolatileCounter("simd_jobs_resumed_total"),

		reg: reg,
	}
	// Pre-register every terminal status so the series exist (at zero)
	// from the first scrape.
	for _, st := range []Status{StatusDone, StatusFailed, StatusCancelled} {
		m.jobsTotal[st] = reg.VolatileCounter("simd_jobs_total", "status", string(st))
	}
	return m
}

// obs.Gauge has Set, not Add; track the level in an atomic and mirror it.
func (m *metrics) queueDelta(d int64)    { m.queueDepth.SetInt(m.queueN.Add(d)) }
func (m *metrics) inflightDelta(d int64) { m.inflight.SetInt(m.inflightN.Add(d)) }

func (m *metrics) jobFinished(st Status) {
	if c, ok := m.jobsTotal[st]; ok {
		c.Inc()
	}
}

// httpMetrics instruments one endpoint pattern.
type httpMetrics struct {
	latency  *obs.Histogram
	requests func(code string) *obs.Counter
}

func (m *metrics) endpoint(name string) httpMetrics {
	return httpMetrics{
		latency: m.reg.VolatileHistogram("simd_http_latency_ms", latencyEdgesMS, "endpoint", name),
		requests: func(code string) *obs.Counter {
			return m.reg.VolatileCounter("simd_http_requests_total", "endpoint", name, "code", code)
		},
	}
}
