package server

import (
	"context"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/units"
)

// defaultFigure4Requests keeps an unscaled figure4 job interactive; the
// full paper-scale replay is what the CLIs are for.
const defaultFigure4Requests = 2000

// figure4StepLine is one RPM cell of the sweep, kind "step". Steps stream
// as they complete, in sweep order at any worker count.
type figure4StepLine struct {
	Kind             string  `json:"kind"`
	Workload         string  `json:"workload"`
	RPM              float64 `json:"rpm"`
	MeanMillis       float64 `json:"mean_ms"`
	P95Millis        float64 `json:"p95_ms"`
	CacheHitFraction float64 `json:"cache_hit_fraction"`
}

// figure4SummaryLine closes one workload's sweep, kind "workload":
// the relative mean-response improvement of each faster step.
type figure4SummaryLine struct {
	Kind         string    `json:"kind"`
	Workload     string    `json:"workload"`
	BaselineRPM  float64   `json:"baseline_rpm"`
	Steps        int       `json:"steps"`
	Improvements []float64 `json:"improvements"`
}

// runFigure4 replays one workload (or all five) across the RPM sweep,
// streaming each completed step.
func runFigure4(ctx context.Context, spec Spec, env runEnv) error {
	f := spec.Figure4
	workloads, err := lookupWorkloads(f.Workload)
	if err != nil {
		return err
	}
	n := f.Requests
	if n == 0 {
		n = defaultFigure4Requests
	}
	// Workloads run sequentially — results interleaved across workloads
	// would force clients to demultiplex; spec.workers() fans out the RPM
	// steps inside each workload instead.
	for _, w := range workloads {
		w = w.WithRequests(n)
		steps := core.Figure4Steps(w.BaselineRPM)
		if len(f.RPMSteps) > 0 {
			steps = steps[:0]
			for _, rpm := range f.RPMSteps {
				steps = append(steps, units.RPM(rpm))
			}
		}
		var emitErr error
		var stepsDone int64
		onStep := sim.SinkFunc[core.RPMStep](func(s core.RPMStep) {
			if emitErr != nil {
				return
			}
			emitErr = env.emit(figure4StepLine{
				Kind:             "step",
				Workload:         w.Name,
				RPM:              float64(s.RPM),
				MeanMillis:       s.MeanMillis,
				P95Millis:        s.P95Millis,
				CacheHitFraction: s.CacheHitFraction,
			})
			// Each step is a whole sub-simulation; make it durable as soon
			// as its line is out.
			stepsDone++
			env.checkpoint(stepsDone)
		})
		res, err := core.RunFigure4StepsStreamCtx(ctx, w, steps, spec.workers(), core.Observe{}, onStep)
		if err != nil {
			return err
		}
		if emitErr != nil {
			return emitErr
		}
		sum := figure4SummaryLine{
			Kind:         "workload",
			Workload:     w.Name,
			BaselineRPM:  float64(w.BaselineRPM),
			Steps:        len(res.Steps),
			Improvements: res.Improvements(),
		}
		if err := env.emit(sum); err != nil {
			return err
		}
	}
	return nil
}
