package server

import (
	"context"

	"repro/internal/obs"
	"repro/internal/tournament"
)

// tournamentCellLine is one finished (policy, workload, regime) cell, kind
// "cell". The embedded row carries only spec-determined values, so the
// stream stays byte-identical across worker counts and resumes.
type tournamentCellLine struct {
	Kind string `json:"kind"`
	tournament.Cell
}

// tournamentSummaryLine closes a tournament stream with the bracket-wide
// reduction, kind "summary".
type tournamentSummaryLine struct {
	Kind string `json:"kind"`
	tournament.Summary
}

// runTournament executes a tournament job: one "cell" line per result in
// enumeration order, then the "summary". Cell boundaries are the
// deterministic checkpoint positions — a resumed run re-simulates from the
// start and verify-skips the cells already journaled, re-finding exactly the
// same boundaries because the merge order is enumeration order at every
// worker count.
func runTournament(ctx context.Context, spec Spec, env runEnv, reg *obs.Registry) error {
	cfg := spec.Tournament
	if cfg == nil {
		cfg = &TournamentSpec{}
	}
	cells := 0
	sum, err := tournament.Run(ctx, cfg.config(spec.workers(), reg), func(c tournament.Cell) error {
		if err := env.emit(tournamentCellLine{Kind: "cell", Cell: c}); err != nil {
			return err
		}
		cells++
		env.checkpoint(int64(cells))
		return nil
	})
	if err != nil {
		return err
	}
	return env.emit(tournamentSummaryLine{Kind: "summary", Summary: sum})
}
