package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/journal"
)

// submitAsync posts a spec with ?async=1 (optionally with an idempotency
// key) and decodes the Info body.
func submitAsync(t *testing.T, s *Server, body, key string) (*httptest.ResponseRecorder, Info) {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/jobs?async=1", strings.NewReader(body))
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	var info Info
	if w.Code == http.StatusAccepted || w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
			t.Fatalf("decode info: %v (body %s)", err, w.Body.String())
		}
	}
	return w, info
}

// waitStatus polls a job until it reaches a terminal state.
func waitStatus(t *testing.T, s *Server, id string) Status {
	t.Helper()
	j, ok := s.lookup(id)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st, _ := j.snapshot(); st.terminal() {
			return st
		}
		if time.Now().After(deadline) {
			st, _ := j.snapshot()
			t.Fatalf("job %s stuck in %q", id, st)
		}
		time.Sleep(time.Millisecond)
	}
}

// getResult fetches a finished job's buffered result bytes.
func getResult(t *testing.T, s *Server, id string) []byte {
	t.Helper()
	req := httptest.NewRequest("GET", "/v1/jobs/"+id+"/result", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("result %s = %d: %s", id, w.Code, w.Body.String())
	}
	b, err := io.ReadAll(w.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestWorkerPanicContained is the satellite contract: a panicking runner
// fails its own job with the panic message and the daemon keeps serving.
func TestWorkerPanicContained(t *testing.T) {
	cfg := testConfig()
	c := chaos.New(1)
	c.On("job.panic", 1) // only the first dispatched job panics
	cfg.Chaos = c
	cfg.Workers = 1 // deterministic dispatch order
	s := mustNew(t, cfg)
	defer s.Shutdown(context.Background())

	w, info := submitAsync(t, s, smallRoadmapSpec(), "")
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", w.Code)
	}
	if st := waitStatus(t, s, info.ID); st != StatusFailed {
		t.Fatalf("panicked job status = %q, want failed", st)
	}
	j, _ := s.lookup(info.ID)
	if _, errMsg := j.snapshot(); !strings.Contains(errMsg, "job panicked") ||
		!strings.Contains(errMsg, "injected worker panic") {
		t.Fatalf("error = %q, want panic message", errMsg)
	}
	if string(getResult(t, s, info.ID)) == "" {
		t.Fatal("failed job has no in-band error line")
	}
	if got := s.met.panics.Value(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}

	// The pool survived: the next job runs to completion.
	w2, info2 := submitAsync(t, s, smallRoadmapSpec(), "")
	if w2.Code != http.StatusAccepted {
		t.Fatalf("second submit = %d", w2.Code)
	}
	if st := waitStatus(t, s, info2.ID); st != StatusDone {
		t.Fatalf("job after panic = %q, want done", st)
	}
}

// TestReadyzStates checks the three-way lifecycle surface: replaying and
// draining both answer 503, distinguished by the state= body field.
func TestReadyzStates(t *testing.T) {
	readyz := func(s *Server) (int, string) {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/readyz", nil))
		return w.Code, w.Body.String()
	}

	cfg := testConfig()
	cfg.JournalDir = t.TempDir()
	s := newServer(cfg) // journal not opened yet: still replaying
	if code, body := readyz(s); code != http.StatusServiceUnavailable || !strings.Contains(body, "state=replaying") {
		t.Fatalf("replaying readyz = %d %q, want 503 state=replaying", code, body)
	}
	// Submissions during replay bounce with 503, not 429.
	if w, _ := submitAsync(t, s, smallRoadmapSpec(), ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit during replay = %d, want 503", w.Code)
	}

	if err := s.openJournal(); err != nil {
		t.Fatal(err)
	}
	if code, body := readyz(s); code != http.StatusOK || !strings.Contains(body, "state=ready") {
		t.Fatalf("ready readyz = %d %q, want 200 state=ready", code, body)
	}

	s.beginDrain()
	if code, body := readyz(s); code != http.StatusServiceUnavailable || !strings.Contains(body, "state=draining") {
		t.Fatalf("draining readyz = %d %q, want 503 state=draining", code, body)
	}
	s.jrnl.Close()
}

// TestIdempotencyKeyDedup: a second submission under the same key attaches
// to the original job instead of running the work twice.
func TestIdempotencyKeyDedup(t *testing.T) {
	s := mustNew(t, testConfig())
	defer s.Shutdown(context.Background())

	w1, info1 := submitAsync(t, s, smallRoadmapSpec(), "key-a")
	if w1.Code != http.StatusAccepted {
		t.Fatalf("first submit = %d", w1.Code)
	}
	w2, info2 := submitAsync(t, s, smallRoadmapSpec(), "key-a")
	if w2.Code != http.StatusOK {
		t.Fatalf("duplicate submit = %d, want 200", w2.Code)
	}
	if w2.Header().Get("X-Idempotent-Replay") != "true" {
		t.Fatal("duplicate submit missing X-Idempotent-Replay header")
	}
	if info2.ID != info1.ID {
		t.Fatalf("duplicate got job %s, want %s", info2.ID, info1.ID)
	}
	w3, info3 := submitAsync(t, s, smallRoadmapSpec(), "key-b")
	if w3.Code != http.StatusAccepted || info3.ID == info1.ID {
		t.Fatalf("distinct key: %d job %s, want 202 and a new job", w3.Code, info3.ID)
	}
	if st := waitStatus(t, s, info1.ID); st != StatusDone {
		t.Fatalf("deduped job = %q", st)
	}
}

// TestJournalSubmitFailure503: if the admission record cannot be made
// durable, the submission is refused (503 + Retry-After) and leaves no
// trace — the same idempotency key is reusable immediately.
func TestJournalSubmitFailure503(t *testing.T) {
	cfg := testConfig()
	cfg.JournalDir = t.TempDir()
	c := chaos.New(5)
	c.On(chaos.OpWrite, 1) // first journal append fails
	cfg.Chaos = c
	s := mustNew(t, cfg)
	defer s.Shutdown(context.Background())

	w, _ := submitAsync(t, s, smallRoadmapSpec(), "key-x")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit with failing journal = %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if got := s.met.journalAppendErrors.Value(); got != 1 {
		t.Fatalf("journalAppendErrors = %d, want 1", got)
	}

	// Retry under the same key succeeds and runs.
	w2, info := submitAsync(t, s, smallRoadmapSpec(), "key-x")
	if w2.Code != http.StatusAccepted {
		t.Fatalf("retry = %d, want 202: %s", w2.Code, w2.Body.String())
	}
	if st := waitStatus(t, s, info.ID); st != StatusDone {
		t.Fatalf("retried job = %q", st)
	}
}

// TestJournalPersistence: completed jobs, their result bytes, and their
// idempotency keys all survive a graceful restart.
func TestJournalPersistence(t *testing.T) {
	cfg := testConfig()
	cfg.JournalDir = t.TempDir()
	s1 := mustNew(t, cfg)

	w, info := submitAsync(t, s1, smallRoadmapSpec(), "persist-key")
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", w.Code)
	}
	if st := waitStatus(t, s1, info.ID); st != StatusDone {
		t.Fatalf("job = %q", st)
	}
	want := getResult(t, s1, info.ID)
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	cfg2 := testConfig()
	cfg2.JournalDir = cfg.JournalDir
	s2 := mustNew(t, cfg2)
	defer s2.Shutdown(context.Background())

	if st := waitStatus(t, s2, info.ID); st != StatusDone {
		t.Fatalf("replayed job = %q, want done", st)
	}
	if got := getResult(t, s2, info.ID); string(got) != string(want) {
		t.Fatalf("replayed result differs:\n--- before ---\n%s\n--- after ---\n%s", want, got)
	}
	if got := s2.met.jobsReplayed.Value(); got != 1 {
		t.Fatalf("jobsReplayed = %d, want 1", got)
	}
	// The key still points at the original job across the restart.
	w2, info2 := submitAsync(t, s2, smallRoadmapSpec(), "persist-key")
	if w2.Code != http.StatusOK || info2.ID != info.ID {
		t.Fatalf("post-restart dedup: %d job %s, want 200 %s", w2.Code, info2.ID, info.ID)
	}
	// New submissions never collide with replayed ids.
	w3, info3 := submitAsync(t, s2, smallRoadmapSpec(), "")
	if w3.Code != http.StatusAccepted || info3.ID == info.ID {
		t.Fatalf("fresh submit: %d job %s collides with %s", w3.Code, info3.ID, info.ID)
	}
}

// TestReplayOverflowBacklog: a crash can leave far more non-terminal jobs
// in the journal than the bounded queue holds. They are acknowledged work,
// so restart must not fail the overflow — it waits in the backlog and runs
// as workers free queue slots, while new submissions yield with 429.
func TestReplayOverflowBacklog(t *testing.T) {
	dir := t.TempDir()
	// Seed a journal directly with 10 queued submits — no server involved,
	// so nothing can drain them before the restart under test.
	jrnl, _, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := json.RawMessage(smallRoadmapSpec())
	const n = 10
	for i := 1; i <= n; i++ {
		rec := journal.Record{
			Kind: journal.KindSubmit,
			Job:  fmt.Sprintf("job-%d", i),
			Key:  fmt.Sprintf("overflow-%d", i),
			Spec: spec,
		}
		if err := jrnl.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jrnl.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := testConfig()
	cfg.JournalDir = dir
	cfg.QueueDepth = 2 // far below the journaled job count
	cfg.Workers = 1
	s := mustNew(t, cfg)
	defer s.Shutdown(context.Background())

	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("job-%d", i)
		if st := waitStatus(t, s, id); st != StatusDone {
			j, _ := s.lookup(id)
			_, errMsg := j.snapshot()
			t.Fatalf("replayed job %s = %q (%s), want done", id, st, errMsg)
		}
	}
	if got := s.met.jobsReplayed.Value(); got != n {
		t.Fatalf("jobsReplayed = %d, want %d", got, n)
	}
}

// TestJournalFailureUnblocksAttacher: register publishes the key→job
// binding before the journal append runs, so a concurrent same-key
// submission can attach to the job and block on its result stream. If the
// journal append then fails, backing the job out must close its buffer so
// the attacher unblocks with the failure instead of hanging until its own
// context dies — while the key itself is freed for a clean retry.
func TestJournalFailureUnblocksAttacher(t *testing.T) {
	cfg := testConfig()
	cfg.JournalDir = t.TempDir()
	s := mustNew(t, cfg)
	defer s.Shutdown(context.Background())

	var spec Spec
	if err := json.Unmarshal([]byte(smallRoadmapSpec()), &spec); err != nil {
		t.Fatal(err)
	}
	j, existing := s.register(spec, "attach-key")
	if existing {
		t.Fatal("fresh key reported existing")
	}
	// The attacher: a second submission that found the binding and is now
	// waiting for the job's first result line.
	j2, existing2 := s.register(spec, "attach-key")
	if !existing2 || j2 != j {
		t.Fatalf("attacher got job %v existing=%v, want the original", j2, existing2)
	}
	unblocked := make(chan bool, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		unblocked <- j2.buf.waitFirst(ctx)
	}()

	// The first submission's journal append fails.
	s.rejectUnjournaled(j, errors.New("injected append failure"))

	select {
	case ok := <-unblocked:
		if !ok {
			t.Fatal("attacher timed out instead of observing the failure")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("attacher still blocked after rejectUnjournaled")
	}
	if st, errMsg := j.snapshot(); st != StatusFailed || !strings.Contains(errMsg, "journal unavailable") {
		t.Fatalf("backed-out job = %q (%s), want failed with journal error", st, errMsg)
	}
	// The buffer carries the in-band error line and is closed.
	if lines, _ := j.buf.stats(); lines == 0 {
		t.Fatal("backed-out job has no in-band error line")
	}
	// The key is free: a retry gets a fresh job, not the dead record.
	j3, existing3 := s.register(spec, "attach-key")
	if existing3 || j3 == j {
		t.Fatal("retry under the failed key did not get a clean slate")
	}
}

// TestCrashResumeByteIdentity is the tentpole acceptance test: a job killed
// mid-run (journaling stops dead, as under SIGKILL) resumes from its last
// checkpoint after restart and produces NDJSON byte-identical to a run
// that was never interrupted.
func TestCrashResumeByteIdentity(t *testing.T) {
	// Reference: the same job on a journal-less server.
	body := `{"type":"dtm","dtm":{"policy":"envelope","requests":100000,"sample_every":200}}`
	ref := mustNew(t, testConfig())
	wr, infoRef := submitAsync(t, ref, body, "")
	if wr.Code != http.StatusAccepted {
		t.Fatalf("reference submit = %d", wr.Code)
	}
	if st := waitStatus(t, ref, infoRef.ID); st != StatusDone {
		t.Fatalf("reference job = %q", st)
	}
	want := getResult(t, ref, infoRef.ID)
	ref.Shutdown(context.Background())

	// Crash victim: checkpoint frequently so the kill lands mid-stream.
	cfg := testConfig()
	cfg.JournalDir = t.TempDir()
	cfg.CheckpointEvery = 1000
	cfg.Workers = 1
	s1 := mustNew(t, cfg)

	w, info := submitAsync(t, s1, body, "crash-key")
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", w.Code)
	}
	j, _ := s1.lookup(info.ID)
	deadline := time.Now().Add(30 * time.Second)
	for {
		j.mu.Lock()
		durable := j.journaled
		j.mu.Unlock()
		if durable >= 5 {
			break // a real prefix is on disk; crash now
		}
		if st, _ := j.snapshot(); st.terminal() {
			t.Fatal("job finished before the crash landed; raise requests")
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint ever landed")
		}
		time.Sleep(time.Millisecond)
	}
	s1.Crash()

	// Restart over the same journal: the job must resume and complete.
	cfg2 := testConfig()
	cfg2.JournalDir = cfg.JournalDir
	cfg2.CheckpointEvery = 1000
	s2 := mustNew(t, cfg2)
	defer s2.Shutdown(context.Background())

	if got := s2.met.jobsResumed.Value(); got != 1 {
		t.Fatalf("jobsResumed = %d, want 1", got)
	}
	if st := waitStatus(t, s2, info.ID); st != StatusDone {
		j2, _ := s2.lookup(info.ID)
		_, errMsg := j2.snapshot()
		t.Fatalf("resumed job = %q (%s), want done", st, errMsg)
	}
	got := getResult(t, s2, info.ID)
	if string(got) != string(want) {
		t.Fatalf("resumed result is not byte-identical (%d vs %d bytes)", len(got), len(want))
	}
	// The interrupted submission's key resolves to the resumed job.
	w2, info2 := submitAsync(t, s2, body, "crash-key")
	if w2.Code != http.StatusOK || info2.ID != info.ID {
		t.Fatalf("post-crash dedup: %d job %s, want 200 %s", w2.Code, info2.ID, info.ID)
	}
}
