package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzJobSpec throws arbitrary bytes at the submission endpoint's JSON
// decoding and validation: the handler must never panic and must answer
// with one of the admission-path statuses — garbage is a 400, valid specs
// are admitted (202) or bounced by the bounded queue (429), nothing else.
func FuzzJobSpec(f *testing.F) {
	f.Add([]byte(`{"type":"roadmap","roadmap":{"first_year":2002,"last_year":2003}}`))
	f.Add([]byte(`{"type":"dtm","dtm":{"policy":"drpm"}}`))
	f.Add([]byte(`{"type":"figure4","figure4":{"workload":"TPC-C","requests":100}}`))
	f.Add([]byte(`{"type":"raid","raid":{"workload":"TPC-C"}}`))
	f.Add([]byte(`{"type":"fleet","fleet":{"racks":2,"chassis_per_rack":2,"slots_per_chassis":4}}`))
	f.Add([]byte(`{"type":"fleet","fleet":{"racks":2,"chassis_per_rack":2,"slots_per_chassis":4,` +
		`"placement":"coolest","migrate_at_c":40,"cooling_failure":{"rack":-1,"duration_ms":2000,"delta_c":10}}}`))
	f.Add([]byte(`{"type":"fleet","fleet":{"racks":10000,"chassis_per_rack":1000,"slots_per_chassis":64}}`))
	f.Add([]byte(`{"type":"tournament"}`))
	f.Add([]byte(`{"type":"tournament","tournament":{"workloads":["TPC-C"],"requests":500}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"type":"roadmap","bogus":1}`))
	f.Add([]byte(`{"type":"roadmap","workers":-1}`))
	f.Add([]byte(`null`))
	f.Add([]byte{0xff, 0xfe, 0x00})

	cfg := testConfig()
	cfg.QueueDepth = 4
	s := newServer(cfg) // no workers: admission only, nothing executes

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/jobs?async=1", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		switch w.Code {
		case http.StatusAccepted, http.StatusBadRequest, http.StatusTooManyRequests:
		default:
			t.Fatalf("spec %q: status %d outside the admission contract", body, w.Code)
		}
	})
}

// FuzzTournamentSpec targets the tournament block's validator directly:
// arbitrary JSON must never panic validation, admission must be
// deterministic (same spec, same verdict), and a spec the sync path admits
// must also be admissible async — the async gate is strictly looser.
func FuzzTournamentSpec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"workloads":["TPC-C","Search-Engine"],"requests":600,"seed":7}`))
	f.Add([]byte(`{"policies":["predictive"],"regimes":["fault"],"lead_time_ms":8000,"load_scale":3}`))
	f.Add([]byte(`{"policies":["nonsense"]}`))
	f.Add([]byte(`{"requests":-1}`))
	f.Add([]byte(`{"requests":200000}`))
	f.Add([]byte(`{"load_scale":1e308}`))

	cfg := testConfig().withDefaults()
	f.Fuzz(func(t *testing.T, body []byte) {
		var ts TournamentSpec
		if err := json.Unmarshal(body, &ts); err != nil {
			return
		}
		spec := Spec{Type: TypeTournament, Tournament: &ts}
		syncErr := spec.validate(cfg, false)
		asyncErr := spec.validate(cfg, true)
		if again := spec.validate(cfg, false); (again == nil) != (syncErr == nil) {
			t.Fatalf("validation not deterministic for %s", body)
		}
		if syncErr == nil && asyncErr != nil {
			t.Fatalf("sync-admissible spec rejected async: %v (%s)", asyncErr, body)
		}
		if asyncErr == nil {
			// Anything the server admits must be runnable by the engine's
			// own validator with the same verdict.
			if err := ts.config(1, nil).Validate(); err != nil {
				t.Fatalf("admitted spec fails engine validation: %v (%s)", err, body)
			}
		}
	})
}
