package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzJobSpec throws arbitrary bytes at the submission endpoint's JSON
// decoding and validation: the handler must never panic and must answer
// with one of the admission-path statuses — garbage is a 400, valid specs
// are admitted (202) or bounced by the bounded queue (429), nothing else.
func FuzzJobSpec(f *testing.F) {
	f.Add([]byte(`{"type":"roadmap","roadmap":{"first_year":2002,"last_year":2003}}`))
	f.Add([]byte(`{"type":"dtm","dtm":{"policy":"drpm"}}`))
	f.Add([]byte(`{"type":"figure4","figure4":{"workload":"TPC-C","requests":100}}`))
	f.Add([]byte(`{"type":"raid","raid":{"workload":"TPC-C"}}`))
	f.Add([]byte(`{"type":"fleet","fleet":{"racks":2,"chassis_per_rack":2,"slots_per_chassis":4}}`))
	f.Add([]byte(`{"type":"fleet","fleet":{"racks":2,"chassis_per_rack":2,"slots_per_chassis":4,` +
		`"placement":"coolest","migrate_at_c":40,"cooling_failure":{"rack":-1,"duration_ms":2000,"delta_c":10}}}`))
	f.Add([]byte(`{"type":"fleet","fleet":{"racks":10000,"chassis_per_rack":1000,"slots_per_chassis":64}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"type":"roadmap","bogus":1}`))
	f.Add([]byte(`{"type":"roadmap","workers":-1}`))
	f.Add([]byte(`null`))
	f.Add([]byte{0xff, 0xfe, 0x00})

	cfg := testConfig()
	cfg.QueueDepth = 4
	s := newServer(cfg) // no workers: admission only, nothing executes

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/jobs?async=1", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		switch w.Code {
		case http.StatusAccepted, http.StatusBadRequest, http.StatusTooManyRequests:
		default:
			t.Fatalf("spec %q: status %d outside the admission contract", body, w.Code)
		}
	})
}
