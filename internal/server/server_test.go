package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// testConfig keeps unit-test servers tiny and fast.
func testConfig() Config {
	return Config{
		Workers:     2,
		QueueDepth:  4,
		JobTimeout:  30 * time.Second,
		MaxRequests: 100000,
		Registry:    obs.NewRegistry(),
	}
}

// mustNew builds a fully-started server (workers running) or fails the test.
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	return s
}

func smallRoadmapSpec() string {
	return `{"type":"roadmap","roadmap":{"first_year":2002,"last_year":2003,"platter_sizes":[2.6]}}`
}

func postJob(t *testing.T, h http.Handler, body string, query string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/jobs"+query, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestSpecValidation(t *testing.T) {
	cfg := testConfig().withDefaults()
	bad := []Spec{
		{},
		{Type: "nope"},
		{Type: TypeRoadmap, Roadmap: &RoadmapSpec{FirstYear: 2010, LastYear: 2005}},
		{Type: TypeRoadmap, Roadmap: &RoadmapSpec{PlatterSizes: []float64{9.9}}},
		{Type: TypeRoadmap, Roadmap: &RoadmapSpec{}, DTM: &DTMSpec{Policy: "drpm"}},
		{Type: TypeFigure4},
		{Type: TypeFigure4, Figure4: &Figure4Spec{Workload: "nope"}},
		{Type: TypeFigure4, Figure4: &Figure4Spec{Workload: "TPC-C", Requests: cfg.MaxRequests + 1}},
		{Type: TypeDTM, DTM: &DTMSpec{Policy: "warmwater"}},
		{Type: TypeRAID, RAID: &RAIDSpec{Workload: "all"}},
		{Type: TypeRAID, RAID: &RAIDSpec{Workload: "TPC-C", FailDisk: 99}},
		{Type: TypeRoadmap, Workers: maxJobWorkers + 1, Roadmap: &RoadmapSpec{}},
		{Type: TypeRoadmap, TimeoutMS: -1, Roadmap: &RoadmapSpec{}},
		{Type: TypeFleet},
		{Type: TypeFleet, Fleet: &FleetSpec{Racks: 0, ChassisPerRack: 1, SlotsPerChassis: 1}},
		{Type: TypeFleet, Fleet: &FleetSpec{Racks: 1, ChassisPerRack: 1, SlotsPerChassis: 65}},
		{Type: TypeFleet, Fleet: &FleetSpec{Racks: 1, ChassisPerRack: 1, SlotsPerChassis: 1, Placement: "warmest"}},
		{Type: TypeFleet, Fleet: &FleetSpec{Racks: 1, ChassisPerRack: 1, SlotsPerChassis: 1, Recirculation: 1}},
		{Type: TypeFleet, Fleet: &FleetSpec{Racks: 1, ChassisPerRack: 1, SlotsPerChassis: 4,
			CoolingFailure: &CoolingFailureSpec{Rack: 1, DurationMS: 1000, DeltaC: 10}}},
		{Type: TypeFleet, Fleet: &FleetSpec{Racks: 1, ChassisPerRack: 1, SlotsPerChassis: 4,
			CoolingFailure: &CoolingFailureSpec{Rack: 0, DurationMS: maxFleetFailureMS + 1, DeltaC: 10}}},
		// 10000*1000*64 drives blows past MaxFleetDrives even async.
		{Type: TypeFleet, Fleet: &FleetSpec{Racks: 10000, ChassisPerRack: 1000, SlotsPerChassis: 64}},
	}
	for i, s := range bad {
		if err := s.validate(cfg, true); err == nil {
			t.Errorf("spec %d: expected validation error, got nil", i)
		}
	}
	good := []Spec{
		{Type: TypeRoadmap},
		{Type: TypeRoadmap, Roadmap: &RoadmapSpec{FirstYear: 2002, LastYear: 2004}},
		{Type: TypeFigure4, Figure4: &Figure4Spec{Workload: "all"}},
		{Type: TypeDTM, DTM: &DTMSpec{Policy: "envelope"}},
		{Type: TypeRAID, RAID: &RAIDSpec{Workload: "TPC-C"}},
		{Type: TypeFleet, Fleet: &FleetSpec{Racks: 2, ChassisPerRack: 2, SlotsPerChassis: 4,
			Placement: "coolest", MigrateAtC: 40,
			CoolingFailure: &CoolingFailureSpec{Rack: -1, AtMS: 100, DurationMS: 2000, DeltaC: 10}}},
	}
	for i, s := range good {
		if err := s.validate(cfg, true); err != nil {
			t.Errorf("spec %d: unexpected validation error: %v", i, err)
		}
	}
}

// TestFleetSyncSizeBound pins the per-path fleet-size gate: a fleet over
// MaxSyncFleetDrives is rejected on the sync path with a message pointing
// at ?async=1, accepted on the async path, and a fleet over MaxFleetDrives
// is rejected on both.
func TestFleetSyncSizeBound(t *testing.T) {
	cfg := testConfig().withDefaults()
	// 50 racks x 10 chassis x 50 slots = 25,000 drives: above the 20,000
	// sync cap, below the 1,000,000 async cap.
	spec := Spec{Type: TypeFleet, Fleet: &FleetSpec{Racks: 50, ChassisPerRack: 10, SlotsPerChassis: 50}}
	err := spec.validate(cfg, false)
	if err == nil {
		t.Fatal("25k-drive fleet accepted on the sync path")
	}
	if !strings.Contains(err.Error(), "async=1") {
		t.Fatalf("sync rejection should point at the async path: %v", err)
	}
	if err := spec.validate(cfg, true); err != nil {
		t.Fatalf("25k-drive fleet rejected async: %v", err)
	}

	// The handler enforces the same gate end to end: a synchronous POST of
	// the oversized spec is a 400 before any work is admitted.
	s := newServer(testConfig()) // no workers: admission only
	body := `{"type":"fleet","fleet":{"racks":50,"chassis_per_rack":10,"slots_per_chassis":50}}`
	if w := postJob(t, s.Handler(), body, ""); w.Code != http.StatusBadRequest {
		t.Fatalf("sync oversized fleet = %d, want 400: %s", w.Code, w.Body.String())
	}
	if w := postJob(t, s.Handler(), body, "?async=1"); w.Code != http.StatusAccepted {
		t.Fatalf("async oversized fleet = %d, want 202: %s", w.Code, w.Body.String())
	}
}

func TestSyncJobStreamsNDJSON(t *testing.T) {
	s := mustNew(t, testConfig())
	defer s.Shutdown(context.Background())

	w := postJob(t, s.Handler(), smallRoadmapSpec(), "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != obs.ContentTypeNDJSON {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.ContentTypeNDJSON)
	}
	if w.Header().Get("X-Job-ID") == "" {
		t.Fatal("missing X-Job-ID header")
	}
	lines := 0
	sawSummary := false
	sc := bufio.NewScanner(bytes.NewReader(w.Body.Bytes()))
	for sc.Scan() {
		lines++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if m["kind"] == "summary" {
			sawSummary = true
		}
		if m["kind"] == "error" {
			t.Fatalf("unexpected error line: %s", sc.Text())
		}
	}
	// 2 years x 1 size = 2 points + summary.
	if lines != 3 || !sawSummary {
		t.Fatalf("got %d lines (summary=%v), want 3 with summary", lines, sawSummary)
	}
}

func TestBadSpecRejected(t *testing.T) {
	s := mustNew(t, testConfig())
	defer s.Shutdown(context.Background())

	for _, body := range []string{
		`{`,
		`{"type":"roadmap","bogus_field":1}`,
		`{"type":"figure4","figure4":{"workload":"nope"}}`,
	} {
		w := postJob(t, s.Handler(), body, "")
		if w.Code != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, w.Code)
		}
	}
}

// TestQueueFull429 fills the queue of a server whose workers were never
// started, so admission control is exercised deterministically.
func TestQueueFull429(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 2
	s := newServer(cfg) // no workers: nothing drains the queue

	for i := 0; i < cfg.QueueDepth; i++ {
		w := postJob(t, s.Handler(), smallRoadmapSpec(), "?async=1")
		if w.Code != http.StatusAccepted {
			t.Fatalf("job %d: status = %d, want 202", i, w.Code)
		}
	}
	w := postJob(t, s.Handler(), smallRoadmapSpec(), "?async=1")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if got := s.met.rejected.Value(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
}

// TestCancelQueuedJob cancels a job that never gets a worker and checks it
// reports cancelled immediately, with the in-band error line.
func TestCancelQueuedJob(t *testing.T) {
	s := newServer(testConfig()) // no workers

	w := postJob(t, s.Handler(), smallRoadmapSpec(), "?async=1")
	if w.Code != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", w.Code)
	}
	var info Info
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest("DELETE", "/v1/jobs/"+info.ID, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("cancel status = %d, want 202", rec.Code)
	}

	req = httptest.NewRequest("GET", "/v1/jobs/"+info.ID, nil)
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	var after Info
	if err := json.Unmarshal(rec.Body.Bytes(), &after); err != nil {
		t.Fatal(err)
	}
	if after.Status != StatusCancelled {
		t.Fatalf("status = %q, want cancelled", after.Status)
	}

	req = httptest.NewRequest("GET", "/v1/jobs/"+info.ID+"/result", nil)
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"kind":"error"`) {
		t.Fatalf("result = %d %q, want 200 with error line", rec.Code, rec.Body.String())
	}
}

func TestUnknownJob404(t *testing.T) {
	s := newServer(testConfig())
	for _, r := range []*http.Request{
		httptest.NewRequest("GET", "/v1/jobs/job-999", nil),
		httptest.NewRequest("GET", "/v1/jobs/job-999/result", nil),
		httptest.NewRequest("DELETE", "/v1/jobs/job-999", nil),
	} {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, r)
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s %s: status = %d, want 404", r.Method, r.URL.Path, rec.Code)
		}
	}
}

func TestHealthReadyMetrics(t *testing.T) {
	s := mustNew(t, testConfig())

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", rec.Code)
	}
	if rec := get("/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", rec.Code)
	}
	rec := get("/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.ContentTypePrometheus {
		t.Fatalf("metrics Content-Type = %q, want %q", ct, obs.ContentTypePrometheus)
	}
	if !strings.Contains(rec.Body.String(), "simd_queue_depth") {
		t.Fatal("metrics export missing simd_queue_depth")
	}

	// Draining flips readiness but not liveness, and submissions get 503.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if rec := get("/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", rec.Code)
	}
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("draining healthz = %d, want 200", rec.Code)
	}
	if w := postJob(t, s.Handler(), smallRoadmapSpec(), ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining submit = %d, want 503", w.Code)
	}
}

// TestShutdownCancelsRunningJobs gives the drain a tiny deadline so an
// in-flight job must be cancelled rather than finished.
func TestShutdownCancelsRunningJobs(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	s := mustNew(t, cfg)

	// A large dtm run: long enough to still be in flight at shutdown.
	body := `{"type":"dtm","dtm":{"policy":"envelope","requests":100000}}`
	w := postJob(t, s.Handler(), body, "?async=1")
	if w.Code != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", w.Code)
	}
	var info Info
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	j, ok := s.lookup(info.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	// Wait until it is actually running so the hard-cancel path is the one
	// exercised.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, _ := j.snapshot(); st == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("shutdown took %v, cancellation not prompt", took)
	}
	if st, _ := j.snapshot(); st != StatusCancelled && st != StatusDone {
		t.Fatalf("job status after drain = %q, want cancelled (or done if it raced)", st)
	}
}

func TestJobEviction(t *testing.T) {
	cfg := testConfig()
	cfg.MaxJobs = 2
	s := newServer(cfg)

	a, _ := s.register(Spec{Type: TypeRoadmap}, "")
	a.finish(StatusQueued, StatusCancelled, nil)
	s.register(Spec{Type: TypeRoadmap}, "")
	s.register(Spec{Type: TypeRoadmap}, "")
	if _, ok := s.lookup(a.id); ok {
		t.Fatal("oldest terminal job should have been evicted")
	}
	if got := len(s.list()); got != 2 {
		t.Fatalf("job list length = %d, want 2", got)
	}
}

func TestResultBufferLimit(t *testing.T) {
	b := newResultBuffer(10)
	if err := b.append([]byte("12345\n")); err != nil {
		t.Fatal(err)
	}
	if err := b.append([]byte("123456\n")); err != errResultTooLarge {
		t.Fatalf("err = %v, want errResultTooLarge", err)
	}
}

func TestResultBufferReplayAndFollow(t *testing.T) {
	b := newResultBuffer(1 << 20)
	if err := b.append([]byte("a\n")); err != nil {
		t.Fatal(err)
	}
	done := make(chan string, 1)
	go func() {
		rec := httptest.NewRecorder()
		_ = b.stream(context.Background(), rec)
		done <- rec.Body.String()
	}()
	time.Sleep(10 * time.Millisecond)
	if err := b.append([]byte("b\n")); err != nil {
		t.Fatal(err)
	}
	b.close()
	if got := <-done; got != "a\nb\n" {
		t.Fatalf("streamed %q, want \"a\\nb\\n\"", got)
	}

	// Replay after close sees the same bytes.
	rec := httptest.NewRecorder()
	if err := b.stream(context.Background(), rec); err != nil {
		t.Fatal(err)
	}
	if got := rec.Body.String(); got != "a\nb\n" {
		t.Fatalf("replayed %q, want \"a\\nb\\n\"", got)
	}
}
