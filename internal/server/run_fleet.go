package server

import (
	"context"
	"time"

	"repro/internal/fleet"
	"repro/internal/units"
)

// fleetRackLine is one rack's merged aggregates, kind "rack". The embedded
// summary carries only spec-determined values, so the stream stays
// byte-identical across worker counts and resumes.
type fleetRackLine struct {
	Kind string `json:"kind"`
	fleet.RackSummary
}

// fleetSummaryLine closes a fleet stream with the fleet-wide reduction,
// kind "summary".
type fleetSummaryLine struct {
	Kind string `json:"kind"`
	fleet.Summary
}

// fleetConfig maps the wire spec onto the fleet engine's configuration.
func fleetConfig(f *FleetSpec, workers int, met *fleet.Metrics) fleet.Config {
	cfg := fleet.Config{
		Topology: fleet.Topology{
			Racks:           f.Racks,
			ChassisPerRack:  f.ChassisPerRack,
			SlotsPerChassis: f.SlotsPerChassis,
		},
		Scenario: fleet.Scenario{
			AirflowCFM:    f.AirflowCFM,
			Recirculation: f.Recirculation,
		},
		Workload: fleet.Workload{
			RequestsPerDrive: f.RequestsPerDrive,
			HotFraction:      f.HotFraction,
			Seed:             f.Seed,
		},
		Placement: fleet.Placement(f.Placement),
		Migration: fleet.Migration{
			ThresholdC:  units.Celsius(f.MigrateAtC),
			HysteresisC: units.Celsius(f.HysteresisC),
		},
		GenYears: f.GenYears,
		Workers:  workers,
		Metrics:  met,
	}
	if cf := f.CoolingFailure; cf != nil {
		cfg.Scenario.CoolingFailure = &fleet.CoolingFailure{
			Rack:     cf.Rack,
			At:       time.Duration(cf.AtMS) * time.Millisecond,
			Duration: time.Duration(cf.DurationMS) * time.Millisecond,
			DeltaC:   units.Celsius(cf.DeltaC),
		}
	}
	return cfg
}

// runFleet executes a fleet job: one "rack" line per rack as the shard
// merges complete, then the fleet "summary". Rack boundaries are the
// deterministic checkpoint positions — a resumed run re-simulates from the
// start and verify-skips the racks already journaled, re-finding exactly
// the same boundaries because the merge order is topology order at every
// worker count.
func runFleet(ctx context.Context, spec Spec, env runEnv, met *fleet.Metrics) error {
	cfg := fleetConfig(spec.Fleet, spec.workers(), met)
	sum, err := fleet.Run(ctx, cfg, func(rs fleet.RackSummary) error {
		if err := env.emit(fleetRackLine{Kind: "rack", RackSummary: rs}); err != nil {
			return err
		}
		env.checkpoint(int64(rs.Rack + 1))
		return nil
	})
	if err != nil {
		return err
	}
	return env.emit(fleetSummaryLine{Kind: "summary", Summary: sum})
}
