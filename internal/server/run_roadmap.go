package server

import (
	"context"

	"repro/internal/scaling"
	"repro/internal/sim"
	"repro/internal/units"
)

// emitFunc delivers one NDJSON result line. Runners emit only
// spec-determined values through it — no wall-clock, no job identity — so
// a seeded job's body is byte-identical on every run at any worker count.
type emitFunc = func(v any) error

// runEnv is what a runner gets beyond the spec: the emit sink plus the
// optional checkpointer that makes the lines emitted so far durable.
// Checkpoints are cut at deterministic positions on the sim timeline (a
// completion count, a sweep index) so a resumed run re-finds the same
// boundaries.
type runEnv struct {
	emit            emitFunc
	ckpt            sim.Checkpointer
	checkpointEvery int
}

// checkpoint marks progress at pos; a no-op without a checkpointer.
func (e runEnv) checkpoint(pos int64) {
	if e.ckpt != nil {
		e.ckpt.Checkpoint(pos)
	}
}

// checkpointDue reports whether a completion-count checkpoint falls on n.
func (e runEnv) checkpointDue(n int) bool {
	return e.ckpt != nil && e.checkpointEvery > 0 && n%e.checkpointEvery == 0
}

// roadmapPointLine is one (year, size) roadmap cell, kind "point".
type roadmapPointLine struct {
	Kind           string  `json:"kind"`
	Year           int     `json:"year"`
	SizeInches     float64 `json:"size_inches"`
	Platters       int     `json:"platters"`
	TargetIDRMBps  float64 `json:"target_idr_mbps"`
	IDRDensityMBps float64 `json:"idr_density_mbps"`
	RequiredRPM    float64 `json:"required_rpm"`
	RequiredTempC  float64 `json:"required_temp_c"`
	MaxRPM         float64 `json:"max_rpm"`
	MaxIDRMBps     float64 `json:"max_idr_mbps"`
	CapacityGB     float64 `json:"capacity_gb"`
	MeetsTarget    bool    `json:"meets_target"`
}

// roadmapSummaryLine closes a roadmap stream, kind "summary".
type roadmapSummaryLine struct {
	Kind        string `json:"kind"`
	Points      int    `json:"points"`
	FalloffYear int    `json:"falloff_year"`
}

// runRoadmap executes a roadmap job. scaling.Roadmap has no internal
// cancellation hooks, but a default sweep is sub-second, so the job runs
// whole and the context is honoured between emitted lines.
func runRoadmap(ctx context.Context, spec Spec, env runEnv) error {
	r := spec.Roadmap
	if r == nil {
		r = &RoadmapSpec{}
	}
	cfg := scaling.Config{
		FirstYear:    r.FirstYear,
		LastYear:     r.LastYear,
		Platters:     r.Platters,
		VCMOff:       r.VCMOff,
		AmbientDelta: units.Celsius(r.AmbientDelta),
		Workers:      spec.workers(),
	}
	for _, sz := range r.PlatterSizes {
		cfg.PlatterSizes = append(cfg.PlatterSizes, units.Inches(sz))
	}
	pts, err := scaling.Roadmap(cfg)
	if err != nil {
		return err
	}
	for i, p := range pts {
		if err := ctx.Err(); err != nil {
			return err
		}
		line := roadmapPointLine{
			Kind:           "point",
			Year:           p.Year,
			SizeInches:     float64(p.Size),
			Platters:       p.Platters,
			TargetIDRMBps:  float64(p.TargetIDR),
			IDRDensityMBps: float64(p.IDRDensity),
			RequiredRPM:    float64(p.RequiredRPM),
			RequiredTempC:  float64(p.RequiredTemp),
			MaxRPM:         float64(p.MaxRPM),
			MaxIDRMBps:     float64(p.MaxIDR),
			CapacityGB:     p.Capacity.GB(),
			MeetsTarget:    p.MeetsTarget,
		}
		if err := env.emit(line); err != nil {
			return err
		}
		// Roadmap sweeps are small; checkpoint every few rows rather than
		// on the (larger) completion-count cadence.
		if (i+1)%8 == 0 {
			env.checkpoint(int64(i + 1))
		}
	}
	return env.emit(roadmapSummaryLine{
		Kind:        "summary",
		Points:      len(pts),
		FalloffYear: scaling.FalloffYear(pts),
	})
}
