package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/surrogate"
)

// surrogateFoldLine is one cross-validation fold, kind "fold".
type surrogateFoldLine struct {
	Kind string `json:"kind"`
	surrogate.FoldReport
}

// surrogateTrainSummary closes a training stream, kind "summary". The
// checksum is the artifact fingerprint — the byte-determinism contract
// makes it a pure function of the training spec.
type surrogateTrainSummary struct {
	Kind          string                   `json:"kind"`
	Cells         int                      `json:"cells"`
	ArtifactBytes int                      `json:"artifact_bytes"`
	Checksum      string                   `json:"checksum"`
	MaxRelErr     float64                  `json:"max_rel_err"`
	Channels      []surrogate.ChannelError `json:"channels"`
}

// surrogateAnswerLine is one answered query, kind "answer". Source is
// "surrogate" for the interpolation fast path and "exact" for fallbacks —
// and an exact-sourced line is byte-identical whether it came from a
// transparent fallback or a forced exact job, which is how the
// verification suite proves the fallback path honest.
type surrogateAnswerLine struct {
	Kind  string `json:"kind"`
	Index int    `json:"index"`
	surrogate.Query
	surrogate.Answer
	Source string `json:"source"`
}

// surrogateQuerySummary closes a query stream, kind "summary".
type surrogateQuerySummary struct {
	Kind      string `json:"kind"`
	Queries   int    `json:"queries"`
	Hits      int    `json:"hits"`
	Fallbacks int    `json:"fallbacks"`
}

// runSurrogate routes a surrogate job by mode.
func runSurrogate(ctx context.Context, spec Spec, env runEnv, s *Server) error {
	sp := spec.Surrogate
	if sp == nil {
		return fmt.Errorf("surrogate job missing its block")
	}
	switch sp.Mode {
	case "train":
		return runSurrogateTrain(ctx, spec, env, s)
	case "query":
		return runSurrogateQuery(ctx, spec, env, s)
	default:
		return fmt.Errorf("unknown surrogate mode %q", sp.Mode)
	}
}

// runSurrogateTrain samples the grid (streaming one line per cell, with
// checkpoint marks on the fixed training windows), emits the
// cross-validation folds and the artifact summary, and installs the model
// as the server's serving model.
func runSurrogateTrain(ctx context.Context, spec Spec, env runEnv, s *Server) error {
	t := spec.Surrogate.Train
	if t == nil {
		t = &SurrogateTrainSpec{}
	}
	cells := 0
	m, err := surrogate.Train(ctx, t.config(spec.workers()), func(c surrogate.Cell) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := env.emit(c); err != nil {
			return err
		}
		cells++
		if cells%16 == 0 {
			env.checkpoint(int64(cells))
		}
		return nil
	})
	if err != nil {
		return err
	}
	blob, err := surrogate.Encode(m)
	if err != nil {
		return err
	}
	sum, err := surrogate.Sum(blob)
	if err != nil {
		return err
	}
	for _, f := range m.CV.Folds {
		if err := env.emit(surrogateFoldLine{Kind: "fold", FoldReport: f}); err != nil {
			return err
		}
	}
	if err := env.emit(surrogateTrainSummary{
		Kind:          "summary",
		Cells:         m.Cells(),
		ArtifactBytes: len(blob),
		Checksum:      sum,
		MaxRelErr:     m.CV.MaxRel(),
		Channels:      m.CV.Overall,
	}); err != nil {
		return err
	}
	s.installSurrogate(m)
	s.surMet.Trainings.Inc()
	return nil
}

// runSurrogateQuery answers the batch: the installed model where it is
// trusted and covers the query, the exact engine otherwise. Fallbacks and
// hits are counted both in /metrics and in the closing summary line.
func runSurrogateQuery(ctx context.Context, spec Spec, env runEnv, s *Server) error {
	sp := spec.Surrogate
	model, exact := s.surrogateState()
	var hits, fallbacks int
	for i, q := range sp.Queries {
		if err := ctx.Err(); err != nil {
			return err
		}
		ans, source, err := s.answerSurrogate(model, exact, sp, q)
		if err != nil {
			return err
		}
		if source == "surrogate" {
			hits++
		} else {
			fallbacks++
		}
		if err := env.emit(surrogateAnswerLine{
			Kind: "answer", Index: i, Query: q, Answer: ans, Source: source,
		}); err != nil {
			return err
		}
		if (i+1)%256 == 0 {
			env.checkpoint(int64(i + 1))
		}
	}
	return env.emit(surrogateQuerySummary{
		Kind: "summary", Queries: len(sp.Queries), Hits: hits, Fallbacks: fallbacks,
	})
}

// answerSurrogate resolves one query, instrumenting the decision: forced
// exact, no model installed, model above the error bound, and out-of-hull
// queries all fall back to the exact engine.
func (s *Server) answerSurrogate(model *surrogate.Model, exact *surrogate.Exact, sp *SurrogateSpec, q surrogate.Query) (surrogate.Answer, string, error) {
	start := time.Now()
	s.surMet.Queries.Inc()
	defer func() {
		s.surMet.QueryLatencyUS.Observe(float64(time.Since(start)) / float64(time.Microsecond))
	}()

	switch {
	case sp.Exact:
		s.surMet.FallbackForced.Inc()
	case model == nil:
		s.surMet.FallbackNoModel.Inc()
	case sp.MaxRelErr > 0 && model.CV.MaxRel() > sp.MaxRelErr:
		s.surMet.FallbackErrBound.Inc()
	default:
		ans, err := model.Eval(q)
		if err == nil {
			s.surMet.Hits.Inc()
			return ans, "surrogate", nil
		}
		if !errors.Is(err, surrogate.ErrOutOfHull) {
			return surrogate.Answer{}, "", err
		}
		s.surMet.FallbackOutOfHull.Inc()
	}
	s.surMet.Fallbacks.Inc()
	ans, err := exact.Solve(q)
	return ans, "exact", err
}

// installSurrogate swaps in a newly trained (or boot-loaded) model plus a
// fallback engine matching its exact-engine configuration, so fallback
// answers stay on the same footing the model was trained on.
func (s *Server) installSurrogate(m *surrogate.Model) {
	exact, err := surrogate.NewExact(m.ExactConfig())
	if err != nil {
		// A validated model always carries a valid exact config; keep the
		// previous engine rather than serving without one.
		return
	}
	s.surMu.Lock()
	s.surModel = m
	s.surExact = exact
	s.surMu.Unlock()
}

// surrogateState snapshots the serving model and fallback engine.
func (s *Server) surrogateState() (*surrogate.Model, *surrogate.Exact) {
	s.surMu.RLock()
	defer s.surMu.RUnlock()
	return s.surModel, s.surExact
}
