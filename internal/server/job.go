package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/geometry"
	"repro/internal/obs"
	"repro/internal/surrogate"
	"repro/internal/tournament"
	"repro/internal/trace"
)

// Job types accepted by POST /v1/jobs.
const (
	TypeRoadmap = "roadmap" // internal/scaling year-by-year sweep
	TypeFigure4 = "figure4" // internal/core trace-replay RPM sweep
	TypeDTM     = "dtm"     // internal/dtm closed-loop policy run
	TypeRAID    = "raid"    // internal/raid degraded-mode / recovery run
	TypeFleet   = "fleet"   // internal/fleet datacenter-scale thermal run

	TypeTournament = "tournament" // internal/tournament policy head-to-head
	TypeSurrogate  = "surrogate"  // internal/surrogate train / fast-path query
)

// Status is a job's lifecycle state. Transitions only move forward:
// queued -> running -> {done, failed, cancelled}, or queued -> cancelled.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// terminal reports whether a status is final.
func (s Status) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Spec is the JSON body of POST /v1/jobs: the job type plus exactly one
// matching parameter block. Unknown fields are rejected at decode time, so
// a typo'd parameter fails loudly instead of silently running the default.
type Spec struct {
	Type string `json:"type"`

	// Workers bounds the job's internal sweep fan-out (the -workers knob
	// of the CLIs). 0 means sequential: the server's own worker pool is
	// the concurrency bound, and a job only fans out when asked to.
	Workers int `json:"workers,omitempty"`

	// TimeoutMS shortens the server's per-job deadline for this job. It
	// can never extend it: the server's JobTimeout is an admission-control
	// ceiling, not a default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	Roadmap    *RoadmapSpec    `json:"roadmap,omitempty"`
	Figure4    *Figure4Spec    `json:"figure4,omitempty"`
	DTM        *DTMSpec        `json:"dtm,omitempty"`
	RAID       *RAIDSpec       `json:"raid,omitempty"`
	Fleet      *FleetSpec      `json:"fleet,omitempty"`
	Tournament *TournamentSpec `json:"tournament,omitempty"`
	Surrogate  *SurrogateSpec  `json:"surrogate,omitempty"`
}

// RoadmapSpec parameterizes a roadmap job (internal/scaling.Roadmap).
// Zero values take the paper's defaults: 2002..2012, sizes 2.6/2.1/1.6,
// one platter.
type RoadmapSpec struct {
	FirstYear    int       `json:"first_year,omitempty"`
	LastYear     int       `json:"last_year,omitempty"`
	PlatterSizes []float64 `json:"platter_sizes,omitempty"`
	Platters     int       `json:"platters,omitempty"`
	VCMOff       bool      `json:"vcm_off,omitempty"`
	AmbientDelta float64   `json:"ambient_delta_c,omitempty"`
}

// Figure4Spec parameterizes a trace-replay RPM sweep. Workload is one of
// the paper's five names, or "all" for the full Figure 4 grid.
type Figure4Spec struct {
	Workload string `json:"workload"`

	// Requests scales each workload (0 = the service default, small
	// enough for an interactive response).
	Requests int `json:"requests,omitempty"`

	// RPMSteps overrides the paper's baseline+3x5000 sweep.
	RPMSteps []float64 `json:"rpm_steps,omitempty"`
}

// DTMSpec parameterizes a closed-loop policy run on the 2005 reference
// drive, the configuration cmd/dtm's policy comparison uses.
type DTMSpec struct {
	// Policy is one of "envelope", "watermark", "slack-ramp", "drpm" or
	// "escalation".
	Policy string `json:"policy"`

	Requests int     `json:"requests,omitempty"` // 0 = 30000
	RatePerS float64 `json:"rate_per_s,omitempty"`
	Seed     int64   `json:"seed,omitempty"` // 0 = 11, the comparison seed

	// SampleEvery emits a progress line every N completions (0 = only the
	// final summary). Samples are on the sim clock, so they are as
	// deterministic as the run itself.
	SampleEvery int `json:"sample_every,omitempty"`
}

// RAIDSpec parameterizes a degraded-mode recovery run: one of the paper's
// workload arrays with a member disk failed mid-replay.
type RAIDSpec struct {
	Workload string `json:"workload"`
	Requests int    `json:"requests,omitempty"` // 0 = 2000

	FailDisk        int     `json:"fail_disk"`
	FailAtMS        int64   `json:"fail_at_ms,omitempty"` // 0 = 5000
	Spare           bool    `json:"spare,omitempty"`
	RebuildMBPerSec float64 `json:"rebuild_mb_per_sec,omitempty"`
	SampleEvery     int     `json:"sample_every,omitempty"`
}

// FleetSpec parameterizes a datacenter-scale fleet thermal run
// (internal/fleet.Run): the topology, the room scenario, the workload
// shape, and the placement/migration policy. Results stream one rack
// summary per rack plus a fleet-wide summary line.
type FleetSpec struct {
	Racks           int `json:"racks"`
	ChassisPerRack  int `json:"chassis_per_rack"`
	SlotsPerChassis int `json:"slots_per_chassis"`

	RequestsPerDrive int     `json:"requests_per_drive,omitempty"` // 0 = 40
	Seed             int64   `json:"seed,omitempty"`               // 0 = 1
	HotFraction      float64 `json:"hot_fraction,omitempty"`       // 0 = 0.25

	// Placement is "" or "static" (stream i on drive i) or "coolest"
	// (hottest streams on the coolest design-point slots).
	Placement string `json:"placement,omitempty"`

	// MigrateAtC enables temperature-threshold migration (0 = off);
	// HysteresisC is the re-admit margin below the threshold (0 = 2 C).
	MigrateAtC  float64 `json:"migrate_at_c,omitempty"`
	HysteresisC float64 `json:"hysteresis_c,omitempty"`

	// GenYears are the drive generations assigned round-robin across the
	// fleet's slots (empty = 2002..2005).
	GenYears []int `json:"gen_years,omitempty"`

	AirflowCFM    float64 `json:"airflow_cfm,omitempty"` // 0 = 30
	Recirculation float64 `json:"recirculation,omitempty"`

	CoolingFailure *CoolingFailureSpec `json:"cooling_failure,omitempty"`
}

// CoolingFailureSpec perturbs one rack's (or, with rack -1, the room's)
// inlet air by DeltaC for [at_ms, at_ms+duration_ms) on the sim clock.
type CoolingFailureSpec struct {
	Rack       int     `json:"rack"`
	AtMS       int64   `json:"at_ms,omitempty"`
	DurationMS int64   `json:"duration_ms"`
	DeltaC     float64 `json:"delta_c"`
}

// TournamentSpec parameterizes a policy tournament (internal/tournament):
// every listed policy runs every listed workload under every listed regime
// on identical request streams, and the job streams one "cell" line per
// result plus a closing "summary". Empty lists take the package's full
// bracket; cells are the deterministic checkpoint positions.
type TournamentSpec struct {
	Policies  []string `json:"policies,omitempty"`  // empty = reactive, predictive, slack-ramp
	Workloads []string `json:"workloads,omitempty"` // empty = all five paper workloads
	Regimes   []string `json:"regimes,omitempty"`   // empty = clean, fault

	Requests   int     `json:"requests,omitempty"`     // per cell, 0 = 4000
	Seed       int64   `json:"seed,omitempty"`         // 0 = 11
	LeadTimeMS int64   `json:"lead_time_ms,omitempty"` // predictive horizon, 0 = policy default
	LoadScale  float64 `json:"load_scale,omitempty"`   // arrival-rate multiplier, 0 = 2
}

// config maps the wire spec onto the tournament engine's configuration.
func (t *TournamentSpec) config(workers int, reg *obs.Registry) tournament.Config {
	return tournament.Config{
		Policies:  t.Policies,
		Workloads: t.Workloads,
		Regimes:   t.Regimes,
		Requests:  t.Requests,
		Seed:      t.Seed,
		LeadTime:  time.Duration(t.LeadTimeMS) * time.Millisecond,
		LoadScale: t.LoadScale,
		Workers:   workers,
		Registry:  reg,
	}
}

func (t *TournamentSpec) validate(cfg Config, async bool) error {
	tc := t.config(1, nil)
	if err := tc.Validate(); err != nil {
		return err
	}
	switch {
	case t.Requests < 0 || t.Requests > cfg.MaxRequests:
		return fmt.Errorf("requests %d outside [0,%d]", t.Requests, cfg.MaxRequests)
	case t.LeadTimeMS < 0 || t.LeadTimeMS > 600000:
		return fmt.Errorf("lead_time_ms %d outside [0,600000]", t.LeadTimeMS)
	case t.LoadScale > 100:
		return fmt.Errorf("load_scale %g outside [0,100]", t.LoadScale)
	case len(t.Policies) > 16 || len(t.Workloads) > 16 || len(t.Regimes) > 16:
		return fmt.Errorf("tournament axes capped at 16 entries each")
	}
	// Size is bounded per submission path, like fleet: work is the total
	// simulated request count across the bracket.
	requests := t.Requests
	if requests == 0 {
		requests = 4000
	}
	work := int64(tc.Cells()) * int64(requests)
	if work > cfg.MaxTournamentWork {
		return fmt.Errorf("tournament of %d cell-requests exceeds the %d cap", work, cfg.MaxTournamentWork)
	}
	if !async && work > cfg.MaxSyncTournamentWork {
		return fmt.Errorf("tournament of %d cell-requests exceeds the synchronous cap of %d; submit with ?async=1 and poll the result",
			work, cfg.MaxSyncTournamentWork)
	}
	return nil
}

// SurrogateSpec parameterizes a surrogate job (internal/surrogate). Mode
// "train" samples the exact engine over a grid, fits and cross-validates
// an interpolation model, and installs it as the server's serving model;
// mode "query" answers a batch of roadmap queries — through the installed
// model when possible, transparently falling back to the exact engine for
// out-of-hull queries, for models whose cross-validated error exceeds
// MaxRelErr, or when no model is installed. Every answer line carries its
// "source" so clients can see which path served it.
type SurrogateSpec struct {
	Mode string `json:"mode"` // "train" or "query"

	// Train configures the sampling grid (mode "train"; nil = defaults:
	// 2002..2012, six RPM nodes, one platter 3.5", all five workloads).
	Train *SurrogateTrainSpec `json:"train,omitempty"`

	// Queries are answered in order, one NDJSON "answer" line each
	// (mode "query").
	Queries []surrogate.Query `json:"queries,omitempty"`

	// Exact forces every query down the exact path — the verification
	// switch that makes fallback answers provably byte-identical to
	// direct exact answers.
	Exact bool `json:"exact,omitempty"`

	// MaxRelErr is the error bound: a model whose cross-validated max
	// relative error (any channel) exceeds it is not trusted, and queries
	// fall back to the exact engine (0 = trust any installed model).
	MaxRelErr float64 `json:"max_rel_err,omitempty"`
}

// SurrogateTrainSpec is the wire form of surrogate.TrainConfig. Empty
// axes take the serving defaults.
type SurrogateTrainSpec struct {
	Years     []int                `json:"years,omitempty"`
	RPMs      []float64            `json:"rpms,omitempty"`
	Hardware  []surrogate.Hardware `json:"hardware,omitempty"`
	Workloads []string             `json:"workloads,omitempty"`
	Requests  int                  `json:"requests,omitempty"` // 0 = 2000
	Refine    bool                 `json:"refine,omitempty"`
	Folds     int                  `json:"folds,omitempty"`  // 0 = 5
	Probes    int                  `json:"probes,omitempty"` // 0 = 8
	Seed      int64                `json:"seed,omitempty"`   // 0 = 1
}

// config maps the wire spec onto the training configuration.
func (t *SurrogateTrainSpec) config(workers int) surrogate.TrainConfig {
	cfg := surrogate.TrainConfig{
		Years:     t.Years,
		RPMs:      t.RPMs,
		Hardware:  t.Hardware,
		Workloads: t.Workloads,
		Requests:  t.Requests,
		Refine:    t.Refine,
		Folds:     t.Folds,
		Probes:    t.Probes,
		Seed:      t.Seed,
		Workers:   workers,
	}
	if len(cfg.Years) == 0 {
		for y := 2002; y <= 2012; y++ {
			cfg.Years = append(cfg.Years, y)
		}
	}
	if len(cfg.RPMs) == 0 {
		cfg.RPMs = []float64{7200, 10000, 12000, 15000, 18000, 21000}
	}
	if len(cfg.Hardware) == 0 {
		cfg.Hardware = []surrogate.Hardware{{Platters: 1, FormFactor: geometry.FormFactor35.String()}}
	}
	if len(cfg.Workloads) == 0 {
		for _, w := range trace.Workloads {
			cfg.Workloads = append(cfg.Workloads, w.Name)
		}
	}
	return cfg
}

func (sp *SurrogateSpec) validate(cfg Config, async bool) error {
	switch sp.Mode {
	case "train":
		if len(sp.Queries) > 0 || sp.Exact || sp.MaxRelErr != 0 {
			return fmt.Errorf("surrogate train jobs take only a %q block", "train")
		}
		t := sp.Train
		if t == nil {
			t = &SurrogateTrainSpec{}
		}
		tc := t.config(1)
		if err := tc.Validate(); err != nil {
			return err
		}
		switch {
		case t.Requests < 0 || t.Requests > cfg.MaxRequests:
			return fmt.Errorf("requests %d outside [0,%d]", t.Requests, cfg.MaxRequests)
		case len(tc.Years) > 64 || len(tc.RPMs) > 64:
			return fmt.Errorf("surrogate grid axes capped at 64 nodes each")
		case len(tc.Hardware) > 32 || len(tc.Workloads) > 16:
			return fmt.Errorf("surrogate hardware/workload axes capped at 32/16 entries")
		}
		// Work is the total simulated request count: every latency grid
		// cell plus every cross-validation probe replays a trace.
		requests := t.Requests
		if requests == 0 {
			requests = surrogate.DefaultRequests
		}
		folds, probes := tc.Folds, tc.Probes
		if folds == 0 {
			folds = surrogate.DefaultFolds
		}
		if probes == 0 {
			probes = surrogate.DefaultProbes
		}
		work := int64(tc.LatencyCells()+folds*probes) * int64(requests)
		if work > cfg.MaxSurrogateWork {
			return fmt.Errorf("surrogate training of %d cell-requests exceeds the %d cap", work, cfg.MaxSurrogateWork)
		}
		if !async && work > cfg.MaxSyncSurrogateWork {
			return fmt.Errorf("surrogate training of %d cell-requests exceeds the synchronous cap of %d; submit with ?async=1 and poll the result",
				work, cfg.MaxSyncSurrogateWork)
		}
		return nil
	case "query":
		if sp.Train != nil {
			return fmt.Errorf("surrogate query jobs take no %q block", "train")
		}
		switch {
		case len(sp.Queries) == 0:
			return fmt.Errorf("surrogate query job has no queries")
		case len(sp.Queries) > cfg.MaxSurrogateQueries:
			return fmt.Errorf("%d queries exceeds the %d-query cap", len(sp.Queries), cfg.MaxSurrogateQueries)
		case sp.MaxRelErr < 0 || sp.MaxRelErr > 10:
			return fmt.Errorf("max_rel_err %g outside [0,10]", sp.MaxRelErr)
		}
		for i, q := range sp.Queries {
			if err := q.Validate(); err != nil {
				return fmt.Errorf("query %d: %w", i, err)
			}
		}
		return nil
	case "":
		return fmt.Errorf("surrogate job missing mode (want %q or %q)", "train", "query")
	default:
		return fmt.Errorf("unknown surrogate mode %q", sp.Mode)
	}
}

// dtmPolicies is the accepted DTMSpec.Policy set.
var dtmPolicies = map[string]bool{
	"envelope": true, "watermark": true, "slack-ramp": true,
	"drpm": true, "escalation": true,
}

// validate is the admission-control gate: everything a runner would choke
// on — and everything that would let one request monopolize the host — is
// rejected here with a client-attributable message. async tells the
// size-sensitive job types whether the submission rides the async path;
// the sync path carries tighter fleet-size bounds because its caller
// holds an open connection for the whole run.
func (s Spec) validate(cfg Config, async bool) error {
	blocks := 0
	for _, set := range []bool{s.Roadmap != nil, s.Figure4 != nil, s.DTM != nil, s.RAID != nil, s.Fleet != nil, s.Tournament != nil, s.Surrogate != nil} {
		if set {
			blocks++
		}
	}
	if s.Workers < 0 || s.Workers > maxJobWorkers {
		return fmt.Errorf("workers %d outside [0,%d]", s.Workers, maxJobWorkers)
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms %d is negative", s.TimeoutMS)
	}
	switch s.Type {
	case TypeRoadmap:
		if blocks > 1 || (blocks == 1 && s.Roadmap == nil) {
			return fmt.Errorf("type %q takes only a %q block", s.Type, s.Type)
		}
		return s.Roadmap.validate()
	case TypeFigure4:
		if s.Figure4 == nil || blocks != 1 {
			return fmt.Errorf("type %q needs exactly a %q block", s.Type, s.Type)
		}
		return s.Figure4.validate(cfg)
	case TypeDTM:
		if s.DTM == nil || blocks != 1 {
			return fmt.Errorf("type %q needs exactly a %q block", s.Type, s.Type)
		}
		return s.DTM.validate(cfg)
	case TypeRAID:
		if s.RAID == nil || blocks != 1 {
			return fmt.Errorf("type %q needs exactly a %q block", s.Type, s.Type)
		}
		return s.RAID.validate(cfg)
	case TypeFleet:
		if s.Fleet == nil || blocks != 1 {
			return fmt.Errorf("type %q needs exactly a %q block", s.Type, s.Type)
		}
		return s.Fleet.validate(cfg, async)
	case TypeTournament:
		if blocks > 1 || (blocks == 1 && s.Tournament == nil) {
			return fmt.Errorf("type %q takes only a %q block", s.Type, s.Type)
		}
		t := s.Tournament
		if t == nil {
			t = &TournamentSpec{} // all defaults
		}
		return t.validate(cfg, async)
	case TypeSurrogate:
		if s.Surrogate == nil || blocks != 1 {
			return fmt.Errorf("type %q needs exactly a %q block", s.Type, s.Type)
		}
		return s.Surrogate.validate(cfg, async)
	case "":
		return fmt.Errorf("missing job type")
	default:
		return fmt.Errorf("unknown job type %q", s.Type)
	}
}

func (r *RoadmapSpec) validate() error {
	if r == nil {
		return nil // all defaults
	}
	first, last := r.FirstYear, r.LastYear
	if first == 0 {
		first = 2002
	}
	if last == 0 {
		last = 2012
	}
	switch {
	case first < 1990 || first > 2100:
		return fmt.Errorf("first_year %d outside [1990,2100]", first)
	case last < first:
		return fmt.Errorf("year range [%d,%d] inverted", first, last)
	case last-first > 50:
		return fmt.Errorf("year range [%d,%d] longer than 50 years", first, last)
	case r.Platters < 0 || r.Platters > 4:
		return fmt.Errorf("platters %d outside [1,4]", r.Platters)
	case len(r.PlatterSizes) > 8:
		return fmt.Errorf("%d platter sizes, want at most 8", len(r.PlatterSizes))
	}
	for _, sz := range r.PlatterSizes {
		if sz < 0.8 || sz > 5.25 {
			return fmt.Errorf("platter size %g\" outside [0.8,5.25]", sz)
		}
	}
	return nil
}

// lookupWorkloads resolves a workload name ("all" = the full five) against
// the built-in set.
func lookupWorkloads(name string) ([]trace.Params, error) {
	if name == "all" {
		return trace.Workloads, nil
	}
	w, err := trace.WorkloadByName(name)
	if err != nil {
		return nil, err
	}
	return []trace.Params{w}, nil
}

func (f *Figure4Spec) validate(cfg Config) error {
	if _, err := lookupWorkloads(f.Workload); err != nil {
		return err
	}
	if f.Requests < 0 || f.Requests > cfg.MaxRequests {
		return fmt.Errorf("requests %d outside [0,%d]", f.Requests, cfg.MaxRequests)
	}
	if len(f.RPMSteps) > 8 {
		return fmt.Errorf("%d rpm steps, want at most 8", len(f.RPMSteps))
	}
	for _, rpm := range f.RPMSteps {
		if rpm < 1000 || rpm > 200000 {
			return fmt.Errorf("rpm step %g outside [1000,200000]", rpm)
		}
	}
	return nil
}

func (d *DTMSpec) validate(cfg Config) error {
	if !dtmPolicies[d.Policy] {
		return fmt.Errorf("unknown dtm policy %q", d.Policy)
	}
	switch {
	case d.Requests < 0 || d.Requests > cfg.MaxRequests:
		return fmt.Errorf("requests %d outside [0,%d]", d.Requests, cfg.MaxRequests)
	case d.RatePerS < 0 || d.RatePerS > 1e6:
		return fmt.Errorf("rate_per_s %g outside [0,1e6]", d.RatePerS)
	case d.SampleEvery < 0:
		return fmt.Errorf("sample_every %d is negative", d.SampleEvery)
	}
	return nil
}

func (r *RAIDSpec) validate(cfg Config) error {
	ws, err := lookupWorkloads(r.Workload)
	if err != nil {
		return err
	}
	if r.Workload == "all" {
		return fmt.Errorf("raid jobs run one workload, not %q", r.Workload)
	}
	switch {
	case r.Requests < 0 || r.Requests > cfg.MaxRequests:
		return fmt.Errorf("requests %d outside [0,%d]", r.Requests, cfg.MaxRequests)
	case r.FailDisk < 0 || r.FailDisk >= ws[0].Disks:
		return fmt.Errorf("fail_disk %d outside [0,%d) for workload %s", r.FailDisk, ws[0].Disks, ws[0].Name)
	case r.FailAtMS < 0:
		return fmt.Errorf("fail_at_ms %d is negative", r.FailAtMS)
	case r.RebuildMBPerSec < 0 || r.RebuildMBPerSec > 10000:
		return fmt.Errorf("rebuild_mb_per_sec %g outside [0,10000]", r.RebuildMBPerSec)
	case r.SampleEvery < 0:
		return fmt.Errorf("sample_every %d is negative", r.SampleEvery)
	}
	return nil
}

// fleetPlacements is the accepted FleetSpec.Placement set ("" = static).
var fleetPlacements = map[string]bool{"": true, "static": true, "coolest": true}

// maxFleetFailureMS bounds the cooling-failure window: the post-run drain
// advances every affected drive's thermal transient to the window's end,
// so an unbounded duration is an unbounded amount of sim work.
const maxFleetFailureMS = 600000 // 10 sim-minutes

func (f *FleetSpec) validate(cfg Config, async bool) error {
	switch {
	case f.Racks < 1 || f.Racks > 10000:
		return fmt.Errorf("racks %d outside [1,10000]", f.Racks)
	case f.ChassisPerRack < 1 || f.ChassisPerRack > 1000:
		return fmt.Errorf("chassis_per_rack %d outside [1,1000]", f.ChassisPerRack)
	case f.SlotsPerChassis < 1 || f.SlotsPerChassis > 64:
		return fmt.Errorf("slots_per_chassis %d outside [1,64]", f.SlotsPerChassis)
	case f.RequestsPerDrive < 0 || f.RequestsPerDrive > 10000:
		return fmt.Errorf("requests_per_drive %d outside [0,10000]", f.RequestsPerDrive)
	case f.HotFraction < 0 || f.HotFraction > 1:
		return fmt.Errorf("hot_fraction %g outside [0,1]", f.HotFraction)
	case !fleetPlacements[f.Placement]:
		return fmt.Errorf("unknown placement %q", f.Placement)
	case f.MigrateAtC < 0 || f.MigrateAtC > 100:
		return fmt.Errorf("migrate_at_c %g outside [0,100]", f.MigrateAtC)
	case f.HysteresisC < 0 || f.HysteresisC > 50:
		return fmt.Errorf("hysteresis_c %g outside [0,50]", f.HysteresisC)
	case f.AirflowCFM < 0 || f.AirflowCFM > 10000:
		return fmt.Errorf("airflow_cfm %g outside [0,10000]", f.AirflowCFM)
	case f.Recirculation < 0 || f.Recirculation >= 1:
		return fmt.Errorf("recirculation %g outside [0,1)", f.Recirculation)
	case len(f.GenYears) > 16:
		return fmt.Errorf("%d generation years, want at most 16", len(f.GenYears))
	}
	for _, y := range f.GenYears {
		if y < 1990 || y > 2100 {
			return fmt.Errorf("generation year %d outside [1990,2100]", y)
		}
	}
	if cf := f.CoolingFailure; cf != nil {
		switch {
		case cf.Rack < -1 || cf.Rack >= f.Racks:
			return fmt.Errorf("cooling_failure rack %d outside [-1,%d)", cf.Rack, f.Racks)
		case cf.AtMS < 0 || cf.DurationMS < 0:
			return fmt.Errorf("cooling_failure window [%d,+%d] not in sim time", cf.AtMS, cf.DurationMS)
		case cf.AtMS+cf.DurationMS > maxFleetFailureMS:
			return fmt.Errorf("cooling_failure window ends at %dms, cap %dms", cf.AtMS+cf.DurationMS, maxFleetFailureMS)
		case cf.DeltaC < 0 || cf.DeltaC > 50:
			return fmt.Errorf("cooling_failure delta_c %g outside [0,50]", cf.DeltaC)
		}
	}
	// Size is bounded per submission path: a million-drive spec is only
	// admissible as an async job — the sync path would pin one HTTP
	// connection and one pool worker to a run that outlives any client.
	drives := f.Racks * f.ChassisPerRack * f.SlotsPerChassis
	if drives > cfg.MaxFleetDrives {
		return fmt.Errorf("fleet of %d drives exceeds the %d-drive cap", drives, cfg.MaxFleetDrives)
	}
	if !async && drives > cfg.MaxSyncFleetDrives {
		return fmt.Errorf("fleet of %d drives exceeds the synchronous cap of %d; submit with ?async=1 and poll the result",
			drives, cfg.MaxSyncFleetDrives)
	}
	return nil
}

// workers resolves the job's internal fan-out (default sequential).
func (s Spec) workers() int {
	if s.Workers <= 0 {
		return 1
	}
	return s.Workers
}

// Info is a job's externally-visible state, the body of GET /v1/jobs/{id}.
// Wall-clock timestamps live here, never in result bodies — result bytes
// must depend only on the spec.
type Info struct {
	ID          string     `json:"id"`
	Type        string     `json:"type"`
	Status      Status     `json:"status"`
	Error       string     `json:"error,omitempty"`
	CreatedAt   time.Time  `json:"created_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	ResultLines int        `json:"result_lines"`
	ResultBytes int64      `json:"result_bytes"`
}

// job is one tracked submission: the spec, the lifecycle state machine,
// and the buffered result stream.
type job struct {
	id      string
	spec    Spec
	key     string // idempotency key, "" when the client sent none
	created time.Time
	buf     *resultBuffer

	mu       sync.Mutex
	status   Status
	err      string
	started  time.Time
	finished time.Time
	cancel   func() // set while running; cancels the job's context

	// Journaling state (all guarded by mu). track mirrors "the server has
	// a journal": emitted lines are copied into pending until a checkpoint
	// or completion makes them durable. A job replayed mid-run carries
	// skip = its durable line count: the deterministic re-run swallows (and
	// byte-verifies) that prefix instead of double-emitting it.
	track     bool
	pending   []string // emitted, not yet journaled (newline stripped)
	journaled int      // durable result lines (a prefix of buf)
	skip      int      // resume: lines left to verify-skip
	verifyIdx int      // next buffer index to verify against

	// ckptMu serializes whole checkpoints (take pending -> append chunk ->
	// confirm) so a runner checkpoint and a cancel-path flush can never
	// interleave their chunk records out of buffer order.
	ckptMu sync.Mutex
}

// errorLine is the in-band terminal record appended when a job fails or is
// cancelled, so a client already consuming the 200 stream still learns the
// outcome. Successful jobs never emit one, keeping their bodies spec-pure.
type errorLine struct {
	Kind  string `json:"kind"` // "error"
	Error string `json:"error"`
}

// emit encodes one result line into the job's buffer and, when the server
// journals, into the pending set the next checkpoint flushes. On a resumed
// run the first skip calls are swallowed — the lines are already in the
// buffer from replay — but each recomputed line is verified byte-for-byte
// against the journaled one, so a broken determinism contract fails the
// job loudly instead of serving a silently-spliced result.
func (j *job) emit(v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	if j.skip > 0 {
		idx := j.verifyIdx
		j.verifyIdx++
		j.skip--
		j.mu.Unlock()
		if prev := j.buf.line(idx); !bytes.Equal(prev, line) {
			return fmt.Errorf("resume divergence at line %d: recomputed result differs from journaled bytes", idx)
		}
		return nil
	}
	track := j.track
	j.mu.Unlock()

	if err := j.buf.append(line); err != nil {
		return err
	}
	if track {
		j.mu.Lock()
		j.pending = append(j.pending, string(line[:len(line)-1]))
		j.mu.Unlock()
	}
	return nil
}

// takePending claims the emitted-but-not-durable lines for a checkpoint.
func (j *job) takePending() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	p := j.pending
	j.pending = nil
	return p
}

// restorePending puts lines back after a failed journal append, ahead of
// anything emitted since, preserving result order for the retry.
func (j *job) restorePending(lines []string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.pending = append(lines, j.pending...)
}

// confirmJournaled advances the durable-prefix counter after a successful
// chunk append.
func (j *job) confirmJournaled(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.journaled += n
}

// markRunning moves queued -> running; false means the job was cancelled
// while queued and must not run.
func (j *job) markRunning(cancel func()) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.cancel = cancel
	return true
}

// finish records the terminal state, appends the in-band error line for
// unsuccessful outcomes, and closes the result buffer. It is a no-op if
// the job is already terminal. With from != "", the transition only
// happens from that exact state — the atomic guard requestCancel needs so
// it can never cancel-mark a job a worker just started.
func (j *job) finish(from, st Status, err error) bool {
	j.mu.Lock()
	if j.status.terminal() || (from != "" && j.status != from) {
		j.mu.Unlock()
		return false
	}
	j.status = st
	j.finished = time.Now()
	if err != nil {
		j.err = err.Error()
	}
	j.mu.Unlock()
	if st == StatusFailed || st == StatusCancelled {
		msg := j.err
		if msg == "" {
			msg = string(st)
		}
		_ = j.emit(errorLine{Kind: "error", Error: msg})
	}
	j.buf.close()
	return true
}

// requestCancel cancels the job: a queued job terminates immediately; a
// running one has its context cancelled and terminates at the runner's
// next admission check. It reports whether this call itself finished the
// job (queued -> cancelled), so the caller can record the terminal metric
// exactly once — a running job's metric is recorded by the worker instead.
func (j *job) requestCancel() bool {
	if j.finish(StatusQueued, StatusCancelled, fmt.Errorf("job cancelled")) {
		return true
	}
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return false
}

// snapshot returns the current status and error string.
func (j *job) snapshot() (Status, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.err
}

// info renders the job for the status endpoints.
func (j *job) info() Info {
	lines, bytes := j.buf.stats()
	j.mu.Lock()
	defer j.mu.Unlock()
	in := Info{
		ID:          j.id,
		Type:        j.spec.Type,
		Status:      j.status,
		Error:       j.err,
		CreatedAt:   j.created,
		ResultLines: lines,
		ResultBytes: bytes,
	}
	if !j.started.IsZero() {
		t := j.started
		in.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		in.FinishedAt = &t
	}
	return in
}
