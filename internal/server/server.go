// Package server turns the simulator into a long-running service: HTTP/JSON
// job submission for roadmap sweeps, Figure-4 trace replays, DTM policy runs
// and RAID recovery scenarios, executed on a bounded worker pool with
// admission control, NDJSON result streaming, live metrics and graceful
// drain. Everything is stdlib net/http; the simulation work is delegated to
// the internal packages the CLIs already use, through their ctx-aware
// streaming entry points, so a seeded job's result bytes depend only on its
// spec — never on worker count, timing, or who else is on the queue.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/fleet"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/surrogate"
)

// maxJobWorkers caps a single job's internal fan-out.
const maxJobWorkers = 32

// Config sizes the service. Zero values take the defaults noted per field.
type Config struct {
	Addr string // listen address, default 127.0.0.1:8080; ":0" picks a port

	Workers    int // concurrent jobs, default 2
	QueueDepth int // queued (not yet running) jobs before 429, default 16

	JobTimeout   time.Duration // per-job ceiling, default 2m
	DrainTimeout time.Duration // graceful-drain budget on Shutdown, default 30s
	RetryAfter   time.Duration // Retry-After hint on 429/503, default 1s

	MaxRequests    int   // per-job trace-length cap, default 200000
	MaxResultBytes int64 // per-job buffered result cap, default 16 MiB
	MaxJobs        int   // retained job records before oldest-terminal eviction, default 256

	// MaxFleetDrives caps a fleet job's total drive count regardless of
	// submission path (default 1,000,000). MaxSyncFleetDrives is the
	// tighter bound for synchronous submissions, which hold one HTTP
	// connection and one pool worker for the whole run (default 20,000);
	// larger fleets must go through ?async=1.
	MaxFleetDrives     int
	MaxSyncFleetDrives int

	// MaxTournamentWork caps a tournament job's total simulated requests
	// (cells × per-cell requests) regardless of submission path (default
	// 2,000,000). MaxSyncTournamentWork is the tighter synchronous bound
	// (default 100,000); larger brackets must go through ?async=1.
	MaxTournamentWork     int64
	MaxSyncTournamentWork int64

	// MaxSurrogateWork caps a surrogate training job's total simulated
	// requests (grid cells plus cross-validation probes, times per-replay
	// requests) regardless of submission path (default 10,000,000).
	// MaxSyncSurrogateWork is the tighter synchronous bound (default
	// 1,000,000). MaxSurrogateQueries caps one query job's batch size
	// (default 4096).
	MaxSurrogateWork     int64
	MaxSyncSurrogateWork int64
	MaxSurrogateQueries  int

	// SurrogateModel preloads a trained surrogate model at boot (the
	// daemon's -surrogate-model flag); nil starts without one, and every
	// query falls back to the exact engine until a train job installs one.
	SurrogateModel *surrogate.Model

	// JournalDir enables crash safety: every admission, checkpoint and
	// completion is fsync-journaled there, and startup replays the log —
	// completed jobs serve their buffered results, interrupted ones resume
	// from their last checkpoint. Empty runs in-memory only.
	JournalDir      string
	CheckpointEvery int           // completions between checkpoint marks in long runs, default 2000
	CompactEvery    time.Duration // journal compaction period, default 1m

	// Chaos injects seeded faults (worker panics, journal write errors,
	// stalls) for the robustness suite. nil in production.
	Chaos *chaos.Chaos

	// Logf receives operational messages (journal recovery, compaction).
	// nil uses fmt.Printf, matching the daemon's existing logging.
	Logf func(format string, args ...any)

	Registry *obs.Registry // metrics destination; nil gets a private registry
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:8080"
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxRequests <= 0 {
		c.MaxRequests = 200000
	}
	if c.MaxResultBytes <= 0 {
		c.MaxResultBytes = 16 << 20
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 256
	}
	if c.MaxFleetDrives <= 0 {
		c.MaxFleetDrives = 1000000
	}
	if c.MaxSyncFleetDrives <= 0 {
		c.MaxSyncFleetDrives = 20000
	}
	if c.MaxTournamentWork <= 0 {
		c.MaxTournamentWork = 2000000
	}
	if c.MaxSyncTournamentWork <= 0 {
		c.MaxSyncTournamentWork = 100000
	}
	if c.MaxSurrogateWork <= 0 {
		c.MaxSurrogateWork = 10000000
	}
	if c.MaxSyncSurrogateWork <= 0 {
		c.MaxSyncSurrogateWork = 1000000
	}
	if c.MaxSurrogateQueries <= 0 {
		c.MaxSurrogateQueries = 4096
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 2000
	}
	if c.CompactEvery <= 0 {
		c.CompactEvery = time.Minute
	}
	if c.Logf == nil {
		c.Logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// lifeState is the server's lifecycle: journal replay in progress, serving,
// or draining for shutdown. /readyz exposes it so orchestrators can tell
// boot from shutdown.
type lifeState int

const (
	lifeReplaying lifeState = iota
	lifeReady
	lifeDraining
)

func (l lifeState) String() string {
	switch l {
	case lifeReplaying:
		return "replaying"
	case lifeDraining:
		return "draining"
	default:
		return "ready"
	}
}

// Server is the simulation service: a job registry, a bounded queue feeding
// a fixed worker pool, and the HTTP surface in handlers.go.
type Server struct {
	cfg      Config
	reg      *obs.Registry
	met      *metrics
	fleetMet *fleet.Metrics
	surMet   *surrogate.Metrics
	mux      *http.ServeMux

	// surMu guards the installed surrogate serving model and its matching
	// exact-fallback engine. With no model installed the engine runs at
	// the package defaults, so fallback answers are well-defined from
	// boot.
	surMu    sync.RWMutex
	surModel *surrogate.Model
	surExact *surrogate.Exact

	// queueMu guards queue sends against close(queue): enqueue and
	// beginDrain take it, so a send can never race the close. It also
	// guards the lifecycle state and the replay backlog.
	queueMu sync.Mutex
	queue   chan *job
	state   lifeState

	// backlog holds replayed jobs that did not fit the bounded queue at
	// startup. They are acknowledged, journaled work and must not be failed
	// for a capacity accident: workers admit them as slots free up, and
	// external submissions yield (429) until the backlog is empty.
	backlog []*job

	jobsMu sync.Mutex
	jobs   map[string]*job
	order  []string          // insertion order, for listing and eviction
	keys   map[string]string // idempotency key -> job id
	nextID int

	// jrnl is the durable job log (nil without -journal). crashed is the
	// test hook that simulates a SIGKILL: once set, nothing more is
	// journaled, so the file holds exactly what was durable at the "crash".
	jrnl    *journal.Journal
	crashed atomic.Bool

	// runCtx is the ancestor of every job context; runCancel hard-stops
	// in-flight jobs when the drain deadline passes.
	runCtx    context.Context
	runCancel context.CancelFunc
	workerWG  sync.WaitGroup

	httpSrv  *http.Server
	listener net.Listener
}

// New builds a Server, replaying the journal when one is configured;
// Start or Run actually serves.
func New(cfg Config) (*Server, error) {
	s := newServer(cfg)
	if s.cfg.JournalDir != "" {
		if err := s.openJournal(); err != nil {
			return nil, err
		}
	}
	s.startWorkers()
	return s, nil
}

// newServer builds everything but the worker pool and journal. Tests use
// it directly so the queue fills deterministically with nothing draining
// it; with a JournalDir configured the server starts in the replaying
// state and openJournal flips it to ready.
func newServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Registry,
		met:      newMetrics(cfg.Registry),
		fleetMet: fleet.NewMetrics(cfg.Registry),
		surMet:   surrogate.NewMetrics(cfg.Registry),
		queue:    make(chan *job, cfg.QueueDepth),
		jobs:     make(map[string]*job),
		keys:     make(map[string]string),
	}
	if cfg.SurrogateModel != nil {
		s.installSurrogate(cfg.SurrogateModel)
	} else {
		// The zero ExactConfig is always valid, so the error is impossible.
		s.surExact, _ = surrogate.NewExact(surrogate.ExactConfig{})
	}
	if cfg.JournalDir == "" {
		s.state = lifeReady
	}
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	s.mux = s.routes()
	s.httpSrv = &http.Server{Handler: s.mux}
	return s
}

func (s *Server) logf(format string, args ...any) { s.cfg.Logf(format, args...) }

// lifecycle reports the current state.
func (s *Server) lifecycle() lifeState {
	s.queueMu.Lock()
	defer s.queueMu.Unlock()
	return s.state
}

// setState transitions the lifecycle; draining is terminal.
func (s *Server) setState(l lifeState) {
	s.queueMu.Lock()
	defer s.queueMu.Unlock()
	if s.state != lifeDraining {
		s.state = l
	}
}

func (s *Server) startWorkers() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
}

// Handler exposes the routed mux, mainly for httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds the configured address and serves in the background. After it
// returns, Addr reports the bound address (useful with ":0").
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.listener = ln
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// Serve only fails this way if the listener breaks under us;
			// jobs already accepted still drain via Shutdown.
			fmt.Printf("simd: serve error: %v\n", err)
		}
	}()
	return nil
}

// Addr returns the bound listen address after Start.
func (s *Server) Addr() string {
	if s.listener == nil {
		return s.cfg.Addr
	}
	return s.listener.Addr().String()
}

// Run serves until ctx is done, then drains gracefully.
func (s *Server) Run(ctx context.Context) error {
	if err := s.Start(); err != nil {
		return err
	}
	<-ctx.Done()
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return s.Shutdown(drainCtx)
}

// Shutdown drains the server: new submissions get 503, queued and running
// jobs get until ctx expires to finish, then are cancelled. The HTTP
// listener closes last so status endpoints and /metrics answer throughout
// the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.beginDrain()

	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline passed: hard-cancel in-flight jobs and wait for the
		// workers to observe it. The runners check their context at every
		// request admission, so this is prompt.
		s.runCancel()
		<-done
	}
	s.runCancel()

	httpCtx := ctx
	if ctx.Err() != nil {
		var cancel context.CancelFunc
		httpCtx, cancel = context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
	}
	err := s.httpSrv.Shutdown(httpCtx)
	if s.jrnl != nil {
		if jerr := s.jrnl.Close(); err == nil {
			err = jerr
		}
	}
	return err
}

// Crash simulates a SIGKILL for the robustness tests: journaling stops
// dead (nothing after the last durable record lands), in-flight jobs are
// hard-cancelled, and the listener closes without any drain courtesy. The
// journal directory afterwards holds exactly what a kill -9 at that
// instant would have left.
func (s *Server) Crash() {
	s.crashed.Store(true)
	s.beginDrain()
	s.runCancel()
	s.workerWG.Wait()
	if s.jrnl != nil {
		s.jrnl.Close()
	}
	s.httpSrv.Close()
}

// beginDrain flips the server to draining and closes the queue so workers
// exit once it is empty. Queued-but-never-run jobs are finished by the
// worker loop (or by Shutdown's cancel path); backlog jobs that never got
// a queue slot are cancelled here — still journaled, so a restart with a
// fresh queue re-runs them from their checkpoints.
func (s *Server) beginDrain() {
	s.queueMu.Lock()
	if s.state == lifeDraining {
		s.queueMu.Unlock()
		return
	}
	s.state = lifeDraining
	backlog := s.backlog
	s.backlog = nil
	close(s.queue)
	s.queueMu.Unlock()

	for _, j := range backlog {
		if j.finish(StatusQueued, StatusCancelled, errDraining) {
			s.met.jobFinished(StatusCancelled)
			s.journalFinish(j)
		}
	}
}

// enqueue admits a job or reports why not: errDraining during shutdown,
// errReplaying while the journal replay still owns the queue, errQueueFull
// when the bounded queue is at capacity.
var (
	errDraining  = errors.New("server is draining")
	errReplaying = errors.New("journal replay in progress")
	errQueueFull = errors.New("job queue is full")
)

func (s *Server) enqueue(j *job) error {
	s.queueMu.Lock()
	defer s.queueMu.Unlock()
	switch s.state {
	case lifeDraining:
		return errDraining
	case lifeReplaying:
		return errReplaying
	}
	if len(s.backlog) > 0 {
		// Replayed (already-acknowledged) jobs own every freed slot until
		// the backlog drains; new work is told to retry.
		return errQueueFull
	}
	select {
	case s.queue <- j:
		s.met.queueDelta(1)
		return nil
	default:
		return errQueueFull
	}
}

// admitBacklog moves replayed jobs from the backlog into the queue while
// slots are free. Workers call it each time they take a job (freeing a
// slot); enqueue keeps external submissions out until the backlog is empty,
// so the backlog always makes progress.
func (s *Server) admitBacklog() {
	s.queueMu.Lock()
	defer s.queueMu.Unlock()
	if s.state == lifeDraining {
		return // queue is closed; beginDrain already settled the backlog
	}
	for len(s.backlog) > 0 {
		select {
		case s.queue <- s.backlog[0]:
			s.met.queueDelta(1)
			s.backlog[0] = nil
			s.backlog = s.backlog[1:]
		default:
			return
		}
	}
}

// register tracks a new job record, evicting the oldest terminal record if
// the registry is full. With a non-empty idempotency key, a concurrent or
// earlier submission under the same key wins: register returns that job
// with existing=true and records nothing new — the check and the insert
// share one critical section so two racing same-key submissions can never
// both run.
func (s *Server) register(spec Spec, key string) (j *job, existing bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	if key != "" {
		if id, ok := s.keys[key]; ok {
			return s.jobs[id], true
		}
	}
	s.nextID++
	j = &job{
		id:      fmt.Sprintf("job-%d", s.nextID),
		spec:    spec,
		key:     key,
		created: time.Now(),
		status:  StatusQueued,
		buf:     newResultBuffer(s.cfg.MaxResultBytes),
		track:   s.jrnl != nil,
	}
	if len(s.order) >= s.cfg.MaxJobs {
		for i, id := range s.order {
			if st, _ := s.jobs[id].snapshot(); st.terminal() {
				if k := s.jobs[id].key; k != "" {
					delete(s.keys, k)
				}
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if key != "" {
		s.keys[key] = j.id
	}
	return j, false
}

// unregister removes a job that never made it past admission (journal
// write failure), so a retry under the same idempotency key gets a clean
// slate instead of the dead record.
func (s *Server) unregister(j *job) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	if j.key != "" {
		delete(s.keys, j.key)
	}
	delete(s.jobs, j.id)
	for i, id := range s.order {
		if id == j.id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// rejectUnjournaled backs out a job whose admission record could not be
// made durable. register published the key→job binding before the journal
// append ran, so another same-key submission may already be streaming this
// job: unregister first (a fresh retry gets a clean slate, not the dead
// record), then finish the job as failed — which emits the in-band error
// line and closes the result buffer, so any attacher unblocks with the
// failure instead of waiting forever on a job that will never be enqueued.
func (s *Server) rejectUnjournaled(j *job, cause error) {
	s.unregister(j)
	j.finish(StatusQueued, StatusFailed, fmt.Errorf("journal unavailable: %v", cause))
}

func (s *Server) lookup(id string) (*job, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) list() []Info {
	s.jobsMu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.jobsMu.Unlock()
	infos := make([]Info, len(jobs))
	for i, j := range jobs {
		infos[i] = j.info()
	}
	return infos
}

// worker drains the queue until beginDrain closes it. Each take frees a
// queue slot, so it is also the moment a replay-backlog job can be
// admitted.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for j := range s.queue {
		s.met.queueDelta(-1)
		s.admitBacklog()
		s.runJob(j)
	}
}

// runJob executes one job under its deadline and records the outcome.
func (s *Server) runJob(j *job) {
	timeout := s.cfg.JobTimeout
	if ms := j.spec.TimeoutMS; ms > 0 {
		if d := time.Duration(ms) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(s.runCtx, timeout)
	defer cancel()
	if !j.markRunning(cancel) {
		// Cancelled while queued; requestCancel already finished it.
		return
	}
	s.journalState(j, StatusRunning, "")
	s.met.inflightDelta(1)
	err := s.dispatch(ctx, j)
	s.met.inflightDelta(-1)

	var st Status
	switch {
	case err == nil:
		st = StatusDone
	case errors.Is(err, context.Canceled):
		st = StatusCancelled
		err = errors.New("job cancelled")
	case errors.Is(err, context.DeadlineExceeded):
		st = StatusFailed
		err = fmt.Errorf("job exceeded deadline %v", timeout)
	default:
		st = StatusFailed
	}
	j.finish(StatusRunning, st, err)
	s.journalFinish(j)
	s.met.jobFinished(st)
}

// dispatch routes a job to its runner. The emit closure funnels every
// result line through the job's buffer; a full buffer fails the job. A
// panicking runner is contained here: the job fails with the panic message
// in its result and the worker pool keeps serving.
func (s *Server) dispatch(ctx context.Context, j *job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job panicked: %v", r)
			s.met.panics.Inc()
		}
	}()
	if s.cfg.Chaos.Fire("job.panic") {
		panic("chaos: injected worker panic")
	}
	s.cfg.Chaos.Stall(ctx, "job.stall", s.cfg.JobTimeout)

	env := runEnv{
		emit:            j.emit,
		ckpt:            s.checkpointer(j),
		checkpointEvery: s.cfg.CheckpointEvery,
	}
	switch j.spec.Type {
	case TypeRoadmap:
		return runRoadmap(ctx, j.spec, env)
	case TypeFigure4:
		return runFigure4(ctx, j.spec, env)
	case TypeDTM:
		return runDTM(ctx, j.spec, env)
	case TypeRAID:
		return runRAID(ctx, j.spec, env)
	case TypeFleet:
		return runFleet(ctx, j.spec, env, s.fleetMet)
	case TypeTournament:
		return runTournament(ctx, j.spec, env, s.reg)
	case TypeSurrogate:
		return runSurrogate(ctx, j.spec, env, s)
	default:
		return fmt.Errorf("unknown job type %q", j.spec.Type)
	}
}
