package server

import (
	"context"
	"fmt"
	"time"

	"repro/internal/disksim"
	"repro/internal/raid"
	"repro/internal/reliability"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

const (
	defaultRAIDRequests = 2000
	defaultRAIDFailAtMS = 5000
)

// raidSampleLine is an in-flight progress line, kind "sample", split into
// the healthy/degraded service populations.
type raidSampleLine struct {
	Kind          string  `json:"kind"`
	Completed     int     `json:"completed"`
	SimMillis     float64 `json:"sim_ms"`
	Degraded      int     `json:"degraded"`
	HealthyMeanMS float64 `json:"healthy_mean_ms"`
	DegradedMean  float64 `json:"degraded_mean_ms"`
}

// raidEventLine is one recovery-engine fault event, kind "event".
type raidEventLine struct {
	Kind      string  `json:"kind"`
	Event     string  `json:"event"`
	Disk      int     `json:"disk"`
	SimMillis float64 `json:"sim_ms"`
}

// raidReportLine is the terminal recovery report, kind "report".
type raidReportLine struct {
	Kind     string `json:"kind"`
	Workload string `json:"workload"`
	Level    string `json:"level"`
	Disks    int    `json:"disks"`
	FailDisk int    `json:"fail_disk"`

	Served          int     `json:"served"`
	Total           int     `json:"total"`
	Degraded        int     `json:"degraded"`
	Lost            int     `json:"lost,omitempty"`
	Reconstructions int     `json:"reconstructions"`
	ExposedWrites   int     `json:"exposed_writes"`
	HealthyMeanMS   float64 `json:"healthy_mean_ms"`
	DegradedMeanMS  float64 `json:"degraded_mean_ms"`

	RebuildWindowMS float64 `json:"rebuild_window_ms,omitempty"`
	RebuildRisk     float64 `json:"rebuild_risk,omitempty"`
	MTTDLHours      float64 `json:"mttdl_hours,omitempty"`
}

// runRAID replays one workload with a member disk failed mid-run through
// the recovery engine, streaming fault events and the final report.
func runRAID(ctx context.Context, spec Spec, env runEnv) error {
	r := spec.RAID
	w, err := trace.WorkloadByName(r.Workload)
	if err != nil {
		return err
	}
	if r.Requests > 0 {
		w = w.WithRequests(r.Requests)
	} else {
		w = w.WithRequests(defaultRAIDRequests)
	}
	failAt := time.Duration(r.FailAtMS) * time.Millisecond
	if r.FailAtMS == 0 {
		failAt = defaultRAIDFailAtMS * time.Millisecond
	}

	vol, err := w.BuildVolume(w.BaselineRPM)
	if err != nil {
		return err
	}
	if r.FailDisk >= len(vol.Disks()) {
		return fmt.Errorf("workload %s has %d disks, cannot fail disk %d",
			w.Name, len(vol.Disks()), r.FailDisk)
	}
	vol.Disks()[r.FailDisk].SetFaults(disksim.FailAfter{T: failAt})
	src, err := w.Stream(vol.Capacity())
	if err != nil {
		return err
	}
	total := src.Remaining()
	var spares []*disksim.Disk
	if r.Spare {
		layout, err := w.MemberDiskLayout()
		if err != nil {
			return err
		}
		sp, err := disksim.New(disksim.Config{Layout: layout, RPM: w.BaselineRPM})
		if err != nil {
			return err
		}
		spares = append(spares, sp)
	}
	sess, err := raid.NewRecoverySession(vol, raid.RecoveryConfig{
		Reliability:     reliability.Default(),
		RebuildMBPerSec: r.RebuildMBPerSec,
	}, spares...)
	if err != nil {
		return err
	}

	var (
		healthy, degraded stats.Running
		count             int
		emitErr           error
	)
	sink := sim.SinkFunc[raid.Completion](func(c raid.Completion) {
		if c.Degraded {
			degraded.Add(c.Response())
		} else {
			healthy.Add(c.Response())
		}
		count++
		if emitErr == nil && r.SampleEvery > 0 && count%r.SampleEvery == 0 {
			emitErr = env.emit(raidSampleLine{
				Kind:          "sample",
				Completed:     count,
				SimMillis:     durMS(c.Finish),
				Degraded:      int(degraded.N()),
				HealthyMeanMS: healthy.Mean(),
				DegradedMean:  degraded.Mean(),
			})
		}
		if env.checkpointDue(count) {
			env.checkpoint(int64(count))
		}
	})
	if err := sess.RunStreamCtx(ctx, sim.NewEngine(), src, sink); err != nil {
		return err
	}
	if emitErr != nil {
		return emitErr
	}
	rep := sess.Report()
	for _, e := range rep.Events {
		line := raidEventLine{
			Kind:      "event",
			Event:     fmt.Sprint(e.Kind),
			Disk:      e.Disk,
			SimMillis: durMS(e.Time),
		}
		if err := env.emit(line); err != nil {
			return err
		}
	}
	return env.emit(raidReportLine{
		Kind:            "report",
		Workload:        w.Name,
		Level:           fmt.Sprint(vol.Level()),
		Disks:           len(vol.Disks()),
		FailDisk:        r.FailDisk,
		Served:          int(healthy.N() + degraded.N()),
		Total:           total,
		Degraded:        rep.Degraded,
		Lost:            rep.LostRequests,
		Reconstructions: rep.Reconstructions,
		ExposedWrites:   rep.ExposedWrites,
		HealthyMeanMS:   healthy.Mean(),
		DegradedMeanMS:  degraded.Mean(),
		RebuildWindowMS: durMS(rep.RebuildWindow),
		RebuildRisk:     rep.RebuildRisk,
		MTTDLHours:      rep.MTTDL.Hours(),
	})
}
