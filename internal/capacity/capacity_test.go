package capacity

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/geometry"
	"repro/internal/units"
)

// cheetah153 is the Seagate Cheetah 15K.3 from the paper's Table 1:
// 533 KBPI, 64 KTPI, 2.6" platters, 4 platters, 30 zones.
func cheetah153(t *testing.T) *Layout {
	t.Helper()
	l, err := New(Config{
		Geometry: geometry.Drive{PlatterDiameter: 2.6, Platters: 4, FormFactor: geometry.FormFactor35},
		BPI:      533000,
		TPI:      64000,
		Zones:    30,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return l
}

func TestCheetah153Capacity(t *testing.T) {
	l := cheetah153(t)
	// Paper's model capacity: 74.8 GB. Accept 2%.
	got := l.DeratedCapacity().GB()
	if math.Abs(got-74.8)/74.8 > 0.02 {
		t.Errorf("derated capacity = %.1f GB, want ~74.8 GB", got)
	}
}

func TestCheetah153Zone0(t *testing.T) {
	l := cheetah153(t)
	// IDR 114.4 MB/s at 15000 RPM implies ~937-950 sectors in zone 0.
	spt := l.SectorsPerTrackZone0()
	if spt < 920 || spt < l.Zones[len(l.Zones)-1].SectorsPerTrack {
		t.Errorf("zone 0 sectors/track = %d, implausible", spt)
	}
}

func TestServoBits(t *testing.T) {
	l := cheetah153(t)
	// ~27.7k cylinders -> ceil(log2) = 15 bits.
	if l.ServoBits != 15 {
		t.Errorf("servo bits = %d, want 15", l.ServoBits)
	}
}

func TestECCSelection(t *testing.T) {
	l := cheetah153(t)
	if l.ECCFraction != ECCFractionSubTerabit {
		t.Errorf("sub-terabit drive got ECC fraction %v", l.ECCFraction)
	}
	// A terabit-density drive: 1.9 MBPI x 540 KTPI (just past the paper's
	// 2010 terabit point; 1.85 x 0.54 is 0.999 Tb/in^2, a hair under).
	lt, err := New(Config{
		Geometry: geometry.Drive{PlatterDiameter: 1.6, Platters: 1, FormFactor: geometry.FormFactor35},
		BPI:      1.9e6,
		TPI:      540000,
		Zones:    50,
	})
	if err != nil {
		t.Fatalf("terabit layout: %v", err)
	}
	if lt.ECCFraction != ECCFractionTerabit {
		t.Errorf("terabit drive got ECC fraction %v, want %v", lt.ECCFraction, ECCFractionTerabit)
	}
}

func TestCapacityOrdering(t *testing.T) {
	l := cheetah153(t)
	raw := l.RawCapacity()
	zbr := l.ZBRCapacity()
	der := l.DeratedCapacity()
	if !(der < zbr && zbr < raw) {
		t.Errorf("capacity ordering violated: derated=%v zbr=%v raw=%v", der, zbr, raw)
	}
	// ECC+servo cost ~10% for sub-terabit drives.
	ratio := float64(der) / float64(zbr)
	if ratio < 0.85 || ratio > 0.95 {
		t.Errorf("derated/ZBR ratio = %.3f, want ~0.90", ratio)
	}
}

func TestZonesMonotone(t *testing.T) {
	l := cheetah153(t)
	for i := 1; i < len(l.Zones); i++ {
		if l.Zones[i].SectorsPerTrack > l.Zones[i-1].SectorsPerTrack {
			t.Fatalf("zone %d has more sectors than zone %d", i, i-1)
		}
		if l.Zones[i].MinTrackBits >= l.Zones[i-1].MinTrackBits {
			t.Fatalf("zone %d min track bits not decreasing", i)
		}
		if l.Zones[i].FirstCylinder != l.Zones[i-1].LastCylinder+1 {
			t.Fatalf("zone %d not contiguous with zone %d", i, i-1)
		}
	}
	if l.Zones[0].FirstCylinder != 0 {
		t.Error("zone 0 must start at cylinder 0")
	}
	if last := l.Zones[len(l.Zones)-1]; last.LastCylinder != l.Cylinders-1 {
		t.Errorf("last zone ends at %d, want %d", last.LastCylinder, l.Cylinders-1)
	}
}

func TestTrackPerimeterEndpoints(t *testing.T) {
	l := cheetah153(t)
	ro := 2 * math.Pi * 1.3
	ri := 2 * math.Pi * 0.65
	if got := l.TrackPerimeter(0); math.Abs(got-ro) > 1e-9 {
		t.Errorf("outermost perimeter = %v, want %v", got, ro)
	}
	if got := l.TrackPerimeter(l.Cylinders - 1); math.Abs(got-ri) > 1e-9 {
		t.Errorf("innermost perimeter = %v, want %v", got, ri)
	}
}

func TestLocateRoundTrip(t *testing.T) {
	l := cheetah153(t)
	f := func(raw uint64) bool {
		lbn := int64(raw % uint64(l.TotalSectors()))
		loc, err := l.Locate(lbn)
		if err != nil {
			return false
		}
		back, err := l.LBNOf(loc)
		return err == nil && back == lbn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLocateSequentialWithinTrack(t *testing.T) {
	l := cheetah153(t)
	a, _ := l.Locate(0)
	b, _ := l.Locate(1)
	if a.Cylinder != b.Cylinder || a.Surface != b.Surface || b.Sector != a.Sector+1 {
		t.Errorf("LBN 0/1 not adjacent on a track: %+v %+v", a, b)
	}
	// First LBN of the drive is the outermost cylinder.
	if a.Cylinder != 0 || a.Surface != 0 || a.Sector != 0 {
		t.Errorf("LBN 0 at %+v, want origin", a)
	}
}

func TestLocateBounds(t *testing.T) {
	l := cheetah153(t)
	if _, err := l.Locate(-1); err == nil {
		t.Error("Locate(-1) should fail")
	}
	if _, err := l.Locate(l.TotalSectors()); err == nil {
		t.Error("Locate(total) should fail")
	}
	last, err := l.Locate(l.TotalSectors() - 1)
	if err != nil {
		t.Fatalf("Locate(last): %v", err)
	}
	if last.Cylinder != l.Cylinders-1 {
		t.Errorf("last LBN on cylinder %d, want %d", last.Cylinder, l.Cylinders-1)
	}
}

func TestLBNOfRejectsBadLocations(t *testing.T) {
	l := cheetah153(t)
	bad := []Location{
		{Cylinder: -1},
		{Cylinder: l.Cylinders},
		{Cylinder: 0, Surface: l.Surfaces},
		{Cylinder: 0, Surface: -1},
		{Cylinder: 0, Surface: 0, Sector: l.Zones[0].SectorsPerTrack},
	}
	for _, loc := range bad {
		if _, err := l.LBNOf(loc); err == nil {
			t.Errorf("LBNOf(%+v) should fail", loc)
		}
	}
}

func TestZoneOfCylinder(t *testing.T) {
	l := cheetah153(t)
	for _, z := range l.Zones {
		if got := l.ZoneOfCylinder(z.FirstCylinder); got.Index != z.Index {
			t.Errorf("ZoneOfCylinder(%d) = zone %d, want %d", z.FirstCylinder, got.Index, z.Index)
		}
		if got := l.ZoneOfCylinder(z.LastCylinder); got.Index != z.Index {
			t.Errorf("ZoneOfCylinder(%d) = zone %d, want %d", z.LastCylinder, got.Index, z.Index)
		}
	}
	if l.ZoneOfCylinder(-1) != nil || l.ZoneOfCylinder(l.Cylinders) != nil {
		t.Error("out-of-range cylinders should have no zone")
	}
}

func TestTotalSectorsConsistent(t *testing.T) {
	l := cheetah153(t)
	var sum int64
	for _, z := range l.Zones {
		sum += int64(z.Tracks) * int64(l.Surfaces) * int64(z.SectorsPerTrack)
	}
	if sum != l.TotalSectors() {
		t.Errorf("zone sum %d != total %d", sum, l.TotalSectors())
	}
}

func TestConfigErrors(t *testing.T) {
	good := geometry.Drive{PlatterDiameter: 2.6, Platters: 1, FormFactor: geometry.FormFactor35}
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Geometry: geometry.Drive{Platters: 0, PlatterDiameter: 2.6}}, "platters"},
		{Config{Geometry: good, BPI: 0, TPI: 1000}, "density"},
		{Config{Geometry: good, BPI: 1000, TPI: -3}, "density"},
		{Config{Geometry: good, BPI: 533000, TPI: 64000, Zones: -1}, "zone"},
		{Config{Geometry: good, BPI: 533000, TPI: 64000, StrokeEfficiency: 1.5}, "stroke"},
		{Config{Geometry: good, BPI: 100, TPI: 10}, "cylinders"},
	}
	for _, c := range cases {
		_, err := New(c.cfg)
		if err == nil {
			t.Errorf("New(%+v) succeeded, want error containing %q", c.cfg, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("New error = %v, want substring %q", err, c.want)
		}
	}
}

func TestCapacityScalesWithDensity(t *testing.T) {
	base := cheetah153(t)
	denser, err := New(Config{
		Geometry: base.Config().Geometry,
		BPI:      base.Config().BPI * 2,
		TPI:      base.Config().TPI,
		Zones:    30,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := float64(denser.DeratedCapacity()) / float64(base.DeratedCapacity())
	// Doubling BPI should roughly double capacity (within rounding).
	if r < 1.95 || r > 2.05 {
		t.Errorf("capacity ratio for 2x BPI = %.3f, want ~2", r)
	}
}

func TestCapacityScalesWithSurfaces(t *testing.T) {
	one, err := New(Config{
		Geometry: geometry.Drive{PlatterDiameter: 2.6, Platters: 1, FormFactor: geometry.FormFactor35},
		BPI:      533000, TPI: 64000, Zones: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	four := cheetah153(t)
	r := float64(four.DeratedCapacity()) / float64(one.DeratedCapacity())
	if math.Abs(r-4) > 1e-9 {
		t.Errorf("4-platter/1-platter capacity = %v, want exactly 4", r)
	}
}

func TestBreakdown(t *testing.T) {
	l := cheetah153(t)
	b := l.Breakdown()
	if b.ZBRLoss <= 0 || b.ZBRLoss > 0.5 {
		t.Errorf("ZBR loss = %.3f, implausible", b.ZBRLoss)
	}
	if b.ECCLoss <= b.ServoLoss {
		t.Error("ECC (10%) should cost more than servo (15 bits/sector)")
	}
	total := float64(b.Derated)/float64(b.Raw) + b.ZBRLoss + b.ServoLoss + b.ECCLoss
	if math.Abs(total-1) > 0.02 {
		t.Errorf("breakdown fractions sum to %.3f, want ~1", total)
	}
}

func TestDefaultsApplied(t *testing.T) {
	l, err := New(Config{
		Geometry: geometry.Drive{PlatterDiameter: 2.6, Platters: 1, FormFactor: geometry.FormFactor35},
		BPI:      533000, TPI: 64000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Zones) != DefaultZones {
		t.Errorf("default zones = %d, want %d", len(l.Zones), DefaultZones)
	}
	cfg := l.Config()
	if cfg.strokeEfficiency() != DefaultStrokeEfficiency {
		t.Error("default stroke efficiency not applied")
	}
}

func TestPropertyCapacityPositive(t *testing.T) {
	f := func(bpiK, tpiK uint16, plat uint8, zones uint8) bool {
		cfg := Config{
			Geometry: geometry.Drive{
				PlatterDiameter: 2.6,
				Platters:        1 + int(plat%4),
				FormFactor:      geometry.FormFactor35,
			},
			BPI:   units.BPI(100000 + int(bpiK)*10),
			TPI:   units.TPI(10000 + int(tpiK)*10),
			Zones: 10 + int(zones%50),
		}
		l, err := New(cfg)
		if err != nil {
			return true // rejected configs are fine
		}
		return l.DeratedCapacity() > 0 && l.DeratedCapacity() <= l.RawCapacity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
