package capacity

import (
	"testing"

	"repro/internal/geometry"
	"repro/internal/units"
)

// FuzzLayout ensures the layout derivation never panics across the
// configuration space and that derived layouts keep their invariants.
func FuzzLayout(f *testing.F) {
	f.Add(533000.0, 64000.0, uint8(4), uint8(30))
	f.Add(270000.0, 20000.0, uint8(1), uint8(50))
	f.Add(1.0, 1.0, uint8(0), uint8(0))
	f.Add(1.9e6, 540000.0, uint8(1), uint8(50))
	f.Fuzz(func(t *testing.T, bpi, tpi float64, platters, zones uint8) {
		cfg := Config{
			Geometry: geometry.Drive{
				PlatterDiameter: 2.6,
				Platters:        int(platters % 8),
				FormFactor:      geometry.FormFactor35,
			},
			BPI:   units.BPI(bpi),
			TPI:   units.TPI(tpi),
			Zones: int(zones),
		}
		l, err := New(cfg)
		if err != nil {
			return
		}
		if l.DeratedCapacity() < 0 || l.DeratedCapacity() > l.RawCapacity() {
			t.Fatalf("capacity ordering violated: derated %v raw %v",
				l.DeratedCapacity(), l.RawCapacity())
		}
		if l.TotalSectors() > 0 {
			// First and last sectors must locate and round-trip.
			for _, lbn := range []int64{0, l.TotalSectors() - 1, l.TotalSectors() / 2} {
				loc, err := l.Locate(lbn)
				if err != nil {
					t.Fatalf("Locate(%d): %v", lbn, err)
				}
				back, err := l.LBNOf(loc)
				if err != nil || back != lbn {
					t.Fatalf("round trip %d -> %+v -> %d (%v)", lbn, loc, back, err)
				}
			}
		}
	})
}
