// Package capacity implements the paper's capacity model (section 3.1):
// linear density (BPI) and track density (TPI) determine the cylinder count
// and per-track raw bit capacity; Zoned Bit Recording (ZBR), embedded-servo
// patterns and error-correcting codes then derate the raw capacity to the
// usable sector count.
//
// Interpretation notes. The paper's printed derated-capacity equation is
// dimensionally inconsistent (a typesetting casualty). We implement the
// physically sensible reading: servo overhead is carried per sector
// (C_servo extra bits beside each 4096-bit payload) and ECC consumes a
// fraction of the remaining track capacity — 10% below 1 Tb/in^2 and 35% at
// terabit densities. So a track whose minimum-perimeter zone capacity is
// C_tzmin raw bits holds
//
//	sectorsPerTrack = floor(C_tzmin * (1 - eccFraction) / (4096 + C_servo))
//
// full sectors. The fractional ECC reading (rather than the "416/1440
// bits/sector" the prose quotes, which are the same costs expressed against
// the payload) is the one the paper's own arithmetic uses: its Table 3
// IDR_density drops by exactly (1-0.35)/(1-0.10) = 0.722 across the 2010
// terabit transition. This model reproduces the paper's Table 1 "Model Cap."
// and "Model IDR" columns to within ~1-2% (capacities in binary GB).
package capacity

import (
	"fmt"
	"math"

	"repro/internal/geometry"
	"repro/internal/units"
)

// Overhead constants from the paper.
const (
	// ECCFractionSubTerabit is the Reed-Solomon capacity share for drives
	// below 1 Tb/in^2 areal density (416 bits per 4096-bit payload ~ 10%).
	ECCFractionSubTerabit = 0.10

	// ECCFractionTerabit is the share at terabit areal densities (1440 bits
	// per payload ~ 35%), per Wood's feasibility study.
	ECCFractionTerabit = 0.35

	// DefaultStrokeEfficiency is the fraction of the radial band usable for
	// data tracks (the rest is recalibration, spares, landing zone...).
	DefaultStrokeEfficiency = 2.0 / 3.0

	// DefaultZones is the zone count the paper assumes for the Table 1
	// validation drives. The roadmap (Table 3 onwards) uses 50.
	DefaultZones = 30
)

// Config specifies the recording parameters of a drive.
type Config struct {
	// Geometry fixes the platter size and count.
	Geometry geometry.Drive

	// BPI is the linear density along a track.
	BPI units.BPI

	// TPI is the radial track density.
	TPI units.TPI

	// Zones is the ZBR zone count; 0 means DefaultZones.
	Zones int

	// StrokeEfficiency is the usable fraction of the radial band;
	// 0 means DefaultStrokeEfficiency.
	StrokeEfficiency float64
}

func (c Config) zones() int {
	if c.Zones == 0 {
		return DefaultZones
	}
	return c.Zones
}

func (c Config) strokeEfficiency() float64 {
	if c.StrokeEfficiency == 0 {
		return DefaultStrokeEfficiency
	}
	return c.StrokeEfficiency
}

// Zone describes one ZBR zone. Zone 0 is the outermost.
type Zone struct {
	// Index is the zone number, 0 = outermost.
	Index int

	// FirstCylinder and LastCylinder bound the zone (inclusive);
	// cylinder 0 is the outermost track.
	FirstCylinder, LastCylinder int

	// Tracks is the number of tracks per surface in the zone.
	Tracks int

	// MinTrackBits is the raw bit capacity of the zone's smallest
	// (innermost) track, which ZBR allocates to every track in the zone.
	MinTrackBits int64

	// SectorsPerTrack is the derated sector count per track after servo
	// and ECC overheads.
	SectorsPerTrack int

	// FirstLBN is the first logical block number mapped into this zone
	// (cylinder-major ordering across all surfaces).
	FirstLBN int64
}

// Layout is the fully derived recording layout of a drive.
type Layout struct {
	cfg Config

	// Cylinders is the number of data tracks per surface actually used
	// (equal-sized zones; any remainder tracks are treated as reserve).
	Cylinders int

	// Surfaces is twice the platter count.
	Surfaces int

	// ServoBits is the per-sector embedded-servo overhead:
	// ceil(log2 cylinders) Gray-code track-id bits.
	ServoBits int

	// ECCFraction is the share of track capacity consumed by
	// error-correcting codes.
	ECCFraction float64

	// ReserveTracks is the number of tracks per surface the equal-zone
	// split leaves unmapped at the inner edge; they back the grown-defect
	// spare pool (see SpareSectors).
	ReserveTracks int

	// Zones is the zone table, outermost first.
	Zones []Zone

	totalSectors int64
}

// New derives the layout for a configuration.
func New(cfg Config) (*Layout, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	if cfg.BPI <= 0 || cfg.TPI <= 0 {
		return nil, fmt.Errorf("capacity: non-positive density BPI=%v TPI=%v", cfg.BPI, cfg.TPI)
	}
	nz := cfg.zones()
	if nz < 1 {
		return nil, fmt.Errorf("capacity: zone count %d < 1", nz)
	}
	eta := cfg.strokeEfficiency()
	if eta <= 0 || eta > 1 {
		return nil, fmt.Errorf("capacity: stroke efficiency %.3f outside (0,1]", eta)
	}

	ro := cfg.Geometry.OuterRadius()
	ri := cfg.Geometry.InnerRadius()
	ncylin := int(eta * float64(ro-ri) * float64(cfg.TPI))
	if ncylin < 2 {
		return nil, fmt.Errorf("capacity: only %d cylinders; density too low for geometry", ncylin)
	}
	if ncylin/nz < 1 {
		return nil, fmt.Errorf("capacity: %d cylinders cannot fill %d zones", ncylin, nz)
	}

	l := &Layout{
		cfg:      cfg,
		Surfaces: 2 * cfg.Geometry.Platters,
	}
	tracksPerZone := ncylin / nz
	l.Cylinders = tracksPerZone * nz // equal zones; remainder is reserve
	l.ReserveTracks = ncylin - l.Cylinders
	l.ServoBits = int(math.Ceil(math.Log2(float64(l.Cylinders))))
	if units.ArealDensity(cfg.BPI, cfg.TPI) >= units.TerabitPerSqInch {
		l.ECCFraction = ECCFractionTerabit
	} else {
		l.ECCFraction = ECCFractionSubTerabit
	}

	overhead := float64(units.SectorDataBits + l.ServoBits)
	usable := 1 - l.ECCFraction
	l.Zones = make([]Zone, nz)
	var lbn int64
	for z := 0; z < nz; z++ {
		first := z * tracksPerZone
		last := (z+1)*tracksPerZone - 1
		minBits := int64(l.TrackPerimeter(last) * float64(cfg.BPI))
		spt := int(float64(minBits) * usable / overhead)
		l.Zones[z] = Zone{
			Index:           z,
			FirstCylinder:   first,
			LastCylinder:    last,
			Tracks:          tracksPerZone,
			MinTrackBits:    minBits,
			SectorsPerTrack: spt,
			FirstLBN:        lbn,
		}
		lbn += int64(tracksPerZone) * int64(l.Surfaces) * int64(spt)
	}
	l.totalSectors = lbn
	return l, nil
}

// Config returns the configuration the layout was derived from.
func (l *Layout) Config() Config { return l.cfg }

// TrackPerimeter returns the perimeter in inches of cylinder j
// (equation 1 of the paper; j = 0 is the outermost track).
func (l *Layout) TrackPerimeter(j int) float64 {
	return 2 * math.Pi * l.TrackRadius(j)
}

// TrackRadius returns the radius in inches of cylinder j. Tracks are evenly
// spaced between the inner and outer radii.
func (l *Layout) TrackRadius(j int) float64 {
	ro := float64(l.cfg.Geometry.OuterRadius())
	ri := float64(l.cfg.Geometry.InnerRadius())
	n := l.Cylinders
	return ri + (ro-ri)*float64(n-j-1)/float64(n-1)
}

// RawCapacity returns C_max: the undeveloped areal capacity of the stroke-
// efficient band, before ZBR/servo/ECC derating.
func (l *Layout) RawCapacity() units.Bytes {
	ro := float64(l.cfg.Geometry.OuterRadius())
	ri := float64(l.cfg.Geometry.InnerRadius())
	bits := l.cfg.strokeEfficiency() * float64(l.Surfaces) *
		math.Pi * (ro*ro - ri*ri) *
		units.ArealDensity(l.cfg.BPI, l.cfg.TPI)
	return units.Bytes(bits / 8)
}

// ZBRCapacity returns the capacity after zoning alone (every track in a zone
// holds its minimum-perimeter track's sectors), before servo/ECC derating.
func (l *Layout) ZBRCapacity() units.Bytes {
	var sectors int64
	for _, z := range l.Zones {
		sectors += int64(z.Tracks) * (z.MinTrackBits / units.SectorDataBits)
	}
	sectors *= int64(l.Surfaces)
	return units.FromSectors(sectors)
}

// DeratedCapacity returns the final usable capacity after ZBR, servo and ECC
// overheads — the paper's C_actual.
func (l *Layout) DeratedCapacity() units.Bytes {
	return units.FromSectors(l.totalSectors)
}

// TotalSectors returns the number of addressable 512-byte sectors.
func (l *Layout) TotalSectors() int64 { return l.totalSectors }

// SpareSectors returns the grown-defect spare pool: the reserve tracks the
// equal-zone split leaves unmapped (at least one track per surface, as every
// production drive carries a reassignment area), at the innermost zone's
// per-track sector count. Sectors declared unrecoverable in service are
// remapped here; a drive that exhausts the pool is failed.
func (l *Layout) SpareSectors() int64 {
	reserve := l.ReserveTracks
	if reserve < 1 {
		reserve = 1
	}
	inner := l.Zones[len(l.Zones)-1].SectorsPerTrack
	return int64(reserve) * int64(l.Surfaces) * int64(inner)
}

// SectorsPerTrackZone0 returns n_tz0, the derated sectors per track in the
// outermost zone — the quantity the IDR formula (equation 4) needs.
func (l *Layout) SectorsPerTrackZone0() int { return l.Zones[0].SectorsPerTrack }

// ZoneOfCylinder returns the zone containing cylinder c.
func (l *Layout) ZoneOfCylinder(c int) *Zone {
	if c < 0 || c >= l.Cylinders {
		return nil
	}
	tracksPerZone := l.Cylinders / len(l.Zones)
	return &l.Zones[c/tracksPerZone]
}

// Location is a physical sector address.
type Location struct {
	Cylinder int
	Surface  int
	Sector   int // sector index within the track
}

// Locate maps a logical block number to its physical location using
// cylinder-major ordering: LBNs fill all surfaces of a cylinder before moving
// one cylinder inward. It returns an error for out-of-range LBNs.
func (l *Layout) Locate(lbn int64) (Location, error) {
	if lbn < 0 || lbn >= l.totalSectors {
		return Location{}, fmt.Errorf("capacity: LBN %d outside [0,%d)", lbn, l.totalSectors)
	}
	// Binary search the zone table by FirstLBN.
	lo, hi := 0, len(l.Zones)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if l.Zones[mid].FirstLBN <= lbn {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	z := &l.Zones[lo]
	rel := lbn - z.FirstLBN
	perCyl := int64(l.Surfaces) * int64(z.SectorsPerTrack)
	cyl := z.FirstCylinder + int(rel/perCyl)
	rem := rel % perCyl
	return Location{
		Cylinder: cyl,
		Surface:  int(rem / int64(z.SectorsPerTrack)),
		Sector:   int(rem % int64(z.SectorsPerTrack)),
	}, nil
}

// LBNOf is the inverse of Locate.
func (l *Layout) LBNOf(loc Location) (int64, error) {
	z := l.ZoneOfCylinder(loc.Cylinder)
	if z == nil {
		return 0, fmt.Errorf("capacity: cylinder %d outside [0,%d)", loc.Cylinder, l.Cylinders)
	}
	if loc.Surface < 0 || loc.Surface >= l.Surfaces {
		return 0, fmt.Errorf("capacity: surface %d outside [0,%d)", loc.Surface, l.Surfaces)
	}
	if loc.Sector < 0 || loc.Sector >= z.SectorsPerTrack {
		return 0, fmt.Errorf("capacity: sector %d outside [0,%d) in zone %d",
			loc.Sector, z.SectorsPerTrack, z.Index)
	}
	perCyl := int64(l.Surfaces) * int64(z.SectorsPerTrack)
	lbn := z.FirstLBN +
		int64(loc.Cylinder-z.FirstCylinder)*perCyl +
		int64(loc.Surface)*int64(z.SectorsPerTrack) +
		int64(loc.Sector)
	return lbn, nil
}

// OverheadBreakdown reports how the raw capacity is spent, for the ablation
// experiment (X2 in DESIGN.md).
type OverheadBreakdown struct {
	Raw     units.Bytes // areal capacity of the data band
	ZBR     units.Bytes // after zoning
	Derated units.Bytes // after zoning + servo + ECC

	// Fractions of raw capacity lost to each mechanism.
	ZBRLoss   float64
	ServoLoss float64
	ECCLoss   float64
}

// Breakdown computes the overhead decomposition.
func (l *Layout) Breakdown() OverheadBreakdown {
	raw := l.RawCapacity()
	zbr := l.ZBRCapacity()
	der := l.DeratedCapacity()
	b := OverheadBreakdown{Raw: raw, ZBR: zbr, Derated: der}
	if raw > 0 {
		zbrFrac := float64(zbr) / float64(raw)
		b.ZBRLoss = 1 - zbrFrac
		// ECC takes its fraction off the zoned capacity; servo then costs
		// its per-sector share of what remains.
		b.ECCLoss = zbrFrac * l.ECCFraction
		b.ServoLoss = zbrFrac * (1 - l.ECCFraction) *
			float64(l.ServoBits) / float64(units.SectorDataBits+l.ServoBits)
	}
	return b
}
