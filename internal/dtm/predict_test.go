package dtm

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/disksim"
	"repro/internal/reliability"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/units"
)

func feedLinear(p *Predictor, start units.Celsius, slopePerS float64, step time.Duration, n int) {
	for i := 0; i < n; i++ {
		at := time.Duration(i) * step
		p.Observe(at, start+units.Celsius(slopePerS*at.Seconds()))
	}
}

func TestPredictorRefusesUntilFull(t *testing.T) {
	p := NewPredictor(4)
	feedLinear(p, 40, 1, time.Second, 3)
	if _, ok := p.TimeToLimit(45); ok {
		t.Error("predicted from a partial window")
	}
	p.Observe(3*time.Second, 43)
	if _, ok := p.TimeToLimit(45); !ok {
		t.Error("full window should predict")
	}
	p.Reset()
	if _, ok := p.TimeToLimit(45); ok {
		t.Error("reset window should not predict")
	}
}

func TestPredictorExactLinearTrajectory(t *testing.T) {
	p := NewPredictor(8)
	feedLinear(p, 40, 0.5, 250*time.Millisecond, 8) // reaches 40.875 at t=1.75s
	if got := p.Slope(); got < 0.4999 || got > 0.5001 {
		t.Fatalf("slope %v, want 0.5", got)
	}
	ttl, ok := p.TimeToLimit(45.22)
	if !ok {
		t.Fatal("no prediction")
	}
	// headroom = 45.22 - 40.875 = 4.345 C at 0.5 C/s -> 8.69 s.
	want := 8.69
	if got := ttl.Seconds(); got < want-0.01 || got > want+0.01 {
		t.Errorf("time-to-limit %.3fs, want %.2fs", got, want)
	}
}

func TestPredictorFlatOrCoolingNeverPredicts(t *testing.T) {
	for _, slope := range []float64{0, -0.2, -5} {
		p := NewPredictor(6)
		feedLinear(p, 44, slope, time.Second, 6)
		if _, ok := p.TimeToLimit(45.22); ok {
			t.Errorf("slope %v: predicted a crossing", slope)
		}
	}
}

// TestPredictorTTLMonotoneInSlope is the property test: over random
// trajectories, time-to-limit is never negative, a drive at or past the
// limit predicts zero, and a steeper slope never predicts a *later*
// crossing from the same last observation.
func TestPredictorTTLMonotoneInSlope(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		window := 2 + rng.Intn(12)
		start := units.Celsius(25 + 20*rng.Float64())
		limit := units.Celsius(30 + 20*rng.Float64())
		step := time.Duration(1+rng.Intn(2000)) * time.Millisecond
		s1 := rng.Float64() * 2  // [0, 2) C/s
		s2 := s1 + rng.Float64() // >= s1

		ttlAt := func(slope float64) (time.Duration, bool) {
			p := NewPredictor(window)
			feedLinear(p, start, slope, step, p.Window())
			return p.TimeToLimit(limit)
		}
		t1, ok1 := ttlAt(s1)
		t2, ok2 := ttlAt(s2)
		if t1 < 0 || t2 < 0 {
			t.Fatalf("trial %d: negative time-to-limit (%v, %v)", trial, t1, t2)
		}
		// Same last-sample temperature would be needed for a strict
		// comparison; here both trajectories share the start, so compare
		// only when both predict — the steeper one ran hotter AND climbs
		// faster, so it must cross no later.
		if ok1 && ok2 && s2 > s1 && t2 > t1 {
			t.Fatalf("trial %d: steeper slope predicted later crossing: slope %v->%v, ttl %v->%v",
				trial, s1, s2, t1, t2)
		}
		// At or past the limit: zero, not negative, regardless of slope.
		if s1 > 0 {
			p := NewPredictor(window)
			feedLinear(p, limit+units.Celsius(rng.Float64()*5), s1, step, p.Window())
			ttl, ok := p.TimeToLimit(limit)
			if !ok || ttl != 0 {
				t.Fatalf("trial %d: past-limit prediction = (%v, %v), want (0, true)", trial, ttl, ok)
			}
		}
	}
}

func TestPredictorSameInstantReplacesSample(t *testing.T) {
	p := NewPredictor(3)
	p.Observe(0, 40)
	p.Observe(time.Second, 41)
	p.Observe(time.Second, 45) // replaces, not appends
	if p.Full() {
		t.Fatal("duplicate instant should not fill the window")
	}
	p.Observe(2*time.Second, 50)
	if got := p.Slope(); got <= 0 {
		t.Errorf("slope %v after replacement", got)
	}
}

func TestOverTrackerInterpolatesCrossings(t *testing.T) {
	o := overTracker{limit: 50}
	o.observe(0, 48)
	o.observe(2*time.Second, 52) // rising: above for (52-50)/(52-48) = half
	o.observe(4*time.Second, 52) // fully above
	o.observe(6*time.Second, 46) // falling: above for (52-50)/(52-46) = third
	o.observe(8*time.Second, 44) // fully below
	want := time.Second + 2*time.Second + 2*time.Second/3
	if diff := o.over - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("time over = %v, want %v", o.over, want)
	}
}

func TestFlapTrackerWindow(t *testing.T) {
	f := flapTracker{window: 5 * time.Second}
	f.engage(0) // no prior release: not a flap
	f.release(10 * time.Second)
	f.engage(12 * time.Second) // 2s after release: flap
	f.release(20 * time.Second)
	f.engage(40 * time.Second) // 20s after release: calm
	if f.flaps != 1 {
		t.Errorf("flaps = %d, want 1", f.flaps)
	}
}

func TestPredictiveControllerConfigErrors(t *testing.T) {
	if _, err := (&PredictiveController{}).Run(nil); err == nil {
		t.Error("empty controller should be rejected")
	}
	disk, th := buildDTMDisk(t, 24534)
	bad := PredictiveController{Disk: disk, Thermal: th, Mode: VCMAndRPM, LowRPM: 30000}
	if _, err := bad.Run(nil); err == nil {
		t.Error("low RPM above service RPM should be rejected")
	}
	inverted := PredictiveController{Disk: disk, Thermal: th,
		Predictive: Band{Engage: 3, Release: 1}}
	if _, err := inverted.Run(nil); err == nil {
		t.Error("release margin inside engage margin should be rejected")
	}
}

func TestPredictiveControllerKeepsEnvelopeAndActsEarly(t *testing.T) {
	if testing.Short() {
		t.Skip("long thermal-coupled run")
	}
	disk, th := buildDTMDisk(t, 24534)
	hot := th.SteadyState(thermal.WorstCase(24534))
	cooler := hot
	cooler.Air = thermal.Envelope - 4 // approaching, below the engage band
	ctl := PredictiveController{Disk: disk, Thermal: th, Mode: VCMOnly, Initial: &cooler}
	reqs := dtmWorkload(t, disk.Layout().TotalSectors(), 20000, 120)
	res, err := ctl.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.MaxAirTemp) > float64(thermal.Envelope)+0.1 {
		t.Errorf("predictive controller let the drive reach %.2f C", float64(res.MaxAirTemp))
	}
	if res.EarlyThrottles == 0 {
		t.Error("a heating trajectory should trigger the predictive stage")
	}
	if res.PredictionSamples == 0 {
		t.Error("no prediction-error samples scored")
	}
	if res.MeanAbsPredErrC < 0 || res.MeanAbsPredErrC > 5 {
		t.Errorf("mean abs prediction error %.3f C out of range", res.MeanAbsPredErrC)
	}
	if len(res.Completions) != len(reqs) {
		t.Errorf("served %d of %d", len(res.Completions), len(reqs))
	}
}

func TestPredictiveBatchStreamIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("long thermal-coupled run")
	}
	newCtl := func() *PredictiveController {
		disk, th := buildDTMDisk(t, 24534)
		hot := th.SteadyState(thermal.WorstCase(24534))
		warm := hot
		warm.Air = thermal.Envelope - 4
		return &PredictiveController{Disk: disk, Thermal: th, Mode: VCMOnly, Initial: &warm}
	}
	reqs := dtmWorkload(t, newCtl().Disk.Layout().TotalSectors(), 6000, 120)

	batch, err := newCtl().Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	var collect sim.Appender[disksim.Completion]
	stream, err := newCtl().RunStream(sim.NewEngine(), sim.FromSlice(reqs), &collect)
	if err != nil {
		t.Fatal(err)
	}
	if len(collect.Items) != len(batch.Completions) {
		t.Fatalf("stream served %d, batch %d", len(collect.Items), len(batch.Completions))
	}
	for i := range collect.Items {
		if collect.Items[i] != batch.Completions[i] {
			t.Fatalf("completion %d differs: %+v vs %+v", i, collect.Items[i], batch.Completions[i])
		}
	}
	if stream.MaxAirTemp != batch.MaxAirTemp ||
		stream.EarlyThrottles != batch.EarlyThrottles ||
		stream.ReactiveThrottles != batch.ReactiveThrottles ||
		stream.ThrottledTime != batch.ThrottledTime ||
		stream.Flaps != batch.Flaps ||
		stream.TimeOverThreshold != batch.TimeOverThreshold ||
		stream.Elapsed != batch.Elapsed {
		t.Errorf("stream result diverges from batch:\n%+v\n%+v", stream, batch)
	}
}

// TestPredictiveSteadyStateZeroAllocs pins the controller's per-request
// allocation count to zero: the fixed setup cost (engine, transient,
// predictor rings, closures) is identical for a short and a long run, so
// any per-request allocation would separate the two totals.
func TestPredictiveSteadyStateZeroAllocs(t *testing.T) {
	disk, th := buildDTMDisk(t, 24534)
	warm := th.SteadyState(thermal.WorstCase(24534))
	warm.Air = thermal.Envelope - 4
	small := dtmWorkload(t, disk.Layout().TotalSectors(), 500, 200)
	large := dtmWorkload(t, disk.Layout().TotalSectors(), 4000, 200)
	run := func(reqs []disksim.Request) float64 {
		return testing.AllocsPerRun(5, func() {
			ctl := PredictiveController{Disk: disk, Thermal: th, Mode: VCMOnly, Initial: &warm}
			if _, err := ctl.RunStream(sim.NewEngine(), sim.FromSlice(reqs),
				sim.Discard[disksim.Completion]()); err != nil {
				t.Fatal(err)
			}
		})
	}
	run(small) // warm any lazy runtime state
	if extra := run(large) - run(small); extra > 0 {
		t.Errorf("%.0f extra allocations across 3500 extra requests — steady state is not alloc-free", extra)
	}
}

// TestEscalationSplitBandsStopFlap is the regression for the shared-band
// oscillation: with one narrow shared hysteresis the throttle stage
// releases barely below its own onset, the busy drive reheats within the
// re-arm window, and the stage flaps. Giving the stage its own release
// margin — without touching the rest of the ladder — removes the
// oscillation.
func TestEscalationSplitBandsStopFlap(t *testing.T) {
	if testing.Short() {
		t.Skip("long thermal-coupled run")
	}
	run := func(band Band) EscalationResult {
		disk, th := buildDTMDisk(t, 24534)
		hot := th.SteadyState(thermal.WorstCase(24534))
		esc := Escalation{
			Disk:    disk,
			Thermal: th,
			Levels:  []units.RPM{24534}, // isolate the throttle stage
			// Engage where the hot steady state (48.5 C) sits, keep the
			// offline stage out of reach.
			ThrottleAt:   thermal.Envelope + 2,
			OfflineAt:    1000,
			Hysteresis:   0.05, // the narrow shared band under test
			ThrottleBand: band,
			Initial:      &hot,
		}
		reqs := dtmWorkload(t, disk.Layout().TotalSectors(), 3000, 150)
		res, err := esc.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	shared := run(Band{})          // falls back to the 0.05 C shared line
	split := run(Band{Release: 3}) // own release line, 3 C below onset
	if shared.Throttles == 0 {
		t.Fatal("scenario never throttled; flap setup is wrong")
	}
	if shared.Flaps == 0 {
		t.Errorf("narrow shared band should flap (throttles=%d, flaps=%d)",
			shared.Throttles, shared.Flaps)
	}
	if split.Flaps != 0 {
		t.Errorf("split band still flaps %d times (throttles=%d)", split.Flaps, split.Throttles)
	}
	if split.Throttles >= shared.Throttles {
		t.Errorf("split band should throttle less often: %d vs %d", split.Throttles, shared.Throttles)
	}
}

// TestEscalationDefaultBandsMatchLegacy cross-checks that explicitly
// spelling out the historic shared-band lines reproduces the zero-band run
// exactly.
func TestEscalationDefaultBandsMatchLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("long thermal-coupled run")
	}
	run := func(explicit bool) EscalationResult {
		disk, th := buildDTMDisk(t, 24534)
		hot := th.SteadyState(thermal.WorstCase(24534))
		esc := Escalation{
			Disk:    disk,
			Thermal: th,
			Levels:  []units.RPM{24534, 21000, 18000, 15020},
			Initial: &hot,
		}
		if explicit {
			step, throttle, offline := esc.stageTemps()
			hys := esc.hysteresis()
			esc.StepBand = Band{Release: hys}
			esc.ThrottleBand = Band{Release: hys}
			esc.OfflineBand = Band{Release: offline - step + hys}
			_ = throttle
		}
		reqs := dtmWorkload(t, disk.Layout().TotalSectors(), 4000, 150)
		res, err := esc.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		res.Completions = nil
		return res
	}
	legacy, explicit := run(false), run(true)
	if !reflect.DeepEqual(legacy, explicit) {
		t.Errorf("explicit legacy bands diverge:\n%+v\n%+v", legacy, explicit)
	}
}

func TestSlackRampWarmStartAndFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("long thermal-coupled run")
	}
	disk, th := buildDTMDisk(t, 15020)
	warm := th.SteadyState(thermal.WorstCase(15020))
	ramp := SlackRamp{
		Disk: disk, Thermal: th, BoostRPM: 24534,
		Initial: &warm,
		Faults:  NewThermalFaults(OffTrackModel{}, reliability.Default(), nil, 99),
	}
	reqs := dtmWorkload(t, disk.Layout().TotalSectors(), 4000, 60)
	res, err := ramp.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxAirTemp < warm.Air {
		t.Errorf("warm start ignored: max %v below initial %v", res.MaxAirTemp, warm.Air)
	}
	if res.P95ResponseMillis <= 0 || res.P95ResponseMillis < res.MeanResponseMillis/4 {
		t.Errorf("p95 %v implausible against mean %v", res.P95ResponseMillis, res.MeanResponseMillis)
	}
	if res.DiskFailed {
		t.Error("no hazard model configured; drive should not fail")
	}
}
