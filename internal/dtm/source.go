package dtm

import (
	"math/rand"
	"time"

	"repro/internal/disksim"
	"repro/internal/sim"
)

// SyntheticSource yields the seeded synthetic policy workload lazily:
// Poisson arrivals at the given rate, 8-sector requests uniform over the
// disk, 30% writes. Every call with the same arguments returns a fresh
// source replaying the identical sequence, so each controller in a
// comparison sees the same requests without the trace ever being
// materialized. It is shared by cmd/dtm's policy comparison and the serving
// layer's dtm jobs; seeded jobs stay byte-reproducible because the sequence
// depends only on (totalSectors, n, rate, seed).
func SyntheticSource(totalSectors int64, n int, rate float64, seed int64) sim.Source[disksim.Request] {
	rng := rand.New(rand.NewSource(seed))
	now := 0.0
	i := 0
	return sim.SourceFunc[disksim.Request](func() (disksim.Request, bool) {
		if i >= n {
			return disksim.Request{}, false
		}
		now += rng.ExpFloat64() / rate
		r := disksim.Request{
			ID:      int64(i),
			Arrival: time.Duration(now * float64(time.Second)),
			LBN:     rng.Int63n(totalSectors - 64),
			Sectors: 8,
			Write:   rng.Float64() < 0.3,
		}
		i++
		return r, true
	})
}
