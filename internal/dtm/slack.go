// Package dtm implements the paper's Dynamic Thermal Management mechanisms
// (section 5): quantifying the thermal slack between the worst-case design
// point and VCM-off operation (Figure 5), the dynamic-throttling experiment
// (Figures 6 and 7), and — as the extension the paper flags as future work —
// closed-loop DTM controllers coupling the thermal transient to the disk
// simulator.
package dtm

import (
	"fmt"

	"repro/internal/geometry"
	"repro/internal/thermal"
	"repro/internal/units"
)

// SlackPoint is one bar pair of Figure 5(a): the highest speed a platter size
// sustains inside the envelope with the VCM always on (the envelope design)
// versus with the VCM off (the exploitable slack).
type SlackPoint struct {
	Size        units.Inches
	Platters    int
	EnvelopeRPM units.RPM // VCM continuously seeking
	VCMOffRPM   units.RPM // idle / fully sequential

	// VCMPower is the seek power that creates the slack; it shrinks with
	// platter size, and the slack with it.
	VCMPower units.Watts
}

// SlackRPM returns the exploitable speed increase.
func (p SlackPoint) SlackRPM() units.RPM { return p.VCMOffRPM - p.EnvelopeRPM }

// Slack computes Figure 5(a) for a set of platter sizes.
func Slack(sizes []units.Inches, platters int, ambient units.Celsius) ([]SlackPoint, error) {
	if len(sizes) == 0 {
		sizes = []units.Inches{2.6, 2.1, 1.6}
	}
	if platters <= 0 {
		platters = 1
	}
	out := make([]SlackPoint, 0, len(sizes))
	for _, size := range sizes {
		m, err := thermal.New(geometry.Drive{
			PlatterDiameter: size,
			Platters:        platters,
			FormFactor:      geometry.FormFactor35,
		})
		if err != nil {
			return nil, fmt.Errorf("dtm: slack at %v: %w", size, err)
		}
		out = append(out, SlackPoint{
			Size:        size,
			Platters:    platters,
			EnvelopeRPM: m.MaxRPM(thermal.Envelope, 1, ambient),
			VCMOffRPM:   m.MaxRPM(thermal.Envelope, 0, ambient),
			VCMPower:    thermal.VCMPower(size),
		})
	}
	return out, nil
}
